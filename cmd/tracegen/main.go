// Command tracegen synthesizes SWF job traces: the six Table II presets or
// a custom Lublin–Feitelson model instance.
//
// Usage:
//
//	tracegen -preset PIK-IPLEX -jobs 10000 -seed 42 -o pik.swf
//	tracegen -lublin -procs 256 -jobs 10000 -it 771 -rt 4862 -o lublin.swf
//	tracegen -stats -preset Lublin-1 -jobs 10000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"rlsched/internal/trace"
)

func main() {
	preset := flag.String("preset", "", "preset trace name: "+strings.Join(trace.PresetNames, ", "))
	lublin := flag.Bool("lublin", false, "generate from the Lublin-Feitelson model instead of a preset")
	procs := flag.Int("procs", 256, "cluster size (lublin mode)")
	it := flag.Float64("it", 771, "target mean inter-arrival seconds (lublin mode)")
	rt := flag.Float64("rt", 4862, "target mean runtime seconds (lublin mode)")
	jobs := flag.Int("jobs", 10000, "number of jobs")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output SWF path (default stdout)")
	stats := flag.Bool("stats", false, "print Table II statistics instead of the trace")
	flag.Parse()

	var tr *trace.Trace
	switch {
	case *lublin:
		cfg := trace.DefaultLublin(*procs, *jobs)
		cfg.TargetMeanInterarrival = *it
		cfg.TargetMeanRuntime = *rt
		tr = trace.GenerateLublin(cfg, rand.New(rand.NewSource(*seed)))
	case *preset != "":
		tr = trace.Preset(*preset, *jobs, *seed)
		if tr == nil {
			fmt.Fprintf(os.Stderr, "tracegen: unknown preset %q (have %v)\n", *preset, trace.PresetNames)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: need -preset or -lublin")
		os.Exit(2)
	}

	if *stats {
		s := tr.ComputeStats()
		fmt.Printf("name=%s procs=%d jobs=%d it=%.0fs rt=%.0fs (requested %.0fs) nt=%.1f users=%d\n",
			s.Name, s.Processors, s.Jobs, s.MeanInterarrival, s.MeanRunTime, s.MeanRequestedTime, s.MeanProcs, s.Users)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteSWF(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
