// Command docscheck is the repository's documentation gate, run by the CI
// docs job. It enforces two invariants and exits non-zero on any
// violation:
//
//  1. Markdown link integrity: every relative link target in README.md,
//     DESIGN.md, ROADMAP.md, CHANGES.md and PAPERS.md must exist in the
//     repository (external http/https/mailto links are not fetched — CI
//     must not depend on the network).
//
//  2. Godoc coverage: every exported identifier in internal/fleet,
//     internal/metrics, internal/obs and internal/cluster, in the
//     internal/sim incremental stepping surface (stepper.go), and in the
//     internal/trace zoo registry (zoo.go), must carry a doc comment, so
//     `go doc` stays a complete reference for the placement/migration/
//     fairness subsystem, the metric surface it optimizes, and the
//     event-heap stepping substrate underneath it. New exported API
//     without documentation fails CI — coverage can only regress loudly.
//
// Usage: go run ./cmd/docscheck [repo-root]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// markdownFiles are the repo-root documents whose links are checked.
var markdownFiles = []string{"README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md", "PAPERS.md"}

// godocTargets maps a checked directory to an optional file filter (empty
// = every non-test file in the package).
var godocTargets = []struct {
	dir  string
	file string
}{
	{dir: "internal/cluster"},
	{dir: "internal/fleet"},
	{dir: "internal/metrics"},
	{dir: "internal/obs"},
	{dir: "internal/sim", file: "stepper.go"},
	{dir: "internal/telemetry"},
	{dir: "internal/trace", file: "zoo.go"},
}

// linkPattern matches inline markdown links [text](target).
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fails := 0
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "docscheck: "+format+"\n", args...)
		fails++
	}

	for _, md := range markdownFiles {
		checkLinks(root, md, fail)
	}
	for _, tgt := range godocTargets {
		checkGodoc(root, tgt.dir, tgt.file, fail)
	}

	if fails > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", fails)
		os.Exit(1)
	}
	fmt.Println("docscheck: markdown links and godoc coverage OK")
}

// checkLinks verifies every relative link in the markdown file resolves to
// an existing file or directory.
func checkLinks(root, name string, fail func(string, ...interface{})) {
	raw, err := os.ReadFile(filepath.Join(root, name))
	if err != nil {
		fail("%s: %v", name, err)
		return
	}
	for _, m := range linkPattern.FindAllStringSubmatch(string(raw), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external; not fetched
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue // intra-document anchor
		}
		if _, err := os.Stat(filepath.Join(root, target)); err != nil {
			fail("%s: broken link target %q", name, m[1])
		}
	}
}

// checkGodoc parses every (non-test) file of the package directory and
// reports exported package-level declarations and exported methods that
// lack a doc comment.
func checkGodoc(root, dir, onlyFile string, fail func(string, ...interface{})) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi os.FileInfo) bool {
		if strings.HasSuffix(fi.Name(), "_test.go") {
			return false
		}
		return onlyFile == "" || fi.Name() == onlyFile
	}, parser.ParseComments)
	if err != nil {
		fail("%s: %v", dir, err)
		return
	}
	where := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s/%s:%d", dir, filepath.Base(p.Filename), p.Line)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						fail("%s: exported %s %s has no doc comment", where(d.Pos()), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, where, fail)
				}
			}
		}
	}
}

// checkGenDecl reports undocumented exported names in a const/var/type
// declaration. A doc comment on either the declaration (covers the whole
// const/var block) or the individual spec satisfies the check.
func checkGenDecl(d *ast.GenDecl, where func(token.Pos) string, fail func(string, ...interface{})) {
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
				fail("%s: exported type %s has no doc comment", where(sp.Pos()), sp.Name.Name)
			}
		case *ast.ValueSpec:
			documented := sp.Doc != nil || d.Doc != nil
			for _, name := range sp.Names {
				if name.IsExported() && !documented {
					fail("%s: exported %s %s has no doc comment", where(sp.Pos()), d.Tok, name.Name)
				}
			}
		}
	}
}
