// Command rlsched trains and evaluates RLScheduler agents.
//
// Train on a preset trace toward a goal, save the model:
//
//	rlsched train -preset Lublin-1 -goal bsld -epochs 50 -o model.json
//
// Evaluate a saved model (optionally on a different trace — the Table VII
// generalization setting):
//
//	rlsched eval -preset SDSC-SP2 -model model.json -backfill
package main

import (
	"flag"
	"fmt"
	"os"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/rl"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		train(os.Args[2:])
	case "eval":
		eval(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rlsched train|eval [flags] (see -h per subcommand)")
	os.Exit(2)
}

func loadTrace(preset, traceFile string, jobs int, seed int64) *trace.Trace {
	if traceFile != "" {
		tr, err := trace.LoadSWFFile(traceFile)
		if err != nil {
			fatal(err)
		}
		return tr
	}
	tr := trace.Preset(preset, jobs, seed)
	if tr == nil {
		fatal(fmt.Errorf("unknown preset %q (have %v)", preset, trace.PresetNames))
	}
	return tr
}

func train(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	preset := fs.String("preset", "Lublin-1", "preset trace name")
	traceFile := fs.String("trace", "", "SWF trace file (overrides -preset)")
	jobs := fs.Int("jobs", 10000, "trace length for presets")
	goalName := fs.String("goal", "bsld", "optimization goal: bsld|slowdown|wait|resp|util|fair-bsld")
	policyKind := fs.String("policy", "kernel", "policy network: kernel|mlp-v1|mlp-v2|mlp-v3|lenet")
	epochs := fs.Int("epochs", 100, "training epochs")
	traj := fs.Int("traj", 100, "trajectories per epoch")
	seqlen := fs.Int("seqlen", 256, "jobs per trajectory")
	maxObs := fs.Int("maxobs", sim.DefaultMaxObserve, "MAX_OBSV_SIZE")
	backfill := fs.Bool("backfill", false, "train with EASY backfilling")
	filter := fs.Bool("filter", false, "enable trajectory filtering (recommended for PIK-IPLEX)")
	seed := fs.Int64("seed", 42, "seed")
	piIters := fs.Int("pi-iters", 80, "PPO policy iterations per epoch")
	vIters := fs.Int("v-iters", 80, "PPO value iterations per epoch")
	workers := fs.Int("workers", 0, "parallel rollout workers (0 = GOMAXPROCS; any value is bit-identical)")
	out := fs.String("o", "model.json", "model output path")
	fs.Parse(args)

	goal, err := metrics.ParseKind(*goalName)
	if err != nil {
		fatal(err)
	}
	tr := loadTrace(*preset, *traceFile, *jobs, *seed)
	agent, err := core.New(core.Config{
		Trace:        tr,
		Goal:         goal,
		PolicyKind:   *policyKind,
		MaxObserve:   *maxObs,
		Backfill:     *backfill,
		SeqLen:       *seqlen,
		TrajPerEpoch: *traj,
		Filter:       *filter,
		Seed:         *seed,
		PPO:          rl.PPOConfig{TrainPiIters: *piIters, TrainVIters: *vIters},
		Workers:      *workers,
	})
	if err != nil {
		fatal(err)
	}
	for e := 1; e <= *epochs; e++ {
		s, err := agent.TrainEpoch()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("epoch %3d  %s=%.3f  reward=%.3f  kl=%.4f  pi-iters=%d  rejected=%d\n",
			s.Epoch, goal, s.MeanMetric, s.MeanReward, s.Update.KL, s.Update.PiIters, s.Rejected)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := agent.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("model saved to %s\n", *out)
}

func eval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	preset := fs.String("preset", "Lublin-1", "preset trace name")
	traceFile := fs.String("trace", "", "SWF trace file (overrides -preset)")
	jobs := fs.Int("jobs", 10000, "trace length for presets")
	goalName := fs.String("goal", "bsld", "metric to report")
	model := fs.String("model", "model.json", "saved model path")
	nseq := fs.Int("nseq", 10, "evaluation sequences")
	seqlen := fs.Int("seqlen", 1024, "jobs per sequence")
	backfill := fs.Bool("backfill", false, "enable EASY backfilling")
	maxObs := fs.Int("maxobs", sim.DefaultMaxObserve, "visible queue size")
	seed := fs.Int64("seed", 42, "seed")
	fs.Parse(args)

	goal, err := metrics.ParseKind(*goalName)
	if err != nil {
		fatal(err)
	}
	tr := loadTrace(*preset, *traceFile, *jobs, *seed)
	f, err := os.Open(*model)
	if err != nil {
		fatal(err)
	}
	s, err := core.LoadScheduler(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	mean, values, err := core.Evaluate(tr, s, core.EvalConfig{
		Goal: goal, NSeq: *nseq, SeqLen: *seqlen,
		Backfill: *backfill, MaxObserve: *maxObs, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace=%s goal=%s backfill=%v mean=%.3f per-seq=%v\n",
		tr.Name, goal, *backfill, mean, values)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rlsched: %v\n", err)
	os.Exit(1)
}
