// Command rlservd is the online scheduling-decision daemon: it loads a
// trained model snapshot (or a named heuristic) and serves scheduling
// decisions over an HTTP JSON API, batching concurrent requests into
// single policy-network forward passes.
//
// Serve a trained snapshot:
//
//	rlservd -model model.json -addr :9090
//
// Serve a heuristic (any of FCFS, WFP3, UNICEP, SJF, F1, SAF, LJF):
//
//	rlservd -policy SJF -addr :9090
//
// Ask for a decision:
//
//	curl -s localhost:9090/v1/decide -d '{
//	  "now": 0, "free_procs": 96, "total_procs": 128,
//	  "jobs": [{"id": 1, "submit_time": -30, "requested_time": 3600, "requested_procs": 4},
//	           {"id": 2, "submit_time": -10, "requested_time": 60,  "requested_procs": 2}]}'
//
// Hot-swap the model under load (zero dropped requests):
//
//	curl -s -X POST localhost:9090/reload -d '{"model": "model-v2.json"}'
//
// Fleet mode shards one engine per cluster and adds the placement
// endpoint — repeat -shard per member:
//
//	rlservd -shard name=large,procs=256,model=model.json \
//	        -shard name=small,procs=64,policy=SJF
//
//	curl -s localhost:9090/place -d '{
//	  "job": [0, 3600, 96],
//	  "clusters": [{"name": "large", "free_procs": 200, "total_procs": 256, "jobs": []},
//	               {"name": "small", "free_procs": 64,  "total_procs": 64,  "jobs": []}]}'
//
// Per-shard decisions and hot swaps:
//
//	curl -s 'localhost:9090/v1/decide?cluster=small' -d '...'
//	curl -s -X POST localhost:9090/reload -d '{"cluster": "small", "policy": "F1"}'
//
// With -migrate, POST /migrate asks whether a queued job should move off
// its current cluster (post the states with the job already excluded from
// its own queue; the answer applies the hysteresis margin and the
// drained-destination gate of the fleet migration controller):
//
//	curl -s localhost:9090/migrate -d '{
//	  "job": [-600, 3600, 32], "from": "large",
//	  "clusters": [{"name": "large", "free_procs": 0,  "total_procs": 256, "jobs": [[-60,600,16]]},
//	               {"name": "small", "free_procs": 64, "total_procs": 64,  "jobs": []}]}'
//
// With -fair-weight N, /place becomes per-user fairness aware: clusters
// post the jobs they finished ("completed": [[user, wait, run], ...] or
// equivalent objects) alongside their queue state, the daemon tracks every
// user's bounded-slowdown share per cluster, and the placement pipeline
// steers deprived users' jobs onto capacity that runs them now (and off
// clusters that historically hurt them). Each /place answer reports the
// job's user state; /metrics gains the rlserv_fairness_score view:
//
//	rlservd -shard ... -fair-weight 1
//	curl -s localhost:9090/place -d '{
//	  "job": [0, 3600, 16, 7],
//	  "clusters": [{"name": "large", "free_procs": 200, "total_procs": 256, "jobs": [],
//	                "completed": [[7, 9000, 60], [3, 10, 600]]}]}'
//
// Observe:
//
//	curl -s localhost:9090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rlsched/internal/serve"
)

// shardFlags parses repeated -shard "name=X,procs=N,model=PATH|policy=NAME"
// values into shard configurations.
type shardFlags []serve.ShardConfig

func (s *shardFlags) String() string { return fmt.Sprintf("%d shards", len(*s)) }

func (s *shardFlags) Set(v string) error {
	var sc serve.ShardConfig
	for _, kv := range strings.Split(v, ",") {
		k, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("shard field %q wants key=value", kv)
		}
		switch k {
		case "name":
			sc.Name = val
		case "procs":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("shard procs %q: %w", val, err)
			}
			sc.Procs = n
		case "model":
			sc.ModelPath = val
		case "policy":
			sc.PolicyName = val
		default:
			return fmt.Errorf("unknown shard field %q (name|procs|model|policy)", k)
		}
	}
	*s = append(*s, sc)
	return nil
}

func main() {
	model := flag.String("model", "", "model snapshot path (rlsched train output)")
	policy := flag.String("policy", "", "heuristic name instead of a model (FCFS|WFP3|UNICEP|SJF|F1|SAF|LJF)")
	addr := flag.String("addr", ":9090", "listen address")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond,
		"how long a lone request waits for company before a solo forward pass")
	workers := flag.Int("workers", 0, "decision workers (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 64, "max queue states per forward pass")
	var shards shardFlags
	flag.Var(&shards, "shard",
		"fleet shard spec name=X,procs=N,model=PATH|policy=NAME (repeatable; enables /place)")
	placeRouter := flag.String("place-router", "",
		"fleet placement pipeline: engine (default) | least-loaded | binpack")
	migrate := flag.Bool("migrate", false,
		"fleet mode: enable the POST /migrate re-placement endpoint and its /metrics counters")
	migrateMargin := flag.Float64("migrate-margin", 0.25,
		"hysteresis margin a recommended move must clear (normalized score scale)")
	fairWeight := flag.Float64("fair-weight", 0,
		"fleet mode: weight of the per-user fairness plugin in the /place pipeline (0 disables); "+
			"clusters feed it by posting completed jobs with their /place states")
	fairWindow := flag.Float64("fair-window", 0,
		"fleet mode: decay the fairness tracker's shares over roughly this many completions "+
			"(0 = full history; needs -fair-weight)")
	sloP99 := flag.Duration("slo-p99", 0,
		"p99 latency budget per endpoint; enables SLO monitoring, /readyz, and the "+
			"degradation ladder (RL scoring -> SJF fallback -> static shedding) when set")
	sloWindow := flag.Duration("slo-window", 30*time.Second,
		"sliding window the SLO latency quantiles are computed over")
	sloQueueHigh := flag.Int("slo-queue-high", 0,
		"batcher queue depth treated as overload by the SLO monitor (0 = latency signal only)")
	healthzLevel := flag.Int("healthz", 2,
		"degradation level at which /healthz flips to 503 (needs -slo-p99)")
	pprofOn := flag.Bool("pprof", false,
		"mount the net/http/pprof profiling handlers under /debug/pprof/")
	decisionLog := flag.Int("decision-log", 0,
		"fleet mode: /debug/decisions ring size (0 = default 256, negative disables)")
	checkpointDir := flag.String("checkpoint-dir", "",
		"durability directory for the fairness tracker (snapshot + WAL, restored on "+
			"restart; needs -fair-weight)")
	checkpointInterval := flag.Duration("checkpoint-interval", 30*time.Second,
		"period between fairness snapshots (0 disables the loop; the WAL still "+
			"persists every batch)")
	decisionCache := flag.Int("decision-cache", 0,
		"entries in the exact-match decision cache in front of the engines "+
			"(0 disables; invalidated on /reload)")
	flag.Parse()

	srv, err := serve.NewServer(serve.Config{
		ModelPath:          *model,
		PolicyName:         *policy,
		Workers:            *workers,
		BatchWindow:        *batchWindow,
		MaxBatch:           *maxBatch,
		Shards:             shards,
		PlaceRouter:        *placeRouter,
		Migrate:            *migrate,
		MigrateMargin:      *migrateMargin,
		FairWeight:         *fairWeight,
		FairWindow:         *fairWindow,
		Pprof:              *pprofOn,
		DecisionLog:        *decisionLog,
		CheckpointDir:      *checkpointDir,
		CheckpointInterval: *checkpointInterval,
		DecisionCache:      *decisionCache,
		SLO: serve.SLOConfig{
			P99Budget:    *sloP99,
			Window:       *sloWindow,
			QueueHigh:    *sloQueueHigh,
			HealthzLevel: *healthzLevel,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlservd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if names := srv.Shards(); len(names) > 0 {
		fmt.Printf("rlservd: fleet mode, shards %v, serving policy %q on %s (batch-window=%v max-batch=%d)\n",
			names, srv.Engine().Name(), *addr, *batchWindow, *maxBatch)
	} else {
		fmt.Printf("rlservd: serving policy %q on %s (batch-window=%v max-batch=%d)\n",
			srv.Engine().Name(), *addr, *batchWindow, *maxBatch)
	}

	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "rlservd: %v\n", err)
		os.Exit(1)
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		fmt.Println("rlservd: shut down")
	}
}
