// Command rlservd is the online scheduling-decision daemon: it loads a
// trained model snapshot (or a named heuristic) and serves scheduling
// decisions over an HTTP JSON API, batching concurrent requests into
// single policy-network forward passes.
//
// Serve a trained snapshot:
//
//	rlservd -model model.json -addr :9090
//
// Serve a heuristic (any of FCFS, WFP3, UNICEP, SJF, F1, SAF, LJF):
//
//	rlservd -policy SJF -addr :9090
//
// Ask for a decision:
//
//	curl -s localhost:9090/v1/decide -d '{
//	  "now": 0, "free_procs": 96, "total_procs": 128,
//	  "jobs": [{"id": 1, "submit_time": -30, "requested_time": 3600, "requested_procs": 4},
//	           {"id": 2, "submit_time": -10, "requested_time": 60,  "requested_procs": 2}]}'
//
// Hot-swap the model under load (zero dropped requests):
//
//	curl -s -X POST localhost:9090/reload -d '{"model": "model-v2.json"}'
//
// Observe:
//
//	curl -s localhost:9090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlsched/internal/serve"
)

func main() {
	model := flag.String("model", "", "model snapshot path (rlsched train output)")
	policy := flag.String("policy", "", "heuristic name instead of a model (FCFS|WFP3|UNICEP|SJF|F1|SAF|LJF)")
	addr := flag.String("addr", ":9090", "listen address")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond,
		"how long a lone request waits for company before a solo forward pass")
	workers := flag.Int("workers", 0, "decision workers (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 64, "max queue states per forward pass")
	flag.Parse()

	srv, err := serve.NewServer(serve.Config{
		ModelPath:   *model,
		PolicyName:  *policy,
		Workers:     *workers,
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlservd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("rlservd: serving policy %q on %s (batch-window=%v max-batch=%d)\n",
		srv.Engine().Name(), *addr, *batchWindow, *maxBatch)

	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "rlservd: %v\n", err)
		os.Exit(1)
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		fmt.Println("rlservd: shut down")
	}
}
