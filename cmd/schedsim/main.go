// Command schedsim runs heuristic schedulers (and optionally a saved RL
// model) through SchedGym on a trace and reports every metric.
//
// Usage:
//
//	schedsim -preset Lublin-1 -jobs 2000 -nseq 10 -seqlen 1024 -backfill
//	schedsim -trace my.swf -model model.json
//	schedsim -preset Lublin-1 -trace-out timeline.json   # Perfetto timeline
//
// -trace-out additionally replays one sampled sequence under the first
// scheduler with an observability recorder attached and writes the job
// timeline as Chrome trace-event JSON (open at https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"rlsched/internal/core"
	"rlsched/internal/fleet"
	"rlsched/internal/metrics"
	"rlsched/internal/obs"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/telemetry"
	"rlsched/internal/trace"
)

func main() {
	preset := flag.String("preset", "Lublin-1", "preset trace name")
	traceFile := flag.String("trace", "", "SWF trace file (overrides -preset)")
	jobs := flag.Int("jobs", 2000, "trace length for presets")
	seed := flag.Int64("seed", 42, "seed for trace synthesis and sequence sampling")
	nseq := flag.Int("nseq", 10, "number of evaluation sequences")
	seqlen := flag.Int("seqlen", 1024, "jobs per evaluation sequence")
	backfill := flag.Bool("backfill", false, "enable EASY backfilling")
	maxObs := flag.Int("maxobs", sim.DefaultMaxObserve, "scheduler-visible queue size")
	model := flag.String("model", "", "saved RL model JSON to include as a scheduler")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace-event / Perfetto timeline of one replayed sequence here")
	timeseries := flag.String("timeseries", "",
		"write sampled health series (utilization, queue depth, pending/running work, bsld) of one replayed sequence as JSON here")
	zoo := flag.Bool("zoo", false, "print the trace-zoo summary (archive presets + chaos generators) and exit")
	flag.Parse()

	if *zoo {
		trace.WriteZooSummary(os.Stdout, *jobs, *seed)
		return
	}

	var tr *trace.Trace
	var err error
	if *traceFile != "" {
		tr, err = trace.LoadSWFFile(*traceFile)
		if err != nil {
			fatal(err)
		}
	} else {
		// ZooTrace resolves the archive presets and the chaos generators
		// through one registry, so -preset accepts any zoo name.
		tr = trace.ZooTrace(*preset, *jobs, *seed)
		if tr == nil {
			fatal(fmt.Errorf("unknown preset %q (have %v)", *preset, trace.ZooNames()))
		}
	}

	type entry struct {
		name string
		s    sim.Scheduler
	}
	var entries []entry
	for _, h := range sched.Heuristics() {
		entries = append(entries, entry{h.Name, h})
	}
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			fatal(err)
		}
		s, err := core.LoadScheduler(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		entries = append(entries, entry{"RL(" + *model + ")", s})
	}

	goals := []metrics.Kind{
		metrics.BoundedSlowdown, metrics.Slowdown, metrics.WaitTime,
		metrics.Turnaround, metrics.Utilization, metrics.FairMaxBoundedSlowdown,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheduler")
	for _, g := range goals {
		fmt.Fprintf(w, "\t%s", g)
	}
	fmt.Fprintln(w)
	for _, e := range entries {
		fmt.Fprintf(w, "%s", e.name)
		for _, g := range goals {
			mean, _, err := core.Evaluate(tr, e.s, core.EvalConfig{
				Goal: g, NSeq: *nseq, SeqLen: *seqlen,
				Backfill: *backfill, MaxObserve: *maxObs, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "\t%.3f", mean)
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	if *traceOut != "" {
		if err := writeTimeline(tr, entries[0].name, entries[0].s,
			*seqlen, *seed, *backfill, *maxObs, *traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "schedsim: wrote %s timeline of %q to %s (open at https://ui.perfetto.dev)\n",
			entries[0].name, tr.Name, *traceOut)
	}
	if *timeseries != "" {
		if err := writeTimeseries(tr, entries[0].s,
			*seqlen, *seed, *backfill, *maxObs, *timeseries); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "schedsim: wrote %s health series of %q to %s\n",
			entries[0].name, tr.Name, *timeseries)
	}
}

// writeTimeline replays one sampled sequence under the given scheduler
// with a collector attached and exports the job spans as a Chrome
// trace-event timeline.
func writeTimeline(tr *trace.Trace, name string, s sim.Scheduler,
	seqlen int, seed int64, backfill bool, maxObs int, path string) error {
	rng := rand.New(rand.NewSource(seed))
	window := tr.SampleWindow(rng, seqlen)
	sm := sim.New(sim.Config{Processors: tr.Processors, Backfill: backfill, MaxObserve: maxObs})
	col := obs.NewCollector()
	sm.SetRecorder(col, fmt.Sprintf("%s/%s", tr.Name, name))
	if err := sm.Load(window); err != nil {
		return err
	}
	if _, err := sm.Run(s); err != nil {
		return err
	}
	return col.WriteChromeTraceFile(path)
}

// writeTimeseries replays one sampled sequence through a single-member
// fleet with health sampling enabled (internal/fleet; sampling is passive,
// so the replay schedules exactly like the plain simulator) and writes the
// sampled series as a telemetry JSON artifact. The sample interval is
// derived from the window span — ~200 samples per run.
func writeTimeseries(tr *trace.Trace, s sim.Scheduler,
	seqlen int, seed int64, backfill bool, maxObs int, path string) error {
	rng := rand.New(rand.NewSource(seed))
	window := tr.SampleWindow(rng, seqlen)
	f, err := fleet.New([]fleet.MemberConfig{{
		Name:      tr.Name,
		Sim:       sim.Config{Processors: tr.Processors, Backfill: backfill, MaxObserve: maxObs},
		Scheduler: s,
	}}, fleet.NewRoundRobin())
	if err != nil {
		return err
	}
	interval := (window[len(window)-1].SubmitTime - window[0].SubmitTime) / 200
	if interval <= 0 {
		interval = 1
	}
	set := telemetry.NewSet()
	if err := f.EnableSampling(fleet.SamplingConfig{Interval: interval, Set: set}); err != nil {
		return err
	}
	if _, err := f.Run(window); err != nil {
		return err
	}
	return set.WriteFile(path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "schedsim: %v\n", err)
	os.Exit(1)
}
