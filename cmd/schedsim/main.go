// Command schedsim runs heuristic schedulers (and optionally a saved RL
// model) through SchedGym on a trace and reports every metric.
//
// Usage:
//
//	schedsim -preset Lublin-1 -jobs 2000 -nseq 10 -seqlen 1024 -backfill
//	schedsim -trace my.swf -model model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func main() {
	preset := flag.String("preset", "Lublin-1", "preset trace name")
	traceFile := flag.String("trace", "", "SWF trace file (overrides -preset)")
	jobs := flag.Int("jobs", 2000, "trace length for presets")
	seed := flag.Int64("seed", 42, "seed for trace synthesis and sequence sampling")
	nseq := flag.Int("nseq", 10, "number of evaluation sequences")
	seqlen := flag.Int("seqlen", 1024, "jobs per evaluation sequence")
	backfill := flag.Bool("backfill", false, "enable EASY backfilling")
	maxObs := flag.Int("maxobs", sim.DefaultMaxObserve, "scheduler-visible queue size")
	model := flag.String("model", "", "saved RL model JSON to include as a scheduler")
	flag.Parse()

	var tr *trace.Trace
	var err error
	if *traceFile != "" {
		tr, err = trace.LoadSWFFile(*traceFile)
		if err != nil {
			fatal(err)
		}
	} else {
		tr = trace.Preset(*preset, *jobs, *seed)
		if tr == nil {
			fatal(fmt.Errorf("unknown preset %q (have %v)", *preset, trace.PresetNames))
		}
	}

	type entry struct {
		name string
		s    sim.Scheduler
	}
	var entries []entry
	for _, h := range sched.Heuristics() {
		entries = append(entries, entry{h.Name, h})
	}
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			fatal(err)
		}
		s, err := core.LoadScheduler(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		entries = append(entries, entry{"RL(" + *model + ")", s})
	}

	goals := []metrics.Kind{
		metrics.BoundedSlowdown, metrics.Slowdown, metrics.WaitTime,
		metrics.Turnaround, metrics.Utilization, metrics.FairMaxBoundedSlowdown,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheduler")
	for _, g := range goals {
		fmt.Fprintf(w, "\t%s", g)
	}
	fmt.Fprintln(w)
	for _, e := range entries {
		fmt.Fprintf(w, "%s", e.name)
		for _, g := range goals {
			mean, _, err := core.Evaluate(tr, e.s, core.EvalConfig{
				Goal: g, NSeq: *nseq, SeqLen: *seqlen,
				Backfill: *backfill, MaxObserve: *maxObs, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "\t%.3f", mean)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "schedsim: %v\n", err)
	os.Exit(1)
}
