// Command experiments regenerates the paper's tables and figures, and
// doubles as the load generator for the decision daemon.
//
// Usage:
//
//	experiments -run table5            # one experiment
//	experiments -run all -scale quick  # everything, CI-sized
//	experiments -list
//
// Scales: quick (seconds–minutes), standard (tens of minutes), paper
// (the §V-A settings; hours of CPU).
//
// Load-generator mode hammers a running rlservd with synthetic queue
// states sampled from a preset trace and reports achieved decisions/sec:
//
//	experiments -loadgen http://127.0.0.1:9090 -load-duration 10s \
//	    -load-conns 4 -load-states 16 -load-queue 128
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rlsched/internal/exp"
	"rlsched/internal/serve"
	"rlsched/internal/trace"
)

// zooStatsJobs sizes the per-workload sample the -zoo summary is computed
// from — large enough for stable Table II-style statistics, small enough
// to stay instant.
const zooStatsJobs = 2000

// printZoo summarizes every trace-zoo workload (archive presets and chaos
// generators) at the given seed.
func printZoo(w io.Writer, seed int64) {
	trace.WriteZooSummary(w, zooStatsJobs, seed)
}

// perIDPath dedicates a per-experiment output file when several experiments
// run in one invocation: "out.json" → "out.table5.json".
func perIDPath(path, id string, many bool) string {
	if path == "" || !many {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + id + ext
}

func main() {
	run := flag.String("run", "", "experiment id (e.g. table5, fig8) or 'all'")
	scale := flag.String("scale", "quick", "quick | standard | paper")
	seed := flag.Int64("seed", 42, "global seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	epochs := flag.Int("epochs", 0, "override training epochs")
	traj := flag.Int("traj", 0, "override trajectories per epoch")
	seqlen := flag.Int("seqlen", 0, "override jobs per trajectory")
	maxObs := flag.Int("maxobs", 0, "override MAX_OBSV_SIZE")
	evalN := flag.Int("eval-nseq", 0, "override evaluation sequences")
	evalLen := flag.Int("eval-seqlen", 0, "override evaluation sequence length")
	traceJobs := flag.Int("trace-jobs", 0, "override synthesized trace length")
	iters := flag.Int("iters", 0, "override PPO policy/value iterations")
	workers := flag.Int("workers", 0, "parallel rollout workers for training runs (0 = GOMAXPROCS)")
	clusters := flag.Int("clusters", 0,
		"scale fleet experiments to N member clusters by cycling each scenario's size template (0 = pinned default fleet)")
	migrate := flag.String("migrate", "",
		"cross-cluster migration policy for fleet experiments: off|hysteresis|always")
	churn := flag.String("churn", "",
		"churn scenario for the fleet-churn experiment: full|drain|join|fail (default full)")
	constraints := flag.String("constraints", "",
		"constraint set for the fleet-constraints experiment: full|taints|affinity (default full)")
	zoo := flag.Bool("zoo", false, "print the trace-zoo summary (archive presets + chaos generators) and exit")
	tracePath := flag.String("trace", "",
		"write a Chrome trace-event / Perfetto timeline of a representative fleet run here (fleet experiments; open at ui.perfetto.dev)")
	timeseriesPath := flag.String("timeseries", "",
		"write sampled fleet health series (utilization, queue depth, bsld, fairness, migrations) of a representative fleet run as JSON here (fleet experiments)")
	reportPath := flag.String("report", "",
		"write a machine-readable run report (scenario, seeds, metrics, phase timings) as JSON here")
	loadgen := flag.String("loadgen", "", "load-generator mode: base URL of a running rlservd")
	loadDur := flag.Duration("load-duration", 5*time.Second, "loadgen measurement window")
	loadConns := flag.Int("load-conns", 4, "loadgen concurrent connections")
	loadStates := flag.Int("load-states", 1, "loadgen queue states per request")
	loadQueue := flag.Int("load-queue", 128, "loadgen pending jobs per queue state")
	loadPreset := flag.String("load-preset", "Lublin-1", "loadgen trace preset for queue states")
	flag.Parse()

	if *loadgen != "" {
		report, err := serve.RunLoad(serve.LoadConfig{
			Addr:         *loadgen,
			Conns:        *loadConns,
			Duration:     *loadDur,
			Preset:       *loadPreset,
			QueueJobs:    *loadQueue,
			StatesPerReq: *loadStates,
			Seed:         *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(report)
		return
	}

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *zoo {
		printZoo(os.Stdout, *seed)
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run <id>|all required (see -list)")
		os.Exit(2)
	}

	var o exp.Options
	switch *scale {
	case "quick":
		o = exp.Quick()
	case "standard":
		o = exp.Standard()
	case "paper":
		o = exp.Paper()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	o.Seed = *seed
	if *epochs > 0 {
		o.Epochs = *epochs
	}
	if *traj > 0 {
		o.TrajPerEpoch = *traj
	}
	if *seqlen > 0 {
		o.SeqLen = *seqlen
	}
	if *maxObs > 0 {
		o.MaxObserve = *maxObs
	}
	if *evalN > 0 {
		o.EvalNSeq = *evalN
	}
	if *evalLen > 0 {
		o.EvalSeqLen = *evalLen
	}
	if *traceJobs > 0 {
		o.TraceJobs = *traceJobs
	}
	if *iters > 0 {
		o.PiIters, o.VIters = *iters, *iters
	}
	if *workers > 0 {
		o.Workers = *workers
	}
	if *clusters > 0 {
		o.Clusters = *clusters
	}
	o.Migrate = *migrate
	o.Churn = *churn
	o.Constraints = *constraints

	ids := []string{*run}
	if *run == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		o.TracePath = perIDPath(*tracePath, id, len(ids) > 1)
		o.TimeseriesPath = perIDPath(*timeseriesPath, id, len(ids) > 1)
		o.ReportPath = perIDPath(*reportPath, id, len(ids) > 1)
		start := time.Now()
		arts, err := exp.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("### %s (scale=%s, %.1fs)\n\n", id, *scale, time.Since(start).Seconds())
		for _, a := range arts {
			a.Print(os.Stdout)
		}
	}
}
