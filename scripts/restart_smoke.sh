#!/usr/bin/env bash
# restart_smoke.sh — end-to-end durability smoke for rlservd.
#
# Boots a fairness-tracking fleet daemon with a checkpoint directory,
# feeds it completion batches (under background /v1/decide load), kills
# it with SIGKILL mid-flight, restarts it on the same directory, and
# asserts:
#
#   1. the fairness report after restart matches the pre-crash state up
#      to the last acked batch (snapshot + WAL replay);
#   2. a client retrying its last batch across the crash is deduplicated
#      (batch_seq survives the restart);
#   3. POST /drain cordons a shard and /readyz flips to 503.
#
# Run from the repository root: ./scripts/restart_smoke.sh
set -euo pipefail

ADDR=127.0.0.1:19273
URL="http://$ADDR"
WORK="$(mktemp -d)"
CKPT="$WORK/ckpt"
PID=""
LOADPID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  [ -n "$LOADPID" ] && kill "$LOADPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "restart-smoke: $*"; }

go build -o "$WORK/rlservd" ./cmd/rlservd

start_daemon() {
  "$WORK/rlservd" -addr "$ADDR" \
    -shard name=a,procs=64,policy=SJF -shard name=b,procs=64,policy=F1 \
    -fair-weight 2 -checkpoint-dir "$CKPT" -checkpoint-interval 1s \
    -decision-cache 256 -batch-window 100us &
  PID=$!
  for _ in $(seq 1 50); do
    if curl -sf "$URL/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  say "daemon did not come up"; exit 1
}

# One /place probe with an empty completion batch: returns the fairness
# block for user 7 without changing the tracker.
probe() {
  curl -sf "$URL/place" -d '{
    "job": [0, 600, 1, 7],
    "clusters": [{"name":"a","now":0,"free_procs":64,"total_procs":64,"jobs":[]},
                 {"name":"b","now":0,"free_procs":64,"total_procs":64,"jobs":[]}]}' |
    jq -cS .fairness
}

# One completion batch from client "smoke" with the given batch_seq.
feed() {
  curl -sf "$URL/place" -d '{
    "job": [0, 600, 1, 3], "client": "smoke", "batch_seq": '"$1"',
    "clusters": [{"name":"a","now":0,"free_procs":64,"total_procs":64,"jobs":[],
                  "completed": [[7, 9000, 60], [7, 9100, 60]]},
                 {"name":"b","now":0,"free_procs":64,"total_procs":64,"jobs":[],
                  "completed": [[3, 12, 600]]}]}'
}

say "boot"
start_daemon

say "background decide load"
go run ./cmd/experiments -loadgen "$URL" -load-duration 20s -load-conns 2 \
  >/dev/null 2>&1 &
LOADPID=$!

say "feed 5 acked completion batches"
for seq in 1 2 3 4 5; do feed "$seq" >/dev/null; done
PRE="$(probe)"
say "pre-crash fairness: $PRE"
# Let at least one periodic checkpoint land, then keep feeding so the
# WAL beyond the snapshot matters too.
sleep 1.5
for seq in 6 7; do feed "$seq" >/dev/null; done
PRE="$(probe)"
say "pre-crash fairness (final): $PRE"

say "kill -9"
kill -9 "$PID"; wait "$PID" 2>/dev/null || true; PID=""
kill "$LOADPID" 2>/dev/null || true; LOADPID=""

say "restart on the same checkpoint dir"
start_daemon
POST="$(probe)"
say "post-crash fairness: $POST"
if [ "$PRE" != "$POST" ]; then
  say "FAIL: fairness state diverged across the crash"
  say "  pre:  $PRE"
  say "  post: $POST"
  exit 1
fi

say "retry the last acked batch across the crash"
RESP="$(feed 7)"
if ! echo "$RESP" | jq -e '.deduped == true' >/dev/null; then
  say "FAIL: cross-crash retry was not deduplicated: $RESP"
  exit 1
fi
if [ "$(probe)" != "$POST" ]; then
  say "FAIL: deduplicated retry changed the tracker"
  exit 1
fi

say "drain shard a, expect /readyz 503"
curl -sf -X POST "$URL/drain" -d '{"cluster":"a"}' >/dev/null
CODE="$(curl -s -o /dev/null -w '%{http_code}' "$URL/readyz")"
if [ "$CODE" != "503" ]; then
  say "FAIL: /readyz answered $CODE with a drained shard, want 503"
  exit 1
fi
# Placement must route around the cordon even when "a" would win.
PLACED="$(curl -sf "$URL/place" -d '{
  "job": [0, 600, 1, 3],
  "clusters": [{"name":"a","now":0,"free_procs":64,"total_procs":64,"jobs":[]},
               {"name":"b","now":0,"free_procs":8,"total_procs":64,"jobs":[]}]}' |
  jq -r .cluster)"
if [ "$PLACED" != "b" ]; then
  say "FAIL: placement chose drained shard: $PLACED"
  exit 1
fi

say "PASS"
