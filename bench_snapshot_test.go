package main_test

import (
	"os"
	"testing"

	"rlsched/internal/obs"
)

// writeBenchSnapshot emits a machine-readable BENCH_<name>.json for one
// benchmark run into $RLSCHED_BENCH_JSON (no-op when the variable is
// unset, so ordinary `go test -bench` runs stay file-free). Call after
// b.StopTimer() so the write never lands inside the measured region.
func writeBenchSnapshot(b *testing.B, name string, metrics map[string]float64) {
	b.Helper()
	dir := os.Getenv(obs.BenchJSONEnv)
	if dir == "" {
		return
	}
	snap := obs.NewBenchSnapshot(name, b.N,
		float64(b.Elapsed().Nanoseconds())/float64(b.N), metrics)
	if path, err := snap.WriteFile(dir); err != nil {
		b.Fatalf("bench snapshot: %v", err)
	} else {
		b.Logf("bench snapshot: wrote %s", path)
	}
}
