package main_test

import (
	"math/rand"
	"testing"

	"rlsched/internal/fleet"
	"rlsched/internal/job"
	"rlsched/internal/nn"
	"rlsched/internal/obs"
	"rlsched/internal/sim"
	"rlsched/internal/telemetry"
	"rlsched/internal/trace"
)

// fleetPlaceFixture builds the shared placement benchmark scene: the RL
// pipeline (capacity predicate, RL marginal-impact scorer through the
// graph-free inference path, queue-wait prior), an 8-cluster
// heterogeneous fleet snapshot and a rotation of arriving jobs.
func fleetPlaceFixture(b *testing.B) (*fleet.Pipeline, []*fleet.Candidate, []*job.Job) {
	b.Helper()
	const maxObs = sim.DefaultMaxObserve
	rng := rand.New(rand.NewSource(21))
	net := nn.NewKernelNet(rng, maxObs, sim.JobFeatures, nil)
	pipeline, err := fleet.RLPipeline(net)
	if err != nil {
		b.Fatal(err)
	}

	tr := trace.Preset("Lublin-1", 2048, 21)
	sizes := []int{256, 256, 128, 128, 128, 64, 64, 64}
	cands := make([]*fleet.Candidate, len(sizes))
	for i, procs := range sizes {
		queue := tr.SampleQueue(rng, 8+rng.Intn(25))
		pendingWork := 0.0
		for _, j := range queue {
			if j.RequestedProcs > procs {
				j.RequestedProcs = procs
			}
			pendingWork += j.RequestedTime * float64(j.RequestedProcs)
		}
		cands[i] = &fleet.Candidate{
			Index:       i,
			Name:        "c",
			View:        sim.ClusterView{FreeProcs: rng.Intn(procs + 1), TotalProcs: procs},
			Visible:     queue,
			Pending:     len(queue),
			PendingWork: pendingWork,
		}
	}
	jobs := make([]*job.Job, 64)
	for i := range jobs {
		q := tr.SampleQueue(rng, 1)
		jobs[i] = q[0]
		if jobs[i].RequestedProcs > 256 {
			jobs[i].RequestedProcs = 256
		}
	}
	return pipeline, cands, jobs
}

// BenchmarkFleetPlace measures the placement-decision hot path: one
// filter/score pipeline pass over the 8-cluster snapshot. placements/s is
// the headline number of the placement subsystem — the rate one fleet
// router shard can route arriving jobs. This is the recorder-off path; a
// no-op recorder must stay within a few percent of it (see
// BenchmarkFleetPlaceExplained).
func BenchmarkFleetPlace(b *testing.B) {
	pipeline, cands, jobs := fleetPlaceFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := pipeline.Place(jobs[i%len(jobs)], cands); k < 0 {
			b.Fatal("placement failed")
		}
	}
	b.StopTimer()
	rate := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "placements/s")
	writeBenchSnapshot(b, "fleetplace", map[string]float64{"placements_per_s": rate})
}

// BenchmarkFleetPlaceExplained is the same placement pass with a decision
// trace captured per placement — a reused obs.Explain and a no-op
// recorder, exactly the shape Fleet.Run uses with a recorder attached.
// Its gap to BenchmarkFleetPlace is the observability overhead a traced
// fleet run pays.
func BenchmarkFleetPlaceExplained(b *testing.B) {
	pipeline, cands, jobs := fleetPlaceFixture(b)
	var ex obs.Explain
	var rec obs.Recorder = obs.Nop{}
	scores := make([]float64, len(cands))
	var evt obs.PlacementDecision
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		k := pipeline.PlaceExplained(j, cands, scores, &ex)
		if k < 0 {
			b.Fatal("placement failed")
		}
		evt = obs.PlacementDecision{
			Time:       j.SubmitTime,
			Router:     pipeline.Name(),
			Job:        obs.Ref(j),
			Winner:     k,
			Cluster:    cands[k].Name,
			TieBreak:   ex.TieBreak,
			Candidates: ex.Candidates,
		}
		rec.Placement(&evt)
	}
	b.StopTimer()
	rate := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "placements/s")
	writeBenchSnapshot(b, "fleetplace_explained", map[string]float64{"placements_per_s": rate})
}

// benchmarkFleetPlaceRun is the end-to-end Fleet.Run counterpart of the
// decision-path pair above: an 8-member heterogeneous fleet routing the
// scale-suite arrival stream, with and without health sampling enabled.
// The sampled/unsampled gap is the telemetry overhead a monitored fleet
// run pays — the acceptance bound is a few percent, because sampling rides
// the event heap instead of adding sweeps (DESIGN.md §11).
func benchmarkFleetPlaceRun(b *testing.B, sampled bool, snapshot string) {
	members := fleetScaleMembers(8)
	stream := fleetScaleStream()
	f, err := fleet.New(members, fleet.BinpackPipeline())
	if err != nil {
		b.Fatal(err)
	}
	var set *telemetry.Set
	if sampled {
		set = telemetry.NewSet()
		span := stream[len(stream)-1].SubmitTime - stream[0].SubmitTime
		interval := span / 64
		if interval < 1 {
			interval = 1
		}
		if err := f.EnableSampling(fleet.SamplingConfig{Interval: interval, Set: set}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Run(cloneFleetStream(stream)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rate := float64(b.N*len(stream)) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "placements/s")
	metrics := map[string]float64{"placements_per_s": rate}
	if set != nil {
		metrics["series"] = float64(set.Len())
	}
	writeBenchSnapshot(b, snapshot, metrics)
}

// BenchmarkFleetPlaceRun is the unsampled Fleet.Run baseline.
func BenchmarkFleetPlaceRun(b *testing.B) {
	benchmarkFleetPlaceRun(b, false, "fleetplace_run")
}

// BenchmarkFleetPlaceRunSampled runs the same fleet with periodic health
// sampling into a telemetry set. Compare against BenchmarkFleetPlaceRun.
func BenchmarkFleetPlaceRunSampled(b *testing.B) {
	benchmarkFleetPlaceRun(b, true, "fleetplace_run_sampled")
}
