package main_test

import (
	"math/rand"
	"testing"

	"rlsched/internal/fleet"
	"rlsched/internal/job"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

// BenchmarkFleetPlace measures the placement-decision hot path: one
// filter/score pipeline pass (capacity predicate, RL marginal-impact
// scorer through the graph-free inference path, queue-wait prior) over an
// 8-cluster heterogeneous fleet snapshot. placements/s is the headline
// number of the placement subsystem — the rate one fleet router shard can
// route arriving jobs.
func BenchmarkFleetPlace(b *testing.B) {
	const maxObs = sim.DefaultMaxObserve
	rng := rand.New(rand.NewSource(21))
	net := nn.NewKernelNet(rng, maxObs, sim.JobFeatures, nil)
	pipeline, err := fleet.RLPipeline(net)
	if err != nil {
		b.Fatal(err)
	}

	tr := trace.Preset("Lublin-1", 2048, 21)
	sizes := []int{256, 256, 128, 128, 128, 64, 64, 64}
	cands := make([]*fleet.Candidate, len(sizes))
	for i, procs := range sizes {
		queue := tr.SampleQueue(rng, 8+rng.Intn(25))
		pendingWork := 0.0
		for _, j := range queue {
			if j.RequestedProcs > procs {
				j.RequestedProcs = procs
			}
			pendingWork += j.RequestedTime * float64(j.RequestedProcs)
		}
		cands[i] = &fleet.Candidate{
			Index:       i,
			Name:        "c",
			View:        sim.ClusterView{FreeProcs: rng.Intn(procs + 1), TotalProcs: procs},
			Visible:     queue,
			Pending:     len(queue),
			PendingWork: pendingWork,
		}
	}
	jobs := make([]*job.Job, 64)
	for i := range jobs {
		q := tr.SampleQueue(rng, 1)
		jobs[i] = q[0]
		if jobs[i].RequestedProcs > 256 {
			jobs[i].RequestedProcs = 256
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := pipeline.Place(jobs[i%len(jobs)], cands); k < 0 {
			b.Fatal("placement failed")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
}
