// Multi-objective example: the same workload, three different optimization
// goals (§V-D). The point of RLScheduler is that switching the target
// metric is a one-line configuration change — no new priority function to
// hand-tune. Each agent learns its own policy and is scored on all goals,
// showing how optimizing one metric trades off another.
//
//	go run ./examples/multiobjective
package main

import (
	"fmt"
	"log"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/rl"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func main() {
	tr := trace.Preset("Lublin-2", 1500, 3)
	goals := []metrics.Kind{metrics.BoundedSlowdown, metrics.Utilization, metrics.WaitTime}

	schedulers := map[metrics.Kind]sim.Scheduler{}
	for _, goal := range goals {
		agent, err := core.New(core.Config{
			Trace:        tr,
			Goal:         goal, // the only thing that changes
			MaxObserve:   32,
			SeqLen:       64,
			TrajPerEpoch: 10,
			Seed:         11,
			PPO:          rl.PPOConfig{TrainPiIters: 20, TrainVIters: 20},
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := agent.Train(15); err != nil {
			log.Fatal(err)
		}
		schedulers[goal] = agent.Scheduler()
		fmt.Printf("trained an agent toward %s\n", goal)
	}

	fmt.Println("\ncross-scoring on identical held-out sequences:")
	fmt.Printf("%-18s %12s %12s %12s\n", "trained for \\ on", "bsld", "util", "wait(s)")
	for _, trainedFor := range goals {
		row := fmt.Sprintf("%-18s", "RL-"+trainedFor.String())
		for _, scoreOn := range goals {
			v, _, err := core.Evaluate(tr, schedulers[trainedFor], core.EvalConfig{
				Goal: scoreOn, NSeq: 4, SeqLen: 256, MaxObserve: 32, Seed: 55,
			})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %12.3f", v)
		}
		fmt.Println(row)
	}
	fmt.Println("\neach row's diagonal entry should be (near) the column's best —")
	fmt.Println("the same library optimizes whichever goal the reward encodes.")
}
