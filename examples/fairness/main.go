// Fairness example (§V-F): optimize the Maximal per-user aggregated
// bounded slowdown instead of the plain average. Heuristic priority
// functions cannot express per-user goals; RLScheduler only needs a
// different reward. The example reports both the fairness metric and the
// plain average, showing the agent protects the worst-off user without
// wrecking overall slowdown.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/rl"
	"rlsched/internal/sched"
	"rlsched/internal/trace"
)

func main() {
	// HPC2N carries user IDs, including one dominant heavy user — the
	// trace the paper uses to discuss fairness limits.
	tr := trace.Preset("HPC2N", 1500, 9)
	users := tr.UserIDs()
	fmt.Printf("trace %s: %d users over %d jobs\n\n", tr.Name, len(users), tr.Len())

	agent, err := core.New(core.Config{
		Trace:        tr,
		Goal:         metrics.FairMaxBoundedSlowdown, // the fairness reward
		MaxObserve:   32,
		SeqLen:       64,
		TrajPerEpoch: 8,
		Seed:         31,
		PPO:          rl.PPOConfig{TrainPiIters: 15, TrainVIters: 15},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := agent.Train(8); err != nil {
		log.Fatal(err)
	}

	evalFair := core.EvalConfig{
		Goal: metrics.FairMaxBoundedSlowdown, NSeq: 4, SeqLen: 256,
		MaxObserve: 32, Backfill: true, Seed: 13,
	}
	evalAvg := evalFair
	evalAvg.Goal = metrics.BoundedSlowdown

	fmt.Printf("%-12s %22s %16s\n", "scheduler", "max per-user bsld", "avg bsld")
	for _, h := range sched.Heuristics() {
		fair, _, err := core.Evaluate(tr, h, evalFair)
		if err != nil {
			log.Fatal(err)
		}
		avg, _, err := core.Evaluate(tr, h, evalAvg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %22.2f %16.2f\n", h.Name, fair, avg)
	}
	fair, _, err := core.Evaluate(tr, agent.Scheduler(), evalFair)
	if err != nil {
		log.Fatal(err)
	}
	avg, _, err := core.Evaluate(tr, agent.Scheduler(), evalAvg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %22.2f %16.2f\n", "RL(fair)", fair, avg)
}
