// Workload-shift example — the paper's core motivation (§I): a fixed,
// hand-tuned priority function cannot adapt when the job mix changes, but
// an RL scheduler simply retrains. This demo trains on a long-job workload
// (Lublin-1), shifts to a bursty SDSC-SP2-like mix, measures the stale
// model, and retrains on the new mix with trajectory filtering (which the
// high-variance new workload needs, §IV-C).
//
//	go run ./examples/workloadshift
package main

import (
	"fmt"
	"log"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/rl"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

// trainAgent trains a fresh agent; filter enables trajectory filtering
// (§IV-C), which high-variance workloads need to train stably.
func trainAgent(tr *trace.Trace, epochs int, filter bool) (*core.Agent, error) {
	agent, err := core.New(core.Config{
		Trace:        tr,
		Goal:         metrics.BoundedSlowdown,
		MaxObserve:   32,
		SeqLen:       64,
		TrajPerEpoch: 10,
		Workers:      4, // parallel rollout collection
		Filter:       filter,
		FilterProbeN: 25,
		FilterPhase1: epochs + 1, // stay in the filtered phase for this demo
		Seed:         41,
		PPO:          rl.PPOConfig{TrainPiIters: 20, TrainVIters: 20},
	})
	if err != nil {
		return nil, err
	}
	_, err = agent.Train(epochs)
	return agent, err
}

func score(tr *trace.Trace, s sim.Scheduler) float64 {
	v, _, err := core.Evaluate(tr, s, core.EvalConfig{
		Goal: metrics.BoundedSlowdown, NSeq: 5, SeqLen: 256,
		MaxObserve: 32, Backfill: true, Seed: 123,
	})
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	before := trace.Preset("Lublin-1", 1500, 40) // long jobs, modest widths
	after := trace.Preset("SDSC-SP2", 1500, 40)  // smaller machine, bursty long jobs

	fmt.Println("phase 1: normal operation on Lublin-1")
	agent, err := trainAgent(before, 12, false)
	if err != nil {
		log.Fatal(err)
	}
	onOld := score(before, agent.Scheduler())
	fmt.Printf("  RL on the trained workload:     bsld %.2f\n\n", onOld)

	fmt.Println("phase 2: the workload shifts to an SDSC-SP2-like mix (no retraining)")
	shifted := score(after, agent.Scheduler())
	fmt.Printf("  stale model on the new workload: bsld %.2f\n\n", shifted)

	fmt.Println("phase 3: retrain on the new workload, with trajectory filtering")
	fmt.Println("         (the bursty SDSC-like mix is the §IV-C high-variance case)")
	retrained, err := trainAgent(after, 18, true)
	if err != nil {
		log.Fatal(err)
	}
	recovered := score(after, retrained.Scheduler())
	fmt.Printf("  retrained model:                 bsld %.2f\n\n", recovered)

	if recovered <= shifted {
		fmt.Println("retraining matched or beat the stale model — no manual tuning involved.")
	} else {
		fmt.Println("note: at this tiny demo budget retraining did not beat the stale model;")
		fmt.Println("raise epochs (the paper uses 100×100×256) for the full effect — and note")
		fmt.Println("the Table VII stability result: even the stale model stays in the")
		fmt.Println("heuristic band, so the shift is never catastrophic.")
	}
}
