// Quickstart: train a small RLScheduler agent on a synthetic Lublin
// workload toward minimum average bounded slowdown, then compare it with
// the classic heuristics on held-out job sequences.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/rl"
	"rlsched/internal/sched"
	"rlsched/internal/trace"
)

func main() {
	// 1. A workload: 2000 jobs from the Lublin-Feitelson model on a
	// 256-processor cluster (Table II's Lublin-1 configuration).
	tr := trace.Preset("Lublin-1", 2000, 1)
	fmt.Printf("trace: %+v\n\n", tr.ComputeStats())

	// 2. An agent: kernel policy network + PPO, rewarded with the
	// negative average bounded slowdown. Scaled down so this demo runs
	// in about a minute; see exp.Paper() for the paper's settings.
	agent, err := core.New(core.Config{
		Trace:        tr,
		Goal:         metrics.BoundedSlowdown,
		MaxObserve:   32,
		SeqLen:       64,
		TrajPerEpoch: 10,
		Seed:         7,
		PPO:          rl.PPOConfig{TrainPiIters: 20, TrainVIters: 20},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train, watching the §V training curve.
	for epoch := 1; epoch <= 10; epoch++ {
		s, err := agent.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %2d: avg bounded slowdown %.2f (kl=%.4f)\n",
			s.Epoch, s.MeanMetric, s.Update.KL)
	}

	// 4. Evaluate against the Table III heuristics on the same held-out
	// sequences (identical seed = identical workloads for everyone).
	eval := core.EvalConfig{
		Goal:       metrics.BoundedSlowdown,
		NSeq:       5,
		SeqLen:     256,
		MaxObserve: 32,
		Backfill:   true,
		Seed:       99,
	}
	fmt.Println("\nscheduler      avg bounded slowdown (5 × 256-job sequences, backfilling)")
	for _, h := range sched.Heuristics() {
		v, _, err := core.Evaluate(tr, h, eval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.2f\n", h.Name, v)
	}
	v, _, err := core.Evaluate(tr, agent.Scheduler(), eval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %10.2f\n", "RLScheduler", v)
}
