// Generalization example (the Table VII question): train RLScheduler on
// one workload, save the model, and apply it to workloads it has never
// seen — including a completely different machine scale. The paper's
// stability claim is that the transferred model degrades gracefully,
// staying within the band spanned by the best and worst heuristics.
//
//	go run ./examples/generalization
package main

import (
	"bytes"
	"fmt"
	"log"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/rl"
	"rlsched/internal/sched"
	"rlsched/internal/trace"
)

func main() {
	// Train on the Lublin-1 workload.
	source := trace.Preset("Lublin-1", 1500, 5)
	agent, err := core.New(core.Config{
		Trace:        source,
		Goal:         metrics.BoundedSlowdown,
		MaxObserve:   32,
		SeqLen:       64,
		TrajPerEpoch: 8,
		Seed:         21,
		PPO:          rl.PPOConfig{TrainPiIters: 15, TrainVIters: 15},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := agent.Train(8); err != nil {
		log.Fatal(err)
	}

	// Persist and reload — the production workflow: the model file is
	// what a cluster would ship.
	var model bytes.Buffer
	if err := agent.Save(&model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained RL-Lublin-1 (%d bytes serialized)\n\n", model.Len())
	rlSched, err := core.LoadScheduler(&model)
	if err != nil {
		log.Fatal(err)
	}

	// Apply to unseen workloads with very different characteristics.
	fmt.Printf("%-14s %12s %12s %12s  %s\n", "target trace", "RL-Lublin-1", "best heur", "worst heur", "verdict")
	for _, name := range []string{"Lublin-1", "SDSC-SP2", "HPC2N", "ANL-Intrepid"} {
		target := trace.Preset(name, 1500, 6)
		eval := core.EvalConfig{
			Goal: metrics.BoundedSlowdown, NSeq: 4, SeqLen: 256,
			MaxObserve: 32, Seed: 77,
		}
		rlv, _, err := core.Evaluate(target, rlSched, eval)
		if err != nil {
			log.Fatal(err)
		}
		best, worst := 0.0, 0.0
		for i, h := range sched.Heuristics() {
			v, _, err := core.Evaluate(target, h, eval)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 || v < best {
				best = v
			}
			if i == 0 || v > worst {
				worst = v
			}
		}
		verdict := "within heuristic band"
		if rlv < best {
			verdict = "beats every heuristic"
		} else if rlv > worst {
			verdict = "WORSE than worst heuristic"
		}
		fmt.Printf("%-14s %12.2f %12.2f %12.2f  %s\n", name, rlv, best, worst, verdict)
	}
}
