// Package main_test is the benchmark harness of DESIGN.md §2: one
// testing.B benchmark per paper table and figure, each invoking the
// corresponding internal/exp runner at Quick scale and reporting the
// regenerated rows/series on first iteration. Run everything with
//
//	go test -bench=. -benchmem
//
// and a single artifact with e.g. -bench=BenchmarkTable5. Scale up by
// setting RLSCHED_BENCH_SCALE=standard|paper (paper-scale runs take hours,
// matching §V-A's 100×100×256 training shape).
package main_test

import (
	"flag"
	"io"
	"os"
	"testing"

	"rlsched/internal/exp"
)

// benchWorkers sets the rollout-collection parallelism of the training
// benchmarks, e.g. `go test -bench=Table9TrainingEpoch -workers=8`.
// 0 means GOMAXPROCS; results are bit-identical for any value.
var benchWorkers = flag.Int("workers", 0, "rollout workers for training benchmarks (0 = GOMAXPROCS)")

func benchOptions() exp.Options {
	var o exp.Options
	switch os.Getenv("RLSCHED_BENCH_SCALE") {
	case "paper":
		o = exp.Paper()
	case "standard":
		o = exp.Standard()
	default:
		o = exp.Quick()
	}
	o.Workers = *benchWorkers
	return o
}

// runExperiment executes one experiment per b.N iteration, printing the
// artifacts once so benchmark logs double as reproduction output.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		arts, err := exp.Run(id, o)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			for _, a := range arts {
				a.Print(os.Stdout)
			}
		} else if i == 0 {
			for _, a := range arts {
				a.Print(io.Discard)
			}
		}
	}
}

// --- Tables ---

func BenchmarkTable2TraceStats(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkTable5Bsld(b *testing.B)           { runExperiment(b, "table5") }
func BenchmarkTable6Util(b *testing.B)           { runExperiment(b, "table6") }
func BenchmarkTable7Generalization(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkTable8Fairness(b *testing.B)       { runExperiment(b, "table8") }
func BenchmarkTable10Slowdown(b *testing.B)      { runExperiment(b, "table10") }
func BenchmarkTable11Wait(b *testing.B)          { runExperiment(b, "table11") }

// Table IX is measured both through its runner...
func BenchmarkTable9CostTable(b *testing.B) { runExperiment(b, "table9") }

// ...and directly as micro-benchmarks of the two decision paths the paper
// times on a 128-job queue.
func BenchmarkTable9DecisionLatency(b *testing.B) {
	benchDecision(b, true)
}

func BenchmarkTable9SJFSortLatency(b *testing.B) {
	benchDecision(b, false)
}

func BenchmarkTable9TrainingEpoch(b *testing.B) {
	o := benchOptions()
	agent := newBenchAgent(b, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.TrainEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	// One scheduling decision places one job, so the two rates coincide
	// here; both are reported so BENCH_*.json tracks training throughput
	// in the same units as the serving benchmarks.
	b.StopTimer()
	steps := float64(b.N) * float64(o.TrajPerEpoch) * float64(o.SeqLen)
	rate := steps / b.Elapsed().Seconds()
	b.ReportMetric(rate, "jobs/s")
	b.ReportMetric(rate, "decisions/s")
	writeBenchSnapshot(b, "trainepoch", map[string]float64{"jobs_per_s": rate})
}

// --- Figures ---

func BenchmarkFig3SJFVariance(b *testing.B)         { runExperiment(b, "fig3") }
func BenchmarkFig7FilterDistribution(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8NetworkComparison(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9TrajectoryFiltering(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10TrainingBsld(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11TrainingUtil(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkFig12TrainingSlowdown(b *testing.B)   { runExperiment(b, "fig12") }
func BenchmarkFig13TrainingWait(b *testing.B)       { runExperiment(b, "fig13") }

// --- Ablations (design choices called out in DESIGN.md §5) ---

func BenchmarkAblationBackfillDiscipline(b *testing.B) { runExperiment(b, "ablation-backfill") }
func BenchmarkAblationKernelWidth(b *testing.B)        { runExperiment(b, "ablation-kernel") }
func BenchmarkAblationObsWindow(b *testing.B)          { runExperiment(b, "ablation-obswindow") }
func BenchmarkAblationPPOvsDQN(b *testing.B)           { runExperiment(b, "ablation-dqn") }
