package main_test

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rlsched/internal/nn"
	"rlsched/internal/serve"
	"rlsched/internal/sim"
	"rlsched/internal/telemetry"
)

// Serving hot-path benchmarks: single-request decision latency and batched
// throughput through the full HTTP surface (parser → batcher → policy
// forward pass → response), the path future PRs must not regress. The
// decisions/s metric is the headline number of the serving subsystem.

func newBenchServer(b *testing.B, policyName string, cacheSize int) *httptest.Server {
	b.Helper()
	var cfg serve.Config
	cfg.DecisionCache = cacheSize
	if policyName != "" {
		cfg.PolicyName = policyName
	} else {
		rng := rand.New(rand.NewSource(5))
		pol, err := nn.NewPolicy(rng, "kernel", sim.DefaultMaxObserve, sim.JobFeatures)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := serve.NewPolicyEngine(pol)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Engine = eng
	}
	// No batch window: latency benchmarks measure the request itself, not
	// the coalescing wait.
	cfg.BatchWindow = time.Nanosecond
	srv, err := serve.NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func benchServeDecide(b *testing.B, snapName, policyName string, statesPerReq, cacheSize int) {
	ts := newBenchServer(b, policyName, cacheSize)
	states, err := serve.SyntheticStates("Lublin-1", statesPerReq, sim.DefaultMaxObserve, 42)
	if err != nil {
		b.Fatal(err)
	}
	body := serve.EncodeStates(states)
	client := ts.Client()
	url := ts.URL + "/v1/decide"
	buf := make([]byte, 4096)
	// Whole-run latency distribution: unbounded telemetry histogram, same
	// bucket layout the load generator reports from.
	lat := telemetry.NewHistogram(telemetry.LogBounds(100e-6, 5, 6), 0, 0)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := resp.Body.Read(buf); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		lat.Observe(0, time.Since(t0).Seconds())
	}
	// Each decision places exactly one job, so jobs/s mirrors decisions/s;
	// reporting both keeps BENCH_*.json comparable with the training-epoch
	// benchmark's throughput trajectory.
	b.StopTimer()
	rate := float64(b.N) * float64(statesPerReq) / b.Elapsed().Seconds()
	p50, p95, p99 := lat.Quantile(0, 0.50), lat.Quantile(0, 0.95), lat.Quantile(0, 0.99)
	b.ReportMetric(rate, "decisions/s")
	b.ReportMetric(rate, "jobs/s")
	b.ReportMetric(p50*1e3, "p50-ms")
	b.ReportMetric(p95*1e3, "p95-ms")
	b.ReportMetric(p99*1e3, "p99-ms")
	writeBenchSnapshot(b, snapName, map[string]float64{
		"decisions_per_s": rate,
		"p50_seconds":     p50,
		"p95_seconds":     p95,
		"p99_seconds":     p99,
	})
}

// BenchmarkServeDecide is the single-request latency of one 128-job
// decision through the kernel policy network.
func BenchmarkServeDecide(b *testing.B) { benchServeDecide(b, "servedecide", "", 1, 0) }

// BenchmarkServeDecideBatched pipelines 16 queue states per request — the
// batched-throughput shape the load generator uses.
func BenchmarkServeDecideBatched(b *testing.B) { benchServeDecide(b, "servedecide_batched", "", 16, 0) }

// BenchmarkServeDecideHeuristic serves SJF instead of the network,
// isolating the HTTP+parse overhead from the forward pass.
func BenchmarkServeDecideHeuristic(b *testing.B) {
	benchServeDecide(b, "servedecide_heuristic", "SJF", 1, 0)
}

// BenchmarkServeDecideCached is BenchmarkServeDecide with the decision
// cache in front of the network: after the first request warms the entry,
// every decision is a cache hit — the steady state of a fleet whose
// clusters re-post unchanged queues between arrivals. The gap to the
// servedecide baseline is the forward pass the cache saves.
func BenchmarkServeDecideCached(b *testing.B) { benchServeDecide(b, "servecache", "", 1, 1024) }
