package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %g, want 4", v)
	}
	if s := Std(xs); s != 2 {
		t.Errorf("Std = %g, want 2", s)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Skewness(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice statistics must be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("single-value variance must be 0")
	}
	if Skewness([]float64{1, 1, 1, 1}) != 0 {
		t.Error("constant-sequence skewness must be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max must be infinities")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %g, want 3", m)
	}
	even := []float64{1, 2, 3, 4}
	if m := Median(even); m != 2.5 {
		t.Errorf("even Median = %g, want 2.5", m)
	}
	if q := Quantile(even, 0); q != 1 {
		t.Errorf("q0 = %g, want 1", q)
	}
	if q := Quantile(even, 1); q != 4 {
		t.Errorf("q1 = %g, want 4", q)
	}
	if q := Quantile(even, 0.25); q != 1.75 {
		t.Errorf("q.25 = %g, want 1.75", q)
	}
	// Quantile must not mutate its input.
	if xs[0] != 5 {
		t.Error("Quantile mutated input")
	}
}

func TestSkewnessSign(t *testing.T) {
	right := []float64{1, 1, 1, 2, 2, 3, 50}
	if s := Skewness(right); s <= 0 {
		t.Errorf("right-tailed skewness = %g, want > 0", s)
	}
	left := []float64{-50, -3, -2, -2, -1, -1, -1}
	if s := Skewness(left); s >= 0 {
		t.Errorf("left-tailed skewness = %g, want < 0", s)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		k := int(n%50) + 2
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return Quantile(xs, 0) == Min(xs) && Quantile(xs, 1) == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.5, 1, 5, 9.99, 10, 42}
	h := NewHistogram(xs, 10, 0, 10)
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if !almost(h.BinCenter(0), 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %g, want 0.5", h.BinCenter(0))
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram([]float64{1, 2}, 0, 5, 5)
	if len(h.Counts) != 1 {
		t.Errorf("bins clamped to %d, want 1", len(h.Counts))
	}
	if h.Hi <= h.Lo {
		t.Error("hi must be forced above lo")
	}
}
