// Package stats provides the small set of descriptive statistics the
// RLScheduler pipeline needs: moments, quantiles, skewness and fixed-width
// histograms (used to derive the trajectory-filtering range of §IV-C).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the standardized third moment, or 0 when undefined.
func Skewness(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	m := Mean(xs)
	sd := Std(xs)
	if sd == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d
	}
	return s / float64(len(xs))
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It copies its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram builds a histogram of xs with the given number of bins.
func NewHistogram(xs []float64, bins int, lo, hi float64) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / w)
			if i >= bins {
				i = bins - 1
			}
			h.Counts[i]++
		}
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
