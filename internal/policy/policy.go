// Package policy adapts trained policy networks to the simulator's
// Scheduler interface, so an RL agent can be dropped anywhere a heuristic
// scheduler fits — evaluation sequences, cross-trace generalization runs
// (Table VII) and the production-style inference path of Table IX.
package policy

import (
	"sync"

	"rlsched/internal/job"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
)

// NetScheduler wraps a policy network as a deterministic sim.Scheduler:
// it builds the same observation the training environment builds and picks
// the highest-probability job (no exploration at inference, §IV-B1).
// Decisions run on the graph-free nn.Inferer fast path with pooled scratch
// buffers, so Pick is safe for concurrent use and allocation-free in
// steady state.
type NetScheduler struct {
	Net    nn.PolicyNet
	inf    nn.Inferer
	maxObs int
	feat   int
	pool   sync.Pool // *pickScratch
}

type pickScratch struct {
	obs    []float64
	logits []float64
}

// NewNetScheduler wraps net.
func NewNetScheduler(net nn.PolicyNet) *NetScheduler {
	maxObs, feat := net.Dims()
	return &NetScheduler{Net: net, inf: nn.AsInferer(net), maxObs: maxObs, feat: feat}
}

// Pick implements sim.Scheduler.
func (n *NetScheduler) Pick(visible []*job.Job, now float64, view sim.ClusterView) int {
	sc, _ := n.pool.Get().(*pickScratch)
	if sc == nil {
		sc = &pickScratch{
			obs:    make([]float64, n.maxObs*n.feat),
			logits: make([]float64, n.maxObs),
		}
	}
	sim.BuildObsInto(sc.obs, visible, now, view, len(visible), n.maxObs)
	n.inf.InferLogits(sc.obs, 1, sc.logits)
	limit := len(visible)
	if limit > n.maxObs {
		limit = n.maxObs
	}
	best := 0
	for j := 1; j < limit; j++ {
		if sc.logits[j] > sc.logits[best] {
			best = j
		}
	}
	n.pool.Put(sc)
	return best
}
