// Package policy adapts trained policy networks to the simulator's
// Scheduler interface, so an RL agent can be dropped anywhere a heuristic
// scheduler fits — evaluation sequences, cross-trace generalization runs
// (Table VII) and the production-style inference path of Table IX.
package policy

import (
	ag "rlsched/internal/autograd"
	"rlsched/internal/job"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
)

// NetScheduler wraps a policy network as a deterministic sim.Scheduler:
// it builds the same observation the training environment builds and picks
// the highest-probability job (no exploration at inference, §IV-B1).
type NetScheduler struct {
	Net    nn.PolicyNet
	maxObs int
	feat   int
}

// NewNetScheduler wraps net.
func NewNetScheduler(net nn.PolicyNet) *NetScheduler {
	maxObs, feat := net.Dims()
	return &NetScheduler{Net: net, maxObs: maxObs, feat: feat}
}

// Pick implements sim.Scheduler.
func (n *NetScheduler) Pick(visible []*job.Job, now float64, view sim.ClusterView) int {
	obs := sim.BuildObs(visible, now, view, len(visible), n.maxObs)
	logits := n.Net.Logits(ag.FromSlice(obs, 1, n.maxObs*n.feat))
	limit := len(visible)
	if limit > n.maxObs {
		limit = n.maxObs
	}
	best := 0
	for j := 1; j < limit; j++ {
		if logits.Data[j] > logits.Data[best] {
			best = j
		}
	}
	return best
}
