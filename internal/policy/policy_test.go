package policy

import (
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func TestPickInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewKernelNet(rng, 16, sim.JobFeatures, nil)
	s := NewNetScheduler(net)
	view := sim.ClusterView{FreeProcs: 32, TotalProcs: 64}
	for n := 1; n <= 16; n++ {
		var visible []*job.Job
		for i := 0; i < n; i++ {
			visible = append(visible, job.New(i+1, 0, float64(10*(i+1)), 1+i%4, float64(10*(i+1))))
		}
		got := s.Pick(visible, 100, view)
		if got < 0 || got >= n {
			t.Fatalf("Pick = %d with %d visible jobs", got, n)
		}
	}
}

func TestPickDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewKernelNet(rng, 8, sim.JobFeatures, nil)
	s := NewNetScheduler(net)
	view := sim.ClusterView{FreeProcs: 8, TotalProcs: 16}
	visible := []*job.Job{
		job.New(1, 0, 100, 2, 100),
		job.New(2, 0, 50, 1, 50),
		job.New(3, 0, 900, 8, 900),
	}
	first := s.Pick(visible, 10, view)
	for i := 0; i < 5; i++ {
		if got := s.Pick(visible, 10, view); got != first {
			t.Fatal("inference must be deterministic (argmax, no sampling)")
		}
	}
}

func TestNetSchedulerDrivesSimulator(t *testing.T) {
	tr := trace.Preset("Lublin-1", 120, 3)
	rng := rand.New(rand.NewSource(3))
	net := nn.NewKernelNet(rng, 16, sim.JobFeatures, nil)
	s := sim.New(sim.Config{Processors: tr.Processors, MaxObserve: 16, Backfill: true})
	if err := s.Load(tr.Window(0, 120)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(NewNetScheduler(net))
	if err != nil {
		t.Fatal(err)
	}
	if v := metrics.Value(metrics.BoundedSlowdown, res); v < 1 {
		t.Errorf("bsld %g < 1 impossible", v)
	}
	for _, j := range res.Jobs {
		if !j.Started() {
			t.Fatal("every job must run under an untrained network too")
		}
	}
}

// TestVisibleLongerThanMaxObs: if the simulator is configured with a larger
// window than the network, Pick must stay within the network's slots.
func TestVisibleLongerThanMaxObs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := nn.NewKernelNet(rng, 4, sim.JobFeatures, nil)
	s := NewNetScheduler(net)
	var visible []*job.Job
	for i := 0; i < 10; i++ {
		visible = append(visible, job.New(i+1, 0, 10, 1, 10))
	}
	got := s.Pick(visible, 0, sim.ClusterView{FreeProcs: 4, TotalProcs: 4})
	if got < 0 || got >= 4 {
		t.Fatalf("Pick = %d, must stay within the network's 4 slots", got)
	}
}
