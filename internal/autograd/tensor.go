// Package autograd is a tape-free reverse-mode automatic differentiation
// engine over dense float64 tensors. It provides exactly the operator set
// the RLScheduler networks need — matrix multiplication, elementwise
// arithmetic, ReLU/Tanh, (log-)softmax, gather, reductions, 2-D convolution
// and max-pooling — with gradients verified against finite differences in
// the test suite. There is no mature autograd stack in Go, so this package
// is the substrate standing in for the paper's TensorFlow (DESIGN.md §3).
package autograd

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Tensor is a dense row-major float64 tensor participating in a dynamically
// built computation graph. Tensors created by operators record a backward
// closure and their operands; calling Backward on a scalar result
// propagates gradients to every upstream tensor with RequiresGrad set.
type Tensor struct {
	Shape []int
	Data  []float64
	Grad  []float64

	// RequiresGrad marks leaf tensors (parameters) whose gradients are
	// wanted. Interior nodes always receive gradients while the graph is
	// unwound but only leaves keep meaningful state across steps.
	RequiresGrad bool

	op     string
	prev   []*Tensor
	backFn func()
}

// numel returns the product of dims.
func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("autograd: non-positive dim in shape %v", shape))
		}
		n *= d
	}
	return n
}

// New returns a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, numel(shape))}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != numel(shape) {
		panic(fmt.Sprintf("autograd: %d values for shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Param returns a gradient-tracking leaf initialized with data (copied).
func Param(data []float64, shape ...int) *Tensor {
	t := New(shape...)
	copy(t.Data, data)
	t.RequiresGrad = true
	t.Grad = make([]float64, len(t.Data))
	return t
}

// RandParam returns a gradient-tracking leaf with entries uniform in
// [-scale, scale].
func RandParam(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	t.RequiresGrad = true
	t.Grad = make([]float64, len(t.Data))
	return t
}

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rows and Cols interpret a 2-D tensor.
func (t *Tensor) Rows() int { t.want2D(); return t.Shape[0] }
func (t *Tensor) Cols() int { t.want2D(); return t.Shape[1] }

func (t *Tensor) want2D() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("autograd: want 2-D tensor, have shape %v", t.Shape))
	}
}

// At returns element (i, j) of a 2-D tensor.
func (t *Tensor) At(i, j int) float64 { t.want2D(); return t.Data[i*t.Shape[1]+j] }

// item returns the single value of a scalar tensor.
func (t *Tensor) Item() float64 {
	if len(t.Data) != 1 {
		panic(fmt.Sprintf("autograd: Item on tensor with %d elements", len(t.Data)))
	}
	return t.Data[0]
}

// ensureGrad lazily allocates the gradient buffer.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// needsGrad reports whether gradients flowing into t serve any purpose:
// either t is a parameter leaf (RequiresGrad) or an interior node whose
// backward closure propagates further. Gradients of plain data leaves
// (batch observations, targets) are write-only — expensive operators skip
// computing them.
func (t *Tensor) needsGrad() bool { return t.RequiresGrad || t.backFn != nil }

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// graphNodes counts every operator node ever wired into a computation
// graph. Hot inference paths must stay graph-free; tests assert the count
// does not move across a rollout or serving decision.
var graphNodes atomic.Int64

// GraphNodeCount returns the number of graph nodes constructed since
// process start. The absolute value is meaningless; deltas prove a code
// path did (or did not) touch the autograd engine.
func GraphNodeCount() int64 { return graphNodes.Load() }

// newFrom builds an operator result wired to its operands.
func newFrom(op string, shape []int, prev ...*Tensor) *Tensor {
	graphNodes.Add(1)
	t := New(shape...)
	t.op = op
	t.prev = prev
	return t
}

// Backward runs reverse-mode differentiation from a scalar tensor, seeding
// its gradient with 1 and visiting the graph in reverse topological order.
// Gradients accumulate into .Grad buffers; callers zero parameter grads
// between optimization steps.
func (t *Tensor) Backward() {
	if len(t.Data) != 1 {
		panic("autograd: Backward requires a scalar loss")
	}
	// Topological order by depth-first post-order.
	var order []*Tensor
	visited := map[*Tensor]bool{}
	var visit func(n *Tensor)
	visit = func(n *Tensor) {
		if visited[n] {
			return
		}
		visited[n] = true
		for _, p := range n.prev {
			visit(p)
		}
		order = append(order, n)
	}
	visit(t)
	for _, n := range order {
		n.ensureGrad()
	}
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backFn != nil {
			order[i].backFn()
		}
	}
}

// Detach returns a gradient-free copy sharing the data buffer, cutting the
// graph (used for targets and rollout-time inference values).
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: t.Data}
}

// Clone returns an independent deep copy (no graph, no grad tracking).
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// String summarizes the tensor.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(shape=%v, op=%q)", t.Shape, t.op)
}

func sameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

func assertSameShape(op string, a, b *Tensor) {
	if !sameShape(a, b) {
		panic(fmt.Sprintf("autograd: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
