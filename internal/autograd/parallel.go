package autograd

import (
	"runtime"
	"sync"
)

// The blocked execution scheme of the fused Dense layer. Large batches are
// cut into a FIXED number of row blocks; blocks may run on as many
// goroutines as the machine offers, but every floating-point accumulation
// order is a function of the shape alone — per-block partial gradients are
// reduced in block order — so training results are bit-identical on a
// laptop and a 64-core server. The path choice (serial vs blocked) also
// depends only on the row count, never on GOMAXPROCS.

// denseBlockRows is the row count at which Dense switches to the blocked
// path.
const denseBlockRows = 512

// denseBlocks is the fixed block count of the blocked path (also the
// maximum useful parallelism of one Dense call).
const denseBlocks = 8

// blockRange returns the half-open row range of block b.
func blockRange(m, b int) (int, int) {
	return b * m / denseBlocks, (b + 1) * m / denseBlocks
}

// runBlocks executes fn(0..denseBlocks-1), concurrently when the machine
// has spare processors. fn must only touch block-private or read-only
// state.
func runBlocks(fn func(b int)) {
	procs := runtime.GOMAXPROCS(0)
	if procs > denseBlocks {
		procs = denseBlocks
	}
	if procs <= 1 {
		for b := 0; b < denseBlocks; b++ {
			fn(b)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range ch {
				fn(b)
			}
		}()
	}
	for b := 0; b < denseBlocks; b++ {
		ch <- b
	}
	close(ch)
	wg.Wait()
}

// scratchPool recycles the per-block gradient partials of Dense backward.
var scratchPool = sync.Pool{New: func() interface{} { return new([]float64) }}

// getZeroed returns a pooled slice of n zeros.
func getZeroed(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	s := (*p)[:n]
	for i := range s {
		s[i] = 0
	}
	*p = s
	return p
}
