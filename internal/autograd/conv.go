package autograd

import "fmt"

// Conv2D computes a valid (no padding), stride-1 2-D convolution of
// x[N,C,H,W] with filters w[F,C,KH,KW] and bias b[1,F], producing
// out[N,F,H-KH+1,W-KW+1]. It exists to reproduce the LeNet baseline of
// Table IV.
func Conv2D(x, w, b *Tensor) *Tensor {
	if len(x.Shape) != 4 || len(w.Shape) != 4 {
		panic(fmt.Sprintf("autograd: Conv2D shapes %v, %v", x.Shape, w.Shape))
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	f, c2, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if c != c2 {
		panic(fmt.Sprintf("autograd: Conv2D channels %d vs %d", c, c2))
	}
	if b.Shape[0] != 1 || b.Shape[1] != f {
		panic(fmt.Sprintf("autograd: Conv2D bias shape %v for %d filters", b.Shape, f))
	}
	oh, ow := h-kh+1, wd-kw+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("autograd: Conv2D kernel %dx%d too large for %dx%d", kh, kw, h, wd))
	}
	out := newFrom("conv2d", []int{n, f, oh, ow}, x, w, b)

	xAt := func(ni, ci, hi, wi int) int { return ((ni*c+ci)*h+hi)*wd + wi }
	wAt := func(fi, ci, hi, wi int) int { return ((fi*c+ci)*kh+hi)*kw + wi }
	oAt := func(ni, fi, hi, wi int) int { return ((ni*f+fi)*oh+hi)*ow + wi }

	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					s := b.Data[fi]
					for ci := 0; ci < c; ci++ {
						for ki := 0; ki < kh; ki++ {
							for kj := 0; kj < kw; kj++ {
								s += x.Data[xAt(ni, ci, oi+ki, oj+kj)] * w.Data[wAt(fi, ci, ki, kj)]
							}
						}
					}
					out.Data[oAt(ni, fi, oi, oj)] = s
				}
			}
		}
	}
	out.backFn = func() {
		x.ensureGrad()
		w.ensureGrad()
		b.ensureGrad()
		for ni := 0; ni < n; ni++ {
			for fi := 0; fi < f; fi++ {
				for oi := 0; oi < oh; oi++ {
					for oj := 0; oj < ow; oj++ {
						g := out.Grad[oAt(ni, fi, oi, oj)]
						if g == 0 {
							continue
						}
						b.Grad[fi] += g
						for ci := 0; ci < c; ci++ {
							for ki := 0; ki < kh; ki++ {
								for kj := 0; kj < kw; kj++ {
									xi := xAt(ni, ci, oi+ki, oj+kj)
									wi := wAt(fi, ci, ki, kj)
									x.Grad[xi] += g * w.Data[wi]
									w.Grad[wi] += g * x.Data[xi]
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Conv2DInfer is Conv2D's inference twin: the identical forward arithmetic
// on raw row-major slices, with no graph node, no backward closure and no
// allocation. x is [n,c,h,w] flat, wgt [f,c,kh,kw], bias [f] (or [1,f]
// flattened), out [n,f,h-kh+1,w-kw+1]. Weights are only read, so any number
// of goroutines may call it concurrently on shared weights.
func Conv2DInfer(x []float64, n, c, h, wd int, wgt, bias []float64, f, kh, kw int, out []float64) {
	oh, ow := h-kh+1, wd-kw+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("autograd: Conv2DInfer kernel %dx%d too large for %dx%d", kh, kw, h, wd))
	}
	if len(x) != n*c*h*wd || len(wgt) != f*c*kh*kw || len(bias) != f || len(out) != n*f*oh*ow {
		panic("autograd: Conv2DInfer buffer sizes do not match dims")
	}
	xAt := func(ni, ci, hi, wi int) int { return ((ni*c+ci)*h+hi)*wd + wi }
	wAt := func(fi, ci, hi, wi int) int { return ((fi*c+ci)*kh+hi)*kw + wi }
	oAt := func(ni, fi, hi, wi int) int { return ((ni*f+fi)*oh+hi)*ow + wi }
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					s := bias[fi]
					for ci := 0; ci < c; ci++ {
						for ki := 0; ki < kh; ki++ {
							for kj := 0; kj < kw; kj++ {
								s += x[xAt(ni, ci, oi+ki, oj+kj)] * wgt[wAt(fi, ci, ki, kj)]
							}
						}
					}
					out[oAt(ni, fi, oi, oj)] = s
				}
			}
		}
	}
}

// MaxPool2D max-pools x[N,C,H,W] with a kh×kw window and matching stride
// (floor semantics for ragged edges).
func MaxPool2D(x *Tensor, kh, kw int) *Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("autograd: MaxPool2D shape %v", x.Shape))
	}
	if kh <= 0 || kw <= 0 {
		panic("autograd: MaxPool2D non-positive kernel")
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/kh, w/kw
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("autograd: MaxPool2D %dx%d window on %dx%d input", kh, kw, h, w))
	}
	out := newFrom("maxpool", []int{n, c, oh, ow}, x)
	argmax := make([]int, len(out.Data))

	xAt := func(ni, ci, hi, wi int) int { return ((ni*c+ci)*h+hi)*w + wi }
	oAt := func(ni, ci, hi, wi int) int { return ((ni*c+ci)*oh+hi)*ow + wi }

	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					best := xAt(ni, ci, oi*kh, oj*kw)
					for ki := 0; ki < kh; ki++ {
						for kj := 0; kj < kw; kj++ {
							idx := xAt(ni, ci, oi*kh+ki, oj*kw+kj)
							if x.Data[idx] > x.Data[best] {
								best = idx
							}
						}
					}
					o := oAt(ni, ci, oi, oj)
					out.Data[o] = x.Data[best]
					argmax[o] = best
				}
			}
		}
	}
	out.backFn = func() {
		x.ensureGrad()
		for o, g := range out.Grad {
			x.Grad[argmax[o]] += g
		}
	}
	return out
}

// MaxPool2DInfer is MaxPool2D's inference twin on raw slices (floor
// semantics for ragged edges, like the graph op). x is [n,c,h,w] flat,
// out [n,c,h/kh,w/kw].
func MaxPool2DInfer(x []float64, n, c, h, w, kh, kw int, out []float64) {
	oh, ow := h/kh, w/kw
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("autograd: MaxPool2DInfer %dx%d window on %dx%d input", kh, kw, h, w))
	}
	if len(x) != n*c*h*w || len(out) != n*c*oh*ow {
		panic("autograd: MaxPool2DInfer buffer sizes do not match dims")
	}
	xAt := func(ni, ci, hi, wi int) int { return ((ni*c+ci)*h+hi)*w + wi }
	oAt := func(ni, ci, hi, wi int) int { return ((ni*c+ci)*oh+hi)*ow + wi }
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					best := x[xAt(ni, ci, oi*kh, oj*kw)]
					for ki := 0; ki < kh; ki++ {
						for kj := 0; kj < kw; kj++ {
							if v := x[xAt(ni, ci, oi*kh+ki, oj*kw+kj)]; v > best {
								best = v
							}
						}
					}
					out[oAt(ni, ci, oi, oj)] = best
				}
			}
		}
	}
}
