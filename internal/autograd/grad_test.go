package autograd

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad estimates d loss / d p[i] by central differences, where loss
// rebuilds the computation from scratch each call.
func numericGrad(p *Tensor, loss func() float64) []float64 {
	const eps = 1e-6
	g := make([]float64, len(p.Data))
	for i := range p.Data {
		orig := p.Data[i]
		p.Data[i] = orig + eps
		up := loss()
		p.Data[i] = orig - eps
		down := loss()
		p.Data[i] = orig
		g[i] = (up - down) / (2 * eps)
	}
	return g
}

// checkGrads compares analytic and numeric gradients for every parameter.
func checkGrads(t *testing.T, name string, params []*Tensor, build func() *Tensor) {
	t.Helper()
	loss := build()
	for _, p := range params {
		p.ensureGrad()
		p.ZeroGrad()
	}
	loss = build()
	loss.Backward()
	for pi, p := range params {
		num := numericGrad(p, func() float64 { return build().Item() })
		for i := range num {
			got := p.Grad[i]
			want := num[i]
			tol := 1e-4 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("%s: param %d grad[%d] = %g, numeric %g", name, pi, i, got, want)
				return
			}
		}
	}
}

func randParam(rng *rand.Rand, shape ...int) *Tensor {
	return RandParam(rng, 1, shape...)
}

func TestGradElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 3, 4)
	checkGrads(t, "add", []*Tensor{a, b}, func() *Tensor { return Sum(Add(a, b)) })
	checkGrads(t, "sub", []*Tensor{a, b}, func() *Tensor { return Mean(Sub(a, b)) })
	checkGrads(t, "mul", []*Tensor{a, b}, func() *Tensor { return Sum(Mul(a, b)) })
	checkGrads(t, "scale", []*Tensor{a}, func() *Tensor { return Sum(Scale(a, -2.5)) })
	checkGrads(t, "addscalar", []*Tensor{a}, func() *Tensor { return Sum(AddScalar(a, 3)) })
	checkGrads(t, "square", []*Tensor{a}, func() *Tensor { return Sum(Square(a)) })
	checkGrads(t, "exp", []*Tensor{a}, func() *Tensor { return Sum(Exp(a)) })
	checkGrads(t, "tanh", []*Tensor{a}, func() *Tensor { return Sum(Tanh(a)) })
	checkGrads(t, "composite", []*Tensor{a, b}, func() *Tensor {
		return Mean(Square(Sub(Tanh(Mul(a, b)), a)))
	})
}

func TestGradMatMulAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randParam(rng, 4, 3)
	w := randParam(rng, 3, 5)
	b := randParam(rng, 1, 5)
	checkGrads(t, "matmul", []*Tensor{x, w, b}, func() *Tensor {
		return Sum(Tanh(AddBias(MatMul(x, w), b)))
	})
}

func TestGradReLU(t *testing.T) {
	// Use inputs away from the kink so numeric gradients are valid.
	a := Param([]float64{-2, -1, 0.5, 1, 2, -0.5}, 2, 3)
	checkGrads(t, "relu", []*Tensor{a}, func() *Tensor { return Sum(Square(ReLU(a))) })
}

func TestGradMinimumAndClamp(t *testing.T) {
	a := Param([]float64{-1, 0.3, 2, -0.2}, 2, 2)
	b := Param([]float64{0.5, -0.4, 1, 0.9}, 2, 2)
	checkGrads(t, "minimum", []*Tensor{a, b}, func() *Tensor { return Sum(Minimum(a, b)) })
	c := Param([]float64{-2, -0.5, 0.2, 3}, 2, 2)
	checkGrads(t, "clamp", []*Tensor{c}, func() *Tensor { return Sum(Square(Clamp(c, -1, 1))) })
}

func TestGradLogSoftmaxAndGather(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 4, 6)
	idx := []int{1, 0, 5, 3}
	checkGrads(t, "logsoftmax", []*Tensor{a}, func() *Tensor {
		return Mean(GatherRows(LogSoftmax(a), idx))
	})
	checkGrads(t, "softmax-entropyish", []*Tensor{a}, func() *Tensor {
		return Sum(Mul(Softmax(a), LogSoftmax(a)))
	})
}

func TestGradReshapeConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 2, 6)
	b := randParam(rng, 3, 6)
	checkGrads(t, "reshape", []*Tensor{a}, func() *Tensor {
		return Sum(Square(Reshape(a, 3, 4)))
	})
	checkGrads(t, "concat", []*Tensor{a, b}, func() *Tensor {
		return Mean(Square(Concat(a, b)))
	})
}

func TestGradConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randParam(rng, 2, 2, 5, 4) // N=2,C=2,H=5,W=4
	w := randParam(rng, 3, 2, 3, 2) // F=3,KH=3,KW=2
	b := randParam(rng, 1, 3)
	checkGrads(t, "conv2d", []*Tensor{x, w, b}, func() *Tensor {
		return Sum(Square(Conv2D(x, w, b)))
	})
}

func TestGradMaxPool2D(t *testing.T) {
	// Distinct values so the argmax is stable under eps-perturbation.
	data := make([]float64, 1*2*4*4)
	for i := range data {
		data[i] = float64(i%7)*1.3 + float64(i)*0.01
	}
	x := Param(data, 1, 2, 4, 4)
	checkGrads(t, "maxpool", []*Tensor{x}, func() *Tensor {
		return Sum(Square(MaxPool2D(x, 2, 2)))
	})
}

func TestGradConvPoolPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randParam(rng, 1, 1, 6, 5)
	w := randParam(rng, 2, 1, 3, 3)
	b := randParam(rng, 1, 2)
	w2 := randParam(rng, 6, 4) // pooled 2x(2x1) -> flatten 2*2*3=12? see below
	// conv: 6x5 -> 4x3; pool 2x1 -> 2x3; flatten 2*2*3 = 12. Adjust w2.
	w2 = randParam(rng, 12, 4)
	checkGrads(t, "conv-pool-dense", []*Tensor{x, w, b, w2}, func() *Tensor {
		c := ReLU(Conv2D(x, w, b))
		p := MaxPool2D(c, 2, 1)
		f := Reshape(p, 1, 12)
		return Mean(Square(MatMul(f, w2)))
	})
}
