package autograd

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// numericGrad estimates d loss / d p[i] by central differences, where loss
// rebuilds the computation from scratch each call.
func numericGrad(p *Tensor, loss func() float64) []float64 {
	const eps = 1e-6
	g := make([]float64, len(p.Data))
	for i := range p.Data {
		orig := p.Data[i]
		p.Data[i] = orig + eps
		up := loss()
		p.Data[i] = orig - eps
		down := loss()
		p.Data[i] = orig
		g[i] = (up - down) / (2 * eps)
	}
	return g
}

// checkGrads compares analytic and numeric gradients for every parameter.
func checkGrads(t *testing.T, name string, params []*Tensor, build func() *Tensor) {
	t.Helper()
	loss := build()
	for _, p := range params {
		p.ensureGrad()
		p.ZeroGrad()
	}
	loss = build()
	loss.Backward()
	for pi, p := range params {
		num := numericGrad(p, func() float64 { return build().Item() })
		for i := range num {
			got := p.Grad[i]
			want := num[i]
			tol := 1e-4 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("%s: param %d grad[%d] = %g, numeric %g", name, pi, i, got, want)
				return
			}
		}
	}
}

func randParam(rng *rand.Rand, shape ...int) *Tensor {
	return RandParam(rng, 1, shape...)
}

func TestGradElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 3, 4)
	checkGrads(t, "add", []*Tensor{a, b}, func() *Tensor { return Sum(Add(a, b)) })
	checkGrads(t, "sub", []*Tensor{a, b}, func() *Tensor { return Mean(Sub(a, b)) })
	checkGrads(t, "mul", []*Tensor{a, b}, func() *Tensor { return Sum(Mul(a, b)) })
	checkGrads(t, "scale", []*Tensor{a}, func() *Tensor { return Sum(Scale(a, -2.5)) })
	checkGrads(t, "addscalar", []*Tensor{a}, func() *Tensor { return Sum(AddScalar(a, 3)) })
	checkGrads(t, "square", []*Tensor{a}, func() *Tensor { return Sum(Square(a)) })
	checkGrads(t, "exp", []*Tensor{a}, func() *Tensor { return Sum(Exp(a)) })
	checkGrads(t, "tanh", []*Tensor{a}, func() *Tensor { return Sum(Tanh(a)) })
	checkGrads(t, "composite", []*Tensor{a, b}, func() *Tensor {
		return Mean(Square(Sub(Tanh(Mul(a, b)), a)))
	})
}

func TestGradMatMulAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randParam(rng, 4, 3)
	w := randParam(rng, 3, 5)
	b := randParam(rng, 1, 5)
	checkGrads(t, "matmul", []*Tensor{x, w, b}, func() *Tensor {
		return Sum(Tanh(AddBias(MatMul(x, w), b)))
	})
}

func TestGradReLU(t *testing.T) {
	// Use inputs away from the kink so numeric gradients are valid.
	a := Param([]float64{-2, -1, 0.5, 1, 2, -0.5}, 2, 3)
	checkGrads(t, "relu", []*Tensor{a}, func() *Tensor { return Sum(Square(ReLU(a))) })
}

func TestGradMinimumAndClamp(t *testing.T) {
	a := Param([]float64{-1, 0.3, 2, -0.2}, 2, 2)
	b := Param([]float64{0.5, -0.4, 1, 0.9}, 2, 2)
	checkGrads(t, "minimum", []*Tensor{a, b}, func() *Tensor { return Sum(Minimum(a, b)) })
	c := Param([]float64{-2, -0.5, 0.2, 3}, 2, 2)
	checkGrads(t, "clamp", []*Tensor{c}, func() *Tensor { return Sum(Square(Clamp(c, -1, 1))) })
}

func TestGradLogSoftmaxAndGather(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 4, 6)
	idx := []int{1, 0, 5, 3}
	checkGrads(t, "logsoftmax", []*Tensor{a}, func() *Tensor {
		return Mean(GatherRows(LogSoftmax(a), idx))
	})
	checkGrads(t, "softmax-entropyish", []*Tensor{a}, func() *Tensor {
		return Sum(Mul(Softmax(a), LogSoftmax(a)))
	})
}

func TestGradReshapeConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 2, 6)
	b := randParam(rng, 3, 6)
	checkGrads(t, "reshape", []*Tensor{a}, func() *Tensor {
		return Sum(Square(Reshape(a, 3, 4)))
	})
	checkGrads(t, "concat", []*Tensor{a, b}, func() *Tensor {
		return Mean(Square(Concat(a, b)))
	})
}

func TestGradConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randParam(rng, 2, 2, 5, 4) // N=2,C=2,H=5,W=4
	w := randParam(rng, 3, 2, 3, 2) // F=3,KH=3,KW=2
	b := randParam(rng, 1, 3)
	checkGrads(t, "conv2d", []*Tensor{x, w, b}, func() *Tensor {
		return Sum(Square(Conv2D(x, w, b)))
	})
}

func TestGradMaxPool2D(t *testing.T) {
	// Distinct values so the argmax is stable under eps-perturbation.
	data := make([]float64, 1*2*4*4)
	for i := range data {
		data[i] = float64(i%7)*1.3 + float64(i)*0.01
	}
	x := Param(data, 1, 2, 4, 4)
	checkGrads(t, "maxpool", []*Tensor{x}, func() *Tensor {
		return Sum(Square(MaxPool2D(x, 2, 2)))
	})
}

func TestGradConvPoolPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randParam(rng, 1, 1, 6, 5)
	w := randParam(rng, 2, 1, 3, 3)
	b := randParam(rng, 1, 2)
	w2 := randParam(rng, 6, 4) // pooled 2x(2x1) -> flatten 2*2*3=12? see below
	// conv: 6x5 -> 4x3; pool 2x1 -> 2x3; flatten 2*2*3 = 12. Adjust w2.
	w2 = randParam(rng, 12, 4)
	checkGrads(t, "conv-pool-dense", []*Tensor{x, w, b, w2}, func() *Tensor {
		c := ReLU(Conv2D(x, w, b))
		p := MaxPool2D(c, 2, 1)
		f := Reshape(p, 1, 12)
		return Mean(Square(MatMul(f, w2)))
	})
}

func TestGradDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randParam(rng, 4, 3)
	w := randParam(rng, 3, 5)
	b := randParam(rng, 1, 5)
	for act, name := range map[int]string{
		DenseActNone: "dense-none",
		DenseActReLU: "dense-relu",
		DenseActTanh: "dense-tanh",
	} {
		checkGrads(t, name, []*Tensor{x, w, b}, func() *Tensor {
			return Sum(Square(Dense(x, w, b, act)))
		})
	}
}

func TestDenseMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randParam(rng, 6, 4)
	w := randParam(rng, 4, 3)
	b := randParam(rng, 1, 3)
	fused := Dense(x, w, b, DenseActReLU)
	plain := ReLU(AddBias(MatMul(x, w), b))
	for i := range plain.Data {
		// Bias-first accumulation reorders the sum, so allow last-bit slack.
		if math.Abs(fused.Data[i]-plain.Data[i]) > 1e-12 {
			t.Fatalf("fused[%d] = %g, unfused %g", i, fused.Data[i], plain.Data[i])
		}
	}
}

func TestGradSelectScatterRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randParam(rng, 5, 3)
	checkGrads(t, "selectrows", []*Tensor{a}, func() *Tensor {
		return Sum(Square(SelectRows(a, []int{4, 0, 2, 0})))
	})
	checkGrads(t, "scatterrowsfill", []*Tensor{a}, func() *Tensor {
		// Rows 1 and 3 of the output come from input rows 0 and 2; the
		// remaining 4 output rows replicate fill row 4.
		return Sum(Square(ScatterRowsFill(a, []int{1, 3}, 6, 4)))
	})
	checkGrads(t, "select-scatter-pipeline", []*Tensor{a}, func() *Tensor {
		sel := SelectRows(a, []int{1, 2, 0})
		return Mean(Square(ScatterRowsFill(sel, []int{0, 3}, 5, 2)))
	})
}

func TestGraphNodeCountMoves(t *testing.T) {
	before := GraphNodeCount()
	_ = Sum(Square(Param([]float64{1, 2}, 1, 2)))
	if GraphNodeCount()-before != 2 {
		t.Errorf("expected 2 graph nodes, counter moved by %d", GraphNodeCount()-before)
	}
}

// TestDenseBlockedPath exercises the blocked (parallelizable) Dense path
// (m >= denseBlockRows) against the unfused reference, and proves the
// results are bit-identical whatever GOMAXPROCS is — the blocked reduction
// order is fixed by the shape, not the machine.
func TestDenseBlockedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, k, n := denseBlockRows+37, 9, 6
	mk := make([]float64, m*k)
	for i := range mk {
		if i%3 != 0 { // leave zeros so the skip paths run
			mk[i] = rng.NormFloat64()
		}
	}
	w := randParam(rng, k, n)
	b := randParam(rng, 1, n)

	run := func(procs int) ([]float64, []float64, []float64) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		x := Param(mk, m, k)
		wc, bc := w.Clone(), b.Clone()
		wp := Param(wc.Data, k, n)
		bp := Param(bc.Data, 1, n)
		loss := Sum(Square(Dense(x, wp, bp, DenseActReLU)))
		loss.Backward()
		return x.Grad, wp.Grad, bp.Grad
	}
	x1, w1, b1 := run(1)
	x4, w4, b4 := run(4)
	for name, pair := range map[string][2][]float64{
		"x": {x1, x4}, "w": {w1, w4}, "b": {b1, b4},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s grad[%d] differs across GOMAXPROCS: %g vs %g",
					name, i, pair[0][i], pair[1][i])
			}
		}
	}

	// Cross-check the blocked forward/backward against the unfused ops.
	x := Param(mk, m, k)
	wp := Param(w.Data, k, n)
	bp := Param(b.Data, 1, n)
	fused := Dense(x, wp, bp, DenseActReLU)
	xr := Param(mk, m, k)
	wr := Param(w.Data, k, n)
	br := Param(b.Data, 1, n)
	plain := ReLU(AddBias(MatMul(xr, wr), br))
	for i := range plain.Data {
		if math.Abs(fused.Data[i]-plain.Data[i]) > 1e-12 {
			t.Fatalf("blocked fused[%d] = %g, unfused %g", i, fused.Data[i], plain.Data[i])
		}
	}
	Sum(Square(fused)).Backward()
	Sum(Square(plain)).Backward()
	for i := range wr.Grad {
		if math.Abs(wp.Grad[i]-wr.Grad[i]) > 1e-9*(1+math.Abs(wr.Grad[i])) {
			t.Fatalf("blocked dW[%d] = %g, unfused %g", i, wp.Grad[i], wr.Grad[i])
		}
	}
}

func TestGradMaskedLogSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 3, 5)
	mask := []bool{
		true, true, false, true, false,
		false, true, true, true, true,
		true, false, true, false, true,
	}
	idx := []int{0, 2, 4}
	checkGrads(t, "maskedlogsoftmax", []*Tensor{a}, func() *Tensor {
		return Mean(GatherRows(MaskedLogSoftmax(a, mask, -1e9), idx))
	})
	// Parity with the unfused penalty + LogSoftmax chain.
	pen := New(3, 5)
	for i, ok := range mask {
		if !ok {
			pen.Data[i] = -1e9
		}
	}
	fused := MaskedLogSoftmax(a, mask, -1e9)
	plain := LogSoftmax(Add(a, pen))
	for i := range plain.Data {
		if fused.Data[i] != plain.Data[i] {
			t.Fatalf("fused[%d] = %g, unfused %g", i, fused.Data[i], plain.Data[i])
		}
	}
}
