package autograd

import (
	"fmt"
	"math"
)

// Add returns a + b (identical shapes).
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := newFrom("add", a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g
			b.Grad[i] += g
		}
	}
	return out
}

// Sub returns a - b (identical shapes).
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := newFrom("sub", a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g
			b.Grad[i] -= g
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b (identical shapes).
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := newFrom("mul", a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g * b.Data[i]
			b.Grad[i] += g * a.Data[i]
		}
	}
	return out
}

// Scale returns s · a.
func Scale(a *Tensor, s float64) *Tensor {
	out := newFrom("scale", a.Shape, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g * s
		}
	}
	return out
}

// AddScalar returns a + s.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := newFrom("adds", a.Shape, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + s
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// MatMul returns a[m,k] × b[k,n].
func MatMul(a, b *Tensor) *Tensor {
	a.want2D()
	b.want2D()
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("autograd: MatMul inner dims %d vs %d", k, k2))
	}
	out := newFrom("matmul", []int{m, n}, a, b)
	// i-k-j loop order for cache-friendly access of b and out rows.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		// dA = dOut × Bᵀ ; dB = Aᵀ × dOut.
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : (i+1)*n]
			agrow := a.Grad[i*k : (i+1)*k]
			arow := a.Data[i*k : (i+1)*k]
			for kk := 0; kk < k; kk++ {
				brow := b.Data[kk*n : (kk+1)*n]
				bgrow := b.Grad[kk*n : (kk+1)*n]
				var s float64
				av := arow[kk]
				for j := 0; j < n; j++ {
					g := grow[j]
					s += g * brow[j]
					bgrow[j] += av * g
				}
				agrow[kk] += s
			}
		}
	}
	return out
}

// AddBias adds a bias row b[1,n] to every row of a[m,n].
func AddBias(a, b *Tensor) *Tensor {
	a.want2D()
	b.want2D()
	m, n := a.Shape[0], a.Shape[1]
	if b.Shape[0] != 1 || b.Shape[1] != n {
		panic(fmt.Sprintf("autograd: AddBias bias shape %v for input %v", b.Shape, a.Shape))
	}
	out := newFrom("addbias", a.Shape, a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + b.Data[j]
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g := out.Grad[i*n+j]
				a.Grad[i*n+j] += g
				b.Grad[j] += g
			}
		}
	}
	return out
}

// ReLU returns max(a, 0).
func ReLU(a *Tensor) *Tensor {
	out := newFrom("relu", a.Shape, a)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Tanh returns tanh(a).
func Tanh(a *Tensor) *Tensor {
	out := newFrom("tanh", a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			y := out.Data[i]
			a.Grad[i] += g * (1 - y*y)
		}
	}
	return out
}

// Exp returns eᵃ.
func Exp(a *Tensor) *Tensor {
	out := newFrom("exp", a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = math.Exp(v)
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g * out.Data[i]
		}
	}
	return out
}

// Square returns a².
func Square(a *Tensor) *Tensor {
	out := newFrom("square", a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = v * v
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += 2 * a.Data[i] * g
		}
	}
	return out
}

// Minimum returns the elementwise minimum of a and b; gradient flows to the
// smaller operand (ties favour a), which is exactly the PPO clipped
// surrogate's subgradient convention.
func Minimum(a, b *Tensor) *Tensor {
	assertSameShape("Minimum", a, b)
	out := newFrom("min", a.Shape, a, b)
	for i := range out.Data {
		if a.Data[i] <= b.Data[i] {
			out.Data[i] = a.Data[i]
		} else {
			out.Data[i] = b.Data[i]
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		for i, g := range out.Grad {
			if a.Data[i] <= b.Data[i] {
				a.Grad[i] += g
			} else {
				b.Grad[i] += g
			}
		}
	}
	return out
}

// Clamp limits a to [lo, hi] with zero gradient outside the interval.
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	out := newFrom("clamp", a.Shape, a)
	for i, v := range a.Data {
		switch {
		case v < lo:
			out.Data[i] = lo
		case v > hi:
			out.Data[i] = hi
		default:
			out.Data[i] = v
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			if a.Data[i] >= lo && a.Data[i] <= hi {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Sum reduces to a scalar.
func Sum(a *Tensor) *Tensor {
	out := newFrom("sum", []int{1}, a)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	out.backFn = func() {
		a.ensureGrad()
		g := out.Grad[0]
		for i := range a.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// Mean reduces to the scalar average.
func Mean(a *Tensor) *Tensor {
	out := newFrom("mean", []int{1}, a)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	n := float64(len(a.Data))
	out.Data[0] = s / n
	out.backFn = func() {
		a.ensureGrad()
		g := out.Grad[0] / n
		for i := range a.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// Reshape reinterprets a with a new shape of equal element count.
func Reshape(a *Tensor, shape ...int) *Tensor {
	if numel(shape) != len(a.Data) {
		panic(fmt.Sprintf("autograd: Reshape %v -> %v", a.Shape, shape))
	}
	out := newFrom("reshape", shape, a)
	copy(out.Data, a.Data)
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// LogSoftmax applies a numerically stable row-wise log-softmax to a[m,n].
func LogSoftmax(a *Tensor) *Tensor {
	a.want2D()
	m, n := a.Shape[0], a.Shape[1]
	out := newFrom("logsoftmax", a.Shape, a)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var lse float64
		for _, v := range row {
			lse += math.Exp(v - max)
		}
		lse = math.Log(lse) + max
		for j, v := range row {
			orow[j] = v - lse
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		// d a_j = g_j - softmax_j * sum(g).
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : (i+1)*n]
			orow := out.Data[i*n : (i+1)*n]
			var gsum float64
			for _, g := range grow {
				gsum += g
			}
			for j := 0; j < n; j++ {
				a.Grad[i*n+j] += grow[j] - math.Exp(orow[j])*gsum
			}
		}
	}
	return out
}

// Softmax applies a row-wise softmax (exp of LogSoftmax, sharing its
// stable implementation and gradient).
func Softmax(a *Tensor) *Tensor { return Exp(LogSoftmax(a)) }

// GatherRows picks one column per row: out[i] = a[i, idx[i]], shape [m,1].
func GatherRows(a *Tensor, idx []int) *Tensor {
	a.want2D()
	m, n := a.Shape[0], a.Shape[1]
	if len(idx) != m {
		panic(fmt.Sprintf("autograd: GatherRows %d indices for %d rows", len(idx), m))
	}
	out := newFrom("gather", []int{m, 1}, a)
	for i, j := range idx {
		if j < 0 || j >= n {
			panic(fmt.Sprintf("autograd: GatherRows index %d out of %d cols", j, n))
		}
		out.Data[i] = a.Data[i*n+j]
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, j := range idx {
			a.Grad[i*n+j] += out.Grad[i]
		}
	}
	return out
}

// Concat stacks 2-D tensors with equal column counts along rows.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("autograd: Concat of nothing")
	}
	cols := ts[0].Cols()
	rows := 0
	for _, t := range ts {
		if t.Cols() != cols {
			panic("autograd: Concat column mismatch")
		}
		rows += t.Rows()
	}
	out := newFrom("concat", []int{rows, cols}, ts...)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	out.backFn = func() {
		off := 0
		for _, t := range ts {
			t.ensureGrad()
			for i := range t.Data {
				t.Grad[i] += out.Grad[off+i]
			}
			off += len(t.Data)
		}
	}
	return out
}
