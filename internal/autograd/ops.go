package autograd

import (
	"fmt"
	"math"
)

// Add returns a + b (identical shapes).
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := newFrom("add", a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	out.backFn = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.needsGrad() {
			b.ensureGrad()
			for i, g := range out.Grad {
				b.Grad[i] += g
			}
		}
	}
	return out
}

// Sub returns a - b (identical shapes).
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := newFrom("sub", a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	out.backFn = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.needsGrad() {
			b.ensureGrad()
			for i, g := range out.Grad {
				b.Grad[i] -= g
			}
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b (identical shapes).
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := newFrom("mul", a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	out.backFn = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g * b.Data[i]
			}
		}
		if b.needsGrad() {
			b.ensureGrad()
			for i, g := range out.Grad {
				b.Grad[i] += g * a.Data[i]
			}
		}
	}
	return out
}

// Scale returns s · a.
func Scale(a *Tensor, s float64) *Tensor {
	out := newFrom("scale", a.Shape, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g * s
		}
	}
	return out
}

// AddScalar returns a + s.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := newFrom("adds", a.Shape, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + s
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// MatMul returns a[m,k] × b[k,n].
func MatMul(a, b *Tensor) *Tensor {
	a.want2D()
	b.want2D()
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("autograd: MatMul inner dims %d vs %d", k, k2))
	}
	out := newFrom("matmul", []int{m, n}, a, b)
	// i-k-j loop order for cache-friendly access of b and out rows.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	out.backFn = func() {
		// dA = dOut × Bᵀ ; dB = Aᵀ × dOut. Each side is computed only when
		// its gradient is consumed — dA of the batch-observation leaf (the
		// widest input of the critic) is pure waste — and each pass skips
		// zeros: batch observations are mostly padding and post-ReLU
		// activations are roughly half zeros.
		doA, doB := a.needsGrad(), b.needsGrad()
		if doA {
			a.ensureGrad()
		}
		if doB {
			b.ensureGrad()
		}
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : (i+1)*n]
			allZero := true
			for _, g := range grow {
				if g != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				continue
			}
			arow := a.Data[i*k : (i+1)*k]
			if doA {
				agrow := a.Grad[i*k : (i+1)*k]
				for kk := 0; kk < k; kk++ {
					brow := b.Data[kk*n : (kk+1)*n]
					var s float64
					for j, g := range grow {
						s += g * brow[j]
					}
					agrow[kk] += s
				}
			}
			if doB {
				for kk := 0; kk < k; kk++ {
					if av := arow[kk]; av != 0 {
						bgrow := b.Grad[kk*n : (kk+1)*n]
						for j, g := range grow {
							bgrow[j] += av * g
						}
					}
				}
			}
		}
	}
	return out
}

// AddBias adds a bias row b[1,n] to every row of a[m,n].
func AddBias(a, b *Tensor) *Tensor {
	a.want2D()
	b.want2D()
	m, n := a.Shape[0], a.Shape[1]
	if b.Shape[0] != 1 || b.Shape[1] != n {
		panic(fmt.Sprintf("autograd: AddBias bias shape %v for input %v", b.Shape, a.Shape))
	}
	out := newFrom("addbias", a.Shape, a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + b.Data[j]
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g := out.Grad[i*n+j]
				a.Grad[i*n+j] += g
				b.Grad[j] += g
			}
		}
	}
	return out
}

// ReLU returns max(a, 0).
func ReLU(a *Tensor) *Tensor {
	out := newFrom("relu", a.Shape, a)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Tanh returns tanh(a).
func Tanh(a *Tensor) *Tensor {
	out := newFrom("tanh", a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			y := out.Data[i]
			a.Grad[i] += g * (1 - y*y)
		}
	}
	return out
}

// Exp returns eᵃ.
func Exp(a *Tensor) *Tensor {
	out := newFrom("exp", a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = math.Exp(v)
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g * out.Data[i]
		}
	}
	return out
}

// Square returns a².
func Square(a *Tensor) *Tensor {
	out := newFrom("square", a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = v * v
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += 2 * a.Data[i] * g
		}
	}
	return out
}

// Minimum returns the elementwise minimum of a and b; gradient flows to the
// smaller operand (ties favour a), which is exactly the PPO clipped
// surrogate's subgradient convention.
func Minimum(a, b *Tensor) *Tensor {
	assertSameShape("Minimum", a, b)
	out := newFrom("min", a.Shape, a, b)
	for i := range out.Data {
		if a.Data[i] <= b.Data[i] {
			out.Data[i] = a.Data[i]
		} else {
			out.Data[i] = b.Data[i]
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		b.ensureGrad()
		for i, g := range out.Grad {
			if a.Data[i] <= b.Data[i] {
				a.Grad[i] += g
			} else {
				b.Grad[i] += g
			}
		}
	}
	return out
}

// Clamp limits a to [lo, hi] with zero gradient outside the interval.
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	out := newFrom("clamp", a.Shape, a)
	for i, v := range a.Data {
		switch {
		case v < lo:
			out.Data[i] = lo
		case v > hi:
			out.Data[i] = hi
		default:
			out.Data[i] = v
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			if a.Data[i] >= lo && a.Data[i] <= hi {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Sum reduces to a scalar.
func Sum(a *Tensor) *Tensor {
	out := newFrom("sum", []int{1}, a)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	out.backFn = func() {
		a.ensureGrad()
		g := out.Grad[0]
		for i := range a.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// Mean reduces to the scalar average.
func Mean(a *Tensor) *Tensor {
	out := newFrom("mean", []int{1}, a)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	n := float64(len(a.Data))
	out.Data[0] = s / n
	out.backFn = func() {
		a.ensureGrad()
		g := out.Grad[0] / n
		for i := range a.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// Reshape reinterprets a with a new shape of equal element count. When a
// is a plain data leaf (no gradient consumer), the result is a view
// sharing a's backing array — reshaping a big observation batch costs
// nothing; callers must not mutate either tensor through the other.
func Reshape(a *Tensor, shape ...int) *Tensor {
	if numel(shape) != len(a.Data) {
		panic(fmt.Sprintf("autograd: Reshape %v -> %v", a.Shape, shape))
	}
	if !a.needsGrad() {
		return FromSlice(a.Data, shape...)
	}
	out := newFrom("reshape", shape, a)
	copy(out.Data, a.Data)
	out.backFn = func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g
		}
	}
	return out
}

// LogSoftmax applies a numerically stable row-wise log-softmax to a[m,n].
func LogSoftmax(a *Tensor) *Tensor {
	a.want2D()
	m, n := a.Shape[0], a.Shape[1]
	out := newFrom("logsoftmax", a.Shape, a)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var lse float64
		for _, v := range row {
			lse += math.Exp(v - max)
		}
		lse = math.Log(lse) + max
		for j, v := range row {
			orow[j] = v - lse
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		// d a_j = g_j - softmax_j * sum(g).
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : (i+1)*n]
			orow := out.Data[i*n : (i+1)*n]
			var gsum float64
			for _, g := range grow {
				gsum += g
			}
			for j := 0; j < n; j++ {
				a.Grad[i*n+j] += grow[j] - math.Exp(orow[j])*gsum
			}
		}
	}
	return out
}

// Softmax applies a row-wise softmax (exp of LogSoftmax, sharing its
// stable implementation and gradient).
func Softmax(a *Tensor) *Tensor { return Exp(LogSoftmax(a)) }

// GatherRows picks one column per row: out[i] = a[i, idx[i]], shape [m,1].
func GatherRows(a *Tensor, idx []int) *Tensor {
	a.want2D()
	m, n := a.Shape[0], a.Shape[1]
	if len(idx) != m {
		panic(fmt.Sprintf("autograd: GatherRows %d indices for %d rows", len(idx), m))
	}
	out := newFrom("gather", []int{m, 1}, a)
	for i, j := range idx {
		if j < 0 || j >= n {
			panic(fmt.Sprintf("autograd: GatherRows index %d out of %d cols", j, n))
		}
		out.Data[i] = a.Data[i*n+j]
	}
	out.backFn = func() {
		a.ensureGrad()
		for i, j := range idx {
			a.Grad[i*n+j] += out.Grad[i]
		}
	}
	return out
}

// Concat stacks 2-D tensors with equal column counts along rows.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("autograd: Concat of nothing")
	}
	cols := ts[0].Cols()
	rows := 0
	for _, t := range ts {
		if t.Cols() != cols {
			panic("autograd: Concat column mismatch")
		}
		rows += t.Rows()
	}
	out := newFrom("concat", []int{rows, cols}, ts...)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	out.backFn = func() {
		off := 0
		for _, t := range ts {
			t.ensureGrad()
			for i := range t.Data {
				t.Grad[i] += out.Grad[off+i]
			}
			off += len(t.Data)
		}
	}
	return out
}

// SelectRows gathers whole rows of a[m,n]: out[r,:] = a[idx[r],:]. Indices
// may repeat; gradients accumulate into the selected rows.
func SelectRows(a *Tensor, idx []int) *Tensor {
	a.want2D()
	m, n := a.Shape[0], a.Shape[1]
	// Selecting from a plain data leaf yields another leaf, so downstream
	// consumers skip computing its gradient entirely.
	var out *Tensor
	if a.needsGrad() {
		out = newFrom("selectrows", []int{len(idx), n}, a)
	} else {
		out = New(len(idx), n)
	}
	for r, i := range idx {
		if i < 0 || i >= m {
			panic(fmt.Sprintf("autograd: SelectRows index %d out of %d rows", i, m))
		}
		copy(out.Data[r*n:(r+1)*n], a.Data[i*n:(i+1)*n])
	}
	if !a.needsGrad() {
		return out
	}
	out.backFn = func() {
		a.ensureGrad()
		for r, i := range idx {
			grow := out.Grad[r*n : (r+1)*n]
			agrow := a.Grad[i*n : (i+1)*n]
			for j, g := range grow {
				agrow[j] += g
			}
		}
	}
	return out
}

// ScatterRowsFill spreads a[r,:] into out[idx[r],:] of an [m,n] result;
// every row of out not named by idx receives a copy of a's fill-th row.
// The backward pass routes each output row's gradient to its source, so
// the fill row accumulates the summed gradient of every filled row. It is
// the inverse of compacting a batch whose dropped rows were all identical
// (e.g. all-zero padding rows scored by a shared kernel network).
func ScatterRowsFill(a *Tensor, idx []int, m, fill int) *Tensor {
	a.want2D()
	rows, n := a.Shape[0], a.Shape[1]
	if fill < 0 || fill >= rows {
		panic(fmt.Sprintf("autograd: ScatterRowsFill fill row %d of %d", fill, rows))
	}
	if len(idx) > m {
		panic(fmt.Sprintf("autograd: ScatterRowsFill %d indices into %d rows", len(idx), m))
	}
	out := newFrom("scatterrows", []int{m, n}, a)
	src := make([]int, m)
	for i := range src {
		src[i] = fill
	}
	for r, i := range idx {
		if i < 0 || i >= m {
			panic(fmt.Sprintf("autograd: ScatterRowsFill index %d out of %d rows", i, m))
		}
		if r >= rows {
			panic("autograd: ScatterRowsFill more indices than input rows")
		}
		src[i] = r
	}
	for i := 0; i < m; i++ {
		copy(out.Data[i*n:(i+1)*n], a.Data[src[i]*n:(src[i]+1)*n])
	}
	out.backFn = func() {
		a.ensureGrad()
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : (i+1)*n]
			agrow := a.Grad[src[i]*n : (src[i]+1)*n]
			for j, g := range grow {
				agrow[j] += g
			}
		}
	}
	return out
}

// Activation codes for the fused Dense layer.
const (
	DenseActNone = iota
	DenseActReLU
	DenseActTanh
)

// Dense returns act(a[m,k] × w[k,n] + bias[1,n]) as a single fused graph
// node. Fusing the three steps that MatMul/AddBias/ReLU would otherwise
// perform separately removes two full [m,n] tensor allocations and two
// backward passes per layer — the training update spends most of its time
// here, so the layer fusion is a measurable share of epoch wall-time.
func Dense(a, w, bias *Tensor, act int) *Tensor {
	a.want2D()
	w.want2D()
	m, k := a.Shape[0], a.Shape[1]
	k2, n := w.Shape[0], w.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("autograd: Dense inner dims %d vs %d", k, k2))
	}
	if bias.Shape[0] != 1 || bias.Shape[1] != n {
		panic(fmt.Sprintf("autograd: Dense bias shape %v for width %d", bias.Shape, n))
	}
	out := newFrom("dense", []int{m, n}, a, w, bias)
	forward := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			copy(orow, bias.Data)
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				wrow := w.Data[kk*n : (kk+1)*n]
				for j, wv := range wrow {
					orow[j] += av * wv
				}
			}
			switch act {
			case DenseActReLU:
				for j, v := range orow {
					if v < 0 {
						orow[j] = 0
					}
				}
			case DenseActTanh:
				for j, v := range orow {
					orow[j] = math.Tanh(v)
				}
			}
		}
	}
	if m >= denseBlockRows {
		runBlocks(func(b int) {
			lo, hi := blockRange(m, b)
			forward(lo, hi)
		})
	} else {
		forward(0, m)
	}
	out.backFn = func() {
		doA, doW, doBias := a.needsGrad(), w.needsGrad(), bias.needsGrad()
		if doA {
			a.ensureGrad()
		}
		if doW {
			w.ensureGrad()
		}
		if doBias {
			bias.ensureGrad()
		}
		// backward handles rows [lo, hi): dA straight into a.Grad (rows are
		// block-private), dW/dBias into the given accumulators.
		backward := func(lo, hi int, dpre, wgrad, bgrad []float64) {
			for i := lo; i < hi; i++ {
				grow := out.Grad[i*n : (i+1)*n]
				orow := out.Data[i*n : (i+1)*n]
				allZero := true
				switch act {
				case DenseActReLU:
					// out > 0 ⟺ pre-activation > 0 (exact zeros stay dead,
					// matching ReLU's subgradient convention).
					for j, g := range grow {
						if g != 0 && orow[j] > 0 {
							dpre[j] = g
							allZero = false
						} else {
							dpre[j] = 0
						}
					}
				case DenseActTanh:
					for j, g := range grow {
						d := g * (1 - orow[j]*orow[j])
						dpre[j] = d
						if d != 0 {
							allZero = false
						}
					}
				default:
					for j, g := range grow {
						dpre[j] = g
						if g != 0 {
							allZero = false
						}
					}
				}
				if allZero {
					continue
				}
				arow := a.Data[i*k : (i+1)*k]
				if doA {
					agrow := a.Grad[i*k : (i+1)*k]
					for kk := 0; kk < k; kk++ {
						wrow := w.Data[kk*n : (kk+1)*n]
						var s float64
						for j, d := range dpre {
							s += d * wrow[j]
						}
						agrow[kk] += s
					}
				}
				if doW {
					for kk := 0; kk < k; kk++ {
						if av := arow[kk]; av != 0 {
							wgrow := wgrad[kk*n : (kk+1)*n]
							for j, d := range dpre {
								wgrow[j] += av * d
							}
						}
					}
				}
				if doBias {
					for j, d := range dpre {
						bgrad[j] += d
					}
				}
			}
		}
		if m < denseBlockRows {
			backward(0, m, make([]float64, n), w.Grad, bias.Grad)
			return
		}
		// Blocked path: per-block partial gradients for the shared W and
		// bias, reduced in block order so the summation order is fixed by
		// the shape alone (GOMAXPROCS only changes wall-clock).
		wparts := make([]*[]float64, denseBlocks)
		bparts := make([]*[]float64, denseBlocks)
		runBlocks(func(b int) {
			lo, hi := blockRange(m, b)
			wparts[b], bparts[b] = getZeroed(k*n), getZeroed(n)
			dpre := getZeroed(n)
			backward(lo, hi, *dpre, *wparts[b], *bparts[b])
			scratchPool.Put(dpre)
		})
		for b := 0; b < denseBlocks; b++ {
			if doW {
				for i, v := range *wparts[b] {
					w.Grad[i] += v
				}
			}
			if doBias {
				for j, v := range *bparts[b] {
					bias.Grad[j] += v
				}
			}
			scratchPool.Put(wparts[b])
			scratchPool.Put(bparts[b])
		}
	}
	return out
}

// MaskedLogSoftmax is LogSoftmax(a + penalty·(1-mask)) as one fused node:
// invalid cells (mask[i] false, flat row-major like a) are pushed to
// penalty before the row-wise stable log-softmax. It replaces the
// penalty-tensor + Add + LogSoftmax chain on the PPO hot path, saving two
// full-batch tensors per update iteration.
func MaskedLogSoftmax(a *Tensor, mask []bool, penalty float64) *Tensor {
	a.want2D()
	m, n := a.Shape[0], a.Shape[1]
	if len(mask) != m*n {
		panic(fmt.Sprintf("autograd: MaskedLogSoftmax %d flags for %dx%d", len(mask), m, n))
	}
	out := newFrom("maskedlogsoftmax", a.Shape, a)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		mrow := mask[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		for j, v := range row {
			if !mrow[j] {
				v += penalty
			}
			orow[j] = v
		}
		max := orow[0]
		for _, v := range orow[1:] {
			if v > max {
				max = v
			}
		}
		var lse float64
		for _, v := range orow {
			lse += math.Exp(v - max)
		}
		lse = math.Log(lse) + max
		for j := range orow {
			orow[j] -= lse
		}
	}
	out.backFn = func() {
		a.ensureGrad()
		// Same Jacobian as LogSoftmax: the penalty shift is constant.
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : (i+1)*n]
			orow := out.Data[i*n : (i+1)*n]
			var gsum float64
			for _, g := range grow {
				gsum += g
			}
			agrow := a.Grad[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				agrow[j] += grow[j] - math.Exp(orow[j])*gsum
			}
		}
	}
	return out
}
