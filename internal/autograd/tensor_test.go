package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCreationAndAccessors(t *testing.T) {
	z := New(2, 3)
	if z.Size() != 6 || z.Rows() != 2 || z.Cols() != 3 {
		t.Fatalf("New(2,3): size=%d rows=%d cols=%d", z.Size(), z.Rows(), z.Cols())
	}
	f := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if f.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g, want 3", f.At(1, 0))
	}
	p := Param([]float64{5}, 1)
	if !p.RequiresGrad || p.Grad == nil {
		t.Error("Param must track gradients")
	}
	if p.Item() != 5 {
		t.Errorf("Item = %g, want 5", p.Item())
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("bad shape", func() { New(0, 2) })
	mustPanic("FromSlice mismatch", func() { FromSlice([]float64{1}, 2, 2) })
	mustPanic("Item non-scalar", func() { New(2, 2).Item() })
	mustPanic("At on 1-D", func() { New(4).At(0, 0) })
	mustPanic("Add mismatch", func() { Add(New(2, 2), New(2, 3)) })
	mustPanic("MatMul mismatch", func() { MatMul(New(2, 3), New(2, 3)) })
	mustPanic("Backward non-scalar", func() { New(2, 2).Backward() })
	mustPanic("Gather bad idx", func() { GatherRows(New(2, 2), []int{0, 5}) })
	mustPanic("Reshape mismatch", func() { Reshape(New(2, 2), 3, 3) })
	mustPanic("Conv2D too big", func() {
		Conv2D(New(1, 1, 2, 2), New(1, 1, 5, 5), New(1, 1))
	})
}

func TestBackwardAccumulatesAcrossUses(t *testing.T) {
	// y = a + a: dy/da = 2 per element.
	a := Param([]float64{1, 2}, 1, 2)
	Sum(Add(a, a)).Backward()
	if a.Grad[0] != 2 || a.Grad[1] != 2 {
		t.Errorf("grad = %v, want [2 2] (shared subexpression)", a.Grad)
	}
	// A second Backward without ZeroGrad accumulates further.
	Sum(Add(a, a)).Backward()
	if a.Grad[0] != 4 {
		t.Errorf("grad after 2nd backward = %g, want 4", a.Grad[0])
	}
	a.ZeroGrad()
	if a.Grad[0] != 0 {
		t.Error("ZeroGrad must clear")
	}
}

func TestDetachCutsGraph(t *testing.T) {
	a := Param([]float64{3}, 1)
	b := Scale(a, 2)
	d := b.Detach()
	Sum(Mul(d, d)).Backward()
	if a.Grad[0] != 0 {
		t.Errorf("grad through Detach = %g, want 0", a.Grad[0])
	}
	if d.Data[0] != 6 {
		t.Errorf("Detach data = %g, want 6", d.Data[0])
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("Clone must not share data")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(5), 2+r.Intn(8)
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64() * 10
		}
		s := Softmax(a)
		for i := 0; i < m; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLogSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	a := FromSlice([]float64{1e6, 1e6 - 1, -1e6}, 1, 3)
	ls := LogSoftmax(a)
	for _, v := range ls.Data {
		if math.IsNaN(v) || math.IsInf(v, 1) {
			t.Fatalf("unstable logsoftmax: %v", ls.Data)
		}
	}
	// The max logit dominates: its log-prob ≈ log(1/(1+e^-1)).
	want := -math.Log(1 + math.Exp(-1))
	if math.Abs(ls.Data[0]-want) > 1e-9 {
		t.Errorf("ls[0] = %g, want %g", ls.Data[0], want)
	}
}

func TestMatMulValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 kernel of weight 1 with zero bias reproduces the input.
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	w := FromSlice([]float64{1}, 1, 1, 1, 1)
	b := FromSlice([]float64{0}, 1, 1)
	out := Conv2D(x, w, b)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatalf("identity conv = %v", out.Data)
		}
	}
}

func TestMaxPoolValues(t *testing.T) {
	x := FromSlice([]float64{
		1, 5, 2, 0,
		3, 4, 1, 9,
	}, 1, 1, 2, 4)
	out := MaxPool2D(x, 2, 2)
	if out.Data[0] != 5 || out.Data[1] != 9 {
		t.Fatalf("maxpool = %v, want [5 9]", out.Data)
	}
}

func TestRandParamRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := RandParam(rng, 0.5, 10, 10)
	for _, v := range p.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("RandParam value %g out of [-0.5, 0.5]", v)
		}
	}
}
