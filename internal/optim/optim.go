// Package optim provides the gradient-descent optimizers used to train
// RLScheduler's networks: Adam (the paper trains with learning rate 1e-3)
// and plain SGD.
package optim

import (
	"math"

	ag "rlsched/internal/autograd"
)

// Optimizer updates a fixed parameter set from accumulated gradients.
type Optimizer interface {
	// Step applies one update from the current gradients.
	Step()
	// ZeroGrad clears all parameter gradients.
	ZeroGrad()
}

// SGD is vanilla stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*ag.Tensor
	lr       float64
	momentum float64
	velocity [][]float64
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(params []*ag.Tensor, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.Size())
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Grad == nil {
			continue
		}
		if s.velocity != nil {
			v := s.velocity[i]
			for j := range p.Data {
				v[j] = s.momentum*v[j] + p.Grad[j]
				p.Data[j] -= s.lr * v[j]
			}
		} else {
			for j := range p.Data {
				p.Data[j] -= s.lr * p.Grad[j]
			}
		}
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() { zero(s.params) }

// Adam implements Kingma & Ba's Adam with bias correction.
type Adam struct {
	params []*ag.Tensor
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	m, v   [][]float64
	t      int
}

// NewAdam returns an Adam optimizer with the standard betas (0.9, 0.999).
func NewAdam(params []*ag.Tensor, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Size())
		a.v[i] = make([]float64, p.Size())
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			m[j] = a.beta1*m[j] + (1-a.beta1)*g
			v[j] = a.beta2*v[j] + (1-a.beta2)*g*g
			mHat := m[j] / c1
			vHat := v[j] / c2
			p.Data[j] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
		}
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() { zero(a.params) }

func zero(params []*ag.Tensor) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm (a standard PPO stabilizer).
func ClipGradNorm(params []*ag.Tensor, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		f := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= f
			}
		}
	}
	return norm
}
