package optim

import (
	"math"
	"math/rand"
	"testing"

	ag "rlsched/internal/autograd"
)

// quadratic loss (p - target)² summed; gradient is analytic.
func lossOf(p *ag.Tensor, target []float64) *ag.Tensor {
	t := ag.FromSlice(target, p.Shape...)
	return ag.Sum(ag.Square(ag.Sub(p, t)))
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := ag.Param([]float64{5, -3}, 1, 2)
	target := []float64{1, 2}
	opt := NewSGD([]*ag.Tensor{p}, 0.1, 0)
	for i := 0; i < 200; i++ {
		opt.ZeroGrad()
		lossOf(p, target).Backward()
		opt.Step()
	}
	for i, want := range target {
		if math.Abs(p.Data[i]-want) > 1e-3 {
			t.Errorf("SGD p[%d] = %g, want %g", i, p.Data[i], want)
		}
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(momentum float64) float64 {
		p := ag.Param([]float64{10}, 1, 1)
		opt := NewSGD([]*ag.Tensor{p}, 0.01, momentum)
		for i := 0; i < 50; i++ {
			opt.ZeroGrad()
			lossOf(p, []float64{0}).Backward()
			opt.Step()
		}
		return math.Abs(p.Data[0])
	}
	if run(0.9) >= run(0) {
		t.Error("momentum should accelerate convergence on a smooth bowl")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ag.RandParam(rng, 3, 4, 4)
	target := make([]float64, 16)
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	opt := NewAdam([]*ag.Tensor{p}, 0.05)
	var last float64
	for i := 0; i < 500; i++ {
		opt.ZeroGrad()
		l := lossOf(p, target)
		l.Backward()
		opt.Step()
		last = l.Item()
	}
	if last > 1e-3 {
		t.Errorf("Adam final loss = %g, want < 1e-3", last)
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the very first Adam step ≈ lr regardless of
	// gradient scale.
	p := ag.Param([]float64{0}, 1, 1)
	opt := NewAdam([]*ag.Tensor{p}, 0.001)
	p.Grad[0] = 1e6
	opt.Step()
	if math.Abs(math.Abs(p.Data[0])-0.001) > 1e-6 {
		t.Errorf("first Adam step = %g, want ≈ lr", p.Data[0])
	}
}

func TestZeroGrad(t *testing.T) {
	p := ag.Param([]float64{1, 2}, 1, 2)
	p.Grad[0], p.Grad[1] = 3, 4
	NewAdam([]*ag.Tensor{p}, 0.1).ZeroGrad()
	if p.Grad[0] != 0 || p.Grad[1] != 0 {
		t.Error("ZeroGrad must clear gradients")
	}
}

func TestNilGradSkipped(t *testing.T) {
	p := &ag.Tensor{Shape: []int{1}, Data: []float64{7}} // no grad buffer
	NewSGD([]*ag.Tensor{p}, 0.1, 0).Step()
	NewAdam([]*ag.Tensor{p}, 0.1).Step()
	if p.Data[0] != 7 {
		t.Error("parameters without gradients must be untouched")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := ag.Param([]float64{0, 0}, 1, 2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*ag.Tensor{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %g, want 5", norm)
	}
	got := math.Hypot(p.Grad[0], p.Grad[1])
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("post-clip norm = %g, want 1", got)
	}
	// Under the cap: untouched.
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGradNorm([]*ag.Tensor{p}, 1)
	if p.Grad[0] != 0.3 {
		t.Error("gradients under the cap must be untouched")
	}
}
