// Package telemetry is the repository's deterministic time-series core:
// named append-only series collected into an exportable Set, sliding-window
// counters, and log-bucketed windowed histograms with quantile queries.
// Nothing in the package reads a clock — every operation takes an explicit
// `now`, so the same structures run off the simulation clock inside
// deterministic fleet runs (internal/fleet health sampling) and off the
// wall clock inside the serving daemon's SLO monitor (internal/serve).
// The package is single-writer by design: the fleet sampler is serial, and
// concurrent users (the daemon) wrap calls in their own lock.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Point is one (time, value) sample of a series. It marshals as the
// two-element array [t, v] so exported artifacts stay compact.
type Point struct {
	// T is the sample instant (simulation or wall-clock seconds).
	T float64
	// V is the sampled value.
	V float64
}

// MarshalJSON renders the point as [t, v].
func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]float64{p.T, p.V})
}

// UnmarshalJSON accepts the [t, v] form MarshalJSON produces.
func (p *Point) UnmarshalJSON(b []byte) error {
	var a [2]float64
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	p.T, p.V = a[0], a[1]
	return nil
}

// Series is one named, append-only trajectory of samples.
type Series struct {
	// Name identifies the series (e.g. "cluster.large-256.util").
	Name string `json:"name"`
	// Points are the samples in append order (callers append in
	// non-decreasing time order).
	Points []Point `json:"points"`
}

// Add appends one sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Last returns the most recent sample (zero Point when empty).
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Set is a collection of named series, created on first use and exported
// as a JSON artifact. Series iterate in creation order, which is
// deterministic for deterministic writers.
type Set struct {
	series []*Series
	index  map[string]*Series
}

// NewSet returns an empty collection.
func NewSet() *Set { return &Set{index: map[string]*Series{}} }

// Series returns the named series, creating it on first use.
func (s *Set) Series(name string) *Series {
	if sr, ok := s.index[name]; ok {
		return sr
	}
	sr := &Series{Name: name}
	s.index[name] = sr
	s.series = append(s.series, sr)
	return sr
}

// Get returns the named series or nil (never creates).
func (s *Set) Get(name string) *Series { return s.index[name] }

// All returns the series in creation order (shared slices — read-only use
// intended).
func (s *Set) All() []*Series { return s.series }

// Len reports the number of series.
func (s *Set) Len() int { return len(s.series) }

// Reset drops every series, returning the Set to empty (a sampler resets
// its Set at the start of each run so artifacts cover exactly one run).
func (s *Set) Reset() {
	s.series = s.series[:0]
	for k := range s.index {
		delete(s.index, k)
	}
}

// setJSON is the exported artifact shape.
type setJSON struct {
	Series []*Series `json:"series"`
}

// WriteJSON renders the collection as a compact JSON artifact:
// {"series": [{"name": ..., "points": [[t,v], ...]}, ...]}. Compact on
// purpose — a long run emits tens of thousands of points.
func (s *Set) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(setJSON{Series: s.series})
}

// WriteFile writes the JSON artifact to a file path.
func (s *Set) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: write %s: %w", path, err)
	}
	return f.Close()
}

// ReadJSON parses an artifact produced by WriteJSON into a fresh Set
// (round-trip surface for tests and offline tooling).
func ReadJSON(r io.Reader) (*Set, error) {
	var raw setJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("telemetry: parse artifact: %w", err)
	}
	s := NewSet()
	for _, sr := range raw.Series {
		dst := s.Series(sr.Name)
		dst.Points = sr.Points
	}
	return s, nil
}
