package telemetry

// Ladder is a hysteresis degradation state machine: a pure, deterministic
// core the serving SLO monitor drives once per evaluation tick. The level
// climbs one rung after EscalateAfter consecutive overloaded evaluations
// and descends one rung after RecoverAfter consecutive healthy ones; any
// opposite observation resets the streak. Escalation and recovery are
// therefore both debounced — a single bad (or good) tick never moves the
// level, so the ladder cannot flap faster than the configured streaks.
// The zero value is a 2-rung ladder that escalates after 1 bad tick and
// recovers after 1 good tick (Eval normalizes unset fields).
type Ladder struct {
	// MaxLevel is the top rung (default 2: full service → degraded →
	// shedding).
	MaxLevel int
	// EscalateAfter is how many consecutive overloaded evaluations climb
	// one rung (default 1).
	EscalateAfter int
	// RecoverAfter is how many consecutive healthy evaluations descend
	// one rung (default 1).
	RecoverAfter int

	level, bad, good int
}

// norm applies the zero-value defaults.
func (l *Ladder) norm() {
	if l.MaxLevel <= 0 {
		l.MaxLevel = 2
	}
	if l.EscalateAfter <= 0 {
		l.EscalateAfter = 1
	}
	if l.RecoverAfter <= 0 {
		l.RecoverAfter = 1
	}
}

// Eval feeds one evaluation tick (overloaded or healthy) and returns the
// level after applying the hysteresis rules.
func (l *Ladder) Eval(overloaded bool) int {
	l.norm()
	if overloaded {
		l.good = 0
		l.bad++
		if l.bad >= l.EscalateAfter && l.level < l.MaxLevel {
			l.level++
			l.bad = 0
		}
	} else {
		l.bad = 0
		l.good++
		if l.good >= l.RecoverAfter && l.level > 0 {
			l.level--
			l.good = 0
		}
	}
	return l.level
}

// Level returns the current rung without feeding an evaluation.
func (l *Ladder) Level() int { return l.level }

// Reset returns the ladder to level 0 with cleared streaks.
func (l *Ladder) Reset() { l.level, l.bad, l.good = 0, 0, 0 }
