package telemetry

import "math"

// Sliding-window aggregates. Both structures share the same ring design:
// the window is split into a fixed number of equal slots, each slot
// accumulates the samples of one sub-interval, and a slot is lazily
// cleared when the clock wraps back onto it — so Observe/Add are O(1),
// nothing ticks in the background, and reads reconstruct the trailing
// window from the slots that are still fresh. Time never needs to be
// monotone per call, but samples older than the window are dropped.

// ring is the shared slot bookkeeping: slot i covers
// [start, start+slotW) where start is a multiple of slotW.
type ring struct {
	slotW  float64
	starts []float64
}

// slotAt returns the slot index covering now, lazily recycling the slot
// (via the clear callback) when it last covered an older sub-interval.
func (r *ring) slotAt(now float64, clear func(i int)) int {
	start := math.Floor(now/r.slotW) * r.slotW
	i := int(math.Mod(math.Floor(now/r.slotW), float64(len(r.starts))))
	if i < 0 {
		i += len(r.starts)
	}
	if r.starts[i] != start {
		clear(i)
		r.starts[i] = start
	}
	return i
}

// fresh reports whether slot i still lies inside the trailing window
// ending at now (the slot covering now itself is always fresh).
func (r *ring) fresh(i int, now, window float64) bool {
	return r.starts[i] > now-window-r.slotW/2 && r.starts[i] <= now
}

// Counter is a sliding-window accumulator: Add records a value at an
// instant, Sum and Rate report the total and per-second rate over the
// trailing window. The zero value is unusable — construct with NewCounter.
type Counter struct {
	window float64
	ring   ring
	sums   []float64
}

// NewCounter returns a counter over a trailing window of the given length
// (seconds), tracked in `slots` sub-intervals (higher = smoother expiry;
// values <= 0 take defaults of 60s and 8 slots).
func NewCounter(window float64, slots int) *Counter {
	if window <= 0 {
		window = 60
	}
	if slots <= 0 {
		slots = 8
	}
	c := &Counter{
		window: window,
		ring:   ring{slotW: window / float64(slots), starts: make([]float64, slots)},
		sums:   make([]float64, slots),
	}
	for i := range c.ring.starts {
		c.ring.starts[i] = math.Inf(-1)
	}
	return c
}

// Add records v at instant now.
func (c *Counter) Add(now, v float64) {
	i := c.ring.slotAt(now, func(i int) { c.sums[i] = 0 })
	c.sums[i] += v
}

// Sum returns the total recorded over the trailing window ending at now.
func (c *Counter) Sum(now float64) float64 {
	// Recycle the current slot first so a long-idle counter does not
	// report a stale slot that happens to alias the current index.
	c.ring.slotAt(now, func(i int) { c.sums[i] = 0 })
	total := 0.0
	for i, s := range c.sums {
		if c.ring.fresh(i, now, c.window) {
			total += s
		}
	}
	return total
}

// Rate returns Sum over the window length — the per-second rate.
func (c *Counter) Rate(now float64) float64 { return c.Sum(now) / c.window }

// Window returns the trailing window length in seconds.
func (c *Counter) Window() float64 { return c.window }

// LogBounds builds logarithmically spaced histogram bucket upper bounds
// from min to at least max, with perDecade buckets per factor of ten —
// the right shape for latencies, whose interesting resolution is relative,
// not absolute.
func LogBounds(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		return []float64{1}
	}
	var bounds []float64
	step := math.Pow(10, 1/float64(perDecade))
	for b := min; ; b *= step {
		bounds = append(bounds, b)
		if b >= max {
			return bounds
		}
	}
}

// Histogram is a fixed-bucket histogram over a sliding window: each ring
// slot holds a full bucket array for one sub-interval, and quantile
// queries merge the slots still inside the trailing window. With window
// <= 0 the histogram is unbounded (one immortal slot) — the shape the
// load generator and benchmarks use for whole-run quantiles. Not
// concurrency-safe; concurrent writers add their own lock.
type Histogram struct {
	bounds  []float64
	window  float64
	ring    ring
	buckets [][]uint64
	scratch []uint64
}

// NewHistogram returns a windowed histogram over the given bucket upper
// bounds (ascending; one overflow bucket is added). window is the trailing
// length in seconds (<= 0 = unbounded) and slots the sub-interval count
// (<= 0 takes 8).
func NewHistogram(bounds []float64, window float64, slots int) *Histogram {
	if slots <= 0 {
		slots = 8
	}
	if window <= 0 {
		window, slots = math.Inf(1), 1
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		window:  window,
		ring:    ring{slotW: window / float64(slots), starts: make([]float64, slots)},
		buckets: make([][]uint64, slots),
		scratch: make([]uint64, len(bounds)+1),
	}
	if math.IsInf(window, 1) {
		h.ring.slotW = 1 // unused: slot 0 is pinned below
	}
	for i := range h.buckets {
		h.buckets[i] = make([]uint64, len(bounds)+1)
		h.ring.starts[i] = math.Inf(-1)
	}
	return h
}

// slot returns the active slot for now, clearing it on recycle. The
// unbounded histogram pins slot 0 forever.
func (h *Histogram) slot(now float64) int {
	if math.IsInf(h.window, 1) {
		h.ring.starts[0] = 0
		return 0
	}
	return h.ring.slotAt(now, func(i int) {
		b := h.buckets[i]
		for k := range b {
			b[k] = 0
		}
	})
}

// Observe records v at instant now.
func (h *Histogram) Observe(now, v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[h.slot(now)][i]++
}

// merged accumulates the fresh slots' buckets into the scratch array and
// returns it with the total count.
func (h *Histogram) merged(now float64) ([]uint64, uint64) {
	h.slot(now) // recycle the current slot before reading
	m := h.scratch
	for k := range m {
		m[k] = 0
	}
	var total uint64
	for i, b := range h.buckets {
		if math.IsInf(h.window, 1) || h.ring.fresh(i, now, h.window) {
			for k, c := range b {
				m[k] += c
				total += c
			}
		}
	}
	return m, total
}

// Count returns the number of observations inside the trailing window.
func (h *Histogram) Count(now float64) uint64 {
	_, total := h.merged(now)
	return total
}

// Quantile returns an upper-bound estimate of the q-quantile over the
// trailing window (the smallest bucket bound covering q of the mass; the
// top bound for overflow mass; 0 when the window holds no samples).
func (h *Histogram) Quantile(now, q float64) float64 {
	m, total := h.merged(now)
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range m {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	// Overflow mass: clamp to the top bound (understate a pathological
	// tail instead of answering +Inf).
	return h.bounds[len(h.bounds)-1]
}

// Bounds returns the bucket upper bounds (shared slice — read-only use).
func (h *Histogram) Bounds() []float64 { return h.bounds }
