package telemetry

import (
	"bytes"
	"math"
	"testing"
)

func TestSeriesSetRoundTrip(t *testing.T) {
	set := NewSet()
	set.Series("a.util").Add(0, 0.5)
	set.Series("a.util").Add(10, 0.75)
	set.Series("b.queue").Add(10, 3)
	if set.Len() != 2 {
		t.Fatalf("Len = %d, want 2", set.Len())
	}
	if got := set.Series("a.util"); got != set.Get("a.util") {
		t.Fatal("Series and Get disagree")
	}
	if last := set.Get("a.util").Last(); last.T != 10 || last.V != 0.75 {
		t.Fatalf("Last = %+v", last)
	}

	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`[10,0.75]`)) {
		t.Fatalf("points must marshal as [t,v] pairs: %s", buf.Bytes())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || len(back.Get("a.util").Points) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if p := back.Get("b.queue").Points[0]; p.T != 10 || p.V != 3 {
		t.Fatalf("round trip point = %+v", p)
	}

	set.Reset()
	if set.Len() != 0 || set.Get("a.util") != nil {
		t.Fatal("Reset must drop every series")
	}
}

func TestCounterWindow(t *testing.T) {
	c := NewCounter(10, 5)
	c.Add(0, 1)
	c.Add(1, 2)
	c.Add(9, 4)
	if got := c.Sum(9); got != 7 {
		t.Fatalf("Sum(9) = %g, want 7", got)
	}
	// At t=12 the t=0..1 samples have aged out of the 10s window.
	if got := c.Sum(12); got != 4 {
		t.Fatalf("Sum(12) = %g, want 4", got)
	}
	if got := c.Rate(12); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Rate(12) = %g, want 0.4", got)
	}
	// Far beyond the window everything is stale, including after a long
	// idle gap that wraps the ring many times over.
	if got := c.Sum(1e6); got != 0 {
		t.Fatalf("Sum(1e6) = %g, want 0", got)
	}
}

func TestLogBounds(t *testing.T) {
	b := LogBounds(1e-3, 1, 3)
	if b[0] != 1e-3 {
		t.Fatalf("first bound %g", b[0])
	}
	if b[len(b)-1] < 1 {
		t.Fatalf("last bound %g must cover the max", b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
	// 3 per decade over 3 decades: ~10 bounds, not hundreds.
	if len(b) < 9 || len(b) > 12 {
		t.Fatalf("unexpected bound count %d: %v", len(b), b)
	}
}

func TestHistogramWindowedQuantiles(t *testing.T) {
	h := NewHistogram(LogBounds(1e-3, 10, 9), 10, 5)
	if got := h.Quantile(0, 0.99); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	// 90 fast samples and 10 slow ones at t~1.
	for i := 0; i < 90; i++ {
		h.Observe(1, 0.002)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1, 0.5)
	}
	if got := h.Count(1); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	p50, p99 := h.Quantile(1, 0.50), h.Quantile(1, 0.99)
	if p50 < 0.002 || p50 > 0.004 {
		t.Fatalf("p50 = %g, want ~2ms bucket", p50)
	}
	if p99 < 0.5 || p99 > 1 {
		t.Fatalf("p99 = %g, want ~0.5s bucket", p99)
	}
	if p95 := h.Quantile(1, 0.95); p95 < p50 || p95 > p99 {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	// Fresh fast samples at t=8; at t=12 the slow batch (t=1) has aged
	// out and p99 returns under the slow bucket.
	for i := 0; i < 50; i++ {
		h.Observe(8, 0.002)
	}
	if got := h.Quantile(12, 0.99); got >= 0.5 {
		t.Fatalf("aged-out p99 = %g, want < 0.5", got)
	}
	if got := h.Count(20); got != 0 {
		t.Fatalf("Count after full expiry = %d, want 0", got)
	}
}

func TestHistogramUnbounded(t *testing.T) {
	h := NewHistogram(LogBounds(1e-3, 1, 3), 0, 0)
	h.Observe(0, 0.01)
	h.Observe(1e9, 0.02)
	if got := h.Count(2e9); got != 2 {
		t.Fatalf("unbounded Count = %d, want 2", got)
	}
	// Overflow mass clamps to the top bound instead of +Inf.
	h.Observe(0, 50)
	if got := h.Quantile(0, 1); got != h.Bounds()[len(h.Bounds())-1] {
		t.Fatalf("overflow quantile = %g, want top bound", got)
	}
}

// TestLadderTransitions pins the full escalation path 0→1→2 under
// sustained overload and the debounce on both directions.
func TestLadderTransitions(t *testing.T) {
	l := &Ladder{MaxLevel: 2, EscalateAfter: 3, RecoverAfter: 2}
	for i := 0; i < 2; i++ {
		if got := l.Eval(true); got != 0 {
			t.Fatalf("tick %d: level %d, want 0 (needs 3 consecutive)", i, got)
		}
	}
	if got := l.Eval(true); got != 1 {
		t.Fatalf("level %d after 3 bad ticks, want 1", got)
	}
	// A single good tick resets the bad streak without recovering.
	if got := l.Eval(false); got != 1 {
		t.Fatalf("level %d after 1 good tick, want 1 (needs 2)", got)
	}
	for i := 0; i < 3; i++ {
		l.Eval(true)
	}
	if got := l.Level(); got != 2 {
		t.Fatalf("level %d after renewed overload, want 2", got)
	}
	// Saturates at MaxLevel.
	for i := 0; i < 10; i++ {
		l.Eval(true)
	}
	if got := l.Level(); got != 2 {
		t.Fatalf("level %d, must saturate at 2", got)
	}
}

// TestLadderHysteresisRecovery pins the descent: each rung needs its own
// RecoverAfter streak, so full recovery from level 2 takes 2×RecoverAfter
// healthy ticks.
func TestLadderHysteresisRecovery(t *testing.T) {
	l := &Ladder{MaxLevel: 2, EscalateAfter: 1, RecoverAfter: 3}
	l.Eval(true)
	l.Eval(true)
	if l.Level() != 2 {
		t.Fatalf("setup level %d, want 2", l.Level())
	}
	want := []int{2, 2, 1, 1, 1, 0, 0}
	for i, w := range want {
		if got := l.Eval(false); got != w {
			t.Fatalf("good tick %d: level %d, want %d", i, got, w)
		}
	}
	// An overload mid-recovery resets the good streak (without itself
	// escalating — it is a lone bad tick under EscalateAfter 2).
	l2 := &Ladder{MaxLevel: 2, EscalateAfter: 2, RecoverAfter: 3}
	l2.Eval(true)
	l2.Eval(true) // level 1
	l2.Eval(false)
	l2.Eval(false)
	if got := l2.Eval(true); got != 1 {
		t.Fatalf("lone bad tick mid-recovery: level %d, want 1", got)
	}
	for i := 0; i < 2; i++ {
		if got := l2.Eval(false); got != 1 {
			t.Fatalf("good tick %d after interruption: level %d, want 1", i, got)
		}
	}
	if got := l2.Eval(false); got != 0 {
		t.Fatalf("level %d, want 0 after full streak", got)
	}
}

func TestLadderZeroValueDefaults(t *testing.T) {
	var l Ladder
	if got := l.Eval(true); got != 1 {
		t.Fatalf("zero-value ladder Eval(true) = %d, want 1", got)
	}
	if got := l.Eval(false); got != 0 {
		t.Fatalf("zero-value ladder Eval(false) = %d, want 0", got)
	}
}
