package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	ag "rlsched/internal/autograd"
)

const (
	testMaxObs = 16
	testFeat   = 7
)

func randObs(rng *rand.Rand, batch int) *ag.Tensor {
	t := ag.New(batch, testMaxObs*testFeat)
	for i := range t.Data {
		t.Data[i] = rng.Float64()
	}
	return t
}

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := ag.New(5, 4)
	y := l.Forward(x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("Linear out shape %v", y.Shape)
	}
	if len(l.Params()) != 2 {
		t.Fatalf("Linear params = %d, want 2", len(l.Params()))
	}
}

func TestXavierInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 100, 100)
	bound := math.Sqrt(6.0 / 200)
	for _, v := range l.W.Data {
		if math.Abs(v) > bound {
			t.Fatalf("weight %g beyond Xavier bound %g", v, bound)
		}
	}
	for _, v := range l.B.Data {
		if v != 0 {
			t.Fatal("bias must start at zero")
		}
	}
}

func TestMLPForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, []int{6, 8, 4, 2}, ActTanh)
	y := m.Forward(ag.New(3, 6))
	if y.Rows() != 3 || y.Cols() != 2 {
		t.Fatalf("MLP out shape %v", y.Shape)
	}
	if got := len(m.Params()); got != 6 {
		t.Fatalf("MLP params = %d, want 6 (3 layers × 2)", got)
	}
}

func TestPolicyFactoryAndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, kind := range PolicyKinds {
		p, err := NewPolicy(rng, kind, testMaxObs, testFeat)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", kind, err)
		}
		if p.Kind() != kind {
			t.Errorf("Kind() = %q, want %q", p.Kind(), kind)
		}
		mo, f := p.Dims()
		if mo != testMaxObs || f != testFeat {
			t.Errorf("%s Dims = %d,%d", kind, mo, f)
		}
		obs := randObs(rng, 3)
		logits := p.Logits(obs)
		if logits.Rows() != 3 || logits.Cols() != testMaxObs {
			t.Fatalf("%s logits shape %v, want [3,%d]", kind, logits.Shape, testMaxObs)
		}
		for _, v := range logits.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s produced non-finite logit", kind)
			}
		}
	}
	if _, err := NewPolicy(rng, "bogus", 8, 7); err == nil {
		t.Error("unknown policy kind must error")
	}
}

func TestKernelNetParameterBudget(t *testing.T) {
	// §IV-B1: "we are able to control the parameter size of the policy
	// network less than 1,000".
	rng := rand.New(rand.NewSource(5))
	k := NewKernelNet(rng, 128, testFeat, nil)
	if n := ParamCount(k); n >= 1000 {
		t.Errorf("kernel net has %d params, paper promises < 1000", n)
	}
	// The flattened MLPs are much bigger — that asymmetry is the point.
	m := NewMLPPolicy(rng, 128, testFeat, "mlp-v1")
	if ParamCount(m) < 10*ParamCount(k) {
		t.Error("mlp-v1 should dwarf the kernel net in parameters")
	}
}

// TestKernelNetPermutationEquivariance is the architectural property of
// §III-1: permuting the job rows permutes the scores identically, so the
// chosen job does not depend on queue position.
func TestKernelNetPermutationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := NewKernelNet(rng, testMaxObs, testFeat, nil)
	obs := randObs(rng, 1)
	logits := k.Logits(obs).Data

	perm := rng.Perm(testMaxObs)
	permObs := ag.New(1, testMaxObs*testFeat)
	for to, from := range perm {
		copy(permObs.Data[to*testFeat:(to+1)*testFeat], obs.Data[from*testFeat:(from+1)*testFeat])
	}
	permLogits := k.Logits(permObs).Data
	for to, from := range perm {
		if math.Abs(permLogits[to]-logits[from]) > 1e-12 {
			t.Fatalf("kernel net not permutation-equivariant: slot %d->%d: %g vs %g",
				from, to, logits[from], permLogits[to])
		}
	}
}

// TestMLPIsOrderSensitive documents the contrast: the flattened MLP
// generally does NOT commute with permutations (the motivation for the
// kernel design).
func TestMLPIsOrderSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLPPolicy(rng, testMaxObs, testFeat, "mlp-v2")
	obs := randObs(rng, 1)
	logits := m.Logits(obs).Data

	// Swap rows 0 and 1.
	permObs := ag.New(1, testMaxObs*testFeat)
	copy(permObs.Data, obs.Data)
	for f := 0; f < testFeat; f++ {
		permObs.Data[f], permObs.Data[testFeat+f] = permObs.Data[testFeat+f], permObs.Data[f]
	}
	permLogits := m.Logits(permObs).Data
	diff := math.Abs(permLogits[0]-logits[1]) + math.Abs(permLogits[1]-logits[0])
	if diff < 1e-9 {
		t.Skip("degenerate draw: MLP accidentally equivariant")
	}
}

func TestValueNet(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := NewValueNet(rng, testMaxObs, testFeat, nil)
	out := v.Value(randObs(rng, 5))
	if out.Rows() != 5 || out.Cols() != 1 {
		t.Fatalf("value shape %v, want [5,1]", out.Shape)
	}
}

func TestLeNetRejectsTinyObs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LeNet on a tiny observation must panic")
		}
	}()
	NewLeNet(rand.New(rand.NewSource(9)), 4, 7)
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, kind := range []string{"kernel", "mlp-v2", "lenet"} {
		p, err := NewPolicy(rng, kind, testMaxObs, testFeat)
		if err != nil {
			t.Fatal(err)
		}
		v := NewValueNet(rng, testMaxObs, testFeat, nil)
		obs := randObs(rng, 2)
		wantLogits := append([]float64(nil), p.Logits(obs).Data...)
		wantValue := v.Value(obs).Data[0]

		var buf bytes.Buffer
		if err := Snap(p, v, nil).Write(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		p2, v2, err := snap.Materialize(rand.New(rand.NewSource(999)))
		if err != nil {
			t.Fatal(err)
		}
		gotLogits := p2.Logits(obs).Data
		for i := range wantLogits {
			if math.Abs(gotLogits[i]-wantLogits[i]) > 1e-12 {
				t.Fatalf("%s: logits diverge after round trip", kind)
			}
		}
		if got := v2.Value(obs).Data[0]; math.Abs(got-wantValue) > 1e-12 {
			t.Fatalf("%s: value diverges after round trip", kind)
		}
	}
}

func TestSnapshotRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := NewPolicy(rng, "kernel", testMaxObs, testFeat)
	v := NewValueNet(rng, testMaxObs, testFeat, nil)
	s := Snap(p, v, nil)
	s.Policy = s.Policy[:1]
	if _, _, err := s.Materialize(rng); err == nil {
		t.Error("truncated snapshot must fail to materialize")
	}
	var bad bytes.Buffer
	bad.WriteString("{not json")
	if _, err := ReadSnapshot(&bad); err == nil {
		t.Error("broken JSON must fail")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewKernelNet(rng, testMaxObs, testFeat, nil)
	b := NewKernelNet(rng, testMaxObs, testFeat, nil)
	if err := CopyParams(b, a); err != nil {
		t.Fatal(err)
	}
	obs := randObs(rng, 1)
	la, lb := a.Logits(obs).Data, b.Logits(obs).Data
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("CopyParams must make networks identical")
		}
	}
}

func TestActivations(t *testing.T) {
	x := ag.FromSlice([]float64{-1, 0, 2}, 1, 3)
	r := ActReLU.apply(x)
	if r.Data[0] != 0 || r.Data[2] != 2 {
		t.Errorf("relu = %v", r.Data)
	}
	th := ActTanh.apply(x)
	if math.Abs(th.Data[2]-math.Tanh(2)) > 1e-12 {
		t.Errorf("tanh = %v", th.Data)
	}
	id := ActIdentity.apply(x)
	if id != x {
		t.Error("identity must pass through")
	}
}
