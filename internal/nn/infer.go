package nn

import (
	"fmt"
	"math"
	"sync"

	ag "rlsched/internal/autograd"
)

// This file is the serving-time inference fast path. Training goes through
// the autograd graph (Logits); serving must not: building graph nodes and
// backward closures per request allocates far too much for a hot decision
// loop. InferLogits runs the same arithmetic on raw float64 slices with
// pooled scratch buffers. Weights are only ever read, so any number of
// goroutines may infer concurrently — the only rule is that no training
// update may run at the same time (the serving daemon never trains; it
// swaps whole models atomically instead).

// Inferer is the graph-free fast path of a PolicyNet: an allocation-light
// forward pass that is safe for concurrent use. Every built-in policy
// architecture (kernel, the MLP variants, LeNet) implements it, so both the
// serving daemon and the training rollout collector select actions without
// ever touching the autograd engine.
type Inferer interface {
	// InferLogits scores a batch of flattened observations
	// obs[batch, maxObs·feat] into out[batch·maxObs].
	InferLogits(obs []float64, batch int, out []float64)
}

// ValueInferer is the critic's graph-free fast path, used by rollout
// collection for per-step value estimates.
type ValueInferer interface {
	// InferValues predicts one value per observation: obs[batch,
	// maxObs·feat] into out[batch].
	InferValues(obs []float64, batch int, out []float64)
}

// AsInferer returns the graph-free fast path of net. All built-in
// architectures implement Inferer directly (sharing weights with the
// trainable network, so no sync is ever needed); an unknown third-party
// PolicyNet is wrapped in an adapter that falls back to the autograd
// forward pass — correct, but paying graph-construction cost per call.
func AsInferer(net PolicyNet) Inferer {
	if inf, ok := net.(Inferer); ok {
		return inf
	}
	return graphInferer{net: net}
}

// graphInferer adapts a PolicyNet without a fast path to Inferer via the
// autograd forward pass.
type graphInferer struct{ net PolicyNet }

func (g graphInferer) InferLogits(obs []float64, batch int, out []float64) {
	maxObs, feat := g.net.Dims()
	res := g.net.Logits(ag.FromSlice(obs, batch, maxObs*feat))
	copy(out, res.Data)
}

// SyncParams is a cheap weight refresh: it copies every parameter tensor of
// src into dst in Params() order without allocating (unlike a snapshot
// round-trip). dst and src must be architecturally identical. Callers own
// the synchronization — no forward pass may read dst concurrently.
func SyncParams(dst, src Module) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: sync across models with %d vs %d tensors", len(dp), len(sp))
	}
	for i, p := range dp {
		if p.Size() != sp[i].Size() {
			return fmt.Errorf("nn: sync tensor %d: %d vs %d values", i, p.Size(), sp[i].Size())
		}
		copy(p.Data, sp[i].Data)
	}
	return nil
}

// scratchPool recycles the intermediate activation buffers of infer runs.
var scratchPool = sync.Pool{New: func() interface{} { return new([]float64) }}

func getScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return p
}

// infer runs rows x[n, sizes[0]] through the stack without touching the
// autograd engine, writing the last layer's output to out[n, lastWidth].
func (m *MLP) infer(x []float64, n int, out []float64) {
	widest := 0
	for _, l := range m.Layers {
		if w := l.W.Shape[1]; w > widest {
			widest = w
		}
	}
	a := getScratch(n * widest)
	b := getScratch(n * widest)
	defer scratchPool.Put(a)
	defer scratchPool.Put(b)

	src := x
	dst := *a
	for li, l := range m.Layers {
		in, width := l.W.Shape[0], l.W.Shape[1]
		last := li+1 == len(m.Layers)
		if last {
			dst = out
		}
		w, bias := l.W.Data, l.B.Data
		for i := 0; i < n; i++ {
			xi := src[i*in : (i+1)*in]
			yi := dst[i*width : (i+1)*width]
			copy(yi, bias)
			for k := 0; k < in; k++ {
				v := xi[k]
				if v == 0 {
					continue // ReLU zeros make this skip pay for itself
				}
				wk := w[k*width : (k+1)*width]
				for j, wv := range wk {
					yi[j] += v * wv
				}
			}
			if !last {
				applyActInPlace(m.Act, yi)
			}
		}
		if !last {
			src = dst
			if li%2 == 0 {
				dst = *b
			} else {
				dst = *a
			}
		}
	}
}

func applyActInPlace(act Activation, v []float64) {
	switch act {
	case ActReLU:
		for i, x := range v {
			if x < 0 {
				v[i] = 0
			}
		}
	case ActTanh:
		for i, x := range v {
			v[i] = math.Tanh(x)
		}
	}
}

// InferLogits implements Inferer: the kernel network's reshape trick means
// the batch is just batch·maxObs independent rows through the shared MLP.
func (k *KernelNet) InferLogits(obs []float64, batch int, out []float64) {
	if len(obs) != batch*k.maxObs*k.feat || len(out) != batch*k.maxObs {
		panic("nn: InferLogits buffer sizes do not match network dims")
	}
	k.mlp.infer(obs, batch*k.maxObs, out)
}

// InferLogits implements Inferer for the order-sensitive MLP baselines.
func (m *MLPPolicy) InferLogits(obs []float64, batch int, out []float64) {
	if len(obs) != batch*m.maxObs*m.feat || len(out) != batch*m.maxObs {
		panic("nn: InferLogits buffer sizes do not match network dims")
	}
	m.mlp.infer(obs, batch, out)
}

// InferLogits implements Inferer for the convolutional baseline: the two
// (conv, relu, pool) stages run through the Conv2D/MaxPool2D inference
// twins on pooled scratch, then the dense stack.
func (l *LeNet) InferLogits(obs []float64, batch int, out []float64) {
	if len(obs) != batch*l.maxObs*l.feat || len(out) != batch*l.maxObs {
		panic("nn: InferLogits buffer sizes do not match network dims")
	}
	h1, w1 := l.maxObs-2, l.feat-2 // conv1 3×3 valid
	h1p, w1p := h1/2, w1           // pool 2×1
	h2, w2 := h1p-2, w1p-2         // conv2 3×3 valid
	h2p, w2p := h2/2, w2           // pool 2×1

	c1 := getScratch(batch * 4 * h1 * w1)
	p1 := getScratch(batch * 4 * h1p * w1p)
	c2 := getScratch(batch * 8 * h2 * w2)
	p2 := getScratch(batch * 8 * h2p * w2p)
	defer scratchPool.Put(c1)
	defer scratchPool.Put(p1)
	defer scratchPool.Put(c2)
	defer scratchPool.Put(p2)

	b1 := (*c1)[:batch*4*h1*w1]
	ag.Conv2DInfer(obs, batch, 1, l.maxObs, l.feat, l.w1.Data, l.b1.Data, 4, 3, 3, b1)
	applyActInPlace(ActReLU, b1)
	b2 := (*p1)[:batch*4*h1p*w1p]
	ag.MaxPool2DInfer(b1, batch, 4, h1, w1, 2, 1, b2)
	b3 := (*c2)[:batch*8*h2*w2]
	ag.Conv2DInfer(b2, batch, 4, h1p, w1p, l.w2.Data, l.b2.Data, 8, 3, 3, b3)
	applyActInPlace(ActReLU, b3)
	b4 := (*p2)[:batch*8*h2p*w2p]
	ag.MaxPool2DInfer(b3, batch, 8, h2, w2, 2, 1, b4)
	l.dense.infer(b4, batch, out)
}

// InferValues implements ValueInferer: the critic is a plain MLP, so the
// shared graph-free stack applies directly.
func (v *ValueNet) InferValues(obs []float64, batch int, out []float64) {
	if len(obs) != batch*v.maxObs*v.feat || len(out) != batch {
		panic("nn: InferValues buffer sizes do not match network dims")
	}
	v.mlp.infer(obs, batch, out)
}

// Compile-time proof that every built-in architecture has the fast path.
var (
	_ Inferer      = (*KernelNet)(nil)
	_ Inferer      = (*MLPPolicy)(nil)
	_ Inferer      = (*LeNet)(nil)
	_ ValueInferer = (*ValueNet)(nil)
)
