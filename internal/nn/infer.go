package nn

import (
	"math"
	"sync"
)

// This file is the serving-time inference fast path. Training goes through
// the autograd graph (Logits); serving must not: building graph nodes and
// backward closures per request allocates far too much for a hot decision
// loop. InferLogits runs the same arithmetic on raw float64 slices with
// pooled scratch buffers. Weights are only ever read, so any number of
// goroutines may infer concurrently — the only rule is that no training
// update may run at the same time (the serving daemon never trains; it
// swaps whole models atomically instead).

// Inferer is the optional fast path of a PolicyNet: a graph-free,
// allocation-light forward pass that is safe for concurrent use.
type Inferer interface {
	// InferLogits scores a batch of flattened observations
	// obs[batch, maxObs·feat] into out[batch·maxObs].
	InferLogits(obs []float64, batch int, out []float64)
}

// scratchPool recycles the intermediate activation buffers of infer runs.
var scratchPool = sync.Pool{New: func() interface{} { return new([]float64) }}

func getScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return p
}

// infer runs rows x[n, sizes[0]] through the stack without touching the
// autograd engine, writing the last layer's output to out[n, lastWidth].
func (m *MLP) infer(x []float64, n int, out []float64) {
	widest := 0
	for _, l := range m.Layers {
		if w := l.W.Shape[1]; w > widest {
			widest = w
		}
	}
	a := getScratch(n * widest)
	b := getScratch(n * widest)
	defer scratchPool.Put(a)
	defer scratchPool.Put(b)

	src := x
	dst := *a
	for li, l := range m.Layers {
		in, width := l.W.Shape[0], l.W.Shape[1]
		last := li+1 == len(m.Layers)
		if last {
			dst = out
		}
		w, bias := l.W.Data, l.B.Data
		for i := 0; i < n; i++ {
			xi := src[i*in : (i+1)*in]
			yi := dst[i*width : (i+1)*width]
			copy(yi, bias)
			for k := 0; k < in; k++ {
				v := xi[k]
				if v == 0 {
					continue // ReLU zeros make this skip pay for itself
				}
				wk := w[k*width : (k+1)*width]
				for j, wv := range wk {
					yi[j] += v * wv
				}
			}
			if !last {
				applyActInPlace(m.Act, yi)
			}
		}
		if !last {
			src = dst
			if li%2 == 0 {
				dst = *b
			} else {
				dst = *a
			}
		}
	}
}

func applyActInPlace(act Activation, v []float64) {
	switch act {
	case ActReLU:
		for i, x := range v {
			if x < 0 {
				v[i] = 0
			}
		}
	case ActTanh:
		for i, x := range v {
			v[i] = math.Tanh(x)
		}
	}
}

// InferLogits implements Inferer: the kernel network's reshape trick means
// the batch is just batch·maxObs independent rows through the shared MLP.
func (k *KernelNet) InferLogits(obs []float64, batch int, out []float64) {
	if len(obs) != batch*k.maxObs*k.feat || len(out) != batch*k.maxObs {
		panic("nn: InferLogits buffer sizes do not match network dims")
	}
	k.mlp.infer(obs, batch*k.maxObs, out)
}

// InferLogits implements Inferer for the order-sensitive MLP baselines.
func (m *MLPPolicy) InferLogits(obs []float64, batch int, out []float64) {
	if len(obs) != batch*m.maxObs*m.feat || len(out) != batch*m.maxObs {
		panic("nn: InferLogits buffer sizes do not match network dims")
	}
	m.mlp.infer(obs, batch, out)
}
