package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	ag "rlsched/internal/autograd"
)

// inferParity checks the graph-free fast path against the autograd forward
// pass on random observations.
func inferParity(t *testing.T, net PolicyNet, batch int) {
	t.Helper()
	inf, ok := net.(Inferer)
	if !ok {
		t.Fatalf("%s does not implement Inferer", net.Kind())
	}
	maxObs, feat := net.Dims()
	rng := rand.New(rand.NewSource(7))
	obs := make([]float64, batch*maxObs*feat)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	want := net.Logits(ag.FromSlice(obs, batch, maxObs*feat)).Data
	got := make([]float64, batch*maxObs)
	inf.InferLogits(obs, batch, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("%s logit %d: fast=%g autograd=%g", net.Kind(), i, got[i], want[i])
		}
	}
}

func TestInferLogitsMatchesAutograd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, batch := range []int{1, 3, 16} {
		inferParity(t, NewKernelNet(rng, 24, 7, nil), batch)
		inferParity(t, NewMLPPolicy(rng, 24, 7, "mlp-v2"), batch)
	}
}

func TestInferLogitsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewKernelNet(rng, 16, 7, nil)
	obs := make([]float64, 16*7)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	want := make([]float64, 16)
	net.InferLogits(obs, 1, want)

	// Many goroutines infer on shared weights; run with -race to prove
	// the serving path is data-race-free.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, 16)
			for i := 0; i < 200; i++ {
				net.InferLogits(obs, 1, out)
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("concurrent inference diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestMaterializePolicyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pol := NewKernelNet(rng, 16, 7, nil)
	val := NewValueNet(rng, 16, 7, nil)
	snap := Snap(pol, val, nil)

	got, err := snap.MaterializePolicy(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, 16*7)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	a := pol.Logits(ag.FromSlice(obs, 1, len(obs))).Data
	b := got.Logits(ag.FromSlice(obs, 1, len(obs))).Data
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d differs after MaterializePolicy: %g vs %g", i, a[i], b[i])
		}
	}
}
