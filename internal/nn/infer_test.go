package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	ag "rlsched/internal/autograd"
)

// inferParity checks the graph-free fast path against the autograd forward
// pass on random observations.
func inferParity(t *testing.T, net PolicyNet, batch int) {
	t.Helper()
	inf, ok := net.(Inferer)
	if !ok {
		t.Fatalf("%s does not implement Inferer", net.Kind())
	}
	maxObs, feat := net.Dims()
	rng := rand.New(rand.NewSource(7))
	obs := make([]float64, batch*maxObs*feat)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	want := net.Logits(ag.FromSlice(obs, batch, maxObs*feat)).Data
	got := make([]float64, batch*maxObs)
	inf.InferLogits(obs, batch, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("%s logit %d: fast=%g autograd=%g", net.Kind(), i, got[i], want[i])
		}
	}
}

func TestInferLogitsMatchesAutograd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, batch := range []int{1, 3, 16} {
		inferParity(t, NewKernelNet(rng, 24, 7, nil), batch)
		inferParity(t, NewMLPPolicy(rng, 24, 7, "mlp-v2"), batch)
		inferParity(t, NewMLPPolicy(rng, 24, 7, "mlp-v1"), batch)
		inferParity(t, NewLeNet(rng, 16, 7), batch)
	}
}

func TestEveryPolicyKindInfers(t *testing.T) {
	// AsInferer must return the native fast path for every registered
	// architecture — the rollout collector and the serving daemon both
	// rely on it.
	rng := rand.New(rand.NewSource(4))
	for _, kind := range PolicyKinds {
		net, err := NewPolicy(rng, kind, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := net.(Inferer); !ok {
			t.Errorf("%s lacks the graph-free Inferer fast path", kind)
		}
		inferParity(t, net, 2)
	}
}

func TestInferValuesMatchesAutograd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := NewValueNet(rng, 24, 7, nil)
	for _, batch := range []int{1, 5} {
		obs := make([]float64, batch*24*7)
		for i := range obs {
			obs[i] = rng.Float64()
		}
		want := v.Value(ag.FromSlice(obs, batch, 24*7)).Data
		got := make([]float64, batch)
		v.InferValues(obs, batch, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("value %d: fast=%g autograd=%g", i, got[i], want[i])
			}
		}
	}
}

func TestSyncParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := NewKernelNet(rng, 16, 7, nil)
	dst := NewKernelNet(rng, 16, 7, nil)
	if err := SyncParams(dst, src); err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, 16*7)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	a, b := make([]float64, 16), make([]float64, 16)
	src.InferLogits(obs, 1, a)
	dst.InferLogits(obs, 1, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d differs after SyncParams: %g vs %g", i, a[i], b[i])
		}
	}
	// Shape mismatch must be rejected.
	other := NewKernelNet(rng, 16, 7, []int{4})
	if err := SyncParams(other, src); err == nil {
		t.Error("SyncParams across architectures must error")
	}
}

func TestInferLogitsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewKernelNet(rng, 16, 7, nil)
	obs := make([]float64, 16*7)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	want := make([]float64, 16)
	net.InferLogits(obs, 1, want)

	// Many goroutines infer on shared weights; run with -race to prove
	// the serving path is data-race-free.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, 16)
			for i := 0; i < 200; i++ {
				net.InferLogits(obs, 1, out)
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("concurrent inference diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestMaterializePolicyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pol := NewKernelNet(rng, 16, 7, nil)
	val := NewValueNet(rng, 16, 7, nil)
	snap := Snap(pol, val, nil)

	got, err := snap.MaterializePolicy(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, 16*7)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	a := pol.Logits(ag.FromSlice(obs, 1, len(obs))).Data
	b := got.Logits(ag.FromSlice(obs, 1, len(obs))).Data
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d differs after MaterializePolicy: %g vs %g", i, a[i], b[i])
		}
	}
}
