package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// Snapshot is a serializable model state: the architecture identity plus
// every parameter tensor. Policy and value networks snapshot together so a
// trained agent round-trips through one file.
type Snapshot struct {
	// PolicyKind names the policy architecture ("kernel", "mlp-v1", ...).
	PolicyKind string `json:"policy_kind"`
	MaxObs     int    `json:"max_obs"`
	Features   int    `json:"features"`
	// ValueHidden records the critic hidden sizes.
	ValueHidden []int `json:"value_hidden"`
	// Policy and Value hold the flattened parameters in Params() order.
	Policy []ParamBlob `json:"policy"`
	Value  []ParamBlob `json:"value"`
}

// ParamBlob is one tensor's shape and data.
type ParamBlob struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

func blobs(m Module) []ParamBlob {
	var out []ParamBlob
	for _, p := range m.Params() {
		out = append(out, ParamBlob{
			Shape: append([]int(nil), p.Shape...),
			Data:  append([]float64(nil), p.Data...),
		})
	}
	return out
}

func restore(m Module, bs []ParamBlob) error {
	ps := m.Params()
	if len(ps) != len(bs) {
		return fmt.Errorf("nn: snapshot has %d tensors, model has %d", len(bs), len(ps))
	}
	for i, p := range ps {
		if len(bs[i].Data) != p.Size() {
			return fmt.Errorf("nn: snapshot tensor %d has %d values, model wants %d",
				i, len(bs[i].Data), p.Size())
		}
		copy(p.Data, bs[i].Data)
	}
	return nil
}

// Snap captures the current weights of a policy/value pair.
func Snap(policy PolicyNet, value *ValueNet, valueHidden []int) *Snapshot {
	maxObs, feat := policy.Dims()
	if valueHidden == nil {
		valueHidden = DefaultValueSizes
	}
	return &Snapshot{
		PolicyKind:  policy.Kind(),
		MaxObs:      maxObs,
		Features:    feat,
		ValueHidden: append([]int(nil), valueHidden...),
		Policy:      blobs(policy),
		Value:       blobs(value),
	}
}

// Materialize rebuilds a policy/value pair from the snapshot. The rng only
// seeds construction; weights are overwritten from the snapshot.
func (s *Snapshot) Materialize(rng *rand.Rand) (PolicyNet, *ValueNet, error) {
	policy, err := NewPolicy(rng, s.PolicyKind, s.MaxObs, s.Features)
	if err != nil {
		return nil, nil, err
	}
	value := NewValueNet(rng, s.MaxObs, s.Features, s.ValueHidden)
	if err := restore(policy, s.Policy); err != nil {
		return nil, nil, err
	}
	if err := restore(value, s.Value); err != nil {
		return nil, nil, err
	}
	return policy, value, nil
}

// MaterializePolicy rebuilds only the policy network from the snapshot —
// the serving path has no use for the critic and skips restoring it.
func (s *Snapshot) MaterializePolicy(rng *rand.Rand) (PolicyNet, error) {
	policy, err := NewPolicy(rng, s.PolicyKind, s.MaxObs, s.Features)
	if err != nil {
		return nil, err
	}
	if err := restore(policy, s.Policy); err != nil {
		return nil, err
	}
	return policy, nil
}

// Write encodes the snapshot as JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot from JSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decode snapshot: %w", err)
	}
	return &s, nil
}

// CopyParams copies weights from src to dst (same architecture). It is
// SyncParams under the historical name.
func CopyParams(dst, src Module) error {
	return SyncParams(dst, src)
}
