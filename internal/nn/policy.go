package nn

import (
	"fmt"
	"math/rand"

	ag "rlsched/internal/autograd"
)

// KernelNet is the paper's kernel-based policy network (§IV-B1, Fig 5): a
// small MLP applied to every job vector independently, like a 1-D
// convolution kernel sliding over the queue, emitting one score per job.
// Because the same weights score every slot, permuting the jobs permutes
// the scores identically — the network is insensitive to queue order by
// construction, and its parameter count stays tiny (< 1000 with the
// default 32/16/8 sizes).
type KernelNet struct {
	mlp    *MLP
	maxObs int
	feat   int
}

// DefaultKernelSizes are the paper's kernel MLP hidden sizes (Table IV).
var DefaultKernelSizes = []int{32, 16, 8}

// NewKernelNet builds the kernel network for maxObs job slots of feat
// features, with the given hidden sizes (nil for the paper defaults).
func NewKernelNet(rng *rand.Rand, maxObs, feat int, hidden []int) *KernelNet {
	if hidden == nil {
		hidden = DefaultKernelSizes
	}
	sizes := append([]int{feat}, hidden...)
	sizes = append(sizes, 1)
	return &KernelNet{mlp: NewMLP(rng, sizes, ActReLU), maxObs: maxObs, feat: feat}
}

// Logits implements PolicyNet: reshape [B, maxObs·feat] → [B·maxObs, feat],
// score every job with the shared MLP, reshape back to [B, maxObs].
//
// Padding rows are compacted away first: they are exactly zero (real jobs
// always carry the presence flag), so one representative zero row stands in
// for all of them — its score is copied to every padding slot and its
// gradient accumulates theirs. Training batches are typically dominated by
// padding (a 128-slot window over a lightly backed-up queue), so the MLP
// sees a fraction of the rows with bit-identical results.
func (k *KernelNet) Logits(obs *ag.Tensor) *ag.Tensor {
	b := checkObs(obs, k.maxObs, k.feat)
	total := b * k.maxObs
	rows := ag.Reshape(obs, total, k.feat)
	idx := make([]int, 0, total)
	pad := -1
	for i := 0; i < total; i++ {
		row := rows.Data[i*k.feat : (i+1)*k.feat]
		zero := true
		for _, v := range row {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			if pad < 0 {
				pad = i
			}
		} else {
			idx = append(idx, i)
		}
	}
	if pad < 0 { // no padding anywhere: score the batch as-is
		scores := k.mlp.Forward(rows) // [B·maxObs, 1]
		return ag.Reshape(scores, b, k.maxObs)
	}
	compact := ag.SelectRows(rows, append(idx, pad))
	scores := k.mlp.Forward(compact) // [len(idx)+1, 1]
	full := ag.ScatterRowsFill(scores, idx, total, len(idx))
	return ag.Reshape(full, b, k.maxObs)
}

// Params implements Module.
func (k *KernelNet) Params() []*ag.Tensor { return k.mlp.Params() }

// Kind implements PolicyNet.
func (k *KernelNet) Kind() string { return "kernel" }

// Dims implements PolicyNet.
func (k *KernelNet) Dims() (int, int) { return k.maxObs, k.feat }

// MLPPolicy is the order-sensitive baseline of Table IV: the whole
// observation matrix is flattened into one vector and mapped to maxObs
// logits by a plain MLP (variants v1: 128/128/128, v2: 32/16/8,
// v3: 32×5).
type MLPPolicy struct {
	mlp     *MLP
	maxObs  int
	feat    int
	variant string
}

// MLPVariants lists the Table IV MLP configurations.
var MLPVariants = map[string][]int{
	"mlp-v1": {128, 128, 128},
	"mlp-v2": {32, 16, 8},
	"mlp-v3": {32, 32, 32, 32, 32},
}

// NewMLPPolicy builds the named Table IV variant ("mlp-v1", "mlp-v2",
// "mlp-v3").
func NewMLPPolicy(rng *rand.Rand, maxObs, feat int, variant string) *MLPPolicy {
	hidden, ok := MLPVariants[variant]
	if !ok {
		panic(fmt.Sprintf("nn: unknown MLP variant %q", variant))
	}
	sizes := append([]int{maxObs * feat}, hidden...)
	sizes = append(sizes, maxObs)
	return &MLPPolicy{
		mlp:     NewMLP(rng, sizes, ActReLU),
		maxObs:  maxObs,
		feat:    feat,
		variant: variant,
	}
}

// Logits implements PolicyNet.
func (m *MLPPolicy) Logits(obs *ag.Tensor) *ag.Tensor {
	checkObs(obs, m.maxObs, m.feat)
	return m.mlp.Forward(obs)
}

// Params implements Module.
func (m *MLPPolicy) Params() []*ag.Tensor { return m.mlp.Params() }

// Kind implements PolicyNet.
func (m *MLPPolicy) Kind() string { return m.variant }

// Dims implements PolicyNet.
func (m *MLPPolicy) Dims() (int, int) { return m.maxObs, m.feat }

// LeNet is the convolutional baseline of Table IV: two (conv, max-pool)
// stages over the observation treated as a 1-channel maxObs×feat image,
// then dense layers. The paper finds its pooling and dense layers mix job
// order and hurt training — it exists here to reproduce Fig 8.
type LeNet struct {
	w1, b1 *ag.Tensor // conv1: 4 filters 3×3
	w2, b2 *ag.Tensor // conv2: 8 filters 3×3
	dense  *MLP
	maxObs int
	feat   int
	flat   int
}

// NewLeNet builds the convolutional baseline. maxObs must be ≥ 12 and feat
// ≥ 7 for the two conv/pool stages to fit.
func NewLeNet(rng *rand.Rand, maxObs, feat int) *LeNet {
	h1, w1 := maxObs-2, feat-2 // conv1 3×3 valid
	h1p, w1p := h1/2, w1       // pool 2×1
	h2, w2 := h1p-2, w1p-2     // conv2 3×3 valid
	h2p, w2p := h2/2, w2       // pool 2×1
	if h2p <= 0 || w2p <= 0 {
		panic(fmt.Sprintf("nn: LeNet needs a larger observation than %dx%d", maxObs, feat))
	}
	flat := 8 * h2p * w2p
	scale1 := 0.5
	return &LeNet{
		w1:     ag.RandParam(rng, scale1, 4, 1, 3, 3),
		b1:     ag.Param(make([]float64, 4), 1, 4),
		w2:     ag.RandParam(rng, scale1/2, 8, 4, 3, 3),
		b2:     ag.Param(make([]float64, 8), 1, 8),
		dense:  NewMLP(rng, []int{flat, 64, maxObs}, ActReLU),
		maxObs: maxObs,
		feat:   feat,
		flat:   flat,
	}
}

// Logits implements PolicyNet.
func (l *LeNet) Logits(obs *ag.Tensor) *ag.Tensor {
	b := checkObs(obs, l.maxObs, l.feat)
	img := ag.Reshape(obs, b, 1, l.maxObs, l.feat)
	c1 := ag.MaxPool2D(ag.ReLU(ag.Conv2D(img, l.w1, l.b1)), 2, 1)
	c2 := ag.MaxPool2D(ag.ReLU(ag.Conv2D(c1, l.w2, l.b2)), 2, 1)
	flat := ag.Reshape(c2, b, l.flat)
	return l.dense.Forward(flat)
}

// Params implements Module.
func (l *LeNet) Params() []*ag.Tensor {
	ps := []*ag.Tensor{l.w1, l.b1, l.w2, l.b2}
	return append(ps, l.dense.Params()...)
}

// Kind implements PolicyNet.
func (l *LeNet) Kind() string { return "lenet" }

// Dims implements PolicyNet.
func (l *LeNet) Dims() (int, int) { return l.maxObs, l.feat }

// ValueNet is the critic (§IV-B2, Fig 6): a plain 3-layer MLP reading the
// whole flattened observation and predicting the expected reward of the
// sequence under the current policy.
type ValueNet struct {
	mlp    *MLP
	maxObs int
	feat   int
}

// DefaultValueSizes are the value network hidden sizes.
var DefaultValueSizes = []int{64, 32}

// NewValueNet builds the critic (nil hidden for defaults).
func NewValueNet(rng *rand.Rand, maxObs, feat int, hidden []int) *ValueNet {
	if hidden == nil {
		hidden = DefaultValueSizes
	}
	sizes := append([]int{maxObs * feat}, hidden...)
	sizes = append(sizes, 1)
	return &ValueNet{mlp: NewMLP(rng, sizes, ActTanh), maxObs: maxObs, feat: feat}
}

// Value returns the scalar prediction per observation: [B,1].
func (v *ValueNet) Value(obs *ag.Tensor) *ag.Tensor {
	checkObs(obs, v.maxObs, v.feat)
	return v.mlp.Forward(obs)
}

// Params implements Module.
func (v *ValueNet) Params() []*ag.Tensor { return v.mlp.Params() }

// NewPolicy constructs a policy network by kind name: "kernel", "mlp-v1",
// "mlp-v2", "mlp-v3", or "lenet".
func NewPolicy(rng *rand.Rand, kind string, maxObs, feat int) (PolicyNet, error) {
	switch kind {
	case "kernel":
		return NewKernelNet(rng, maxObs, feat, nil), nil
	case "mlp-v1", "mlp-v2", "mlp-v3":
		return NewMLPPolicy(rng, maxObs, feat, kind), nil
	case "lenet":
		return NewLeNet(rng, maxObs, feat), nil
	}
	return nil, fmt.Errorf("nn: unknown policy kind %q", kind)
}

// PolicyKinds lists the Table IV architectures in comparison order.
var PolicyKinds = []string{"mlp-v1", "mlp-v2", "mlp-v3", "lenet", "kernel"}
