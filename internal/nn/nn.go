// Package nn builds the neural networks of §IV-B on top of the autograd
// engine: the order-insensitive kernel-based policy network that is the
// paper's architectural contribution, the MLP v1/v2/v3 and LeNet baselines
// of Table IV, and the 3-layer value network of the actor–critic model.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	ag "rlsched/internal/autograd"
)

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*ag.Tensor
}

// Activation selects the nonlinearity between layers.
type Activation int

const (
	// ActTanh is the default hidden activation (SpinningUp's default).
	ActTanh Activation = iota
	// ActReLU is the rectifier.
	ActReLU
	// ActIdentity applies no nonlinearity.
	ActIdentity
)

func (a Activation) apply(x *ag.Tensor) *ag.Tensor {
	switch a {
	case ActTanh:
		return ag.Tanh(x)
	case ActReLU:
		return ag.ReLU(x)
	default:
		return x
	}
}

// denseCode maps the activation to the fused ag.Dense layer code.
func (a Activation) denseCode() int {
	switch a {
	case ActTanh:
		return ag.DenseActTanh
	case ActReLU:
		return ag.DenseActReLU
	default:
		return ag.DenseActNone
	}
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W, B *ag.Tensor
}

// NewLinear returns a layer with Xavier/Glorot-uniform weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	scale := math.Sqrt(6.0 / float64(in+out))
	w := ag.RandParam(rng, scale, in, out)
	b := ag.Param(make([]float64, out), 1, out)
	return &Linear{W: w, B: b}
}

// Forward applies the layer to x[B,in].
func (l *Linear) Forward(x *ag.Tensor) *ag.Tensor {
	return ag.AddBias(ag.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*ag.Tensor { return []*ag.Tensor{l.W, l.B} }

// MLP is a stack of Linear layers with a hidden activation applied after
// every layer except the last.
type MLP struct {
	Layers []*Linear
	Act    Activation
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes
// [in, 32, 16, 8, out].
func NewMLP(rng *rand.Rand, sizes []int, act Activation) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{Act: act}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, sizes[i], sizes[i+1]))
	}
	return m
}

// Forward applies the stack to x. Every layer is one fused ag.Dense node
// (matmul + bias + activation), keeping the graph small on the training
// hot path.
func (m *MLP) Forward(x *ag.Tensor) *ag.Tensor {
	for i, l := range m.Layers {
		act := ag.DenseActNone
		if i+1 < len(m.Layers) {
			act = m.Act.denseCode()
		}
		x = ag.Dense(x, l.W, l.B, act)
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []*ag.Tensor {
	var ps []*ag.Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount sums the elements of all parameters of a module.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}

// PolicyNet maps a batch of flattened observations [B, maxObs·feat] to one
// logit per observable job slot [B, maxObs]. Implementations differ only in
// architecture; the PPO machinery is architecture-agnostic.
type PolicyNet interface {
	Module
	// Logits scores every slot of every observation in the batch.
	Logits(obs *ag.Tensor) *ag.Tensor
	// Kind names the architecture for serialization and reports.
	Kind() string
	// Dims returns (maxObs, features) the network was built for.
	Dims() (int, int)
}

func checkObs(obs *ag.Tensor, maxObs, feat int) int {
	if len(obs.Shape) != 2 || obs.Shape[1] != maxObs*feat {
		panic(fmt.Sprintf("nn: observation shape %v, want [B,%d]", obs.Shape, maxObs*feat))
	}
	return obs.Shape[0]
}
