package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// Every zoo entry must generate a usable, validating trace of the
// requested length, and unknown names must return nil like Preset does.
func TestZooTraceAllEntries(t *testing.T) {
	for _, e := range ZooEntries {
		tr := ZooTrace(e.Name, 200, 7)
		if tr == nil {
			t.Fatalf("ZooTrace(%q) returned nil", e.Name)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ZooTrace(%q) invalid: %v", e.Name, err)
		}
		if tr.Len() != 200 {
			t.Fatalf("ZooTrace(%q): %d jobs, want 200", e.Name, tr.Len())
		}
		if tr.Name != e.Name {
			t.Fatalf("ZooTrace(%q) named itself %q", e.Name, tr.Name)
		}
	}
	if tr := ZooTrace("no-such-trace", 100, 1); tr != nil {
		t.Fatalf("unknown zoo name returned a trace: %+v", tr)
	}
	if got, want := len(ZooNames()), len(ZooEntries); got != want {
		t.Fatalf("ZooNames: %d names, want %d", got, want)
	}
}

// Zoo generation is seed-deterministic: same seed, same jobs; a different
// seed must actually change the workload.
func TestZooTraceDeterministic(t *testing.T) {
	key := func(tr *Trace) string {
		var sb strings.Builder
		for _, j := range tr.Jobs {
			fmt.Fprintf(&sb, "%g/%g/%d/%d;", j.SubmitTime, j.RunTime, j.RequestedProcs, j.UserID)
		}
		return sb.String()
	}
	a := ZooTrace("chaos-heavytail", 300, 11)
	b := ZooTrace("chaos-heavytail", 300, 11)
	c := ZooTrace("chaos-heavytail", 300, 12)
	if key(a) != key(b) {
		t.Fatalf("identical seeds generated different traces")
	}
	if key(a) == key(c) {
		t.Fatalf("seed 11 and 12 generated identical traces")
	}
}

// ZooStats covers the whole registry in order, and the chaos entries must
// actually be more extreme than the archive models they stress past: the
// flood arrives faster than every archive model, the heavy tail's mean
// runtime spread shows up as a higher mean (lognormal: sigma inflates the
// mean at fixed median).
func TestZooStats(t *testing.T) {
	stats := ZooStats(400, 3)
	if len(stats) != len(ZooEntries) {
		t.Fatalf("%d stats, want %d", len(stats), len(ZooEntries))
	}
	byName := map[string]Stats{}
	for i, s := range stats {
		if s.Name != ZooEntries[i].Name {
			t.Fatalf("stats[%d] is %q, want %q", i, s.Name, ZooEntries[i].Name)
		}
		if s.Jobs != 400 {
			t.Fatalf("%s: %d jobs, want 400", s.Name, s.Jobs)
		}
		byName[s.Name] = s
	}
	flood := byName["chaos-flood"]
	for _, e := range ZooEntries {
		if e.Kind != "archive" {
			continue
		}
		if flood.MeanInterarrival >= byName[e.Name].MeanInterarrival {
			t.Fatalf("chaos-flood interarrival %.1f not under %s's %.1f",
				flood.MeanInterarrival, e.Name, byName[e.Name].MeanInterarrival)
		}
	}
}

// ChaosSWF is byte-deterministic per (seed, n), and the loader must
// survive it: the malformed records are skipped, the valid ones load into
// a validating trace under the header's MaxProcs.
func TestChaosSWFLoads(t *testing.T) {
	a := ChaosSWF(42, 500)
	if !bytes.Equal(a, ChaosSWF(42, 500)) {
		t.Fatalf("ChaosSWF not deterministic for a fixed seed")
	}
	if bytes.Equal(a, ChaosSWF(43, 500)) {
		t.Fatalf("ChaosSWF identical across different seeds")
	}
	tr, err := LoadSWF("chaos", bytes.NewReader(a))
	if err != nil {
		t.Fatalf("LoadSWF on ChaosSWF: %v", err)
	}
	if tr.Processors != 128 {
		t.Fatalf("header MaxProcs not honored: got %d", tr.Processors)
	}
	if tr.Len() == 0 {
		t.Fatalf("no valid records survived")
	}
	if tr.Len() >= 500 {
		t.Fatalf("malformed records were not skipped: %d jobs from 500 lines", tr.Len())
	}
}

// A header carrying only MaxNodes (common for one-processor-per-node
// archives) must still size the cluster.
func TestLoadSWFMaxNodesFallback(t *testing.T) {
	const data = "; MaxNodes: 64\n1 0 -1 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n"
	tr, err := LoadSWF("nodes-only", strings.NewReader(data))
	if err != nil {
		t.Fatalf("LoadSWF: %v", err)
	}
	if tr.Processors != 64 {
		t.Fatalf("Processors = %d, want MaxNodes fallback 64", tr.Processors)
	}
}
