package trace

import (
	"math"
	"math/rand"

	"rlsched/internal/job"
)

// LublinConfig parameterizes the Lublin–Feitelson rigid-job workload model
// (Lublin & Feitelson, JPDC 2003), the model the paper uses to generate the
// Lublin-1 and Lublin-2 synthetic traces. The implementation follows the
// published model's structure — two-stage log-uniform job sizes with serial
// and power-of-two emphasis, hyper-gamma runtimes whose mixture probability
// depends on job size, and gamma inter-arrivals modulated by a daily cycle —
// and then rescales runtimes/inter-arrivals to hit the requested means so a
// config can reproduce Table II's `it` and `rt` columns exactly in
// expectation.
type LublinConfig struct {
	// Processors is the cluster size.
	Processors int
	// Jobs is the number of jobs to generate.
	Jobs int

	// SerialProb is the probability of a serial (1-processor) job.
	SerialProb float64
	// Pow2Prob is the probability a parallel job size is rounded to a
	// power of two.
	Pow2Prob float64
	// SizeMedFrac positions the break point of the two-stage log-uniform
	// size distribution as a fraction of log2(Processors). Larger values
	// shift mass toward bigger jobs.
	SizeMedFrac float64
	// SizeLowProb is the probability of drawing from the lower stage.
	SizeLowProb float64

	// Hyper-gamma runtime parameters (shape/scale of both components).
	// The mixture probability of the first (short) component decreases
	// linearly with job size: p = RunPA*size + RunPB, clamped to [0, 1].
	RunA1, RunB1 float64
	RunA2, RunB2 float64
	RunPA, RunPB float64

	// ArrivalShape is the gamma shape of inter-arrival times; DailyCycle
	// modulates the arrival rate by hour of day when true.
	ArrivalShape float64
	DailyCycle   bool

	// TargetMeanInterarrival and TargetMeanRuntime, when positive, rescale
	// the generated sequences to these means (seconds).
	TargetMeanInterarrival float64
	TargetMeanRuntime      float64

	// EstimateFactor inflates runtimes into user estimates; estimates are
	// additionally jittered. The paper's schedulers only see estimates.
	EstimateFactor float64

	// Users, when positive, assigns Zipf-distributed user IDs.
	Users     int
	UserSkew  float64
	GroupsPer int
}

// DefaultLublin returns the model defaults, close to the constants of the
// published lublin99 generator.
func DefaultLublin(processors, jobs int) LublinConfig {
	return LublinConfig{
		Processors:  processors,
		Jobs:        jobs,
		SerialProb:  0.244,
		Pow2Prob:    0.576,
		SizeMedFrac: 0.55,
		SizeLowProb: 0.65,
		RunA1:       4.2, RunB1: 220,
		RunA2: 1.1, RunB2: 18000,
		RunPA: -0.0054, RunPB: 0.78,
		ArrivalShape:   0.45,
		DailyCycle:     true,
		EstimateFactor: 1.6,
		Users:          32,
		UserSkew:       1.2,
		GroupsPer:      4,
	}
}

// hourWeight is a smooth daily arrival-intensity cycle peaking in working
// hours, normalized to mean 1 over 24h.
func hourWeight(hour float64) float64 {
	// 0.35 base + bump centered at 14:00.
	w := 0.35 + 1.3*math.Exp(-((hour-14)*(hour-14))/(2*4.5*4.5))
	return w
}

// GenerateLublin synthesizes a trace from the model.
func GenerateLublin(cfg LublinConfig, rng *rand.Rand) *Trace {
	if cfg.Jobs <= 0 || cfg.Processors <= 0 {
		return &Trace{Name: "lublin", Processors: cfg.Processors}
	}
	n := cfg.Jobs
	sizes := make([]int, n)
	runtimes := make([]float64, n)
	inter := make([]float64, n)

	maxLog := math.Log2(float64(cfg.Processors))
	med := cfg.SizeMedFrac * maxLog

	for i := 0; i < n; i++ {
		// --- size: serial / two-stage log-uniform with pow2 emphasis ---
		var size int
		if rng.Float64() < cfg.SerialProb {
			size = 1
		} else {
			var lg float64
			if rng.Float64() < cfg.SizeLowProb {
				lg = rng.Float64() * med
			} else {
				lg = med + rng.Float64()*(maxLog-med)
			}
			if rng.Float64() < cfg.Pow2Prob {
				size = 1 << uint(math.Round(lg))
			} else {
				size = int(math.Round(math.Pow(2, lg)))
			}
			size = clampInt(size, 1, cfg.Processors)
		}
		sizes[i] = size

		// --- runtime: hyper-gamma, mixture prob depends on size ---
		p := cfg.RunPA*float64(size) + cfg.RunPB
		if p < 0.05 {
			p = 0.05
		}
		if p > 0.95 {
			p = 0.95
		}
		rt := hyperGamma(rng, p, cfg.RunA1, cfg.RunB1, cfg.RunA2, cfg.RunB2)
		if rt < 1 {
			rt = 1
		}
		runtimes[i] = rt

		// --- inter-arrival: gamma; daily cycle applied below ---
		ia := gammaSample(rng, cfg.ArrivalShape, 1/cfg.ArrivalShape)
		inter[i] = ia
	}

	rescale(runtimes, cfg.TargetMeanRuntime)
	rescale(inter, cfg.TargetMeanInterarrival)

	// Apply the daily cycle by stretching inter-arrivals at night.
	if cfg.DailyCycle {
		t := 0.0
		for i := range inter {
			hour := math.Mod(t/3600, 24)
			inter[i] /= hourWeight(hour)
			t += inter[i]
		}
		// Re-normalize so the configured mean still holds.
		rescale(inter, cfg.TargetMeanInterarrival)
	}

	var userW []float64
	if cfg.Users > 0 {
		userW = zipfWeights(cfg.Users, cfg.UserSkew)
	}

	jobs := make([]*job.Job, n)
	t := 0.0
	ef := cfg.EstimateFactor
	if ef < 1 {
		ef = 1
	}
	for i := 0; i < n; i++ {
		t += inter[i]
		est := runtimes[i] * (ef + rng.Float64()*ef)
		j := job.New(i+1, t, runtimes[i], sizes[i], est)
		if cfg.Users > 0 {
			j.UserID = weightedPick(rng, userW)
			g := cfg.GroupsPer
			if g <= 0 {
				g = 1
			}
			j.GroupID = j.UserID % g
			j.Executable = j.UserID*3 + rng.Intn(3)
		}
		j.QueueID = 1
		j.PartitionID = 1
		jobs[i] = j
	}
	return &Trace{Name: "lublin", Processors: cfg.Processors, Jobs: jobs}
}

// rescale multiplies xs so its mean equals target (no-op if target <= 0 or
// the current mean is zero).
func rescale(xs []float64, target float64) {
	if target <= 0 || len(xs) == 0 {
		return
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean <= 0 {
		return
	}
	f := target / mean
	for i := range xs {
		xs[i] *= f
	}
}
