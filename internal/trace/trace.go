// Package trace provides job-trace containers, descriptive statistics
// (Table II of the paper), windowed sampling for training/evaluation, the
// Lublin–Feitelson synthetic workload model, and preset generators that
// reproduce the characteristics of the paper's six evaluation traces.
package trace

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"rlsched/internal/job"
)

// Trace is an ordered job log for a cluster with a fixed processor count.
type Trace struct {
	Name string
	// Processors is the size of the traced cluster ("size" in Table II).
	Processors int
	Jobs       []*job.Job
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Validate checks the trace is usable: positive cluster size, jobs sorted by
// submit time, and every job fits the cluster.
func (t *Trace) Validate() error {
	if t.Processors <= 0 {
		return fmt.Errorf("trace %s: non-positive processors %d", t.Name, t.Processors)
	}
	prev := -1.0
	for i, j := range t.Jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("trace %s: %w", t.Name, err)
		}
		if j.SubmitTime < prev {
			return fmt.Errorf("trace %s: job %d out of submit order", t.Name, i)
		}
		prev = j.SubmitTime
		if j.RequestedProcs > t.Processors {
			return fmt.Errorf("trace %s: job %d requests %d > %d procs",
				t.Name, i, j.RequestedProcs, t.Processors)
		}
	}
	return nil
}

// FirstN returns a trace truncated to its first n jobs (the paper evaluates
// on the first 10K jobs of each trace). The job slice is shared, not copied.
func (t *Trace) FirstN(n int) *Trace {
	if n > len(t.Jobs) {
		n = len(t.Jobs)
	}
	return &Trace{Name: t.Name, Processors: t.Processors, Jobs: t.Jobs[:n]}
}

// Window returns clones of n continuous jobs starting at index start, with
// submit times rebased so the first job arrives at time 0 and scheduling
// state cleared. This is the unit both training trajectories (n=256) and
// evaluation sequences (n=1024) are built from.
func (t *Trace) Window(start, n int) []*job.Job {
	if start < 0 {
		start = 0
	}
	if start+n > len(t.Jobs) {
		n = len(t.Jobs) - start
	}
	if n <= 0 {
		return nil
	}
	base := t.Jobs[start].SubmitTime
	out := make([]*job.Job, n)
	for i := 0; i < n; i++ {
		c := t.Jobs[start+i].Clone()
		c.SubmitTime -= base
		out[i] = c
	}
	return out
}

// SampleWindow returns a uniformly random n-job window.
func (t *Trace) SampleWindow(rng *rand.Rand, n int) []*job.Job {
	if n >= len(t.Jobs) {
		return t.Window(0, len(t.Jobs))
	}
	start := rng.Intn(len(t.Jobs) - n + 1)
	return t.Window(start, n)
}

// SampleQueue draws n random jobs from anywhere in the trace as one
// synthetic pending-queue state: clones with scheduling state cleared and
// submit times rebased into the recent past (newest at 0), as a scheduler
// facing that queue would see them. Unlike SampleWindow the jobs are not
// contiguous — queue states mix ages and sizes the way a live backlog does.
// The result is sorted oldest-first (FCFS order).
func (t *Trace) SampleQueue(rng *rand.Rand, n int) []*job.Job {
	if len(t.Jobs) == 0 || n <= 0 {
		return nil
	}
	return t.SampleQueueInto(rng, make([]*job.Job, n))
}

// SampleQueueInto is SampleQueue filling a caller-owned buffer: dst's job
// structs are reused in place (allocated only where nil), so a load
// generator drawing thousands of queue states amortizes its allocations to
// zero. Returns dst. The sampled values overwrite every field, so a buffer
// may be recycled across calls freely — but not retained across calls.
func (t *Trace) SampleQueueInto(rng *rand.Rand, dst []*job.Job) []*job.Job {
	if len(t.Jobs) == 0 || len(dst) == 0 {
		return dst
	}
	for i := range dst {
		if dst[i] == nil {
			dst[i] = new(job.Job)
		}
		*dst[i] = *t.Jobs[rng.Intn(len(t.Jobs))]
		dst[i].Reset()
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].SubmitTime < dst[j].SubmitTime })
	base := dst[len(dst)-1].SubmitTime
	for _, j := range dst {
		j.SubmitTime -= base
	}
	return dst
}

// Concat splices traces into one workload-shift stream: part i+1's jobs
// are rebased to start one mean interarrival after part i's last arrival,
// so the arrival process shifts regime without a gap or an overlap. Jobs
// are cloned with scheduling state cleared and renumbered 1..N across the
// whole stream — parts drawn from different generators typically reuse
// the same ID range, and two same-ID jobs running concurrently would
// collide in the simulator's allocation table. The cluster size is the
// max over parts (a fleet routing the stream decides where jobs actually
// run). This is the stream builder behind the fleet placement layer's
// workload-shift scenario.
func Concat(name string, parts ...*Trace) *Trace {
	out := &Trace{Name: name}
	offset := 0.0
	id := 0
	for _, p := range parts {
		if p.Processors > out.Processors {
			out.Processors = p.Processors
		}
		if len(p.Jobs) == 0 {
			continue
		}
		base := p.Jobs[0].SubmitTime
		for _, j := range p.Jobs {
			c := j.Clone()
			c.SubmitTime = c.SubmitTime - base + offset
			id++
			c.ID = id
			out.Jobs = append(out.Jobs, c)
		}
		span := p.Jobs[len(p.Jobs)-1].SubmitTime - base
		gap := p.ComputeStats().MeanInterarrival
		if gap <= 0 {
			gap = 1
		}
		offset += span + gap
	}
	return out
}

// Stats summarizes the trace in the form of Table II.
type Stats struct {
	Name string
	// Processors is the cluster size.
	Processors int
	Jobs       int
	// MeanInterarrival is the mean job arrival interval in seconds (it).
	MeanInterarrival float64
	// MeanRequestedTime is the mean requested runtime in seconds (rt).
	MeanRequestedTime float64
	// MeanRunTime is the mean actual runtime in seconds.
	MeanRunTime float64
	// MeanProcs is the mean requested processor count (nt).
	MeanProcs float64
	// Users is the number of distinct user IDs (0 when the trace carries
	// no user information).
	Users int
}

// ComputeStats derives Table II statistics from the trace.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Name: t.Name, Processors: t.Processors, Jobs: len(t.Jobs)}
	if len(t.Jobs) == 0 {
		return s
	}
	users := map[int]bool{}
	var sumRT, sumReq, sumProcs float64
	for _, j := range t.Jobs {
		sumRT += j.RunTime
		sumReq += j.RequestedTime
		sumProcs += float64(j.RequestedProcs)
		if j.UserID >= 0 {
			users[j.UserID] = true
		}
	}
	n := float64(len(t.Jobs))
	s.MeanRunTime = sumRT / n
	s.MeanRequestedTime = sumReq / n
	s.MeanProcs = sumProcs / n
	s.Users = len(users)
	if len(t.Jobs) > 1 {
		span := t.Jobs[len(t.Jobs)-1].SubmitTime - t.Jobs[0].SubmitTime
		s.MeanInterarrival = span / (n - 1)
	}
	return s
}

// UserIDs returns the sorted distinct user IDs present in the trace.
func (t *Trace) UserIDs() []int {
	set := map[int]bool{}
	for _, j := range t.Jobs {
		if j.UserID >= 0 {
			set[j.UserID] = true
		}
	}
	ids := make([]int, 0, len(set))
	for u := range set {
		ids = append(ids, u)
	}
	sort.Ints(ids)
	return ids
}

// LoadSWF reads a trace from an SWF stream. If the header lacks MaxProcs,
// MaxNodes stands in (single-processor-per-node archives declare only it);
// failing both, the largest job request is used as the cluster size.
func LoadSWF(name string, r io.Reader) (*Trace, error) {
	hdr, jobs, err := job.ParseSWF(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: name, Processors: hdr.MaxProcs, Jobs: jobs}
	if t.Processors <= 0 {
		t.Processors = hdr.MaxNodes
	}
	if t.Processors <= 0 {
		for _, j := range jobs {
			if j.RequestedProcs > t.Processors {
				t.Processors = j.RequestedProcs
			}
		}
	}
	return t, t.Validate()
}

// LoadSWFFile reads a trace from an SWF file on disk.
func LoadSWFFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSWF(path, f)
}

// WriteSWF writes the trace in Standard Workload Format.
func (t *Trace) WriteSWF(w io.Writer) error {
	hdr := job.SWFHeader{MaxProcs: t.Processors, Comments: []string{"Generator: rlsched/internal/trace"}}
	return job.WriteSWF(w, hdr, t.Jobs)
}
