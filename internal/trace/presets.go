package trace

import "math/rand"

// Preset generators for the six evaluation traces of Table II. Each matches
// the table's cluster size and mean inter-arrival / requested-runtime /
// processor columns, plus the qualitative behaviour the experiments depend
// on. Real SWF archive files can be used instead via LoadSWFFile; these
// presets make the repository self-contained (see DESIGN.md §3).
//
//	Name         size   it(s)  rt(s)   nt
//	SDSC-SP2      128   1055    6687   11
//	HPC2N         240    538   17024    6
//	PIK-IPLEX    2560    140   30889   12
//	ANL Intrepid 163840  301    5176  5063
//	Lublin-1      256    771    4862   22
//	Lublin-2      256    460    1695   39

// PresetNames lists the built-in trace names accepted by Preset.
var PresetNames = []string{"SDSC-SP2", "HPC2N", "PIK-IPLEX", "ANL-Intrepid", "Lublin-1", "Lublin-2"}

// Preset generates the named trace with n jobs from the seed. Unknown names
// return nil.
func Preset(name string, n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "SDSC-SP2":
		return SDSCSP2(n, rng)
	case "HPC2N":
		return HPC2N(n, rng)
	case "PIK-IPLEX":
		return PIKIPLEX(n, rng)
	case "ANL-Intrepid":
		return ANLIntrepid(n, rng)
	case "Lublin-1":
		return Lublin1(n, rng)
	case "Lublin-2":
		return Lublin2(n, rng)
	}
	return nil
}

// SDSCSP2 resembles the SDSC-SP2 1998 trace: a small 128-node cluster with
// long jobs and a wide size mix that makes pure SJF pay heavily for
// starving wide jobs (the paper's Table V shows SJF at 2167 vs RL at 397
// with backfilling).
func SDSCSP2(n int, rng *rand.Rand) *Trace {
	t := GenerateSynth(SynthConfig{
		Name:             "SDSC-SP2",
		Processors:       128,
		Jobs:             n,
		MeanInterarrival: 1055,
		Burstiness:       1.5,
		BurstLen:         10,
		MeanRuntime:      6687,
		RuntimeSigma:     1.9,
		MeanProcs:        11,
		SerialProb:       0.25,
		EstimateFactor:   2,
		Users:            64,
		UserSkew:         1.1,
		WideProb:         0.01,
		WideRuntimeMult:  4,
	}, rng)
	return t
}

// HPC2N resembles the HPC2N 2002 trace: 240 processors, mostly small jobs,
// very long runtimes, and one dominant user (u17 submitted ~40K of 700-avg
// jobs in the paper's fairness discussion).
func HPC2N(n int, rng *rand.Rand) *Trace {
	return GenerateSynth(SynthConfig{
		Name:               "HPC2N",
		Processors:         240,
		Jobs:               n,
		MeanInterarrival:   538,
		Burstiness:         5,
		BurstLen:           40,
		MeanRuntime:        17024,
		RuntimeSigma:       2.1,
		MeanProcs:          6,
		SerialProb:         0.4,
		EstimateFactor:     2,
		Users:              57,
		UserSkew:           1.0,
		DominantUserWeight: 0.5,
		WideProb:           0.004,
		WideRuntimeMult:    1,
	}, rng)
}

// PIKIPLEX resembles PIK-IPLEX-2009: a 2560-processor IBM iDataPlex with
// extremely bursty arrivals and heavy-tailed runtimes. This is the trace
// whose variance breaks PPO without trajectory filtering (Figs 3, 7, 9).
func PIKIPLEX(n int, rng *rand.Rand) *Trace {
	return GenerateSynth(SynthConfig{
		Name:             "PIK-IPLEX",
		Processors:       2560,
		Jobs:             n,
		MeanInterarrival: 140,
		Burstiness:       6,
		BurstLen:         40,
		MeanRuntime:      30889,
		RuntimeSigma:     2.6,
		MeanProcs:        12,
		SerialProb:       0.35,
		EstimateFactor:   2,
		Users:            45,
		UserSkew:         1.2,
		WideProb:         0.003,
		WideRuntimeMult:  10,
	}, rng)
}

// ANLIntrepid resembles the ANL Intrepid 2009 Blue Gene/P trace: a huge
// 163840-core machine where even the mean job (~5K cores) is a small
// fraction of the system, so absolute slowdowns are low (Table VII).
func ANLIntrepid(n int, rng *rand.Rand) *Trace {
	return GenerateSynth(SynthConfig{
		Name:             "ANL-Intrepid",
		Processors:       163840,
		Jobs:             n,
		MeanInterarrival: 301,
		Burstiness:       0.5,
		BurstLen:         5,
		MeanRuntime:      5176,
		RuntimeSigma:     1.2,
		MeanProcs:        5063,
		SerialProb:       0.0,
		EstimateFactor:   1.8,
		Users:            30,
		UserSkew:         1.0,
	}, rng)
}

// Lublin1 generates the paper's Lublin-1 trace: the Lublin–Feitelson model
// on a 256-processor cluster with longer jobs (rt 4862s, nt 22).
func Lublin1(n int, rng *rand.Rand) *Trace {
	cfg := DefaultLublin(256, n)
	cfg.TargetMeanInterarrival = 771
	cfg.TargetMeanRuntime = 4862
	cfg.SizeMedFrac = 0.55
	cfg.SizeLowProb = 0.75
	t := GenerateLublin(cfg, rng)
	t.Name = "Lublin-1"
	return t
}

// Lublin2 generates the paper's Lublin-2 trace: same model, different
// parameters — shorter jobs arriving faster and requesting more processors
// (rt 1695s, nt 39).
func Lublin2(n int, rng *rand.Rand) *Trace {
	cfg := DefaultLublin(256, n)
	cfg.TargetMeanInterarrival = 460
	cfg.TargetMeanRuntime = 1695
	cfg.SizeMedFrac = 0.65
	cfg.SizeLowProb = 0.65
	cfg.SerialProb = 0.15
	t := GenerateLublin(cfg, rng)
	t.Name = "Lublin-2"
	return t
}
