package trace

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// The trace zoo (DESIGN.md §12): one registry over every workload this
// repository can generate — the six Table II archive models plus seeded
// chaos generators that push arrival burstiness, runtime tails and user
// skew past anything the archives contain. Experiments and both CLIs
// resolve zoo names through ZooTrace, and ZooStats summarizes the whole
// zoo in Table II form, so a scheduling claim can be checked against the
// full spectrum in one sweep. ChaosSWF rounds the zoo out on the parser
// side: a seeded hostile SWF byte stream (real archive header directives,
// malformed records, junk lines) that feeds the fuzz targets hardening the
// loaders.

// ZooEntry describes one zoo workload.
type ZooEntry struct {
	// Name is the ZooTrace key; Kind groups entries ("archive" for the
	// Table II models, "chaos" for the adversarial generators).
	Name, Kind string
	// Desc is a one-line characterization.
	Desc string
}

// ZooEntries lists every zoo workload: the Table II archive models first,
// then the chaos generators.
var ZooEntries = []ZooEntry{
	{"SDSC-SP2", "archive", "128p, long jobs, wide size mix"},
	{"HPC2N", "archive", "240p, long jobs, one dominant user"},
	{"PIK-IPLEX", "archive", "2560p, extreme bursts, heavy runtime tail"},
	{"ANL-Intrepid", "archive", "163840p, huge jobs, smooth arrivals"},
	{"Lublin-1", "archive", "256p Lublin-Feitelson, longer jobs"},
	{"Lublin-2", "archive", "256p Lublin-Feitelson, faster+wider jobs"},
	{"chaos-bursts", "chaos", "near-simultaneous arrival storms"},
	{"chaos-heavytail", "chaos", "extreme runtime tail, one user dominates"},
	{"chaos-flood", "chaos", "serial-job flood at tiny interarrival"},
}

// ZooNames returns the zoo workload names, in ZooEntries order.
func ZooNames() []string {
	out := make([]string, len(ZooEntries))
	for i, e := range ZooEntries {
		out[i] = e.Name
	}
	return out
}

// ZooTrace generates the named zoo workload with n jobs from the seed:
// the archive models via Preset, the chaos entries via their dedicated
// generators. Unknown names return nil (mirroring Preset).
func ZooTrace(name string, n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "chaos-bursts":
		return ChaosBursts(n, rng)
	case "chaos-heavytail":
		return ChaosHeavyTail(n, rng)
	case "chaos-flood":
		return ChaosFlood(n, rng)
	}
	return Preset(name, n, seed)
}

// ZooStats generates every zoo workload at n jobs from the seed and
// returns their Table II summaries, in ZooEntries order.
func ZooStats(n int, seed int64) []Stats {
	out := make([]Stats, 0, len(ZooEntries))
	for _, e := range ZooEntries {
		out = append(out, ZooTrace(e.Name, n, seed).ComputeStats())
	}
	return out
}

// WriteZooSummary prints one Table II-style row per zoo workload, each
// generated at n jobs from the seed — the shared backend of the -zoo flag
// on both CLIs.
func WriteZooSummary(w io.Writer, n int, seed int64) {
	stats := ZooStats(n, seed)
	fmt.Fprintf(w, "== Trace zoo (%d workloads, %d jobs each, seed %d) ==\n",
		len(ZooEntries), n, seed)
	fmt.Fprintf(w, "%-16s %-8s %7s %8s %9s %7s %6s  %s\n",
		"Name", "Kind", "procs", "mean-ia", "mean-run", "procs/j", "users", "description")
	for i, e := range ZooEntries {
		s := stats[i]
		fmt.Fprintf(w, "%-16s %-8s %7d %8.0f %9.0f %7.1f %6d  %s\n",
			e.Name, e.Kind, s.Processors, s.MeanInterarrival, s.MeanRunTime,
			s.MeanProcs, s.Users, e.Desc)
	}
}

// ChaosBursts generates arrival storms: most of the trace arrives in
// near-simultaneous clumps separated by long dead air. The mean
// inter-arrival matches SDSC-SP2's, so the same horizon carries an order
// of magnitude more instantaneous pressure — the regime that separates
// backfilling policies from queue-reordering ones.
func ChaosBursts(n int, rng *rand.Rand) *Trace {
	return GenerateSynth(SynthConfig{
		Name:             "chaos-bursts",
		Processors:       256,
		Jobs:             n,
		MeanInterarrival: 1000,
		Burstiness:       12,
		BurstLen:         80,
		MeanRuntime:      3000,
		RuntimeSigma:     1.5,
		MeanProcs:        12,
		SerialProb:       0.3,
		EstimateFactor:   2,
		Users:            32,
		UserSkew:         1.1,
		WideProb:         0.01,
		WideRuntimeMult:  4,
	}, rng)
}

// ChaosHeavyTail generates the heavy-tail stress case: a lognormal runtime
// spread far past PIK-IPLEX's, frequent near-full-machine monsters, and
// one user owning most of the stream — the workload that maximizes both
// bounded-slowdown variance and fairness pressure at once.
func ChaosHeavyTail(n int, rng *rand.Rand) *Trace {
	return GenerateSynth(SynthConfig{
		Name:               "chaos-heavytail",
		Processors:         512,
		Jobs:               n,
		MeanInterarrival:   400,
		Burstiness:         4,
		BurstLen:           30,
		MeanRuntime:        8000,
		RuntimeSigma:       3.2,
		MeanProcs:          16,
		SerialProb:         0.3,
		EstimateFactor:     3,
		Users:              20,
		UserSkew:           1.6,
		DominantUserWeight: 0.6,
		WideProb:           0.02,
		WideRuntimeMult:    10,
	}, rng)
}

// ChaosFlood generates a serial-job flood: tiny jobs at an inter-arrival
// far under their runtimes, so the backlog only ever grows until the tail
// of the stream. Schedulers that pay per-queue-scan costs (and placement
// layers that pay per-candidate costs) are hit where it hurts.
func ChaosFlood(n int, rng *rand.Rand) *Trace {
	return GenerateSynth(SynthConfig{
		Name:             "chaos-flood",
		Processors:       128,
		Jobs:             n,
		MeanInterarrival: 20,
		Burstiness:       2,
		BurstLen:         50,
		MeanRuntime:      600,
		RuntimeSigma:     1.0,
		MeanProcs:        2,
		SerialProb:       0.7,
		EstimateFactor:   1.5,
		Users:            48,
		UserSkew:         1.0,
	}, rng)
}

// ChaosSWF generates a seeded hostile SWF byte stream of about n lines:
// genuine Parallel Workloads Archive header directives (Version, Computer,
// MaxJobs, MaxNodes, MaxProcs, UnixStartTime), valid records, records with
// the malformed and negative fields real archives contain (which the
// parser must skip, not crash on), stray comments mid-stream, and odd but
// legal whitespace. Every output for a given (seed, n) is identical — the
// generator exists to seed the SWF fuzz targets and to regression-test the
// loaders' bail-clean behavior on adversarial input.
func ChaosSWF(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("; Version: 2.2\n")
	b.WriteString("; Computer: IBM SP2\n")
	fmt.Fprintf(&b, "; MaxJobs: %d\n", n)
	b.WriteString("; MaxNodes: 128\n")
	b.WriteString("; MaxProcs: 128\n")
	b.WriteString("; UnixStartTime: 893683200\n")
	t := 0
	for i := 1; i <= n; i++ {
		t += 1 + rng.Intn(1999) // strictly increasing: a fractional submit (case 3) must not overtake its successor
		switch rng.Intn(8) {
		case 0: // unusable: zero processors and runtime (skipped, not fatal)
			fmt.Fprintf(&b, "%d %d 0 0 0 -1 -1 0 0 -1 1 0 0 0 1 1 -1 -1\n", i, t)
		case 1: // negative submit time (skipped by validation)
			fmt.Fprintf(&b, "%d -%d 0 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n", i, 1+rng.Intn(100))
		case 2: // stray comment mid-stream
			fmt.Fprintf(&b, "; note %d\n", rng.Intn(1000))
			fmt.Fprintf(&b, "%d %d -1 %d 1 -1 -1 1 %d -1 1 %d 0 0 1 1 -1 -1\n",
				i, t, 30+rng.Intn(3600), 60+rng.Intn(7200), rng.Intn(40))
		case 3: // fractional fields (legal floats; may round away on write)
			fmt.Fprintf(&b, "%d %d.5 0.25 %d.4 2 -1 -1 2 %d.9 -1 1 %d 0 0 1 1 -1 -1\n",
				i, t, rng.Intn(600), 60+rng.Intn(600), rng.Intn(40))
		case 4: // request fallbacks: used procs/time stand in for requests
			fmt.Fprintf(&b, "%d %d 0 %d %d -1 -1 0 0 -1 1 %d 0 0 1 1 -1 -1\n",
				i, t, 60+rng.Intn(3600), 1+rng.Intn(8), rng.Intn(40))
		case 5: // tab-and-space soup (legal whitespace)
			fmt.Fprintf(&b, "%d\t%d  -1\t%d 4 -1 -1 4\t%d -1 1 %d 0 0 1 1 -1 -1\n",
				i, t, 60+rng.Intn(3600), 120+rng.Intn(7200), rng.Intn(40))
		default: // plain valid record
			procs := 1 << rng.Intn(6)
			rt := 60 + rng.Intn(7200)
			fmt.Fprintf(&b, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d %d 0 1 1 -1 -1\n",
				i, t, rt, procs, procs, rt*2, rng.Intn(40), rng.Intn(8))
		}
	}
	return []byte(b.String())
}
