package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rlsched/internal/job"
)

func mkTrace(n int) *Trace {
	jobs := make([]*job.Job, n)
	for i := 0; i < n; i++ {
		j := job.New(i+1, float64(i*100), 60, 2, 90)
		j.UserID = i % 3
		jobs[i] = j
	}
	return &Trace{Name: "t", Processors: 16, Jobs: jobs}
}

func TestValidate(t *testing.T) {
	tr := mkTrace(5)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tr.Jobs[2].SubmitTime = 0 // out of order
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace must not validate")
	}
	tr2 := mkTrace(2)
	tr2.Jobs[0].RequestedProcs = 999
	if err := tr2.Validate(); err == nil {
		t.Error("oversized job must not validate")
	}
	tr3 := mkTrace(1)
	tr3.Processors = 0
	if err := tr3.Validate(); err == nil {
		t.Error("zero-processor trace must not validate")
	}
}

func TestFirstN(t *testing.T) {
	tr := mkTrace(10)
	if got := tr.FirstN(4).Len(); got != 4 {
		t.Errorf("FirstN(4).Len = %d, want 4", got)
	}
	if got := tr.FirstN(99).Len(); got != 10 {
		t.Errorf("FirstN(99).Len = %d, want 10", got)
	}
}

func TestWindowRebasing(t *testing.T) {
	tr := mkTrace(10)
	w := tr.Window(3, 4)
	if len(w) != 4 {
		t.Fatalf("window len = %d, want 4", len(w))
	}
	if w[0].SubmitTime != 0 {
		t.Errorf("first submit = %g, want 0 (rebased)", w[0].SubmitTime)
	}
	if w[1].SubmitTime != 100 {
		t.Errorf("second submit = %g, want 100", w[1].SubmitTime)
	}
	// Windows are clones: mutating them must not touch the trace.
	w[0].StartTime = 42
	if tr.Jobs[3].StartTime != -1 {
		t.Error("Window must clone jobs")
	}
	if got := tr.Window(8, 5); len(got) != 2 {
		t.Errorf("clipped window len = %d, want 2", len(got))
	}
	if got := tr.Window(20, 5); got != nil {
		t.Error("out-of-range window must be nil")
	}
}

func TestSampleWindowBounds(t *testing.T) {
	tr := mkTrace(50)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		w := tr.SampleWindow(rng, 8)
		if len(w) != 8 {
			t.Fatalf("sample window len = %d, want 8", len(w))
		}
		if w[0].SubmitTime != 0 {
			t.Fatal("sample window must be rebased")
		}
	}
	if got := tr.SampleWindow(rng, 100); len(got) != 50 {
		t.Errorf("oversized sample = %d jobs, want all 50", len(got))
	}
}

func TestComputeStats(t *testing.T) {
	tr := mkTrace(11)
	s := tr.ComputeStats()
	if s.Jobs != 11 || s.Processors != 16 {
		t.Errorf("stats basics wrong: %+v", s)
	}
	if s.MeanInterarrival != 100 {
		t.Errorf("MeanInterarrival = %g, want 100", s.MeanInterarrival)
	}
	if s.MeanRunTime != 60 || s.MeanRequestedTime != 90 || s.MeanProcs != 2 {
		t.Errorf("means wrong: %+v", s)
	}
	if s.Users != 3 {
		t.Errorf("Users = %d, want 3", s.Users)
	}
	empty := &Trace{Name: "e", Processors: 4}
	if s := empty.ComputeStats(); s.Jobs != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestSWFRoundTripTrace(t *testing.T) {
	tr := Preset("Lublin-1", 300, 9)
	var buf bytes.Buffer
	if err := tr.WriteSWF(&buf); err != nil {
		t.Fatalf("WriteSWF: %v", err)
	}
	tr2, err := LoadSWF("rt", &buf)
	if err != nil {
		t.Fatalf("LoadSWF: %v", err)
	}
	if tr2.Processors != tr.Processors || tr2.Len() != tr.Len() {
		t.Fatalf("round trip: %d/%d jobs, %d/%d procs",
			tr2.Len(), tr.Len(), tr2.Processors, tr.Processors)
	}
}

func TestPresetStatsMatchTable2(t *testing.T) {
	// Table II targets: name -> {size, it, rt, nt}. Mean inter-arrival and
	// mean requested-runtime are matched loosely (synthetic sampling);
	// cluster size must be exact.
	targets := map[string][4]float64{
		"SDSC-SP2":     {128, 1055, 6687, 11},
		"HPC2N":        {240, 538, 17024, 6},
		"PIK-IPLEX":    {2560, 140, 30889, 12},
		"ANL-Intrepid": {163840, 301, 5176, 5063},
		"Lublin-1":     {256, 771, 4862, 22},
		"Lublin-2":     {256, 460, 1695, 39},
	}
	for _, name := range PresetNames {
		tr := Preset(name, 4000, 42)
		if tr == nil {
			t.Fatalf("Preset(%q) = nil", name)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := tr.ComputeStats()
		want := targets[name]
		if s.Processors != int(want[0]) {
			t.Errorf("%s: processors = %d, want %g", name, s.Processors, want[0])
		}
		if rel := math.Abs(s.MeanInterarrival-want[1]) / want[1]; rel > 0.30 {
			t.Errorf("%s: it = %.0f, want ≈%g (rel err %.2f)", name, s.MeanInterarrival, want[1], rel)
		}
		// rt in Table II is the mean *requested* runtime; the actual
		// runtime is what generators target, estimates inflate it.
		if s.MeanRunTime <= 0 || s.MeanRequestedTime < s.MeanRunTime*0.9 {
			t.Errorf("%s: runtime stats implausible: %+v", name, s)
		}
		if rel := math.Abs(s.MeanProcs-want[3]) / want[3]; rel > 0.45 {
			t.Errorf("%s: nt = %.1f, want ≈%g (rel err %.2f)", name, s.MeanProcs, want[3], rel)
		}
	}
	if Preset("nope", 10, 1) != nil {
		t.Error("unknown preset must be nil")
	}
}

func TestPresetDeterminism(t *testing.T) {
	a := Preset("HPC2N", 200, 7)
	b := Preset("HPC2N", 200, 7)
	for i := range a.Jobs {
		if a.Jobs[i].SubmitTime != b.Jobs[i].SubmitTime ||
			a.Jobs[i].RunTime != b.Jobs[i].RunTime ||
			a.Jobs[i].RequestedProcs != b.Jobs[i].RequestedProcs {
			t.Fatal("same seed must give identical traces")
		}
	}
	c := Preset("HPC2N", 200, 8)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].RunTime != c.Jobs[i].RunTime {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different traces")
	}
}

func TestPIKIsBurstyAndSkewed(t *testing.T) {
	pik := Preset("PIK-IPLEX", 3000, 5)
	sdsc := Preset("SDSC-SP2", 3000, 5)
	cv := func(tr *Trace) float64 {
		var inter []float64
		for i := 1; i < tr.Len(); i++ {
			inter = append(inter, tr.Jobs[i].SubmitTime-tr.Jobs[i-1].SubmitTime)
		}
		m, sd := meanStd(inter)
		return sd / m
	}
	if cv(pik) <= cv(sdsc) {
		t.Errorf("PIK arrival CV %.2f must exceed SDSC %.2f (burstiness)", cv(pik), cv(sdsc))
	}
	if cv(pik) < 2 {
		t.Errorf("PIK arrival CV %.2f, want >= 2 for the Fig 3 spikes", cv(pik))
	}
}

func TestHPC2NDominantUser(t *testing.T) {
	tr := Preset("HPC2N", 2000, 3)
	counts := map[int]int{}
	for _, j := range tr.Jobs {
		counts[j.UserID]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 0.35*float64(tr.Len()) {
		t.Errorf("dominant user has %d of %d jobs, want >= 35%% (paper's u17)", max, tr.Len())
	}
	if len(counts) < 10 {
		t.Errorf("only %d users, want many", len(counts))
	}
}

func TestUserIDs(t *testing.T) {
	tr := mkTrace(7)
	ids := tr.UserIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Errorf("UserIDs = %v, want [0 1 2]", ids)
	}
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)))
}

func TestSampleQueue(t *testing.T) {
	tr := Preset("Lublin-1", 500, 7)
	rng := rand.New(rand.NewSource(1))
	q := tr.SampleQueue(rng, 64)
	if len(q) != 64 {
		t.Fatalf("SampleQueue returned %d jobs, want 64", len(q))
	}
	for i, j := range q {
		if j.Started() {
			t.Fatalf("job %d has scheduling state set", i)
		}
		if j.SubmitTime > 0 {
			t.Fatalf("job %d submitted in the future (%g)", i, j.SubmitTime)
		}
		if i > 0 && q[i-1].SubmitTime > j.SubmitTime {
			t.Fatalf("queue not in FCFS order at %d", i)
		}
	}
	if q[len(q)-1].SubmitTime != 0 {
		t.Fatalf("newest job should be rebased to 0, got %g", q[len(q)-1].SubmitTime)
	}
	// Clones: mutating the sample must not touch the trace.
	q[0].RequestedProcs = -5
	for _, j := range tr.Jobs {
		if j.RequestedProcs == -5 {
			t.Fatal("SampleQueue aliases trace jobs")
		}
	}
}

func TestSampleQueueIntoReusesBuffer(t *testing.T) {
	tr := Preset("Lublin-1", 300, 7)
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	buf := make([]*job.Job, 16)
	first := tr.SampleQueueInto(rng1, buf)
	fresh := tr.SampleQueue(rng2, 16)
	for i := range fresh {
		if first[i].ID != fresh[i].ID || first[i].SubmitTime != fresh[i].SubmitTime ||
			first[i].RequestedProcs != fresh[i].RequestedProcs {
			t.Fatalf("job %d differs between Into and fresh sampling", i)
		}
	}
	// Second fill reuses the same job structs — no new allocations.
	ptrs := map[*job.Job]bool{}
	for _, j := range first {
		ptrs[j] = true
	}
	second := tr.SampleQueueInto(rng1, buf)
	for i, j := range second {
		if !ptrs[j] {
			t.Fatalf("fill %d allocated a new job struct", i)
		}
	}
}

func TestConcatShiftsRegimes(t *testing.T) {
	mk := func(name string, procs int, submits []float64) *Trace {
		tr := &Trace{Name: name, Processors: procs}
		for i, s := range submits {
			tr.Jobs = append(tr.Jobs, job.New(i+1, s, 60, 1, 60))
		}
		return tr
	}
	a := mk("a", 128, []float64{100, 110, 120}) // mean interarrival 10
	b := mk("b", 256, []float64{0, 50})

	c := Concat("shift", a, b)
	if c.Processors != 256 {
		t.Fatalf("processors = %d, want max(128,256)", c.Processors)
	}
	if c.Len() != 5 {
		t.Fatalf("jobs = %d, want 5", c.Len())
	}
	want := []float64{0, 10, 20, 30, 80} // a rebased to 0; b starts span+gap = 20+10
	for i, w := range want {
		if got := c.Jobs[i].SubmitTime; got != w {
			t.Fatalf("job %d submit = %g, want %g", i, got, w)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Parts reuse the ID range 1..n; the concat must renumber so no two
	// stream jobs collide in a simulator's allocation table.
	seen := map[int]bool{}
	for _, j := range c.Jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job ID %d in concatenated stream", j.ID)
		}
		seen[j.ID] = true
	}
	// Clones: mutating the concat must not touch the parts.
	c.Jobs[0].StartTime = 5
	if a.Jobs[0].Started() {
		t.Fatal("Concat must clone jobs")
	}
	if empty := Concat("none"); empty.Len() != 0 {
		t.Fatal("empty concat must be empty")
	}
}
