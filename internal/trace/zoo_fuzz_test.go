package trace

import (
	"bytes"
	"testing"
)

// FuzzZooSWF hardens the trace-level SWF loader (LoadSWF → ParseSWF →
// Validate) against arbitrary input: it must never panic, every accepted
// trace must validate and summarize, and one write/load cycle must reach a
// fixed point — re-writing what a load produced and loading it again loses
// nothing. (The FIRST write may round fractional fields to unusable values
// — %.0f turns a 0.4-second runtime into 0 — so the fixed point is
// asserted from the first re-load onward.) Seeds cover genuine archive
// header directives and the ChaosSWF hostile stream; the corpus under
// testdata/fuzz is checked in, and CI runs this target as a short smoke.
func FuzzZooSWF(f *testing.F) {
	seeds := [][]byte{
		[]byte("; Version: 2.2\n; Computer: IBM SP2\n; MaxJobs: 73496\n; MaxNodes: 128\n; MaxProcs: 128\n; UnixStartTime: 893683200\n1 0 10 3600 4 -1 -1 4 7200 -1 1 3 1 2 1 1 -1 -1\n"),
		[]byte("; MaxNodes: 64\n1 0 -1 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n"),
		[]byte("; MaxProcs: not-a-number\n; UnixStartTime: -9e9\n1 0 -1 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n"),
		[]byte("1 0 -1 60 200 -1 -1 200 60 -1 1 0 0 0 1 1 -1 -1\n"), // job wider than any header
		ChaosSWF(1, 40),
		ChaosSWF(2, 40),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := LoadSWF("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted trace fails validation: %v", verr)
		}
		st := tr.ComputeStats()
		if st.Jobs != tr.Len() {
			t.Fatalf("stats job count %d != trace %d", st.Jobs, tr.Len())
		}
		var buf bytes.Buffer
		if werr := tr.WriteSWF(&buf); werr != nil {
			t.Fatalf("write of loaded trace failed: %v", werr)
		}
		again, err := LoadSWF("fuzz-again", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-load of written output failed: %v\noutput:\n%s", err, buf.Bytes())
		}
		if again.Processors != tr.Processors {
			t.Fatalf("processors drifted across write/load: %d became %d",
				tr.Processors, again.Processors)
		}
		var buf2 bytes.Buffer
		if werr := again.WriteSWF(&buf2); werr != nil {
			t.Fatalf("second write failed: %v", werr)
		}
		final, err := LoadSWF("fuzz-final", bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatalf("second re-load failed: %v", err)
		}
		if final.Len() != again.Len() {
			t.Fatalf("write/load not a fixed point: %d jobs became %d", again.Len(), final.Len())
		}
		for i := range final.Jobs {
			if final.Jobs[i].ID != again.Jobs[i].ID ||
				final.Jobs[i].RequestedProcs != again.Jobs[i].RequestedProcs ||
				final.Jobs[i].UserID != again.Jobs[i].UserID {
				t.Fatalf("job %d drifted across the fixed point: %+v vs %+v",
					i, again.Jobs[i], final.Jobs[i])
			}
		}
	})
}
