package trace

import (
	"math"
	"math/rand"
	"testing"
)

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {4.2, 220}, {9, 0.5},
	} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, tc.shape, tc.scale)
		}
		mean := sum / float64(n)
		want := tc.shape * tc.scale
		if rel := math.Abs(mean-want) / want; rel > 0.08 {
			t.Errorf("gamma(%g,%g) mean = %g, want %g", tc.shape, tc.scale, mean, want)
		}
	}
	if gammaSample(rand.New(rand.NewSource(1)), 0, 1) != 0 {
		t.Error("gamma with zero shape must be 0")
	}
}

func TestExpAndLogNormalMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 30000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += expSample(rng, 500)
	}
	if m := sum / float64(n); math.Abs(m-500)/500 > 0.05 {
		t.Errorf("exp mean = %g, want 500", m)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += logNormalSample(rng, 1000, 1.5)
	}
	if m := sum / float64(n); math.Abs(m-1000)/1000 > 0.25 {
		t.Errorf("lognormal mean = %g, want ≈1000", m)
	}
	if expSample(rng, 0) != 0 || logNormalSample(rng, 0, 1) != 0 {
		t.Error("non-positive means must yield 0")
	}
}

func TestPow2Picker(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, target := range []float64{2, 6, 11, 39, 5063} {
		maxP := 128
		if target > 100 {
			maxP = 163840
		}
		p := newPow2Picker(maxP, target, 0)
		sum := 0.0
		n := 20000
		for i := 0; i < n; i++ {
			s := p.sample(rng)
			if s < 1 || s > maxP {
				t.Fatalf("sample %d out of [1,%d]", s, maxP)
			}
			if s&(s-1) != 0 {
				t.Fatalf("sample %d not a power of two", s)
			}
			sum += float64(s)
		}
		mean := sum / float64(n)
		if rel := math.Abs(mean-target) / target; rel > 0.35 {
			t.Errorf("pow2 mean = %.1f, want ≈%g", mean, target)
		}
	}
}

func TestPow2PickerSerialProb(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := newPow2Picker(64, 16, 0.5)
	ones := 0
	n := 10000
	for i := 0; i < n; i++ {
		if p.sample(rng) == 1 {
			ones++
		}
	}
	if frac := float64(ones) / float64(n); frac < 0.45 {
		t.Errorf("serial fraction = %.2f, want >= 0.45", frac)
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(10, 1.2)
	sum := 0.0
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Error("zipf weights must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("zipf weights sum = %g, want 1", sum)
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	w := []float64{0.7, 0.2, 0.1}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[weightedPick(rng, w)]++
	}
	for i, want := range w {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("pick[%d] freq = %.3f, want %.1f", i, got, want)
		}
	}
}

func TestHyperGammaMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	// p=1: always component 1; p=0: always component 2.
	n := 5000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += hyperGamma(rng, 1, 2, 10, 100, 100)
	}
	if m := sum / float64(n); math.Abs(m-20)/20 > 0.1 {
		t.Errorf("hyperGamma(p=1) mean = %g, want 20", m)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += hyperGamma(rng, 0, 2, 10, 100, 100)
	}
	if m := sum / float64(n); math.Abs(m-10000)/10000 > 0.1 {
		t.Errorf("hyperGamma(p=0) mean = %g, want 10000", m)
	}
}

func TestLublinGeneratorTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := DefaultLublin(256, 3000)
	cfg.TargetMeanInterarrival = 771
	cfg.TargetMeanRuntime = 4862
	tr := GenerateLublin(cfg, rng)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := tr.ComputeStats()
	if rel := math.Abs(s.MeanRunTime-4862) / 4862; rel > 0.02 {
		t.Errorf("mean runtime = %.0f, want 4862 (rescaled exactly)", s.MeanRunTime)
	}
	if rel := math.Abs(s.MeanInterarrival-771) / 771; rel > 0.05 {
		t.Errorf("mean interarrival = %.0f, want ≈771", s.MeanInterarrival)
	}
	if s.Users == 0 {
		t.Error("default Lublin config should assign users")
	}
	for _, j := range tr.Jobs {
		if j.RequestedTime < j.RunTime {
			t.Fatal("estimates must be >= runtime with EstimateFactor > 1")
		}
	}
}

func TestLublinEmptyConfig(t *testing.T) {
	tr := GenerateLublin(LublinConfig{}, rand.New(rand.NewSource(1)))
	if tr.Len() != 0 {
		t.Error("empty config must give empty trace")
	}
}

func TestRescale(t *testing.T) {
	xs := []float64{1, 2, 3}
	rescale(xs, 4)
	if m := (xs[0] + xs[1] + xs[2]) / 3; math.Abs(m-4) > 1e-12 {
		t.Errorf("rescaled mean = %g, want 4", m)
	}
	ys := []float64{5}
	rescale(ys, 0) // no-op
	if ys[0] != 5 {
		t.Error("rescale with target 0 must be a no-op")
	}
	zs := []float64{0, 0}
	rescale(zs, 10) // zero mean: no-op, no NaN
	if zs[0] != 0 {
		t.Error("rescale of zeros must be a no-op")
	}
}
