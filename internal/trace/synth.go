package trace

import (
	"math/rand"

	"rlsched/internal/job"
)

// SynthConfig drives the generic synthetic trace generator used to stand in
// for the SWF-archive traces (see DESIGN.md §3). It reproduces the Table II
// characteristics — cluster size, mean inter-arrival, mean requested
// runtime, mean requested processors — plus the qualitative features the
// paper's experiments rely on: burstiness (Fig 3/7), runtime skew, and
// Zipf-distributed users (fairness, §V-F).
type SynthConfig struct {
	Name       string
	Processors int
	Jobs       int

	// MeanInterarrival is the target mean arrival interval (seconds).
	MeanInterarrival float64
	// Burstiness selects the arrival process: 0 = Poisson; larger values
	// produce on/off bursts. With burstiness b, a fraction of jobs arrive
	// in tight bursts (inter-arrival ~ mean/(10*b)) separated by long
	// gaps, keeping the overall mean at MeanInterarrival.
	Burstiness float64
	// BurstLen is the mean number of jobs per burst when bursty.
	BurstLen int

	// MeanRuntime is the target mean actual runtime (seconds);
	// RuntimeSigma is the lognormal log-space spread (≈1 for moderate
	// skew, ≥2 for the heavy tail that makes PIK-IPLEX hard).
	MeanRuntime  float64
	RuntimeSigma float64

	// MeanProcs is the target mean requested processors; SerialProb puts
	// extra mass on 1-processor jobs.
	MeanProcs  float64
	SerialProb float64

	// EstimateFactor inflates runtime into the user estimate.
	EstimateFactor float64

	// Users > 0 assigns Zipf(UserSkew) user IDs. DominantUserWeight > 0
	// gives rank-0 that extra share (HPC2N's u17-style heavy user).
	Users              int
	UserSkew           float64
	DominantUserWeight float64

	// WideProb is the per-job probability of a near-full-machine long
	// job (50–95% of the cluster, runtime inflated by WideRuntimeMult,
	// default 8). Real traces contain these rare monsters; they are what
	// turns an occasional window into the catastrophic bounded-slowdown
	// spikes of Fig 3 — everything queues behind them.
	WideProb        float64
	WideRuntimeMult float64
}

// GenerateSynth synthesizes a trace from the config.
func GenerateSynth(cfg SynthConfig, rng *rand.Rand) *Trace {
	tr := &Trace{Name: cfg.Name, Processors: cfg.Processors}
	if cfg.Jobs <= 0 || cfg.Processors <= 0 {
		return tr
	}
	picker := newPow2Picker(cfg.Processors, cfg.MeanProcs, cfg.SerialProb)

	var userW []float64
	if cfg.Users > 0 {
		userW = zipfWeights(cfg.Users, cfg.UserSkew)
		if cfg.DominantUserWeight > 0 {
			for i := range userW {
				userW[i] *= 1 - cfg.DominantUserWeight
			}
			userW[0] += cfg.DominantUserWeight
		}
	}

	inter := make([]float64, cfg.Jobs)
	if cfg.Burstiness <= 0 {
		for i := range inter {
			inter[i] = expSample(rng, cfg.MeanInterarrival)
		}
	} else {
		// On/off arrivals: bursts of ~BurstLen jobs with tiny gaps,
		// separated by long idle gaps; rescaled to the target mean.
		burstLen := cfg.BurstLen
		if burstLen <= 1 {
			burstLen = 8
		}
		tight := cfg.MeanInterarrival / (10 * cfg.Burstiness)
		inBurst := 0
		for i := range inter {
			if inBurst <= 0 {
				inter[i] = expSample(rng, cfg.MeanInterarrival*float64(burstLen))
				inBurst = 1 + rng.Intn(2*burstLen)
			} else {
				inter[i] = expSample(rng, tight)
			}
			inBurst--
		}
		rescale(inter, cfg.MeanInterarrival)
	}

	ef := cfg.EstimateFactor
	if ef < 1 {
		ef = 1.5
	}
	sigma := cfg.RuntimeSigma
	if sigma <= 0 {
		sigma = 1
	}

	wideMult := cfg.WideRuntimeMult
	if wideMult <= 0 {
		wideMult = 8
	}

	jobs := make([]*job.Job, cfg.Jobs)
	t := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		t += inter[i]
		rt := logNormalSample(rng, cfg.MeanRuntime, sigma)
		if rt < 1 {
			rt = 1
		}
		procs := picker.sample(rng)
		if cfg.WideProb > 0 && rng.Float64() < cfg.WideProb {
			procs = int(float64(cfg.Processors) * (0.5 + 0.45*rng.Float64()))
			rt = logNormalSample(rng, cfg.MeanRuntime*wideMult, 1)
		}
		est := rt * (1 + rng.Float64()*(ef-1)*2)
		j := job.New(i+1, t, rt, procs, est)
		if cfg.Users > 0 {
			j.UserID = weightedPick(rng, userW)
			j.GroupID = j.UserID % 4
			j.Executable = j.UserID*2 + rng.Intn(2)
		}
		j.QueueID = 1
		j.PartitionID = 1
		jobs[i] = j
	}
	tr.Jobs = jobs
	return tr
}
