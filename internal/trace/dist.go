package trace

import (
	"math"
	"math/rand"
)

// Sampling primitives shared by the synthetic workload generators. All take
// an explicit *rand.Rand so traces are reproducible from a seed.

// expSample draws from an exponential distribution with the given mean.
func expSample(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// gammaSample draws from a Gamma(shape, scale) distribution using the
// Marsaglia–Tsang method (with Johnk-style boosting for shape < 1).
func gammaSample(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// logNormalSample draws from a lognormal distribution with the given
// arithmetic mean and log-space standard deviation sigma.
func logNormalSample(rng *rand.Rand, mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// hyperGamma draws from a two-component gamma mixture: with probability p
// the (a1, b1) component, otherwise (a2, b2).
func hyperGamma(rng *rand.Rand, p, a1, b1, a2, b2 float64) float64 {
	if rng.Float64() < p {
		return gammaSample(rng, a1, b1)
	}
	return gammaSample(rng, a2, b2)
}

// pow2Sizes lists the powers of two <= maxProcs (always at least {1}).
func pow2Sizes(maxProcs int) []int {
	var out []int
	for p := 1; p <= maxProcs; p *= 2 {
		out = append(out, p)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// pow2Picker samples job sizes from the powers of two <= maxProcs with
// geometric weights q^k tuned so the distribution mean approximates
// targetMean. It captures the power-of-two emphasis of real HPC traces.
type pow2Picker struct {
	sizes  []int
	cumul  []float64
	serial float64 // extra probability mass on size 1
}

// newPow2Picker solves for the geometric weight by bisection on q.
func newPow2Picker(maxProcs int, targetMean, serialProb float64) *pow2Picker {
	sizes := pow2Sizes(maxProcs)
	meanFor := func(q float64) float64 {
		var wsum, m float64
		w := 1.0
		for _, s := range sizes {
			wsum += w
			m += w * float64(s)
			w *= q
		}
		return m / wsum
	}
	lo, hi := 1e-6, 8.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if meanFor(mid) < targetMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := (lo + hi) / 2
	p := &pow2Picker{sizes: sizes, serial: serialProb}
	w, sum := 1.0, 0.0
	for range sizes {
		sum += w
		w *= q
	}
	w = 1.0
	acc := 0.0
	for range sizes {
		acc += w / sum
		p.cumul = append(p.cumul, acc)
		w *= q
	}
	return p
}

func (p *pow2Picker) sample(rng *rand.Rand) int {
	if p.serial > 0 && rng.Float64() < p.serial {
		return 1
	}
	u := rng.Float64()
	for i, c := range p.cumul {
		if u <= c {
			return p.sizes[i]
		}
	}
	return p.sizes[len(p.sizes)-1]
}

// zipfWeights returns normalized Zipf(s) weights for n ranks.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// weightedPick samples an index from normalized weights.
func weightedPick(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}

// clampInt bounds v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
