package sim

import (
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/trace"
)

// fcfsPick always selects slot 0 (the queue is FCFS-ordered).
type fcfsPick struct{}

func (fcfsPick) Pick(v []*job.Job, _ float64, _ ClusterView) int { return 0 }

// sjfPick selects the shortest requested runtime.
type sjfPick struct{}

func (sjfPick) Pick(v []*job.Job, _ float64, _ ClusterView) int {
	best := 0
	for i, j := range v {
		if j.RequestedTime < v[best].RequestedTime {
			best = i
		}
	}
	return best
}

func seq(jobs ...*job.Job) []*job.Job { return jobs }

func TestRunSerialJobs(t *testing.T) {
	// Two 1-proc jobs on a 1-proc machine, both submitted at 0.
	s := New(Config{Processors: 1})
	j1 := job.New(1, 0, 100, 1, 100)
	j2 := job.New(2, 0, 100, 1, 100)
	if err := s.Load(seq(j1, j2)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(fcfsPick{})
	if err != nil {
		t.Fatal(err)
	}
	if j1.StartTime != 0 || j1.EndTime != 100 {
		t.Errorf("j1 ran [%g,%g], want [0,100]", j1.StartTime, j1.EndTime)
	}
	if j2.StartTime != 100 || j2.EndTime != 200 {
		t.Errorf("j2 ran [%g,%g], want [100,200]", j2.StartTime, j2.EndTime)
	}
	if res.Utilization != 1 {
		t.Errorf("util = %g, want 1 (machine never idle)", res.Utilization)
	}
	if got := metrics.Value(metrics.WaitTime, res); got != 50 {
		t.Errorf("avg wait = %g, want 50", got)
	}
}

func TestParallelPacking(t *testing.T) {
	// 4-proc machine: a 2-proc and a 2-proc job run together.
	s := New(Config{Processors: 4})
	j1 := job.New(1, 0, 100, 2, 100)
	j2 := job.New(2, 0, 100, 2, 100)
	if err := s.Load(seq(j1, j2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j1.StartTime != 0 || j2.StartTime != 0 {
		t.Errorf("both jobs must start at 0: %g, %g", j1.StartTime, j2.StartTime)
	}
}

func TestArrivalGating(t *testing.T) {
	// Second job arrives at t=500; the idle machine must wait for it.
	s := New(Config{Processors: 1})
	j1 := job.New(1, 0, 100, 1, 100)
	j2 := job.New(2, 500, 100, 1, 100)
	if err := s.Load(seq(j1, j2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j2.StartTime != 500 {
		t.Errorf("j2 start = %g, want 500 (arrival gated)", j2.StartTime)
	}
}

func TestNoBackfillBlocksQueue(t *testing.T) {
	// 4-proc machine. Running: j1 (4 procs, 100s). Queue: j2 wants 4
	// procs (blocked), j3 wants 1 proc for 10s. FCFS picks j2; without
	// backfilling j3 must NOT jump ahead even though it fits trivially.
	s := New(Config{Processors: 4, Backfill: false})
	j1 := job.New(1, 0, 100, 4, 100)
	j2 := job.New(2, 1, 100, 4, 100)
	j3 := job.New(3, 2, 10, 1, 10)
	if err := s.Load(seq(j1, j2, j3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %g, want 100", j2.StartTime)
	}
	if j3.StartTime < 200 {
		t.Errorf("j3 start = %g, want >= 200 (no backfill)", j3.StartTime)
	}
}

func TestBackfillFillsHole(t *testing.T) {
	// With backfilling: j1 holds 3 of 4 procs until t=100; j2 (4 procs)
	// is blocked with its reservation at t=100; j3 (10s, 1 proc) fits the
	// idle proc and ends before the shadow time, so it backfills.
	s := New(Config{Processors: 4, Backfill: true})
	j1 := job.New(1, 0, 100, 3, 100)
	j2 := job.New(2, 1, 100, 4, 100)
	j3 := job.New(3, 2, 10, 1, 10)
	if err := s.Load(seq(j1, j2, j3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j3.StartTime >= 100 {
		t.Errorf("j3 start = %g, want < 100 (backfilled)", j3.StartTime)
	}
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %g, want exactly 100 — backfill must not delay the reserved job", j2.StartTime)
	}
}

func TestBackfillRespectsReservation(t *testing.T) {
	// j3 is small but LONG (runs past the shadow time) and doesn't fit in
	// the extra processors; it must not delay j2's reservation.
	// Machine: 4 procs. j1 uses 3 procs until t=100. j2 wants 2 procs
	// (shadow t=100, extra = (1+3)-2 = 2). j3 wants 1 proc for 1000s:
	// 1 <= extra(2) -> may backfill into the extra nodes. j4 wants 3
	// procs for 1000s: doesn't fit extra and too long -> must wait.
	s := New(Config{Processors: 4, Backfill: true})
	j1 := job.New(1, 0, 100, 3, 100)
	j2 := job.New(2, 1, 50, 2, 50)
	j3 := job.New(3, 2, 1000, 1, 1000)
	j4 := job.New(4, 3, 1000, 3, 1000)
	if err := s.Load(seq(j1, j2, j3, j4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %g, want 100 (reservation held)", j2.StartTime)
	}
	if j3.StartTime >= 100 {
		t.Errorf("j3 start = %g, want < 100 (fits extra nodes)", j3.StartTime)
	}
	if j4.StartTime < j2.StartTime {
		t.Errorf("j4 start = %g, must not pass the reserved j2", j4.StartTime)
	}
}

func TestLoadRejectsBadSequences(t *testing.T) {
	s := New(Config{Processors: 2})
	big := job.New(1, 0, 10, 8, 10)
	if err := s.Load(seq(big)); err == nil {
		t.Error("oversized job must be rejected")
	}
	a := job.New(1, 100, 10, 1, 10)
	b := job.New(2, 50, 10, 1, 10)
	if err := s.Load(seq(a, b)); err == nil {
		t.Error("out-of-order sequence must be rejected")
	}
	bad := job.New(3, 0, -5, 1, 10)
	if err := s.Load(seq(bad)); err == nil {
		t.Error("invalid job must be rejected")
	}
	if _, err := s.Run(fcfsPick{}); err == nil {
		t.Error("Run without a loaded sequence must error")
	}
}

func TestOutOfRangePickFallsBack(t *testing.T) {
	s := New(Config{Processors: 1})
	j1 := job.New(1, 0, 10, 1, 10)
	if err := s.Load(seq(j1)); err != nil {
		t.Fatal(err)
	}
	bad := &Priority{pick: 999}
	if _, err := s.Run(bad); err != nil {
		t.Fatal(err)
	}
	if !j1.Started() {
		t.Error("job must still run when the scheduler misbehaves")
	}
}

// Priority is a test scheduler returning a fixed (possibly invalid) index.
type Priority struct{ pick int }

func (p *Priority) Pick(v []*job.Job, _ float64, _ ClusterView) int { return p.pick }

func TestMaxObserveCutoff(t *testing.T) {
	s := New(Config{Processors: 1, MaxObserve: 2})
	var jobs []*job.Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, job.New(i+1, 0, 10, 1, 10))
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	s.advanceToNextEvent()
	if got := len(s.Visible()); got != 2 {
		t.Errorf("visible = %d, want MaxObserve=2", got)
	}
	if s.PendingCount() != 5 {
		t.Errorf("pending = %d, want 5", s.PendingCount())
	}
}

func TestSJFBeatsFCFSOnBsld(t *testing.T) {
	// A long job ahead of many short jobs: SJF's bsld must beat FCFS.
	tr := trace.Preset("Lublin-2", 400, 21)
	run := func(s Scheduler) float64 {
		sm := New(Config{Processors: tr.Processors})
		if err := sm.Load(tr.Window(0, 400)); err != nil {
			t.Fatal(err)
		}
		res, err := sm.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Value(metrics.BoundedSlowdown, res)
	}
	f := run(fcfsPick{})
	sj := run(sjfPick{})
	if sj >= f {
		t.Errorf("SJF bsld %.1f must beat FCFS %.1f on a loaded queue", sj, f)
	}
}

func TestSimInvariantsUnderRandomScheduling(t *testing.T) {
	tr := trace.Preset("Lublin-1", 300, 33)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		for _, bf := range []bool{false, true} {
			s := New(Config{Processors: tr.Processors, Backfill: bf})
			if err := s.Load(tr.SampleWindow(rng, 150)); err != nil {
				t.Fatal(err)
			}
			for !s.Done() {
				if s.PendingCount() == 0 {
					if !s.advanceToNextEvent() {
						break
					}
					continue
				}
				v := s.Visible()
				s.Schedule(v[rng.Intn(len(v))])
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("backfill=%v: %v", bf, err)
				}
			}
			for s.advanceToNextEvent() {
			}
			res := s.result()
			for _, j := range res.Jobs {
				if !j.Started() {
					t.Fatalf("job %d never started", j.ID)
				}
				if j.StartTime < j.SubmitTime {
					t.Fatalf("job %d started before submit", j.ID)
				}
			}
			if res.Utilization <= 0 || res.Utilization > 1 {
				t.Fatalf("utilization %g out of (0,1]", res.Utilization)
			}
		}
	}
}

func TestBackfillNeverWorseForMakespan(t *testing.T) {
	// Backfilling can only add earlier starts under FCFS picking; the
	// last completion must not be later than without backfilling.
	tr := trace.Preset("SDSC-SP2", 300, 11)
	end := func(bf bool) float64 {
		s := New(Config{Processors: tr.Processors, Backfill: bf})
		if err := s.Load(tr.Window(0, 300)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(fcfsPick{}); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if withBF, without := end(true), end(false); withBF > without+1e-6 {
		t.Errorf("backfill makespan %.0f > plain %.0f", withBF, without)
	}
}
