package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/obs"
)

// This file is the incremental stepping surface of the simulator, used by
// the fleet placement layer (internal/fleet) to time-synchronize many
// member clusters against one global arrival stream. A member is driven
// externally: jobs arrive via Submit at the moment a placement decision
// routes them, the clock advances event-by-event via NextEventTime +
// AdvanceClock, and scheduling decisions are applied through CanStartNow /
// StartNow / BackfillNow. Driven this way, a single cluster reproduces
// Run's scheduling semantics exactly (asserted by a parity test in
// internal/fleet): the primitives below are the same code paths Schedule
// uses, only with the time advance hoisted out to the caller.

// Submit injects an arriving job at the current clock: it joins the
// sequence history and the pending queue immediately. Submit is the
// arrival path of incrementally driven simulators and cannot be mixed with
// preloaded future arrivals (Load a full sequence OR Submit jobs one by
// one). The job's SubmitTime must not lie in the future — advance the
// clock to the arrival instant first.
//
// The pending queue stays in FCFS order keyed by (SubmitTime, ID). Fresh
// arrivals append (nothing already queued was submitted later), so
// incrementally driven runs schedule exactly like Load-driven ones; a
// *re*-submitted job (Withdraw on one cluster, Submit on another — the
// migration path) regains the queue position its original arrival time
// entitles it to instead of being demoted to the back. That ordering is
// what makes withdraw-then-resubmit-to-the-same-cluster a no-op on
// results, and why migrated jobs keep their original arrival time in
// metrics: waits are measured from true submission wherever the job runs.
func (s *Simulator) Submit(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.RequestedProcs > s.cfg.Processors {
		return fmt.Errorf("sim: job %d requests %d > %d procs",
			j.ID, j.RequestedProcs, s.cfg.Processors)
	}
	if s.arrivalIdx != len(s.seq) {
		return fmt.Errorf("sim: cannot Submit while %d preloaded arrivals are pending",
			len(s.seq)-s.arrivalIdx)
	}
	if j.SubmitTime > s.now {
		return fmt.Errorf("sim: job %d submitted in the future (%g > clock %g)",
			j.ID, j.SubmitTime, s.now)
	}
	if s.userProcs == nil {
		s.userProcs = map[int]int{}
	}
	j.Reset()
	// Both the sequence history and the pending queue keep (SubmitTime,
	// ID) order — the history so that metric summation order (and thus
	// floating-point results) is independent of withdraw/resubmit probes,
	// the queue for FCFS semantics. Walking back from the tail makes a
	// fresh arrival a plain append.
	insertOrdered(&s.seq, j)
	s.arrivalIdx = len(s.seq)
	insertOrdered(&s.pending, j)
	if s.rec != nil {
		s.recordJob(obs.JobSubmit, j)
	}
	return nil
}

// insertOrdered places j into the (SubmitTime, ID)-sorted slice.
func insertOrdered(s *[]*job.Job, j *job.Job) {
	q := *s
	idx := len(q)
	for idx > 0 {
		p := q[idx-1]
		if p.SubmitTime < j.SubmitTime ||
			(p.SubmitTime == j.SubmitTime && p.ID < j.ID) {
			break
		}
		idx--
	}
	q = append(q, nil)
	copy(q[idx+1:], q[idx:])
	q[idx] = j
	*s = q
}

// Withdraw removes a still-pending job from the simulator and returns it —
// the inverse of Submit, and the primitive cross-cluster migration
// (internal/fleet) is built from: withdraw from the source cluster,
// re-score, Submit to the destination. A job that has started (or already
// completed) cannot be withdrawn; neither can one the simulator never
// received. Withdraw-then-resubmit to the same cluster at the same instant
// restores the exact pre-withdraw schedule (Submit reinserts by original
// submit time), so an aborted migration is a provable no-op.
func (s *Simulator) Withdraw(id int) (*job.Job, error) {
	if s.arrivalIdx != len(s.seq) {
		return nil, fmt.Errorf("sim: cannot Withdraw while %d preloaded arrivals are pending",
			len(s.seq)-s.arrivalIdx)
	}
	for i, j := range s.pending {
		if j.ID != id {
			continue
		}
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		for k, q := range s.seq {
			if q == j {
				s.seq = append(s.seq[:k], s.seq[k+1:]...)
				break
			}
		}
		s.arrivalIdx = len(s.seq)
		if s.rec != nil {
			s.recordJob(obs.JobWithdraw, j)
		}
		return j, nil
	}
	return nil, fmt.Errorf("sim: job %d is not pending (never submitted, already started, or withdrawn)", id)
}

// PendingJobs returns the full arrived-but-unstarted queue in FCFS order
// (keyed by SubmitTime, then ID) — unlike Visible it is not capped by
// MaxObserve. The fleet's churn controller uses it to withdraw a draining
// or failed member's entire backlog, not just the scheduler-visible
// window. The returned slice aliases the simulator's queue: read it (or
// copy it) before calling anything that mutates the queue.
func (s *Simulator) PendingJobs() []*job.Job { return s.pending }

// EvictRunning forcibly terminates every running job at the current clock
// — the member-failure primitive of fleet churn. Each job's processors are
// released, its user's quota share is returned, it is removed from the
// sequence history (it did not complete here; the fleet resubmits it to a
// surviving member, where it re-enters that member's history with its
// original submit time), and its start state is reset so it can run again
// from scratch. The cluster's busy-time integral keeps the cycles burned
// before the eviction — the capacity genuinely was consumed. Evicted jobs
// are returned in (SubmitTime, ID) order so re-placement is deterministic;
// each one is recorded as a withdraw event when a recorder is attached.
func (s *Simulator) EvictRunning() []*job.Job {
	if len(s.running) == 0 {
		return nil
	}
	evicted := make([]*job.Job, 0, len(s.running))
	gone := make(map[*job.Job]bool, len(s.running))
	for len(s.running) > 0 {
		j := heap.Pop(&s.running).(*job.Job)
		if err := s.cluster.Release(j.ID); err != nil {
			panic(fmt.Sprintf("sim: evict release: %v", err))
		}
		if j.UserID >= 0 {
			s.userProcs[j.UserID] -= j.RequestedProcs
		}
		evicted = append(evicted, j)
		gone[j] = true
	}
	keep := s.seq[:0]
	for _, j := range s.seq {
		if !gone[j] {
			keep = append(keep, j)
		}
	}
	s.seq = keep
	s.arrivalIdx = len(s.seq)
	sort.Slice(evicted, func(i, k int) bool {
		a, b := evicted[i], evicted[k]
		return a.SubmitTime < b.SubmitTime ||
			(a.SubmitTime == b.SubmitTime && a.ID < b.ID)
	})
	for _, j := range evicted {
		j.Reset()
		if s.rec != nil {
			s.recordJob(obs.JobWithdraw, j)
		}
	}
	return evicted
}

// AdvanceClock moves the clock forward to t, completing jobs and admitting
// preloaded arrivals in event order. Times at or before the current clock
// are a no-op (the clock never runs backwards).
func (s *Simulator) AdvanceClock(t float64) {
	if t <= s.now {
		return
	}
	s.advanceTo(t)
}

// NextEventTime returns the time of the earliest internal event (a running
// job completing or a preloaded arrival), and whether one exists.
func (s *Simulator) NextEventTime() (float64, bool) {
	t := -1.0
	if len(s.running) > 0 {
		t = s.running[0].EndTime
	}
	if s.arrivalIdx < len(s.seq) {
		if at := s.seq[s.arrivalIdx].SubmitTime; t < 0 || at < t {
			t = at
		}
	}
	if t < 0 {
		return 0, false
	}
	return t, true
}

// CanStartNow reports whether the pending job could start at the current
// instant (free processors and, when quotas are active, quota headroom).
func (s *Simulator) CanStartNow(j *job.Job) bool { return s.canStart(j) }

// StartNow launches a pending job at the current clock. It is the caller's
// Schedule: the job must be pending and startable.
func (s *Simulator) StartNow(j *job.Job) error {
	if !s.canStart(j) {
		return fmt.Errorf("sim: job %d (%d procs) cannot start now (%d free)",
			j.ID, j.RequestedProcs, s.cluster.Free())
	}
	for _, p := range s.pending {
		if p == j {
			s.start(j)
			return nil
		}
	}
	return fmt.Errorf("sim: job %d is not pending", j.ID)
}

// BackfillNow runs one backfilling pass at the current instant around the
// committed job — exactly the pass Schedule runs per event while the
// chosen job waits. A no-op when backfilling is disabled.
func (s *Simulator) BackfillNow(chosen *job.Job) {
	if !s.cfg.Backfill {
		return
	}
	if s.cfg.Conservative {
		s.conservativeBackfill(chosen)
	} else {
		s.backfill(chosen)
	}
}

// Result snapshots the run's metrics at the current instant (final once no
// events remain).
func (s *Simulator) Result() metrics.Result { return s.result() }

// Completions returns the append-only log of jobs that have finished
// executing, in completion order, since the last Load. Incremental
// consumers (the fleet's stateful fairness plugin) keep their own cursor
// into it and read only the tail: the log never reorders or shrinks while
// a run is in progress, and a new Load starts it empty. The returned slice
// aliases the simulator's log — read, don't mutate.
func (s *Simulator) Completions() []*job.Job { return s.done }

// UtilizationOver reports the busy fraction over an explicit horizon —
// the hook for fleet-wide aggregation, where every member must be
// measured over the same [start, end] window rather than its own
// first-arrival-to-last-event span. Advance the clock to end first so the
// busy-time accounting covers the whole window.
func (s *Simulator) UtilizationOver(start, end float64) float64 {
	return s.cluster.Utilization(start, end)
}

// PendingWork returns the queued work area Σ requested_time·procs over the
// pending queue — the backlog pressure signal placement scorers consume.
func (s *Simulator) PendingWork() float64 {
	w := 0.0
	for _, j := range s.pending {
		w += j.RequestedTime * float64(j.RequestedProcs)
	}
	return w
}

// RunningWork returns the committed remaining work area
// Σ (end−now)·procs over running jobs, using the actual end times the
// simulator knows (schedulers never see them; the placement layer uses the
// aggregate the way a monitoring system would).
func (s *Simulator) RunningWork() float64 { return s.RunningWorkAt(s.now) }

// RunningWorkAt returns the remaining work area Σ (end−t)·procs over
// running jobs, evaluated at an explicit instant t instead of the
// simulator's own clock. The fleet's event-heap stepping uses it to
// refresh candidate state at the global clock without advancing members
// that have no events: as long as no running job ends at or before t
// (which would be an event waking the member), the value is identical to
// advancing the clock to t and calling RunningWork.
func (s *Simulator) RunningWorkAt(t float64) float64 {
	w := 0.0
	for _, j := range s.running {
		if rem := j.EndTime - t; rem > 0 {
			w += rem * float64(j.RequestedProcs)
		}
	}
	return w
}
