package sim

import (
	"fmt"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
)

// This file is the incremental stepping surface of the simulator, used by
// the fleet placement layer (internal/fleet) to time-synchronize many
// member clusters against one global arrival stream. A member is driven
// externally: jobs arrive via Submit at the moment a placement decision
// routes them, the clock advances event-by-event via NextEventTime +
// AdvanceClock, and scheduling decisions are applied through CanStartNow /
// StartNow / BackfillNow. Driven this way, a single cluster reproduces
// Run's scheduling semantics exactly (asserted by a parity test in
// internal/fleet): the primitives below are the same code paths Schedule
// uses, only with the time advance hoisted out to the caller.

// Submit injects an arriving job at the current clock: it joins the
// sequence history and the pending queue immediately. Submit is the
// arrival path of incrementally driven simulators and cannot be mixed with
// preloaded future arrivals (Load a full sequence OR Submit jobs one by
// one). The job's SubmitTime must not lie in the future — advance the
// clock to the arrival instant first.
func (s *Simulator) Submit(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.RequestedProcs > s.cfg.Processors {
		return fmt.Errorf("sim: job %d requests %d > %d procs",
			j.ID, j.RequestedProcs, s.cfg.Processors)
	}
	if s.arrivalIdx != len(s.seq) {
		return fmt.Errorf("sim: cannot Submit while %d preloaded arrivals are pending",
			len(s.seq)-s.arrivalIdx)
	}
	if j.SubmitTime > s.now {
		return fmt.Errorf("sim: job %d submitted in the future (%g > clock %g)",
			j.ID, j.SubmitTime, s.now)
	}
	if s.userProcs == nil {
		s.userProcs = map[int]int{}
	}
	j.Reset()
	s.seq = append(s.seq, j)
	s.arrivalIdx = len(s.seq)
	s.pending = append(s.pending, j)
	return nil
}

// AdvanceClock moves the clock forward to t, completing jobs and admitting
// preloaded arrivals in event order. Times at or before the current clock
// are a no-op (the clock never runs backwards).
func (s *Simulator) AdvanceClock(t float64) {
	if t <= s.now {
		return
	}
	s.advanceTo(t)
}

// NextEventTime returns the time of the earliest internal event (a running
// job completing or a preloaded arrival), and whether one exists.
func (s *Simulator) NextEventTime() (float64, bool) {
	t := -1.0
	if len(s.running) > 0 {
		t = s.running[0].EndTime
	}
	if s.arrivalIdx < len(s.seq) {
		if at := s.seq[s.arrivalIdx].SubmitTime; t < 0 || at < t {
			t = at
		}
	}
	if t < 0 {
		return 0, false
	}
	return t, true
}

// CanStartNow reports whether the pending job could start at the current
// instant (free processors and, when quotas are active, quota headroom).
func (s *Simulator) CanStartNow(j *job.Job) bool { return s.canStart(j) }

// StartNow launches a pending job at the current clock. It is the caller's
// Schedule: the job must be pending and startable.
func (s *Simulator) StartNow(j *job.Job) error {
	if !s.canStart(j) {
		return fmt.Errorf("sim: job %d (%d procs) cannot start now (%d free)",
			j.ID, j.RequestedProcs, s.cluster.Free())
	}
	for _, p := range s.pending {
		if p == j {
			s.start(j)
			return nil
		}
	}
	return fmt.Errorf("sim: job %d is not pending", j.ID)
}

// BackfillNow runs one backfilling pass at the current instant around the
// committed job — exactly the pass Schedule runs per event while the
// chosen job waits. A no-op when backfilling is disabled.
func (s *Simulator) BackfillNow(chosen *job.Job) {
	if !s.cfg.Backfill {
		return
	}
	if s.cfg.Conservative {
		s.conservativeBackfill(chosen)
	} else {
		s.backfill(chosen)
	}
}

// Result snapshots the run's metrics at the current instant (final once no
// events remain).
func (s *Simulator) Result() metrics.Result { return s.result() }

// UtilizationOver reports the busy fraction over an explicit horizon —
// the hook for fleet-wide aggregation, where every member must be
// measured over the same [start, end] window rather than its own
// first-arrival-to-last-event span. Advance the clock to end first so the
// busy-time accounting covers the whole window.
func (s *Simulator) UtilizationOver(start, end float64) float64 {
	return s.cluster.Utilization(start, end)
}

// PendingWork returns the queued work area Σ requested_time·procs over the
// pending queue — the backlog pressure signal placement scorers consume.
func (s *Simulator) PendingWork() float64 {
	w := 0.0
	for _, j := range s.pending {
		w += j.RequestedTime * float64(j.RequestedProcs)
	}
	return w
}

// RunningWork returns the committed remaining work area
// Σ (end−now)·procs over running jobs, using the actual end times the
// simulator knows (schedulers never see them; the placement layer uses the
// aggregate the way a monitoring system would).
func (s *Simulator) RunningWork() float64 {
	w := 0.0
	for _, j := range s.running {
		if rem := j.EndTime - s.now; rem > 0 {
			w += rem * float64(j.RequestedProcs)
		}
	}
	return w
}
