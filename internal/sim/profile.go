package sim

import (
	"sort"

	"rlsched/internal/job"
)

// profile is a piecewise-constant availability timeline: free processors
// from each step time until the next. It backs conservative backfilling,
// where every queued job holds a reservation and a candidate may only
// start if it disturbs none of them.
type profile struct {
	times []float64 // strictly increasing step boundaries
	free  []int     // free[i] holds on [times[i], times[i+1])
}

// newProfile builds the availability timeline from the currently running
// jobs (which free their processors at EndTime), starting at time now with
// freeNow processors idle.
func newProfile(now float64, freeNow int, running []*job.Job) *profile {
	p := &profile{times: []float64{now}, free: []int{freeNow}}
	ends := append([]*job.Job(nil), running...)
	sort.Slice(ends, func(i, j int) bool { return ends[i].EndTime < ends[j].EndTime })
	for _, j := range ends {
		t := j.EndTime
		if t < now {
			t = now
		}
		p.release(t, j.RequestedProcs)
	}
	return p
}

// release adds procs back to the profile from time t onward.
func (p *profile) release(t float64, procs int) {
	i := p.stepAt(t)
	if p.times[i] != t {
		// Split the step.
		p.times = append(p.times, 0)
		p.free = append(p.free, 0)
		copy(p.times[i+2:], p.times[i+1:])
		copy(p.free[i+2:], p.free[i+1:])
		p.times[i+1] = t
		p.free[i+1] = p.free[i]
		i++
	}
	for ; i < len(p.free); i++ {
		p.free[i] += procs
	}
}

// reserve subtracts procs on [start, start+duration).
func (p *profile) reserve(start, duration float64, procs int) {
	p.splitAt(start)
	p.splitAt(start + duration)
	for i := range p.times {
		if p.times[i] >= start && p.times[i] < start+duration {
			p.free[i] -= procs
		}
	}
}

// splitAt inserts a step boundary at t (no-op when present or before t0).
func (p *profile) splitAt(t float64) {
	if t <= p.times[0] {
		return
	}
	i := p.stepAt(t)
	if p.times[i] == t {
		return
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.free[i+2:], p.free[i+1:])
	p.times[i+1] = t
	p.free[i+1] = p.free[i]
}

// stepAt returns the index of the step containing time t (last step whose
// start is <= t).
func (p *profile) stepAt(t float64) int {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// earliest returns the first time >= from at which procs processors stay
// free for duration seconds. For a piecewise-constant profile the earliest
// feasible start is either `from` itself or a step boundary.
func (p *profile) earliest(from, duration float64, procs int) float64 {
	fits := func(start float64) bool {
		end := start + duration
		for j := p.stepAt(start); j < len(p.times); j++ {
			if p.times[j] >= end {
				break
			}
			if j+1 < len(p.times) && p.times[j+1] <= start {
				continue
			}
			if p.free[j] < procs {
				return false
			}
		}
		return true
	}
	if fits(from) {
		return from
	}
	for i := 0; i < len(p.times); i++ {
		if p.times[i] <= from {
			continue
		}
		if fits(p.times[i]) {
			return p.times[i]
		}
	}
	// Unreachable for valid requests: once everything drains, the final
	// step holds the whole machine.
	return p.times[len(p.times)-1]
}
