// Package sim implements SchedGym (§IV-D of the paper): an event-driven
// simulator of a homogeneous HPC platform consuming SWF-style job
// sequences. Starting from an idle cluster it replays arrivals, queries a
// Scheduler whenever a decision is needed, optionally backfills (EASY
// style), and measures the §II-A3 metrics. A Gym-flavoured Env wraps the
// simulator for reinforcement learning with fixed-size observations and
// action masking.
package sim

import (
	"container/heap"
	"fmt"

	"rlsched/internal/cluster"
	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/obs"
)

// DefaultMaxObserve is MAX_OBSV_SIZE in the paper: the scheduler sees at
// most this many pending jobs (the rest are cut off in FCFS order), the
// same order of magnitude Slurm uses for its pending-job window.
const DefaultMaxObserve = 128

// Config parameterizes a simulation run.
type Config struct {
	// Processors is the cluster size; it must match the trace.
	Processors int
	// Backfill enables backfilling while the selected job waits.
	Backfill bool
	// Conservative switches the backfilling discipline from EASY (only
	// the selected job holds a reservation) to conservative (every
	// pending job holds one, in FCFS order behind the selection). Only
	// meaningful with Backfill set; provided as an ablation of the
	// paper's backfilling substrate.
	Conservative bool
	// MaxObserve caps the scheduler-visible queue (default 128).
	MaxObserve int
	// UserQuota, when positive, caps the processors any single user may
	// hold concurrently. Scheduling decisions that would violate the
	// quota are treated like insufficient resources — for RL agents the
	// corresponding action slots are masked illegal (§V-F: "RLScheduler
	// can also work with quota-based fairness").
	UserQuota int
}

func (c Config) maxObserve() int {
	if c.MaxObserve <= 0 {
		return DefaultMaxObserve
	}
	return c.MaxObserve
}

// ClusterView is the resource information exposed to schedulers (the
// actual runtime of jobs is never exposed, only requests).
type ClusterView struct {
	FreeProcs  int
	TotalProcs int
}

// Scheduler selects the next job to run. Pick receives the visible pending
// queue in FCFS order (never empty), the current time, and the resource
// view, and returns the index of the chosen job. Out-of-range picks are
// treated as 0.
type Scheduler interface {
	Pick(visible []*job.Job, now float64, view ClusterView) int
}

// runHeap orders running jobs by completion time.
type runHeap []*job.Job

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].EndTime < h[j].EndTime }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*job.Job)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulator is a single-sequence SchedGym instance. Create one with New,
// Load a sequence, then either Run with a Scheduler or drive it step by
// step through Env.
type Simulator struct {
	cfg     Config
	cluster *cluster.Cluster

	seq        []*job.Job // the full sequence, submit-ordered
	arrivalIdx int        // next job to arrive
	pending    []*job.Job // arrived, not started (FCFS order)
	running    runHeap
	completed  int
	done       []*job.Job // append-only completion log, in completion order
	now        float64
	userProcs  map[int]int // processors currently held per user

	// rec receives job lifecycle events (nil = disabled); recName tags
	// them with the cluster's name. Both survive Load — a recorder watches
	// the simulator, not one sequence. jobEvt is the reused emission
	// buffer.
	rec     obs.Recorder
	recName string
	jobEvt  obs.JobEvent
}

// SetRecorder attaches an observability recorder (nil detaches): the
// simulator emits one cluster-tagged obs.JobEvent per lifecycle transition
// — submit (arrival into the queue, preloaded or via Submit), start,
// finish, and withdraw. Recording is passive and survives Load.
func (s *Simulator) SetRecorder(r obs.Recorder, cluster string) {
	s.rec = r
	s.recName = cluster
}

// recordJob emits one lifecycle event at the current clock. Callers guard
// on s.rec != nil so the untraced path pays a single branch.
func (s *Simulator) recordJob(kind obs.JobEventKind, j *job.Job) {
	s.jobEvt = obs.JobEvent{Kind: kind, Time: s.now, Cluster: s.recName, Job: obs.Ref(j)}
	s.rec.Job(&s.jobEvt)
}

// New returns a simulator for the config.
func New(cfg Config) *Simulator {
	if cfg.Processors <= 0 {
		panic("sim: config needs a positive processor count")
	}
	return &Simulator{cfg: cfg, cluster: cluster.New(cfg.Processors)}
}

// Load resets the simulator and installs a job sequence (clones are NOT
// taken; callers pass freshly cloned windows, e.g. trace.Window). The
// sequence must be submit-ordered and fit the cluster.
func (s *Simulator) Load(seq []*job.Job) error {
	prev := -1.0
	for i, j := range seq {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.SubmitTime < prev {
			return fmt.Errorf("sim: job %d out of submit order", i)
		}
		prev = j.SubmitTime
		if j.RequestedProcs > s.cfg.Processors {
			return fmt.Errorf("sim: job %d requests %d > %d procs",
				i, j.RequestedProcs, s.cfg.Processors)
		}
		j.Reset()
	}
	s.seq = seq
	s.arrivalIdx = 0
	s.pending = s.pending[:0]
	s.running = s.running[:0]
	s.completed = 0
	s.done = s.done[:0]
	s.now = 0
	s.userProcs = map[int]int{}
	s.cluster.Reset()
	return nil
}

// QuotaOK reports whether starting j now would respect the per-user quota.
// A job larger than the quota itself is admitted only while its user holds
// nothing (it could otherwise never run).
func (s *Simulator) QuotaOK(j *job.Job) bool {
	if s.cfg.UserQuota <= 0 || j.UserID < 0 {
		return true
	}
	if j.RequestedProcs > s.cfg.UserQuota {
		return s.userProcs[j.UserID] == 0
	}
	return s.userProcs[j.UserID]+j.RequestedProcs <= s.cfg.UserQuota
}

// canStart combines resource availability and quota.
func (s *Simulator) canStart(j *job.Job) bool {
	return s.cluster.CanAllocate(j.RequestedProcs) && s.QuotaOK(j)
}

// Done reports whether every loaded job has completed.
func (s *Simulator) Done() bool { return s.completed == len(s.seq) }

// Now returns the simulation clock.
func (s *Simulator) Now() float64 { return s.now }

// View returns the scheduler-visible resource state.
func (s *Simulator) View() ClusterView {
	return ClusterView{FreeProcs: s.cluster.Free(), TotalProcs: s.cluster.Total()}
}

// Visible returns the scheduler-visible window of the pending queue.
func (s *Simulator) Visible() []*job.Job {
	n := s.cfg.maxObserve()
	if n > len(s.pending) {
		n = len(s.pending)
	}
	return s.pending[:n]
}

// PendingCount returns the number of arrived, unstarted jobs.
func (s *Simulator) PendingCount() int { return len(s.pending) }

// advanceTo moves the clock to t, completing jobs and admitting arrivals in
// event order.
func (s *Simulator) advanceTo(t float64) {
	for {
		nextEvent := t
		kind := 0 // 0 = stop at t
		if len(s.running) > 0 && s.running[0].EndTime <= nextEvent {
			nextEvent = s.running[0].EndTime
			kind = 1
		}
		if s.arrivalIdx < len(s.seq) && s.seq[s.arrivalIdx].SubmitTime <= nextEvent {
			// Arrivals at the same instant as completions are
			// processed after them (completion frees resources the
			// arrival may use); strict earlier arrivals first.
			if kind == 0 || s.seq[s.arrivalIdx].SubmitTime < nextEvent {
				nextEvent = s.seq[s.arrivalIdx].SubmitTime
				kind = 2
			}
		}
		s.cluster.AdvanceTo(nextEvent)
		s.now = nextEvent
		switch kind {
		case 0:
			return
		case 1:
			j := heap.Pop(&s.running).(*job.Job)
			if err := s.cluster.Release(j.ID); err != nil {
				panic(fmt.Sprintf("sim: release: %v", err))
			}
			if j.UserID >= 0 {
				s.userProcs[j.UserID] -= j.RequestedProcs
			}
			s.completed++
			s.done = append(s.done, j)
			if s.rec != nil {
				s.recordJob(obs.JobFinish, j)
			}
		case 2:
			s.pending = append(s.pending, s.seq[s.arrivalIdx])
			if s.rec != nil {
				s.recordJob(obs.JobSubmit, s.seq[s.arrivalIdx])
			}
			s.arrivalIdx++
		}
	}
}

// advanceToNextEvent advances to the earliest pending event (arrival or
// completion). It reports false when no events remain.
func (s *Simulator) advanceToNextEvent() bool {
	t := -1.0
	if len(s.running) > 0 {
		t = s.running[0].EndTime
	}
	if s.arrivalIdx < len(s.seq) {
		at := s.seq[s.arrivalIdx].SubmitTime
		if t < 0 || at < t {
			t = at
		}
	}
	if t < 0 {
		return false
	}
	s.advanceTo(t)
	return true
}

// start allocates and launches a pending job at the current time.
func (s *Simulator) start(j *job.Job) {
	nodes, err := s.cluster.Allocate(j.ID, j.RequestedProcs)
	if err != nil {
		panic(fmt.Sprintf("sim: start job %d: %v", j.ID, err))
	}
	j.Allocated = nodes
	j.StartTime = s.now
	j.EndTime = s.now + j.RunTime
	if j.UserID >= 0 {
		s.userProcs[j.UserID] += j.RequestedProcs
	}
	heap.Push(&s.running, j)
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	if s.rec != nil {
		s.recordJob(obs.JobStart, j)
	}
}

// Schedule runs the chosen job as soon as possible. If it does not fit now,
// time advances (completing/admitting jobs); with Backfill enabled, other
// pending jobs that cannot delay the chosen job's reservation are started
// meanwhile (EASY backfilling). On return the chosen job has started.
func (s *Simulator) Schedule(chosen *job.Job) {
	for !s.canStart(chosen) {
		if s.cfg.Backfill {
			if s.cfg.Conservative {
				s.conservativeBackfill(chosen)
			} else {
				s.backfill(chosen)
			}
			if s.canStart(chosen) {
				break
			}
		}
		if !s.advanceToNextEvent() {
			panic(fmt.Sprintf("sim: job %d (%d procs) can never start", chosen.ID, chosen.RequestedProcs))
		}
	}
	s.start(chosen)
}

// shadow computes the EASY reservation for the chosen job: the earliest
// time enough processors will be free — and, when quotas are active, the
// chosen user's quota headroom suffices — assuming running jobs end at
// their recorded EndTime. It also returns the processors spare at that
// instant beyond the reservation ("extra" nodes usable by long backfill
// candidates).
func (s *Simulator) shadow(chosen *job.Job) (shadowTime float64, extra int) {
	free := s.cluster.Free()
	held := 0
	if s.cfg.UserQuota > 0 && chosen.UserID >= 0 {
		held = s.userProcs[chosen.UserID]
	}
	quotaOK := func(held int) bool {
		if s.cfg.UserQuota <= 0 || chosen.UserID < 0 {
			return true
		}
		if chosen.RequestedProcs > s.cfg.UserQuota {
			return held == 0
		}
		return held+chosen.RequestedProcs <= s.cfg.UserQuota
	}
	if free >= chosen.RequestedProcs && quotaOK(held) {
		return s.now, free - chosen.RequestedProcs
	}
	ends := append(runHeap(nil), s.running...)
	heap.Init(&ends)
	for len(ends) > 0 {
		j := heap.Pop(&ends).(*job.Job)
		free += j.RequestedProcs
		if j.UserID >= 0 && j.UserID == chosen.UserID {
			held -= j.RequestedProcs
		}
		if free >= chosen.RequestedProcs && quotaOK(held) {
			return j.EndTime, free - chosen.RequestedProcs
		}
	}
	// Unreachable for valid sequences (every job fits an empty cluster).
	return s.now, 0
}

// backfill starts every pending job (in FCFS order) that fits the free
// processors now and cannot delay the chosen job: it either finishes (by
// its requested time) before the shadow time or uses only the extra
// processors spare at the shadow time.
func (s *Simulator) backfill(chosen *job.Job) {
	shadowTime, extra := s.shadow(chosen)
	i := 0
	for i < len(s.pending) {
		j := s.pending[i]
		if j == chosen {
			i++
			continue
		}
		fits := s.canStart(j)
		endsInTime := s.now+j.RequestedTime <= shadowTime
		inExtra := j.RequestedProcs <= extra
		if fits && (endsInTime || inExtra) {
			if inExtra && !endsInTime {
				extra -= j.RequestedProcs
			}
			s.start(j) // removes pending[i]; do not advance i
			continue
		}
		i++
	}
}

// conservativeBackfill walks the pending queue with the chosen job first
// and the rest in FCFS order, giving every job a reservation in the
// availability profile (using requested times); jobs whose reservation is
// "now" start immediately. No job can delay an earlier reservation.
func (s *Simulator) conservativeBackfill(chosen *job.Job) {
	prof := newProfile(s.now, s.cluster.Free(), s.running)
	order := make([]*job.Job, 0, len(s.pending))
	order = append(order, chosen)
	for _, j := range s.pending {
		if j != chosen {
			order = append(order, j)
		}
	}
	for _, j := range order {
		start := prof.earliest(s.now, j.RequestedTime, j.RequestedProcs)
		if start <= s.now && s.canStart(j) && j != chosen {
			s.start(j)
			prof.reserve(s.now, j.RequestedTime, j.RequestedProcs)
			continue
		}
		prof.reserve(start, j.RequestedTime, j.RequestedProcs)
	}
}

// Run drives the full sequence with the scheduler and returns the result.
func (s *Simulator) Run(sched Scheduler) (metrics.Result, error) {
	if len(s.seq) == 0 {
		return metrics.Result{}, fmt.Errorf("sim: no sequence loaded")
	}
	for !s.Done() {
		if len(s.pending) == 0 {
			if !s.advanceToNextEvent() {
				break
			}
			continue
		}
		visible := s.Visible()
		idx := sched.Pick(visible, s.now, s.View())
		if idx < 0 || idx >= len(visible) {
			idx = 0
		}
		s.Schedule(visible[idx])
	}
	// Drain remaining completions so utilization covers the full run.
	for s.advanceToNextEvent() {
	}
	return s.result(), nil
}

// result snapshots metrics after a run.
func (s *Simulator) result() metrics.Result {
	start := 0.0
	if len(s.seq) > 0 {
		start = s.seq[0].SubmitTime
	}
	return metrics.Result{
		Jobs:        s.seq,
		Utilization: s.cluster.Utilization(start, s.now),
	}
}

// CheckInvariants verifies simulator and cluster consistency (used by
// property tests).
func (s *Simulator) CheckInvariants() error {
	if err := s.cluster.CheckInvariants(); err != nil {
		return err
	}
	started := 0
	for _, j := range s.seq {
		if j.Started() {
			started++
			if j.StartTime < j.SubmitTime {
				return fmt.Errorf("sim: job %d started before submission", j.ID)
			}
		}
	}
	if inFlight := started - s.completed; inFlight != len(s.running) {
		return fmt.Errorf("sim: %d in flight but %d running", inFlight, len(s.running))
	}
	return nil
}
