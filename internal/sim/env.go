package sim

import (
	"math"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
)

// JobFeatures is the per-job observation width. Each visible pending job is
// embedded as a fixed vector combining its own attributes with the current
// resource availability (§IV-B3: "the vector also contains available
// resources ... the priority of a job actually varies depending on the
// currently available resources"):
//
//	0: waiting time, squashed to [0,1) by w/(w+600)
//	1: requested runtime, log-scaled against a 7-day cap
//	2: requested processors / cluster size
//	3: free processors / cluster size
//	4: 1 if the job fits the free processors right now
//	5: pending-queue occupancy, len(pending)/MaxObserve capped at 1
//	6: 1 for a real job, 0 for a padding row
const JobFeatures = 7

// maxReqTimeCap caps the runtime feature's log scale (7 days in seconds).
const maxReqTimeCap = 7 * 24 * 3600

// Obs is a flattened MaxObserve×JobFeatures observation matrix.
type Obs []float64

// Env is the Gym-style interface SchedGym exposes to RL agents: Reset loads
// a job sequence and returns the first observation; Step applies a job
// selection and returns the next observation. Rewards follow §IV-A: zero on
// every intermediate action, the full (negated for minimization) sequence
// metric on the final action.
type Env struct {
	sim    *Simulator
	goal   metrics.Kind
	reward metrics.RewardFunc
}

// NewEnv returns an environment for the cluster config and optimization
// goal.
func NewEnv(cfg Config, goal metrics.Kind) *Env {
	return &Env{sim: New(cfg), goal: goal}
}

// SetReward overrides the terminal reward with a custom function — the
// hook for combined goals (metrics.WeightedReward) and quota-style shaping
// (§V-F). A nil fn restores the plain goal reward.
func (e *Env) SetReward(fn metrics.RewardFunc) { e.reward = fn }

// MaxObserve returns the action-space size.
func (e *Env) MaxObserve() int { return e.sim.cfg.maxObserve() }

// Goal returns the metric the environment rewards.
func (e *Env) Goal() metrics.Kind { return e.goal }

// Reset loads a sequence (pass freshly cloned jobs, e.g. trace.Window) and
// returns the initial observation. It returns an error for invalid
// sequences.
func (e *Env) Reset(seq []*job.Job) (Obs, error) {
	if err := e.ResetOnly(seq); err != nil {
		return nil, err
	}
	return e.observe(), nil
}

// ResetOnly is Reset without materializing the initial observation — the
// rollout collector builds observations into its own buffers via
// ObserveInto instead.
func (e *Env) ResetOnly(seq []*job.Job) error {
	if err := e.sim.Load(seq); err != nil {
		return err
	}
	// Advance until a decision is needed.
	for e.sim.PendingCount() == 0 && !e.sim.Done() {
		if !e.sim.advanceToNextEvent() {
			break
		}
	}
	return nil
}

// Step schedules the visible job at slot action (invalid or padded slots
// fall back to slot 0), advances to the next decision point, and returns
// the next observation, the reward, and whether the sequence is finished.
func (e *Env) Step(action int) (Obs, float64, bool) {
	rew, done := e.StepOnly(action)
	return e.observe(), rew, done
}

// StepOnly is Step without materializing the next observation. Rollout
// collection calls it in a tight loop, reading state through ObserveInto
// only when a decision is actually needed (in particular the terminal
// observation, which no learner consumes, is never built).
func (e *Env) StepOnly(action int) (float64, bool) {
	visible := e.sim.Visible()
	if len(visible) == 0 {
		// Terminal state already reached.
		return 0, true
	}
	if action < 0 || action >= len(visible) {
		action = 0
	}
	e.sim.Schedule(visible[action])
	for e.sim.PendingCount() == 0 && !e.sim.Done() {
		if !e.sim.advanceToNextEvent() {
			break
		}
	}
	if e.sim.Done() || (e.sim.PendingCount() == 0 && e.sim.arrivalIdx == len(e.sim.seq)) {
		for e.sim.advanceToNextEvent() {
		}
		res := e.sim.result()
		if e.reward != nil {
			return e.reward(res), true
		}
		return metrics.Reward(e.goal, res), true
	}
	return 0, false
}

// Mask returns validity flags for each action slot: true where a real
// pending job occupies the slot and starting it would not violate the
// per-user quota (§V-F). If quotas would mask every slot, all real slots
// are re-enabled — the simulator then simply waits for quota to free up,
// so the agent never faces an all-invalid action space.
func (e *Env) Mask() []bool {
	m := make([]bool, e.MaxObserve())
	e.MaskInto(m)
	return m
}

// MaskInto is Mask writing into a caller-owned buffer of MaxObserve flags.
func (e *Env) MaskInto(m []bool) {
	if len(m) != e.MaxObserve() {
		panic("sim: MaskInto buffer has wrong size")
	}
	for i := range m {
		m[i] = false
	}
	visible := e.sim.Visible()
	any := false
	for i, j := range visible {
		if e.sim.QuotaOK(j) {
			m[i] = true
			any = true
		}
	}
	if !any {
		for i := range visible {
			m[i] = true
		}
	}
}

// ObserveInto builds the current observation into a caller-owned buffer of
// MaxObserve·JobFeatures values, the zero-allocation twin of the
// observation Reset/Step return.
func (e *Env) ObserveInto(dst Obs) {
	BuildObsInto(dst, e.sim.Visible(), e.sim.Now(), e.sim.View(), e.sim.PendingCount(), e.MaxObserve())
}

// Result returns the finished run's jobs and utilization.
func (e *Env) Result() metrics.Result { return e.sim.result() }

// Sim exposes the underlying simulator (read-only use intended).
func (e *Env) Sim() *Simulator { return e.sim }

// observe builds a fresh fixed-size observation matrix. Each call
// allocates so callers (e.g. trajectory buffers) may retain the slice.
func (e *Env) observe() Obs {
	return BuildObs(e.sim.Visible(), e.sim.Now(), e.sim.View(), e.sim.PendingCount(), e.MaxObserve())
}

// BuildObs embeds up to maxObs visible jobs into the fixed observation
// matrix described by JobFeatures. It is shared by the training Env and by
// inference-time schedulers that wrap a trained policy network.
// pendingCount is the full pending-queue length (may exceed len(visible)).
func BuildObs(visible []*job.Job, now float64, view ClusterView, pendingCount, maxObs int) Obs {
	obs := make(Obs, maxObs*JobFeatures)
	BuildObsInto(obs, visible, now, view, pendingCount, maxObs)
	return obs
}

// BuildObsInto is BuildObs writing into a caller-owned buffer of
// maxObs·JobFeatures values, so hot serving paths can reuse allocations.
// dst is fully overwritten (padding rows zeroed).
func BuildObsInto(dst Obs, visible []*job.Job, now float64, view ClusterView, pendingCount, maxObs int) {
	if len(dst) != maxObs*JobFeatures {
		panic("sim: BuildObsInto buffer has wrong size")
	}
	obs := dst
	for i := range obs {
		obs[i] = 0
	}
	queueFrac := float64(pendingCount) / float64(maxObs)
	if queueFrac > 1 {
		queueFrac = 1
	}
	freeFrac := float64(view.FreeProcs) / float64(view.TotalProcs)
	for i, j := range visible {
		if i >= maxObs {
			break
		}
		row := obs[i*JobFeatures : (i+1)*JobFeatures]
		wait := now - j.SubmitTime
		if wait < 0 {
			wait = 0
		}
		row[0] = wait / (wait + 600)
		row[1] = math.Log1p(j.RequestedTime) / math.Log1p(maxReqTimeCap)
		row[2] = float64(j.RequestedProcs) / float64(view.TotalProcs)
		row[3] = freeFrac
		if j.RequestedProcs <= view.FreeProcs {
			row[4] = 1
		}
		row[5] = queueFrac
		row[6] = 1
	}
}
