package sim

import (
	"testing"

	"rlsched/internal/job"
)

func stepJob(id int, submit, runtime float64, procs int) *job.Job {
	return job.New(id, submit, runtime, procs, runtime)
}

// TestSubmitAndEventStepping drives a simulator purely through the
// incremental surface and checks clock, events and work accounting.
func TestSubmitAndEventStepping(t *testing.T) {
	s := New(Config{Processors: 8})
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("fresh simulator reports a pending event")
	}

	a := stepJob(1, 0, 100, 4)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if s.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingCount())
	}
	if got := s.PendingWork(); got != 400 {
		t.Fatalf("PendingWork = %g, want 400", got)
	}
	if !s.CanStartNow(a) {
		t.Fatal("job fits an idle cluster")
	}
	if err := s.StartNow(a); err != nil {
		t.Fatal(err)
	}
	if got := s.RunningWork(); got != 400 {
		t.Fatalf("RunningWork = %g, want 400", got)
	}

	// Starting it again must fail: it is no longer pending.
	if err := s.StartNow(a); err == nil {
		t.Fatal("StartNow on a running job must error")
	}

	// A job too wide for the free processors cannot start.
	b := stepJob(2, 0, 50, 6)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if s.CanStartNow(b) {
		t.Fatal("6 procs cannot start with 4 free")
	}
	if err := s.StartNow(b); err == nil {
		t.Fatal("StartNow must refuse an unstartable job")
	}

	et, ok := s.NextEventTime()
	if !ok || et != 100 {
		t.Fatalf("next event = %v,%v, want 100,true", et, ok)
	}
	s.AdvanceClock(50)
	if got := s.RunningWork(); got != 200 {
		t.Fatalf("RunningWork at t=50 = %g, want 200", got)
	}
	s.AdvanceClock(40) // never backwards
	if s.Now() != 50 {
		t.Fatalf("clock moved backwards to %g", s.Now())
	}
	s.AdvanceClock(100)
	if !s.CanStartNow(b) {
		t.Fatal("completion must free processors")
	}
	if err := s.StartNow(b); err != nil {
		t.Fatal(err)
	}
	s.AdvanceClock(150)
	if !s.Done() {
		t.Fatal("both jobs completed, Done must be true")
	}
	res := s.Result()
	if len(res.Jobs) != 2 || res.Utilization <= 0 {
		t.Fatalf("result jobs=%d util=%g", len(res.Jobs), res.Utilization)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitGuards covers the error paths of the incremental surface.
func TestSubmitGuards(t *testing.T) {
	s := New(Config{Processors: 4})
	if err := s.Submit(stepJob(1, 10, 60, 2)); err == nil {
		t.Fatal("future submission must error before the clock reaches it")
	}
	if err := s.Submit(stepJob(2, 0, 60, 8)); err == nil {
		t.Fatal("a job wider than the cluster must be rejected")
	}

	// Preloaded future arrivals and Submit cannot mix.
	s2 := New(Config{Processors: 4})
	if err := s2.Load([]*job.Job{stepJob(3, 5, 60, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Submit(stepJob(4, 0, 60, 2)); err == nil {
		t.Fatal("Submit must refuse while preloaded arrivals are pending")
	}
}

// TestWithdraw covers the inverse-of-Submit surface: a pending job can be
// withdrawn exactly once, started and unknown jobs cannot, and accounting
// (pending queue, sequence history, Done) stays consistent.
func TestWithdraw(t *testing.T) {
	s := New(Config{Processors: 8})
	a := stepJob(1, 0, 100, 4)
	b := stepJob(2, 0, 50, 2)
	for _, j := range []*job.Job{a, b} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Withdraw(99); err == nil {
		t.Fatal("withdrawing an unknown job must error")
	}
	got, err := s.Withdraw(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("Withdraw returned %v, want job 1", got)
	}
	if s.PendingCount() != 1 || s.PendingWork() != 100 {
		t.Fatalf("after withdraw: pending=%d work=%g, want 1, 100", s.PendingCount(), s.PendingWork())
	}
	if _, err := s.Withdraw(1); err == nil {
		t.Fatal("double withdraw must error")
	}
	if err := s.StartNow(b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Withdraw(2); err == nil {
		t.Fatal("withdrawing a started job must error")
	}
	s.AdvanceClock(50)
	if !s.Done() {
		t.Fatal("the only remaining job completed; Done must account for the withdrawal")
	}
	if n := len(s.Result().Jobs); n != 1 {
		t.Fatalf("result holds %d jobs, want 1 (withdrawn job left the history)", n)
	}

	// Withdraw is Submit-mode only, like Submit itself.
	s2 := New(Config{Processors: 4})
	if err := s2.Load([]*job.Job{stepJob(3, 5, 60, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Withdraw(3); err == nil {
		t.Fatal("Withdraw must refuse while preloaded arrivals are pending")
	}
}

// TestWithdrawResubmitParity is the migration subsystem's correctness
// anchor: withdrawing a pending job and immediately resubmitting it to the
// same simulator must reproduce the untouched run exactly — same queue
// order, same start times, same metrics — even when the job sits in the
// middle of the queue.
func TestWithdrawResubmitParity(t *testing.T) {
	mk := func() []*job.Job {
		return []*job.Job{
			stepJob(1, 0, 1000, 8), // occupies the whole cluster
			stepJob(2, 1, 300, 4),
			stepJob(3, 2, 200, 4),
			stepJob(4, 3, 100, 2),
		}
	}
	run := func(disturb bool) []*job.Job {
		s := New(Config{Processors: 8, Backfill: true})
		jobs := mk()
		for _, j := range jobs {
			s.AdvanceClock(j.SubmitTime)
			if err := s.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		if disturb {
			// Pull job 3 out of the middle of the queue and put it back.
			w, err := s.Withdraw(3)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Submit(w); err != nil {
				t.Fatal(err)
			}
			if vis := s.Visible(); vis[2].ID != 3 {
				t.Fatalf("resubmitted job lost its queue position: %v", vis)
			}
		}
		// Drive FCFS to completion through the stepping surface.
		for {
			for len(s.Visible()) > 0 {
				head := s.Visible()[0]
				if !s.CanStartNow(head) {
					s.BackfillNow(head)
				}
				if !s.CanStartNow(head) {
					break
				}
				if err := s.StartNow(head); err != nil {
					t.Fatal(err)
				}
			}
			et, ok := s.NextEventTime()
			if !ok {
				break
			}
			s.AdvanceClock(et)
		}
		return jobs
	}
	ref, got := run(false), run(true)
	for i := range ref {
		if ref[i].StartTime != got[i].StartTime {
			t.Fatalf("job %d: start %g without withdraw, %g with withdraw-resubmit",
				ref[i].ID, ref[i].StartTime, got[i].StartTime)
		}
	}
}

// TestBackfillNowMatchesScheduleBackfill: with backfilling enabled,
// BackfillNow starts exactly the jobs Schedule's internal pass would.
func TestBackfillNowStartsSafeJobs(t *testing.T) {
	s := New(Config{Processors: 8, Backfill: true})
	long := stepJob(1, 0, 1000, 8)
	if err := s.Submit(long); err != nil {
		t.Fatal(err)
	}
	if err := s.StartNow(long); err != nil {
		t.Fatal(err)
	}
	// Wide job must wait for the full cluster; a short narrow job can
	// backfill ahead of it without delaying its reservation.
	wide := stepJob(2, 0, 100, 8)
	short := stepJob(3, 0, 50, 2)
	if err := s.Submit(wide); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(short); err != nil {
		t.Fatal(err)
	}
	s.BackfillNow(wide)
	if short.Started() {
		t.Fatal("nothing is free at t=0; backfill cannot start anything")
	}
	s.AdvanceClock(1000) // long completes; 8 free
	// wide's reservation is now; short (50s, 2p) would delay it.
	s.BackfillNow(wide)
	if short.Started() {
		t.Fatal("backfill must not delay the committed job's reservation")
	}
	if !s.CanStartNow(wide) {
		t.Fatal("wide fits after the long job completes")
	}
}

// TestCompletionsLog: the append-only completion log records finished
// jobs in completion order, survives incremental stepping, and a new Load
// starts it empty.
func TestCompletionsLog(t *testing.T) {
	s := New(Config{Processors: 8})
	if got := s.Completions(); len(got) != 0 {
		t.Fatalf("fresh simulator logs %d completions", len(got))
	}
	a := stepJob(1, 0, 100, 4) // completes at 100
	b := stepJob(2, 0, 50, 4)  // completes at 50
	for _, j := range []*job.Job{a, b} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
		if err := s.StartNow(j); err != nil {
			t.Fatal(err)
		}
	}
	s.AdvanceClock(60)
	if got := s.Completions(); len(got) != 1 || got[0] != b {
		t.Fatalf("after t=60 log = %v, want [b]", got)
	}
	s.AdvanceClock(200)
	got := s.Completions()
	if len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatalf("log = %v, want [b a] in completion order", got)
	}
	// The log is append-only within a run: the earlier read's prefix is
	// untouched, and a cursor-style consumer sees only the tail.
	if err := s.Load(nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Completions(); len(got) != 0 {
		t.Fatalf("Load must clear the log, got %d entries", len(got))
	}
}
