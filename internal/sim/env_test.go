package sim

import (
	"math"
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/trace"
)

func TestEnvEpisode(t *testing.T) {
	tr := trace.Preset("Lublin-1", 100, 2)
	env := NewEnv(Config{Processors: tr.Processors, MaxObserve: 16}, metrics.BoundedSlowdown)
	obs, err := env.Reset(tr.Window(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 16*JobFeatures {
		t.Fatalf("obs len = %d, want %d", len(obs), 16*JobFeatures)
	}
	steps := 0
	var reward float64
	done := false
	for !done {
		// Always act on slot 0 (valid by construction).
		obs, reward, done = env.Step(0)
		steps++
		if steps > 200 {
			t.Fatal("episode did not terminate")
		}
		if !done && reward != 0 {
			t.Fatalf("intermediate reward = %g, want 0 (§IV-A)", reward)
		}
		if len(obs) != 16*JobFeatures {
			t.Fatal("observation size must be constant")
		}
	}
	if reward >= 0 {
		t.Errorf("final bsld reward = %g, want negative (bsld >= 1)", reward)
	}
	if steps != 100 {
		t.Errorf("steps = %d, want one per job (100)", steps)
	}
	res := env.Result()
	for _, j := range res.Jobs {
		if !j.Started() {
			t.Fatal("all jobs must have run")
		}
	}
}

func TestEnvUtilizationRewardPositive(t *testing.T) {
	tr := trace.Preset("Lublin-2", 60, 4)
	env := NewEnv(Config{Processors: tr.Processors, MaxObserve: 8}, metrics.Utilization)
	if _, err := env.Reset(tr.Window(0, 60)); err != nil {
		t.Fatal(err)
	}
	var reward float64
	done := false
	for !done {
		_, reward, done = env.Step(0)
	}
	if reward <= 0 || reward > 1 {
		t.Errorf("util reward = %g, want in (0,1]", reward)
	}
}

func TestEnvMask(t *testing.T) {
	// 3 jobs, MaxObserve 8: first three slots valid.
	jobs := []*job.Job{
		job.New(1, 0, 10, 1, 10),
		job.New(2, 0, 10, 1, 10),
		job.New(3, 0, 10, 1, 10),
	}
	env := NewEnv(Config{Processors: 4, MaxObserve: 8}, metrics.BoundedSlowdown)
	if _, err := env.Reset(jobs); err != nil {
		t.Fatal(err)
	}
	m := env.Mask()
	if len(m) != 8 {
		t.Fatalf("mask len = %d, want 8", len(m))
	}
	for i := 0; i < 3; i++ {
		if !m[i] {
			t.Errorf("slot %d must be valid", i)
		}
	}
	for i := 3; i < 8; i++ {
		if m[i] {
			t.Errorf("slot %d must be padding", i)
		}
	}
}

func TestObservationFeatures(t *testing.T) {
	jobs := []*job.Job{
		job.New(1, 0, 100, 2, 100),
		job.New(2, 0, 200, 8, 200),
	}
	env := NewEnv(Config{Processors: 8, MaxObserve: 4}, metrics.BoundedSlowdown)
	obs, err := env.Reset(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: job 1. wait=0 -> f0=0; fits (2<=8) -> f4=1; valid f6=1.
	r0 := obs[0:JobFeatures]
	if r0[0] != 0 {
		t.Errorf("f0 wait = %g, want 0", r0[0])
	}
	if r0[2] != 0.25 {
		t.Errorf("f2 procs = %g, want 2/8", r0[2])
	}
	if r0[3] != 1 {
		t.Errorf("f3 free = %g, want 1 (idle cluster)", r0[3])
	}
	if r0[4] != 1 || r0[6] != 1 {
		t.Errorf("f4/f6 = %g/%g, want 1/1", r0[4], r0[6])
	}
	// Row 1: job 2 requests the whole machine: procs frac 1, still fits.
	r1 := obs[JobFeatures : 2*JobFeatures]
	if r1[2] != 1 || r1[4] != 1 {
		t.Errorf("row1 f2/f4 = %g/%g, want 1/1", r1[2], r1[4])
	}
	if r1[1] <= r0[1] {
		t.Error("longer requested time must give a larger f1")
	}
	// Rows 2..3 are padding: all zeros.
	for i := 2 * JobFeatures; i < 4*JobFeatures; i++ {
		if obs[i] != 0 {
			t.Fatalf("padding obs[%d] = %g, want 0", i, obs[i])
		}
	}
	// All features bounded in [0,1].
	for i, v := range obs {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("obs[%d] = %g out of [0,1]", i, v)
		}
	}
}

func TestEnvInvalidActionFallsBack(t *testing.T) {
	jobs := []*job.Job{job.New(1, 0, 10, 1, 10), job.New(2, 0, 10, 1, 10)}
	env := NewEnv(Config{Processors: 2, MaxObserve: 4}, metrics.BoundedSlowdown)
	if _, err := env.Reset(jobs); err != nil {
		t.Fatal(err)
	}
	_, _, done := env.Step(99) // padding slot: falls back to 0
	if done {
		t.Fatal("one job left, must not be done")
	}
	_, _, done = env.Step(-1)
	if !done {
		t.Fatal("episode must finish after both jobs scheduled")
	}
	// Stepping a finished env is a harmless terminal no-op.
	_, r, done := env.Step(0)
	if !done || r != 0 {
		t.Error("stepping terminal env must stay done with zero reward")
	}
}

func TestEnvResetReusable(t *testing.T) {
	tr := trace.Preset("HPC2N", 80, 6)
	env := NewEnv(Config{Processors: tr.Processors, MaxObserve: 8}, metrics.BoundedSlowdown)
	rng := rand.New(rand.NewSource(1))
	var rewards []float64
	for ep := 0; ep < 3; ep++ {
		if _, err := env.Reset(tr.SampleWindow(rng, 40)); err != nil {
			t.Fatal(err)
		}
		done := false
		var r float64
		for !done {
			_, r, done = env.Step(0)
		}
		rewards = append(rewards, r)
	}
	if len(rewards) != 3 {
		t.Fatal("env must be reusable across episodes")
	}
}

func TestEnvSetReward(t *testing.T) {
	jobs := []*job.Job{job.New(1, 0, 10, 1, 10)}
	env := NewEnv(Config{Processors: 2, MaxObserve: 4}, metrics.BoundedSlowdown)
	env.SetReward(func(r metrics.Result) float64 { return 42 })
	if _, err := env.Reset(jobs); err != nil {
		t.Fatal(err)
	}
	_, rew, done := env.Step(0)
	if !done || rew != 42 {
		t.Errorf("custom reward = %g done=%v, want 42 true", rew, done)
	}
	// Restoring the nil reward goes back to the goal metric.
	env.SetReward(nil)
	if _, err := env.Reset([]*job.Job{job.New(1, 0, 10, 1, 10)}); err != nil {
		t.Fatal(err)
	}
	_, rew, _ = env.Step(0)
	if rew != -1 { // idle machine: bsld clamps at 1, reward −1
		t.Errorf("default reward = %g, want -1", rew)
	}
}

func TestEnvRejectsBadSequence(t *testing.T) {
	env := NewEnv(Config{Processors: 1, MaxObserve: 4}, metrics.BoundedSlowdown)
	if _, err := env.Reset([]*job.Job{job.New(1, 0, 10, 5, 10)}); err == nil {
		t.Error("oversized job must fail Reset")
	}
}

func TestBuildObsIntoMatchesBuildObs(t *testing.T) {
	jobs := []*job.Job{
		job.New(1, 0, 100, 4, 200),
		job.New(2, 10, 50, 2, 60),
	}
	view := ClusterView{FreeProcs: 32, TotalProcs: 64}
	want := BuildObs(jobs, 40, view, 5, 8)
	dst := make(Obs, 8*JobFeatures)
	// Dirty the buffer to prove it is fully overwritten.
	for i := range dst {
		dst[i] = -1
	}
	BuildObsInto(dst, jobs, 40, view, 5, 8)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("BuildObsInto[%d] = %g, BuildObs = %g", i, dst[i], want[i])
		}
	}
}
