package sim

import (
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/trace"
)

func runningJob(id int, end float64, procs int) *job.Job {
	j := job.New(id, 0, end, procs, end)
	j.StartTime = 0
	j.EndTime = end
	return j
}

func TestProfileEarliestIdle(t *testing.T) {
	p := newProfile(10, 8, nil)
	if got := p.earliest(10, 100, 4); got != 10 {
		t.Errorf("idle earliest = %g, want now (10)", got)
	}
	if got := p.earliest(10, 100, 8); got != 10 {
		t.Errorf("full-machine earliest = %g, want 10", got)
	}
}

func TestProfileEarliestWaitsForRelease(t *testing.T) {
	// 8-proc machine: 6 busy until t=100, 2 free now.
	p := newProfile(0, 2, []*job.Job{runningJob(1, 100, 6)})
	if got := p.earliest(0, 50, 2); got != 0 {
		t.Errorf("2-proc request earliest = %g, want 0", got)
	}
	if got := p.earliest(0, 50, 4); got != 100 {
		t.Errorf("4-proc request earliest = %g, want 100", got)
	}
}

func TestProfileStaircase(t *testing.T) {
	// Releases at 50 (2 procs) and 100 (4 procs), 1 free now.
	p := newProfile(0, 1, []*job.Job{runningJob(1, 50, 2), runningJob(2, 100, 4)})
	if got := p.earliest(0, 10, 3); got != 50 {
		t.Errorf("3-proc earliest = %g, want 50", got)
	}
	if got := p.earliest(0, 10, 5); got != 100 {
		t.Errorf("5-proc earliest = %g, want 100", got)
	}
}

func TestProfileReservationBlocks(t *testing.T) {
	// 4 free; a reservation of 3 procs on [20, 60) leaves 1 free there.
	p := newProfile(0, 4, nil)
	p.reserve(20, 40, 3)
	if got := p.earliest(0, 10, 2); got != 0 {
		t.Errorf("short 2-proc job before the reservation: earliest = %g, want 0", got)
	}
	// A 2-proc job of 30s starting now would overlap [20,30) where only
	// 1 proc is free — must wait until 60.
	if got := p.earliest(5, 30, 2); got != 60 {
		t.Errorf("overlapping 2-proc earliest = %g, want 60", got)
	}
}

func TestProfileFitGapBetweenReservations(t *testing.T) {
	p := newProfile(0, 4, nil)
	p.reserve(50, 100, 4) // machine fully reserved on [50,150)
	if got := p.earliest(0, 50, 4); got != 0 {
		t.Errorf("exact-gap fit earliest = %g, want 0", got)
	}
	if got := p.earliest(0, 51, 4); got != 150 {
		t.Errorf("gap-too-small earliest = %g, want 150", got)
	}
}

func TestConservativeBackfillNeverDelaysReservations(t *testing.T) {
	// Machine: 4 procs. j1 runs 3 procs until 100. Chosen j2 wants 4
	// procs (reserved at 100, by estimate). j3 (1 proc, 1000s) would fit
	// the idle proc now but would overlap j2's reservation with only the
	// EASY "extra" rule — conservative must also hold j2 at exactly 100.
	s := New(Config{Processors: 4, Backfill: true, Conservative: true})
	j1 := job.New(1, 0, 100, 3, 100)
	j2 := job.New(2, 1, 50, 4, 50)
	j3 := job.New(3, 2, 1000, 1, 1000)
	if err := s.Load([]*job.Job{j1, j2, j3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %g, want 100 (reservation held)", j2.StartTime)
	}
	if j3.StartTime < 100 {
		t.Errorf("j3 start = %g: conservative backfilling must not start a job overlapping j2's full-machine reservation", j3.StartTime)
	}
}

func TestConservativeBackfillStartsHarmlessJobs(t *testing.T) {
	// j3 is short enough (10s by estimate) to finish before j2's
	// reservation at t=100: conservative backfilling starts it.
	s := New(Config{Processors: 4, Backfill: true, Conservative: true})
	j1 := job.New(1, 0, 100, 3, 100)
	j2 := job.New(2, 1, 50, 4, 50)
	j3 := job.New(3, 2, 10, 1, 10)
	if err := s.Load([]*job.Job{j1, j2, j3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j3.StartTime >= 100 {
		t.Errorf("j3 start = %g, want < 100 (fits before the reservation)", j3.StartTime)
	}
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %g, want 100", j2.StartTime)
	}
}

// TestConservativeVsEasyEndToEnd runs both disciplines over a real window:
// both must complete all jobs, respect submit ordering, and keep
// utilization sane. Conservative is usually (not always) no better than
// EASY on slowdown — we only assert both are valid, plus determinism.
func TestConservativeVsEasyEndToEnd(t *testing.T) {
	tr := trace.Preset("Lublin-2", 400, 13)
	rng := rand.New(rand.NewSource(4))
	_ = rng
	run := func(conservative bool) float64 {
		s := New(Config{Processors: tr.Processors, Backfill: true, Conservative: conservative})
		if err := s.Load(tr.Window(0, 400)); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(fcfsPick{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, j := range res.Jobs {
			if !j.Started() || j.StartTime < j.SubmitTime {
				t.Fatalf("conservative=%v: job %d invalid schedule", conservative, j.ID)
			}
		}
		return metrics.Value(metrics.BoundedSlowdown, res)
	}
	easy1, easy2 := run(false), run(false)
	cons := run(true)
	if easy1 != easy2 {
		t.Error("EASY runs must be deterministic")
	}
	if cons <= 0 || easy1 <= 0 {
		t.Error("bsld must be positive")
	}
	t.Logf("bsld: easy=%.2f conservative=%.2f", easy1, cons)
}
