package sim

import (
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
)

func userJob(id int, submit, run float64, procs, user int) *job.Job {
	j := job.New(id, submit, run, procs, run)
	j.UserID = user
	return j
}

func TestQuotaDelaysSameUser(t *testing.T) {
	// 8-proc machine, quota 4 per user. User 0 submits two 4-proc jobs:
	// the second must wait for the first despite free processors; with
	// backfilling, user 1's job fills the hole meanwhile.
	s := New(Config{Processors: 8, UserQuota: 4, Backfill: true})
	j1 := userJob(1, 0, 100, 4, 0)
	j2 := userJob(2, 0, 100, 4, 0)
	j3 := userJob(3, 0, 100, 4, 1) // other user: unaffected
	if err := s.Load([]*job.Job{j1, j2, j3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j1.StartTime != 0 {
		t.Errorf("j1 start = %g, want 0", j1.StartTime)
	}
	if j2.StartTime != 100 {
		t.Errorf("j2 start = %g, want 100 (quota-blocked behind j1)", j2.StartTime)
	}
	if j3.StartTime != 0 {
		t.Errorf("j3 start = %g, want 0 (different user)", j3.StartTime)
	}
}

func TestQuotaOversizedJobRunsAlone(t *testing.T) {
	// A job larger than the quota may run while its user holds nothing.
	s := New(Config{Processors: 8, UserQuota: 2})
	j1 := userJob(1, 0, 50, 6, 0)
	j2 := userJob(2, 0, 50, 2, 0)
	if err := s.Load([]*job.Job{j1, j2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j1.StartTime != 0 {
		t.Errorf("oversized j1 start = %g, want 0", j1.StartTime)
	}
	if j2.StartTime != 50 {
		t.Errorf("j2 start = %g, want 50 (waits for user's oversized job)", j2.StartTime)
	}
}

func TestQuotaUnlimitedByDefault(t *testing.T) {
	s := New(Config{Processors: 8})
	j1 := userJob(1, 0, 100, 4, 0)
	j2 := userJob(2, 0, 100, 4, 0)
	if err := s.Load([]*job.Job{j1, j2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j2.StartTime != 0 {
		t.Errorf("without quota both jobs start at 0, j2 = %g", j2.StartTime)
	}
}

func TestQuotaBackfillRespected(t *testing.T) {
	// Backfilling must not sneak a quota-violating job in.
	// 8 procs, quota 4. j1 (user 0, 4p) runs 100s. j2 (user 1, 8p)
	// blocked -> reservation at 100. j3 (user 0, 2p, short) fits free
	// procs and ends before the shadow time, but user 0 is at quota.
	s := New(Config{Processors: 8, Backfill: true, UserQuota: 4})
	j1 := userJob(1, 0, 100, 4, 0)
	j2 := userJob(2, 1, 100, 8, 1)
	j3 := userJob(3, 2, 10, 2, 0)
	if err := s.Load([]*job.Job{j1, j2, j3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(fcfsPick{}); err != nil {
		t.Fatal(err)
	}
	if j3.StartTime < 100 {
		t.Errorf("j3 start = %g: backfill violated user 0's quota", j3.StartTime)
	}
}

func TestQuotaMask(t *testing.T) {
	env := NewEnv(Config{Processors: 8, MaxObserve: 4, UserQuota: 4}, metrics.BoundedSlowdown)
	jobs := []*job.Job{
		userJob(1, 0, 100, 4, 0),
		userJob(2, 0, 100, 4, 0),
		userJob(3, 0, 100, 4, 1),
	}
	if _, err := env.Reset(jobs); err != nil {
		t.Fatal(err)
	}
	// Schedule job 1 (user 0 hits quota).
	if _, _, done := env.Step(0); done {
		t.Fatal("episode ended early")
	}
	m := env.Mask()
	if m[0] { // slot 0 is now user 0's second job: quota-masked
		t.Error("user-0 job must be quota-masked")
	}
	if !m[1] { // user 1's job remains legal
		t.Error("user-1 job must stay legal")
	}
}

func TestQuotaMaskAllBlockedFallsBack(t *testing.T) {
	env := NewEnv(Config{Processors: 8, MaxObserve: 4, UserQuota: 4}, metrics.BoundedSlowdown)
	jobs := []*job.Job{
		userJob(1, 0, 100, 4, 0),
		userJob(2, 0, 100, 4, 0),
	}
	if _, err := env.Reset(jobs); err != nil {
		t.Fatal(err)
	}
	if _, _, done := env.Step(0); done {
		t.Fatal("episode ended early")
	}
	m := env.Mask()
	if !m[0] {
		t.Error("with every slot quota-blocked the mask must re-enable real slots")
	}
}

func TestQuotaEndToEndMetricsSane(t *testing.T) {
	// Quotas slow the dominant user but the run must stay valid.
	s := New(Config{Processors: 16, UserQuota: 4, Backfill: true})
	var jobs []*job.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, userJob(i+1, float64(i), 50, 2, i%3))
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(fcfsPick{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if !j.Started() {
			t.Fatal("all jobs must eventually run under quotas")
		}
	}
	if v := metrics.Value(metrics.BoundedSlowdown, res); v < 1 {
		t.Errorf("bsld = %g", v)
	}
}
