package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// BenchJSONEnv names the environment variable that, when set to a
// directory, makes the §2 benchmarks write BENCH_<name>.json snapshots
// there (see BenchSnapshot.WriteFile). Unset → no snapshot, no overhead.
const BenchJSONEnv = "RLSCHED_BENCH_JSON"

// BenchSnapshot is one benchmark's machine-readable result: iteration
// cost plus the benchmark's custom throughput metrics, stamped with the
// toolchain and host shape so snapshots from different machines don't get
// compared blindly.
type BenchSnapshot struct {
	// Name is the snapshot's short name ("fleetplace", ...); the file is
	// BENCH_<Name>.json.
	Name string `json:"name"`
	// Iterations is b.N; NsPerOp the mean iteration cost.
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics carries the benchmark's custom rates (placements_per_s,
	// decisions_per_s, epoch_seconds, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// GoVersion, GOOS, GOARCH and CPUs describe the machine the numbers
	// came from.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// UnixTime is the snapshot instant (seconds since epoch).
	UnixTime int64 `json:"unix_time"`
}

// NewBenchSnapshot stamps a snapshot with the current toolchain, host
// shape and time.
func NewBenchSnapshot(name string, iterations int, nsPerOp float64, m map[string]float64) BenchSnapshot {
	return BenchSnapshot{
		Name:       name,
		Iterations: iterations,
		NsPerOp:    nsPerOp,
		Metrics:    m,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		UnixTime:   time.Now().Unix(),
	}
}

// WriteFile writes the snapshot as BENCH_<name>.json under dir and
// returns the written path.
func (s BenchSnapshot) WriteFile(dir string) (string, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+s.Name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
