package obs

import "sync"

// Ring is a fixed-capacity Recorder retaining the most recent placement
// decisions (other event kinds are discarded) — the sink behind the
// serving daemon's /debug/decisions endpoint. Writes deep-copy the event
// and stamp Seq with a monotonic 1-based sequence number, so readers can
// tell how many decisions have scrolled past the window. Safe for
// concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []PlacementDecision
	total uint64
}

// NewRing returns a ring keeping the last n placement decisions (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]PlacementDecision, n)}
}

// Placement implements Recorder: deep-copy the decision into the ring,
// overwriting the oldest slot once full.
func (r *Ring) Placement(d *PlacementDecision) {
	cp := copyDecision(d)
	r.mu.Lock()
	r.total++
	cp.Seq = r.total
	r.buf[int((r.total-1)%uint64(len(r.buf)))] = cp
	r.mu.Unlock()
}

// Migration implements Recorder (discarded).
func (r *Ring) Migration(*MigrationProbe) {}

// Fairness implements Recorder (discarded).
func (r *Ring) Fairness(*FairnessSnapshot) {}

// Job implements Recorder (discarded).
func (r *Ring) Job(*JobEvent) {}

// Churn implements Recorder (discarded).
func (r *Ring) Churn(*ChurnRecord) {}

// Total returns how many decisions have ever been recorded (including
// those the ring has since overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n retained decisions, most recent first. Each
// element's trace slices are the ring's private copies — read, don't
// mutate.
func (r *Ring) Last(n int) []PlacementDecision {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.total
	if kept > uint64(len(r.buf)) {
		kept = uint64(len(r.buf))
	}
	if n < 0 || uint64(n) > kept {
		n = int(kept)
	}
	out := make([]PlacementDecision, 0, n)
	for i := 0; i < n; i++ {
		seq := r.total - uint64(i)
		out = append(out, r.buf[int((seq-1)%uint64(len(r.buf)))])
	}
	return out
}
