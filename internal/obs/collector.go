package obs

import "sync"

// Collector is a Recorder that retains a deep copy of every event, in
// arrival order — the sink exporters (the Chrome trace writer, run
// reports, tests) read from. It is mutex-guarded, so it is safe to share
// across goroutines, though fleet runs emit serially anyway.
type Collector struct {
	mu         sync.Mutex
	placements []PlacementDecision
	migrations []MigrationProbe
	fairness   []FairnessSnapshot
	jobs       []JobEvent
	churns     []ChurnRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// copyDecision deep-copies a placement decision (the emitter owns and
// reuses d and its slices).
func copyDecision(d *PlacementDecision) PlacementDecision {
	c := *d
	if d.Candidates != nil {
		c.Candidates = make([]CandidateTrace, len(d.Candidates))
		for i := range d.Candidates {
			c.Candidates[i] = d.Candidates[i]
			if ps := d.Candidates[i].Plugins; len(ps) > 0 {
				c.Candidates[i].Plugins = append([]PluginScore(nil), ps...)
			} else {
				c.Candidates[i].Plugins = nil
			}
		}
	}
	return c
}

// Placement implements Recorder.
func (c *Collector) Placement(d *PlacementDecision) {
	cp := copyDecision(d)
	c.mu.Lock()
	c.placements = append(c.placements, cp)
	c.mu.Unlock()
}

// Migration implements Recorder.
func (c *Collector) Migration(p *MigrationProbe) {
	c.mu.Lock()
	c.migrations = append(c.migrations, *p)
	c.mu.Unlock()
}

// Fairness implements Recorder.
func (c *Collector) Fairness(s *FairnessSnapshot) {
	c.mu.Lock()
	c.fairness = append(c.fairness, *s)
	c.mu.Unlock()
}

// Job implements Recorder.
func (c *Collector) Job(e *JobEvent) {
	c.mu.Lock()
	c.jobs = append(c.jobs, *e)
	c.mu.Unlock()
}

// Churn implements Recorder.
func (c *Collector) Churn(e *ChurnRecord) {
	c.mu.Lock()
	c.churns = append(c.churns, *e)
	c.mu.Unlock()
}

// Placements returns the collected placement decisions in arrival order.
// The returned slice is a snapshot copy; its traces are owned by the
// collector — read, don't mutate.
func (c *Collector) Placements() []PlacementDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PlacementDecision(nil), c.placements...)
}

// Migrations returns the collected migration probes in arrival order.
func (c *Collector) Migrations() []MigrationProbe {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]MigrationProbe(nil), c.migrations...)
}

// FairnessSnapshots returns the collected fairness snapshots in arrival
// order.
func (c *Collector) FairnessSnapshots() []FairnessSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FairnessSnapshot(nil), c.fairness...)
}

// Jobs returns the collected job lifecycle events in arrival order.
func (c *Collector) Jobs() []JobEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]JobEvent(nil), c.jobs...)
}

// Churns returns the collected churn transitions in arrival order.
func (c *Collector) Churns() []ChurnRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ChurnRecord(nil), c.churns...)
}
