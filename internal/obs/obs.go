// Package obs is the observability layer of the scheduler: typed decision
// events emitted by the fleet placement pipeline, the migration controller
// and the simulator's job lifecycle, behind one Recorder interface whose
// nil default costs nothing. Recording is strictly passive — an attached
// recorder sees every decision but influences none, so placements and
// sweeps are byte-identical with and without one (pinned by parity tests
// in internal/fleet and internal/exp).
//
// Sinks: Collector retains everything for exporters (the Chrome
// trace-event timeline writer, run reports), Ring keeps the last N
// placement decisions for the serving daemon's /debug/decisions endpoint,
// and Nop measures the instrumented path's overhead in benchmarks.
package obs

import (
	"rlsched/internal/job"
	"rlsched/internal/metrics"
)

// JobRef identifies a job inside an event: the scheduler-visible identity
// and size, never the actual runtime.
type JobRef struct {
	// ID is the job's trace ID.
	ID int `json:"id"`
	// UserID is the submitting user (-1 unknown).
	UserID int `json:"user_id"`
	// Procs is the requested processor count.
	Procs int `json:"procs"`
	// SubmitTime is the job's original arrival instant (kept across
	// migration re-submits).
	SubmitTime float64 `json:"submit_time"`
}

// Ref captures a job's event identity.
func Ref(j *job.Job) JobRef {
	return JobRef{ID: j.ID, UserID: j.UserID, Procs: j.RequestedProcs, SubmitTime: j.SubmitTime}
}

// PluginScore is one score plugin's view of one candidate in a placement
// decision: the plugin's pipeline weight and its min-max normalized score
// for this candidate (the value the weight multiplies).
type PluginScore struct {
	// Plugin is the scorer's Name().
	Plugin string `json:"plugin"`
	// Weight is the plugin's pipeline weight.
	Weight float64 `json:"weight"`
	// Norm is the plugin's [0,1]-normalized score for this candidate (0
	// when the plugin expressed no preference across the feasible set).
	Norm float64 `json:"norm"`
}

// CandidateTrace is one candidate cluster's full story in a placement
// decision: the filter verdict and, when feasible, every plugin's
// normalized contribution plus the weighted total the argmax compared.
type CandidateTrace struct {
	// Index is the candidate's cluster index; Name its cluster name.
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Feasible reports whether the candidate survived every filter;
	// FilteredBy names the first filter that rejected it (empty when
	// feasible).
	Feasible   bool   `json:"feasible"`
	FilteredBy string `json:"filtered_by,omitempty"`
	// Plugins carries the per-scorer normalized contributions (empty for
	// infeasible candidates and single-feasible shortcuts).
	Plugins []PluginScore `json:"plugins,omitempty"`
	// Total is the weighted sum the winner was chosen by (0 while
	// infeasible; 1 for a single-feasible shortcut).
	Total float64 `json:"total"`
}

// Explain captures a placement pipeline pass for reuse across calls: the
// per-candidate traces and whether the winning total was tied. It is
// filled by Pipeline.PlaceExplained (internal/fleet); Reset re-sizes it
// without reallocating the per-candidate plugin slices.
type Explain struct {
	// Candidates has one trace per candidate, in candidate order.
	Candidates []CandidateTrace `json:"candidates"`
	// TieBreak reports that another feasible candidate matched the
	// winner's total and the lowest index won.
	TieBreak bool `json:"tie_break"`
}

// Reset prepares the explain buffer for a pass over n candidates, reusing
// prior allocations.
func (e *Explain) Reset(n int) {
	for cap(e.Candidates) < n {
		e.Candidates = append(e.Candidates[:cap(e.Candidates)], CandidateTrace{})
	}
	e.Candidates = e.Candidates[:n]
	for i := range e.Candidates {
		c := &e.Candidates[i]
		c.Index, c.Name = 0, ""
		c.Feasible, c.FilteredBy = false, ""
		c.Plugins = c.Plugins[:0]
		c.Total = 0
	}
	e.TieBreak = false
}

// PlacementDecision is one routing decision: which cluster an arriving (or
// re-placed) job went to and the per-plugin evidence. Candidates is nil
// for routers that expose no score breakdown (random, round-robin).
type PlacementDecision struct {
	// Seq is a monotonic sequence number stamped by sinks that keep order
	// across drops (the serving Ring); emitters leave it 0.
	Seq uint64 `json:"seq,omitempty"`
	// Time is the decision instant: simulation seconds in fleet runs,
	// seconds since daemon start in the serving path.
	Time float64 `json:"time"`
	// Router is the deciding router's Name().
	Router string `json:"router"`
	// Job is the placed job.
	Job JobRef `json:"job"`
	// Winner is the chosen cluster index (-1 when no cluster was
	// feasible); Cluster its name.
	Winner  int    `json:"winner"`
	Cluster string `json:"cluster,omitempty"`
	// TieBreak reports the winning total was shared and the lowest index
	// won.
	TieBreak bool `json:"tie_break,omitempty"`
	// Candidates is the per-cluster evidence (filter verdicts, normalized
	// plugin scores, totals), nil for unscored routers.
	Candidates []CandidateTrace `json:"candidates,omitempty"`
}

// Migration probe outcome reasons (MigrationProbe.Reason).
const (
	// ReasonMoved: the job migrated to a new cluster.
	ReasonMoved = "moved"
	// ReasonIncumbent: the job's current cluster is still the best pick.
	ReasonIncumbent = "incumbent-best"
	// ReasonHysteresis: a better cluster exists but its margin did not
	// clear the hysteresis.
	ReasonHysteresis = "hysteresis"
	// ReasonNotDrained: the margin cleared but the destination failed the
	// start-now gate (pending backlog, or cannot start the job now).
	ReasonNotDrained = "not-drained"
	// ReasonInfeasible: no cluster passed the filters at the sweep.
	ReasonInfeasible = "no-feasible"
	// ReasonCooldown: the job moved too recently to be probed.
	ReasonCooldown = "cooldown"
	// ReasonMoveCap: the job exhausted its lifetime move budget.
	ReasonMoveCap = "move-cap"
)

// MigrationProbe is one migration-controller look at one pending job
// during a sweep: where it sat, where it could have gone, and why it moved
// or stayed. Skips before scoring (cooldown, move cap) carry To = -1.
type MigrationProbe struct {
	// Time is the sweep instant (simulation seconds).
	Time float64 `json:"time"`
	// Job is the probed job.
	Job JobRef `json:"job"`
	// From is the cluster the job waited on; To the best alternative the
	// re-scoring found (-1 when the probe was skipped before scoring or
	// nothing was feasible). FromName/ToName are the cluster names.
	From     int    `json:"from"`
	FromName string `json:"from_name,omitempty"`
	To       int    `json:"to"`
	ToName   string `json:"to_name,omitempty"`
	// Moved reports the job actually migrated; Reason says why or why not
	// (the Reason* constants).
	Moved  bool   `json:"moved"`
	Reason string `json:"reason"`
	// Margin is best-minus-incumbent on the normalized score scale (0
	// when either side was unscored).
	Margin float64 `json:"margin"`
}

// Churn transition kinds (ChurnRecord.Kind).
const (
	// ChurnAnnounce: a member entered the draining state (drain notice).
	ChurnAnnounce = "announce"
	// ChurnJoined: a new member joined the fleet mid-run.
	ChurnJoined = "join"
	// ChurnDrained: a draining member's backlog was withdrawn and
	// re-placed; the member retired (running jobs finish).
	ChurnDrained = "drain"
	// ChurnFailed: a member failed; pending AND running jobs were
	// withdrawn (running ones evicted) and re-placed.
	ChurnFailed = "fail"
)

// ChurnRecord is one cluster-churn transition during a fleet run: a member
// joining, being announced for drain, draining out, or failing.
type ChurnRecord struct {
	// Time is the transition instant (simulation seconds).
	Time float64 `json:"time"`
	// Kind is the transition (the Churn* constants).
	Kind string `json:"kind"`
	// Cluster names the member churning.
	Cluster string `json:"cluster"`
	// Forced counts the jobs this transition withdrew and re-placed
	// across the fleet (0 for announce/join).
	Forced int `json:"forced"`
}

// FairnessSnapshot is the stateful fairness tracker's aggregate view at a
// decision instant.
type FairnessSnapshot struct {
	// Time is the snapshot instant (simulation seconds).
	Time float64 `json:"time"`
	// Report is the tracker's per-user summary.
	Report metrics.FairnessReport `json:"report"`
}

// JobEventKind enumerates job lifecycle transitions.
type JobEventKind uint8

// Job lifecycle transitions: arrival into a cluster's queue, launch,
// completion, and withdrawal (the migration controller pulling a pending
// job back out — always followed by a re-submit somewhere).
const (
	JobSubmit JobEventKind = iota
	JobStart
	JobFinish
	JobWithdraw
)

// String names the kind.
func (k JobEventKind) String() string {
	switch k {
	case JobSubmit:
		return "submit"
	case JobStart:
		return "start"
	case JobFinish:
		return "finish"
	case JobWithdraw:
		return "withdraw"
	}
	return "unknown"
}

// JobEvent is one lifecycle transition of one job on one cluster. A
// migrated job's history reads submit → withdraw → submit → start →
// finish, with the cluster tag changing at the re-submit; spans built from
// these events (the Chrome trace exporter) link the re-submits through the
// matching MigrationProbe.
type JobEvent struct {
	// Kind is the transition.
	Kind JobEventKind `json:"kind"`
	// Time is the transition instant (simulation seconds).
	Time float64 `json:"time"`
	// Cluster tags the member the event happened on.
	Cluster string `json:"cluster"`
	// Job is the transitioning job.
	Job JobRef `json:"job"`
}

// Recorder receives decision and lifecycle events. Implementations must
// be cheap and must not retain the event pointers past the call — emitters
// reuse event buffers between calls; copy what you keep (Collector and
// Ring do). A nil Recorder is the disabled state: emitters guard every
// event behind a nil check, so the untraced path pays one branch.
type Recorder interface {
	// Placement receives one routing decision.
	Placement(*PlacementDecision)
	// Migration receives one migration probe outcome.
	Migration(*MigrationProbe)
	// Fairness receives one fairness tracker snapshot.
	Fairness(*FairnessSnapshot)
	// Job receives one job lifecycle transition.
	Job(*JobEvent)
	// Churn receives one cluster-churn transition.
	Churn(*ChurnRecord)
}

// Nop is a Recorder that discards everything — the benchmark stand-in for
// "recorder attached, sink free", measuring the instrumented path itself.
type Nop struct{}

// Placement implements Recorder.
func (Nop) Placement(*PlacementDecision) {}

// Migration implements Recorder.
func (Nop) Migration(*MigrationProbe) {}

// Fairness implements Recorder.
func (Nop) Fairness(*FairnessSnapshot) {}

// Job implements Recorder.
func (Nop) Job(*JobEvent) {}

// Churn implements Recorder.
func (Nop) Churn(*ChurnRecord) {}
