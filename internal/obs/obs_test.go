package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/telemetry"
)

func TestRefAndKindString(t *testing.T) {
	j := &job.Job{ID: 7, UserID: 3, RequestedProcs: 16, SubmitTime: 12.5}
	r := Ref(j)
	if r.ID != 7 || r.UserID != 3 || r.Procs != 16 || r.SubmitTime != 12.5 {
		t.Fatalf("Ref = %+v", r)
	}
	for k, want := range map[JobEventKind]string{
		JobSubmit: "submit", JobStart: "start", JobFinish: "finish",
		JobWithdraw: "withdraw", JobEventKind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("kind %d = %q, want %q", k, got, want)
		}
	}
}

func TestExplainResetReuses(t *testing.T) {
	var e Explain
	e.Reset(3)
	if len(e.Candidates) != 3 {
		t.Fatalf("len = %d", len(e.Candidates))
	}
	e.Candidates[1].Plugins = append(e.Candidates[1].Plugins, PluginScore{Plugin: "x", Norm: 1})
	e.Candidates[1].Feasible = true
	e.Candidates[1].Total = 2
	e.TieBreak = true
	kept := e.Candidates[1].Plugins[:1][0:0]

	e.Reset(2)
	if len(e.Candidates) != 2 || e.TieBreak {
		t.Fatalf("after Reset(2): len=%d tie=%v", len(e.Candidates), e.TieBreak)
	}
	for i, c := range e.Candidates {
		if c.Feasible || c.Total != 0 || len(c.Plugins) != 0 || c.FilteredBy != "" {
			t.Fatalf("candidate %d not cleared: %+v", i, c)
		}
	}
	// The plugin slice backing array must be reused, not reallocated.
	if cap(e.Candidates[1].Plugins) == 0 || cap(kept) == 0 {
		t.Fatalf("plugin slice capacity dropped")
	}

	// Growing past prior capacity works too.
	e.Reset(8)
	if len(e.Candidates) != 8 {
		t.Fatalf("after Reset(8): len=%d", len(e.Candidates))
	}
}

func TestCollectorDeepCopies(t *testing.T) {
	c := NewCollector()
	d := PlacementDecision{
		Time: 1, Router: "pipeline", Winner: 0, Cluster: "a",
		Candidates: []CandidateTrace{{
			Index: 0, Name: "a", Feasible: true,
			Plugins: []PluginScore{{Plugin: "load", Weight: 1, Norm: 0.5}},
			Total:   0.5,
		}},
	}
	c.Placement(&d)
	// Mutate the emitter-owned buffers after the fact.
	d.Candidates[0].Plugins[0].Norm = -1
	d.Candidates[0].Name = "mutated"
	d.Cluster = "mutated"

	got := c.Placements()
	if len(got) != 1 {
		t.Fatalf("placements = %d", len(got))
	}
	p := got[0]
	if p.Cluster != "a" || p.Candidates[0].Name != "a" || p.Candidates[0].Plugins[0].Norm != 0.5 {
		t.Fatalf("collector shares emitter buffers: %+v", p)
	}

	c.Migration(&MigrationProbe{Time: 2, From: 0, To: 1, Moved: true, Reason: ReasonMoved})
	c.Fairness(&FairnessSnapshot{Time: 3})
	c.Job(&JobEvent{Kind: JobStart, Time: 4, Cluster: "a"})
	if len(c.Migrations()) != 1 || len(c.FairnessSnapshots()) != 1 || len(c.Jobs()) != 1 {
		t.Fatalf("other event kinds not retained")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	if got := r.Last(10); len(got) != 0 {
		t.Fatalf("empty ring Last = %d entries", len(got))
	}
	for i := 1; i <= 10; i++ {
		r.Placement(&PlacementDecision{Time: float64(i), Winner: i})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d", r.Total())
	}
	got := r.Last(10)
	if len(got) != 4 {
		t.Fatalf("Last(10) kept %d, want 4", len(got))
	}
	// Most recent first: winners 10, 9, 8, 7 with seqs to match.
	for i, want := range []int{10, 9, 8, 7} {
		if got[i].Winner != want || got[i].Seq != uint64(want) {
			t.Fatalf("Last[%d] = winner %d seq %d, want %d", i, got[i].Winner, got[i].Seq, want)
		}
	}
	if got2 := r.Last(2); len(got2) != 2 || got2[0].Winner != 10 || got2[1].Winner != 9 {
		t.Fatalf("Last(2) = %+v", got2)
	}
	if gotAll := r.Last(-1); len(gotAll) != 4 {
		t.Fatalf("Last(-1) = %d entries", len(gotAll))
	}
}

func TestRingClampsCapacity(t *testing.T) {
	r := NewRing(0)
	r.Placement(&PlacementDecision{Winner: 1})
	r.Placement(&PlacementDecision{Winner: 2})
	got := r.Last(-1)
	if len(got) != 1 || got[0].Winner != 2 {
		t.Fatalf("Last = %+v", got)
	}
}

// traceFixture builds a collector with two clusters, three job spans and
// one accepted migration (submit on a, withdraw, re-submit on b).
func traceFixture() *Collector {
	c := NewCollector()
	jb := func(id, user int) JobRef { return JobRef{ID: id, UserID: user, Procs: 4, SubmitTime: 0} }
	c.Job(&JobEvent{Kind: JobSubmit, Time: 0, Cluster: "a", Job: jb(1, 0)})
	c.Job(&JobEvent{Kind: JobSubmit, Time: 0, Cluster: "a", Job: jb(2, 1)})
	c.Job(&JobEvent{Kind: JobStart, Time: 1, Cluster: "a", Job: jb(1, 0)})
	c.Job(&JobEvent{Kind: JobWithdraw, Time: 2, Cluster: "a", Job: jb(2, 1)})
	c.Migration(&MigrationProbe{
		Time: 2, Job: jb(2, 1), From: 0, FromName: "a", To: 1, ToName: "b",
		Moved: true, Reason: ReasonMoved, Margin: 0.25,
	})
	c.Job(&JobEvent{Kind: JobSubmit, Time: 2, Cluster: "b", Job: jb(2, 1)})
	c.Job(&JobEvent{Kind: JobStart, Time: 3, Cluster: "b", Job: jb(2, 1)})
	c.Job(&JobEvent{Kind: JobStart, Time: 4, Cluster: "a", Job: jb(3, 0)})
	c.Job(&JobEvent{Kind: JobFinish, Time: 5, Cluster: "a", Job: jb(1, 0)})
	c.Job(&JobEvent{Kind: JobFinish, Time: 6, Cluster: "b", Job: jb(2, 1)})
	c.Job(&JobEvent{Kind: JobFinish, Time: 7, Cluster: "a", Job: jb(3, 0)})
	c.Fairness(&FairnessSnapshot{Time: 4, Report: metrics.FairnessReport{Users: 2, Jain: 0.9}})
	return c
}

func TestWriteChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := traceFixture().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if tr.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.Unit)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	flowStarts, flowEnds, spans, procs := 0, 0, 0, map[float64]bool{}
	for i, ev := range tr.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event %d missing name/ph: %v", i, ev)
		}
		pid, ok := ev["pid"].(float64)
		if !ok {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
		switch ph {
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		case "X":
			spans++
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("X event %d missing dur: %v", i, ev)
			}
		case "M":
			if name == "process_name" {
				procs[pid] = true
			}
		}
	}
	// One migration arrow: an s/f pair.
	if flowStarts != 1 || flowEnds != 1 {
		t.Fatalf("flow events = %d starts, %d ends; want 1/1", flowStarts, flowEnds)
	}
	// 3 job spans + 2 migration instant slices.
	if spans != 5 {
		t.Fatalf("X spans = %d, want 5", spans)
	}
	// Clusters a, b plus the pid-0 fleet counter process.
	if !procs[1] || !procs[2] || !procs[0] {
		t.Fatalf("process metadata missing: %v", procs)
	}
	// NaN must never leak into the JSON.
	if bytes.Contains(buf.Bytes(), []byte("NaN")) {
		t.Fatal("trace contains NaN")
	}
}

// TestWriteChromeTraceSeries pins the counter-track export: every sampled
// telemetry series becomes a pid-0 "C" event per point, alongside the
// fairness counters, and the plain export stays series-free.
func TestWriteChromeTraceSeries(t *testing.T) {
	set := telemetry.NewSet()
	set.Series("fleet.queue_depth").Add(1, 3)
	set.Series("fleet.queue_depth").Add(2, 5)
	set.Series("cluster.a.util").Add(2, 0.5)

	var buf bytes.Buffer
	if err := traceFixture().WriteChromeTraceSeries(&buf, set); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	counters := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ph, _ := ev["ph"].(string); ph != "C" {
			continue
		}
		name, _ := ev["name"].(string)
		counters[name]++
		if pid, _ := ev["pid"].(float64); pid != 0 {
			t.Fatalf("counter %s on pid %g, want fleet lane 0", name, pid)
		}
	}
	if counters["fleet.queue_depth"] != 2 || counters["cluster.a.util"] != 1 {
		t.Fatalf("series counter events = %v", counters)
	}
	if counters["fairness"] != 1 {
		t.Fatalf("fairness counters = %d, want 1", counters["fairness"])
	}
	// Points scale like every other timestamp (simulated seconds × 1e6).
	found := false
	for _, ev := range tr.TraceEvents {
		if n, _ := ev["name"].(string); n == "cluster.a.util" {
			if ts, _ := ev["ts"].(float64); ts != 2e6 {
				t.Fatalf("counter ts = %g, want 2e6", ts)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("cluster.a.util counter missing")
	}

	// The series-free writer must not grow counter tracks.
	var plain bytes.Buffer
	if err := traceFixture().WriteChromeTrace(&plain); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Bytes(), []byte("queue_depth")) {
		t.Fatal("plain trace leaked series counters")
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := traceFixture().WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("trace file is not valid JSON")
	}
}

func TestRunReport(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, UserID: 0, RequestedProcs: 4, SubmitTime: 0, RunTime: 10},
		{ID: 2, UserID: 1, RequestedProcs: 4, SubmitTime: 0, RunTime: 10},
	}
	jobs[0].StartTime, jobs[0].EndTime = 0, 10
	jobs[1].StartTime, jobs[1].EndTime = 5, 15
	res := metrics.Result{Jobs: jobs, Utilization: 0.5, Moves: 2,
		MigratedJobs: jobs[:1], MigrationDelaySum: 6}

	r := NewRunReport("fleet-migration", 42)
	r.AddPhase("evaluate", 1.5)
	r.AddResult("hysteresis", res)
	r.WallSeconds = 2.0

	if len(r.Results) != 1 {
		t.Fatalf("results = %d", len(r.Results))
	}
	e := r.Results[0]
	if e.Jobs != 2 || e.Metrics["moves"] != 2 || e.Metrics["migrated_jobs"] != 1 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Metrics["mean_migration_delay_s"] != 6 {
		t.Fatalf("delay = %v", e.Metrics["mean_migration_delay_s"])
	}
	if e.Fairness == nil || e.Fairness.Users != 2 {
		t.Fatalf("fairness = %+v", e.Fairness)
	}
	for _, k := range metrics.Kinds {
		v, ok := e.Metrics[k.String()]
		if !ok || math.IsNaN(v) {
			t.Fatalf("metric %s missing or NaN", k)
		}
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Experiment != "fleet-migration" || back.Seed != 42 || len(back.Phases) != 1 {
		t.Fatalf("round-trip = %+v", back)
	}
}

func TestBenchSnapshotWriteFile(t *testing.T) {
	dir := t.TempDir()
	s := NewBenchSnapshot("fleetplace", 100, 1234.5, map[string]float64{"placements_per_s": 9000})
	path, err := s.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_fleetplace.json" {
		t.Fatalf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "fleetplace" || back.Iterations != 100 || back.Metrics["placements_per_s"] != 9000 {
		t.Fatalf("round-trip = %+v", back)
	}
	if back.GoVersion == "" || back.CPUs < 1 {
		t.Fatalf("host stamp missing: %+v", back)
	}
}

func TestNopImplementsRecorder(t *testing.T) {
	var r Recorder = Nop{}
	r.Placement(&PlacementDecision{})
	r.Migration(&MigrationProbe{})
	r.Fairness(&FairnessSnapshot{})
	r.Job(&JobEvent{})
	var _ Recorder = NewCollector()
	var _ Recorder = NewRing(1)
}
