package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"rlsched/internal/telemetry"
)

// Chrome trace-event exporter: renders a collected fleet run as a
// Perfetto-loadable timeline (chrome://tracing's legacy JSON format, the
// "JSON Array Format" Perfetto's importer accepts). One process lane per
// cluster; inside it, thread 0 carries migration instants and threads 1+
// are greedily packed job-span lanes; accepted migration probes become
// flow arrows ("s"/"f" pairs) from the source cluster's migration instant
// to the destination's. Load the file at https://ui.perfetto.dev or
// chrome://tracing.

// traceEvent is one event row of the Chrome trace-event format. Ts and
// Dur are microseconds; simulation seconds are scaled by 1e6, so one
// trace microsecond reads as one simulated second × 1e-6.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace file object.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tsScale = 1e6 // simulation seconds → trace microseconds

// jobSpan is a matched start/finish pair on one cluster.
type jobSpan struct {
	job        JobRef
	start, end float64
}

// WriteChromeTrace renders the collected events as Chrome trace-event
// JSON. Clusters become processes (pid = first-appearance order, 1-based),
// job runs become complete ("X") spans packed onto per-cluster lanes, and
// accepted migration probes become flow arrows between thin migration
// instants on the source and destination lanes.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return c.writeChromeTrace(w, nil)
}

// WriteChromeTraceSeries renders the timeline with the sampled health
// series (internal/fleet sampling) added as counter tracks ("C" events) on
// the fleet's pid-0 lane — Perfetto draws each series as a filled area
// chart above the job spans, aligned on the same simulated-time axis.
func (c *Collector) WriteChromeTraceSeries(w io.Writer, set *telemetry.Set) error {
	return c.writeChromeTrace(w, set)
}

func (c *Collector) writeChromeTrace(w io.Writer, set *telemetry.Set) error {
	jobs := c.Jobs()
	probes := c.Migrations()
	fair := c.FairnessSnapshots()

	// Cluster → pid, in order of first appearance across job events and
	// probes (so a cluster that only ever exported or imported migrations
	// still gets a lane).
	pids := map[string]int{}
	names := []string{}
	intern := func(name string) int {
		if name == "" {
			return 0
		}
		if p, ok := pids[name]; ok {
			return p
		}
		p := len(names) + 1
		pids[name] = p
		names = append(names, name)
		return p
	}
	for i := range jobs {
		intern(jobs[i].Cluster)
	}
	for i := range probes {
		intern(probes[i].FromName)
		intern(probes[i].ToName)
	}

	// Match start/finish pairs per cluster. A job restarted on the same
	// cluster (impossible today — starts are final) would simply open a
	// new span.
	open := map[string]map[int]jobSpan{}
	spans := map[string][]jobSpan{}
	for _, e := range jobs {
		switch e.Kind {
		case JobStart:
			m := open[e.Cluster]
			if m == nil {
				m = map[int]jobSpan{}
				open[e.Cluster] = m
			}
			m[e.Job.ID] = jobSpan{job: e.Job, start: e.Time}
		case JobFinish:
			if sp, ok := open[e.Cluster][e.Job.ID]; ok {
				sp.end = e.Time
				spans[e.Cluster] = append(spans[e.Cluster], sp)
				delete(open[e.Cluster], e.Job.ID)
			}
		}
	}

	var evs []traceEvent
	for i, name := range names {
		pid := i + 1
		evs = append(evs,
			traceEvent{Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": name}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": "migrations"}})
	}

	// Greedy lane packing per cluster: sort spans by start, place each on
	// the lowest-numbered lane that is free at its start instant.
	for _, name := range names {
		cl := spans[name]
		sort.Slice(cl, func(a, b int) bool {
			if cl[a].start != cl[b].start {
				return cl[a].start < cl[b].start
			}
			return cl[a].job.ID < cl[b].job.ID
		})
		pid := pids[name]
		var laneEnd []float64
		for _, sp := range cl {
			lane := -1
			for li, end := range laneEnd {
				if end <= sp.start {
					lane = li
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, 0)
			}
			laneEnd[lane] = sp.end
			evs = append(evs, traceEvent{
				Name: fmt.Sprintf("job %d", sp.job.ID),
				Cat:  "job", Ph: "X",
				Ts: sp.start * tsScale, Dur: (sp.end - sp.start) * tsScale,
				Pid: pid, Tid: lane + 1,
				Args: map[string]any{
					"user":   sp.job.UserID,
					"procs":  sp.job.Procs,
					"submit": sp.job.SubmitTime,
					"wait_s": sp.start - sp.job.SubmitTime,
				},
			})
		}
	}

	// Accepted migrations: a thin instant slice on each side's migration
	// thread, connected by a flow arrow.
	arrows := 0
	for _, p := range probes {
		if !p.Moved || p.FromName == "" || p.ToName == "" {
			continue
		}
		arrows++
		src, dst := pids[p.FromName], pids[p.ToName]
		label := fmt.Sprintf("migrate job %d", p.Job.ID)
		ts := p.Time * tsScale
		args := map[string]any{
			"from": p.FromName, "to": p.ToName,
			"margin": p.Margin, "user": p.Job.UserID, "procs": p.Job.Procs,
		}
		evs = append(evs,
			traceEvent{Name: label, Cat: "migration", Ph: "X",
				Ts: ts, Dur: 1, Pid: src, Tid: 0, Args: args},
			traceEvent{Name: label, Cat: "migration", Ph: "s", ID: arrows,
				Ts: ts, Pid: src, Tid: 0},
			traceEvent{Name: label, Cat: "migration", Ph: "X",
				Ts: ts + 1, Dur: 1, Pid: dst, Tid: 0, Args: args},
			traceEvent{Name: label, Cat: "migration", Ph: "f", BP: "e", ID: arrows,
				Ts: ts + 1, Pid: dst, Tid: 0})
	}

	// Fleet-wide fairness counters and sampled health series ride on a
	// dedicated pid 0 process.
	if len(fair) > 0 || (set != nil && set.Len() > 0) {
		evs = append(evs, traceEvent{Name: "process_name", Ph: "M", Pid: 0,
			Args: map[string]any{"name": "fleet"}})
	}
	for _, s := range fair {
		evs = append(evs, traceEvent{Name: "fairness", Ph: "C",
			Ts: s.Time * tsScale, Pid: 0,
			Args: map[string]any{
				"jain":           s.Report.Jain,
				"max_mean_ratio": s.Report.MaxMeanRatio,
			}})
	}
	if set != nil {
		for _, sr := range set.All() {
			for _, p := range sr.Points {
				evs = append(evs, traceEvent{Name: sr.Name, Ph: "C",
					Ts: p.T * tsScale, Pid: 0,
					Args: map[string]any{"value": p.V}})
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the timeline to a file path.
func (c *Collector) WriteChromeTraceFile(path string) error {
	return c.WriteChromeTraceSeriesFile(path, nil)
}

// WriteChromeTraceSeriesFile writes the timeline plus counter tracks for
// the sampled series (nil set = plain timeline) to a file path.
func (c *Collector) WriteChromeTraceSeriesFile(path string, set *telemetry.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.writeChromeTrace(f, set); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
