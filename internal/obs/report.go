package obs

import (
	"encoding/json"
	"os"

	"rlsched/internal/metrics"
)

// RunReport is the machine-readable record of one experiment run: the
// scenario identity and seed, wall-clock phase timings, and per-policy
// result summaries. Experiments fill one when exp.Options.ReportPath is
// set; the driver writes it next to the rendered artifact.
type RunReport struct {
	// Experiment is the experiment ID (exp registry key).
	Experiment string `json:"experiment"`
	// Seed is the run's root RNG seed.
	Seed int64 `json:"seed"`
	// Options echoes the run configuration (the exp.Options value).
	Options any `json:"options,omitempty"`
	// Phases lists wall-clock timings of the run's labelled stages, in
	// completion order.
	Phases []Phase `json:"phases,omitempty"`
	// Results carries one summary per evaluated policy/scenario row.
	Results []ResultEntry `json:"results,omitempty"`
	// WallSeconds is the whole run's wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
}

// Phase is one labelled wall-clock stage of an experiment run.
type Phase struct {
	// Name labels the stage (e.g. "train", "evaluate/binpack").
	Name string `json:"name"`
	// Seconds is the stage's wall-clock duration.
	Seconds float64 `json:"seconds"`
}

// ResultEntry summarizes one metrics.Result inside a run report: the
// standard job-averaged metrics, migration accounting, and the per-user
// fairness report.
type ResultEntry struct {
	// Name labels the row (policy and/or scenario).
	Name string `json:"name"`
	// Jobs is the number of completed jobs in the result.
	Jobs int `json:"jobs"`
	// Metrics maps metric kind names to their values, plus migration
	// accounting ("moves", "migrated_jobs", "mean_migration_delay_s") when
	// the run migrated anything.
	Metrics map[string]float64 `json:"metrics"`
	// Fairness is the per-user bounded-slowdown fairness report (nil when
	// the result has no attributed users).
	Fairness *metrics.FairnessReport `json:"fairness,omitempty"`
}

// NewRunReport starts an empty report for the experiment and seed.
func NewRunReport(experiment string, seed int64) *RunReport {
	return &RunReport{Experiment: experiment, Seed: seed}
}

// AddPhase appends a wall-clock stage timing.
func (r *RunReport) AddPhase(name string, seconds float64) {
	r.Phases = append(r.Phases, Phase{Name: name, Seconds: seconds})
}

// AddResult summarizes res under the given row name and appends it.
func (r *RunReport) AddResult(name string, res metrics.Result) {
	r.Results = append(r.Results, ResultEntryOf(name, res))
}

// ResultEntryOf summarizes a metrics.Result: every standard metric kind,
// migration accounting when present, and the per-user fairness report.
func ResultEntryOf(name string, res metrics.Result) ResultEntry {
	e := ResultEntry{
		Name:    name,
		Jobs:    len(res.Jobs),
		Metrics: make(map[string]float64, len(metrics.Kinds)+3),
	}
	for _, k := range metrics.Kinds {
		e.Metrics[k.String()] = metrics.Value(k, res)
	}
	if res.Moves > 0 || len(res.MigratedJobs) > 0 {
		e.Metrics["moves"] = float64(res.Moves)
		e.Metrics["migrated_jobs"] = float64(len(res.MigratedJobs))
		e.Metrics["mean_migration_delay_s"] = metrics.MeanMigrationDelay(res)
	}
	if rep := metrics.Fairness(res.Jobs, metrics.BoundedSlowdown); rep.Users > 0 {
		cp := rep
		e.Fairness = &cp
	}
	return e
}

// WriteFile writes the report as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
