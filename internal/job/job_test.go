package job

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	j := New(7, 100, 50, 4, 0)
	if j.RequestedTime != 50 {
		t.Errorf("estimate default = %g, want runtime 50", j.RequestedTime)
	}
	if j.Started() {
		t.Error("new job must not be started")
	}
	if err := j.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"negative submit", func(j *Job) { j.SubmitTime = -1 }},
		{"negative runtime", func(j *Job) { j.RunTime = -5 }},
		{"zero procs", func(j *Job) { j.RequestedProcs = 0 }},
		{"negative procs", func(j *Job) { j.RequestedProcs = -3 }},
		{"zero estimate", func(j *Job) { j.RequestedTime = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := New(1, 10, 10, 1, 10)
			tc.mut(j)
			if err := j.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
	var nilJob *Job
	if err := nilJob.Validate(); err == nil {
		t.Error("nil job must not validate")
	}
}

func TestMetricsOfStartedJob(t *testing.T) {
	j := New(1, 100, 60, 2, 60)
	j.StartTime = 130
	j.EndTime = 190
	if got := j.Wait(); got != 30 {
		t.Errorf("Wait() = %g, want 30", got)
	}
	if got := j.Turnaround(); got != 90 {
		t.Errorf("Turnaround() = %g, want 90", got)
	}
	if got := j.Slowdown(); got != 1.5 {
		t.Errorf("Slowdown() = %g, want 1.5", got)
	}
	if got := j.BoundedSlowdown(10); got != 1.5 {
		t.Errorf("BoundedSlowdown(10) = %g, want 1.5", got)
	}
}

func TestBoundedSlowdownShortJob(t *testing.T) {
	// 1-second job waiting 9 seconds: raw slowdown 10, bounded slowdown
	// uses the 10s threshold => (9+1)/10 = 1.
	j := New(1, 0, 1, 1, 1)
	j.StartTime = 9
	j.EndTime = 10
	if got := j.Slowdown(); got != 10 {
		t.Errorf("Slowdown() = %g, want 10", got)
	}
	if got := j.BoundedSlowdown(10); got != 1 {
		t.Errorf("BoundedSlowdown(10) = %g, want 1 (clamped)", got)
	}
}

func TestBoundedSlowdownNeverBelowOne(t *testing.T) {
	f := func(wait, run uint16) bool {
		j := New(1, 0, float64(run), 1, float64(run)+1)
		j.StartTime = float64(wait)
		j.EndTime = j.StartTime + j.RunTime
		b := j.BoundedSlowdown(10)
		return b >= 1 && !math.IsNaN(b) && !math.IsInf(b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnstartedJobMetricsAreZero(t *testing.T) {
	j := New(1, 5, 5, 1, 5)
	if j.Wait() != 0 || j.Turnaround() != 0 || j.Slowdown() != 0 || j.BoundedSlowdown(10) != 0 {
		t.Error("unstarted job must report zero metrics")
	}
}

func TestResetAndClone(t *testing.T) {
	j := New(3, 10, 20, 4, 25)
	j.StartTime = 12
	j.EndTime = 32
	j.Allocated = []int{0, 1, 2, 3}
	c := j.Clone()
	if c.Started() || c.Allocated != nil {
		t.Error("Clone must clear scheduling state")
	}
	if c.ID != 3 || c.RunTime != 20 || c.RequestedProcs != 4 {
		t.Error("Clone must preserve static attributes")
	}
	j.Reset()
	if j.Started() || j.Allocated != nil {
		t.Error("Reset must clear scheduling state")
	}
}

func TestZeroRuntimeSlowdownFinite(t *testing.T) {
	j := New(1, 0, 0, 1, 10)
	j.StartTime = 100
	j.EndTime = 100
	if s := j.Slowdown(); math.IsInf(s, 0) || math.IsNaN(s) {
		t.Errorf("Slowdown() = %g, want finite", s)
	}
	if b := j.BoundedSlowdown(10); b != 10 {
		t.Errorf("BoundedSlowdown = %g, want 10 (100/10)", b)
	}
}
