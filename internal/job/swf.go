package job

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SWF (Standard Workload Format) support. An SWF record has 18
// whitespace-separated fields; header lines start with ';'. Field order per
// the Parallel Workloads Archive:
//
//	 1 job number             2 submit time          3 wait time
//	 4 run time               5 used processors      6 avg cpu time
//	 7 used memory            8 requested processors 9 requested time
//	10 requested memory      11 status              12 user id
//	13 group id              14 executable          15 queue
//	16 partition             17 preceding job       18 think time
//
// Header comments of the form "; MaxProcs: N" carry cluster metadata.

// SWFHeader carries the archive metadata we use. Every directive stays in
// Comments verbatim as well, so writing a parsed header back (WriteSWF)
// loses nothing and re-parsing re-extracts identical values.
type SWFHeader struct {
	// MaxProcs is the number of processors in the traced cluster.
	MaxProcs int
	// MaxNodes is the node count of the traced system ("; MaxNodes: N").
	// Archives for clusters of multi-processor nodes often declare only
	// this; trace.LoadSWF falls back to it when MaxProcs is absent.
	MaxNodes int
	// MaxJobs and MaxRecords are the archive's declared job and record
	// counts ("; MaxJobs: N", "; MaxRecords: N") — useful as sanity bounds
	// when summarizing a trace without parsing it fully.
	MaxJobs    int
	MaxRecords int
	// UnixStartTime is the epoch the trace's relative submit times are
	// measured from ("; UnixStartTime: N"; 0 when absent).
	UnixStartTime int64
	// Computer and Version are the archive's free-text system name and SWF
	// version directives ("; Computer: ...", "; Version: ...").
	Computer string
	Version  string
	// Comments preserves all header lines verbatim (without the ';').
	Comments []string
}

// ParseSWF reads an SWF stream and returns the header and jobs. Records that
// are structurally broken return an error; jobs with unusable attributes
// (e.g. zero processors) are skipped, matching how the paper's SchedGym
// consumes archive traces.
func ParseSWF(r io.Reader) (SWFHeader, []*Job, error) {
	var hdr SWFHeader
	var jobs []*Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			c := strings.TrimSpace(strings.TrimPrefix(line, ";"))
			hdr.Comments = append(hdr.Comments, c)
			switch {
			case strings.HasPrefix(c, "MaxProcs:"):
				if v, ok := headerInt(c, "MaxProcs:"); ok {
					hdr.MaxProcs = v
				}
			case strings.HasPrefix(c, "MaxNodes:"):
				if v, ok := headerInt(c, "MaxNodes:"); ok {
					hdr.MaxNodes = v
				}
			case strings.HasPrefix(c, "MaxJobs:"):
				if v, ok := headerInt(c, "MaxJobs:"); ok {
					hdr.MaxJobs = v
				}
			case strings.HasPrefix(c, "MaxRecords:"):
				if v, ok := headerInt(c, "MaxRecords:"); ok {
					hdr.MaxRecords = v
				}
			case strings.HasPrefix(c, "UnixStartTime:"):
				if v, err := strconv.ParseInt(
					strings.TrimSpace(strings.TrimPrefix(c, "UnixStartTime:")), 10, 64); err == nil {
					hdr.UnixStartTime = v
				}
			case strings.HasPrefix(c, "Computer:"):
				hdr.Computer = strings.TrimSpace(strings.TrimPrefix(c, "Computer:"))
			case strings.HasPrefix(c, "Version:"):
				hdr.Version = strings.TrimSpace(strings.TrimPrefix(c, "Version:"))
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 18 {
			return hdr, nil, fmt.Errorf("swf: line %d: %d fields, want 18", lineNo, len(fields))
		}
		f := make([]float64, 18)
		for i := 0; i < 18; i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return hdr, nil, fmt.Errorf("swf: line %d field %d: %v", lineNo, i+1, err)
			}
			f[i] = v
		}
		j := &Job{
			ID:              int(f[0]),
			SubmitTime:      f[1],
			WaitTime:        f[2],
			RunTime:         f[3],
			RequestedProcs:  int(f[7]),
			RequestedTime:   f[8],
			RequestedMemory: f[9],
			Status:          int(f[10]),
			UserID:          int(f[11]),
			GroupID:         int(f[12]),
			Executable:      int(f[13]),
			QueueID:         int(f[14]),
			PartitionID:     int(f[15]),
			StartTime:       -1,
			EndTime:         -1,
		}
		// Fall back to used processors / run time when requests are absent.
		if j.RequestedProcs <= 0 {
			j.RequestedProcs = int(f[4])
		}
		if j.RequestedTime <= 0 {
			j.RequestedTime = j.RunTime
		}
		if j.Validate() != nil {
			continue
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, fmt.Errorf("swf: read: %w", err)
	}
	return hdr, jobs, nil
}

func headerInt(comment, key string) (int, bool) {
	if !strings.HasPrefix(comment, key) {
		return 0, false
	}
	v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(comment, key)))
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteSWF writes the header and jobs in Standard Workload Format. Unknown
// fields are written as -1, matching archive conventions.
func WriteSWF(w io.Writer, hdr SWFHeader, jobs []*Job) error {
	bw := bufio.NewWriter(w)
	if hdr.MaxProcs > 0 {
		if _, err := fmt.Fprintf(bw, "; MaxProcs: %d\n", hdr.MaxProcs); err != nil {
			return err
		}
	}
	for _, c := range hdr.Comments {
		if strings.HasPrefix(c, "MaxProcs:") {
			continue
		}
		if _, err := fmt.Fprintf(bw, "; %s\n", c); err != nil {
			return err
		}
	}
	for _, j := range jobs {
		_, err := fmt.Fprintf(bw, "%d %.0f %.0f %.0f %d -1 -1 %d %.0f %.0f %d %d %d %d %d %d -1 -1\n",
			j.ID, j.SubmitTime, j.WaitTime, j.RunTime, j.RequestedProcs,
			j.RequestedProcs, j.RequestedTime, j.RequestedMemory, j.Status,
			j.UserID, j.GroupID, j.Executable, j.QueueID, j.PartitionID)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
