package job

import (
	"bytes"
	"testing"
)

// FuzzParseSWF hardens the archive-trace loader against arbitrary input:
// it must never panic, every job it accepts must validate, and one
// write/parse cycle must reach a fixed point — re-writing what a parse
// produced and parsing it again loses nothing. (The FIRST write may drop
// jobs whose fractional fields round to unusable values — %.0f turns a
// 0.4-second runtime into 0 — so the fixed-point property is asserted
// from the first re-parse onward.) The seed corpus below is checked in
// alongside testdata/fuzz, and CI runs this target as a short smoke.
func FuzzParseSWF(f *testing.F) {
	seeds := []string{
		"; MaxProcs: 128\n; UnixStartTime: 0\n1 0 10 3600 4 -1 -1 4 7200 -1 1 3 1 2 1 1 -1 -1\n",
		"1 0 -1 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n2 5 -1 30 2 -1 -1 2 40 -1 1 1 1 1 1 1 -1 -1\n",
		"; comment only, no records\n",
		"",
		"not an swf line",
		"1 2 3\n",
		"1 0 0 0 0 -1 -1 0 0 -1 1 0 0 0 1 1 -1 -1\n",    // unusable: skipped
		"1 0 0 60 4 -1 -1 0 0 -1 1 0 0 0 1 1 -1 -1\n",   // request fallbacks
		"1 -5 0 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n", // negative submit: skipped
		"1 0 0 1e3 1 -1 -1 1 2.5e2 -1 1 0 0 0 1 1 -1 -1\n",
		// Real Parallel Workloads Archive headers: the full directive set
		// (SDSC-SP2 style), a MaxNodes-only system, and malformed values.
		"; Version: 2.2\n; Computer: IBM SP2\n; MaxJobs: 73496\n; MaxNodes: 128\n; MaxProcs: 128\n; UnixStartTime: 893683200\n1 0 10 3600 4 -1 -1 4 7200 -1 1 3 1 2 1 1 -1 -1\n",
		"; MaxNodes: 64\n1 0 -1 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n",
		"; MaxProcs: not-a-number\n; UnixStartTime: -9999999999\n; Computer:\n1 0 -1 60 1 -1 -1 1 60 -1 1 0 0 0 1 1 -1 -1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, jobs, err := ParseSWF(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("job %d failed validation after an accepted parse: %v", i, err)
			}
		}
		var buf bytes.Buffer
		if err := WriteSWF(&buf, hdr, jobs); err != nil {
			t.Fatalf("write of parsed jobs failed: %v", err)
		}
		_, again, err := ParseSWF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written output failed: %v\noutput:\n%s", err, buf.Bytes())
		}
		var buf2 bytes.Buffer
		if err := WriteSWF(&buf2, hdr, again); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		_, final, err := ParseSWF(bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatalf("second re-parse failed: %v", err)
		}
		if len(final) != len(again) {
			t.Fatalf("write/parse not a fixed point: %d jobs became %d", len(again), len(final))
		}
		for i := range final {
			if final[i].ID != again[i].ID || final[i].RequestedProcs != again[i].RequestedProcs ||
				final[i].UserID != again[i].UserID {
				t.Fatalf("job %d drifted across the fixed point: %+v vs %+v", i, again[i], final[i])
			}
		}
	})
}
