package job

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const sampleSWF = `; MaxProcs: 128
; Computer: test cluster
1 0 5 100 4 -1 -1 4 120 -1 1 3 1 7 1 0 -1 -1
2 10 0 50 8 -1 -1 8 60 -1 1 4 1 7 1 0 -1 -1
3 20 -1 0 1 -1 -1 0 0 -1 1 5 1 7 1 0 -1 -1
`

func TestParseSWF(t *testing.T) {
	hdr, jobs, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if hdr.MaxProcs != 128 {
		t.Errorf("MaxProcs = %d, want 128", hdr.MaxProcs)
	}
	if len(hdr.Comments) != 2 {
		t.Errorf("comments = %d, want 2", len(hdr.Comments))
	}
	// Job 3 requests 0 processors even after fallback -> skipped.
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	j := jobs[0]
	if j.ID != 1 || j.SubmitTime != 0 || j.RunTime != 100 ||
		j.RequestedProcs != 4 || j.RequestedTime != 120 || j.UserID != 3 {
		t.Errorf("job 1 parsed wrong: %+v", j)
	}
	if jobs[1].UserID != 4 {
		t.Errorf("job 2 user = %d, want 4", jobs[1].UserID)
	}
}

func TestParseSWFFallbacks(t *testing.T) {
	// Requested procs/time absent (-1): fall back to used procs and runtime.
	const line = "1 0 0 100 16 -1 -1 -1 -1 -1 1 2 1 1 1 0 -1 -1\n"
	_, jobs, err := ParseSWF(strings.NewReader(line))
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(jobs))
	}
	if jobs[0].RequestedProcs != 16 {
		t.Errorf("RequestedProcs = %d, want fallback 16", jobs[0].RequestedProcs)
	}
	if jobs[0].RequestedTime != 100 {
		t.Errorf("RequestedTime = %g, want fallback 100", jobs[0].RequestedTime)
	}
}

func TestParseSWFHeaderDirectives(t *testing.T) {
	const data = `; Version: 2.2
; Computer: IBM SP2
; MaxJobs: 73496
; MaxRecords: 73496
; MaxNodes: 128
; MaxProcs: 128
; UnixStartTime: 893683200
1 0 5 100 4 -1 -1 4 120 -1 1 3 1 7 1 0 -1 -1
`
	hdr, jobs, err := ParseSWF(strings.NewReader(data))
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if hdr.Version != "2.2" || hdr.Computer != "IBM SP2" || hdr.MaxJobs != 73496 ||
		hdr.MaxRecords != 73496 || hdr.MaxNodes != 128 || hdr.MaxProcs != 128 ||
		hdr.UnixStartTime != 893683200 {
		t.Fatalf("directives extracted wrong: %+v", hdr)
	}
	if len(hdr.Comments) != 7 {
		t.Fatalf("comments = %d, want all 7 directives kept verbatim", len(hdr.Comments))
	}
	// Directives survive a write/parse round trip: they ride Comments, so
	// WriteSWF (which only rewrites MaxProcs) loses none of them.
	var buf bytes.Buffer
	if err := WriteSWF(&buf, hdr, jobs); err != nil {
		t.Fatalf("WriteSWF: %v", err)
	}
	hdr2, _, err := ParseSWF(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if hdr2.Version != hdr.Version || hdr2.Computer != hdr.Computer ||
		hdr2.MaxJobs != hdr.MaxJobs || hdr2.MaxRecords != hdr.MaxRecords ||
		hdr2.MaxNodes != hdr.MaxNodes || hdr2.MaxProcs != hdr.MaxProcs ||
		hdr2.UnixStartTime != hdr.UnixStartTime {
		t.Fatalf("directives drifted across round trip:\n got %+v\nwant %+v", hdr2, hdr)
	}

	// Malformed directive values are ignored, not fatal.
	bad := "; MaxNodes: many\n; UnixStartTime: later\n; MaxJobs: -3e2\n"
	hdr3, _, err := ParseSWF(strings.NewReader(bad))
	if err != nil {
		t.Fatalf("ParseSWF on malformed directives: %v", err)
	}
	if hdr3.MaxNodes != 0 || hdr3.UnixStartTime != 0 || hdr3.MaxJobs != 0 {
		t.Fatalf("malformed directives produced values: %+v", hdr3)
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, _, err := ParseSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short record must error")
	}
	if _, _, err := ParseSWF(strings.NewReader(strings.Repeat("x ", 18) + "\n")); err == nil {
		t.Error("non-numeric record must error")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var jobs []*Job
	for i := 1; i <= 200; i++ {
		j := New(i, float64(i*10), float64(1+rng.Intn(5000)), 1+rng.Intn(64), float64(1+rng.Intn(6000)))
		j.UserID = rng.Intn(20)
		j.GroupID = rng.Intn(5)
		j.Executable = rng.Intn(9)
		j.QueueID = 1
		j.PartitionID = 1
		jobs = append(jobs, j)
	}
	var buf bytes.Buffer
	hdr := SWFHeader{MaxProcs: 256, Comments: []string{"UnixStartTime: 0"}}
	if err := WriteSWF(&buf, hdr, jobs); err != nil {
		t.Fatalf("WriteSWF: %v", err)
	}
	hdr2, jobs2, err := ParseSWF(&buf)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if hdr2.MaxProcs != 256 {
		t.Errorf("round-trip MaxProcs = %d, want 256", hdr2.MaxProcs)
	}
	if len(jobs2) != len(jobs) {
		t.Fatalf("round-trip jobs = %d, want %d", len(jobs2), len(jobs))
	}
	for i, j := range jobs {
		g := jobs2[i]
		if g.ID != j.ID || g.SubmitTime != j.SubmitTime || g.RunTime != j.RunTime ||
			g.RequestedProcs != j.RequestedProcs || g.RequestedTime != j.RequestedTime ||
			g.UserID != j.UserID || g.GroupID != j.GroupID || g.Executable != j.Executable {
			t.Fatalf("job %d mismatch after round trip:\n got %+v\nwant %+v", i, g, j)
		}
	}
}
