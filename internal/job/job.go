// Package job defines the batch-job model used throughout the scheduler:
// the job attributes of Table I in the RLScheduler paper, scheduling state,
// and the Standard Workload Format (SWF) encoding used by the Parallel
// Workloads Archive.
package job

import (
	"errors"
	"fmt"
)

// Job is a single batch job. Static attributes follow the SWF field
// definitions; scheduling state (StartTime/EndTime) is filled in by the
// simulator. Times are seconds relative to the trace origin.
type Job struct {
	// ID is the job's position in the trace (1-based in SWF files).
	ID int
	// SubmitTime is the submission timestamp in seconds.
	SubmitTime float64
	// WaitTime, as recorded in the source trace (informational; the
	// simulator recomputes waits). Negative means unknown.
	WaitTime float64
	// RunTime is the job's actual execution time in seconds. The simulator
	// uses it to advance the clock but never exposes it to schedulers.
	RunTime float64
	// RequestedProcs is the number of processors the job asks for.
	RequestedProcs int
	// RequestedTime is the user's runtime estimate (upper bound), the only
	// duration visible to schedulers.
	RequestedTime float64
	// RequestedMemory is the requested memory per processor in KB
	// (informational). Negative means unknown.
	RequestedMemory float64
	// Status is the SWF completion status (1 = completed). Negative means
	// unknown.
	Status int
	// UserID identifies the submitting user (fairness metrics group by it).
	UserID int
	// GroupID identifies the submitting group.
	GroupID int
	// Executable identifies the application binary.
	Executable int
	// QueueID is the SWF queue number.
	QueueID int
	// PartitionID is the SWF partition number.
	PartitionID int

	// StartTime is set by the simulator when the job begins execution.
	// A negative value means "not started".
	StartTime float64
	// EndTime is StartTime + RunTime once the job has been started.
	EndTime float64
	// Allocated lists the node IDs assigned to the job while running.
	Allocated []int
}

// New returns a job with the mandatory attributes set and scheduling state
// cleared. RequestedTime defaults to RunTime when estimate <= 0, mirroring
// the common SWF convention.
func New(id int, submit, runtime float64, procs int, estimate float64) *Job {
	if estimate <= 0 {
		estimate = runtime
	}
	return &Job{
		ID:             id,
		SubmitTime:     submit,
		WaitTime:       -1,
		RunTime:        runtime,
		RequestedProcs: procs,
		RequestedTime:  estimate,
		Status:         1,
		UserID:         -1,
		GroupID:        -1,
		Executable:     -1,
		QueueID:        -1,
		PartitionID:    -1,
		StartTime:      -1,
		EndTime:        -1,
	}
}

// Validate reports whether the job's static attributes are usable by the
// simulator.
func (j *Job) Validate() error {
	switch {
	case j == nil:
		return errors.New("job: nil job")
	case j.SubmitTime < 0:
		return fmt.Errorf("job %d: negative submit time %g", j.ID, j.SubmitTime)
	case j.RunTime < 0:
		return fmt.Errorf("job %d: negative run time %g", j.ID, j.RunTime)
	case j.RequestedProcs <= 0:
		return fmt.Errorf("job %d: non-positive requested processors %d", j.ID, j.RequestedProcs)
	case j.RequestedTime <= 0:
		return fmt.Errorf("job %d: non-positive requested time %g", j.ID, j.RequestedTime)
	}
	return nil
}

// Reset clears scheduling state so the job can be simulated again.
func (j *Job) Reset() {
	j.StartTime = -1
	j.EndTime = -1
	j.Allocated = nil
}

// Started reports whether the simulator has started the job.
func (j *Job) Started() bool { return j.StartTime >= 0 }

// Wait returns the queuing delay of a started job.
func (j *Job) Wait() float64 {
	if !j.Started() {
		return 0
	}
	return j.StartTime - j.SubmitTime
}

// Turnaround returns wait + execution time of a started job.
func (j *Job) Turnaround() float64 {
	if !j.Started() {
		return 0
	}
	return j.EndTime - j.SubmitTime
}

// Slowdown returns turnaround divided by runtime. Jobs with zero runtime
// report their raw turnaround plus one so the ratio stays finite.
func (j *Job) Slowdown() float64 {
	if !j.Started() {
		return 0
	}
	rt := j.RunTime
	if rt <= 0 {
		return j.Turnaround() + 1
	}
	return j.Turnaround() / rt
}

// BoundedSlowdown returns max((wait+run)/max(run, threshold), 1), the
// bounded-slowdown metric of the paper with the given interactive threshold
// (the paper uses 10 seconds).
func (j *Job) BoundedSlowdown(threshold float64) float64 {
	if !j.Started() {
		return 0
	}
	den := j.RunTime
	if den < threshold {
		den = threshold
	}
	if den <= 0 {
		return 1
	}
	s := j.Turnaround() / den
	if s < 1 {
		return 1
	}
	return s
}

// Clone returns a deep copy of the job with scheduling state cleared.
func (j *Job) Clone() *Job {
	c := *j
	c.Reset()
	return &c
}

// String implements fmt.Stringer with the attributes schedulers can see.
func (j *Job) String() string {
	return fmt.Sprintf("job{id=%d submit=%.0f req=%.0fs x %dp user=%d}",
		j.ID, j.SubmitTime, j.RequestedTime, j.RequestedProcs, j.UserID)
}
