package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the WAL decoder and replays
// whatever decodes into a fresh tracker: the decoder must never panic,
// never consume past its input, and only ever hand back records that
// survive the length + CRC + JSON gauntlet — which the replay path must
// then absorb without corrupting the tracker (Report stays callable).
func FuzzWALReplay(f *testing.F) {
	data, _ := walTestBatches(f)
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add(data[:len(data)-1])
	f.Add([]byte{})
	f.Add([]byte("not a wal"))
	drain, err := appendWALRecord(nil, &walRecord{Kind: "drain", Cluster: "a"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(drain)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed := decodeWALRecords(data)
		if consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		d := bareDurability()
		for i := range recs {
			d.applyRecord(&recs[i])
		}
		d.fairness.Report()
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpora under
// testdata/fuzz from the real encoders. Gated behind an env var so a
// normal test run never rewrites repository files:
//
//	RLSCHED_WRITE_CORPUS=1 go test ./internal/serve/ -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("RLSCHED_WRITE_CORPUS") == "" {
		t.Skip("set RLSCHED_WRITE_CORPUS=1 to regenerate the fuzz seed corpora")
	}
	write := func(target, name string, data []byte) {
		t.Helper()
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, _ := walTestBatches(t)
	write("FuzzWALReplay", "batch-stream", data)
	write("FuzzWALReplay", "torn-tail", data[:len(data)-7])
	drain, err := appendWALRecord(nil, &walRecord{Kind: "drain", Cluster: "a"})
	if err != nil {
		t.Fatal(err)
	}
	write("FuzzWALReplay", "drain-record", drain)

	d := bareDurability()
	seq := int64(1)
	if _, err := d.commitBatch("c", &seq, []walCluster{
		{Name: "a", Done: []wireDone{{UserID: 7, Wait: 9000, Run: 60}}},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	d.drained["b"] = true
	d.mu.Lock()
	snap, err := json.Marshal(d.snapshotLocked())
	d.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	write("FuzzSnapshotRestore", "live-snapshot", snap)
	write("FuzzSnapshotRestore", "empty-v1", []byte(`{"version":1}`))
}

// FuzzSnapshotRestore throws arbitrary bytes at the snapshot decoder:
// invalid payloads must error (never panic), and anything that decodes
// must import into a fresh tracker that stays usable.
func FuzzSnapshotRestore(f *testing.F) {
	d := bareDurability()
	seq := int64(1)
	if _, err := d.commitBatch("c", &seq, []walCluster{
		{Name: "a", Done: []wireDone{{UserID: 7, Wait: 9000, Run: 60}}},
		{Name: "b", Done: []wireDone{{UserID: 3, Wait: 12, Run: 600}}},
	}, []int{0, 1}); err != nil {
		f.Fatal(err)
	}
	d.drained["b"] = true
	d.mu.Lock()
	seed, err := json.Marshal(d.snapshotLocked())
	d.mu.Unlock()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"users":[{"user_id":-1,"sum":1e308,"n":-3,"clusters":[{"cluster":"a"}]}]}`))
	f.Add([]byte("{"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		d := bareDurability()
		d.importSnapshot(snap)
		d.fairness.Report()
	})
}
