package serve

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// Decision cache (DESIGN.md §13). Fleet clusters poll the daemon with
// queue states that change far more slowly than they poll: between
// arrivals and completions a cluster posts the same queue again and again,
// and /place re-scores the same (queue, job) pair against every shard
// engine. Decisions are pure functions of (engine, state) — the engines
// are stateless by the Engine contract — so identical keys can skip the
// forward pass entirely.
//
// The key is an exact binary encoding of everything a decision depends
// on: a generation counter (bumped on every /reload, so a swapped engine
// can never serve another engine's answers), the shard the engine belongs
// to (-1 for the base engine), and the full queue state — clock, view,
// queue length, score request, and every visible job's wire-settable
// fields. Exact matching means a cache hit returns byte-for-byte the
// decision the engine would have produced; there is no approximation to
// tune and nothing to invalidate beyond the generation bump.

// cacheEntry is one cached answer: the decision plus the policy name that
// produced it (surfaced in the response of an all-hit request).
type cacheEntry struct {
	dec    Decision
	policy string
}

// decisionCache is a bounded exact-match cache in front of the engines.
// Eviction is FIFO over a fixed ring of keys: the cache is a recency
// window, not an LRU — the workload (clusters re-posting their current
// queue) re-inserts hot keys naturally, and FIFO keeps the lock hold
// times flat.
type decisionCache struct {
	capacity int
	gen      atomic.Uint64
	metrics  *Metrics

	mu      sync.Mutex
	entries map[string]cacheEntry
	ring    []string
	head    int
}

func newDecisionCache(capacity int, m *Metrics) *decisionCache {
	return &decisionCache{
		capacity: capacity,
		metrics:  m,
		entries:  make(map[string]cacheEntry, capacity),
		ring:     make([]string, 0, capacity),
	}
}

// invalidate makes every cached decision unreachable by bumping the key
// generation. Stale entries are not swept eagerly; the FIFO ring retires
// them as new keys arrive.
func (c *decisionCache) invalidate() { c.gen.Add(1) }

// appendCacheKey encodes one queue state's cache identity onto buf. tag is
// the shard index the serving engine belongs to (-1 for the base engine),
// keeping per-shard engines in disjoint key spaces within a generation.
func (c *decisionCache) appendCacheKey(buf []byte, tag int, st *QueueState) []byte {
	buf = binary.AppendUvarint(buf, c.gen.Load())
	buf = binary.AppendVarint(buf, int64(tag))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Now))
	buf = binary.AppendVarint(buf, int64(st.View.FreeProcs))
	buf = binary.AppendVarint(buf, int64(st.View.TotalProcs))
	buf = binary.AppendVarint(buf, int64(st.QueueLen))
	if st.WantScores {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Jobs)))
	for _, j := range st.Jobs {
		buf = binary.AppendVarint(buf, int64(j.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(j.SubmitTime))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(j.RequestedTime))
		buf = binary.AppendVarint(buf, int64(j.RequestedProcs))
		buf = binary.AppendVarint(buf, int64(j.UserID))
	}
	return buf
}

// get returns the cached answer for key, counting the hit or miss.
func (c *decisionCache) get(key string) (cacheEntry, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.metrics.CacheHits.Add(1)
	} else {
		c.metrics.CacheMisses.Add(1)
	}
	return e, ok
}

// put stores one answer, evicting the oldest inserted key at capacity.
// The cached Decision (including its Scores slice) is shared by every
// future hit; engines return fresh slices and readers never mutate them.
func (c *decisionCache) put(key string, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = e
		return
	}
	if len(c.ring) == c.capacity {
		delete(c.entries, c.ring[c.head])
		c.ring[c.head] = key
		c.head = (c.head + 1) % c.capacity
	} else {
		c.ring = append(c.ring, key)
	}
	c.entries[key] = e
}

// decideCached is batcher.Decide behind the decision cache: cached states
// are answered without touching the batcher, misses go through it in one
// sub-batch and are stored on the way out. With the cache disabled this
// IS batcher.Decide — the serve path stays byte-identical. tag is the
// batcher's shard index (-1 for the base engine).
func (s *Server) decideCached(ctx context.Context, batcher *Batcher, tag int, states []*QueueState) ([]Decision, string, error) {
	if s.cache == nil {
		return batcher.Decide(ctx, states)
	}
	keys := make([]string, len(states))
	decs := make([]Decision, len(states))
	var missIdx []int
	var keyBuf []byte
	policy := ""
	for i, st := range states {
		keyBuf = s.cache.appendCacheKey(keyBuf[:0], tag, st)
		keys[i] = string(keyBuf)
		if e, ok := s.cache.get(keys[i]); ok {
			decs[i] = e.dec
			policy = e.policy
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) == 0 {
		// Every cached answer came from the current generation's engine,
		// so the engine's name now is the policy that produced them.
		return decs, batcher.Engine().Name(), nil
	}
	missStates := make([]*QueueState, len(missIdx))
	for k, i := range missIdx {
		missStates[k] = states[i]
	}
	missDecs, policy, err := batcher.Decide(ctx, missStates)
	if err != nil {
		return nil, policy, err
	}
	for k, i := range missIdx {
		decs[i] = missDecs[k]
		s.cache.put(keys[i], cacheEntry{dec: missDecs[k], policy: policy})
	}
	return decs, policy, nil
}
