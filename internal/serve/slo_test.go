package serve

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowEngine answers Pick 0 after an adjustable delay — the synthetic
// overload source for ladder tests.
type slowEngine struct{ delay atomic.Int64 }

func (e *slowEngine) Name() string { return "slow" }
func (e *slowEngine) MaxJobs() int { return 0 }
func (e *slowEngine) DecideBatch(states []*QueueState, out []Decision) {
	if d := time.Duration(e.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	for i := range out {
		out[i] = Decision{Pick: 0}
	}
}

// TestSLOMonitorLadderFakeClock pins the monitor's escalation and
// hysteresis recovery against an injected clock: 0→1→2 under a sustained
// p99 breach, one rung back per RecoverAfter streak once the slow samples
// age out of the window.
func TestSLOMonitorLadderFakeClock(t *testing.T) {
	m := newSLOMonitor(SLOConfig{
		P99Budget: 10 * time.Millisecond, Window: 10 * time.Second,
		EscalateAfter: 2, RecoverAfter: 2,
	}, nil, nil)
	now := 0.0
	m.clock = func() float64 { return now }

	// No samples: p99 is 0, every evaluation is healthy.
	for i := 0; i < 3; i++ {
		if got := m.evalOnce(); got != 0 {
			t.Fatalf("idle eval %d: level %d, want 0", i, got)
		}
	}

	for i := 0; i < 100; i++ {
		m.observe("/v1/decide", 50*time.Millisecond)
	}
	want := []int{0, 1, 1, 2} // EscalateAfter 2: two bad evals per rung
	for i, w := range want {
		if got := m.evalOnce(); got != w {
			t.Fatalf("breach eval %d: level %d, want %d", i, got, w)
		}
	}
	if got := m.breaches.Load(); got != 4 {
		t.Fatalf("breaches = %d, want 4 (one per overloaded eval)", got)
	}
	if got := m.Level(); got != 2 {
		t.Fatalf("Level() = %d, want 2", got)
	}

	// Jump past the window: the slow samples expire, p99 drops to 0, and
	// the ladder descends one rung per RecoverAfter healthy evals.
	now = 20
	want = []int{2, 1, 1, 0}
	for i, w := range want {
		if got := m.evalOnce(); got != w {
			t.Fatalf("recovery eval %d: level %d, want %d", i, got, w)
		}
	}
	if got := m.breaches.Load(); got != 4 {
		t.Fatalf("breaches moved to %d during recovery", got)
	}
}

// TestSLOMonitorQueueSignal pins the queue-depth overload signal: healthy
// latency but a deep batcher queue must still climb the ladder.
func TestSLOMonitorQueueSignal(t *testing.T) {
	depth := 0
	m := newSLOMonitor(SLOConfig{
		P99Budget: time.Second, Window: 10 * time.Second,
		QueueHigh: 8, EscalateAfter: 1, RecoverAfter: 1,
	}, func() int { return depth }, nil)
	now := 0.0
	m.clock = func() float64 { return now }
	m.observe("/v1/decide", time.Millisecond)

	if got := m.evalOnce(); got != 0 {
		t.Fatalf("shallow queue: level %d, want 0", got)
	}
	depth = 8
	if got := m.evalOnce(); got != 1 {
		t.Fatalf("deep queue: level %d, want 1", got)
	}
	depth = 0
	if got := m.evalOnce(); got != 0 {
		t.Fatalf("drained queue: level %d, want 0", got)
	}
}

// TestSLOMonitorProm pins the exported families: the level gauge, the
// breach counter, and per-endpoint windowed quantiles.
func TestSLOMonitorProm(t *testing.T) {
	m := newSLOMonitor(SLOConfig{P99Budget: time.Millisecond}, nil, nil)
	now := 0.0
	m.clock = func() float64 { return now }
	m.observe("/v1/decide", 10*time.Millisecond)
	m.observe("/place", 100*time.Microsecond)
	m.evalOnce()

	var buf bytes.Buffer
	m.writeProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"rlserv_degradation_level 0\n", // EscalateAfter default 3: one breach doesn't climb
		"rlserv_slo_breaches_total 1\n",
		`rlserv_request_latency_seconds{path="/place",quantile="0.99"}`,
		`rlserv_request_latency_seconds{path="/v1/decide",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// decideRequestBody encodes one synthetic queue state as a /v1/decide
// request body.
func decideRequestBody(t *testing.T, queueJobs int) []byte {
	t.Helper()
	return EncodeStates(testStates(t, 1, queueJobs))
}

// sloTestConfig runs the ladder fast: tiny budget, short window, 2ms
// evaluations, two-eval streaks in both directions.
func sloTestConfig() SLOConfig {
	return SLOConfig{
		P99Budget:     2 * time.Millisecond,
		Window:        300 * time.Millisecond,
		EvalEvery:     2 * time.Millisecond,
		EscalateAfter: 2,
		RecoverAfter:  2,
	}
}

// awaitPolicy posts decide requests until the response policy matches,
// returning false on deadline.
func awaitPolicy(t *testing.T, url string, body []byte, want string, deadline time.Duration) bool {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		code, out := postJSON(t, url+"/v1/decide", body)
		if code != 200 {
			t.Fatalf("decide: %d %s", code, out)
		}
		if strings.Contains(string(out), `"policy":"`+want+`"`) {
			return true
		}
	}
	return false
}

// TestDegradationLadderEndToEnd drives a live server through the full
// ladder: a slow engine breaches the budget until /v1/decide degrades to
// the SJF fallback and then to static shedding, /readyz and /healthz flip,
// /metrics reports the level — and once the overload source is gone the
// windowed p99 falls back under budget and full service returns.
func TestDegradationLadderEndToEnd(t *testing.T) {
	eng := &slowEngine{}
	eng.delay.Store(int64(20 * time.Millisecond))
	srv, ts := newTestServer(t, Config{Engine: eng, SLO: sloTestConfig()})
	body := decideRequestBody(t, 4)

	// Sustained slow answers: the ladder must reach shedding.
	if !awaitPolicy(t, ts.URL, body, staticPolicyName, 10*time.Second) {
		t.Fatalf("never reached static shedding (level %d)", srv.sloLevel())
	}
	if code, out := getJSON(t, ts.URL+"/readyz"); code != 503 {
		t.Fatalf("/readyz while shedding: %d %s", code, out)
	}
	if code, out := getJSON(t, ts.URL+"/healthz"); code != 503 {
		t.Fatalf("/healthz at level 2 with default healthz-level: %d %s", code, out)
	}
	if code, out := getJSON(t, ts.URL+"/metrics"); code != 200 ||
		!strings.Contains(string(out), "rlserv_degradation_level 2") {
		t.Fatalf("/metrics while shedding: %d\n%s", code, out)
	}

	// Remove the overload. Shed answers are fast, the slow samples age
	// out of the window, and the ladder walks back to full service.
	eng.delay.Store(0)
	if !awaitPolicy(t, ts.URL, body, "slow", 15*time.Second) {
		t.Fatalf("never recovered to full service (level %d)", srv.sloLevel())
	}
	if code, out := getJSON(t, ts.URL+"/readyz"); code != 200 ||
		!strings.Contains(string(out), "ready policy=slow") {
		t.Fatalf("/readyz after recovery: %d %s", code, out)
	}
	if code, _ := getJSON(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("/healthz after recovery: %d", code)
	}
	if code, out := getJSON(t, ts.URL+"/metrics"); code != 200 ||
		!strings.Contains(string(out), "rlserv_degradation_level 0") {
		t.Fatalf("/metrics after recovery: %d\n%s", code, out)
	}
}

// TestHealthzFlipsWhileSheddingHammer is the -race hammer: concurrent
// decide traffic, health probes, and metric scrapes while the ladder
// climbs under overload, asserting /healthz actually flips unready.
func TestHealthzFlipsWhileSheddingHammer(t *testing.T) {
	eng := &slowEngine{}
	eng.delay.Store(int64(20 * time.Millisecond))
	_, ts := newTestServer(t, Config{Engine: eng, SLO: sloTestConfig()})
	body := decideRequestBody(t, 2)

	var unready atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					postJSON(t, ts.URL+"/v1/decide", body)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if code, _ := getJSON(t, ts.URL+"/healthz"); code == 503 {
					unready.Store(true)
				}
				getJSON(t, ts.URL+"/metrics")
			}
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for !unready.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !unready.Load() {
		t.Fatal("/healthz never flipped unready under sustained overload")
	}
}
