package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rlsched/internal/nn"
	"rlsched/internal/policy"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
)

// writeSnapshot trains nothing: a randomly initialized policy/value pair is
// a perfectly good serving model for round-trip tests.
func writeSnapshot(t *testing.T, dir, kind string, maxObs int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pol, err := nn.NewPolicy(rng, kind, maxObs, sim.JobFeatures)
	if err != nil {
		t.Fatal(err)
	}
	val := nn.NewValueNet(rng, maxObs, sim.JobFeatures, nil)
	path := filepath.Join(dir, kind+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := nn.Snap(pol, val, nil).Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func testStates(t *testing.T, n, queueJobs int) []*QueueState {
	t.Helper()
	states, err := SyntheticStates("Lublin-1", n, queueJobs, 42)
	if err != nil {
		t.Fatal(err)
	}
	return states
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestSnapshotRoundTripThroughLoader proves a snapshot written by the
// training path and loaded by the serve loader picks exactly the jobs the
// offline NetScheduler picks.
func TestSnapshotRoundTripThroughLoader(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"kernel", "mlp-v2"} {
		path := writeSnapshot(t, dir, kind, 32)
		eng, err := LoadEngine(path, "")
		if err != nil {
			t.Fatal(err)
		}
		if eng.Name() != kind {
			t.Fatalf("loaded engine is %q, want %q", eng.Name(), kind)
		}

		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := nn.ReadSnapshot(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		pol, _, err := snap.Materialize(rand.New(rand.NewSource(0)))
		if err != nil {
			t.Fatal(err)
		}
		ref := policy.NewNetScheduler(pol)

		states := testStates(t, 20, 32)
		out := make([]Decision, len(states))
		eng.DecideBatch(states, out)
		for i, st := range states {
			want := ref.Pick(st.Jobs, st.Now, st.View)
			if out[i].Pick != want {
				t.Fatalf("%s state %d: serve picked %d, NetScheduler picked %d",
					kind, i, out[i].Pick, want)
			}
		}
	}
}

// TestHeuristicEngineParity proves every serveable heuristic answers
// exactly like its offline Pick, for single decisions over HTTP.
func TestHeuristicEngineParity(t *testing.T) {
	states := testStates(t, 8, 24)
	for _, h := range sched.Serveable() {
		h := h
		_, ts := newTestServer(t, Config{PolicyName: h.Name, BatchWindow: time.Microsecond})
		for i, st := range states {
			code, out := postJSON(t, ts.URL+"/v1/decide", EncodeStates([]*QueueState{st}))
			if code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", h.Name, code, out)
			}
			var resp struct {
				Pick   int    `json:"pick"`
				Policy string `json:"policy"`
			}
			if err := json.Unmarshal(out, &resp); err != nil {
				t.Fatalf("%s: %v in %s", h.Name, err, out)
			}
			want := h.Pick(st.Jobs, st.Now, st.View)
			if resp.Pick != want || resp.Policy != h.Name {
				t.Fatalf("%s state %d: got pick=%d policy=%q, want pick=%d",
					h.Name, i, resp.Pick, resp.Policy, want)
			}
		}
	}
}

// TestFlexibleAndCompactFormatsAgree sends the same state as canonical
// compact JSON (fast parser) and as verbose object JSON (encoding/json
// fallback) and expects identical decisions.
func TestFlexibleAndCompactFormatsAgree(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "kernel", 16)
	_, ts := newTestServer(t, Config{ModelPath: path, BatchWindow: time.Microsecond})

	st := testStates(t, 1, 16)[0]
	st.WantScores = true
	compact := EncodeStates([]*QueueState{st})

	type jobObj struct {
		ID       int     `json:"id"`
		Submit   float64 `json:"submit_time"`
		ReqTime  float64 `json:"requested_time"`
		ReqProcs int     `json:"requested_procs"`
		UserID   int     `json:"user_id"`
	}
	verbose := map[string]interface{}{
		"now":         st.Now,
		"free_procs":  st.View.FreeProcs,
		"total_procs": st.View.TotalProcs,
		"queue_len":   st.QueueLen,
		"scores":      true,
	}
	var jobs []jobObj
	for _, j := range st.Jobs {
		jobs = append(jobs, jobObj{j.ID, j.SubmitTime, j.RequestedTime, j.RequestedProcs, j.UserID})
	}
	verbose["jobs"] = jobs
	verboseBody, err := json.Marshal(verbose)
	if err != nil {
		t.Fatal(err)
	}

	code1, out1 := postJSON(t, ts.URL+"/v1/decide", compact)
	code2, out2 := postJSON(t, ts.URL+"/v1/decide", verboseBody)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("status %d / %d: %s / %s", code1, code2, out1, out2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("compact and verbose answers differ:\n%s\n%s", out1, out2)
	}
	if !bytes.Contains(out1, []byte(`"scores":[`)) {
		t.Fatalf("scores requested but missing: %s", out1)
	}
}

// TestBatchRequest proves the states form answers every state, in order,
// identically to individual requests.
func TestBatchRequest(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "kernel", 32)
	_, ts := newTestServer(t, Config{ModelPath: path, BatchWindow: time.Microsecond})

	states := testStates(t, 9, 32)
	code, out := postJSON(t, ts.URL+"/v1/decide", EncodeStates(states))
	if code != 200 {
		t.Fatalf("batch status %d: %s", code, out)
	}
	var batch struct {
		Picks []int `json:"picks"`
	}
	if err := json.Unmarshal(out, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Picks) != len(states) {
		t.Fatalf("batch answered %d picks for %d states", len(batch.Picks), len(states))
	}
	for i, st := range states {
		code, out := postJSON(t, ts.URL+"/v1/decide", EncodeStates([]*QueueState{st}))
		if code != 200 {
			t.Fatalf("state %d status %d: %s", i, code, out)
		}
		var single struct {
			Pick int `json:"pick"`
		}
		if err := json.Unmarshal(out, &single); err != nil {
			t.Fatal(err)
		}
		if single.Pick != batch.Picks[i] {
			t.Fatalf("state %d: batch pick %d, single pick %d", i, batch.Picks[i], single.Pick)
		}
	}
}

// TestConcurrentDecideAndReload hammers the daemon from many goroutines
// while the model hot-swaps between a trained snapshot and heuristics.
// Run under -race this is the proof the batcher and reload path are
// data-race-free; zero requests may fail during swaps.
func TestConcurrentDecideAndReload(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "kernel", 32)
	path2 := writeSnapshot(t, dir, "mlp-v2", 32)
	srv, ts := newTestServer(t, Config{ModelPath: path, BatchWindow: 50 * time.Microsecond})

	states := testStates(t, 16, 32)
	bodies := make([][]byte, len(states))
	for i := range states {
		bodies[i] = EncodeStates(states[i : i+1])
	}

	const clients = 8
	const perClient = 60
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				code, out := postJSON(t, ts.URL+"/v1/decide", bodies[(c+i)%len(bodies)])
				if code != http.StatusOK {
					errs <- fmt.Sprintf("client %d req %d: status %d: %s", c, i, code, out)
					return
				}
			}
		}(c)
	}

	reloads := [][]byte{
		[]byte(`{"policy":"SJF"}`),
		[]byte(`{"model":"` + path2 + `"}`),
		[]byte(`{"policy":"F1"}`),
		nil, // bare reload: re-read the original -model path
	}
	for i := 0; i < 12; i++ {
		code, out := postJSON(t, ts.URL+"/reload", reloads[i%len(reloads)])
		if code != http.StatusOK {
			t.Fatalf("reload %d failed: %d %s", i, code, out)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := srv.Metrics().ReloadsTotal.Load(); got != 12 {
		t.Fatalf("reloads_total = %d, want 12", got)
	}
	if srv.Metrics().ErrorsTotal.Load() != 0 {
		t.Fatalf("errors_total = %d, want 0", srv.Metrics().ErrorsTotal.Load())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{PolicyName: "FCFS", BatchWindow: time.Microsecond})
	states := testStates(t, 4, 8)
	for i := 0; i < 3; i++ {
		if code, out := postJSON(t, ts.URL+"/v1/decide", EncodeStates(states)); code != 200 {
			t.Fatalf("decide: %d %s", code, out)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, s := range []string{
		"rlserv_decisions_total 12",
		"rlserv_requests_total 3",
		"rlserv_model_info{policy=\"FCFS\"} 1",
		"rlserv_decision_latency_seconds_bucket",
		"rlserv_batch_size_count",
	} {
		if !strings.Contains(text, s) {
			t.Errorf("metrics output missing %q:\n%s", s, text)
		}
	}
}

func TestDecideValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{PolicyName: "SJF", BatchWindow: time.Microsecond})
	bad := [][]byte{
		[]byte(`not json`),
		[]byte(`{}`),
		[]byte(`{"now":0,"free_procs":4,"total_procs":8,"jobs":[]}`),
		[]byte(`{"now":0,"free_procs":4,"total_procs":0,"jobs":[[0,60,2]]}`),
		[]byte(`{"now":0,"free_procs":9,"total_procs":8,"jobs":[[0,60,2]]}`),
		[]byte(`{"now":0,"free_procs":4,"total_procs":8,"jobs":[[0,60,0]]}`),
		[]byte(`{"now":0,"free_procs":4,"total_procs":8,"jobs":[[0,0,2]]}`),
	}
	for i, body := range bad {
		code, _ := postJSON(t, ts.URL+"/v1/decide", body)
		if code != http.StatusBadRequest {
			t.Errorf("bad body %d got status %d, want 400", i, code)
		}
	}
	// GET is not a decision.
	resp, err := http.Get(ts.URL + "/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/decide = %d, want 405", resp.StatusCode)
	}
}

// TestQueueLenCutoff proves queues longer than the policy window are cut
// off in FCFS order, mirroring the simulator's MAX_OBSV_SIZE behaviour.
func TestQueueLenCutoff(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "kernel", 8)
	eng, err := LoadEngine(path, "")
	if err != nil {
		t.Fatal(err)
	}
	st := testStates(t, 1, 20)[0] // 20 jobs, window is 8
	out := make([]Decision, 1)
	eng.DecideBatch([]*QueueState{st}, out)
	if out[0].Pick < 0 || out[0].Pick >= 8 {
		t.Fatalf("pick %d outside the 8-job window", out[0].Pick)
	}
}

// TestLoadGenAgainstServer runs the full load-generator loop briefly
// against an httptest daemon — end-to-end coverage of the compact
// encoding, the fast parser, the batcher, and the report plumbing.
func TestLoadGenAgainstServer(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "kernel", 128)
	_, ts := newTestServer(t, Config{ModelPath: path})

	report, err := RunLoad(LoadConfig{
		Addr:         ts.URL,
		Conns:        2,
		Duration:     300 * time.Millisecond,
		QueueJobs:    128,
		StatesPerReq: 4,
		Bodies:       8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("load run had %d errors", report.Errors)
	}
	if report.Decisions == 0 {
		t.Fatal("load run made no decisions")
	}
	t.Logf("loadgen: %v", report)
}

// TestMaxStatesPerRequest proves the batch-size guard rejects oversized
// requests instead of forcing an unbounded forward pass.
func TestMaxStatesPerRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PolicyName: "SJF", BatchWindow: time.Microsecond, MaxStatesPerRequest: 4,
	})
	states := testStates(t, 5, 2)
	code, out := postJSON(t, ts.URL+"/v1/decide", EncodeStates(states))
	if code != http.StatusBadRequest || !bytes.Contains(out, []byte("limit 4")) {
		t.Fatalf("oversized batch got %d %s, want 400 naming the limit", code, out)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/decide", EncodeStates(states[:4])); code != http.StatusOK {
		t.Fatalf("at-limit batch got %d, want 200", code)
	}
}

// TestDecideAfterClose proves a shut-down batcher reports an error instead
// of panicking on a closed queue.
func TestDecideAfterClose(t *testing.T) {
	eng := NewHeuristicEngine(sched.SJF())
	b := NewBatcher(eng, BatcherConfig{Workers: 1})
	states := testStates(t, 1, 4)
	if _, _, err := b.Decide(context.Background(), states); err != nil {
		t.Fatalf("decide before close: %v", err)
	}
	b.Close()
	if _, _, err := b.Decide(context.Background(), states); err == nil {
		t.Fatal("decide after close should error")
	}
}

// TestSyntheticBodiesMatchStates: the allocation-free body builder must
// produce byte-identical request bodies to encoding the retained states —
// same RNG stream, same wire format, one reused queue buffer.
func TestSyntheticBodiesMatchStates(t *testing.T) {
	for _, statesPerReq := range []int{1, 3} { // bare state and {"states":[...]} wire shapes
		cfg := LoadConfig{Preset: "Lublin-1", QueueJobs: 32, Bodies: 6, StatesPerReq: statesPerReq, Seed: 9}.withDefaults()
		bodies, err := syntheticBodies(cfg)
		if err != nil {
			t.Fatal(err)
		}
		states, err := SyntheticStates(cfg.Preset, cfg.Bodies*cfg.StatesPerReq, cfg.QueueJobs, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bodies {
			want := EncodeStates(states[i*cfg.StatesPerReq : (i+1)*cfg.StatesPerReq])
			if string(bodies[i]) != string(want) {
				t.Fatalf("statesPerReq=%d body %d differs:\n%s\nvs\n%s", statesPerReq, i, bodies[i], want)
			}
		}
	}
}

// TestPolicyEngineSyncFrom: refreshing weights in place from a trained
// same-architecture policy must change the engine's scores to the donor's.
func TestPolicyEngineSyncFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := nn.NewKernelNet(rng, sim.DefaultMaxObserve, sim.JobFeatures, nil)
	donor := nn.NewKernelNet(rng, sim.DefaultMaxObserve, sim.JobFeatures, nil)
	eng, err := NewPolicyEngine(net)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewPolicyEngine(donor)
	if err != nil {
		t.Fatal(err)
	}
	states, err := SyntheticStates("Lublin-1", 4, 32, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		st.WantScores = true
	}
	before := make([]Decision, len(states))
	eng.DecideBatch(states, before)
	if err := eng.SyncFrom(donor); err != nil {
		t.Fatal(err)
	}
	after := make([]Decision, len(states))
	eng.DecideBatch(states, after)
	wantOut := make([]Decision, len(states))
	want.DecideBatch(states, wantOut)
	changed := false
	for i := range after {
		if after[i].Pick != wantOut[i].Pick {
			t.Fatalf("state %d: pick %d after sync, donor engine picks %d", i, after[i].Pick, wantOut[i].Pick)
		}
		for j := range after[i].Scores {
			if after[i].Scores[j] != wantOut[i].Scores[j] {
				t.Fatalf("state %d score %d differs from donor after SyncFrom", i, j)
			}
			if after[i].Scores[j] != before[i].Scores[j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("SyncFrom left every score unchanged; weights were not refreshed")
	}
	// Architecture mismatch must surface as an error.
	small := nn.NewKernelNet(rng, sim.DefaultMaxObserve, sim.JobFeatures, []int{4})
	if err := eng.SyncFrom(small); err == nil {
		t.Fatal("SyncFrom across architectures must error")
	}
}
