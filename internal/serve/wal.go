package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Write-ahead-log codec (DESIGN.md §13). Every durable event the daemon
// acknowledges — a /place completion batch, a /drain cordon — is appended
// to the current WAL segment as one self-delimiting record:
//
//	uvarint(len(payload)) ‖ payload ‖ crc32c(payload)
//
// The payload is the walRecord JSON. The CRC makes torn writes (a kill -9
// mid-append) detectable: replay consumes records until the first one
// whose length, checksum or JSON fails to decode and drops the tail from
// there — a torn final record is discarded, never applied half-way and
// never a panic. Records after a corrupt one are unreachable by
// construction (the stream is length-prefixed), which is exactly the
// prefix-durability contract: the tracker restores to the last acked
// record the disk retained in full.

// walMaxRecord caps one record's payload. A /place body is capped at
// 8 MiB, so no legitimate record can exceed it; a decoded length above
// the cap is corruption, not data.
const walMaxRecord = 8 << 20

// walRecord is one durable event.
type walRecord struct {
	// Kind discriminates the event: "batch" (a /place completion batch)
	// or "drain" (a /drain cordon).
	Kind string `json:"kind"`
	// Client / Seq carry the batch's dedup identity when the client sent
	// one (Seq nil otherwise): replay re-applies the same monotonic
	// per-client dedup the live path enforced, so a batch logged once is
	// observed exactly once no matter how the client retried around it.
	Client string `json:"client,omitempty"`
	Seq    *int64 `json:"seq,omitempty"`
	// Clusters holds the batch's completed records grouped by reporting
	// cluster. Cluster NAMES, not shard indexes, so a restart under a
	// changed -shard topology maps records onto the members that still
	// exist and drops the rest.
	Clusters []walCluster `json:"clusters,omitempty"`
	// Cluster names the cordoned member of a drain event.
	Cluster string `json:"cluster,omitempty"`
}

// walCluster is one cluster's slice of a completion batch.
type walCluster struct {
	// Name is the reporting cluster.
	Name string `json:"name"`
	// Done holds the completed-job records exactly as posted.
	Done []wireDone `json:"done"`
}

// walTable is the Castagnoli polynomial table (CRC-32C, the checksum
// filesystems and storage formats favor for torn-write detection).
var walTable = crc32.MakeTable(crc32.Castagnoli)

// appendWALRecord encodes one record onto buf.
func appendWALRecord(buf []byte, rec *walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("serve: wal encode: %w", err)
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, walTable)), nil
}

// decodeWALRecords decodes every complete, checksummed record from the
// head of data. It returns the records plus the number of bytes they
// span: consumed < len(data) means a torn or corrupt tail was dropped.
// Arbitrary input never panics (fuzzed by FuzzWALReplay).
func decodeWALRecords(data []byte) (recs []walRecord, consumed int) {
	for consumed < len(data) {
		n, width := binary.Uvarint(data[consumed:])
		if width <= 0 || n > walMaxRecord {
			return recs, consumed
		}
		start := consumed + width
		end := start + int(n) + 4
		if end < start || end > len(data) {
			return recs, consumed
		}
		payload := data[start : start+int(n)]
		if binary.LittleEndian.Uint32(data[start+int(n):end]) != crc32.Checksum(payload, walTable) {
			return recs, consumed
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, consumed
		}
		recs = append(recs, rec)
		consumed = end
	}
	return recs, consumed
}
