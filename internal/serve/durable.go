package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rlsched/internal/fleet"
)

// Durability layer for rlservd fleet mode (DESIGN.md §13). The fairness
// tracker is the daemon's only irreplaceable state: every other answer is
// recomputable from the request, but a user's share history exists nowhere
// else. With -checkpoint-dir set the daemon makes that state crash-proof
// with the classic snapshot + write-ahead-log pair:
//
//   - every acknowledged /place completion batch (and every /drain) is
//     appended to the current WAL segment and fsynced BEFORE it is folded
//     into the tracker — an acked batch is on disk by definition;
//   - every -checkpoint-interval the tracker is exported, written to a
//     temp file and atomically renamed over checkpoint.json; the WAL
//     rotates to a fresh segment first, so the snapshot names the first
//     segment whose records it does NOT contain;
//   - on restart the snapshot is imported and the live segments are
//     replayed through the exact code path live batches take (same dedup,
//     same Observe order), restoring the tracker to the last acked batch
//     the disk retained in full. A torn final record (kill -9 mid-append)
//     is dropped by the codec, never half-applied.
//
// The same struct owns the per-client batch_seq dedup table and the
// drained-shard set even when no directory is configured — exactly-once
// semantics against client retries do not require a disk.

// durableDeps are the server facilities durability needs, passed
// explicitly so tests can drive the layer without a full Server.
type durableDeps struct {
	// fairness is the tracker being made durable (never nil).
	fairness *fleet.FairnessScorer
	// clusterIndex resolves a cluster name to its shard index (-1 when
	// unknown — records for members that no longer exist are dropped).
	clusterIndex func(name string) int
	// clusterName is the inverse, for exporting per-cluster shares.
	clusterName func(idx int) string
	// markDrained re-applies a restored cordon to the serving state.
	markDrained func(idx int)
	// metrics counts WAL appends, checkpoints and deduplicated batches
	// (nil in unit tests).
	metrics *Metrics
}

// durability owns the WAL, the checkpoint loop, the dedup table and the
// drained set. All state transitions (dedup check, WAL append, tracker
// fold) happen under one mutex, so the WAL's record order IS the order
// the tracker observed — the invariant replay correctness rests on.
type durability struct {
	durableDeps
	dir      string
	interval time.Duration

	mu      sync.Mutex
	lastSeq map[string]int64
	drained map[string]bool
	wal     *os.File
	walBuf  []byte
	walErr  error // sticky: a failed append poisons the segment
	seg     uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	ticking  bool
}

// snapshotFile is the checkpoint.json payload: the exported tracker (with
// per-cluster shares keyed by cluster NAME, so a restart under a changed
// shard topology keeps what still applies), the dedup table, the drained
// set, and the first WAL segment the snapshot does not cover.
type snapshotFile struct {
	Version  int              `json:"version"`
	FirstSeg uint64           `json:"first_seg"`
	Events   uint64           `json:"events"`
	GSum     float64          `json:"g_sum"`
	GN       float64          `json:"g_n"`
	Users    []snapUser       `json:"users,omitempty"`
	LastSeq  map[string]int64 `json:"last_seq,omitempty"`
	Drained  []string         `json:"drained,omitempty"`
}

// snapUser is one user's exported share in a snapshot.
type snapUser struct {
	UserID   int         `json:"user_id"`
	Sum      float64     `json:"sum"`
	N        float64     `json:"n"`
	Raw      int64       `json:"raw"`
	Clusters []snapShare `json:"clusters,omitempty"`
}

// snapShare is one user's share on one named cluster.
type snapShare struct {
	Cluster string  `json:"cluster"`
	Sum     float64 `json:"sum"`
	N       float64 `json:"n"`
}

const (
	snapshotName    = "checkpoint.json"
	snapshotVersion = 1
)

func segPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seg))
}

// newDurability builds the layer and, when dir is set, restores any
// previous state from it, opens a fresh WAL segment and starts the
// checkpoint ticker.
func newDurability(dir string, interval time.Duration, deps durableDeps) (*durability, error) {
	d := &durability{
		durableDeps: deps,
		dir:         dir,
		interval:    interval,
		lastSeq:     map[string]int64{},
		drained:     map[string]bool{},
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if dir == "" {
		return d, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	if err := d.restore(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(segPath(dir, d.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open wal: %w", err)
	}
	d.wal = f
	if interval > 0 {
		d.ticking = true
		go func() {
			defer close(d.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := d.checkpoint(); err != nil {
						fmt.Fprintf(os.Stderr, "rlservd: checkpoint: %v\n", err)
					}
				case <-d.stop:
					return
				}
			}
		}()
	}
	return d, nil
}

// decodeSnapshot parses and validates a checkpoint.json payload.
// Arbitrary input never panics (fuzzed by FuzzSnapshotRestore).
func decodeSnapshot(data []byte) (*snapshotFile, error) {
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: snapshot decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	return &snap, nil
}

// restore loads the snapshot (if any), prunes segments it already covers,
// and replays the rest through the live apply path. Called once, before
// the daemon serves, so no locking is needed yet.
func (d *durability) restore() error {
	data, err := os.ReadFile(filepath.Join(d.dir, snapshotName))
	switch {
	case os.IsNotExist(err):
		// Fresh directory: nothing to restore.
	case err != nil:
		return fmt.Errorf("serve: read snapshot: %w", err)
	default:
		snap, err := decodeSnapshot(data)
		if err != nil {
			// A snapshot is renamed into place atomically; failing to parse
			// one means real corruption. Refuse to start rather than
			// silently discard every user's history.
			return err
		}
		d.importSnapshot(snap)
	}

	segs, err := filepath.Glob(filepath.Join(d.dir, "wal-*.log"))
	if err != nil {
		return err
	}
	sort.Strings(segs) // zero-padded names: lexicographic == numeric
	maxSeen := d.seg
	for _, path := range segs {
		var n uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "wal-%d.log", &n); err != nil {
			continue
		}
		if n < d.seg {
			// Covered by the snapshot; left over from a crash between the
			// snapshot rename and the old-segment cleanup.
			os.Remove(path)
			continue
		}
		if n > maxSeen {
			maxSeen = n
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("serve: read wal segment: %w", err)
		}
		recs, consumed := decodeWALRecords(raw)
		if consumed < len(raw) {
			fmt.Fprintf(os.Stderr, "rlservd: wal %s: dropped torn tail (%d of %d bytes)\n",
				filepath.Base(path), len(raw)-consumed, len(raw))
		}
		for i := range recs {
			d.applyRecord(&recs[i])
		}
	}
	// Appending to a segment with a torn tail would strand every later
	// record behind undecodable bytes, so new writes always open the next
	// fresh segment.
	d.seg = maxSeen + 1
	return nil
}

// importSnapshot loads a decoded snapshot into the tracker, the dedup
// table and the drained set. Cluster shares whose name no longer resolves
// are dropped; the user's fleet-wide record is kept either way.
func (d *durability) importSnapshot(snap *snapshotFile) {
	st := fleet.FairnessState{Events: snap.Events, GSum: snap.GSum, GN: snap.GN}
	for _, su := range snap.Users {
		us := fleet.UserShareState{UserID: su.UserID, Sum: su.Sum, N: su.N, Raw: su.Raw}
		for _, cs := range su.Clusters {
			if idx := d.clusterIndex(cs.Cluster); idx >= 0 {
				us.Clusters = append(us.Clusters, fleet.ClusterShareState{Cluster: idx, Sum: cs.Sum, N: cs.N})
			}
		}
		st.Users = append(st.Users, us)
	}
	d.fairness.ImportState(st)
	for c, seq := range snap.LastSeq {
		d.lastSeq[c] = seq
	}
	for _, name := range snap.Drained {
		d.drained[name] = true
		// The snapshot's tracker state already reflects the retirement;
		// only the serving-side cordon needs re-applying.
		if idx := d.clusterIndex(name); idx >= 0 && d.markDrained != nil {
			d.markDrained(idx)
		}
	}
	d.seg = snap.FirstSeg
}

// applyRecord replays one WAL record with the same semantics the live
// path gave it: dedup first, then fold (batch), or cordon + retire
// (drain). Invalid fragments — unknown clusters, negative wait/run — are
// skipped exactly as the live validation would have rejected them.
func (d *durability) applyRecord(rec *walRecord) {
	switch rec.Kind {
	case "batch":
		if rec.Client != "" && rec.Seq != nil {
			if last, ok := d.lastSeq[rec.Client]; ok && *rec.Seq <= last {
				return
			}
			d.lastSeq[rec.Client] = *rec.Seq
		}
		for _, wc := range rec.Clusters {
			idx := d.clusterIndex(wc.Name)
			if idx < 0 {
				continue
			}
			for i := range wc.Done {
				if wc.Done[i].Wait < 0 || wc.Done[i].Run < 0 {
					continue
				}
				dj := wc.Done[i].toJob()
				d.fairness.Observe(idx, &dj)
			}
		}
	case "drain":
		if d.drained[rec.Cluster] {
			return
		}
		d.drained[rec.Cluster] = true
		if idx := d.clusterIndex(rec.Cluster); idx >= 0 {
			if d.markDrained != nil {
				d.markDrained(idx)
			}
			d.fairness.RetireCluster(idx)
		}
	}
}

// appendLocked encodes rec onto the current segment and fsyncs it — the
// ack barrier. A failed append poisons the segment (walErr is sticky): a
// partial record on disk would strand anything written after it, so the
// daemon stops acking batches instead of silently dropping them.
func (d *durability) appendLocked(rec *walRecord) error {
	if d.wal == nil {
		return nil
	}
	if d.walErr != nil {
		return d.walErr
	}
	buf, err := appendWALRecord(d.walBuf[:0], rec)
	if err != nil {
		return err
	}
	d.walBuf = buf[:0]
	if _, err := d.wal.Write(buf); err != nil {
		d.walErr = fmt.Errorf("serve: wal append: %w", err)
		return d.walErr
	}
	if err := d.wal.Sync(); err != nil {
		d.walErr = fmt.Errorf("serve: wal sync: %w", err)
		return d.walErr
	}
	if d.metrics != nil {
		d.metrics.WALRecordsTotal.Add(1)
	}
	return nil
}

// commitBatch makes one /place completion batch durable and folds it into
// the tracker. Returns applied=false (and no state change) when the
// client's batch_seq says the batch was already absorbed — the retry
// dedup that makes the completion feed idempotent. clusters and idxs are
// parallel: idxs[i] is the shard index of clusters[i].
func (d *durability) commitBatch(client string, seq *int64, clusters []walCluster, idxs []int) (applied bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	hasSeq := client != "" && seq != nil
	if hasSeq {
		if last, ok := d.lastSeq[client]; ok && *seq <= last {
			if d.metrics != nil {
				d.metrics.PlaceDedupTotal.Add(1)
			}
			return false, nil
		}
	}
	if len(clusters) > 0 || hasSeq {
		rec := walRecord{Kind: "batch", Client: client, Seq: seq, Clusters: clusters}
		if !hasSeq {
			rec.Client, rec.Seq = "", nil
		}
		if err := d.appendLocked(&rec); err != nil {
			return false, err
		}
	}
	if hasSeq {
		d.lastSeq[client] = *seq
	}
	for k, wc := range clusters {
		for i := range wc.Done {
			dj := wc.Done[i].toJob()
			d.fairness.Observe(idxs[k], &dj)
		}
	}
	return true, nil
}

// commitDrain makes one cordon durable and retires the member's fairness
// state (ClusterRetirer contract: per-cluster shares drop, the fleet-wide
// user record stays). Idempotent — a repeated drain writes nothing.
func (d *durability) commitDrain(name string, idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.drained[name] {
		return nil
	}
	if err := d.appendLocked(&walRecord{Kind: "drain", Cluster: name}); err != nil {
		return err
	}
	d.drained[name] = true
	d.fairness.RetireCluster(idx)
	return nil
}

// snapshotLocked exports the current durable state. Callers hold d.mu, so
// the export is consistent with the WAL rotation around it.
func (d *durability) snapshotLocked() *snapshotFile {
	st := d.fairness.ExportState()
	snap := &snapshotFile{
		Version:  snapshotVersion,
		FirstSeg: d.seg,
		Events:   st.Events,
		GSum:     st.GSum,
		GN:       st.GN,
	}
	for _, us := range st.Users {
		su := snapUser{UserID: us.UserID, Sum: us.Sum, N: us.N, Raw: us.Raw}
		for _, cs := range us.Clusters {
			if name := d.clusterName(cs.Cluster); name != "" {
				su.Clusters = append(su.Clusters, snapShare{Cluster: name, Sum: cs.Sum, N: cs.N})
			}
		}
		snap.Users = append(snap.Users, su)
	}
	if len(d.lastSeq) > 0 {
		snap.LastSeq = make(map[string]int64, len(d.lastSeq))
		for c, s := range d.lastSeq {
			snap.LastSeq[c] = s
		}
	}
	for name := range d.drained {
		snap.Drained = append(snap.Drained, name)
	}
	sort.Strings(snap.Drained)
	return snap
}

// checkpoint writes one atomic snapshot: rotate the WAL to a fresh
// segment, export the tracker (which by the commit ordering contains
// every record of the closed segments), write-temp-then-rename the
// snapshot, and only then delete the segments it covers. A crash at ANY
// point leaves a directory that restores to the same state: before the
// rename the old snapshot plus all segments replay everything; after it,
// stale segments below FirstSeg are ignored and cleaned up on restore.
func (d *durability) checkpoint() error {
	if d.dir == "" {
		return nil
	}
	d.mu.Lock()
	if d.wal != nil {
		d.wal.Close()
	}
	d.seg++
	f, err := os.OpenFile(segPath(d.dir, d.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		d.mu.Unlock()
		return fmt.Errorf("serve: rotate wal: %w", err)
	}
	d.wal, d.walErr = f, nil
	snap := d.snapshotLocked()
	d.mu.Unlock()

	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: snapshot encode: %w", err)
	}
	tmp := filepath.Join(d.dir, snapshotName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(append(data, '\n')); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotName)); err != nil {
		return err
	}
	// Old segments are now redundant; trailing garbage from a crash here
	// is swept by the next restore.
	for seg := snap.FirstSeg; seg > 0; seg-- {
		if err := os.Remove(segPath(d.dir, seg-1)); err != nil {
			break // contiguous from FirstSeg-1 down; first miss ends the run
		}
	}
	if d.metrics != nil {
		d.metrics.CheckpointsTotal.Add(1)
	}
	return nil
}

// close stops the checkpoint ticker, writes a final snapshot (a graceful
// shutdown restores without replay) and releases the WAL.
func (d *durability) close() {
	d.stopOnce.Do(func() { close(d.stop) })
	if d.ticking {
		<-d.done
	}
	if d.dir != "" {
		if err := d.checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "rlservd: final checkpoint: %v\n", err)
		}
	}
	d.mu.Lock()
	if d.wal != nil {
		d.wal.Close()
		d.wal = nil
	}
	d.mu.Unlock()
}
