package serve

import (
	"testing"
)

// FuzzParseRequest is the differential harness for the hand-rolled fast
// parser: on any input, neither parse path may panic, and whenever BOTH
// the fast path and the encoding/json path accept a body they must
// produce identical states (the fast parser is deliberately lenient about
// a few non-JSON spellings like leading zeros, so fast-accepts-json-
// rejects is allowed; the reverse direction — json accepting a canonical
// compact body the fast parser mangles — is what this hunts). The seed
// corpus is checked in under testdata/fuzz and CI runs this target as a
// short smoke.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		`{"now":0,"free_procs":96,"total_procs":128,"jobs":[[0,3600,4],[5,60,2,7],[9,30,1,2,11]]}`,
		`{"states":[{"now":1,"free_procs":8,"total_procs":8,"jobs":[[0,10,1]]},{"jobs":[[0,20,2]],"total_procs":16,"free_procs":0}]}`,
		`{"jobs":[],"total_procs":4,"free_procs":4}`,
		`{"now":-30.5,"queue_len":200,"scores":true,"total_procs":64,"free_procs":1,"jobs":[[-100,1e3,4]]}`,
		`{"jobs":[{"id":7,"submit_time":-30,"requested_time":3600,"requested_procs":4,"user_id":2}],"total_procs":128,"free_procs":96}`,
		`{"states":[]}`,
		`{}`,
		`{"now":}`,
		` { "now" : 5 , "jobs" : [ [ 1 , 2 , 3 ] ] , "total_procs" : 9 , "free_procs" : 2 } `,
		`[1,2,3]`,
		`garbage`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fast := &reqBuf{}
		fastErr := fast.parseFast(data)
		slow := &reqBuf{}
		slowErr := slow.parseSlow(data)
		if fastErr != nil || slowErr != nil {
			return
		}
		if fast.batch != slow.batch {
			t.Fatalf("batch flag diverges: fast %v, slow %v", fast.batch, slow.batch)
		}
		if len(fast.states) != len(slow.states) {
			t.Fatalf("state count diverges: fast %d, slow %d", len(fast.states), len(slow.states))
		}
		for i := range fast.states {
			fs, ss := &fast.states[i], &slow.states[i]
			if fs.Now != ss.Now || fs.View != ss.View || fs.QueueLen != ss.QueueLen || fs.WantScores != ss.WantScores {
				t.Fatalf("state %d header diverges: fast %+v, slow %+v", i, fs, ss)
			}
			fStart, fEnd := fast.ranges[2*i], fast.ranges[2*i+1]
			sStart, sEnd := slow.ranges[2*i], slow.ranges[2*i+1]
			if fEnd-fStart != sEnd-sStart {
				t.Fatalf("state %d job count diverges: fast %d, slow %d", i, fEnd-fStart, sEnd-sStart)
			}
			for k := 0; k < fEnd-fStart; k++ {
				fj, sj := &fast.arena[fStart+k], &slow.arena[sStart+k]
				if fj.ID != sj.ID || fj.SubmitTime != sj.SubmitTime ||
					fj.RequestedTime != sj.RequestedTime ||
					fj.RequestedProcs != sj.RequestedProcs || fj.UserID != sj.UserID ||
					fj.StartTime != sj.StartTime || fj.EndTime != sj.EndTime {
					t.Fatalf("state %d job %d diverges: fast %+v, slow %+v", i, k, *fj, *sj)
				}
			}
		}
	})
}
