package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rlsched/internal/fleet"
	"rlsched/internal/job"
	"rlsched/internal/obs"
	"rlsched/internal/sim"
)

// Fleet mode: the daemon shards one Engine per cluster and answers two
// extra questions. "/v1/decide?cluster=NAME" asks a specific shard's
// policy which queued job runs next — serving sharded by cluster.
// "POST /place" asks the placement layer which cluster an arriving job
// should be routed to: the request carries the job plus each cluster's
// current queue state (the daemon is stateless, like the decision
// endpoint), and the answer comes from a fleet filter/score pipeline whose
// RL-informed plugin scores the job's marginal impact with each shard's
// own serving engine.

// ShardConfig declares one fleet member the daemon serves.
type ShardConfig struct {
	// Name identifies the cluster in /place, /decide?cluster= and
	// /metrics labels.
	Name string
	// Procs is the cluster size (placement rejects cluster states that
	// disagree, catching misrouted reports).
	Procs int
	// Engine overrides ModelPath/PolicyName (test hook), which otherwise
	// load exactly like the daemon's base engine.
	Engine     Engine
	ModelPath  string
	PolicyName string
}

// shard is one served cluster: its own batcher (so /decide load on one
// cluster never queues behind another) behind its own hot-swappable
// engine.
type shard struct {
	name    string
	procs   int
	batcher *Batcher
}

// newShards builds the shard set and the placement router.
func (s *Server) initFleet(cfg Config) error {
	s.migrateMargin = -1
	if len(cfg.Shards) == 0 {
		if cfg.PlaceRouter != "" {
			return fmt.Errorf("serve: place router %q needs fleet shards", cfg.PlaceRouter)
		}
		if cfg.Migrate {
			return fmt.Errorf("serve: -migrate needs fleet shards")
		}
		if cfg.FairWeight != 0 {
			return fmt.Errorf("serve: fairness placement needs fleet shards")
		}
		return nil
	}
	if cfg.Migrate {
		// Negated comparison so NaN is rejected too (a NaN margin would
		// silently answer migrate:false forever). 0 is meaningful — no
		// hysteresis, any strict improvement clears the margin — though
		// the drained-destination gate still applies; the 0.25 default
		// lives in the rlservd flag, not here.
		if !(cfg.MigrateMargin >= 0) {
			return fmt.Errorf("serve: migrate margin must be non-negative, got %g", cfg.MigrateMargin)
		}
		s.migrateMargin = cfg.MigrateMargin
	}
	names := make([]string, 0, len(cfg.Shards))
	for i, sc := range cfg.Shards {
		if sc.Name == "" {
			return fmt.Errorf("serve: shard %d needs a name", i)
		}
		if sc.Procs <= 0 {
			return fmt.Errorf("serve: shard %q needs a positive processor count", sc.Name)
		}
		if _, dup := s.shardByName(sc.Name); dup != nil {
			return fmt.Errorf("serve: duplicate shard name %q", sc.Name)
		}
		eng := sc.Engine
		if eng == nil {
			var err error
			eng, err = LoadEngine(sc.ModelPath, sc.PolicyName)
			if err != nil {
				return fmt.Errorf("serve: shard %q: %w", sc.Name, err)
			}
		}
		s.shards = append(s.shards, &shard{
			name:  sc.Name,
			procs: sc.Procs,
			batcher: NewBatcher(eng, BatcherConfig{
				Workers:  cfg.Workers,
				Window:   cfg.BatchWindow,
				MaxBatch: cfg.MaxBatch,
				OnBatch:  func(states int) { s.metrics.BatchSize.Observe(float64(states)) },
			}),
		})
		names = append(names, sc.Name)
	}
	s.drained = make([]atomic.Bool, len(s.shards))
	s.metrics.RegisterPlaceClusters(names)

	router := cfg.PlaceRouter
	if router == "" {
		router = "engine"
	}
	switch router {
	case "engine":
		// The RL-informed default: each shard's own policy scores the
		// job against the backlog it would join, with a queue-wait
		// prior as tie-breaker.
		s.placer = fleet.NewPipeline("engine-scored",
			[]fleet.Filter{fleet.CapacityFilter{}},
			[]fleet.WeightedScorer{
				{Scorer: &shardEngineScorer{s: s}, Weight: 2},
				{Scorer: fleet.QueueWait{}, Weight: 1},
			})
	case "least-loaded":
		s.placer = fleet.LeastLoadedPipeline()
	case "binpack":
		s.placer = fleet.BinpackPipeline()
	default:
		return fmt.Errorf("serve: unknown place router %q (engine|least-loaded|binpack)", router)
	}
	if !(cfg.FairWeight >= 0) {
		return fmt.Errorf("serve: fairness weight must be non-negative, got %g", cfg.FairWeight)
	}
	if !(cfg.FairWindow >= 0) {
		return fmt.Errorf("serve: fairness window must be non-negative, got %g", cfg.FairWindow)
	}
	if cfg.FairWindow > 0 && cfg.FairWeight == 0 {
		return fmt.Errorf("serve: -fair-window needs -fair-weight > 0")
	}
	if cfg.FairWeight > 0 {
		// The stateful per-user fairness plugin rides on the selected
		// pipeline. Its state grows from the completed-job records clusters
		// post with /place — the serving twin of the fleet simulator's
		// completion feed — and is exported as rlserv_fairness_score.
		s.fairness = fleet.NewFairnessScorer(fleet.FairnessConfig{DecayWindow: cfg.FairWindow})
		s.placer.Scorers = append(s.placer.Scorers,
			fleet.WeightedScorer{Scorer: s.fairness, Weight: cfg.FairWeight})
	}
	return nil
}

func (s *Server) shardByName(name string) (int, *shard) {
	for i, sh := range s.shards {
		if sh.name == name {
			return i, sh
		}
	}
	return -1, nil
}

// readLimitedBody reads a request body up to the configured cap, writing
// the 4xx itself and reporting ok=false on failure.
func (s *Server) readLimitedBody(w http.ResponseWriter, r *http.Request) (body []byte, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return nil, false
	}
	if int64(len(body)) > s.maxBody {
		s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body over %d bytes", s.maxBody))
		return nil, false
	}
	return body, true
}

// shardEngineScorer adapts the fleet Scorer interface onto the daemon's
// per-cluster engines: candidate i is scored by shard i's currently
// served engine. The score is the log-softmax of the new job's engine
// score within the queue it would join — the engine's (log) probability
// of running the job *next* on that cluster. An idle cluster scores 0
// (certainty, the best possible placement); a cluster whose backlog would
// bury the job scores deeply negative. The softmax makes heterogeneous
// engines (logits vs negated heuristic priorities) comparable after the
// pipeline's per-plugin normalization, mirroring fleet.RLScorer.
type shardEngineScorer struct{ s *Server }

// Name implements fleet.Scorer.
func (*shardEngineScorer) Name() string { return "shard-engine" }

// Score implements fleet.Scorer.
func (sc *shardEngineScorer) Score(j *job.Job, cands []*fleet.Candidate, out []float64) {
	var one [1]Decision
	var keyBuf []byte
	cache := sc.s.cache
	for i, c := range cands {
		eng := sc.s.shards[c.Index].batcher.Engine()
		vis := c.Visible
		if max := eng.MaxJobs(); max > 0 && len(vis) > max-1 {
			vis = vis[:max-1] // keep a slot for the candidate job
		}
		jobs := make([]*job.Job, 0, len(vis)+1)
		jobs = append(jobs, vis...)
		jobs = append(jobs, j)
		st := &QueueState{
			Jobs:       jobs,
			Now:        c.Now,
			View:       c.View,
			QueueLen:   c.Pending + 1,
			WantScores: true,
		}
		// The same (queue, job) pair is re-scored on every /place a
		// cluster's queue sits still for, so this inner decision shares
		// the /v1/decide cache — keyed by the shard whose engine answers.
		if cache != nil {
			keyBuf = cache.appendCacheKey(keyBuf[:0], c.Index, st)
			key := string(keyBuf)
			if e, ok := cache.get(key); ok {
				out[i] = fleet.LastLogSoftmax(e.dec.Scores)
				continue
			}
			eng.DecideBatch([]*QueueState{st}, one[:])
			cache.put(key, cacheEntry{dec: one[0], policy: eng.Name()})
			out[i] = fleet.LastLogSoftmax(one[0].Scores)
			continue
		}
		eng.DecideBatch([]*QueueState{st}, one[:])
		out[i] = fleet.LastLogSoftmax(one[0].Scores)
	}
}

// placeCluster is one cluster's state in a /place request: a named queue
// state. Unlike /v1/decide states, an empty jobs list is legal (an idle
// cluster is the best possible placement). Completed carries the jobs the
// cluster finished since its last report — the fairness tracker's
// incremental feed (ignored unless the daemon runs with a fairness
// weight).
type placeCluster struct {
	Name      string     `json:"name"`
	Completed []wireDone `json:"completed"`
	wireState
}

// placeRequest is the /place body. Client and BatchSeq are the optional
// dedup identity of the completed-records batch: a client that tags each
// batch with a monotonically increasing sequence can retry a /place
// request (timeout, 5xx) without double-counting its completions — a
// batch whose seq is not above the client's highest absorbed seq is
// acknowledged but not re-observed.
type placeRequest struct {
	Job      wireJob        `json:"job"`
	Clusters []placeCluster `json:"clusters"`
	Client   string         `json:"client"`
	BatchSeq *int64         `json:"batch_seq"`
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	if len(s.shards) == 0 {
		s.fail(w, http.StatusNotFound, fmt.Errorf("serve: not running in fleet mode"))
		return
	}
	start := time.Now()
	body, ok := s.readLimitedBody(w, r)
	if !ok {
		return
	}
	var req placeRequest
	req.Job.UserID = -1
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad place request: %w", err))
		return
	}
	if req.Job.ReqProcs <= 0 || req.Job.ReqTime <= 0 {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("serve: job needs positive requested_time and requested_procs"))
		return
	}
	if len(req.Clusters) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: place request carries no clusters"))
		return
	}
	if req.BatchSeq != nil {
		if req.Client == "" {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: batch_seq needs a client id"))
			return
		}
		if *req.BatchSeq < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: batch_seq must be non-negative, got %d", *req.BatchSeq))
			return
		}
	}

	cands, err := s.placeCandidates(req.Clusters)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Cordoned shards are off the placement menu but stay in cands: their
	// posted states (and completions) are real, only the destination is
	// closed. With nothing drained, active IS cands — the common path
	// allocates and branches exactly as before.
	active := cands
	for _, c := range cands {
		if s.drained[c.Index].Load() {
			active = make([]*fleet.Candidate, 0, len(cands))
			for _, c := range cands {
				if !s.drained[c.Index].Load() {
					active = append(active, c)
				}
			}
			break
		}
	}
	if len(active) == 0 {
		s.fail(w, http.StatusUnprocessableEntity,
			fmt.Errorf("serve: every posted cluster is drained"))
		return
	}
	jv := req.Job.toJob()
	j := &jv
	deduped := false
	if s.fairness != nil {
		// The tracker is persistent state: a batch that is half-folded
		// when the request errors out would be double-counted when the
		// client repairs and re-posts it. So EVERY rejection — bad
		// records (400) and infeasible jobs (422, pre-checked here
		// against the pipeline's own filters, which is exactly the
		// PlaceScored < 0 condition) — must fire before any Observe.
		feasible := false
	next:
		for _, c := range active {
			for _, flt := range s.placer.Filters {
				if !flt.Feasible(j, c) {
					continue next
				}
			}
			feasible = true
			break
		}
		if !feasible {
			s.fail(w, http.StatusUnprocessableEntity,
				fmt.Errorf("serve: job (%d procs) fits no cluster", j.RequestedProcs))
			return
		}
		for i := range req.Clusters {
			pc := &req.Clusters[i]
			for k := range pc.Completed {
				if wd := &pc.Completed[k]; wd.Wait < 0 || wd.Run < 0 {
					s.fail(w, http.StatusBadRequest,
						fmt.Errorf("serve: cluster %q completed job %d needs non-negative wait and run_time", pc.Name, k))
					return
				}
			}
		}
		// Fold them in before scoring, so the placement below already sees
		// them. The durability layer owns the fold: WAL append (when
		// configured) strictly before Observe, and the batch_seq dedup
		// check strictly before both — a replayed batch changes nothing.
		var wcs []walCluster
		var idxs []int
		for i := range req.Clusters {
			pc := &req.Clusters[i]
			if len(pc.Completed) == 0 {
				continue
			}
			wcs = append(wcs, walCluster{Name: pc.Name, Done: pc.Completed})
			idxs = append(idxs, cands[i].Index)
		}
		applied, err := s.durable.commitBatch(req.Client, req.BatchSeq, wcs, idxs)
		if err != nil {
			// The WAL refused the batch; acking it would promise a
			// durability the disk did not deliver.
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		deduped = !applied
	}
	// ?explain=1 asks for the per-plugin score table in the response; the
	// decision ring wants the same trace for /debug/decisions. Either way
	// the pick is identical to the plain scored path (pinned by tests).
	wantExplain := r.URL.Query().Get("explain") == "1"
	var ex *obs.Explain
	if wantExplain || s.ring != nil {
		ex = new(obs.Explain)
	}
	scores := make([]float64, len(active))
	pick := s.placer.PlaceExplained(j, active, scores, ex)
	if pick < 0 {
		s.fail(w, http.StatusUnprocessableEntity,
			fmt.Errorf("serve: job (%d procs) fits no cluster", j.RequestedProcs))
		return
	}
	if s.ring != nil {
		s.ring.Placement(&obs.PlacementDecision{
			Time:       time.Since(s.start).Seconds(),
			Router:     s.placer.Name(),
			Job:        obs.Ref(j),
			Winner:     active[pick].Index,
			Cluster:    active[pick].Name,
			TieBreak:   ex.TieBreak,
			Candidates: ex.Candidates,
		})
	}

	resp := make([]byte, 0, 256)
	resp = append(resp, `{"cluster":`...)
	resp = strconv.AppendQuote(resp, active[pick].Name)
	resp = append(resp, `,"shard":`...)
	resp = strconv.AppendInt(resp, int64(active[pick].Index), 10)
	resp = append(resp, `,"router":`...)
	resp = strconv.AppendQuote(resp, s.placer.Name())
	if deduped {
		// The completion batch was a replay; the placement answer stands
		// but nothing was (re-)absorbed.
		resp = append(resp, `,"deduped":true`...)
	}
	if s.fairness != nil {
		// Per-user state exposure: the tracked service of the job's user
		// against the all-user mean, as the fairness plugin saw it.
		userMean, jobs, fleetMean := s.fairness.UserState(j.UserID)
		resp = append(resp, `,"fairness":{"user_mean_bsld":`...)
		resp = strconv.AppendFloat(resp, userMean, 'g', 6, 64)
		resp = append(resp, `,"user_jobs":`...)
		resp = strconv.AppendInt(resp, int64(jobs), 10)
		resp = append(resp, `,"fleet_mean_bsld":`...)
		resp = strconv.AppendFloat(resp, fleetMean, 'g', 6, 64)
		resp = append(resp, '}')
	}
	resp = append(resp, `,"scores":`...)
	resp = appendScoresJSON(resp, active, scores)
	if wantExplain {
		// The full pipeline trace: per candidate, each plugin's weight and
		// normalized score plus filter verdicts — json.Marshal here, off
		// the default fast path.
		exJSON, err := json.Marshal(ex)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		resp = append(resp, `,"explain":`...)
		resp = append(resp, exJSON...)
	}
	resp = append(resp, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)

	s.metrics.CountPlacement(active[pick].Index)
	s.metrics.PlaceLatency.ObserveDuration(time.Since(start))
	if s.slo != nil {
		s.slo.observe("/place", time.Since(start))
	}
}

// appendScoresJSON appends the {"name":score,...} object covering every
// unfiltered (non-NaN) candidate — the shared tail of the /place and
// /migrate responses.
func appendScoresJSON(buf []byte, cands []*fleet.Candidate, scores []float64) []byte {
	buf = append(buf, '{')
	first := true
	for i, c := range cands {
		if scores[i] != scores[i] { // NaN: filtered out
			continue
		}
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = strconv.AppendQuote(buf, c.Name)
		buf = append(buf, ':')
		buf = strconv.AppendFloat(buf, scores[i], 'g', 6, 64)
	}
	return append(buf, '}')
}

// migrateRequest is the /migrate body: the queued job, the name of the
// cluster currently holding it, and every cluster's state. Like the
// offline migration controller, the caller reports states as if the job
// were already withdrawn — its current cluster's jobs list must not
// include it, so its own footprint cannot bias the incumbent's score.
type migrateRequest struct {
	Job      wireJob        `json:"job"`
	From     string         `json:"from"`
	Clusters []placeCluster `json:"clusters"`
}

// handleMigrate is the serving twin of the fleet migration controller's
// per-job decision: re-score the job through the placement pipeline and
// recommend a move only when the best alternative beats the incumbent by
// the configured hysteresis margin AND is drained enough to start the job
// immediately (free capacity, empty queue) — the same
// stranded-job-rescue gate fleet.HysteresisMigration applies. The daemon
// is stateless: it recommends; the caller moves.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	if len(s.shards) == 0 || s.migrateMargin < 0 {
		s.fail(w, http.StatusNotFound, fmt.Errorf("serve: migration endpoint not enabled (fleet mode with -migrate)"))
		return
	}
	start := time.Now()
	body, ok := s.readLimitedBody(w, r)
	if !ok {
		return
	}
	var req migrateRequest
	req.Job.UserID = -1
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad migrate request: %w", err))
		return
	}
	if req.Job.ReqProcs <= 0 || req.Job.ReqTime <= 0 {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("serve: job needs positive requested_time and requested_procs"))
		return
	}
	cands, err := s.placeCandidates(req.Clusters)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Drained shards cannot be migration destinations, but the job's
	// current cluster stays in the set — migrating OFF a cordoned member
	// is the endpoint's whole purpose during a drain.
	for _, c := range cands {
		if c.Name != req.From && s.drained[c.Index].Load() {
			act := make([]*fleet.Candidate, 0, len(cands))
			for _, c := range cands {
				if c.Name == req.From || !s.drained[c.Index].Load() {
					act = append(act, c)
				}
			}
			cands = act
			break
		}
	}
	from := -1
	for i, c := range cands {
		if c.Name == req.From {
			from = i
		}
	}
	if from < 0 {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("serve: current cluster %q missing from posted states", req.From))
		return
	}

	jv := req.Job.toJob()
	j := &jv
	scores := make([]float64, len(cands))
	best := s.placer.PlaceScored(j, cands, scores)
	move := false
	dst := from
	if best >= 0 && best != from {
		cur := scores[from]
		drained := cands[best].Pending == 0 &&
			cands[best].View.FreeProcs >= j.RequestedProcs
		if drained && (cur != cur || scores[best]-cur > s.migrateMargin) {
			move = true
			dst = best
		}
	}

	resp := make([]byte, 0, 256)
	resp = append(resp, `{"migrate":`...)
	resp = strconv.AppendBool(resp, move)
	resp = append(resp, `,"cluster":`...)
	resp = strconv.AppendQuote(resp, cands[dst].Name)
	resp = append(resp, `,"from":`...)
	resp = strconv.AppendQuote(resp, cands[from].Name)
	if cur, bst := scores[from], scores[dst]; cur == cur && bst == bst {
		resp = append(resp, `,"margin":`...)
		resp = strconv.AppendFloat(resp, bst-cur, 'g', 6, 64)
	}
	resp = append(resp, `,"router":`...)
	resp = strconv.AppendQuote(resp, s.placer.Name())
	resp = append(resp, `,"scores":`...)
	resp = appendScoresJSON(resp, cands, scores)
	resp = append(resp, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)

	s.metrics.MigrateChecksTotal.Add(1)
	s.metrics.MigrateLatency.ObserveDuration(time.Since(start))
	if s.slo != nil {
		s.slo.observe("/migrate", time.Since(start))
	}
	if move {
		s.metrics.CountMigration(cands[dst].Index)
	}
}

// placeCandidates turns the posted cluster states into fleet candidates,
// validating each against the registered shards.
func (s *Server) placeCandidates(clusters []placeCluster) ([]*fleet.Candidate, error) {
	cands := make([]*fleet.Candidate, 0, len(clusters))
	seen := map[string]bool{}
	for i := range clusters {
		pc := &clusters[i]
		idx, sh := s.shardByName(pc.Name)
		if sh == nil {
			return nil, fmt.Errorf("serve: unknown cluster %q", pc.Name)
		}
		if seen[pc.Name] {
			return nil, fmt.Errorf("serve: cluster %q listed twice", pc.Name)
		}
		seen[pc.Name] = true
		if pc.TotalProcs != sh.procs {
			return nil, fmt.Errorf("serve: cluster %q reports %d procs, shard has %d",
				pc.Name, pc.TotalProcs, sh.procs)
		}
		if pc.FreeProcs < 0 || pc.FreeProcs > pc.TotalProcs {
			return nil, fmt.Errorf("serve: cluster %q free_procs out of range", pc.Name)
		}
		visible := make([]*job.Job, 0, len(pc.Jobs))
		pendingWork := 0.0
		for k := range pc.Jobs {
			wj := &pc.Jobs[k]
			if wj.ReqProcs <= 0 || wj.ReqTime <= 0 {
				return nil, fmt.Errorf("serve: cluster %q job %d needs positive requested_time and requested_procs",
					pc.Name, k)
			}
			jb := wj.toJob()
			visible = append(visible, &jb)
			pendingWork += wj.ReqTime * float64(wj.ReqProcs)
		}
		pending := pc.QueueLen
		if pending < len(pc.Jobs) {
			pending = len(pc.Jobs)
		}
		cands = append(cands, &fleet.Candidate{
			Index:       idx,
			Name:        pc.Name,
			Now:         pc.Now,
			View:        sim.ClusterView{FreeProcs: pc.FreeProcs, TotalProcs: pc.TotalProcs},
			Visible:     visible,
			Pending:     pending,
			PendingWork: pendingWork,
			// RunningWork is unknowable from a posted snapshot; the
			// queue signals above carry the load information.
		})
	}
	return cands, nil
}
