package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rlsched/internal/fleet"
	"rlsched/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// Engine is the initially served policy. Alternatively leave nil and
	// set ModelPath/PolicyName for LoadEngine.
	Engine Engine
	// ModelPath / PolicyName are the LoadEngine inputs. ModelPath is also
	// what a bare POST /reload re-reads, the "retrain in place, reload in
	// place" workflow.
	ModelPath  string
	PolicyName string
	// Batcher sizing (zero values take BatcherConfig defaults).
	Workers     int
	BatchWindow time.Duration
	MaxBatch    int
	// MaxBodyBytes caps decision request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxStatesPerRequest caps the queue states one request may carry
	// (default 1024) — without it a single tiny-job batch request could
	// force an unboundedly large forward pass.
	MaxStatesPerRequest int
	// Shards, when set, runs the daemon in fleet mode: one engine per
	// cluster (served via /v1/decide?cluster=NAME, hot-swapped via
	// /reload with a "cluster" field) plus the POST /place placement
	// endpoint. With Shards set the base Engine/ModelPath/PolicyName may
	// be omitted; bare /v1/decide then serves the first shard.
	Shards []ShardConfig
	// PlaceRouter selects the placement pipeline: "engine" (default —
	// each shard's own policy scores the job), "least-loaded" or
	// "binpack".
	PlaceRouter string
	// Migrate enables the POST /migrate endpoint in fleet mode: re-score
	// a queued job against the posted cluster states and recommend
	// whether it should move off its current cluster.
	Migrate bool
	// MigrateMargin is the hysteresis margin a recommended move must
	// clear on the pipeline's normalized score scale. 0 disables the
	// hysteresis (any strict improvement clears it); the endpoint's
	// drained-destination gate applies regardless of the margin. The
	// rlservd flag defaults to 0.25, the fleet controller's recommended
	// policy.
	MigrateMargin float64
	// FairWeight, when positive, adds the stateful per-user fairness
	// plugin (fleet.FairnessScorer) to the /place pipeline with this
	// weight. The plugin's per-user bounded-slowdown shares grow from the
	// "completed" records clusters post with their /place states; the
	// aggregate view is exported as rlserv_fairness_score in /metrics and
	// each /place response carries the job's user state. Fleet mode only.
	FairWeight float64
	// FairWindow, when positive, decays the fairness tracker's per-user
	// shares with an effective window of about this many fleet-wide
	// completions (fleet.FairnessConfig.DecayWindow): the daemon then
	// judges users by their recent service, not its whole uptime. 0 keeps
	// full-history shares. Requires FairWeight > 0.
	FairWindow float64
	// CheckpointDir, when set, makes the fairness tracker durable
	// (durable.go): periodic atomic snapshots plus a write-ahead log of
	// /place completion batches in this directory, replayed on restart so
	// a kill -9 loses nothing past the last acked batch. Requires
	// FairWeight > 0 — the tracker is the only durable state.
	CheckpointDir string
	// CheckpointInterval is the snapshot period (the rlservd flag
	// defaults to 30s). Zero or negative disables the periodic loop:
	// the WAL still makes every batch durable, and Close still writes a
	// final snapshot.
	CheckpointInterval time.Duration
	// DecisionCache, when positive, puts an exact-match decision cache of
	// this many entries (cache.go) in front of the engines on /v1/decide
	// and the /place engine scorer, invalidated on every /reload. 0
	// disables it and keeps the serve path byte-identical.
	DecisionCache int
	// Pprof mounts the standard net/http/pprof profiling handlers under
	// /debug/pprof/ (opt-in; profiling endpoints on a daemon's serving
	// port are a production decision).
	Pprof bool
	// DecisionLog sizes the /debug/decisions ring buffer of recent /place
	// decisions (fleet mode). 0 takes the default of 256; negative
	// disables the ring and the endpoint.
	DecisionLog int
	// SLO configures latency-budget monitoring and the degradation ladder
	// (slo.go). The zero value disables both; with SLO.P99Budget set, the
	// daemon watches windowed per-endpoint p99 latency and batcher queue
	// depth, degrades /v1/decide through heuristic and static fallbacks
	// under sustained overload, and exports the ladder state on /metrics.
	SLO SLOConfig
}

// Server is the decision service: an Engine behind a Batcher behind an
// http.Handler. Create with NewServer, mount Handler, Close when done.
type Server struct {
	batcher   *Batcher
	metrics   *Metrics
	mux       *http.ServeMux
	modelPath string
	maxBody   int64
	maxStates int
	reloadMu  sync.Mutex // serializes /reload (swap itself is atomic)

	// Fleet mode (nil/empty otherwise): per-cluster shards, the
	// placement pipeline behind POST /place, the /migrate hysteresis
	// (negative = endpoint disabled), and the per-user fairness tracker
	// (nil unless FairWeight > 0).
	shards        []*shard
	placer        *fleet.Pipeline
	migrateMargin float64
	fairness      *fleet.FairnessScorer

	// drained mirrors the durable cordon set onto the request path: one
	// flag per shard, read lock-free by /place, /migrate and /readyz,
	// written by /drain and by restore. Allocated alongside shards.
	drained []atomic.Bool

	// durable owns the fairness tracker's checkpoint/WAL lifecycle and
	// the /place batch_seq dedup table (nil unless FairWeight > 0; the
	// dedup table works with or without a CheckpointDir).
	durable *durability

	// cache is the exact-match decision cache (nil unless DecisionCache
	// is positive — nil keeps the decide path byte-identical).
	cache *decisionCache

	// Observability: process start (rlserv_uptime_seconds and decision
	// timestamps count from it) and the /debug/decisions ring of recent
	// placement decisions (nil when disabled or outside fleet mode).
	start time.Time
	ring  *obs.Ring

	// slo is the SLO monitor and degradation ladder (nil when disabled —
	// the nil checks on the request path are the only cost then).
	slo *sloMonitor
}

// NewServer builds the service and starts its worker pool.
func NewServer(cfg Config) (*Server, error) {
	s := &Server{
		metrics:   NewMetrics(),
		mux:       http.NewServeMux(),
		modelPath: cfg.ModelPath,
		maxBody:   cfg.MaxBodyBytes,
		maxStates: cfg.MaxStatesPerRequest,
		start:     time.Now(),
	}
	if s.maxBody <= 0 {
		s.maxBody = 8 << 20
	}
	if s.maxStates <= 0 {
		s.maxStates = 1024
	}
	if err := s.initFleet(cfg); err != nil {
		// Shards built before the failure already run worker pools.
		s.Close()
		return nil, err
	}
	if cfg.DecisionCache < 0 {
		s.Close()
		return nil, fmt.Errorf("serve: decision cache size must be non-negative, got %d", cfg.DecisionCache)
	}
	if cfg.DecisionCache > 0 {
		s.cache = newDecisionCache(cfg.DecisionCache, s.metrics)
	}
	if cfg.CheckpointDir != "" && s.fairness == nil {
		s.Close()
		return nil, fmt.Errorf("serve: -checkpoint-dir needs the fairness tracker (-fair-weight > 0) — it is the only durable state")
	}
	if s.fairness != nil {
		// The durability layer also owns the batch_seq dedup table, so it
		// exists whenever the tracker does; without a CheckpointDir it
		// simply never touches disk.
		d, err := newDurability(cfg.CheckpointDir, cfg.CheckpointInterval, durableDeps{
			fairness: s.fairness,
			clusterIndex: func(name string) int {
				i, _ := s.shardByName(name)
				return i
			},
			clusterName: func(idx int) string {
				if idx < 0 || idx >= len(s.shards) {
					return ""
				}
				return s.shards[idx].name
			},
			markDrained: func(idx int) { s.drained[idx].Store(true) },
			metrics:     s.metrics,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.durable = d
	}
	if cfg.Engine == nil && cfg.ModelPath == "" && cfg.PolicyName == "" && len(s.shards) > 0 {
		// Fleet-only daemon: bare /v1/decide serves the first shard.
		s.batcher = s.shards[0].batcher
	} else {
		eng := cfg.Engine
		if eng == nil {
			var err error
			eng, err = LoadEngine(cfg.ModelPath, cfg.PolicyName)
			if err != nil {
				s.Close()
				return nil, err
			}
		}
		s.batcher = NewBatcher(eng, BatcherConfig{
			Workers:  cfg.Workers,
			Window:   cfg.BatchWindow,
			MaxBatch: cfg.MaxBatch,
			OnBatch:  func(states int) { s.metrics.BatchSize.Observe(float64(states)) },
		})
	}
	if len(s.shards) > 0 && cfg.DecisionLog >= 0 {
		n := cfg.DecisionLog
		if n == 0 {
			n = 256
		}
		s.ring = obs.NewRing(n)
	}
	if cfg.SLO.P99Budget > 0 {
		fallback, err := LoadEngine("", "SJF")
		if err != nil {
			s.Close()
			return nil, err
		}
		s.slo = newSLOMonitor(cfg.SLO, s.maxQueueDepth, fallback)
		s.slo.run()
	}
	s.mux.HandleFunc("/v1/decide", s.handleDecide)
	s.mux.HandleFunc("/place", s.handlePlace)
	s.mux.HandleFunc("/migrate", s.handleMigrate)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/drain", s.handleDrain)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/decisions", s.handleDecisions)
	if cfg.Pprof {
		// The standard profiling surface, mounted only on request: CPU
		// and heap profiles of a live daemon without a restart.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the HTTP surface of the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the currently served engine.
func (s *Server) Engine() Engine { return s.batcher.Engine() }

// Metrics exposes the instrumentation registry (read-only use intended).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains and stops every batcher's workers (Batcher.Close is
// idempotent, so the fleet-only aliasing of the base batcher onto shard 0
// is harmless).
func (s *Server) Close() {
	if s.durable != nil {
		// Final snapshot: a graceful shutdown restores without replay.
		s.durable.close()
	}
	if s.slo != nil {
		s.slo.close()
	}
	if s.batcher != nil {
		s.batcher.Close()
	}
	for _, sh := range s.shards {
		sh.batcher.Close()
	}
}

// maxQueueDepth reports the deepest batching queue across the base batcher
// and every fleet shard — the SLO monitor's backpressure signal.
func (s *Server) maxQueueDepth() int {
	depth := 0
	if s.batcher != nil {
		depth = s.batcher.QueueDepth()
	}
	for _, sh := range s.shards {
		if d := sh.batcher.QueueDepth(); d > depth {
			depth = d
		}
	}
	return depth
}

// Shards lists the fleet shard names in registration order (empty outside
// fleet mode).
func (s *Server) Shards() []string {
	names := make([]string, len(s.shards))
	for i, sh := range s.shards {
		names[i] = sh.name
	}
	return names
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	batcher, tag := s.batcher, -1
	if name := r.URL.Query().Get("cluster"); name != "" {
		idx, sh := s.shardByName(name)
		if sh == nil {
			s.fail(w, http.StatusNotFound, fmt.Errorf("serve: unknown cluster %q", name))
			return
		}
		batcher, tag = sh.batcher, idx
	}
	start := time.Now()
	rb := reqBufPool.Get().(*reqBuf)
	// A request abandoned mid-queue (client gone) may still be read by a
	// batcher worker later; such buffers must not be recycled.
	defer func() {
		if rb != nil {
			reqBufPool.Put(rb)
		}
	}()
	rb.reset()

	body, err := readAllInto(rb.body[:0], io.LimitReader(r.Body, s.maxBody+1))
	rb.body = body
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(body)) > s.maxBody {
		s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body over %d bytes", s.maxBody))
		return
	}
	if err := rb.parseRequest(body); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := rb.validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(rb.states) > s.maxStates {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("serve: request carries %d states, limit %d", len(rb.states), s.maxStates))
		return
	}
	states := rb.finalize()
	// The degradation ladder (slo.go): full service decides through the
	// batcher; level 1 swaps in the synchronous heuristic fallback; level
	// 2 sheds to a static FCFS answer with no engine call, so the shed
	// path's latency is just parsing and encoding.
	var decs []Decision
	var policy string
	switch level := s.sloLevel(); {
	case level >= 2:
		decs = make([]Decision, len(states))
		staticDecide(states, decs)
		policy = staticPolicyName
	case level == 1:
		decs = make([]Decision, len(states))
		s.slo.fallback.DecideBatch(states, decs)
		policy = s.slo.fallback.Name()
	default:
		var err error
		decs, policy, err = s.decideCached(r.Context(), batcher, tag, states)
		if err != nil {
			s.fail(w, http.StatusServiceUnavailable, err)
			rb = nil
			return
		}
	}
	rb.resp = rb.appendResponse(rb.resp[:0], decs, policy)
	w.Header().Set("Content-Type", "application/json")
	w.Write(rb.resp)

	s.metrics.RequestsTotal.Add(1)
	s.metrics.DecisionsTotal.Add(uint64(len(states)))
	s.metrics.Latency.ObserveDuration(time.Since(start))
	if s.slo != nil {
		s.slo.observe("/v1/decide", time.Since(start))
	}
}

// sloLevel is the current degradation level (0 when monitoring is off).
func (s *Server) sloLevel() int {
	if s.slo == nil {
		return 0
	}
	return s.slo.Level()
}

// reloadSpec is the /reload request body. An empty body re-reads the
// daemon's original -model path. With a cluster set, the named fleet
// shard's engine is swapped instead of the base engine (model or policy
// required — shards have no original path to re-read).
type reloadSpec struct {
	Model   string `json:"model"`
	Policy  string `json:"policy"`
	Cluster string `json:"cluster"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	var spec reloadSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &spec); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad reload spec: %w", err))
			return
		}
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if spec.Cluster != "" {
		_, sh := s.shardByName(spec.Cluster)
		if sh == nil {
			s.fail(w, http.StatusNotFound, fmt.Errorf("serve: unknown cluster %q", spec.Cluster))
			return
		}
		if spec.Model == "" && spec.Policy == "" {
			s.fail(w, http.StatusBadRequest,
				fmt.Errorf("serve: shard reload needs a model or policy"))
			return
		}
		eng, err := LoadEngine(spec.Model, spec.Policy)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		sh.batcher.Swap(eng)
		if s.cache != nil {
			s.cache.invalidate()
		}
		s.metrics.ReloadsTotal.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"cluster\":%q,\"policy\":%q}\n", sh.name, eng.Name())
		return
	}
	if spec.Model == "" && spec.Policy == "" {
		if s.modelPath == "" {
			s.fail(w, http.StatusBadRequest,
				fmt.Errorf("serve: empty reload and no -model path to re-read"))
			return
		}
		spec.Model = s.modelPath
	}
	eng, err := LoadEngine(spec.Model, spec.Policy)
	if err != nil {
		// The old engine keeps serving; a bad reload is not an outage.
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if spec.Model != "" {
		s.modelPath = spec.Model
	}
	s.batcher.Swap(eng)
	if s.cache != nil {
		s.cache.invalidate()
	}
	s.metrics.ReloadsTotal.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"policy\":%q}\n", eng.Name())
}

// buildVersions reads the daemon's own build identity from the binary:
// the Go toolchain version and the VCS revision the binary was built at
// ("unknown" when the build carried no VCS stamp, e.g. test binaries).
func buildVersions() (goVersion, revision string) {
	goVersion, revision = runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, st := range bi.Settings {
			if st.Key == "vcs.revision" && st.Value != "" {
				revision = st.Value
			}
		}
	}
	return goVersion, revision
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w, s.batcher.Engine().Name())
	goVersion, revision := buildVersions()
	promFamily(w, "rlserv_build_info", "Build identity (always 1, toolchain and revision in the labels).", "gauge")
	fmt.Fprintf(w, "rlserv_build_info{go_version=%q,revision=%q} 1\n", goVersion, revision)
	promFamily(w, "rlserv_uptime_seconds", "Seconds since the daemon started.", "gauge")
	fmt.Fprintf(w, "rlserv_uptime_seconds %g\n", time.Since(s.start).Seconds())
	if s.slo != nil {
		s.slo.writeProm(w)
	}
	if s.fairness != nil {
		// The fairness tracker's live view of per-user service: Jain's
		// index and worst-user stats over the tracked bounded-slowdown
		// means (1/1/0 until any completions have been posted).
		rep := s.fairness.Report()
		promFamily(w, "rlserv_fairness_score", "Per-user fairness of tracked bounded-slowdown shares.", "gauge")
		fmt.Fprintf(w, "rlserv_fairness_score{stat=%q} %g\n", "jain", rep.Jain)
		fmt.Fprintf(w, "rlserv_fairness_score{stat=%q} %g\n", "max_mean_ratio", rep.MaxMeanRatio)
		fmt.Fprintf(w, "rlserv_fairness_score{stat=%q} %g\n", "max_user_bsld", rep.Max)
		fmt.Fprintf(w, "rlserv_fairness_score{stat=%q} %d\n", "users", rep.Users)
	}
	if s.cache != nil {
		promCounter(w, "rlserv_decision_cache_hits_total", "Decisions answered from the decision cache.",
			s.metrics.CacheHits.Load())
		promCounter(w, "rlserv_decision_cache_misses_total", "Decisions that went to an engine.",
			s.metrics.CacheMisses.Load())
	}
	if s.durable != nil {
		promCounter(w, "rlserv_place_dedup_total", "Completion batches dropped as batch_seq replays.",
			s.metrics.PlaceDedupTotal.Load())
		promCounter(w, "rlserv_wal_records_total", "Records appended to the write-ahead log.",
			s.metrics.WALRecordsTotal.Load())
		promCounter(w, "rlserv_checkpoints_total", "Fairness snapshots written.",
			s.metrics.CheckpointsTotal.Load())
	}
	if len(s.shards) > 0 {
		promFamily(w, "rlserv_shard_drained", "1 when the shard is cordoned by /drain, else 0.", "gauge")
		for i, sh := range s.shards {
			v := 0
			if s.drained[i].Load() {
				v = 1
			}
			fmt.Fprintf(w, "rlserv_shard_drained{cluster=%q} %d\n", sh.name, v)
		}
	}
}

// handleDecisions serves the /debug/decisions ring: the n most recent
// /place decisions (newest first, full per-plugin candidate traces) plus
// the lifetime total. n defaults to 32; n=0 or n beyond the ring returns
// everything retained.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("serve: decision log not enabled (fleet mode without -decision-log -1)"))
		return
	}
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad n %q", q))
			return
		}
		n = v
		if n == 0 {
			n = -1 // everything retained
		}
	}
	out := struct {
		Total     uint64                  `json:"total"`
		Decisions []obs.PlacementDecision `json:"decisions"`
	}{Total: s.ring.Total(), Decisions: s.ring.Last(n)}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(out)
}

// drainSpec is the /drain request body.
type drainSpec struct {
	Cluster string `json:"cluster"`
}

// handleDrain cordons one fleet shard, the online twin of Fleet.Drain
// retiring a member: the shard is excluded from /place and /migrate
// destinations (its /v1/decide keeps answering — jobs already queued
// there still need an order), its fairness per-cluster shares are retired
// through the ClusterRetirer contract, and /readyz reports 503 so the
// control plane sees a fleet running below strength. Draining is durable
// (WAL + snapshot) and idempotent; there is no online undrain — a
// restored member re-registers by restarting the daemon without the
// cordon, matching the fleet simulator's churn model.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	if len(s.shards) == 0 {
		s.fail(w, http.StatusNotFound, fmt.Errorf("serve: not running in fleet mode"))
		return
	}
	var spec drainSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := json.Unmarshal(body, &spec); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad drain spec: %w", err))
		return
	}
	idx, sh := s.shardByName(spec.Cluster)
	if sh == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("serve: unknown cluster %q", spec.Cluster))
		return
	}
	already := s.drained[idx].Load()
	if !already && s.durable != nil {
		// Make the cordon durable and retire the shard's fairness state
		// BEFORE the serving flag flips: once a placement can see the
		// cordon, a crash must not forget it.
		if err := s.durable.commitDrain(sh.name, idx); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.drained[idx].Store(true)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"cluster\":%q,\"drained\":true,\"already\":%t}\n", sh.name, already)
}

// drainedShards lists the currently cordoned shard names.
func (s *Server) drainedShards() []string {
	var names []string
	for i := range s.drained {
		if s.drained[i].Load() {
			names = append(names, s.shards[i].name)
		}
	}
	return names
}

// handleHealthz is the liveness probe: ok until the degradation ladder
// reaches SLOConfig.HealthzLevel (default: shedding), at which point the
// daemon asks to be pulled out of rotation.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.slo != nil {
		if level := s.slo.Level(); level >= s.slo.cfg.HealthzLevel {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "shedding level=%d\n", level)
			return
		}
	}
	fmt.Fprintf(w, "ok policy=%s\n", s.batcher.Engine().Name())
}

// handleReadyz is the readiness probe: ready only at full service (level
// 0), so load balancers steer new traffic away the moment the daemon
// starts degrading, well before /healthz gives up on it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if level := s.sloLevel(); level > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded level=%d\n", level)
		return
	}
	if names := s.drainedShards(); len(names) > 0 {
		// A cordoned shard means the fleet serves below strength; report
		// not-ready so the control plane replaces the member (there is no
		// online undrain).
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "drained clusters=%s\n", strings.Join(names, ","))
		return
	}
	fmt.Fprintf(w, "ready policy=%s\n", s.batcher.Engine().Name())
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.metrics.ErrorsTotal.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
}

// readAllInto is io.ReadAll into a reusable buffer.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
