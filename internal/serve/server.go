package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Config assembles a Server.
type Config struct {
	// Engine is the initially served policy. Alternatively leave nil and
	// set ModelPath/PolicyName for LoadEngine.
	Engine Engine
	// ModelPath / PolicyName are the LoadEngine inputs. ModelPath is also
	// what a bare POST /reload re-reads, the "retrain in place, reload in
	// place" workflow.
	ModelPath  string
	PolicyName string
	// Batcher sizing (zero values take BatcherConfig defaults).
	Workers     int
	BatchWindow time.Duration
	MaxBatch    int
	// MaxBodyBytes caps decision request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxStatesPerRequest caps the queue states one request may carry
	// (default 1024) — without it a single tiny-job batch request could
	// force an unboundedly large forward pass.
	MaxStatesPerRequest int
}

// Server is the decision service: an Engine behind a Batcher behind an
// http.Handler. Create with NewServer, mount Handler, Close when done.
type Server struct {
	batcher   *Batcher
	metrics   *Metrics
	mux       *http.ServeMux
	modelPath string
	maxBody   int64
	maxStates int
	reloadMu  sync.Mutex // serializes /reload (swap itself is atomic)
}

// NewServer builds the service and starts its worker pool.
func NewServer(cfg Config) (*Server, error) {
	eng := cfg.Engine
	if eng == nil {
		var err error
		eng, err = LoadEngine(cfg.ModelPath, cfg.PolicyName)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		metrics:   NewMetrics(),
		mux:       http.NewServeMux(),
		modelPath: cfg.ModelPath,
		maxBody:   cfg.MaxBodyBytes,
		maxStates: cfg.MaxStatesPerRequest,
	}
	if s.maxBody <= 0 {
		s.maxBody = 8 << 20
	}
	if s.maxStates <= 0 {
		s.maxStates = 1024
	}
	s.batcher = NewBatcher(eng, BatcherConfig{
		Workers:  cfg.Workers,
		Window:   cfg.BatchWindow,
		MaxBatch: cfg.MaxBatch,
		OnBatch:  func(states int) { s.metrics.BatchSize.Observe(float64(states)) },
	})
	s.mux.HandleFunc("/v1/decide", s.handleDecide)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP surface of the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the currently served engine.
func (s *Server) Engine() Engine { return s.batcher.Engine() }

// Metrics exposes the instrumentation registry (read-only use intended).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains and stops the batcher workers.
func (s *Server) Close() { s.batcher.Close() }

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	start := time.Now()
	rb := reqBufPool.Get().(*reqBuf)
	// A request abandoned mid-queue (client gone) may still be read by a
	// batcher worker later; such buffers must not be recycled.
	defer func() {
		if rb != nil {
			reqBufPool.Put(rb)
		}
	}()
	rb.reset()

	body, err := readAllInto(rb.body[:0], io.LimitReader(r.Body, s.maxBody+1))
	rb.body = body
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(body)) > s.maxBody {
		s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body over %d bytes", s.maxBody))
		return
	}
	if err := rb.parseRequest(body); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := rb.validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(rb.states) > s.maxStates {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("serve: request carries %d states, limit %d", len(rb.states), s.maxStates))
		return
	}
	states := rb.finalize()
	decs, policy, err := s.batcher.Decide(r.Context(), states)
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		rb = nil
		return
	}
	rb.resp = rb.appendResponse(rb.resp[:0], decs, policy)
	w.Header().Set("Content-Type", "application/json")
	w.Write(rb.resp)

	s.metrics.RequestsTotal.Add(1)
	s.metrics.DecisionsTotal.Add(uint64(len(states)))
	s.metrics.Latency.ObserveDuration(time.Since(start))
}

// reloadSpec is the /reload request body. An empty body re-reads the
// daemon's original -model path.
type reloadSpec struct {
	Model  string `json:"model"`
	Policy string `json:"policy"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	var spec reloadSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &spec); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad reload spec: %w", err))
			return
		}
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if spec.Model == "" && spec.Policy == "" {
		if s.modelPath == "" {
			s.fail(w, http.StatusBadRequest,
				fmt.Errorf("serve: empty reload and no -model path to re-read"))
			return
		}
		spec.Model = s.modelPath
	}
	eng, err := LoadEngine(spec.Model, spec.Policy)
	if err != nil {
		// The old engine keeps serving; a bad reload is not an outage.
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if spec.Model != "" {
		s.modelPath = spec.Model
	}
	s.batcher.Swap(eng)
	s.metrics.ReloadsTotal.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"policy\":%q}\n", eng.Name())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w, s.batcher.Engine().Name())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "ok policy=%s\n", s.batcher.Engine().Name())
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.metrics.ErrorsTotal.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
}

// readAllInto is io.ReadAll into a reusable buffer.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
