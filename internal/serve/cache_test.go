package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDecisionCacheDecide: identical /v1/decide requests hit the cache
// and answer byte-identically to the engine path; a /reload invalidates
// everything even when the swapped-in policy is the same.
func TestDecisionCacheDecide(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		PolicyName:    "SJF",
		BatchWindow:   time.Microsecond,
		DecisionCache: 8,
	})
	_, plain := newTestServer(t, Config{PolicyName: "SJF", BatchWindow: time.Microsecond})

	body := []byte(`{"now":10,"free_procs":8,"total_procs":64,` +
		`"jobs":[[0,600,4],[-30,60,2],[-60,3600,32]],"scores":true}`)
	code, first := postJSON(t, ts.URL+"/v1/decide", body)
	if code != http.StatusOK {
		t.Fatalf("decide: %d %s", code, first)
	}
	if h, m := srv.Metrics().CacheHits.Load(), srv.Metrics().CacheMisses.Load(); h != 0 || m != 1 {
		t.Fatalf("cold cache hits/misses = %d/%d, want 0/1", h, m)
	}
	code, second := postJSON(t, ts.URL+"/v1/decide", body)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Errorf("cached answer differs:\n%s\n%s", first, second)
	}
	if h := srv.Metrics().CacheHits.Load(); h != 1 {
		t.Errorf("hits = %d after identical re-post, want 1", h)
	}
	// Parity with the cache-disabled daemon, hit and miss alike.
	if _, uncached := postJSON(t, plain.URL+"/v1/decide", body); !bytes.Equal(first, uncached) {
		t.Errorf("cache changed the answer:\n%s\n%s", first, uncached)
	}

	// Reload (same policy, new generation): the old entries are dead.
	if code, resp := postJSON(t, ts.URL+"/reload", []byte(`{"policy":"SJF"}`)); code != http.StatusOK {
		t.Fatalf("reload: %d %s", code, resp)
	}
	misses := srv.Metrics().CacheMisses.Load()
	if code, third := postJSON(t, ts.URL+"/v1/decide", body); code != http.StatusOK || !bytes.Equal(first, third) {
		t.Errorf("post-reload answer differs: %d", code)
	}
	if m := srv.Metrics().CacheMisses.Load(); m != misses+1 {
		t.Errorf("reload did not invalidate: misses %d -> %d", misses, m)
	}

	// A different queue state is a different key.
	other := []byte(`{"now":11,"free_procs":8,"total_procs":64,` +
		`"jobs":[[0,600,4],[-30,60,2],[-60,3600,32]],"scores":true}`)
	misses = srv.Metrics().CacheMisses.Load()
	if code, _ := postJSON(t, ts.URL+"/v1/decide", other); code != http.StatusOK {
		t.Fatal("other decide failed")
	}
	if m := srv.Metrics().CacheMisses.Load(); m != misses+1 {
		t.Errorf("changed state served from cache: misses %d -> %d", misses, m)
	}

	// The cache families appear on /metrics.
	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := hr.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	hr.Body.Close()
	if out := sb.String(); !strings.Contains(out, "rlserv_decision_cache_hits_total") ||
		!strings.Contains(out, "rlserv_decision_cache_misses_total") {
		t.Errorf("cache families missing from /metrics:\n%s", out)
	}
}

// TestDecisionCachePlace: the /place engine scorer shares the cache — a
// repeated placement against an unchanged fleet stops paying for engine
// scoring, and the answer never changes.
func TestDecisionCachePlace(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		BatchWindow:   time.Microsecond,
		DecisionCache: 64,
		Shards: []ShardConfig{
			{Name: "a", Procs: 64, PolicyName: "SJF"},
			{Name: "b", Procs: 64, PolicyName: "F1"},
		},
	})
	body := placeBody(t, `[0, 600, 4]`,
		clusterState("a", 32, 64, `[-30,60,2],[-60,3600,16]`),
		clusterState("b", 64, 64, ""))
	code, first := postJSON(t, ts.URL+"/place", body)
	if code != http.StatusOK {
		t.Fatalf("place: %d %s", code, first)
	}
	if h := srv.Metrics().CacheHits.Load(); h != 0 {
		t.Fatalf("cold place produced %d hits", h)
	}
	code, second := postJSON(t, ts.URL+"/place", body)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Errorf("cached placement differs:\n%s\n%s", first, second)
	}
	// Both shard scorings were answered from the cache.
	if h := srv.Metrics().CacheHits.Load(); h != 2 {
		t.Errorf("repeat place hits = %d, want 2", h)
	}
}

// TestDecisionCacheEviction: the FIFO ring retires the oldest inserted
// key once capacity is reached.
func TestDecisionCacheEviction(t *testing.T) {
	c := newDecisionCache(2, NewMetrics())
	c.put("k1", cacheEntry{policy: "a"})
	c.put("k2", cacheEntry{policy: "b"})
	c.put("k3", cacheEntry{policy: "c"}) // evicts k1
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived past capacity")
	}
	if e, ok := c.get("k2"); !ok || e.policy != "b" {
		t.Error("k2 evicted early")
	}
	if e, ok := c.get("k3"); !ok || e.policy != "c" {
		t.Error("k3 missing")
	}
	c.put("k4", cacheEntry{policy: "d"}) // evicts k2
	if _, ok := c.get("k2"); ok {
		t.Error("k2 survived past capacity")
	}
}
