package serve

import (
	"fmt"
	"strconv"

	"rlsched/internal/job"
	"rlsched/internal/sim"
)

// The fast parser handles the canonical compact request emitted by the
// load generator and other high-rate clients: objects with the documented
// keys, numbers, booleans, and jobs as arrays of numbers. Anything else —
// string values, escapes, object job rows, unknown keys — makes it bail
// with an error and the caller retries with encoding/json. Bailing is
// cheap (no allocation happens before the first incompatibility), so the
// fallback costs nothing on the slow path and the fast path skips all of
// encoding/json's reflection.

var errFastParse = fmt.Errorf("serve: not a canonical compact request")

type fastParser struct {
	b []byte
	i int
}

func (p *fastParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *fastParser) eat(c byte) bool {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *fastParser) peek() byte {
	p.ws()
	if p.i < len(p.b) {
		return p.b[p.i]
	}
	return 0
}

// key parses a JSON object key (no escapes) and its colon.
func (p *fastParser) key() (string, bool) {
	if !p.eat('"') {
		return "", false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '\\' {
			return "", false
		}
		if c == '"' {
			k := string(p.b[start:p.i])
			p.i++
			if !p.eat(':') {
				return "", false
			}
			return k, true
		}
		p.i++
	}
	return "", false
}

func (p *fastParser) number() (float64, bool) {
	p.ws()
	start := p.i
	intOnly := true
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c >= '0' && c <= '9':
			p.i++
		case c == '-', c == '+', c == '.', c == 'e', c == 'E':
			if c != '-' || p.i != start {
				intOnly = false
			}
			p.i++
		default:
			goto done
		}
	}
done:
	if p.i == start {
		return 0, false
	}
	// Integer tokens (the overwhelmingly common case: SWF times are whole
	// seconds) skip strconv entirely.
	if intOnly && p.i-start <= 15 {
		s := p.b[start:p.i]
		neg := false
		if s[0] == '-' {
			neg = true
			s = s[1:]
		}
		if len(s) == 0 {
			return 0, false
		}
		n := 0.0
		for _, c := range s {
			n = n*10 + float64(c-'0')
		}
		if neg {
			n = -n
		}
		return n, true
	}
	v, err := strconv.ParseFloat(string(p.b[start:p.i]), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (p *fastParser) boolean() (bool, bool) {
	p.ws()
	if len(p.b)-p.i >= 4 && string(p.b[p.i:p.i+4]) == "true" {
		p.i += 4
		return true, true
	}
	if len(p.b)-p.i >= 5 && string(p.b[p.i:p.i+5]) == "false" {
		p.i += 5
		return false, true
	}
	return false, false
}

// jobRows parses [[...],[...],...] into the arena, returning the covered
// arena range.
func (p *fastParser) jobRows(rb *reqBuf) (int, int, bool) {
	start := len(rb.arena)
	if !p.eat('[') {
		return 0, 0, false
	}
	if p.eat(']') {
		return start, start, true
	}
	var row [5]float64
	for {
		if !p.eat('[') {
			return 0, 0, false
		}
		n := 0
		for {
			v, ok := p.number()
			if !ok || n == len(row) {
				return 0, 0, false
			}
			row[n] = v
			n++
			if p.eat(']') {
				break
			}
			if !p.eat(',') {
				return 0, 0, false
			}
		}
		if n < 3 {
			return 0, 0, false
		}
		j := job.Job{
			SubmitTime:     row[0],
			RequestedTime:  row[1],
			RequestedProcs: int(row[2]),
			UserID:         -1,
			StartTime:      -1,
			EndTime:        -1,
		}
		if n > 3 {
			j.UserID = int(row[3])
		}
		if n > 4 {
			j.ID = int(row[4])
		}
		rb.arena = append(rb.arena, j)
		if p.eat(']') {
			break
		}
		if !p.eat(',') {
			return 0, 0, false
		}
	}
	return start, len(rb.arena), true
}

// state parses one {...} queue state into the arena/state lists.
func (p *fastParser) state(rb *reqBuf) bool {
	if !p.eat('{') {
		return false
	}
	var st QueueState
	start, end := len(rb.arena), len(rb.arena)
	if p.eat('}') {
		rb.addState(st, start, end)
		return true
	}
	for {
		k, ok := p.key()
		if !ok {
			return false
		}
		switch k {
		case "now":
			v, ok := p.number()
			if !ok {
				return false
			}
			st.Now = v
		case "free_procs":
			v, ok := p.number()
			if !ok {
				return false
			}
			st.View.FreeProcs = int(v)
		case "total_procs":
			v, ok := p.number()
			if !ok {
				return false
			}
			st.View.TotalProcs = int(v)
		case "queue_len":
			v, ok := p.number()
			if !ok {
				return false
			}
			st.QueueLen = int(v)
		case "scores":
			v, ok := p.boolean()
			if !ok {
				return false
			}
			st.WantScores = v
		case "jobs":
			s, e, ok := p.jobRows(rb)
			if !ok {
				return false
			}
			start, end = s, e
		default:
			return false
		}
		if p.eat('}') {
			break
		}
		if !p.eat(',') {
			return false
		}
	}
	rb.addState(st, start, end)
	return true
}

// parseFast attempts the canonical compact parse of a full request body.
func (rb *reqBuf) parseFast(body []byte) error {
	p := &fastParser{b: body}
	if !p.eat('{') {
		return errFastParse
	}
	// Batch form: {"states":[{...},...]}
	if k, ok := p.key(); ok && k == "states" {
		if !p.eat('[') {
			return errFastParse
		}
		rb.batch = true
		for {
			if !p.state(rb) {
				return rb.bail()
			}
			if p.eat(']') {
				break
			}
			if !p.eat(',') {
				return rb.bail()
			}
		}
		if !p.eat('}') {
			return rb.bail()
		}
		if p.ws(); p.i != len(p.b) {
			return rb.bail()
		}
		return nil
	}
	// Single-state form: rewind and parse the whole object as a state.
	p.i = 0
	rb.batch = false
	if !p.state(rb) {
		return rb.bail()
	}
	if p.ws(); p.i != len(p.b) {
		return rb.bail()
	}
	return nil
}

// bail resets partially parsed request state before the slow-path retry.
func (rb *reqBuf) bail() error {
	rb.arena = rb.arena[:0]
	rb.states = rb.states[:0]
	rb.ranges = rb.ranges[:0]
	rb.batch = false
	return errFastParse
}

// ClusterViewOf is a tiny helper for tests constructing states.
func ClusterViewOf(free, total int) sim.ClusterView {
	return sim.ClusterView{FreeProcs: free, TotalProcs: total}
}
