package serve

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Negative-path coverage for the hand-rolled fast parser guarding the
// public decision endpoint: empty queues, oversized payloads, truncated
// and garbage JSON. Each case is checked twice — once against the parser
// unit (does it bail to the encoding/json fallback cleanly, leaving no
// partial state behind?) and once through the HTTP surface (is the
// request rejected with the right status?).

// TestParseFastBailsClean: bodies the fast parser cannot handle must
// return errFastParse with every partially parsed buffer reset, so the
// encoding/json fallback starts from a clean slate.
func TestParseFastBailsClean(t *testing.T) {
	bail := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"garbage bytes", "\x00\xff\xfe{"},
		{"not an object", `[1,2,3]`},
		{"truncated mid-key", `{"now`},
		{"truncated mid-number", `{"now":12`}, // number at EOF parses; missing } bails
		{"truncated mid-jobs", `{"now":0,"free_procs":1,"total_procs":8,"jobs":[[0,60`}, // unclosed row
		{"truncated batch", `{"states":[{"now":0,"jobs":[[0,60,2]]}`},
		{"string value", `{"now":"zero","jobs":[[0,60,2]]}`},
		{"escaped key", `{"n\ow":0}`},
		{"empty batch", `{"states":[]}`}, // legal JSON; only the fallback accepts it
		{"unknown key", `{"nope":1}`},
		{"object job row", `{"jobs":[{"submit_time":0}]}`},
		{"six-field job row", `{"jobs":[[0,60,2,1,7,9]]}`},
		{"trailing garbage", `{"now":0,"jobs":[[0,60,2]]}x`},
		{"boolean typo", `{"scores":ture,"jobs":[[0,60,2]]}`},
	}
	for _, tc := range bail {
		t.Run(tc.name, func(t *testing.T) {
			rb := &reqBuf{}
			// Seed some stale-looking state via a successful parse first,
			// so a dirty bail would be visible.
			if err := rb.parseFast([]byte(`{"now":1,"free_procs":2,"total_procs":8,"jobs":[[0,60,2]]}`)); err != nil {
				t.Fatalf("canonical body failed the fast parse: %v", err)
			}
			rb.reset()
			if err := rb.parseFast([]byte(tc.body)); err != errFastParse {
				t.Fatalf("parseFast(%q) = %v, want errFastParse", tc.body, err)
			}
			if len(rb.states) != 0 || len(rb.arena) != 0 || len(rb.ranges) != 0 || rb.batch {
				t.Fatalf("bail left partial state: %d states, %d arena jobs, batch=%v",
					len(rb.states), len(rb.arena), rb.batch)
			}
		})
	}
}

// TestParseFastAcceptsEdgeShapes: shapes that are canonical but easy to
// get wrong in a hand-rolled parser.
func TestParseFastAcceptsEdgeShapes(t *testing.T) {
	accept := []struct {
		name   string
		body   string
		states int
		jobs   int
	}{
		{"empty object state", `{}`, 1, 0},
		{"empty jobs array", `{"now":0,"free_procs":1,"total_procs":8,"jobs":[]}`, 1, 0},
		{"whitespace everywhere", " {\n\t\"now\" : 3.5 ,\r\"jobs\" : [ [ 0 , 60 , 2 ] ] } ", 1, 1},
		{"negative and float numbers", `{"now":-12.5,"jobs":[[-3600,1e3,2,-1,12]]}`, 1, 1},
		{"batch of two", `{"states":[{"jobs":[[0,60,2]]},{"jobs":[[0,90,4],[1,30,1]]}]}`, 2, 3},
	}
	for _, tc := range accept {
		t.Run(tc.name, func(t *testing.T) {
			rb := &reqBuf{}
			if err := rb.parseFast([]byte(tc.body)); err != nil {
				t.Fatalf("parseFast(%q) = %v, want success", tc.body, err)
			}
			if len(rb.states) != tc.states || len(rb.arena) != tc.jobs {
				t.Fatalf("parsed %d states / %d jobs, want %d / %d",
					len(rb.states), len(rb.arena), tc.states, tc.jobs)
			}
		})
	}
}

// TestDecideNegativePaths drives the same failure classes end-to-end:
// whatever path a body takes (fast parse, fallback, validation, size
// caps), the endpoint must answer 4xx — never 200, never a hang or panic.
func TestDecideNegativePaths(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PolicyName:          "SJF",
		BatchWindow:         time.Microsecond,
		MaxBodyBytes:        4 << 10,
		MaxStatesPerRequest: 8,
	})
	cases := []struct {
		name string
		body []byte
		code int
	}{
		{"empty body", nil, 400},
		{"garbage bytes", []byte("\x00\xff\xfe{"), 400},
		{"truncated json", []byte(`{"now":0,"jobs":[[0,60,2]`), 400},
		{"empty queue", []byte(`{"now":0,"free_procs":4,"total_procs":8,"jobs":[]}`), 400},
		{"empty batch", []byte(`{"states":[]}`), 400},
		{"empty state in batch", []byte(`{"states":[{"jobs":[[0,60,2]],"total_procs":8,"free_procs":4},{"jobs":[]}]}`), 400},
		{"six-field job row", []byte(`{"now":0,"free_procs":4,"total_procs":8,"jobs":[[0,60,2,1,7,9]]}`), 400},
		{"oversized queue (states cap)", oversizedStates(t, 9), 400},
		{"oversized body (byte cap)", bytes.Repeat([]byte("x"), 5<<10), 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postJSON(t, ts.URL+"/v1/decide", tc.body)
			if code != tc.code {
				t.Fatalf("got %d (%s), want %d", code, out, tc.code)
			}
			if !bytes.Contains(out, []byte(`"error"`)) {
				t.Fatalf("rejection must carry an error message: %s", out)
			}
		})
	}
	// The daemon must still answer correctly after the abuse.
	code, out := postJSON(t, ts.URL+"/v1/decide",
		[]byte(`{"now":0,"free_procs":4,"total_procs":8,"jobs":[[0,60,2]]}`))
	if code != 200 || !strings.Contains(string(out), `"pick":0`) {
		t.Fatalf("healthy request after abuse: %d %s", code, out)
	}
}

func oversizedStates(t *testing.T, n int) []byte {
	t.Helper()
	states := testStates(t, n, 2)
	return EncodeStates(states)
}
