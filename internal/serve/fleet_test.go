package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newFleetServer builds a three-shard heterogeneous fleet daemon: a big
// cluster served by a kernel model, two smaller ones by heuristics.
func newFleetServer(t *testing.T, router string) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "kernel", 32)
	return newTestServer(t, Config{
		BatchWindow: time.Microsecond,
		PlaceRouter: router,
		Shards: []ShardConfig{
			{Name: "large", Procs: 256, ModelPath: path},
			{Name: "mid", Procs: 128, PolicyName: "SJF"},
			{Name: "small", Procs: 64, PolicyName: "F1"},
		},
	})
}

// placeBody builds a /place request: one job and a state per cluster.
func placeBody(t *testing.T, jobRow string, clusters ...string) []byte {
	t.Helper()
	return []byte(fmt.Sprintf(`{"job":%s,"clusters":[%s]}`, jobRow, strings.Join(clusters, ",")))
}

func clusterState(name string, free, total int, jobs string) string {
	return fmt.Sprintf(`{"name":%q,"now":0,"free_procs":%d,"total_procs":%d,"jobs":[%s]}`,
		name, free, total, jobs)
}

type placeResp struct {
	Cluster string             `json:"cluster"`
	Shard   int                `json:"shard"`
	Router  string             `json:"router"`
	Scores  map[string]float64 `json:"scores"`
}

// TestPlaceEndpoint: capacity filtering, routing, determinism and the
// response shape of the placement endpoint.
func TestPlaceEndpoint(t *testing.T) {
	srv, ts := newFleetServer(t, "")

	// A 200-proc job fits only the large cluster, whatever the scores.
	body := placeBody(t, `[0,3600,200]`,
		clusterState("large", 256, 256, ""),
		clusterState("mid", 128, 128, ""),
		clusterState("small", 64, 64, ""))
	code, out := postJSON(t, ts.URL+"/place", body)
	if code != http.StatusOK {
		t.Fatalf("place: %d %s", code, out)
	}
	var resp placeResp
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("%v in %s", err, out)
	}
	if resp.Cluster != "large" || resp.Shard != 0 {
		t.Fatalf("wide job placed on %q (shard %d), want large/0", resp.Cluster, resp.Shard)
	}
	if resp.Router != "engine-scored" {
		t.Fatalf("router = %q, want engine-scored", resp.Router)
	}
	if _, ok := resp.Scores["mid"]; ok {
		t.Fatal("infeasible clusters must not carry scores")
	}
	if _, ok := resp.Scores["large"]; !ok {
		t.Fatal("the feasible cluster must carry a score")
	}

	// A small job with a busy large cluster and an idle small one: every
	// cluster is feasible, all three scored, and the answer is stable.
	body = placeBody(t, `[0,60,4]`,
		clusterState("large", 0, 256, `[0,30000,128],[0,30000,128]`),
		clusterState("mid", 16, 128, `[0,7200,64]`),
		clusterState("small", 64, 64, ""))
	code, out = postJSON(t, ts.URL+"/place", body)
	if code != http.StatusOK {
		t.Fatalf("place: %d %s", code, out)
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != 3 {
		t.Fatalf("scores = %v, want all three clusters", resp.Scores)
	}
	for i := 0; i < 3; i++ {
		_, again := postJSON(t, ts.URL+"/place", body)
		if !bytes.Equal(out, again) {
			t.Fatalf("placement not deterministic:\n%s\n%s", out, again)
		}
	}

	if got := srv.Metrics().PlaceTotal.Load(); got != 5 {
		t.Fatalf("place_total = %d, want 5", got)
	}
}

// TestPlaceRouterVariants: the load-based pipelines must be selectable
// and route a small job to the idle cluster (least-loaded) vs the tight
// fit (binpack).
func TestPlaceRouterVariants(t *testing.T) {
	clusters := []string{
		clusterState("large", 200, 256, ""),
		clusterState("mid", 8, 128, ""),
		clusterState("small", 64, 64, `[0,3600,32]`),
	}
	body := placeBody(t, `[0,60,8]`, clusters...)

	_, tsSpread := newFleetServer(t, "least-loaded")
	code, out := postJSON(t, tsSpread.URL+"/place", body)
	if code != 200 {
		t.Fatalf("least-loaded: %d %s", code, out)
	}
	var resp placeResp
	json.Unmarshal(out, &resp)
	if resp.Cluster == "small" {
		t.Fatalf("least-loaded picked the queued cluster: %s", out)
	}

	_, tsPack := newFleetServer(t, "binpack")
	code, out = postJSON(t, tsPack.URL+"/place", body)
	if code != 200 {
		t.Fatalf("binpack: %d %s", code, out)
	}
	json.Unmarshal(out, &resp)
	if resp.Cluster != "mid" {
		t.Fatalf("binpack picked %q, want the tight 8-free mid fit", resp.Cluster)
	}
}

// TestPlaceValidation: every malformed placement request is rejected with
// a 4xx, and /place without fleet mode is a 404.
func TestPlaceValidation(t *testing.T) {
	_, ts := newFleetServer(t, "")
	ok := clusterState("large", 256, 256, "")
	bad := []struct {
		body []byte
		code int
	}{
		{[]byte(`not json`), 400},
		{placeBody(t, `[0,60,4]`), 400},                                             // no clusters
		{placeBody(t, `[0,0,4]`, ok), 400},                                          // zero runtime
		{placeBody(t, `[0,60,0]`, ok), 400},                                         // zero procs
		{placeBody(t, `[0,60,4]`, clusterState("nope", 1, 1, "")), 400},             // unknown cluster
		{placeBody(t, `[0,60,4]`, clusterState("large", 10, 999, "")), 400},         // procs mismatch
		{placeBody(t, `[0,60,4]`, clusterState("large", 300, 256, "")), 400},        // free > total
		{placeBody(t, `[0,60,4]`, ok, ok), 400},                                     // duplicate
		{placeBody(t, `[0,60,4]`, clusterState("large", 256, 256, `[0,0,1]`)), 400}, // bad queued job
		{placeBody(t, `[0,60,500]`, ok), 422},                                       // fits nowhere
	}
	for i, tc := range bad {
		code, out := postJSON(t, ts.URL+"/place", tc.body)
		if code != tc.code {
			t.Errorf("bad place %d: got %d (%s), want %d", i, code, out, tc.code)
		}
	}
	resp, err := http.Get(ts.URL + "/place")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /place = %d, want 405", resp.StatusCode)
	}

	_, plain := newTestServer(t, Config{PolicyName: "SJF", BatchWindow: time.Microsecond})
	code, _ := postJSON(t, plain.URL+"/place", placeBody(t, `[0,60,4]`, ok))
	if code != http.StatusNotFound {
		t.Errorf("/place outside fleet mode = %d, want 404", code)
	}
}

// newMigrateServer is newFleetServer with the /migrate endpoint enabled.
func newMigrateServer(t *testing.T, margin float64) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, Config{
		BatchWindow:   time.Microsecond,
		PlaceRouter:   "least-loaded",
		Migrate:       true,
		MigrateMargin: margin,
		Shards: []ShardConfig{
			{Name: "large", Procs: 256, PolicyName: "SJF"},
			{Name: "mid", Procs: 128, PolicyName: "SJF"},
			{Name: "small", Procs: 64, PolicyName: "F1"},
		},
	})
}

func migrateBody(t *testing.T, jobRow, from string, clusters ...string) []byte {
	t.Helper()
	return []byte(fmt.Sprintf(`{"job":%s,"from":%q,"clusters":[%s]}`,
		jobRow, from, strings.Join(clusters, ",")))
}

type migrateResp struct {
	Migrate bool               `json:"migrate"`
	Cluster string             `json:"cluster"`
	From    string             `json:"from"`
	Margin  float64            `json:"margin"`
	Router  string             `json:"router"`
	Scores  map[string]float64 `json:"scores"`
}

// TestMigrateEndpoint: a stranded job on a loaded cluster is recommended
// onto a drained one; a fresh destination that is merely "a bit lighter"
// (or not drained) is not worth the disruption; counters track both.
func TestMigrateEndpoint(t *testing.T) {
	srv, ts := newMigrateServer(t, 0.25)

	// large is buried, small is idle: clear rescue.
	rescue := migrateBody(t, `[-600,600,32]`, "large",
		clusterState("large", 0, 256, `[0,30000,128],[0,30000,128]`),
		clusterState("mid", 0, 128, `[0,30000,64]`),
		clusterState("small", 64, 64, ""))
	code, out := postJSON(t, ts.URL+"/migrate", rescue)
	if code != http.StatusOK {
		t.Fatalf("migrate: %d %s", code, out)
	}
	var resp migrateResp
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("%v in %s", err, out)
	}
	if !resp.Migrate || resp.Cluster != "small" || resp.From != "large" {
		t.Fatalf("stranded job not rescued: %s", out)
	}
	if resp.Margin <= 0.25 {
		t.Fatalf("rescue margin %g must clear the hysteresis", resp.Margin)
	}
	if resp.Router != "least-loaded" {
		t.Fatalf("router = %q, want least-loaded", resp.Router)
	}

	// The best alternative is busy too (not drained): stay put even
	// though its score is higher.
	stay := migrateBody(t, `[-600,600,32]`, "large",
		clusterState("large", 0, 256, `[0,30000,128],[0,30000,128]`),
		clusterState("mid", 64, 128, `[0,30000,64]`),
		clusterState("small", 0, 64, `[0,9000,64]`))
	code, out = postJSON(t, ts.URL+"/migrate", stay)
	if code != http.StatusOK {
		t.Fatalf("migrate: %d %s", code, out)
	}
	json.Unmarshal(out, &resp)
	if resp.Migrate {
		t.Fatalf("moved onto an undrained cluster: %s", out)
	}
	if resp.Cluster != "large" {
		t.Fatalf("stay-put answer names %q, want the incumbent", resp.Cluster)
	}

	if got := srv.Metrics().MigrateChecksTotal.Load(); got != 2 {
		t.Fatalf("migrate_checks_total = %d, want 2", got)
	}
	counts := srv.Metrics().MigrationCounts()
	if counts[0] != 0 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("per-cluster migration counts = %v, want [0 0 1]", counts)
	}

	// Counters surface in /metrics.
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, _ := io.ReadAll(r.Body)
	for _, want := range []string{
		"rlserv_migrate_checks_total 2",
		"rlserv_migrate_latency_seconds_count 2",
		"rlserv_migrate_latency_seconds_bucket",
		`rlserv_migrations_total{cluster="small"} 1`,
		`rlserv_migrations_total{cluster="large"} 0`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestMigrateValidation: malformed migrate requests 4xx; the endpoint is
// 404 without -migrate and outside fleet mode; -migrate without shards
// fails at startup.
func TestMigrateValidation(t *testing.T) {
	_, ts := newMigrateServer(t, 0)
	ok := clusterState("large", 256, 256, "")
	bad := []struct {
		body []byte
		code int
	}{
		{[]byte(`not json`), 400},
		{migrateBody(t, `[0,60,4]`, "large"), 400},                                   // no clusters
		{migrateBody(t, `[0,0,4]`, "large", ok), 400},                                // zero runtime
		{migrateBody(t, `[0,60,4]`, "nope", ok), 400},                                // unknown incumbent
		{migrateBody(t, `[0,60,4]`, "mid", ok), 400},                                 // incumbent state missing
		{migrateBody(t, `[0,60,4]`, "large", clusterState("bad", 1, 1, "")), 400},    // unknown cluster
		{migrateBody(t, `[0,60,4]`, "large", clusterState("large", 9, 99, "")), 400}, // procs mismatch
	}
	for i, tc := range bad {
		code, out := postJSON(t, ts.URL+"/migrate", tc.body)
		if code != tc.code {
			t.Errorf("bad migrate %d: got %d (%s), want %d", i, code, out, tc.code)
		}
	}
	r, err := http.Get(ts.URL + "/migrate")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /migrate = %d, want 405", r.StatusCode)
	}

	// Fleet mode without -migrate: 404.
	_, plain := newFleetServer(t, "")
	code, _ := postJSON(t, plain.URL+"/migrate", migrateBody(t, `[0,60,4]`, "large", ok))
	if code != http.StatusNotFound {
		t.Errorf("/migrate without -migrate = %d, want 404", code)
	}

	// -migrate needs shards, and the margin must be sane (a NaN margin
	// would answer migrate:false forever).
	for _, cfg := range []Config{
		{PolicyName: "SJF", Migrate: true},
		{Migrate: true, MigrateMargin: -0.5,
			Shards: []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}}},
		{Migrate: true, MigrateMargin: math.NaN(),
			Shards: []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}}},
	} {
		if srv, err := NewServer(cfg); err == nil {
			srv.Close()
			t.Errorf("config %+v must fail at startup", cfg)
		}
	}
}

// TestFleetConfigValidation: misconfigurations must fail at startup, not
// surface later as puzzling 404s, and must not leak running shard
// batchers.
func TestFleetConfigValidation(t *testing.T) {
	bad := []Config{
		{PolicyName: "SJF", PlaceRouter: "binpack"}, // router without shards
		{Shards: []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}}, PlaceRouter: "binpakc"},
		{Shards: []ShardConfig{{Procs: 8, PolicyName: "SJF"}}},                                                        // unnamed shard
		{Shards: []ShardConfig{{Name: "a", PolicyName: "SJF"}}},                                                       // no procs
		{Shards: []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}, {Name: "a", Procs: 8, PolicyName: "F1"}}},    // duplicate
		{Shards: []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}, {Name: "b", Procs: 8, PolicyName: "bogus"}}}, // bad engine
		{Shards: []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}}, FairWeight: 1, FairWindow: -3},              // negative window
		{Shards: []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}}, FairWindow: 10},                             // window without weight
	}
	for i, cfg := range bad {
		if srv, err := NewServer(cfg); err == nil {
			srv.Close()
			t.Errorf("config %d must fail at startup", i)
		}
	}
}

// TestDecideShardRouting: /v1/decide?cluster=NAME answers with that
// shard's policy; bare /v1/decide serves the first shard in a fleet-only
// daemon.
func TestDecideShardRouting(t *testing.T) {
	_, ts := newFleetServer(t, "")
	st := testStates(t, 1, 8)[0]
	body := EncodeStates([]*QueueState{st})

	var resp struct {
		Policy string `json:"policy"`
	}
	code, out := postJSON(t, ts.URL+"/v1/decide?cluster=mid", body)
	if code != 200 {
		t.Fatalf("decide on mid: %d %s", code, out)
	}
	json.Unmarshal(out, &resp)
	if resp.Policy != "SJF" {
		t.Fatalf("mid shard answered with %q, want SJF", resp.Policy)
	}
	code, out = postJSON(t, ts.URL+"/v1/decide", body)
	if code != 200 {
		t.Fatalf("bare decide: %d %s", code, out)
	}
	json.Unmarshal(out, &resp)
	if resp.Policy != "kernel" {
		t.Fatalf("bare decide answered with %q, want the first shard's kernel", resp.Policy)
	}
	code, _ = postJSON(t, ts.URL+"/v1/decide?cluster=nope", body)
	if code != http.StatusNotFound {
		t.Fatalf("unknown cluster = %d, want 404", code)
	}
}

// TestFleetMetricsExported: placement counters and the placement-latency
// histogram appear in /metrics in the existing Prometheus style.
func TestFleetMetricsExported(t *testing.T) {
	_, ts := newFleetServer(t, "")
	body := placeBody(t, `[0,3600,200]`,
		clusterState("large", 256, 256, ""),
		clusterState("mid", 128, 128, ""),
		clusterState("small", 64, 64, ""))
	for i := 0; i < 3; i++ {
		if code, out := postJSON(t, ts.URL+"/place", body); code != 200 {
			t.Fatalf("place: %d %s", code, out)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`rlserv_placements_total{cluster="large"} 3`,
		`rlserv_placements_total{cluster="mid"} 0`,
		"rlserv_place_latency_seconds_bucket",
		"rlserv_place_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestConcurrentPlaceDecideReload hammers /place and per-shard /v1/decide
// from many goroutines while one fleet shard's engine hot-swaps mid-load.
// Under -race this is the proof the placement path, the shard batchers and
// shard reload share no unsynchronized state; zero requests may fail.
func TestConcurrentPlaceDecideReload(t *testing.T) {
	srv, ts := newFleetServer(t, "")

	placeBodies := [][]byte{
		placeBody(t, `[0,60,4]`,
			clusterState("large", 100, 256, `[0,3600,32],[-60,600,8]`),
			clusterState("mid", 64, 128, `[0,900,16]`),
			clusterState("small", 0, 64, "")),
		placeBody(t, `[0,7200,160]`,
			clusterState("large", 256, 256, ""),
			clusterState("mid", 128, 128, "")),
	}
	states := testStates(t, 8, 16)
	decideBodies := make([][]byte, len(states))
	for i := range states {
		decideBodies[i] = EncodeStates(states[i : i+1])
	}
	targets := []string{"/v1/decide", "/v1/decide?cluster=mid", "/v1/decide?cluster=small"}

	const clients = 6
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var code int
				var out []byte
				if i%2 == 0 {
					code, out = postJSON(t, ts.URL+"/place", placeBodies[(c+i)%len(placeBodies)])
				} else {
					code, out = postJSON(t, ts.URL+targets[(c+i)%len(targets)], decideBodies[(c+i)%len(decideBodies)])
				}
				if code != http.StatusOK {
					errs <- fmt.Sprintf("client %d req %d: status %d: %s", c, i, code, out)
					return
				}
			}
		}(c)
	}

	// Swap the mid shard between SJF and F1 while the load runs — the
	// shard keeps answering and the placement scorer keeps reading
	// whichever engine is current.
	reloads := [][]byte{
		[]byte(`{"cluster":"mid","policy":"F1"}`),
		[]byte(`{"cluster":"mid","policy":"SJF"}`),
	}
	for i := 0; i < 10; i++ {
		code, out := postJSON(t, ts.URL+"/reload", reloads[i%len(reloads)])
		if code != http.StatusOK {
			t.Fatalf("shard reload %d failed: %d %s", i, code, out)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := srv.Metrics().ReloadsTotal.Load(); got != 10 {
		t.Fatalf("reloads_total = %d, want 10", got)
	}
	if got := srv.Metrics().ErrorsTotal.Load(); got != 0 {
		t.Fatalf("errors_total = %d, want 0", got)
	}
	total := uint64(0)
	for _, n := range srv.Metrics().Placements() {
		total += n
	}
	if total != srv.Metrics().PlaceTotal.Load() || total == 0 {
		t.Fatalf("per-cluster placements %d != total %d (or zero)",
			total, srv.Metrics().PlaceTotal.Load())
	}
	// Shard reloads must not touch the base engine or other shards.
	if code, out := postJSON(t, ts.URL+"/v1/decide", decideBodies[0]); code != 200 ||
		!bytes.Contains(out, []byte(`"policy":"kernel"`)) {
		t.Fatalf("base engine changed: %d %s", code, out)
	}
}
