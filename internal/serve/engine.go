// Package serve is the online scheduling-decision service: it loads a
// trained nn.Snapshot (or a named heuristic from internal/sched) and serves
// scheduling decisions over an HTTP JSON API. The design goal is
// throughput on the decision hot path — concurrent requests are coalesced
// into single batched forward passes through the policy network, models
// hot-swap atomically under load, and the whole pipeline reuses buffers
// instead of allocating per decision.
package serve

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"rlsched/internal/job"
	"rlsched/internal/nn"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
)

// QueueState is one decision problem: the visible pending queue plus the
// cluster view at decision time. It mirrors what sim.Scheduler.Pick sees.
type QueueState struct {
	Jobs []*job.Job
	Now  float64
	View sim.ClusterView
	// QueueLen is the full pending-queue length (≥ len(Jobs) when the
	// caller's backlog exceeds the visible window). 0 means len(Jobs).
	QueueLen int
	// WantScores asks the engine to return per-job scores, not just the
	// pick. Off by default: encoding 128 floats per decision costs more
	// than the decision itself.
	WantScores bool
}

func (s *QueueState) queueLen() int {
	if s.QueueLen > 0 {
		return s.QueueLen
	}
	return len(s.Jobs)
}

// Decision is the answer for one QueueState.
type Decision struct {
	// Pick indexes the chosen job in QueueState.Jobs.
	Pick int
	// Scores holds one value per visible job, higher is better
	// (Pick = argmax). Nil unless the state asked for scores.
	Scores []float64
}

// Engine turns queue states into decisions. DecideBatch handles each state
// independently; implementations must be safe for concurrent use by any
// number of goroutines — the server swaps engines atomically and never
// mutates one in place.
type Engine interface {
	// Name identifies the policy ("kernel", "FCFS", ...) for metrics and
	// responses.
	Name() string
	// MaxJobs is the most jobs scored per state (0 = unbounded). Extra
	// jobs beyond the cap are cut off in FCFS order, exactly like the
	// simulator's MAX_OBSV_SIZE window.
	MaxJobs() int
	// DecideBatch fills out[i] for states[i]. len(out) == len(states).
	DecideBatch(states []*QueueState, out []Decision)
}

// PolicyEngine serves a trained policy network. One forward pass scores a
// whole batch of states, which is where the request batcher's coalescing
// pays off.
type PolicyEngine struct {
	net    nn.PolicyNet
	inf    nn.Inferer // the shared graph-free fast path (nn.AsInferer)
	maxObs int
	feat   int
	pool   sync.Pool // *policyScratch
}

type policyScratch struct {
	obs    []float64
	logits []float64
}

// NewPolicyEngine wraps a policy network built for sim.JobFeatures
// features per job (the shared queue-state encoding). The decision path is
// the same nn.Inferer fast path training rollouts use — every built-in
// architecture is graph-free here.
func NewPolicyEngine(net nn.PolicyNet) (*PolicyEngine, error) {
	maxObs, feat := net.Dims()
	if feat != sim.JobFeatures {
		return nil, fmt.Errorf("serve: policy expects %d features per job, encoder produces %d",
			feat, sim.JobFeatures)
	}
	return &PolicyEngine{net: net, inf: nn.AsInferer(net), maxObs: maxObs, feat: feat}, nil
}

// SyncFrom refreshes the engine's weights in place from a same-architecture
// policy (a cheap alternative to materializing a snapshot when a training
// loop serves its own policy). The caller must guarantee no DecideBatch is
// in flight — a live server should keep swapping whole engines atomically
// via /reload instead.
func (e *PolicyEngine) SyncFrom(src nn.PolicyNet) error {
	return nn.SyncParams(e.net, src)
}

// Name implements Engine.
func (e *PolicyEngine) Name() string { return e.net.Kind() }

// MaxJobs implements Engine.
func (e *PolicyEngine) MaxJobs() int { return e.maxObs }

// DecideBatch implements Engine: encode every state into one observation
// matrix, run one forward pass, argmax each state's visible slots.
func (e *PolicyEngine) DecideBatch(states []*QueueState, out []Decision) {
	b := len(states)
	rowLen := e.maxObs * e.feat
	sc, _ := e.pool.Get().(*policyScratch)
	if sc == nil {
		sc = &policyScratch{}
	}
	if cap(sc.obs) < b*rowLen {
		sc.obs = make([]float64, b*rowLen)
		sc.logits = make([]float64, b*e.maxObs)
	}
	obs := sc.obs[:b*rowLen]
	logits := sc.logits[:b*e.maxObs]

	for i, st := range states {
		visible := st.Jobs
		if len(visible) > e.maxObs {
			visible = visible[:e.maxObs]
		}
		sim.BuildObsInto(obs[i*rowLen:(i+1)*rowLen], visible, st.Now, st.View, st.queueLen(), e.maxObs)
	}
	e.inf.InferLogits(obs, b, logits)
	for i, st := range states {
		row := logits[i*e.maxObs : (i+1)*e.maxObs]
		limit := len(st.Jobs)
		if limit > e.maxObs {
			limit = e.maxObs
		}
		best := 0
		for j := 1; j < limit; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = Decision{Pick: best}
		if st.WantScores {
			out[i].Scores = append([]float64(nil), row[:limit]...)
		}
	}
	e.pool.Put(sc)
}

// HeuristicEngine serves a priority-function scheduler. There is nothing
// to batch — scoring is a few flops per job — but it speaks the same
// interface so heuristics and trained models swap freely, including live
// via /reload.
type HeuristicEngine struct {
	h *sched.Priority
}

// NewHeuristicEngine wraps a stateless heuristic.
func NewHeuristicEngine(h *sched.Priority) *HeuristicEngine {
	return &HeuristicEngine{h: h}
}

// Name implements Engine.
func (e *HeuristicEngine) Name() string { return e.h.Name }

// MaxJobs implements Engine.
func (e *HeuristicEngine) MaxJobs() int { return 0 }

// DecideBatch implements Engine: argmin of the priority score per state.
// Reported scores are negated so the "higher is better, Pick = argmax"
// contract holds across engines.
func (e *HeuristicEngine) DecideBatch(states []*QueueState, out []Decision) {
	for i, st := range states {
		var scores []float64
		if st.WantScores {
			scores = make([]float64, len(st.Jobs))
		}
		best := 0
		bestScore := 0.0
		for j, jb := range st.Jobs {
			s := e.h.Score(jb, st.Now, st.View)
			if j == 0 || s < bestScore {
				bestScore = s
				best = j
			}
			if scores != nil {
				scores[j] = -s
			}
		}
		out[i] = Decision{Pick: best, Scores: scores}
	}
}

// LoadEngine builds an engine from a model snapshot path or a heuristic
// name (exactly one must be set). It is used both at daemon start and on
// every /reload.
func LoadEngine(modelPath, policyName string) (Engine, error) {
	switch {
	case modelPath != "" && policyName != "":
		return nil, fmt.Errorf("serve: set model path or policy name, not both")
	case modelPath != "":
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, fmt.Errorf("serve: open model: %w", err)
		}
		defer f.Close()
		snap, err := nn.ReadSnapshot(f)
		if err != nil {
			return nil, err
		}
		pol, err := snap.MaterializePolicy(rand.New(rand.NewSource(0)))
		if err != nil {
			return nil, err
		}
		return NewPolicyEngine(pol)
	case policyName != "":
		h := sched.ByName(policyName)
		if h == nil {
			return nil, fmt.Errorf("serve: unknown heuristic %q (have %v)", policyName, sched.Names())
		}
		return NewHeuristicEngine(h), nil
	}
	return nil, fmt.Errorf("serve: need a model path or a heuristic name")
}
