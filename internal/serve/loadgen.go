package serve

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rlsched/internal/job"
	"rlsched/internal/telemetry"
	"rlsched/internal/trace"
)

// LoadConfig drives the load generator: Conns concurrent clients hammer
// Addr's /v1/decide with synthetic queue states sampled from a preset
// trace, for Duration, and the achieved decisions/sec is reported.
type LoadConfig struct {
	// Addr is the daemon base URL, e.g. "http://127.0.0.1:9090".
	Addr string
	// Conns is the number of concurrent connections (default 4).
	Conns int
	// Duration is the measurement window (default 5s).
	Duration time.Duration
	// Preset names the trace the queue states are sampled from (default
	// Lublin-1). QueueJobs is the pending-queue size per state (default
	// 128, the paper's MAX_OBSV_SIZE).
	Preset    string
	QueueJobs int
	// StatesPerReq pipelines several queue states per HTTP request
	// (default 1). Each state is still one decision.
	StatesPerReq int
	// Bodies is the number of distinct pre-encoded request bodies cycled
	// through (default 64).
	Bodies int
	Seed   int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Preset == "" {
		c.Preset = "Lublin-1"
	}
	if c.QueueJobs <= 0 {
		c.QueueJobs = 128
	}
	if c.StatesPerReq <= 0 {
		c.StatesPerReq = 1
	}
	if c.Bodies <= 0 {
		c.Bodies = 64
	}
	return c
}

// LoadReport is the load generator's result.
type LoadReport struct {
	Requests  uint64
	Decisions uint64
	Errors    uint64
	Elapsed   time.Duration
	// DecisionsPerSec is the headline throughput number.
	DecisionsPerSec float64
	// P50/P95/P99 are request-latency quantile upper bounds.
	P50, P95, P99 time.Duration
	// Latency holds the whole-run request-latency distribution (an
	// unbounded telemetry histogram; quantiles are upper bucket bounds).
	Latency *telemetry.Histogram
}

func (r LoadReport) String() string {
	return fmt.Sprintf("requests=%d decisions=%d errors=%d elapsed=%.2fs rate=%.0f decisions/s p50=%v p95=%v p99=%v",
		r.Requests, r.Decisions, r.Errors, r.Elapsed.Seconds(),
		r.DecisionsPerSec, r.P50, r.P95, r.P99)
}

// EncodeStates renders queue states in the canonical compact wire format
// the daemon's fast parser consumes.
func EncodeStates(states []*QueueState) []byte {
	var b []byte
	if len(states) == 1 {
		return appendState(b, states[0])
	}
	b = append(b, `{"states":[`...)
	for i, st := range states {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendState(b, st)
	}
	return append(b, ']', '}')
}

func appendState(b []byte, st *QueueState) []byte {
	b = append(b, `{"now":`...)
	b = strconv.AppendFloat(b, st.Now, 'g', -1, 64)
	b = append(b, `,"free_procs":`...)
	b = strconv.AppendInt(b, int64(st.View.FreeProcs), 10)
	b = append(b, `,"total_procs":`...)
	b = strconv.AppendInt(b, int64(st.View.TotalProcs), 10)
	if st.QueueLen > 0 {
		b = append(b, `,"queue_len":`...)
		b = strconv.AppendInt(b, int64(st.QueueLen), 10)
	}
	if st.WantScores {
		b = append(b, `,"scores":true`...)
	}
	b = append(b, `,"jobs":[`...)
	for i, j := range st.Jobs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		b = strconv.AppendFloat(b, j.SubmitTime, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, j.RequestedTime, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(j.RequestedProcs), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(j.UserID), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(j.ID), 10)
		b = append(b, ']')
	}
	return append(b, ']', '}')
}

// fillState populates st with a synthetic queue state sampled into the
// caller's job buffer: clamped to the cluster so states stay schedulable,
// and times rounded to whole seconds (SWF precision) — shorter wire
// numbers parse measurably faster at 10k states/sec.
func fillState(st *QueueState, tr *trace.Trace, rng *rand.Rand, jobs []*job.Job, queueJobs int) {
	jobs = tr.SampleQueueInto(rng, jobs)
	for _, j := range jobs {
		if j.RequestedProcs > tr.Processors {
			j.RequestedProcs = tr.Processors
		}
		j.SubmitTime = math.Round(j.SubmitTime)
		j.RequestedTime = math.Max(1, math.Round(j.RequestedTime))
	}
	st.Jobs = jobs
	st.Now = 0
	st.View = ClusterViewOf(rng.Intn(tr.Processors+1), tr.Processors)
	st.QueueLen = queueJobs + rng.Intn(queueJobs)
}

// SyntheticStates samples n queue states of queueJobs pending jobs each
// from the preset trace, with a plausible cluster view: free processors
// drawn uniformly and now = 0 (job submit times are in the past).
func SyntheticStates(preset string, n, queueJobs int, seed int64) ([]*QueueState, error) {
	tr := trace.Preset(preset, 4*queueJobs+n, seed)
	if tr == nil {
		return nil, fmt.Errorf("serve: unknown preset %q", preset)
	}
	rng := rand.New(rand.NewSource(seed))
	states := make([]*QueueState, n)
	for i := range states {
		states[i] = &QueueState{}
		fillState(states[i], tr, rng, make([]*job.Job, queueJobs), queueJobs)
	}
	return states, nil
}

// syntheticBodies pre-encodes the request bodies the load generator cycles
// through. Unlike SyntheticStates it never retains a queue state: one job
// buffer and one QueueState are reused across every sampled state
// (trace.SampleQueueInto), so body preparation costs one allocation per
// body instead of one queue of cloned jobs per state.
func syntheticBodies(cfg LoadConfig) ([][]byte, error) {
	tr := trace.Preset(cfg.Preset, 4*cfg.QueueJobs+cfg.Bodies*cfg.StatesPerReq, cfg.Seed)
	if tr == nil {
		return nil, fmt.Errorf("serve: unknown preset %q", cfg.Preset)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]*job.Job, cfg.QueueJobs)
	var st QueueState
	bodies := make([][]byte, cfg.Bodies)
	for i := range bodies {
		var b []byte
		if cfg.StatesPerReq > 1 {
			b = append(b, `{"states":[`...)
		}
		for s := 0; s < cfg.StatesPerReq; s++ {
			if s > 0 {
				b = append(b, ',')
			}
			fillState(&st, tr, rng, jobs, cfg.QueueJobs)
			b = appendState(b, &st)
		}
		if cfg.StatesPerReq > 1 {
			b = append(b, ']', '}')
		}
		bodies[i] = b
	}
	return bodies, nil
}

// RunLoad hammers the daemon and reports achieved throughput. The request
// bodies are pre-encoded once so the generator spends its cycles on the
// HTTP path, not on JSON encoding — on a shared CI core the generator
// competes with the daemon for CPU.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	bodies, err := syntheticBodies(cfg)
	if err != nil {
		return nil, err
	}

	transport := &http.Transport{
		MaxIdleConns:        cfg.Conns,
		MaxIdleConnsPerHost: cfg.Conns,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	url := cfg.Addr + "/v1/decide"

	// Warm up connections and verify the daemon answers at all.
	if err := postOnce(client, url, bodies[0]); err != nil {
		return nil, fmt.Errorf("serve: daemon not answering: %w", err)
	}

	report := &LoadReport{Latency: newLoadHistogram()}
	var latMu sync.Mutex // telemetry histograms are not concurrency-safe
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := w; !stop.Load(); i++ {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					atomic.AddUint64(&report.Errors, 1)
					continue
				}
				discard(resp.Body, buf)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					atomic.AddUint64(&report.Errors, 1)
					continue
				}
				d := time.Since(t0)
				latMu.Lock()
				report.Latency.Observe(0, d.Seconds())
				latMu.Unlock()
				atomic.AddUint64(&report.Requests, 1)
				atomic.AddUint64(&report.Decisions, uint64(cfg.StatesPerReq))
			}
		}(w)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	report.Elapsed = time.Since(start)
	report.DecisionsPerSec = float64(report.Decisions) / report.Elapsed.Seconds()
	report.P50 = quantileDuration(report.Latency, 0.50)
	report.P95 = quantileDuration(report.Latency, 0.95)
	report.P99 = quantileDuration(report.Latency, 0.99)
	return report, nil
}

// quantileDuration converts a whole-run histogram quantile to a duration
// (telemetry histograms clamp overflow mass to the top bound, so a
// pathological tail is understated rather than reported as +Inf).
func quantileDuration(h *telemetry.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(0, q) * float64(time.Second))
}

// newLoadHistogram builds the unbounded whole-run latency histogram the
// load generator and the serve benchmarks share: 100µs to 5s, log-spaced.
func newLoadHistogram() *telemetry.Histogram {
	return telemetry.NewHistogram(telemetry.LogBounds(100e-6, 5, 6), 0, 0)
}

func postOnce(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(out))
	}
	return nil
}

func discard(r io.Reader, buf []byte) {
	for {
		if _, err := r.Read(buf); err != nil {
			return
		}
	}
}
