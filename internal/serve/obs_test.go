package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rlsched/internal/obs"
)

// getJSON GETs a URL and returns the status code and body.
func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// explainResp is placeResp plus the ?explain=1 trace.
type explainResp struct {
	placeResp
	Explain *obs.Explain `json:"explain"`
}

// TestPlaceExplain: ?explain=1 appends the full per-plugin score table
// without changing the decision, and the plain response carries no trace.
func TestPlaceExplain(t *testing.T) {
	_, ts := newFleetServer(t, "")
	body := placeBody(t, `[0,60,96]`,
		clusterState("large", 100, 256, `[0,3600,32]`),
		clusterState("mid", 128, 128, ""),
		clusterState("small", 64, 64, ""))

	code, plain := postJSON(t, ts.URL+"/place", body)
	if code != http.StatusOK {
		t.Fatalf("place: %d %s", code, plain)
	}
	code, explained := postJSON(t, ts.URL+"/place?explain=1", body)
	if code != http.StatusOK {
		t.Fatalf("place?explain=1: %d %s", code, explained)
	}

	var base placeResp
	if err := json.Unmarshal(plain, &base); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), `"explain"`) {
		t.Fatal("plain response must not carry an explain trace")
	}
	var ex explainResp
	if err := json.Unmarshal(explained, &ex); err != nil {
		t.Fatalf("%v in %s", err, explained)
	}
	// Same decision, same scores — the trace is passive.
	if ex.Cluster != base.Cluster || ex.Shard != base.Shard {
		t.Fatalf("explain changed the decision: %q/%d vs %q/%d",
			ex.Cluster, ex.Shard, base.Cluster, base.Shard)
	}
	if len(ex.Scores) != len(base.Scores) {
		t.Fatalf("explain changed the scores: %v vs %v", ex.Scores, base.Scores)
	}
	if ex.Explain == nil || len(ex.Explain.Candidates) != 3 {
		t.Fatalf("explain trace missing or wrong size: %s", explained)
	}
	// The 96-proc job fits large and mid but not small-64: the trace must
	// say which filter rejected it and score the feasible pair per plugin.
	for _, c := range ex.Explain.Candidates {
		switch c.Name {
		case "small":
			if c.Feasible || c.FilteredBy == "" {
				t.Fatalf("small-64 must be filtered with a named filter: %+v", c)
			}
		default:
			if !c.Feasible || len(c.Plugins) == 0 {
				t.Fatalf("feasible cluster %q must carry plugin scores: %+v", c.Name, c)
			}
			for _, p := range c.Plugins {
				if p.Norm < 0 || p.Norm > 1 {
					t.Fatalf("plugin %q norm %g out of [0,1]", p.Plugin, p.Norm)
				}
			}
		}
	}
}

// TestDebugDecisions: every /place decision lands in the ring, newest
// first with monotonic sequence numbers; n clamps; the endpoint 404s
// when the ring is disabled or outside fleet mode.
func TestDebugDecisions(t *testing.T) {
	_, ts := newFleetServer(t, "")
	bodies := [][]byte{
		placeBody(t, `[0,3600,200]`,
			clusterState("large", 256, 256, ""),
			clusterState("mid", 128, 128, "")),
		placeBody(t, `[0,60,4]`,
			clusterState("large", 0, 256, `[0,30000,128]`),
			clusterState("small", 64, 64, "")),
		placeBody(t, `[0,600,32]`,
			clusterState("mid", 128, 128, ""),
			clusterState("small", 64, 64, "")),
	}
	for i, b := range bodies {
		if code, out := postJSON(t, ts.URL+"/place", b); code != http.StatusOK {
			t.Fatalf("place %d: %d %s", i, code, out)
		}
	}

	var log struct {
		Total     uint64                  `json:"total"`
		Decisions []obs.PlacementDecision `json:"decisions"`
	}
	code, out := getJSON(t, ts.URL+"/debug/decisions?n=2")
	if code != http.StatusOK {
		t.Fatalf("debug/decisions: %d %s", code, out)
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("%v in %s", err, out)
	}
	if log.Total != 3 || len(log.Decisions) != 2 {
		t.Fatalf("total=%d len=%d, want 3/2", log.Total, len(log.Decisions))
	}
	if log.Decisions[0].Seq != 3 || log.Decisions[1].Seq != 2 {
		t.Fatalf("seqs %d,%d, want newest-first 3,2", log.Decisions[0].Seq, log.Decisions[1].Seq)
	}
	for _, d := range log.Decisions {
		if d.Router == "" || d.Cluster == "" || len(d.Candidates) == 0 {
			t.Fatalf("decision missing trace fields: %+v", d)
		}
	}
	// Default n and n=0 both return what's retained here.
	for _, q := range []string{"", "?n=0", "?n=99"} {
		code, out = getJSON(t, ts.URL+"/debug/decisions"+q)
		if code != http.StatusOK {
			t.Fatalf("debug/decisions%s: %d %s", q, code, out)
		}
		if err := json.Unmarshal(out, &log); err != nil {
			t.Fatal(err)
		}
		if len(log.Decisions) != 3 {
			t.Fatalf("debug/decisions%s returned %d decisions, want 3", q, len(log.Decisions))
		}
	}
	if code, _ = getJSON(t, ts.URL+"/debug/decisions?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n = %d, want 400", code)
	}

	// Outside fleet mode there is no ring; a negative DecisionLog disables
	// it explicitly.
	_, plain := newTestServer(t, Config{PolicyName: "SJF", BatchWindow: time.Microsecond})
	if code, _ = getJSON(t, plain.URL+"/debug/decisions"); code != http.StatusNotFound {
		t.Fatalf("/debug/decisions outside fleet mode = %d, want 404", code)
	}
	_, off := newTestServer(t, Config{
		BatchWindow: time.Microsecond,
		DecisionLog: -1,
		Shards:      []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}},
	})
	if code, _ = getJSON(t, off.URL+"/debug/decisions"); code != http.StatusNotFound {
		t.Fatalf("/debug/decisions with DecisionLog=-1 = %d, want 404", code)
	}
}

// TestPprofOptIn: the profiling surface exists only when asked for.
func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t, Config{PolicyName: "SJF", BatchWindow: time.Microsecond})
	if code, _ := getJSON(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof without -pprof = %d, want 404", code)
	}
	_, on := newTestServer(t, Config{PolicyName: "SJF", BatchWindow: time.Microsecond, Pprof: true})
	code, out := getJSON(t, on.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(out), "goroutine") {
		t.Fatalf("pprof index: %d %.80s", code, out)
	}
	if code, _ := getJSON(t, on.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d, want 200", code)
	}
}

// TestMetricsHelpAndType: every exported family carries both a # HELP and
// a # TYPE header, every sample belongs to a declared family, and the
// build-info/uptime gauges are present. Exercised on the fullest surface:
// fleet mode with migration and fairness enabled, after traffic on every
// endpoint.
func TestMetricsHelpAndType(t *testing.T) {
	_, ts := newTestServer(t, Config{
		BatchWindow:   time.Microsecond,
		PlaceRouter:   "least-loaded",
		Migrate:       true,
		MigrateMargin: 0.25,
		FairWeight:    1,
		CheckpointDir: t.TempDir(),
		DecisionCache: 32,
		// A generous budget keeps the ladder at level 0; enabling the
		// monitor puts the SLO families on the surface under test.
		SLO: SLOConfig{P99Budget: time.Second},
		Shards: []ShardConfig{
			{Name: "large", Procs: 256, PolicyName: "SJF"},
			{Name: "small", Procs: 64, PolicyName: "F1"},
		},
	})
	place := placeBody(t, `[0,60,4]`,
		clusterState("large", 256, 256, ""),
		clusterState("small", 64, 64, ""))
	if code, out := postJSON(t, ts.URL+"/place", place); code != http.StatusOK {
		t.Fatalf("place: %d %s", code, out)
	}
	mig := migrateBody(t, `[-600,600,32]`, "large",
		clusterState("large", 0, 256, `[0,30000,128]`),
		clusterState("small", 64, 64, ""))
	if code, out := postJSON(t, ts.URL+"/migrate", mig); code != http.StatusOK {
		t.Fatalf("migrate: %d %s", code, out)
	}

	code, raw := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	help := map[string]bool{}
	typed := map[string]bool{}
	var samples []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		if f := strings.Fields(line); strings.HasPrefix(line, "# HELP ") {
			help[f[2]] = true
		} else if strings.HasPrefix(line, "# TYPE ") {
			typed[f[2]] = true
		} else if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment line %q", line)
		} else {
			samples = append(samples, f[0])
		}
	}
	for name := range typed {
		if !help[name] {
			t.Errorf("family %s has # TYPE but no # HELP", name)
		}
	}
	for name := range help {
		if !typed[name] {
			t.Errorf("family %s has # HELP but no # TYPE", name)
		}
	}
	for _, s := range samples {
		base := s
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(base, suf); t != base && typed[t] {
				base = t
				break
			}
		}
		if !typed[base] {
			t.Errorf("sample %q belongs to no declared family", s)
		}
	}
	for _, want := range []string{
		"rlserv_build_info{go_version=",
		"rlserv_uptime_seconds ",
		"rlserv_migrate_latency_seconds_count 1",
		`rlserv_fairness_score{stat="jain"}`,
		"rlserv_degradation_level 0",
		"rlserv_slo_breaches_total ",
		`rlserv_request_latency_seconds{path="/place",quantile="0.99"}`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestConcurrentExplainDecisionsReload hammers /place?explain=1 and
// /debug/decisions from many goroutines while a shard's engine hot-swaps
// mid-load. Under -race this is the proof the explain path, the decision
// ring and shard reload share no unsynchronized state.
func TestConcurrentExplainDecisionsReload(t *testing.T) {
	srv, ts := newFleetServer(t, "")
	placeBodies := [][]byte{
		placeBody(t, `[0,60,4]`,
			clusterState("large", 100, 256, `[0,3600,32],[-60,600,8]`),
			clusterState("mid", 64, 128, `[0,900,16]`),
			clusterState("small", 0, 64, "")),
		placeBody(t, `[0,7200,160]`,
			clusterState("large", 256, 256, ""),
			clusterState("mid", 128, 128, "")),
	}

	const clients = 6
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var code int
				var out []byte
				if i%3 == 2 {
					code, out = getJSON(t, ts.URL+"/debug/decisions?n=8")
				} else {
					code, out = postJSON(t, ts.URL+"/place?explain=1", placeBodies[(c+i)%len(placeBodies)])
				}
				if code != http.StatusOK {
					errs <- fmt.Sprintf("client %d req %d: status %d: %s", c, i, code, out)
					return
				}
			}
		}(c)
	}

	reloads := [][]byte{
		[]byte(`{"cluster":"mid","policy":"F1"}`),
		[]byte(`{"cluster":"mid","policy":"SJF"}`),
	}
	for i := 0; i < 10; i++ {
		code, out := postJSON(t, ts.URL+"/reload", reloads[i%len(reloads)])
		if code != http.StatusOK {
			t.Fatalf("shard reload %d failed: %d %s", i, code, out)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := srv.Metrics().ErrorsTotal.Load(); got != 0 {
		t.Fatalf("errors_total = %d, want 0", got)
	}
	// Every successful placement must have been logged.
	code, out := getJSON(t, ts.URL+"/debug/decisions?n=1")
	if code != http.StatusOK {
		t.Fatalf("debug/decisions after load: %d %s", code, out)
	}
	var log struct {
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	if log.Total != srv.Metrics().PlaceTotal.Load() || log.Total == 0 {
		t.Fatalf("ring total %d != placements %d (or zero)", log.Total, srv.Metrics().PlaceTotal.Load())
	}
}
