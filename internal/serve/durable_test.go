package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rlsched/internal/fleet"
)

// placeBodySeq is placeBody plus the completion batch's dedup identity.
func placeBodySeq(t *testing.T, jobRow, client string, seq int64, clusters ...string) []byte {
	t.Helper()
	return []byte(fmt.Sprintf(`{"job":%s,"client":%q,"batch_seq":%d,"clusters":[%s]}`,
		jobRow, client, seq, strings.Join(clusters, ",")))
}

// userJobs asks /place for user uid's tracked state with an empty batch.
func userJobs(t *testing.T, url string, uid int) (mean float64, jobs int) {
	t.Helper()
	code, resp := postJSON(t, url+"/place", placeBody(t, fmt.Sprintf(`[0, 600, 1, %d]`, uid),
		fairClusterState("a", 64, 64, ""),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusOK {
		t.Fatalf("probe place failed: %d %s", code, resp)
	}
	var pr fairPlaceResp
	if err := json.Unmarshal(resp, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Fairness == nil {
		t.Fatal("fairness state missing from probe response")
	}
	return pr.Fairness.UserMean, pr.Fairness.UserJobs
}

// TestPlaceBatchSeqDedup is the retry regression: re-posting the same
// completion batch (same client, same batch_seq) must change the fairness
// tracker NOT AT ALL — the retry is acknowledged, flagged as deduped, and
// nothing is re-observed. A higher seq from the same client applies.
func TestPlaceBatchSeqDedup(t *testing.T) {
	srv, ts := newFairServer(t, 2)

	batch := func(seq int64) []byte {
		return placeBodySeq(t, `[0, 600, 1, 3]`, "clusterd-a", seq,
			fairClusterState("a", 64, 64, `[7, 9000, 60], [7, 9100, 60]`),
			fairClusterState("b", 64, 64, `[3, 12, 600]`))
	}
	code, resp := postJSON(t, ts.URL+"/place", batch(1))
	if code != http.StatusOK {
		t.Fatalf("first batch failed: %d %s", code, resp)
	}
	if strings.Contains(string(resp), `"deduped"`) {
		t.Fatalf("fresh batch flagged as deduped: %s", resp)
	}
	meanBefore, jobsBefore := userJobs(t, ts.URL, 7)
	if jobsBefore != 2 {
		t.Fatalf("user 7 tracked jobs = %d after the batch, want 2", jobsBefore)
	}

	// The retry: byte-identical body, same seq. Placement still answers.
	code, resp = postJSON(t, ts.URL+"/place", batch(1))
	if code != http.StatusOK {
		t.Fatalf("retried batch failed: %d %s", code, resp)
	}
	if !strings.Contains(string(resp), `"deduped":true`) {
		t.Errorf("retry not flagged: %s", resp)
	}
	if mean, jobs := userJobs(t, ts.URL, 7); mean != meanBefore || jobs != jobsBefore {
		t.Errorf("retry changed the tracker: mean %g->%g jobs %d->%d",
			meanBefore, mean, jobsBefore, jobs)
	}
	// A stale seq (lower than the highest absorbed) is a replay too.
	if code, resp = postJSON(t, ts.URL+"/place", batch(0)); !strings.Contains(string(resp), `"deduped":true`) {
		t.Errorf("stale seq not deduped: %d %s", code, resp)
	}
	if srv.Metrics().PlaceDedupTotal.Load() != 2 {
		t.Errorf("dedup counter = %d, want 2", srv.Metrics().PlaceDedupTotal.Load())
	}

	// The next real batch (seq 2) applies.
	code, resp = postJSON(t, ts.URL+"/place", placeBodySeq(t, `[0, 600, 1, 3]`, "clusterd-a", 2,
		fairClusterState("a", 64, 64, `[7, 5, 60]`),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusOK {
		t.Fatalf("second batch failed: %d %s", code, resp)
	}
	if _, jobs := userJobs(t, ts.URL, 7); jobs != 3 {
		t.Errorf("user 7 tracked jobs = %d after seq 2, want 3", jobs)
	}
	// Distinct clients dedup independently.
	code, _ = postJSON(t, ts.URL+"/place", placeBodySeq(t, `[0, 600, 1, 3]`, "clusterd-b", 1,
		fairClusterState("a", 64, 64, `[7, 5, 60]`),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusOK {
		t.Fatal("other client's seq 1 must not collide")
	}
	if _, jobs := userJobs(t, ts.URL, 7); jobs != 4 {
		t.Errorf("user 7 tracked jobs = %d after second client, want 4", jobs)
	}

	// Shape guards: a seq without a client, or a negative seq, is a 400.
	bad := []byte(`{"job":[0,600,1,3],"batch_seq":1,"clusters":[` +
		fairClusterState("a", 64, 64, "") + `,` + fairClusterState("b", 64, 64, "") + `]}`)
	if code, _ := postJSON(t, ts.URL+"/place", bad); code != http.StatusBadRequest {
		t.Errorf("batch_seq without client answered %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/place", placeBodySeq(t, `[0,600,1,3]`, "c", -1,
		fairClusterState("a", 64, 64, ""), fairClusterState("b", 64, 64, ""))); code != http.StatusBadRequest {
		t.Errorf("negative batch_seq answered %d, want 400", code)
	}
}

// durableConfig is the two-shard fairness fleet with a checkpoint
// directory and no periodic loop (tests trigger snapshots explicitly).
func durableConfig(dir string) Config {
	return Config{
		BatchWindow:   time.Microsecond,
		PlaceRouter:   "least-loaded",
		FairWeight:    2,
		CheckpointDir: dir,
		Shards: []ShardConfig{
			{Name: "a", Procs: 64, PolicyName: "SJF"},
			{Name: "b", Procs: 64, PolicyName: "F1"},
		},
	}
}

// copyDir copies a checkpoint directory's files — the disk image a
// kill -9 would leave, captured while the source daemon is still running
// (nothing it buffers after its last fsync can be in the copy).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRestore: a daemon killed without warning must come back with
// the fairness tracker, the dedup table and the drain set exactly as of
// the last acked batch — including batches acked AFTER the last snapshot
// (the WAL's half of the contract), and including the dedup of a client
// that retries across the crash.
func TestCrashRestore(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := newTestServer(t, durableConfig(dir))

	post := func(url string, body []byte) {
		t.Helper()
		if code, resp := postJSON(t, url+"/place", body); code != http.StatusOK {
			t.Fatalf("place failed: %d %s", code, resp)
		}
	}
	post(tsA.URL, placeBodySeq(t, `[0, 600, 1, 3]`, "feed", 1,
		fairClusterState("a", 64, 64, `[7, 9000, 60], [7, 9100, 60]`),
		fairClusterState("b", 64, 64, `[3, 12, 600]`)))
	// Snapshot now; everything after lives only in the WAL.
	if err := srvA.durable.checkpoint(); err != nil {
		t.Fatal(err)
	}
	post(tsA.URL, placeBodySeq(t, `[0, 600, 1, 3]`, "feed", 2,
		fairClusterState("a", 64, 64, `[7, 8000, 60]`),
		fairClusterState("b", 64, 64, `[3, 11, 500], [9, 5, 50]`)))
	if code, resp := postJSON(t, tsA.URL+"/drain", []byte(`{"cluster":"a"}`)); code != http.StatusOK {
		t.Fatalf("drain failed: %d %s", code, resp)
	}
	post(tsA.URL, placeBodySeq(t, `[0, 600, 1, 3]`, "feed", 3,
		fairClusterState("a", 64, 64, `[7, 7000, 60]`),
		fairClusterState("b", 64, 64, "")))

	// kill -9: copy the directory out from under the live daemon.
	dir2 := t.TempDir()
	copyDir(t, dir, dir2)
	srvB, tsB := newTestServer(t, durableConfig(dir2))

	want := srvA.fairness.ExportState()
	got := srvB.fairness.ExportState()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored tracker differs:\n was %+v\n now %+v", want, got)
	}

	// The crashed-over retry: the client re-sends seq 3 to the new daemon.
	code, resp := postJSON(t, tsB.URL+"/place", placeBodySeq(t, `[0, 600, 1, 3]`, "feed", 3,
		fairClusterState("a", 64, 64, `[7, 7000, 60]`),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusOK || !strings.Contains(string(resp), `"deduped":true`) {
		t.Errorf("cross-crash retry not deduped: %d %s", code, resp)
	}

	// The drain survived: not ready, and placement avoids "a".
	hr, err := http.Get(tsB.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("restored daemon /readyz = %d, want 503 (shard a drained)", hr.StatusCode)
	}
	code, resp = postJSON(t, tsB.URL+"/place", placeBody(t, `[0, 600, 1, 3]`,
		fairClusterState("a", 64, 64, ""),
		fairClusterState("b", 8, 64, "")))
	if code != http.StatusOK || !strings.Contains(string(resp), `"cluster":"b"`) {
		t.Errorf("restored daemon placed onto the drained shard: %d %s", code, resp)
	}

	// A graceful close writes a final snapshot; a third daemon restores
	// from it alone (its WAL segment is empty) to the same state.
	srvB.Close()
	srvC, _ := newTestServer(t, durableConfig(dir2))
	if got := srvC.fairness.ExportState(); !reflect.DeepEqual(want, got) {
		t.Errorf("snapshot-only restore differs:\n was %+v\n now %+v", want, got)
	}
}

// bareDurability is the layer without a disk or a server: a fresh
// two-cluster tracker for replay tests and fuzzing.
func bareDurability() *durability {
	names := []string{"a", "b"}
	return &durability{
		durableDeps: durableDeps{
			fairness: fleet.NewFairnessScorer(fleet.FairnessConfig{}),
			clusterIndex: func(name string) int {
				for i, n := range names {
					if n == name {
						return i
					}
				}
				return -1
			},
			clusterName: func(idx int) string {
				if idx < 0 || idx >= len(names) {
					return ""
				}
				return names[idx]
			},
		},
		lastSeq: map[string]int64{},
		drained: map[string]bool{},
	}
}

// walTestBatches builds a varied record stream through the real commit
// path and returns the WAL bytes plus the per-record walCluster batches.
func walTestBatches(t testing.TB) (data []byte, batches [][]walCluster) {
	t.Helper()
	batches = [][]walCluster{
		{{Name: "a", Done: []wireDone{{UserID: 7, Wait: 9000, Run: 60}, {UserID: 7, Wait: 9100, Run: 60}}}},
		{{Name: "b", Done: []wireDone{{UserID: 3, Wait: 12, Run: 600}}}},
		{{Name: "a", Done: []wireDone{{UserID: 9, Wait: 5, Run: 50}}},
			{Name: "b", Done: []wireDone{{UserID: 7, Wait: 5, Run: 60}, {UserID: 3, Wait: 11, Run: 500}}}},
		{{Name: "a", Done: []wireDone{{UserID: 3, Wait: 30, Run: 300}}}},
	}
	var buf []byte
	for i, b := range batches {
		seq := int64(i + 1)
		var err error
		buf, err = appendWALRecord(buf, &walRecord{Kind: "batch", Client: "c", Seq: &seq, Clusters: b})
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf, batches
}

// replayReference feeds the first k batches straight into a fresh tracker
// — what a clean (never-crashed) run over the acked prefix looks like.
func replayReference(batches [][]walCluster, k int, clusterIndex func(string) int) fleet.FairnessState {
	f := fleet.NewFairnessScorer(fleet.FairnessConfig{})
	for _, b := range batches[:k] {
		for _, wc := range b {
			idx := clusterIndex(wc.Name)
			for i := range wc.Done {
				dj := wc.Done[i].toJob()
				f.Observe(idx, &dj)
			}
		}
	}
	return f.ExportState()
}

// TestWALTruncationProperty: truncate the WAL at EVERY byte offset and
// assert the full restore path (directory scan, decode, replay) never
// panics and lands exactly on the clean-run state over the complete
// records the truncated file retains — a torn final record is dropped,
// all-or-nothing, at every possible tear point.
func TestWALTruncationProperty(t *testing.T) {
	data, batches := walTestBatches(t)
	bare := bareDurability()

	dir := t.TempDir()
	seg := segPath(dir, 1)
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, consumed := decodeWALRecords(data[:cut])
		if consumed > cut {
			t.Fatalf("cut %d: consumed %d beyond input", cut, consumed)
		}
		d, err := newDurability(dir, 0, durableDeps{
			fairness:     fleet.NewFairnessScorer(fleet.FairnessConfig{}),
			clusterIndex: bare.clusterIndex,
			clusterName:  bare.clusterName,
		})
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		want := replayReference(batches, len(recs), bare.clusterIndex)
		if got := d.fairness.ExportState(); !reflect.DeepEqual(want, got) {
			t.Fatalf("cut %d (%d complete records): restored state differs:\n was %+v\n now %+v",
				cut, len(recs), want, got)
		}
		d.close()
		// Restore rotates to a fresh segment; reset the directory so the
		// next cut sees only its own truncated file.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	// Sanity: the full stream decodes to every batch.
	if recs, _ := decodeWALRecords(data); len(recs) != len(batches) {
		t.Fatalf("full stream decoded %d records, want %d", len(recs), len(batches))
	}
}

// TestSnapshotGuards: a corrupt snapshot refuses to start (silently
// dropping every user's history is worse than failing loudly), and the
// config surface rejects durability without the tracker it persists.
func TestSnapshotGuards(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(durableConfig(dir)); err == nil {
		t.Error("corrupt snapshot must refuse to start")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, snapshotName), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(durableConfig(dir2)); err == nil {
		t.Error("unknown snapshot version must refuse to start")
	}

	if _, err := NewServer(Config{
		PolicyName:    "SJF",
		CheckpointDir: t.TempDir(),
	}); err == nil {
		t.Error("-checkpoint-dir without -fair-weight must be rejected")
	}
	if _, err := NewServer(Config{PolicyName: "SJF", DecisionCache: -1}); err == nil {
		t.Error("negative decision cache size must be rejected")
	}
}

// TestDrainEndpoint: the cordon state machine — placement and migration
// exclude a drained shard, /readyz flips, per-shard decisions keep
// serving, the fairness per-cluster shares are retired, and the whole
// thing is idempotent.
func TestDrainEndpoint(t *testing.T) {
	srv, ts := newFairServer(t, 2)

	// Baseline: idle tie-break picks "a".
	code, resp := postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 1, 3]`,
		fairClusterState("a", 64, 64, ""),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusOK || !strings.Contains(string(resp), `"cluster":"a"`) {
		t.Fatalf("baseline place: %d %s", code, resp)
	}

	code, resp = postJSON(t, ts.URL+"/drain", []byte(`{"cluster":"a"}`))
	if code != http.StatusOK || !strings.Contains(string(resp), `"already":false`) {
		t.Fatalf("drain: %d %s", code, resp)
	}
	code, resp = postJSON(t, ts.URL+"/drain", []byte(`{"cluster":"a"}`))
	if code != http.StatusOK || !strings.Contains(string(resp), `"already":true`) {
		t.Errorf("second drain not idempotent: %d %s", code, resp)
	}
	if code, _ := postJSON(t, ts.URL+"/drain", []byte(`{"cluster":"nope"}`)); code != http.StatusNotFound {
		t.Errorf("unknown cluster drain answered %d, want 404", code)
	}

	// Placement now lands on "b" even though "a" would win the tie-break,
	// and the response's score table no longer mentions "a".
	code, resp = postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 1, 3]`,
		fairClusterState("a", 64, 64, ""),
		fairClusterState("b", 8, 64, "")))
	if code != http.StatusOK || !strings.Contains(string(resp), `"cluster":"b"`) {
		t.Errorf("drained shard still placeable: %d %s", code, resp)
	}
	var pr fairPlaceResp
	if err := json.Unmarshal(resp, &pr); err != nil {
		t.Fatal(err)
	}
	if _, ok := pr.Scores["a"]; ok {
		t.Errorf("drained shard still scored: %v", pr.Scores)
	}
	// Draining every posted cluster leaves the job unplaceable.
	code, _ = postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 1, 3]`,
		fairClusterState("a", 64, 64, "")))
	if code != http.StatusUnprocessableEntity {
		t.Errorf("all-drained place answered %d, want 422", code)
	}

	// /readyz reports the fleet below strength; /healthz stays alive.
	hr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with a drained shard, want 503", hr.StatusCode)
	}
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d with a drained shard, want 200", hr.StatusCode)
	}

	// The drained shard's own decision endpoint keeps answering: jobs
	// already queued there still need an order.
	code, _ = postJSON(t, ts.URL+"/v1/decide?cluster=a",
		[]byte(`{"now":0,"free_procs":64,"total_procs":64,"jobs":[[0,60,1]]}`))
	if code != http.StatusOK {
		t.Errorf("drained shard /v1/decide answered %d, want 200", code)
	}

	// Fairness per-cluster shares for "a" were retired (ClusterRetirer):
	// the exported state holds no cluster-0 entries.
	st := srv.fairness.ExportState()
	for _, u := range st.Users {
		for _, c := range u.Clusters {
			if c.Cluster == 0 {
				t.Errorf("user %d still holds a share on the retired cluster", u.UserID)
			}
		}
	}

	// The drained gauge flips in /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if body := string(raw); !strings.Contains(body, `rlserv_shard_drained{cluster="a"} 1`) ||
		!strings.Contains(body, `rlserv_shard_drained{cluster="b"} 0`) {
		t.Errorf("drained gauge wrong:\n%s", body)
	}
}

// TestMigrateDrained: /migrate must keep recommending moves OFF a
// cordoned member while refusing it as a destination.
func TestMigrateDrained(t *testing.T) {
	_, ts := newTestServer(t, Config{
		BatchWindow:   time.Microsecond,
		PlaceRouter:   "least-loaded",
		Migrate:       true,
		MigrateMargin: 0,
		FairWeight:    1,
		Shards: []ShardConfig{
			{Name: "a", Procs: 64, PolicyName: "SJF"},
			{Name: "b", Procs: 64, PolicyName: "F1"},
		},
	})
	if code, resp := postJSON(t, ts.URL+"/drain", []byte(`{"cluster":"a"}`)); code != http.StatusOK {
		t.Fatalf("drain: %d %s", code, resp)
	}
	// A job stranded on drained "a" with idle "b" available: move.
	body := []byte(`{"job":[-600,600,8],"from":"a","clusters":[` +
		fairClusterState("a", 0, 64, "") + `,` + fairClusterState("b", 64, 64, "") + `]}`)
	code, resp := postJSON(t, ts.URL+"/migrate", body)
	if code != http.StatusOK || !strings.Contains(string(resp), `"migrate":true`) ||
		!strings.Contains(string(resp), `"cluster":"b"`) {
		t.Errorf("migration off the drained shard refused: %d %s", code, resp)
	}
	// The reverse direction: "a" is never a destination while drained.
	body = []byte(`{"job":[-600,600,8],"from":"b","clusters":[` +
		fairClusterState("a", 64, 64, "") + `,` + fairClusterState("b", 0, 64, "") + `]}`)
	code, resp = postJSON(t, ts.URL+"/migrate", body)
	if code != http.StatusOK || strings.Contains(string(resp), `"migrate":true`) {
		t.Errorf("drained shard recommended as destination: %d %s", code, resp)
	}
}
