package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's instrumentation: decision-latency and batch-size
// histograms plus monotonic counters, exposed in Prometheus text format.
// Everything is lock-free atomics so the hot path never serializes on a
// metrics mutex.
type Metrics struct {
	RequestsTotal  atomic.Uint64 // HTTP decision requests served
	DecisionsTotal atomic.Uint64 // queue states decided
	ErrorsTotal    atomic.Uint64 // rejected/failed decision requests
	ReloadsTotal   atomic.Uint64 // successful engine swaps

	Latency   Histogram // per-request decision latency (seconds)
	BatchSize Histogram // states per engine forward pass

	// Fleet-mode placement instrumentation: total placement decisions,
	// the per-request placement latency histogram, and one counter per
	// fleet shard (registered at startup; empty outside fleet mode).
	PlaceTotal   atomic.Uint64
	PlaceLatency Histogram
	placeNames   []string
	placeCounts  []atomic.Uint64

	// Migration instrumentation (fleet mode with -migrate): evaluations
	// of the /migrate endpoint, the per-request evaluation latency, and,
	// per destination shard, how many evaluations recommended a move.
	MigrateChecksTotal atomic.Uint64
	MigrateLatency     Histogram
	migrateCounts      []atomic.Uint64

	// Decision-cache instrumentation (cache.go; families emitted only
	// with -decision-cache set).
	CacheHits   atomic.Uint64 // decisions answered from the cache
	CacheMisses atomic.Uint64 // decisions that went to an engine

	// Durability instrumentation (durable.go; families emitted only in
	// fairness-tracking fleet mode).
	CheckpointsTotal atomic.Uint64 // snapshots written
	WALRecordsTotal  atomic.Uint64 // records appended to the WAL
	PlaceDedupTotal  atomic.Uint64 // /place batches dropped as replays
}

// RegisterPlaceClusters installs one placement counter and one migration
// counter per fleet shard. Call once at startup, before the handler
// serves.
func (m *Metrics) RegisterPlaceClusters(names []string) {
	m.placeNames = append([]string(nil), names...)
	m.placeCounts = make([]atomic.Uint64, len(names))
	m.migrateCounts = make([]atomic.Uint64, len(names))
}

// CountPlacement records one placement onto the i-th registered cluster.
func (m *Metrics) CountPlacement(i int) {
	m.PlaceTotal.Add(1)
	if i >= 0 && i < len(m.placeCounts) {
		m.placeCounts[i].Add(1)
	}
}

// CountMigration records one recommended move onto the i-th registered
// cluster.
func (m *Metrics) CountMigration(i int) {
	if i >= 0 && i < len(m.migrateCounts) {
		m.migrateCounts[i].Add(1)
	}
}

// MigrationCounts returns the per-cluster recommended-move counts in
// registration order (for tests and status pages).
func (m *Metrics) MigrationCounts() []uint64 {
	out := make([]uint64, len(m.migrateCounts))
	for i := range m.migrateCounts {
		out[i] = m.migrateCounts[i].Load()
	}
	return out
}

// Placements returns the per-cluster placement counts in registration
// order (for tests and status pages).
func (m *Metrics) Placements() []uint64 {
	out := make([]uint64, len(m.placeCounts))
	for i := range m.placeCounts {
		out[i] = m.placeCounts[i].Load()
	}
	return out
}

// NewMetrics returns a registry with latency buckets spanning 50µs–1s and
// power-of-two batch-size buckets.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.Latency.bounds = []float64{
		50e-6, 100e-6, 200e-6, 500e-6,
		1e-3, 2e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
	}
	m.Latency.counts = make([]atomic.Uint64, len(m.Latency.bounds)+1)
	m.BatchSize.bounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	m.BatchSize.counts = make([]atomic.Uint64, len(m.BatchSize.bounds)+1)
	m.PlaceLatency.bounds = m.Latency.bounds
	m.PlaceLatency.counts = make([]atomic.Uint64, len(m.PlaceLatency.bounds)+1)
	m.MigrateLatency.bounds = m.Latency.bounds
	m.MigrateLatency.counts = make([]atomic.Uint64, len(m.MigrateLatency.bounds)+1)
	return m
}

// Histogram is a fixed-bucket, lock-free histogram. The sum is a float64
// carried in uint64 bits under a CAS loop (the Prometheus client's trick),
// so it neither loses sub-second precision nor wraps on long-running
// daemons the way fixed-point integer sums do.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile from the
// bucket counts (the smallest bucket bound covering q of the mass).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// writeProm emits the histogram in Prometheus text format.
func (h *Histogram) writeProm(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// promCounter emits one un-labelled counter family with its HELP and TYPE
// header lines.
func promCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// promFamily emits the HELP and TYPE header lines of a labelled family
// whose samples the caller writes next.
func promFamily(w io.Writer, name, help, kind string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// WriteProm emits every metric in Prometheus text format — each family
// with its # HELP and # TYPE header. policy labels the currently served
// engine.
func (m *Metrics) WriteProm(w io.Writer, policy string) {
	promFamily(w, "rlserv_model_info", "Currently served policy (always 1, name in the label).", "gauge")
	fmt.Fprintf(w, "rlserv_model_info{policy=%q} 1\n", policy)
	promCounter(w, "rlserv_requests_total", "HTTP decision requests served.", m.RequestsTotal.Load())
	promCounter(w, "rlserv_decisions_total", "Queue states decided.", m.DecisionsTotal.Load())
	promCounter(w, "rlserv_errors_total", "Rejected or failed requests.", m.ErrorsTotal.Load())
	promCounter(w, "rlserv_reloads_total", "Successful engine hot-swaps.", m.ReloadsTotal.Load())
	m.Latency.writeProm(w, "rlserv_decision_latency_seconds", "Per-request decision latency in seconds.")
	m.BatchSize.writeProm(w, "rlserv_batch_size", "Queue states per engine forward pass.")
	if len(m.placeNames) > 0 {
		promFamily(w, "rlserv_placements_total", "Placement decisions per destination cluster.", "counter")
		for i, name := range m.placeNames {
			fmt.Fprintf(w, "rlserv_placements_total{cluster=%q} %d\n", name, m.placeCounts[i].Load())
		}
		m.PlaceLatency.writeProm(w, "rlserv_place_latency_seconds", "Per-request placement latency in seconds.")
		promCounter(w, "rlserv_migrate_checks_total", "Evaluations of the /migrate endpoint.",
			m.MigrateChecksTotal.Load())
		m.MigrateLatency.writeProm(w, "rlserv_migrate_latency_seconds", "Per-request migration-check latency in seconds.")
		promFamily(w, "rlserv_migrations_total", "Recommended moves per destination cluster.", "counter")
		for i, name := range m.placeNames {
			fmt.Fprintf(w, "rlserv_migrations_total{cluster=%q} %d\n", name, m.migrateCounts[i].Load())
		}
	}
}
