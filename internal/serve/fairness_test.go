package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newFairServer runs a two-shard fleet daemon with the per-user fairness
// plugin on the /place pipeline.
func newFairServer(t *testing.T, fairWeight float64) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, Config{
		BatchWindow: time.Microsecond,
		PlaceRouter: "least-loaded",
		FairWeight:  fairWeight,
		Shards: []ShardConfig{
			{Name: "a", Procs: 64, PolicyName: "SJF"},
			{Name: "b", Procs: 64, PolicyName: "F1"},
		},
	})
}

// fairClusterState is clusterState plus a completed-jobs feed.
func fairClusterState(name string, free, total int, completed string) string {
	return fmt.Sprintf(`{"name":%q,"now":0,"free_procs":%d,"total_procs":%d,"jobs":[],"completed":[%s]}`,
		name, free, total, completed)
}

type fairPlaceResp struct {
	Cluster  string `json:"cluster"`
	Fairness *struct {
		UserMean  float64 `json:"user_mean_bsld"`
		UserJobs  int     `json:"user_jobs"`
		FleetMean float64 `json:"fleet_mean_bsld"`
	} `json:"fairness"`
	Scores map[string]float64 `json:"scores"`
}

// feedHistory posts one /place round whose only purpose is to load the
// tracker: user 7 fared terribly on "a" and fine on "b", user 3 fine.
func feedHistory(t *testing.T, url string) {
	t.Helper()
	body := placeBody(t, `[0, 600, 1, 3]`,
		fairClusterState("a", 64, 64, `[7, 9000, 60], [7, 9100, 60], {"user_id": 3, "wait": 10, "run_time": 600}`),
		fairClusterState("b", 64, 64, `[7, 5, 60], [7, 6, 60], [3, 12, 600]`))
	code, resp := postJSON(t, url+"/place", body)
	if code != http.StatusOK {
		t.Fatalf("history feed failed: %d %s", code, resp)
	}
}

// TestPlaceFairnessSteering: with identical idle clusters the baseline
// ties toward the lowest index ("a"); once the tracker has seen user 7
// starved on "a" and served on "b", their next job must be steered to "b",
// while a user with no bad history keeps the tie-break. The response must
// expose the tracked per-user state.
func TestPlaceFairnessSteering(t *testing.T) {
	_, ts := newFairServer(t, 2)
	feedHistory(t, ts.URL)

	place := func(jobRow string) fairPlaceResp {
		t.Helper()
		code, resp := postJSON(t, ts.URL+"/place", placeBody(t, jobRow,
			fairClusterState("a", 64, 64, ""),
			fairClusterState("b", 64, 64, "")))
		if code != http.StatusOK {
			t.Fatalf("place failed: %d %s", code, resp)
		}
		var pr fairPlaceResp
		if err := json.Unmarshal(resp, &pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	deprived := place(`[0, 600, 16, 7]`)
	if deprived.Cluster != "b" {
		t.Errorf("deprived user 7 placed on %q, want the cluster that has not been starving them (b)", deprived.Cluster)
	}
	if deprived.Fairness == nil {
		t.Fatal("fairness state missing from /place response")
	}
	if deprived.Fairness.UserJobs != 4 {
		t.Errorf("user 7 tracked jobs = %d, want 4", deprived.Fairness.UserJobs)
	}
	if !(deprived.Fairness.UserMean > deprived.Fairness.FleetMean) {
		t.Errorf("user 7 mean %.2f must exceed fleet mean %.2f",
			deprived.Fairness.UserMean, deprived.Fairness.FleetMean)
	}

	neutral := place(`[0, 600, 16, 3]`)
	if neutral.Cluster != "a" {
		t.Errorf("well-served user 3 placed on %q, want the plain tie-break (a)", neutral.Cluster)
	}

	// Without the fairness weight the same history must change nothing.
	_, plain := newFairServer(t, 0)
	code, resp := postJSON(t, plain.URL+"/place", placeBody(t, `[0, 600, 16, 7]`,
		fairClusterState("a", 64, 64, `[7, 9000, 60], [7, 9100, 60]`),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusOK {
		t.Fatalf("plain place failed: %d %s", code, resp)
	}
	var pr fairPlaceResp
	if err := json.Unmarshal(resp, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Cluster != "a" {
		t.Errorf("fairness-disabled daemon placed on %q, want tie-break (a)", pr.Cluster)
	}
	if pr.Fairness != nil {
		t.Error("fairness-disabled daemon must not report fairness state")
	}
}

// TestFairnessMetricsView: rlserv_fairness_score must appear in /metrics
// once fairness is enabled, and reflect the tracked users.
func TestFairnessMetricsView(t *testing.T) {
	_, ts := newFairServer(t, 1)

	get := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	before := get()
	if !strings.Contains(before, `rlserv_fairness_score{stat="users"} 0`) {
		t.Errorf("empty tracker must report 0 users:\n%s", before)
	}
	if !strings.Contains(before, `rlserv_fairness_score{stat="jain"} 1`) {
		t.Errorf("empty tracker must report Jain 1:\n%s", before)
	}

	feedHistory(t, ts.URL)
	after := get()
	if !strings.Contains(after, `rlserv_fairness_score{stat="users"} 2`) {
		t.Errorf("tracker must report 2 users after the feed:\n%s", after)
	}
	if strings.Contains(after, `rlserv_fairness_score{stat="jain"} 1`+"\n") {
		t.Errorf("Jain must drop below 1 once user 7 is starved:\n%s", after)
	}
	if !strings.Contains(after, `rlserv_fairness_score{stat="max_user_bsld"}`) ||
		!strings.Contains(after, `rlserv_fairness_score{stat="max_mean_ratio"}`) {
		t.Errorf("fairness view incomplete:\n%s", after)
	}

	// A daemon without the fairness weight must not export the view.
	_, plain := newFairServer(t, 0)
	resp, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "rlserv_fairness_score") {
		t.Error("fairness-disabled daemon must not export rlserv_fairness_score")
	}
}

// TestFairnessValidation covers the configuration and request guards.
func TestFairnessValidation(t *testing.T) {
	if _, err := NewServer(Config{FairWeight: 1, PolicyName: "SJF"}); err == nil {
		t.Error("fairness without fleet shards must be rejected")
	}
	if _, err := NewServer(Config{
		FairWeight: -1,
		Shards:     []ShardConfig{{Name: "a", Procs: 8, PolicyName: "SJF"}},
	}); err == nil {
		t.Error("negative fairness weight must be rejected")
	}

	_, ts := newFairServer(t, 1)
	for _, completed := range []string{
		`[7, -5, 60]`, // negative wait
		`[7, 5, -60]`, // negative run
		`{"user_id": 7, "wait": -1, "run_time": 60}`, // object form, negative wait
	} {
		code, _ := postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 1, 7]`,
			fairClusterState("a", 64, 64, completed),
			fairClusterState("b", 64, 64, "")))
		if code != http.StatusBadRequest {
			t.Errorf("completed %s answered %d, want 400", completed, code)
		}
	}
	// Malformed compact rows fail the JSON decode.
	code, _ := postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 1, 7]`,
		fairClusterState("a", 64, 64, `[7, 5]`),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusBadRequest {
		t.Errorf("short completed row answered %d, want 400", code)
	}

	// A rejected request must fold NOTHING into the tracker — a client
	// that repairs and re-posts its whole completed batch would otherwise
	// double-count the valid records.
	code, _ = postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 1, 7]`,
		fairClusterState("a", 64, 64, `[7, 9000, 60], [7, 9100, 60]`),
		fairClusterState("b", 64, 64, `[7, 5, -1]`)))
	if code != http.StatusBadRequest {
		t.Fatalf("mixed-validity batch answered %d, want 400", code)
	}
	// Same for an infeasible job (422): the batch is valid, but the
	// request as a whole is rejected before any record is folded.
	code, _ = postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 512, 7]`,
		fairClusterState("a", 64, 64, `[7, 9000, 60], [7, 9100, 60]`),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible job answered %d, want 422", code)
	}
	code, resp := postJSON(t, ts.URL+"/place", placeBody(t, `[0, 600, 1, 7]`,
		fairClusterState("a", 64, 64, ""),
		fairClusterState("b", 64, 64, "")))
	if code != http.StatusOK {
		t.Fatalf("follow-up place failed: %d %s", code, resp)
	}
	var pr fairPlaceResp
	if err := json.Unmarshal(resp, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Fairness == nil || pr.Fairness.UserJobs != 0 {
		t.Fatalf("rejected batch leaked into the tracker: %+v", pr.Fairness)
	}
}
