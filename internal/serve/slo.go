package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rlsched/internal/telemetry"
)

// SLO monitoring and the serving degradation ladder (DESIGN.md §11).
//
// With a latency budget configured, the daemon keeps windowed per-endpoint
// latency histograms (telemetry.Histogram over the wall clock) and
// evaluates them periodically: an evaluation is overloaded when any
// endpoint's windowed p99 exceeds the budget or the batcher queue is over
// the high-water mark. Consecutive overloaded evaluations climb a
// hysteresis ladder (telemetry.Ladder) that degrades /v1/decide:
//
//	level 0 — full service: RL scoring through the batcher
//	level 1 — degraded: the SJF heuristic fallback engine, called
//	          synchronously (no batching queue, no model forward pass)
//	level 2 — shedding: a static FCFS answer (pick the head of every
//	          queue) with no engine call at all
//
// /readyz reports 503 at any level above 0 (stop sending new load here);
// /healthz flips 503 at HealthzLevel (default 2, "pull me out"). The level,
// breach count and windowed latency quantiles are exported on /metrics.

// SLOConfig parameterizes the monitor. The zero value (P99Budget 0)
// disables it entirely: no goroutine, no histograms, no /metrics families —
// the disabled daemon is byte-identical to one built before the monitor
// existed.
type SLOConfig struct {
	// P99Budget is the per-endpoint p99 latency budget. 0 disables SLO
	// monitoring and the degradation ladder.
	P99Budget time.Duration
	// Window is the sliding window the latency quantiles are computed
	// over (default 30s).
	Window time.Duration
	// EvalEvery is the evaluation period (default 1s).
	EvalEvery time.Duration
	// QueueHigh, when positive, adds a queue-depth overload signal: an
	// evaluation is overloaded when the deepest batcher queue reaches
	// this many pending groups, even if latency still looks healthy.
	QueueHigh int
	// EscalateAfter / RecoverAfter are the ladder's debounce streaks
	// (defaults 3 and 5: ~3s of sustained breach to degrade, ~5s of
	// sustained health per rung to recover, at the default EvalEvery).
	EscalateAfter int
	RecoverAfter  int
	// HealthzLevel is the degradation level at which /healthz flips to
	// 503 (default 2 — degraded-but-deciding still counts as alive).
	HealthzLevel int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = time.Second
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 3
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 5
	}
	if c.HealthzLevel <= 0 {
		c.HealthzLevel = 2
	}
	return c
}

// sloMonitor owns the windowed endpoint histograms, the ladder, and the
// evaluation loop. The current level is mirrored into an atomic so the
// request hot path reads it without taking the monitor lock.
type sloMonitor struct {
	cfg SLOConfig

	mu     sync.Mutex
	hists  map[string]*telemetry.Histogram
	paths  []string // creation order, for deterministic /metrics output
	ladder telemetry.Ladder

	level    atomic.Int32
	breaches atomic.Uint64

	// clock reports seconds since some fixed origin; tests inject a fake.
	clock func() float64
	// queueDepth reports the deepest batcher queue across the daemon.
	queueDepth func() int
	// fallback is the level-1 heuristic engine (SJF), called synchronously.
	fallback Engine

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// newSLOMonitor builds the monitor without starting its loop (run starts
// it; unit tests drive evalOnce directly instead).
func newSLOMonitor(cfg SLOConfig, queueDepth func() int, fallback Engine) *sloMonitor {
	cfg = cfg.withDefaults()
	start := time.Now()
	m := &sloMonitor{
		cfg:        cfg,
		hists:      map[string]*telemetry.Histogram{},
		ladder:     telemetry.Ladder{MaxLevel: 2, EscalateAfter: cfg.EscalateAfter, RecoverAfter: cfg.RecoverAfter},
		clock:      func() float64 { return time.Since(start).Seconds() },
		queueDepth: queueDepth,
		fallback:   fallback,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	return m
}

// run starts the evaluation ticker; close stops it.
func (m *sloMonitor) run() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.cfg.EvalEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.evalOnce()
			case <-m.stop:
				return
			}
		}
	}()
}

func (m *sloMonitor) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// histFor returns the endpoint's windowed histogram, creating it on first
// use. Callers hold mu.
func (m *sloMonitor) histFor(path string) *telemetry.Histogram {
	h := m.hists[path]
	if h == nil {
		// 50µs to 10s, 9 buckets per decade — the same span the
		// cumulative /metrics histograms cover, with window resolution.
		h = telemetry.NewHistogram(telemetry.LogBounds(50e-6, 10, 9),
			m.cfg.Window.Seconds(), 10)
		m.hists[path] = h
		m.paths = append(m.paths, path)
	}
	return h
}

// observe records one request latency for an endpoint.
func (m *sloMonitor) observe(path string, d time.Duration) {
	m.mu.Lock()
	m.histFor(path).Observe(m.clock(), d.Seconds())
	m.mu.Unlock()
}

// evalOnce runs one evaluation tick: overloaded when any endpoint's
// windowed p99 exceeds the budget, or the batcher queue is at the
// high-water mark. Returns the post-evaluation level.
func (m *sloMonitor) evalOnce() int {
	budget := m.cfg.P99Budget.Seconds()
	now := m.clock()
	overloaded := false
	m.mu.Lock()
	for _, p := range m.paths {
		if m.hists[p].Quantile(now, 0.99) > budget {
			overloaded = true
			break
		}
	}
	m.mu.Unlock()
	if !overloaded && m.cfg.QueueHigh > 0 && m.queueDepth != nil &&
		m.queueDepth() >= m.cfg.QueueHigh {
		overloaded = true
	}
	if overloaded {
		m.breaches.Add(1)
	}
	m.mu.Lock()
	level := m.ladder.Eval(overloaded)
	m.mu.Unlock()
	m.level.Store(int32(level))
	return level
}

// Level is the current degradation level (hot-path read, no lock).
func (m *sloMonitor) Level() int { return int(m.level.Load()) }

// writeProm exports the monitor's state: the level gauge, the breach
// counter, and windowed p50/p95/p99 per endpoint.
func (m *sloMonitor) writeProm(w io.Writer) {
	promFamily(w, "rlserv_degradation_level",
		"Current degradation ladder level (0 full service, 1 heuristic fallback, 2 shedding).", "gauge")
	fmt.Fprintf(w, "rlserv_degradation_level %d\n", m.Level())
	promCounter(w, "rlserv_slo_breaches_total",
		"SLO evaluations that observed an overload.", m.breaches.Load())
	promFamily(w, "rlserv_request_latency_seconds",
		"Windowed request latency quantiles per endpoint.", "gauge")
	now := m.clock()
	m.mu.Lock()
	paths := append([]string(nil), m.paths...)
	sort.Strings(paths)
	for _, p := range paths {
		h := m.hists[p]
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "rlserv_request_latency_seconds{path=%q,quantile=\"%g\"} %g\n",
				p, q, h.Quantile(now, q))
		}
	}
	m.mu.Unlock()
}

// staticDecide is the level-2 shedding answer: pick the head of every
// queue (FCFS — the queues arrive submit-ordered) without any engine call.
func staticDecide(states []*QueueState, out []Decision) {
	for i := range out {
		out[i] = Decision{Pick: 0}
	}
	_ = states
}

// staticPolicyName labels shed responses so clients and tests can tell the
// three service levels apart from the response body alone.
const staticPolicyName = "static-fcfs"
