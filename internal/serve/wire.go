package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"rlsched/internal/job"
	"rlsched/internal/sim"
)

// Wire format. A decision request is either one queue state
//
//	{"now": 0, "free_procs": 96, "total_procs": 128, "queue_len": 200,
//	 "scores": true,
//	 "jobs": [{"id": 7, "submit_time": -30, "requested_time": 3600,
//	           "requested_procs": 4, "user_id": 2}, ...]}
//
// or a batch {"states": [state, state, ...]} answered in order. Job rows
// may equivalently be compact arrays
//
//	[submit_time, requested_time, requested_procs, user_id?, id?]
//
// which is what the load generator emits: canonical compact bodies bypass
// encoding/json entirely via a hand-rolled parser (~4× faster on the
// 1-core CI box, and the decode is the biggest single cost of a decision).
// Any body the fast parser rejects falls back to encoding/json, so every
// valid JSON request is accepted either way.

// wireJob decodes a job from either object or compact-array form.
type wireJob struct {
	ID       int     `json:"id"`
	Submit   float64 `json:"submit_time"`
	ReqTime  float64 `json:"requested_time"`
	ReqProcs int     `json:"requested_procs"`
	UserID   int     `json:"user_id"`
}

// UnmarshalJSON accepts {"submit_time": ...} objects and
// [submit, req_time, procs, user?, id?] arrays.
func (w *wireJob) UnmarshalJSON(b []byte) error {
	w.UserID = -1
	for _, c := range b {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			var row []float64
			if err := json.Unmarshal(b, &row); err != nil {
				return err
			}
			if len(row) < 3 || len(row) > 5 {
				return fmt.Errorf("serve: compact job row wants 3-5 values, got %d", len(row))
			}
			w.Submit, w.ReqTime, w.ReqProcs = row[0], row[1], int(row[2])
			if len(row) > 3 {
				w.UserID = int(row[3])
			}
			if len(row) > 4 {
				w.ID = int(row[4])
			}
			return nil
		default:
			type alias wireJob
			a := alias(*w)
			if err := json.Unmarshal(b, &a); err != nil {
				return err
			}
			*w = wireJob(a)
			return nil
		}
	}
	return fmt.Errorf("serve: empty job spec")
}

// toJob converts the wire form to a pending job (scheduling state
// cleared) — the single point all request paths (/v1/decide and /place)
// build jobs through.
func (w *wireJob) toJob() job.Job {
	return job.Job{
		ID:             w.ID,
		SubmitTime:     w.Submit,
		RequestedTime:  w.ReqTime,
		RequestedProcs: w.ReqProcs,
		UserID:         w.UserID,
		StartTime:      -1,
		EndTime:        -1,
	}
}

// wireDone is a completed-job record posted with /place cluster states to
// feed the daemon's per-user fairness tracker (fleet mode with a fairness
// weight): either {"user_id": u, "wait": w, "run_time": r} or a compact
// [user, wait, run] array, both in seconds. The daemon folds each record
// into the posting cluster's per-user bounded-slowdown share before
// scoring the request's job.
type wireDone struct {
	UserID int     `json:"user_id"`
	Wait   float64 `json:"wait"`
	Run    float64 `json:"run_time"`
}

// UnmarshalJSON accepts {"user_id": ...} objects and [user, wait, run]
// arrays.
func (w *wireDone) UnmarshalJSON(b []byte) error {
	w.UserID = -1
	for _, c := range b {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			var row []float64
			if err := json.Unmarshal(b, &row); err != nil {
				return err
			}
			if len(row) != 3 {
				return fmt.Errorf("serve: compact completed row wants 3 values, got %d", len(row))
			}
			w.UserID, w.Wait, w.Run = int(row[0]), row[1], row[2]
			return nil
		default:
			type alias wireDone
			a := alias(*w)
			if err := json.Unmarshal(b, &a); err != nil {
				return err
			}
			*w = wireDone(a)
			return nil
		}
	}
	return fmt.Errorf("serve: empty completed spec")
}

// toJob converts the record into a finished job the fairness tracker can
// observe: submitted at 0, started after Wait, ran for Run.
func (w *wireDone) toJob() job.Job {
	return job.Job{
		UserID:    w.UserID,
		RunTime:   w.Run,
		StartTime: w.Wait,
		EndTime:   w.Wait + w.Run,
	}
}

// wireState is one queue state on the wire.
type wireState struct {
	Now        float64   `json:"now"`
	FreeProcs  int       `json:"free_procs"`
	TotalProcs int       `json:"total_procs"`
	QueueLen   int       `json:"queue_len"`
	Scores     bool      `json:"scores"`
	Jobs       []wireJob `json:"jobs"`
}

// wireRequest is the full request: inline single state or a batch.
type wireRequest struct {
	wireState
	States []wireState `json:"states"`
}

// reqBuf holds every allocation a request needs; pooled across requests.
// Job pointers handed to engines index into the arena, so a reqBuf must
// not be recycled until its decisions have been copied out.
type reqBuf struct {
	body   []byte
	resp   []byte
	arena  []job.Job
	jobPtr []*job.Job
	states []QueueState
	stPtr  []*QueueState
	ranges []int // 2 ints per state: arena [start, end)
	batch  bool  // request used the states form
}

var reqBufPool = sync.Pool{New: func() interface{} {
	return &reqBuf{
		body:  make([]byte, 0, 16<<10),
		resp:  make([]byte, 0, 1<<10),
		arena: make([]job.Job, 0, 512),
	}
}}

func (rb *reqBuf) reset() {
	rb.body = rb.body[:0]
	rb.resp = rb.resp[:0]
	rb.arena = rb.arena[:0]
	rb.jobPtr = rb.jobPtr[:0]
	rb.states = rb.states[:0]
	rb.stPtr = rb.stPtr[:0]
	rb.ranges = rb.ranges[:0]
	rb.batch = false
}

// addState appends a parsed state whose jobs occupy arena[start:end).
func (rb *reqBuf) addState(st QueueState, start, end int) {
	rb.states = append(rb.states, st)
	rb.ranges = append(rb.ranges, start, end)
}

// finalize materializes the job pointer slices once the arena is stable
// (the arena may regrow while parsing, so pointers are taken only here).
func (rb *reqBuf) finalize() []*QueueState {
	if cap(rb.jobPtr) < len(rb.arena) {
		rb.jobPtr = make([]*job.Job, len(rb.arena))
	}
	rb.jobPtr = rb.jobPtr[:len(rb.arena)]
	for i := range rb.arena {
		rb.jobPtr[i] = &rb.arena[i]
	}
	for i := range rb.states {
		start, end := rb.ranges[2*i], rb.ranges[2*i+1]
		rb.states[i].Jobs = rb.jobPtr[start:end:end]
		rb.stPtr = append(rb.stPtr, &rb.states[i])
	}
	return rb.stPtr
}

// parseRequest decodes body into rb: fast path first, encoding/json as
// the catch-all.
func (rb *reqBuf) parseRequest(body []byte) error {
	if err := rb.parseFast(body); err == nil {
		return nil
	}
	return rb.parseSlow(body)
}

// parseSlow is the encoding/json catch-all path. It accepts every valid
// JSON request; the fast parser accepts a superset of the canonical
// compact bodies and must agree with this path on anything both accept
// (pinned by the FuzzParseRequest differential).
func (rb *reqBuf) parseSlow(body []byte) error {
	rb.arena = rb.arena[:0]
	rb.states = rb.states[:0]
	rb.ranges = rb.ranges[:0]
	var req wireRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return fmt.Errorf("serve: bad request: %w", err)
	}
	rb.batch = len(req.States) > 0
	if !rb.batch {
		rb.addWireState(&req.wireState)
		return nil
	}
	for i := range req.States {
		rb.addWireState(&req.States[i])
	}
	return nil
}

func (rb *reqBuf) addWireState(ws *wireState) {
	start := len(rb.arena)
	for i := range ws.Jobs {
		rb.arena = append(rb.arena, ws.Jobs[i].toJob())
	}
	rb.addState(QueueState{
		Now:        ws.Now,
		View:       sim.ClusterView{FreeProcs: ws.FreeProcs, TotalProcs: ws.TotalProcs},
		QueueLen:   ws.QueueLen,
		WantScores: ws.Scores,
	}, start, len(rb.arena))
}

// validate enforces the request invariants shared by both parse paths.
func (rb *reqBuf) validate() error {
	if len(rb.states) == 0 {
		return fmt.Errorf("serve: request has no states")
	}
	for i := range rb.states {
		st := &rb.states[i]
		start, end := rb.ranges[2*i], rb.ranges[2*i+1]
		if end == start {
			return fmt.Errorf("serve: state %d has no jobs", i)
		}
		if st.View.TotalProcs <= 0 {
			return fmt.Errorf("serve: state %d needs a positive total_procs", i)
		}
		if st.View.FreeProcs < 0 || st.View.FreeProcs > st.View.TotalProcs {
			return fmt.Errorf("serve: state %d free_procs out of range", i)
		}
		for j := start; j < end; j++ {
			jb := &rb.arena[j]
			if jb.RequestedProcs <= 0 || jb.RequestedTime <= 0 {
				return fmt.Errorf("serve: state %d job %d needs positive requested_time and requested_procs",
					i, j-start)
			}
		}
	}
	return nil
}

// appendResponse builds the JSON response. Single-state requests answer
// {"pick": i, "job_id": id, "policy": name}; batches answer
// {"picks": [...], "policy": name}. Scores ride along when asked for.
func (rb *reqBuf) appendResponse(dst []byte, decs []Decision, policy string) []byte {
	dst = append(dst, '{')
	if !rb.batch {
		d := decs[0]
		dst = append(dst, `"pick":`...)
		dst = strconv.AppendInt(dst, int64(d.Pick), 10)
		if id := rb.states[0].Jobs[d.Pick].ID; id != 0 {
			dst = append(dst, `,"job_id":`...)
			dst = strconv.AppendInt(dst, int64(id), 10)
		}
		if d.Scores != nil {
			dst = append(dst, `,"scores":`...)
			dst = appendFloats(dst, d.Scores)
		}
	} else {
		dst = append(dst, `"picks":[`...)
		for i, d := range decs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(d.Pick), 10)
		}
		dst = append(dst, ']')
		if anyScores(decs) {
			dst = append(dst, `,"scores":[`...)
			for i, d := range decs {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = appendFloats(dst, d.Scores)
			}
			dst = append(dst, ']')
		}
	}
	dst = append(dst, `,"policy":`...)
	dst = strconv.AppendQuote(dst, policy)
	dst = append(dst, '}', '\n')
	return dst
}

func anyScores(decs []Decision) bool {
	for _, d := range decs {
		if d.Scores != nil {
			return true
		}
	}
	return false
}

func appendFloats(dst []byte, vs []float64) []byte {
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, v, 'g', 6, 64)
	}
	return append(dst, ']')
}
