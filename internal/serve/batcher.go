package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// group is one submitted unit of work: all queue states of one HTTP
// request, answered together. Grouping whole requests (instead of one
// channel hop per state) keeps the per-decision synchronization cost
// constant under pipelined load.
type group struct {
	states []*QueueState
	out    []Decision
	policy string // name of the engine that decided the group
	done   chan struct{}
}

// engineBox makes the Engine interface value swappable via atomic.Pointer.
type engineBox struct{ e Engine }

// Batcher coalesces concurrent decision requests into batched engine
// calls. A fixed pool of workers pulls groups off one queue; each worker
// greedily drains whatever is queued (up to MaxBatch states) into a single
// DecideBatch call, and only when it holds a lone group does it wait up to
// Window for company. Under load batches fill with zero added latency;
// when idle the window bounds the wait.
type Batcher struct {
	queue    chan *group
	quit     chan struct{}
	window   time.Duration
	maxBatch int
	engine   atomic.Pointer[engineBox]

	wg     sync.WaitGroup
	closed atomic.Bool

	// decisions and batches feed the /metrics histograms.
	onBatch func(states int)
}

// BatcherConfig sizes a Batcher. Zero values take defaults: workers =
// GOMAXPROCS, window = 200µs, maxBatch = 64 states.
type BatcherConfig struct {
	Workers  int
	Window   time.Duration
	MaxBatch int
	// OnBatch, when set, observes every engine call's batch size.
	OnBatch func(states int)
}

// NewBatcher starts the worker pool serving the given engine.
func NewBatcher(e Engine, cfg BatcherConfig) *Batcher {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Window == 0 {
		cfg.Window = 200 * time.Microsecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	b := &Batcher{
		queue:    make(chan *group, 4*cfg.MaxBatch),
		quit:     make(chan struct{}),
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
		onBatch:  cfg.OnBatch,
	}
	b.engine.Store(&engineBox{e})
	b.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go b.worker()
	}
	return b
}

// Engine returns the currently served engine.
func (b *Batcher) Engine() Engine { return b.engine.Load().e }

// QueueDepth reports how many request groups are waiting in the batching
// queue right now — the backpressure signal the SLO monitor's high-water
// overload check reads.
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Swap atomically replaces the engine. In-flight batches finish on the
// engine they started with; queued and future work uses the new one. No
// request is dropped.
func (b *Batcher) Swap(e Engine) { b.engine.Store(&engineBox{e}) }

// Close stops the workers after draining whatever is queued. The queue
// channel is never closed, so a handler racing Close (e.g. when an HTTP
// graceful-shutdown deadline expires with requests still in flight) gets
// an error instead of a send-on-closed-channel panic.
func (b *Batcher) Close() {
	if b.closed.CompareAndSwap(false, true) {
		close(b.quit)
		b.wg.Wait()
	}
}

// Decide answers all states of one request, blocking until the batcher has
// run them (or ctx expires, leaving the work to be discarded when served).
// It also returns the name of the engine that decided the request, which
// during a hot-swap window can differ from the currently served engine.
func (b *Batcher) Decide(ctx context.Context, states []*QueueState) ([]Decision, string, error) {
	if len(states) == 0 {
		return nil, "", nil
	}
	if b.closed.Load() {
		return nil, "", fmt.Errorf("serve: batcher is shut down")
	}
	g := &group{states: states, out: make([]Decision, len(states)), done: make(chan struct{})}
	select {
	case b.queue <- g:
	case <-b.quit:
		return nil, "", fmt.Errorf("serve: batcher is shut down")
	case <-ctx.Done():
		return nil, "", fmt.Errorf("serve: queue full: %w", ctx.Err())
	}
	select {
	case <-g.done:
		return g.out, g.policy, nil
	case <-b.quit:
		// Workers may already be gone; don't wait on abandoned work.
		select {
		case <-g.done:
			return g.out, g.policy, nil
		default:
			return nil, "", fmt.Errorf("serve: batcher is shut down")
		}
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
}

// worker is the batching loop.
func (b *Batcher) worker() {
	defer b.wg.Done()
	var (
		groups []*group
		states []*QueueState
		out    []Decision
		timer  = time.NewTimer(time.Hour)
	)
	if !timer.Stop() {
		<-timer.C
	}
	runBatch := func(groups []*group) {
		states = states[:0]
		for _, g := range groups {
			states = append(states, g.states...)
		}
		if cap(out) < len(states) {
			out = make([]Decision, len(states))
		}
		out = out[:len(states)]
		eng := b.engine.Load().e
		eng.DecideBatch(states, out)
		if b.onBatch != nil {
			b.onBatch(len(states))
		}
		i := 0
		for _, g := range groups {
			copy(g.out, out[i:i+len(g.states)])
			g.policy = eng.Name()
			i += len(g.states)
			close(g.done)
		}
	}

	for {
		var first *group
		select {
		case first = <-b.queue:
		case <-b.quit:
			// Drain and answer whatever made it into the queue.
			for {
				select {
				case g := <-b.queue:
					runBatch(append(groups[:0], g))
				default:
					return
				}
			}
		}
		groups = append(groups[:0], first)
		n := len(first.states)

		// Greedy, non-blocking drain of everything already queued.
	drain:
		for n < b.maxBatch {
			select {
			case g := <-b.queue:
				groups = append(groups, g)
				n += len(g.states)
			default:
				break drain
			}
		}
		// A lone small group waits up to the window for company once.
		if len(groups) == 1 && n < b.maxBatch && b.window > 0 {
			timer.Reset(b.window)
		wait:
			for n < b.maxBatch {
				select {
				case g := <-b.queue:
					groups = append(groups, g)
					n += len(g.states)
				case <-timer.C:
					break wait
				case <-b.quit:
					break wait
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		runBatch(groups)
	}
}
