// Package sched implements the heuristic priority-function schedulers the
// paper compares against (Table III): FCFS, SJF, WFP3, UNICEP and F1, plus
// a Random baseline. Each scheduler scores every visible job and picks the
// minimum-score job, exactly how priority-function batch schedulers order
// their queues.
package sched

import (
	"math"
	"math/rand"

	"rlsched/internal/job"
	"rlsched/internal/sim"
)

// PriorityFunc scores a job at decision time; the lowest score is
// scheduled first. now is the current clock; view exposes resources.
type PriorityFunc func(j *job.Job, now float64, view sim.ClusterView) float64

// Priority is a sim.Scheduler driven by a priority function.
type Priority struct {
	Name  string
	Score PriorityFunc
}

// Pick implements sim.Scheduler: argmin of the score over visible jobs,
// first-come wins ties (stable for reproducibility).
func (p *Priority) Pick(visible []*job.Job, now float64, view sim.ClusterView) int {
	best := 0
	bestScore := math.Inf(1)
	for i, j := range visible {
		s := p.Score(j, now, view)
		if s < bestScore {
			bestScore = s
			best = i
		}
	}
	return best
}

// FCFS schedules in submission order: score(t) = s_t.
func FCFS() *Priority {
	return &Priority{Name: "FCFS", Score: func(j *job.Job, _ float64, _ sim.ClusterView) float64 {
		return j.SubmitTime
	}}
}

// SJF runs the shortest requested runtime first: score(t) = r_t.
func SJF() *Priority {
	return &Priority{Name: "SJF", Score: func(j *job.Job, _ float64, _ sim.ClusterView) float64 {
		return j.RequestedTime
	}}
}

// WFP3 favours jobs with long waits, short runtimes and few processors:
// score(t) = −(w_t/r_t)³ · n_t (Tang et al., the paper's Table III).
func WFP3() *Priority {
	return &Priority{Name: "WFP3", Score: func(j *job.Job, now float64, _ sim.ClusterView) float64 {
		w := wait(j, now)
		r := math.Max(j.RequestedTime, 1)
		ratio := w / r
		return -(ratio * ratio * ratio) * float64(j.RequestedProcs)
	}}
}

// UNICEP (UNICEF in some sources) favours long-waiting, small, short jobs:
// score(t) = −w_t / (log₂(n_t) · r_t). n_t is floored at 2 so serial jobs
// do not divide by log₂(1)=0.
func UNICEP() *Priority {
	return &Priority{Name: "UNICEP", Score: func(j *job.Job, now float64, _ sim.ClusterView) float64 {
		w := wait(j, now)
		n := math.Max(float64(j.RequestedProcs), 2)
		r := math.Max(j.RequestedTime, 1)
		return -w / (math.Log2(n) * r)
	}}
}

// F1 is the best scheduler of Carastan-Santos & de Camargo (SC'17), derived
// by brute-force simulation and non-linear regression:
// score(t) = log₁₀(r_t)·n_t + 870·log₁₀(s_t). Submit times are floored at
// 1s so the log is defined at the trace origin.
func F1() *Priority {
	return &Priority{Name: "F1", Score: func(j *job.Job, _ float64, _ sim.ClusterView) float64 {
		r := math.Max(j.RequestedTime, 1)
		s := math.Max(j.SubmitTime, 1)
		return math.Log10(r)*float64(j.RequestedProcs) + 870*math.Log10(s)
	}}
}

// SAF (smallest area first) runs the job with the smallest requested
// area r_t · n_t first — the classic area-based heuristic; a useful extra
// baseline beyond Table III.
func SAF() *Priority {
	return &Priority{Name: "SAF", Score: func(j *job.Job, _ float64, _ sim.ClusterView) float64 {
		return j.RequestedTime * float64(j.RequestedProcs)
	}}
}

// LJF (largest job first) runs the widest job first, reducing external
// fragmentation at the cost of short-job latency; included as the
// anti-SJF ablation baseline.
func LJF() *Priority {
	return &Priority{Name: "LJF", Score: func(j *job.Job, _ float64, _ sim.ClusterView) float64 {
		return -float64(j.RequestedProcs)
	}}
}

// Random picks a uniformly random visible job; a sanity baseline.
func Random(rng *rand.Rand) *Priority {
	return &Priority{Name: "Random", Score: func(_ *job.Job, _ float64, _ sim.ClusterView) float64 {
		return rng.Float64()
	}}
}

func wait(j *job.Job, now float64) float64 {
	w := now - j.SubmitTime
	if w < 0 {
		return 0
	}
	return w
}

// Heuristics returns the paper's five comparison schedulers in Table III
// order.
func Heuristics() []*Priority {
	return []*Priority{FCFS(), WFP3(), UNICEP(), SJF(), F1()}
}

// Serveable returns every stateless heuristic — the set the online
// decision service can expose. Random is excluded: its closure shares one
// RNG, which is not safe for concurrent scoring.
func Serveable() []*Priority {
	return []*Priority{FCFS(), WFP3(), UNICEP(), SJF(), F1(), SAF(), LJF()}
}

// Names lists the serveable heuristic names.
func Names() []string {
	hs := Serveable()
	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = h.Name
	}
	return names
}

// ByName returns the named heuristic, or nil.
func ByName(name string) *Priority {
	for _, h := range Serveable() {
		if h.Name == name {
			return h
		}
	}
	return nil
}
