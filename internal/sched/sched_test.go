package sched

import (
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func view() sim.ClusterView { return sim.ClusterView{FreeProcs: 64, TotalProcs: 64} }

func TestFCFSPicksEarliestSubmit(t *testing.T) {
	jobs := []*job.Job{
		job.New(1, 50, 10, 1, 10),
		job.New(2, 10, 10, 1, 10),
		job.New(3, 30, 10, 1, 10),
	}
	if got := FCFS().Pick(jobs, 100, view()); got != 1 {
		t.Errorf("FCFS picked %d, want 1", got)
	}
}

func TestSJFPicksShortest(t *testing.T) {
	jobs := []*job.Job{
		job.New(1, 0, 500, 1, 500),
		job.New(2, 0, 20, 1, 20),
		job.New(3, 0, 100, 1, 100),
	}
	if got := SJF().Pick(jobs, 0, view()); got != 1 {
		t.Errorf("SJF picked %d, want 1", got)
	}
}

func TestWFP3FavorsLongWaiters(t *testing.T) {
	// Identical jobs except submit time: the longer-waiting one wins.
	a := job.New(1, 90, 100, 4, 100) // waited 10
	b := job.New(2, 0, 100, 4, 100)  // waited 100
	if got := WFP3().Pick([]*job.Job{a, b}, 100, view()); got != 1 {
		t.Errorf("WFP3 picked %d, want the long waiter 1", got)
	}
	// Among equal waiters the formula −(w/r)³·n favours the *wider* job
	// (its starvation is costlier), matching the reference implementation.
	c := job.New(3, 0, 100, 32, 100)
	d := job.New(4, 0, 100, 2, 100)
	if got := WFP3().Pick([]*job.Job{c, d}, 100, view()); got != 0 {
		t.Errorf("WFP3 picked %d, want the wide long-waiter 0", got)
	}
}

func TestUNICEPSerialJobsSafe(t *testing.T) {
	// A serial job (n=1) must not divide by log2(1)=0.
	a := job.New(1, 0, 100, 1, 100)
	b := job.New(2, 0, 100, 8, 100)
	got := UNICEP().Pick([]*job.Job{a, b}, 50, view())
	if got != 0 && got != 1 {
		t.Fatalf("UNICEP pick out of range: %d", got)
	}
	s := UNICEP().Score(a, 50, view())
	if s != s { // NaN check
		t.Error("UNICEP score must not be NaN for serial jobs")
	}
}

func TestF1PrefersShortNarrowEarly(t *testing.T) {
	short := job.New(1, 100, 10, 1, 10)
	long := job.New(2, 100, 100000, 64, 100000)
	if got := F1().Pick([]*job.Job{long, short}, 200, view()); got != 1 {
		t.Errorf("F1 picked %d, want the short narrow job", got)
	}
}

func TestTieBreakIsFirstComeStable(t *testing.T) {
	a := job.New(1, 0, 100, 1, 100)
	b := job.New(2, 0, 100, 1, 100)
	if got := SJF().Pick([]*job.Job{a, b}, 0, view()); got != 0 {
		t.Errorf("tie must go to the earlier index, got %d", got)
	}
}

func TestHeuristicsRegistry(t *testing.T) {
	hs := Heuristics()
	if len(hs) != 5 {
		t.Fatalf("Heuristics() = %d entries, want 5", len(hs))
	}
	wantOrder := []string{"FCFS", "WFP3", "UNICEP", "SJF", "F1"}
	for i, h := range hs {
		if h.Name != wantOrder[i] {
			t.Errorf("Heuristics()[%d] = %s, want %s", i, h.Name, wantOrder[i])
		}
		if ByName(h.Name) == nil {
			t.Errorf("ByName(%q) = nil", h.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown scheduler must be nil")
	}
}

func TestSAFPicksSmallestArea(t *testing.T) {
	a := job.New(1, 0, 100, 8, 100) // area 800
	b := job.New(2, 0, 300, 2, 300) // area 600
	c := job.New(3, 0, 50, 16, 50)  // area 800
	if got := SAF().Pick([]*job.Job{a, b, c}, 0, view()); got != 1 {
		t.Errorf("SAF picked %d, want 1 (smallest r·n)", got)
	}
}

func TestLJFPicksWidest(t *testing.T) {
	a := job.New(1, 0, 100, 8, 100)
	b := job.New(2, 0, 100, 32, 100)
	if got := LJF().Pick([]*job.Job{a, b}, 0, view()); got != 1 {
		t.Errorf("LJF picked %d, want 1 (widest)", got)
	}
}

func TestRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Random(rng)
	jobs := []*job.Job{
		job.New(1, 0, 10, 1, 10),
		job.New(2, 0, 10, 1, 10),
		job.New(3, 0, 10, 1, 10),
	}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		p := r.Pick(jobs, 0, view())
		if p < 0 || p > 2 {
			t.Fatalf("Random pick %d out of range", p)
		}
		counts[p]++
	}
	if len(counts) < 2 {
		t.Error("Random should spread picks across slots")
	}
}

// TestEndToEndRanking runs all heuristics through the simulator on a
// congested trace and checks the qualitative ranking the paper reports:
// SJF and F1 beat FCFS on average bounded slowdown.
func TestEndToEndRanking(t *testing.T) {
	tr := trace.Preset("Lublin-2", 600, 77)
	vals := map[string]float64{}
	for _, h := range Heuristics() {
		s := sim.New(sim.Config{Processors: tr.Processors, Backfill: true})
		if err := s.Load(tr.Window(0, 600)); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(h)
		if err != nil {
			t.Fatal(err)
		}
		vals[h.Name] = metrics.Value(metrics.BoundedSlowdown, res)
	}
	if vals["SJF"] >= vals["FCFS"] {
		t.Errorf("SJF bsld %.1f must beat FCFS %.1f", vals["SJF"], vals["FCFS"])
	}
	if vals["F1"] >= vals["FCFS"] {
		t.Errorf("F1 bsld %.1f must beat FCFS %.1f", vals["F1"], vals["FCFS"])
	}
	for n, v := range vals {
		if v < 1 {
			t.Errorf("%s bsld %.2f below 1 is impossible", n, v)
		}
	}
}

func TestServeableNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != len(Serveable()) {
		t.Fatalf("Names has %d entries, Serveable %d", len(names), len(Serveable()))
	}
	for _, want := range []string{"FCFS", "WFP3", "UNICEP", "SJF", "F1", "SAF", "LJF"} {
		h := ByName(want)
		if h == nil || h.Name != want {
			t.Fatalf("ByName(%q) = %v", want, h)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName should return nil for unknown names")
	}
	// The Table III comparison set is unchanged by the serveable superset.
	if got := len(Heuristics()); got != 5 {
		t.Fatalf("Heuristics() has %d entries, want 5", got)
	}
}
