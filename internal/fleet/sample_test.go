package fleet

import (
	"bytes"
	"testing"

	"rlsched/internal/telemetry"
)

// TestSamplingParityNoMigration pins the tentpole guarantee: a run with
// health sampling enabled is byte-identical to the same run without it.
func TestSamplingParityNoMigration(t *testing.T) {
	stream := lublinStream(t, 250, 29)

	base, err := New(heteroMembers(), LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	sampled, err := New(heteroMembers(), LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if err := sampled.EnableSampling(SamplingConfig{Interval: 500, Set: set}); err != nil {
		t.Fatal(err)
	}
	sampledRes, err := sampled.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}

	if a, b := marshalResult(t, baseRes), marshalResult(t, sampledRes); !bytes.Equal(a, b) {
		t.Fatal("results differ with sampling enabled")
	}
	checkSeries(t, set, len(stream))
}

// TestSamplingParityWithMigration repeats the parity check with migration
// sweeps interleaved between sample ticks, at intervals chosen to collide
// (sweep 300, sample 450 — every second sample tick lands mid-interval,
// every third coincides with a sweep).
func TestSamplingParityWithMigration(t *testing.T) {
	stream := lublinStream(t, 250, 31)

	build := func() *Fleet {
		f, err := New(heteroMembers(), LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.EnableMigration(HysteresisMigration(300)); err != nil {
			t.Fatal(err)
		}
		return f
	}

	base := build()
	baseRes, err := base.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	sampled := build()
	if err := sampled.EnableSampling(SamplingConfig{Interval: 450, Set: set}); err != nil {
		t.Fatal(err)
	}
	sampledRes, err := sampled.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}

	if a, b := marshalResult(t, baseRes), marshalResult(t, sampledRes); !bytes.Equal(a, b) {
		t.Fatal("results differ with sampling enabled alongside migration")
	}
	checkSeries(t, set, len(stream))

	// Migration counters must reconcile: the per-interval deltas sum to
	// the run's total moves (each move lands in exactly one MovedIn).
	total := 0.0
	for _, p := range set.Get("fleet.migrations").Points {
		total += p.V
	}
	moves := 0
	for _, c := range sampledRes.Clusters {
		moves += c.MovedIn
	}
	if int(total) != moves {
		t.Fatalf("sampled migration deltas sum to %g, run reported %d moves", total, moves)
	}
}

// checkSeries asserts the structural invariants of a sampled run: the
// expected families exist, times are strictly increasing, every series
// ends at the same instant (the shared fleet horizon written by the final
// sample), and the completion counter ends at the full stream.
func checkSeries(t *testing.T, set *telemetry.Set, jobs int) {
	t.Helper()
	horizon := set.Get("fleet.completed").Last().T
	names := []string{
		"cluster.large.util", "cluster.mid.queue_depth", "cluster.small.pending_work",
		"cluster.large.running_work", "fleet.queue_depth", "fleet.pending_work",
		"fleet.running_work", "fleet.bsld_so_far", "fleet.completed",
		"fleet.fairness_jain", "fleet.migrations",
	}
	for _, n := range names {
		sr := set.Get(n)
		if sr == nil || len(sr.Points) == 0 {
			t.Fatalf("series %s missing or empty", n)
		}
		for i := 1; i < len(sr.Points); i++ {
			if sr.Points[i].T <= sr.Points[i-1].T {
				t.Fatalf("series %s: non-increasing time at %d", n, i)
			}
		}
		if last := sr.Last().T; last != horizon {
			t.Fatalf("series %s ends at %g, horizon is %g", n, last, horizon)
		}
	}
	if got := set.Get("fleet.completed").Last().V; got != float64(jobs) {
		t.Fatalf("final completed = %g, want %d", got, jobs)
	}
	if j := set.Get("fleet.fairness_jain").Last().V; j <= 0 || j > 1 {
		t.Fatalf("final Jain index %g outside (0, 1]", j)
	}
	for _, p := range set.Get("cluster.large.util").Points {
		if p.V < 0 || p.V > 1 {
			t.Fatalf("utilization sample %g outside [0, 1]", p.V)
		}
	}
}

func TestEnableSamplingValidation(t *testing.T) {
	f, err := New(heteroMembers(), NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.EnableSampling(SamplingConfig{Interval: 0, Set: telemetry.NewSet()}); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if err := f.EnableSampling(SamplingConfig{Interval: 100}); err == nil {
		t.Fatal("nil Set must be rejected")
	}
}
