package fleet

import (
	"math"
	"reflect"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/sim"
)

// doneJob builds a completed job: submitted at 0, waited w, ran r.
func doneJob(user int, wait, run float64) *job.Job {
	j := job.New(1, 0, run, 1, run)
	j.UserID = user
	j.StartTime = wait
	j.EndTime = wait + run
	return j
}

func idleCand(idx, free, total int) *Candidate {
	return &Candidate{Index: idx, View: sim.ClusterView{FreeProcs: free, TotalProcs: total}}
}

// TestFairnessScorerColdMatchesBinpack: with no tracked state and no
// pending jobs, the fairness scorer's ordering must equal Binpack's —
// cold starts degrade to packing, never to noise-amplified steering.
func TestFairnessScorerColdMatchesBinpack(t *testing.T) {
	f := NewFairnessScorer(FairnessConfig{})
	cands := []*Candidate{
		idleCand(0, 256, 256),
		idleCand(1, 24, 128),
		{Index: 2, View: sim.ClusterView{FreeProcs: 0, TotalProcs: 64}, Pending: 3, PendingWork: 4000},
	}
	j := job.New(9, 0, 300, 16, 300)
	fair := make([]float64, len(cands))
	base := make([]float64, len(cands))
	f.Score(j, cands, fair)
	Binpack{}.Score(j, cands, base)
	for a := 0; a < len(cands); a++ {
		for b := 0; b < len(cands); b++ {
			if (fair[a] > fair[b]) != (base[a] > base[b]) {
				t.Fatalf("cold fairness ordering diverges from binpack: fair=%v binpack=%v", fair, base)
			}
		}
	}
}

// TestFairnessRescueAndRepulsion: a user starved fleet-wide is steered
// off the cluster that hurt them when an equally idle alternative exists;
// a user with no history keeps the baseline tie.
func TestFairnessRescueAndRepulsion(t *testing.T) {
	f := NewFairnessScorer(FairnessConfig{})
	// User 7: two terrible completions on cluster 0, two good on cluster 1.
	f.Observe(0, doneJob(7, 9000, 60))
	f.Observe(0, doneJob(7, 9100, 60))
	f.Observe(1, doneJob(7, 5, 60))
	f.Observe(1, doneJob(7, 6, 60))
	// User 3: comfortable everywhere.
	f.Observe(0, doneJob(3, 10, 600))
	f.Observe(1, doneJob(3, 12, 600))

	cands := []*Candidate{idleCand(0, 64, 64), idleCand(1, 64, 64)}
	out := make([]float64, 2)

	starved := job.New(1, 0, 600, 16, 600)
	starved.UserID = 7
	f.Score(starved, cands, out)
	if !(out[1] > out[0]) {
		t.Fatalf("starved user must be repelled from cluster 0: scores %v", out)
	}

	fresh := job.New(2, 0, 600, 16, 600)
	fresh.UserID = 99
	f.Score(fresh, cands, out)
	if out[0] != out[1] {
		t.Fatalf("unknown user must keep the baseline tie: scores %v", out)
	}

	// Reset drops every share: the starved user ties again.
	f.Reset()
	f.Score(starved, cands, out)
	if out[0] != out[1] {
		t.Fatalf("post-reset scores must tie: %v", out)
	}
	if rep := f.Report(); rep.Users != 0 || rep.Jain != 1 {
		t.Fatalf("post-reset report not empty: %+v", rep)
	}
}

// TestFairnessYield: a privileged user (served far better than everyone
// else) must yield an immediately available cluster to the queue of a
// busier one when the baseline is a dead tie... here expressed directly:
// the start-now candidate's score drops below a queued twin's.
func TestFairnessYield(t *testing.T) {
	f := NewFairnessScorer(FairnessConfig{})
	// User 5 is comfortable; everyone else is starved.
	f.Observe(0, doneJob(5, 0, 600))
	f.Observe(0, doneJob(5, 1, 600))
	for i := 0; i < 4; i++ {
		f.Observe(0, doneJob(8, 9000, 60))
	}
	// One idle start-now cluster against one queued cluster. The gap
	// between them measures how strongly a job is pulled toward starting
	// now: the cold baseline (no state) sets the reference, the starved
	// user must be pulled harder (rescue), the privileged user softer
	// (yield).
	cands := []*Candidate{idleCand(0, 64, 64), {Index: 1, View: sim.ClusterView{FreeProcs: 0, TotalProcs: 64}, Pending: 1, PendingWork: 600}}
	gap := func(scorer *FairnessScorer, user int) float64 {
		j := job.New(1, 0, 600, 16, 600)
		j.UserID = user
		out := make([]float64, 2)
		scorer.Score(j, cands, out)
		return out[0] - out[1]
	}
	baseGap := gap(NewFairnessScorer(FairnessConfig{}), 42) // cold reference
	privGap := gap(f, 5)
	starvedGap := gap(f, 8)
	if !(privGap < baseGap) {
		t.Fatalf("privileged user must yield the start-now cluster: gap %.3f !< cold %.3f", privGap, baseGap)
	}
	if !(starvedGap > baseGap) {
		t.Fatalf("starved user must be rescued toward the start-now cluster: gap %.3f !> cold %.3f", starvedGap, baseGap)
	}
}

// TestPendingBsld pins the live-signal helper: wait-so-far plus requested
// time over max(requested, threshold), floored at 1, never reading the
// actual runtime.
func TestPendingBsld(t *testing.T) {
	j := job.New(1, 100, 99999, 4, 60) // huge actual runtime, small request
	if got := pendingBsld(j, 100); got != 1 {
		t.Errorf("fresh job pendingBsld = %g, want 1", got)
	}
	// wait 540 + req 60 over max(60, 10) = 10.
	if got := pendingBsld(j, 640); got != 10 {
		t.Errorf("pendingBsld = %g, want 10", got)
	}
	short := job.New(2, 0, 5, 1, 5)
	// threshold kicks in: (20 + 5) / 10.
	if got := pendingBsld(short, 20); got != 2.5 {
		t.Errorf("thresholded pendingBsld = %g, want 2.5", got)
	}
}

// TestFairnessPipelineStatefulDeterminism: two freshly built fairness
// fleets over the same stream must agree exactly — the stateful shares are
// fed deterministically — and the plugin must actually have observed the
// run's completions.
func TestFairnessPipelineStatefulDeterminism(t *testing.T) {
	stream := lublinStream(t, 250, 21)
	run := func() ([]int, *FairnessScorer) {
		fs := NewFairnessScorer(FairnessConfig{})
		p := NewPipeline("fair", []Filter{CapacityFilter{}}, []WeightedScorer{{Scorer: fs, Weight: 1}})
		f, err := New(heteroMembers(), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.EnableMigration(func() MigrationConfig {
			c := HysteresisMigration(500)
			c.MigrateCommitted = true
			return c
		}()); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(cloneStream(stream))
		if err != nil {
			t.Fatal(err)
		}
		return res.Assignments, fs
	}
	a1, fs1 := run()
	a2, fs2 := run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("job %d routed to %d then %d", i, a1[i], a2[i])
		}
	}
	m1, m2 := fs1.UserMeans(), fs2.UserMeans()
	if len(m1) == 0 {
		t.Fatal("fairness plugin observed no completions during the run")
	}
	if len(m1) != len(m2) {
		t.Fatalf("user means diverge: %d vs %d users", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("user mean %d diverges: %+v vs %+v", i, m1[i], m2[i])
		}
	}
	// UserState agrees with the means.
	um, n, fm := fs1.UserState(m1[0].UserID)
	if um != m1[0].Mean || n != m1[0].Jobs || !(fm > 0) {
		t.Fatalf("UserState(%d) = %g/%d/%g, want %g/%d/>0", m1[0].UserID, um, n, fm, m1[0].Mean, m1[0].Jobs)
	}
}

// TestStateScorersDiscovery: the pipeline reports its stateful scorers and
// a run resets them (reset-safety: a second Run starts from zero shares,
// pinned by identical assignments across back-to-back runs of one Fleet).
func TestStateScorersDiscovery(t *testing.T) {
	fs := NewFairnessScorer(FairnessConfig{})
	p := NewPipeline("fair", []Filter{CapacityFilter{}}, []WeightedScorer{{Scorer: fs, Weight: 1}})
	got := p.StateScorers()
	if len(got) != 1 || got[0] != StateScorer(fs) {
		t.Fatalf("StateScorers = %v, want the fairness plugin", got)
	}
	if n := len(LeastLoadedPipeline().StateScorers()); n != 0 {
		t.Fatalf("least-loaded pipeline reports %d stateful scorers, want 0", n)
	}

	f, err := New(heteroMembers(), p)
	if err != nil {
		t.Fatal(err)
	}
	stream := lublinStream(t, 200, 31)
	r1, err := f.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}
	// Second run on the SAME fleet: reset() must clear the shares, so the
	// assignments reproduce exactly.
	r2, err := f.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatalf("job %d routed to %d on run 1, %d on run 2: stateful shares leaked across runs",
				i, r1.Assignments[i], r2.Assignments[i])
		}
	}
}

// TestFairnessScoreFinite: scores stay finite for degenerate inputs
// (zero-proc views are impossible, but empty queues, unknown users and
// single candidates are not).
func TestFairnessScoreFinite(t *testing.T) {
	f := NewFairnessScorer(FairnessConfig{})
	f.Observe(0, doneJob(-1, 50, 10)) // unknown user bucket
	j := job.New(1, 0, 10, 1, 10)
	out := make([]float64, 1)
	f.Score(j, []*Candidate{idleCand(0, 8, 8)}, out)
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatalf("single-candidate score = %g", out[0])
	}
	// Unstarted jobs are ignored by Observe.
	f.Observe(0, job.New(9, 0, 10, 1, 10))
	if rep := f.Report(); rep.Users != 1 {
		t.Fatalf("unstarted job observed: %+v", rep)
	}
}

// TestFairnessDecayWindow: with a decay window the tracked shares answer
// "how is this user served NOW" — a long history of good service stops
// masking a recent throttling — while window 0 keeps the exact
// full-history arithmetic, and fully decayed users vanish from reports
// instead of contributing 0/0 means.
func TestFairnessDecayWindow(t *testing.T) {
	// 100 well-served completions (bsld 1), then 5 terrible ones (bsld 100).
	feed := func(f *FairnessScorer) {
		for i := 0; i < 100; i++ {
			f.Observe(0, doneJob(7, 0, 100))
		}
		for i := 0; i < 5; i++ {
			f.Observe(0, doneJob(7, 9900, 100))
		}
	}

	full := NewFairnessScorer(FairnessConfig{})
	feed(full)
	mean, jobs, fleetMean := full.UserState(7)
	wantFull := (100*1.0 + 5*100.0) / 105
	if math.Abs(mean-wantFull) > 1e-9 || jobs != 105 {
		t.Fatalf("full history mean/jobs = %g/%d, want %g/105", mean, jobs, wantFull)
	}
	if math.Abs(fleetMean-wantFull) > 1e-9 {
		t.Fatalf("full history fleet mean = %g, want %g", fleetMean, wantFull)
	}

	win := NewFairnessScorer(FairnessConfig{DecayWindow: 5})
	feed(win)
	wmean, wjobs, _ := win.UserState(7)
	// The 5-job window must be dominated by the recent bsld-100 run (the
	// full-history mean sits under 10, blind to the throttling).
	if wmean < 50 {
		t.Fatalf("windowed mean = %g, want recent bad service to dominate (> 50)", wmean)
	}
	if wantFull >= 10 {
		t.Fatalf("test premise broken: full mean %g not << windowed", wantFull)
	}
	// The reported job count is the RAW completion count: the decayed
	// weight shapes the mean, but "how many jobs has this user finished"
	// must not shrink with the window (it used to round the decayed
	// weight, under-reporting windowed-mode users).
	if wjobs != 105 {
		t.Fatalf("windowed jobs = %d, want the raw completion count 105", wjobs)
	}

	// Window 1 decays instantly: an old user's share vanishes instead of
	// reporting a 0/0 mean, and only the last-observed user remains.
	gone := NewFairnessScorer(FairnessConfig{DecayWindow: 1})
	gone.Observe(0, doneJob(3, 0, 100))
	for i := 0; i < 50; i++ {
		gone.Observe(0, doneJob(7, 0, 100))
	}
	means := gone.UserMeans()
	if len(means) != 1 || means[0].UserID != 7 {
		t.Fatalf("decayed-away users must vanish from UserMeans, got %+v", means)
	}
	// A decayed-away user keeps their factual completion count; only the
	// decayed mean vanishes.
	if m, j, _ := gone.UserState(3); m != 0 || j != 1 {
		t.Fatalf("decayed-away user state = %g/%d, want mean 0 and raw count 1", m, j)
	}

	// Reset clears the decay clock too.
	win.Reset()
	if m, j, fm := win.UserState(7); m != 0 || j != 0 || fm != 0 {
		t.Fatalf("state after Reset = %g/%d/%g, want zeros", m, j, fm)
	}
}

// TestFairnessExportImportRoundTrip: exporting a decaying tracker and
// importing it into a fresh scorer reproduces the live tracker exactly —
// and both copies evolve identically afterward, because ExportState syncs
// every user to the decay clock before serializing. This is the contract
// the serving daemon's checkpoint/restore path (DESIGN.md §13) rests on.
func TestFairnessExportImportRoundTrip(t *testing.T) {
	live := NewFairnessScorer(FairnessConfig{DecayWindow: 8})
	for i := 0; i < 12; i++ {
		live.Observe(i%3, doneJob(7, float64(100*i), 60))
		live.Observe((i+1)%3, doneJob(i%5, 10, 600))
	}

	st := live.ExportState()
	if len(st.Users) == 0 || st.Events == 0 {
		t.Fatalf("export is empty: %+v", st)
	}
	for i := 1; i < len(st.Users); i++ {
		if st.Users[i-1].UserID >= st.Users[i].UserID {
			t.Fatalf("export users unsorted: %+v", st.Users)
		}
	}

	restored := NewFairnessScorer(FairnessConfig{DecayWindow: 8})
	restored.ImportState(st)
	if got, want := restored.ExportState(), st; !reflect.DeepEqual(got, want) {
		t.Fatalf("re-export differs:\n got %+v\nwant %+v", got, want)
	}
	if got, want := restored.Report(), live.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored report differs: %+v vs %+v", got, want)
	}
	um, uj, fm := live.UserState(7)
	rm, rj, rf := restored.UserState(7)
	if um != rm || uj != rj || fm != rf {
		t.Fatalf("UserState(7) differs: live (%g,%d,%g) restored (%g,%d,%g)", um, uj, fm, rm, rj, rf)
	}

	// Post-import evolution: observing the same completions keeps the
	// trackers bit-identical — replaying a WAL after restore reproduces
	// the pre-crash state.
	for i := 0; i < 6; i++ {
		live.Observe(i%3, doneJob(3, 50, 120))
		restored.Observe(i%3, doneJob(3, 50, 120))
	}
	if got, want := restored.ExportState(), live.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-import evolution diverged:\n got %+v\nwant %+v", got, want)
	}

	// Import replaces state wholesale: a second import of the original
	// snapshot discards everything observed since.
	restored.ImportState(st)
	if got := restored.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatalf("re-import did not replace state:\n got %+v\nwant %+v", got, st)
	}
}
