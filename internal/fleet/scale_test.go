package fleet

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

// Tests of the event-heap stepping path (heap.go, parallel.go): the heap
// must be invisible in results — byte-identical to the pre-heap full-sweep
// reference for randomized fleets, with and without migration, for any
// worker count — while never stepping members that have no events.

// randomScaleMembers builds n members with randomized sizes, policies and
// backfill disciplines. Scheduler instances are fresh per member.
func randomScaleMembers(rng *rand.Rand, n int) []MemberConfig {
	sizes := []int{64, 128, 256}
	scheds := []func() sim.Scheduler{
		func() sim.Scheduler { return sched.FCFS() },
		func() sim.Scheduler { return sched.SJF() },
		func() sim.Scheduler { return sched.F1() },
	}
	members := make([]MemberConfig, n)
	for i := range members {
		members[i] = MemberConfig{
			Name: fmt.Sprintf("m%03d", i),
			Sim: sim.Config{
				Processors: sizes[rng.Intn(len(sizes))],
				Backfill:   rng.Intn(2) == 0,
				MaxObserve: 32,
			},
			Scheduler: scheds[rng.Intn(len(scheds))](),
		}
	}
	return members
}

// runVariant builds a fleet over members, applies cfg, and returns the
// marshaled result of running stream through it.
func runVariant(t *testing.T, members []MemberConfig, router func() Router,
	stream []*job.Job, cfg func(*Fleet)) []byte {
	t.Helper()
	f, err := New(members, router())
	if err != nil {
		t.Fatal(err)
	}
	if cfg != nil {
		cfg(f)
	}
	res, err := f.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}
	return marshalResult(t, res)
}

// TestHeapFullSweepParityProperty is the randomized anchor of the
// refactor: for fleets of 50–200 members with mixed policies, the
// heap-driven run (serial and parallel) must be byte-identical — every
// per-job field, every metric, every assignment and migration move — to
// the full-sweep reference path, with and without migration sweeps, and
// for stateless and stateful (fairness) routers.
func TestHeapFullSweepParityProperty(t *testing.T) {
	iters := 6
	if testing.Short() {
		iters = 2
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			seed := int64(1009 + 37*iter)
			rng := rand.New(rand.NewSource(seed))
			n := 50 + rng.Intn(151)
			members := randomScaleMembers(rng, n)
			preset := "Lublin-1"
			if rng.Intn(2) == 0 {
				preset = "Lublin-2"
			}
			tr := trace.Preset(preset, 512, seed)
			stream := tr.SampleWindow(rng, 300)

			routers := map[string]func() Router{
				"binpack":  func() Router { return BinpackPipeline() },
				"fairness": func() Router { return FairnessPipeline(FairnessConfig{}) },
			}
			mig := HysteresisMigration(stream[len(stream)-1].SubmitTime / 8)
			mig.MigrateCommitted = iter%2 == 0

			for name, router := range routers {
				migrate := func(f *Fleet) {
					if err := f.EnableMigration(mig); err != nil {
						t.Fatal(err)
					}
				}
				variants := map[string]func(*Fleet){
					"fullsweep":     func(f *Fleet) { f.SetFullSweep(true) },
					"heap":          nil,
					"heap-workers4": func(f *Fleet) { f.SetWorkers(4) },
					"mig-fullsweep": func(f *Fleet) { f.SetFullSweep(true); migrate(f) },
					"mig-heap":      migrate,
					"mig-workers4":  func(f *Fleet) { f.SetWorkers(4); migrate(f) },
				}
				ref := runVariant(t, members, router, stream, variants["fullsweep"])
				for _, variant := range []string{"heap", "heap-workers4"} {
					got := runVariant(t, members, router, stream, variants[variant])
					if !bytes.Equal(ref, got) {
						t.Fatalf("%s/%s diverges from full-sweep reference (n=%d seed=%d)",
							name, variant, n, seed)
					}
				}
				migRef := runVariant(t, members, router, stream, variants["mig-fullsweep"])
				for _, variant := range []string{"mig-heap", "mig-workers4"} {
					got := runVariant(t, members, router, stream, variants[variant])
					if !bytes.Equal(migRef, got) {
						t.Fatalf("%s/%s diverges from full-sweep reference (n=%d seed=%d)",
							name, variant, n, seed)
					}
				}
			}
		})
	}
}

// TestIdleMembersNotStepped pins the sublinearity claim behaviorally: in a
// fleet where capacity filtering routes every job onto the one member big
// enough to run it, the other members have no events and must never be
// syncTo'd — the step-counting hook records zero syncs for them on the
// heap path (and non-zero on the full-sweep reference, proving the hook
// observes what it claims to).
func TestIdleMembersNotStepped(t *testing.T) {
	members := make([]MemberConfig, 100)
	for i := range members {
		procs := 64
		if i == 0 {
			procs = 256
		}
		members[i] = MemberConfig{
			Name:      fmt.Sprintf("idle%03d", i),
			Sim:       sim.Config{Processors: procs, MaxObserve: 32},
			Scheduler: sched.SJF(),
		}
	}
	stream := lublinStream(t, 150, 23)
	for _, j := range stream {
		// Wider than every small member: CapacityFilter leaves member 0.
		if j.RequestedProcs <= 64 {
			j.RequestedProcs = 65
		}
		if j.RequestedProcs > 256 {
			j.RequestedProcs = 256
		}
	}

	f, err := New(members, BinpackPipeline())
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range res.Assignments {
		if k != 0 {
			t.Fatalf("job %d routed to member %d; binpack should stack member 0", i, k)
		}
	}
	if f.members[0].syncs == 0 {
		t.Fatal("member 0 received placements but recorded no syncs")
	}
	for i := 1; i < len(f.members); i++ {
		if n := f.members[i].syncs; n != 0 {
			t.Fatalf("idle member %d was stepped %d times; events never touched it", i, n)
		}
	}

	ref, err := New(members, BinpackPipeline())
	if err != nil {
		t.Fatal(err)
	}
	ref.SetFullSweep(true)
	if _, err := ref.Run(cloneStream(stream)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ref.members); i++ {
		if ref.members[i].syncs == 0 {
			t.Fatalf("full-sweep reference did not step member %d; the hook is broken", i)
		}
	}
}

// TestWorkerCountParity drives wake lists past the parallel threshold
// (widely spaced arrivals over a round-robin-filled fleet, so every busy
// member wakes at once) and checks the result is byte-identical across
// worker counts, including degenerate ones.
func TestWorkerCountParity(t *testing.T) {
	members := make([]MemberConfig, 64)
	for i := range members {
		members[i] = MemberConfig{
			Name:      fmt.Sprintf("w%02d", i),
			Sim:       sim.Config{Processors: 128, Backfill: true, MaxObserve: 32},
			Scheduler: sched.SJF(),
		}
	}
	rng := rand.New(rand.NewSource(41))
	tr := trace.Preset("Lublin-1", 512, 41)
	stream := tr.SampleWindow(rng, 256)
	// Stretch arrivals so completions pile up between placements: every
	// advance then wakes a wide slice of the fleet at once.
	for i, j := range stream {
		j.SubmitTime = float64(i) * 1800
		if j.RequestedProcs > 128 {
			j.RequestedProcs = 128
		}
	}

	var ref []byte
	for _, workers := range []int{0, 1, 2, 3, 8, 16} {
		w := workers
		got := runVariant(t, members, func() Router { return NewRoundRobin() }, stream,
			func(f *Fleet) { f.SetWorkers(w) })
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d diverges from workers=0", w)
		}
	}
}
