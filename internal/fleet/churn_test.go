package fleet

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/telemetry"
)

// Tests of cluster churn (churn.go): the lifecycle state machine, job
// conservation through withdraws and evictions, byte-parity of the
// churn-free path, heap/full-sweep equivalence under churn, candidate
// visibility of announcements, and the per-cluster state retirement of
// stateful scorers and the sampler.

// checkJobConservation asserts every stream job completed exactly once.
func checkJobConservation(t *testing.T, stream []*job.Job, res *Result) {
	t.Helper()
	if len(res.Fleet.Jobs) != len(stream) {
		t.Fatalf("conservation: %d jobs in, %d completed", len(stream), len(res.Fleet.Jobs))
	}
	seen := make(map[int]int, len(stream))
	for _, j := range stream {
		seen[j.ID]++
	}
	for _, j := range res.Fleet.Jobs {
		seen[j.ID]--
		if seen[j.ID] < 0 {
			t.Fatalf("conservation: job %d completed more than once", j.ID)
		}
	}
	for id, n := range seen {
		if n != 0 {
			t.Fatalf("conservation: job %d never completed", id)
		}
	}
}

// churnTestPlan is a three-event lifecycle against heteroMembers fleets:
// a join early, an announced failure of "mid", a graceful drain of
// "small" near the end of the stream's span.
func churnTestPlan(stream []*job.Job) ChurnPlan {
	span := stream[len(stream)-1].SubmitTime - stream[0].SubmitTime
	at := func(frac float64) float64 { return stream[0].SubmitTime + frac*span }
	return ChurnPlan{
		{Kind: ChurnJoin, Time: at(0.1), Member: MemberConfig{
			Name: "late", Sim: sim.Config{Processors: 128, MaxObserve: 32}, Scheduler: sched.SJF()}},
		{Kind: ChurnFail, Time: at(0.6), Name: "mid", Notice: 0.2 * span},
		{Kind: ChurnDrain, Time: at(0.9), Name: "small", Notice: 0.1 * span},
	}
}

// TestChurnDisabledByteParity pins the zero-cost default: a fleet that
// never enabled churn, and one that installed a plan and removed it again,
// produce byte-identical results — the churn-free code path is untouched.
func TestChurnDisabledByteParity(t *testing.T) {
	stream := lublinStream(t, 250, 17)
	ll := func() Router { return LeastLoadedPipeline() }
	ref := runVariant(t, heteroMembers(), ll, stream, nil)
	got := runVariant(t, heteroMembers(), ll, stream, func(f *Fleet) {
		if err := f.EnableChurn(churnTestPlan(stream)); err != nil {
			t.Fatal(err)
		}
		if err := f.EnableChurn(nil); err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(ref, got) {
		t.Fatal("enabling and removing a churn plan changed the churn-free run")
	}
}

// TestChurnLifecycle runs the full plan and checks the executed stats, the
// conservation invariant, and that the fleet is reusable: a second Run
// re-executes the plan from scratch to identical results.
func TestChurnLifecycle(t *testing.T) {
	stream := lublinStream(t, 300, 19)
	for _, rc := range []struct {
		name  string
		build func() Router
	}{
		{"least-loaded", func() Router { return LeastLoadedPipeline() }},
		{"churn-aware", func() Router { return ChurnAwarePipeline() }},
	} {
		t.Run(rc.name, func(t *testing.T) {
			f, err := New(heteroMembers(), rc.build())
			if err != nil {
				t.Fatal(err)
			}
			if err := f.EnableChurn(churnTestPlan(stream)); err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(cloneStream(stream))
			if err != nil {
				t.Fatal(err)
			}
			checkJobConservation(t, stream, res)
			if res.Churn.Joins != 1 || res.Churn.Fails != 1 || res.Churn.Drains != 1 {
				t.Fatalf("executed %d/%d/%d joins/fails/drains, want 1/1/1",
					res.Churn.Joins, res.Churn.Fails, res.Churn.Drains)
			}
			if res.Churn.Forced == 0 {
				t.Fatal("fail+drain forced no re-placements; the plan exercised nothing")
			}
			res2, err := f.Run(cloneStream(stream))
			if err != nil {
				t.Fatal(err)
			}
			if a, b := marshalResult(t, res), marshalResult(t, res2); !bytes.Equal(a, b) {
				t.Fatal("re-running the same churned fleet diverged")
			}
		})
	}
}

// TestChurnConservationProperty is the randomized churn anchor: random
// fleets under random plans — joins, graceful drains and failures with and
// without notice, never removing the one guaranteed-largest member and
// leaving at least two members serving — conserve every job.
func TestChurnConservationProperty(t *testing.T) {
	iters := 8
	if testing.Short() {
		iters = 3
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			seed := int64(4021 + 53*iter)
			rng := rand.New(rand.NewSource(seed))
			n := 4 + rng.Intn(6)
			members := randomScaleMembers(rng, n)
			// Member 0 is the anchor every job fits on; never churned out.
			members[0].Sim.Processors = 256
			stream := lublinStream(t, 200+rng.Intn(100), seed)
			span := stream[len(stream)-1].SubmitTime - stream[0].SubmitTime
			start := stream[0].SubmitTime

			var plan ChurnPlan
			if rng.Intn(2) == 0 {
				plan = append(plan, ChurnEvent{
					Kind: ChurnJoin, Time: start + rng.Float64()*span,
					Member: MemberConfig{
						Name:      "joined",
						Sim:       sim.Config{Processors: 128, MaxObserve: 32},
						Scheduler: sched.FCFS(),
					},
				})
			}
			removals := rng.Intn(n - 1) // leaves member 0 plus one more
			perm := rng.Perm(n - 1)
			for r := 0; r < removals; r++ {
				ev := ChurnEvent{
					Kind: ChurnDrain,
					Name: members[1+perm[r]].Name,
					Time: start + rng.Float64()*span,
				}
				if rng.Intn(2) == 0 {
					ev.Kind = ChurnFail
				}
				if rng.Intn(2) == 0 {
					ev.Notice = rng.Float64() * 0.2 * span
				}
				plan = append(plan, ev)
			}

			f, err := New(members, LeastLoadedPipeline())
			if err != nil {
				t.Fatal(err)
			}
			if err := f.EnableChurn(plan); err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(cloneStream(stream))
			if err != nil {
				t.Fatal(err)
			}
			checkJobConservation(t, stream, res)
			wantDrains, wantFails := 0, 0
			for _, ev := range plan {
				switch ev.Kind {
				case ChurnDrain:
					wantDrains++
				case ChurnFail:
					wantFails++
				}
			}
			if res.Churn.Drains != wantDrains || res.Churn.Fails != wantFails {
				t.Fatalf("executed %d/%d drains/fails, want %d/%d",
					res.Churn.Drains, res.Churn.Fails, wantDrains, wantFails)
			}
		})
	}
}

// TestHeapFullSweepParityWithChurn extends the heap/full-sweep byte-parity
// property to churned runs: membership changes ride the event machinery, so
// the heap path (serial and parallel) must keep producing results identical
// to the full-sweep reference, for stateless and stateful routers alike.
func TestHeapFullSweepParityWithChurn(t *testing.T) {
	iters := 4
	if testing.Short() {
		iters = 2
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			seed := int64(7001 + 41*iter)
			rng := rand.New(rand.NewSource(seed))
			n := 20 + rng.Intn(30)
			members := randomScaleMembers(rng, n)
			members[0].Sim.Processors = 256
			stream := lublinStream(t, 250, seed)
			span := stream[len(stream)-1].SubmitTime - stream[0].SubmitTime
			start := stream[0].SubmitTime
			plan := ChurnPlan{
				{Kind: ChurnJoin, Time: start + 0.15*span, Member: MemberConfig{
					Name: "joined", Sim: sim.Config{Processors: 128, MaxObserve: 32}, Scheduler: sched.SJF()}},
				{Kind: ChurnFail, Time: start + 0.5*span, Name: members[1].Name, Notice: 0.1 * span},
				{Kind: ChurnDrain, Time: start + 0.8*span, Name: members[2].Name, Notice: 0.05 * span},
			}
			routers := map[string]func() Router{
				"churn-aware": func() Router { return ChurnAwarePipeline() },
				"fairness":    func() Router { return FairnessPipeline(FairnessConfig{}) },
			}
			for name, router := range routers {
				churn := func(f *Fleet) {
					if err := f.EnableChurn(plan); err != nil {
						t.Fatal(err)
					}
				}
				ref := runVariant(t, members, router, stream, func(f *Fleet) {
					f.SetFullSweep(true)
					churn(f)
				})
				heap := runVariant(t, members, router, stream, churn)
				workers := runVariant(t, members, router, stream, func(f *Fleet) {
					f.SetWorkers(4)
					churn(f)
				})
				if !bytes.Equal(ref, heap) {
					t.Fatalf("%s: heap diverges from full-sweep under churn (n=%d seed=%d)", name, n, seed)
				}
				if !bytes.Equal(ref, workers) {
					t.Fatalf("%s: workers=4 diverges from full-sweep under churn (n=%d seed=%d)", name, n, seed)
				}
			}
		})
	}
}

// TestDrainThenReAddParity pins the between-runs lifecycle API: draining a
// member and adding an identically sized replacement schedules exactly like
// a fleet built with the replacement from the start — the drained member is
// invisible (zero capacity) and placement order is preserved.
func TestDrainThenReAddParity(t *testing.T) {
	stream := lublinStream(t, 250, 37)

	churned, err := New(heteroMembers(), LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if err := churned.Drain("small"); err != nil {
		t.Fatal(err)
	}
	replacement := MemberConfig{
		Name: "small2", Sim: sim.Config{Processors: 64, MaxObserve: 32}, Scheduler: sched.SJF()}
	if err := churned.AddMember(replacement); err != nil {
		t.Fatal(err)
	}
	churnedStream := cloneStream(stream)
	churnedRes, err := churned.Run(churnedStream)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := New([]MemberConfig{
		heteroMembers()[0], heteroMembers()[1], replacement}, LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	freshStream := cloneStream(stream)
	freshRes, err := fresh.Run(freshStream)
	if err != nil {
		t.Fatal(err)
	}

	for i := range stream {
		if a, b := churnedStream[i].StartTime, freshStream[i].StartTime; a != b {
			t.Fatalf("job %d: drained-then-readded fleet starts at %g, fresh fleet at %g", i, a, b)
		}
		an := churned.members[churnedRes.Assignments[i]].name
		bn := fresh.members[freshRes.Assignments[i]].name
		if an != bn {
			t.Fatalf("job %d: placed on %q vs %q", i, an, bn)
		}
	}
	for _, k := range []metrics.Kind{metrics.BoundedSlowdown, metrics.Utilization} {
		if a, b := metrics.Value(k, churnedRes.Fleet), metrics.Value(k, freshRes.Fleet); a != b {
			t.Fatalf("%v: %g vs %g", k, a, b)
		}
	}
	// The drained member served nothing.
	for _, c := range churnedRes.Clusters {
		if c.Name == "small" && c.Placements != 0 {
			t.Fatalf("drained member served %d placements", c.Placements)
		}
	}
}

// TestAddMemberDrainValidation covers the between-runs API error surface.
func TestAddMemberDrainValidation(t *testing.T) {
	f, err := New(heteroMembers(), NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	bad := []MemberConfig{
		{},
		{Name: "x"},
		{Name: "x", Scheduler: sched.FCFS()},
		{Name: "large", Sim: sim.Config{Processors: 64}, Scheduler: sched.FCFS()},
	}
	for i, mc := range bad {
		if err := f.AddMember(mc); err == nil {
			t.Fatalf("AddMember case %d: bad config accepted", i)
		}
	}
	if err := f.Drain("nope"); err == nil {
		t.Fatal("Drain of unknown member accepted")
	}
	if err := f.Drain("small"); err != nil {
		t.Fatal(err)
	}
	if err := f.Drain("small"); err == nil {
		t.Fatal("double Drain accepted")
	}
	if err := f.Drain("mid"); err != nil {
		t.Fatal(err)
	}
	if err := f.Drain("large"); err == nil {
		t.Fatal("draining the last serving member accepted")
	}
}

// TestChurnPlanValidation covers EnableChurn's structural checks.
func TestChurnPlanValidation(t *testing.T) {
	f, err := New(heteroMembers(), NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	join := MemberConfig{Name: "j", Sim: sim.Config{Processors: 64}, Scheduler: sched.FCFS()}
	bad := []ChurnPlan{
		{{Kind: ChurnJoin, Time: math.NaN(), Member: join}},
		{{Kind: ChurnJoin, Time: math.Inf(1), Member: join}},
		{{Kind: ChurnJoin, Time: 1}},
		{{Kind: ChurnJoin, Time: 1, Member: MemberConfig{Name: "j"}}},
		{{Kind: ChurnJoin, Time: 1, Member: MemberConfig{Name: "j", Scheduler: sched.FCFS()}}},
		{{Kind: ChurnDrain, Time: 1}},
		{{Kind: ChurnDrain, Time: 1, Name: "small", Notice: -5}},
		{{Kind: ChurnDrain, Time: 1, Name: "small", Notice: math.NaN()}},
		{{Kind: ChurnFail, Time: 1}},
		{{Kind: ChurnFail, Time: 1, Name: "small", Notice: -1}},
		{{Kind: ChurnKind(99), Time: 1}},
	}
	for i, plan := range bad {
		if err := f.EnableChurn(plan); err == nil {
			t.Fatalf("plan %d: invalid plan accepted", i)
		}
	}
	// A run-time failure, not a validation one: draining an absent member.
	if err := f.EnableChurn(ChurnPlan{{Kind: ChurnDrain, Time: 1, Name: "ghost"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(cloneStream(lublinStream(t, 50, 5))); err == nil {
		t.Fatal("run with a plan targeting an absent member succeeded")
	}
}

// probeRouter wraps a pipeline and snapshots the announcement fields of
// every candidate at each placement instant.
type probeRouter struct {
	inner Router
	snaps []probeSnap
}

type probeSnap struct {
	now   float64
	cands []Candidate
}

func (p *probeRouter) Name() string { return p.inner.Name() }

func (p *probeRouter) Place(j *job.Job, cands []*Candidate) int {
	snap := probeSnap{now: cands[0].Now}
	for _, c := range cands {
		snap.cands = append(snap.cands, Candidate{
			Name: c.Name, View: c.View, Draining: c.Draining,
			DrainTime: c.DrainTime, Evicting: c.Evicting,
		})
	}
	p.snaps = append(p.snaps, snap)
	return p.inner.Place(j, cands)
}

// TestAnnouncementCandidateVisibility drives announced failures and drains
// through a probing router and asserts what plugins get to see: nothing
// before the announcement; Draining with the right severity flag and the
// retirement instant as DrainTime inside the window; zero capacity after.
func TestAnnouncementCandidateVisibility(t *testing.T) {
	for _, tc := range []struct {
		kind     ChurnKind
		evicting bool
	}{
		{ChurnFail, true},
		{ChurnDrain, false},
	} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			const fireAt, notice = 10000.0, 4000.0
			members := []MemberConfig{
				{Name: "keep", Sim: sim.Config{Processors: 128, MaxObserve: 32}, Scheduler: sched.FCFS()},
				{Name: "doomed", Sim: sim.Config{Processors: 128, MaxObserve: 32}, Scheduler: sched.FCFS()},
			}
			var stream []*job.Job
			for i := 0; i < 40; i++ {
				stream = append(stream, &job.Job{
					ID: i + 1, SubmitTime: float64(i) * 400,
					RequestedProcs: 8, RequestedTime: 600, RunTime: 300,
					WaitTime: -1, RequestedMemory: -1, Status: 1,
				})
			}
			probe := &probeRouter{inner: ChurnAwarePipeline()}
			f, err := New(members, probe)
			if err != nil {
				t.Fatal(err)
			}
			plan := ChurnPlan{{Kind: tc.kind, Time: fireAt, Name: "doomed", Notice: notice}}
			if err := f.EnableChurn(plan); err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(cloneStream(stream))
			if err != nil {
				t.Fatal(err)
			}
			checkJobConservation(t, stream, res)
			for _, snap := range probe.snaps {
				var doomed *Candidate
				for i := range snap.cands {
					if snap.cands[i].Name == "doomed" {
						doomed = &snap.cands[i]
					}
				}
				if doomed == nil {
					t.Fatal("doomed candidate missing from a placement")
				}
				switch {
				case snap.now < fireAt-notice:
					if doomed.Draining || doomed.DrainTime != 0 || doomed.Evicting {
						t.Fatalf("t=%g: announcement visible before its instant: %+v", snap.now, doomed)
					}
				case snap.now < fireAt:
					if !doomed.Draining || doomed.DrainTime != fireAt || doomed.Evicting != tc.evicting {
						t.Fatalf("t=%g: window state wrong: draining=%v drainTime=%g evicting=%v",
							snap.now, doomed.Draining, doomed.DrainTime, doomed.Evicting)
					}
				default:
					if doomed.View.TotalProcs != 0 {
						t.Fatalf("t=%g: retired member still advertises %d procs",
							snap.now, doomed.View.TotalProcs)
					}
				}
			}
		})
	}
}

// TestSafeOnDrainer pins the deadline gate of AvoidDraining.
func TestSafeOnDrainer(t *testing.T) {
	base := Candidate{
		View: sim.ClusterView{TotalProcs: 128, FreeProcs: 64},
		Now:  100, DrainTime: 1000, Draining: true, Evicting: true,
	}
	j := &job.Job{RequestedProcs: 32, RequestedTime: 500}
	cases := []struct {
		name string
		mut  func(*Candidate, *job.Job)
		want bool
	}{
		{"fits", func(*Candidate, *job.Job) {}, true},
		{"too wide", func(c *Candidate, j *job.Job) { j.RequestedProcs = 65 }, false},
		{"queue not empty", func(c *Candidate, j *job.Job) { c.Pending = 1 }, false},
		{"misses deadline", func(c *Candidate, j *job.Job) { j.RequestedTime = 901 }, false},
		{"exactly at deadline", func(c *Candidate, j *job.Job) { j.RequestedTime = 900 }, true},
		{"no deadline announced", func(c *Candidate, j *job.Job) { c.DrainTime = 0 }, false},
	}
	for _, tc := range cases {
		c, jj := base, *j
		tc.mut(&c, &jj)
		if got := safeOnDrainer(&jj, &c); got != tc.want {
			t.Errorf("%s: safeOnDrainer = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestAvoidDrainingScores pins the severity split: graceful drains are
// never penalized, eviction warnings are penalized exactly when unsafe.
func TestAvoidDrainingScores(t *testing.T) {
	healthy := &Candidate{View: sim.ClusterView{TotalProcs: 128, FreeProcs: 128}, Now: 100}
	graceful := &Candidate{View: sim.ClusterView{TotalProcs: 128, FreeProcs: 128},
		Now: 100, Draining: true, DrainTime: 1000}
	evictingSafe := &Candidate{View: sim.ClusterView{TotalProcs: 128, FreeProcs: 128},
		Now: 100, Draining: true, Evicting: true, DrainTime: 1000}
	evictingUnsafe := &Candidate{View: sim.ClusterView{TotalProcs: 128, FreeProcs: 8},
		Now: 100, Draining: true, Evicting: true, DrainTime: 1000}
	j := &job.Job{RequestedProcs: 32, RequestedTime: 500}
	cands := []*Candidate{healthy, graceful, evictingSafe, evictingUnsafe}
	out := make([]float64, len(cands))
	AvoidDraining{}.Score(j, cands, out)
	want := []float64{0, 0, 0, -1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("candidate %d: score %g, want %g", i, out[i], want[i])
		}
	}
}

// TestFairnessScorerRetireCluster is the regression for stale per-cluster
// shares: retiring a cluster must drop every user's share on it — so the
// repulsion term cannot keep penalizing (or a reused index inherit) history
// from capacity that no longer exists — while the fleet-wide service record
// stays.
func TestFairnessScorerRetireCluster(t *testing.T) {
	s := NewFairnessScorer(FairnessConfig{})
	done := []*job.Job{
		{ID: 1, UserID: 7, SubmitTime: 0, RequestedTime: 100, RunTime: 100, StartTime: 50},
		{ID: 2, UserID: 7, SubmitTime: 0, RequestedTime: 100, RunTime: 100, StartTime: 500},
		{ID: 3, UserID: 9, SubmitTime: 0, RequestedTime: 100, RunTime: 100, StartTime: 90},
	}
	done[0].EndTime = done[0].StartTime + done[0].RunTime
	done[1].EndTime = done[1].StartTime + done[1].RunTime
	done[2].EndTime = done[2].StartTime + done[2].RunTime
	s.Observe(0, done[0])
	s.Observe(1, done[1])
	s.Observe(1, done[2])

	s.RetireCluster(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for uid, u := range s.users {
		if _, ok := u.clSum[1]; ok {
			t.Fatalf("user %d keeps a share sum on retired cluster 1", uid)
		}
		if _, ok := u.clN[1]; ok {
			t.Fatalf("user %d keeps a share count on retired cluster 1", uid)
		}
	}
	if u := s.users[7]; u == nil || u.clN[0] != 1 {
		t.Fatal("user 7 lost its share on the surviving cluster 0")
	}
	if s.gN == 0 {
		t.Fatal("fleet-wide service record was dropped by RetireCluster")
	}
}

// TestSamplerChurnSeries is the regression for stale sampler state: a
// retired member's per-cluster series must stop at the retirement instant
// (not decay toward zero over the rest of the run), a joined member's
// series must exist from the join on, and sampling must stay invisible to
// scheduling under churn.
func TestSamplerChurnSeries(t *testing.T) {
	stream := lublinStream(t, 300, 43)
	plan := churnTestPlan(stream)
	build := func() *Fleet {
		f, err := New(heteroMembers(), LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.EnableChurn(plan); err != nil {
			t.Fatal(err)
		}
		return f
	}

	base := build()
	baseRes, err := base.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	sampled := build()
	if err := sampled.EnableSampling(SamplingConfig{Interval: 500, Set: set}); err != nil {
		t.Fatal(err)
	}
	sampledRes, err := sampled.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := marshalResult(t, baseRes), marshalResult(t, sampledRes); !bytes.Equal(a, b) {
		t.Fatal("sampling changed a churned run")
	}

	failAt := plan[1].Time
	if sr := set.Get("cluster.mid.util"); sr == nil || len(sr.Points) == 0 {
		t.Fatal("failed member has no series before its failure")
	} else if last := sr.Last().T; last > failAt {
		t.Fatalf("failed member's series continues to %g after its failure at %g", last, failAt)
	}
	joinAt := plan[0].Time
	if sr := set.Get("cluster.late.util"); sr == nil || len(sr.Points) == 0 {
		t.Fatal("joined member has no series")
	} else if first := sr.Points[0].T; first < joinAt {
		t.Fatalf("joined member sampled at %g before its join at %g", first, joinAt)
	}
	if got := set.Get("fleet.completed").Last().V; got != float64(len(stream)) {
		t.Fatalf("final completed = %g, want %d", got, len(stream))
	}
}
