package fleet

import (
	"math/rand"
	"testing"

	"rlsched/internal/trace"
)

// TestConcatStreamSweep runs workload-shift streams (the experiment's
// construction) across many seeds through a fleet — the regression
// surface for the job-ID collision panic.
func TestConcatStreamSweep(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tr1 := trace.Preset("Lublin-1", 400, seed)
		tr2 := trace.Preset("Lublin-2", 400, seed)
		rng := rand.New(rand.NewSource(seed))
		st := trace.Concat("shift",
			&trace.Trace{Name: "a", Processors: 256, Jobs: tr1.SampleWindow(rng, 64)},
			&trace.Trace{Name: "b", Processors: 256, Jobs: tr2.SampleWindow(rng, 64)})
		f, err := New(heteroMembers(), LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(st.Jobs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
