package fleet

import (
	"fmt"
	"math"
	"sort"

	"rlsched/internal/metrics"
	"rlsched/internal/telemetry"
)

// Continuous fleet health sampling (DESIGN.md §11): with sampling enabled,
// Run interleaves periodic read-only snapshots of the fleet with arrivals
// and migration sweeps, on the same event-heap stepping the placements
// ride. A sample tick advances the members with events due to the sample
// instant (advanceMembers — exactly what the next arrival or sweep would
// have done anyway) and then only *reads*: per-cluster utilization, queue
// depth, pending/running work, and fleet-wide bounded-slowdown-so-far,
// migration rate and the fairness Jain index go into telemetry series.
// Because advancing a member to an intermediate instant is observationally
// a no-op (the monotone pump-fixpoint argument of heap.go), a sampled run
// produces byte-identical placements and metrics to an unsampled one —
// pinned by the sampling parity test.

// SamplingConfig parameterizes fleet health sampling.
type SamplingConfig struct {
	// Interval is the global-clock period between samples, in simulation
	// seconds. Required (> 0).
	Interval float64
	// Set receives the sampled series. Required. Each Run resets it, so
	// an exported artifact covers exactly one run.
	Set *telemetry.Set
}

// sampler is the run-scoped sampling state: the tick schedule, the
// incremental completion cursors (independent of the stateful-scorer
// cursors in member.doneCursor) and the running bsld / per-user
// aggregates they feed.
type sampler struct {
	cfg  SamplingConfig
	next float64
	// start is the run's first arrival — utilization-so-far is measured
	// over [start, ts], the same horizon convention as Run's final pass.
	start float64
	// cursors[i] marks how much of member i's completion log this
	// sampler has folded into the aggregates below.
	cursors []int
	// bsldSum/bsldN accumulate bounded slowdown over every completion so
	// far; userIDs/userSums/userCounts the per-user split behind the Jain
	// index — parallel arrays kept sorted by user ID incrementally, so a
	// sample tick reads them with a flat walk instead of sorting (the
	// per-tick cost is what the sampled fleet benchmark bounds).
	bsldSum    float64
	bsldN      int
	userIDs    []int
	userSums   []float64
	userCounts []int
	// lastMoves is the migration-move total at the previous sample (the
	// per-interval migration rate is the delta).
	lastMoves int
	users     []metrics.UserMean // reused Jain scratch
	// Series handles are resolved once per run — a sample tick must not
	// pay name-building or map lookups (the <3% overhead bound of the
	// sampled fleet benchmark).
	perMember []memberSeries
	fleet     fleetSeries
	// retired[i] stops member i's per-cluster series: set at construction
	// for members that start the run retired (Fleet.Drain) and by retire()
	// when churn removes a member mid-run. The member still contributes to
	// the fleet-wide sums while its running jobs finish — physical truth —
	// but its trajectory ends at the retirement instant.
	retired []bool
}

// memberSeries holds one member's per-cluster trajectory handles.
type memberSeries struct {
	util, depth, pend, run *telemetry.Series
}

// fleetSeries holds the fleet-wide trajectory handles.
type fleetSeries struct {
	depth, pend, run, bsld, completed, jain, migrations *telemetry.Series
}

// EnableSampling turns on periodic health sampling for subsequent Runs.
// Sampling is strictly passive: results are byte-identical with and
// without it (pinned by the sampling parity test), and a disabled fleet
// pays only a nil check per arrival.
func (f *Fleet) EnableSampling(cfg SamplingConfig) error {
	// Negated comparison so a NaN interval fails loudly instead of
	// silently never sampling.
	if !(cfg.Interval > 0) {
		return fmt.Errorf("fleet: sampling interval must be positive, got %g", cfg.Interval)
	}
	if cfg.Set == nil {
		return fmt.Errorf("fleet: sampling needs a telemetry.Set")
	}
	f.samCfg = &cfg
	return nil
}

// newSampler builds the run-scoped sampler: the Set is reset, the first
// tick lands one interval after the first arrival.
func (f *Fleet) newSampler(firstArrival float64) *sampler {
	s := &sampler{
		cfg:     *f.samCfg,
		next:    firstArrival + f.samCfg.Interval,
		start:   firstArrival,
		cursors: make([]int, len(f.members)),
	}
	s.cfg.Set.Reset()
	set := s.cfg.Set
	s.perMember = make([]memberSeries, len(f.members))
	s.retired = make([]bool, len(f.members))
	for i, m := range f.members {
		if m.state == stateRetired {
			// Permanently drained before the run: no series at all.
			s.retired[i] = true
			continue
		}
		pre := "cluster." + m.name + "."
		s.perMember[i] = memberSeries{
			util:  set.Series(pre + "util"),
			depth: set.Series(pre + "queue_depth"),
			pend:  set.Series(pre + "pending_work"),
			run:   set.Series(pre + "running_work"),
		}
	}
	s.fleet = fleetSeries{
		depth:      set.Series("fleet.queue_depth"),
		pend:       set.Series("fleet.pending_work"),
		run:        set.Series("fleet.running_work"),
		bsld:       set.Series("fleet.bsld_so_far"),
		completed:  set.Series("fleet.completed"),
		jain:       set.Series("fleet.fairness_jain"),
		migrations: set.Series("fleet.migrations"),
	}
	return s
}

// addMember grows the sampler's per-member state for a mid-run join
// (churn.go): fresh series handles, a zero completion cursor.
func (s *sampler) addMember(name string) {
	set := s.cfg.Set
	pre := "cluster." + name + "."
	s.perMember = append(s.perMember, memberSeries{
		util:  set.Series(pre + "util"),
		depth: set.Series(pre + "queue_depth"),
		pend:  set.Series(pre + "pending_work"),
		run:   set.Series(pre + "running_work"),
	})
	s.cursors = append(s.cursors, 0)
	s.retired = append(s.retired, false)
}

// retire stops member i's per-cluster series from the current instant on
// (its completion cursor keeps absorbing — a drained member's running jobs
// still finish there and their bounded slowdowns count).
func (s *sampler) retire(i int) { s.retired[i] = true }

// absorbCompletions folds every completion since the previous sample into
// the running bsld and per-user aggregates, members in index order.
func (s *sampler) absorbCompletions(f *Fleet) {
	for i, m := range f.members {
		log := m.sim.Completions()
		for _, j := range log[s.cursors[i]:] {
			v := j.BoundedSlowdown(metrics.BsldThreshold)
			s.bsldSum += v
			s.bsldN++
			u := j.UserID
			if u < 0 {
				u = -1
			}
			k := sort.SearchInts(s.userIDs, u)
			if k == len(s.userIDs) || s.userIDs[k] != u {
				s.userIDs = append(s.userIDs, 0)
				copy(s.userIDs[k+1:], s.userIDs[k:])
				s.userIDs[k] = u
				s.userSums = append(s.userSums, 0)
				copy(s.userSums[k+1:], s.userSums[k:])
				s.userSums[k] = 0
				s.userCounts = append(s.userCounts, 0)
				copy(s.userCounts[k+1:], s.userCounts[k:])
				s.userCounts[k] = 0
			}
			s.userSums[k] += v
			s.userCounts[k]++
		}
		s.cursors[i] = len(log)
	}
}

// jain summarizes the per-user bsld means collected so far (the same
// aggregation metrics.PerUser performs over a finished run — the arrays
// are already user-ID sorted, so this is one linear pass).
func (s *sampler) jain() metrics.FairnessReport {
	users := s.users[:0]
	for k, u := range s.userIDs {
		users = append(users, metrics.UserMean{
			UserID: u, Jobs: s.userCounts[k], Mean: s.userSums[k] / float64(s.userCounts[k]),
		})
	}
	s.users = users
	return metrics.FairnessOf(users)
}

// sample captures one fleet snapshot at global time ts. Members with
// events due have already been advanced (advanceMembers); the remaining
// members get a pure clock move so the busy-time integral behind
// utilization-so-far covers [start, ts] exactly — AdvanceClock to an
// instant before a member's next event fires nothing and changes no
// scheduler-visible state.
func (s *sampler) sample(f *Fleet, ts float64, mig *migrator) {
	s.absorbCompletions(f)
	var pendSum, runSum float64
	var depthSum int
	for i, m := range f.members {
		m.sim.AdvanceClock(ts)
		depth := m.sim.PendingCount()
		pend := m.sim.PendingWork()
		run := m.sim.RunningWorkAt(ts)
		depthSum += depth
		pendSum += pend
		runSum += run
		if s.retired[i] {
			// The member's trajectory ended at retirement; its remaining
			// running work still counts in the fleet sums above.
			continue
		}
		sr := &s.perMember[i]
		sr.util.Add(ts, m.sim.UtilizationOver(s.start, ts))
		sr.depth.Add(ts, float64(depth))
		sr.pend.Add(ts, pend)
		sr.run.Add(ts, run)
	}
	s.fleet.depth.Add(ts, float64(depthSum))
	s.fleet.pend.Add(ts, pendSum)
	s.fleet.run.Add(ts, runSum)
	bsld := 0.0
	if s.bsldN > 0 {
		bsld = s.bsldSum / float64(s.bsldN)
	}
	s.fleet.bsld.Add(ts, bsld)
	s.fleet.completed.Add(ts, float64(s.bsldN))
	rep := s.jain()
	s.fleet.jain.Add(ts, rep.Jain)
	moves := 0
	if mig != nil {
		moves = mig.moves
	}
	s.fleet.migrations.Add(ts, float64(moves-s.lastMoves))
	s.lastMoves = moves
}

// hooksUntil fires, in global-time order, every churn action, migration
// sweep and sample tick due at or before t. At equal instants churn fires
// first (sweeps and samples then see the post-churn fleet), then the sweep
// (samples see post-sweep state) — so with churn disabled the sweep
// schedule of the churn-free path is preserved exactly.
func (f *Fleet) hooksUntil(mig *migrator, sam *sampler, ch *churner, t float64) error {
	for {
		churnDue := ch.due(t)
		sweepDue := mig != nil && mig.nextSweep <= t
		sampleDue := sam != nil && sam.next <= t
		switch {
		case churnDue && (!sweepDue || ch.nextT() <= mig.nextSweep) &&
			(!sampleDue || ch.nextT() <= sam.next):
			if err := f.churnStep(ch, mig, sam); err != nil {
				return err
			}
		case sweepDue && (!sampleDue || mig.nextSweep <= sam.next):
			if err := f.advanceMembers(mig.nextSweep); err != nil {
				return err
			}
			if err := f.sweep(mig, mig.nextSweep); err != nil {
				return err
			}
			mig.nextSweep += mig.cfg.Interval
		case sampleDue:
			if err := f.advanceMembers(sam.next); err != nil {
				return err
			}
			sam.sample(f, sam.next, mig)
			sam.next += sam.cfg.Interval
		default:
			return nil
		}
	}
}

// drainHooked runs every member to completion after the last arrival
// while keeping the fleet time-synchronized, so sample ticks, migration
// sweeps and churn actions continue while backlogs drain. It is
// drainMigrating generalized over all timed hooks; the returned time is
// the last internal event (or churn action) processed — the fleet horizon
// candidate.
func (f *Fleet) drainHooked(mig *migrator, sam *sampler, ch *churner) (float64, error) {
	end := 0.0
	for {
		next, any := f.nextFleetEvent()
		if !any {
			if ch.due(math.Inf(1)) {
				// No member events left, but churn actions remain: fire
				// the next one (a failure's forced re-placements may put
				// fresh events on the heap) and keep draining.
				t := ch.nextT()
				if err := f.hooksUntil(mig, sam, ch, t); err != nil {
					return 0, err
				}
				if t > end {
					end = t
				}
				continue
			}
			for _, m := range f.members {
				if err := m.pump(); err != nil {
					return 0, err
				}
				if m.committed != nil {
					return 0, fmt.Errorf("fleet: %s: job %d (%d procs) can never start",
						m.name, m.committed.ID, m.committed.RequestedProcs)
				}
			}
			return end, nil
		}
		if err := f.hooksUntil(mig, sam, ch, next); err != nil {
			return 0, err
		}
		// A sweep (or churn action) may have retired the event (the job
		// moved); re-peek rather than advancing to a stale instant beyond
		// a fresh event.
		next, any = f.nextFleetEvent()
		if !any {
			continue
		}
		if err := f.advanceMembers(next); err != nil {
			return 0, err
		}
		if next > end {
			end = next
		}
	}
}

// finalSample closes every trajectory with one reading at the run
// horizon, after the final clock pass aligned all members at end.
func (s *sampler) finalSample(f *Fleet, end float64, mig *migrator) {
	if sr := s.fleet.bsld; len(sr.Points) > 0 && sr.Last().T >= end {
		return
	}
	s.sample(f, end, mig)
}
