package fleet

import (
	"sync"

	"rlsched/internal/job"
)

// Placement constraint plugins (DESIGN.md §12), mirroring the plugin split
// of multi-cluster placement schedulers (OCM's placement plugins): hard
// constraints are Filters — a taint/toleration gate and a job→cluster-class
// affinity gate — and soft preferences are Scorers — spreading load across
// failure domains and keeping a job's prior assignment steady across
// re-evaluations. Member attributes (MemberAttrs, static per member) meet
// per-job requirements (JobConstraints, derived from the job by a
// ConstraintSource) inside the normal filter/score pipeline, so constrained
// placement composes with every other plugin and rides the recorded
// decision traces unchanged — the fleet-constraints experiment re-verifies
// every winner against the constraint tables from those traces alone.

// Taint marks a member as repelling jobs that do not explicitly tolerate
// it (e.g. {"dedicated", "gpu"} on an accelerator partition).
type Taint struct {
	// Key names the taint; Value qualifies it.
	Key, Value string
}

// Toleration is a job-side pass for a matching taint.
type Toleration struct {
	// Key must equal the taint's key. An empty Value tolerates every value
	// of that key; otherwise the values must match exactly.
	Key, Value string
}

// Tolerates reports whether this toleration covers the taint.
func (t Toleration) Tolerates(taint Taint) bool {
	return t.Key == taint.Key && (t.Value == "" || t.Value == taint.Value)
}

// MemberAttrs are a member's static placement attributes, declared in
// MemberConfig and surfaced on every Candidate for constraint plugins.
type MemberAttrs struct {
	// Class is the member's cluster class (e.g. "gpu", "cpu"); jobs pin to
	// a class via JobConstraints.RequiredClass.
	Class string
	// FailureDomain groups members that fail together (rack, zone); the
	// spread scorer balances load across domains. Members with an empty
	// domain each count as their own.
	FailureDomain string
	// Taints repel jobs without a matching toleration (TaintFilter).
	Taints []Taint
}

// JobConstraints are one job's placement requirements.
type JobConstraints struct {
	// Tolerations let the job land on members whose taints they cover.
	Tolerations []Toleration
	// RequiredClass pins the job to members of that class ("" = any).
	RequiredClass string
}

// ConstraintSource derives a job's constraints from its scheduler-visible
// attributes (typically QueueID or UserID — SWF traces carry no richer
// tags). It is called per filter evaluation and must be deterministic and
// cheap.
type ConstraintSource func(*job.Job) JobConstraints

// TaintFilter is the hard taint/toleration gate: a candidate is feasible
// only when every one of its taints is covered by some toleration of the
// job. Untainted members accept everything; a nil Source tolerates
// nothing (tainted members become unreachable).
type TaintFilter struct {
	// Source derives the job's tolerations.
	Source ConstraintSource
}

// Name implements Filter.
func (TaintFilter) Name() string { return "taint" }

// Feasible implements Filter.
func (f TaintFilter) Feasible(j *job.Job, c *Candidate) bool {
	if len(c.Attrs.Taints) == 0 {
		return true
	}
	var tols []Toleration
	if f.Source != nil {
		tols = f.Source(j).Tolerations
	}
	for _, taint := range c.Attrs.Taints {
		covered := false
		for _, t := range tols {
			if t.Tolerates(taint) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// ClockFree implements ClockFree: taints are static.
func (TaintFilter) ClockFree() bool { return true }

// AffinityFilter is the hard job→cluster-class gate: a job with a
// RequiredClass is feasible only on members of that class. Jobs without a
// requirement (or a nil Source) go anywhere.
type AffinityFilter struct {
	// Source derives the job's required class.
	Source ConstraintSource
}

// Name implements Filter.
func (AffinityFilter) Name() string { return "affinity" }

// Feasible implements Filter.
func (f AffinityFilter) Feasible(j *job.Job, c *Candidate) bool {
	if f.Source == nil {
		return true
	}
	req := f.Source(j).RequiredClass
	return req == "" || req == c.Attrs.Class
}

// ClockFree implements ClockFree: classes are static.
func (AffinityFilter) ClockFree() bool { return true }

// spreadDomain is the failure-domain key of a candidate: its declared
// domain, or its own name when unlabeled (every member its own domain).
func spreadDomain(c *Candidate) string {
	if d := c.Attrs.FailureDomain; d != "" {
		return d
	}
	return c.Name
}

// SpreadScorer prefers the least-loaded failure domain: every candidate is
// scored by the negated committed work (running + pending) summed over its
// whole domain, so load — and with it blast radius — balances across
// domains rather than across individual members.
type SpreadScorer struct{}

// Name implements Scorer.
func (SpreadScorer) Name() string { return "spread" }

// Score implements Scorer.
func (SpreadScorer) Score(_ *job.Job, cands []*Candidate, out []float64) {
	domLoad := make(map[string]float64, len(cands))
	for _, c := range cands {
		domLoad[spreadDomain(c)] += c.RunningWork + c.PendingWork
	}
	for i, c := range cands {
		out[i] = -domLoad[spreadDomain(c)]
	}
}

// ClockFree implements ClockFree: domain load is clock-independent.
func (SpreadScorer) ClockFree() bool { return true }

// SteadyScorer prefers a job's prior assignment: the cluster the job was
// last routed to scores 1, everyone else 0, so a re-evaluation of an
// unchanged decision (a migration probe, a churn re-place) keeps the job
// where it is unless something else genuinely outweighs staying. It is a
// StateScorer (per-run state, fed by the fleet) and an AssignObserver
// (told every routing decision); completed jobs drop out of the map, so
// it stays bounded by the in-flight job count.
type SteadyScorer struct {
	mu   sync.Mutex
	last map[int]int // job ID → member index of the latest assignment
}

// NewSteadyScorer returns an empty steady-assignment scorer.
func NewSteadyScorer() *SteadyScorer { return &SteadyScorer{last: map[int]int{}} }

// Name implements Scorer.
func (s *SteadyScorer) Name() string { return "steady" }

// Score implements Scorer.
func (s *SteadyScorer) Score(j *job.Job, cands []*Candidate, out []float64) {
	s.mu.Lock()
	cur, ok := s.last[j.ID]
	s.mu.Unlock()
	for i, c := range cands {
		if ok && c.Index == cur {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}

// Reset implements StateScorer: a new run starts with no history.
func (s *SteadyScorer) Reset() {
	s.mu.Lock()
	s.last = map[int]int{}
	s.mu.Unlock()
}

// Observe implements StateScorer: a completed job needs no steadiness.
func (s *SteadyScorer) Observe(_ int, j *job.Job) {
	s.mu.Lock()
	delete(s.last, j.ID)
	s.mu.Unlock()
}

// ObserveAssign implements AssignObserver: remember the latest assignment.
func (s *SteadyScorer) ObserveAssign(cluster int, j *job.Job) {
	s.mu.Lock()
	s.last[j.ID] = cluster
	s.mu.Unlock()
}

// RetireCluster implements ClusterRetirer: assignments pointing at a
// retired member are dropped — there is nothing left to be steady toward.
func (s *SteadyScorer) RetireCluster(cluster int) {
	s.mu.Lock()
	for id, c := range s.last {
		if c == cluster {
			delete(s.last, id)
		}
	}
	s.mu.Unlock()
}

// ClockFree implements ClockFree: steadiness is clock-independent.
func (s *SteadyScorer) ClockFree() bool { return true }

// AssignObserver is the optional capability of scorers that track routing
// decisions (SteadyScorer): the fleet calls ObserveAssign after every
// successful placement — arrivals, migration moves, and churn re-places.
type AssignObserver interface {
	// ObserveAssign records that j was routed to member index cluster.
	ObserveAssign(cluster int, j *job.Job)
}

// AssignObservers returns the pipeline's assignment-observing scorers, in
// scorer order. The Fleet feeds them every routing decision.
func (p *Pipeline) AssignObservers() []AssignObserver {
	var out []AssignObserver
	for _, ws := range p.Scorers {
		if ao, ok := ws.Scorer.(AssignObserver); ok {
			out = append(out, ao)
		}
	}
	return out
}

// observeAssign feeds one routing decision to the router's assignment
// observers (no-op for routers without any — the common case).
func (f *Fleet) observeAssign(k int, j *job.Job) {
	for _, o := range f.assignObs {
		o.ObserveAssign(k, j)
	}
}

// ConstraintPipeline is the standard constrained router: capacity, taints
// and class affinity as hard filters; load spreading across members and
// failure domains plus assignment steadiness as soft preferences.
func ConstraintPipeline(src ConstraintSource) *Pipeline {
	return NewPipeline("constrained",
		[]Filter{CapacityFilter{}, TaintFilter{Source: src}, AffinityFilter{Source: src}},
		[]WeightedScorer{{LeastLoaded{}, 1}, {SpreadScorer{}, 1}, {NewSteadyScorer(), 0.5}})
}
