package fleet

import (
	"math"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
)

// TestEnableMigrationValidation covers the configuration guards.
func TestEnableMigrationValidation(t *testing.T) {
	f, err := New(heteroMembers(), LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.EnableMigration(MigrationConfig{}); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if err := f.EnableMigration(MigrationConfig{Interval: 10, Hysteresis: -1}); err == nil {
		t.Fatal("negative hysteresis must be rejected")
	}
	// NaN would silently disable every sweep (it never compares <= the
	// clock) or every move; both must fail loudly instead.
	if err := f.EnableMigration(MigrationConfig{Interval: math.NaN()}); err == nil {
		t.Fatal("NaN interval must be rejected")
	}
	if err := f.EnableMigration(MigrationConfig{Interval: 10, Hysteresis: math.NaN()}); err == nil {
		t.Fatal("NaN hysteresis must be rejected")
	}
	if err := f.EnableMigration(HysteresisMigration(100)); err != nil {
		t.Fatal(err)
	}

	r, err := New(heteroMembers(), NewRandom(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableMigration(HysteresisMigration(100)); err == nil {
		t.Fatal("an unscored router cannot drive migration")
	}
}

// TestMigrationParityWhenIneffective pins the acceptance guarantee: a
// migration controller that never finds a worthwhile move (the hysteresis
// margin exceeds the pipeline's whole score range) must reproduce the
// migration-disabled run byte-for-byte — same assignments, same per-job
// start times, same fleet metrics — even though every sweep withdraws and
// resubmits every pending job.
func TestMigrationParityWhenIneffective(t *testing.T) {
	stream := lublinStream(t, 250, 13)

	base, err := New(heteroMembers(), LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	baseStream := cloneStream(stream)
	baseRes, err := base.Run(baseStream)
	if err != nil {
		t.Fatal(err)
	}

	mig, err := New(heteroMembers(), LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	// Margin larger than any normalized pipeline score: probes everywhere,
	// moves nowhere. A short interval maximizes the number of probes.
	if err := mig.EnableMigration(MigrationConfig{Interval: 50, Hysteresis: 1e9}); err != nil {
		t.Fatal(err)
	}
	migStream := cloneStream(stream)
	migRes, err := mig.Run(migStream)
	if err != nil {
		t.Fatal(err)
	}

	for i := range baseRes.Assignments {
		if baseRes.Assignments[i] != migRes.Assignments[i] {
			t.Fatalf("job %d assigned to %d without migration, %d with ineffective migration",
				i, baseRes.Assignments[i], migRes.Assignments[i])
		}
	}
	for i := range baseStream {
		if baseStream[i].StartTime != migStream[i].StartTime {
			t.Fatalf("job %d starts at %g without migration, %g with ineffective migration",
				i, baseStream[i].StartTime, migStream[i].StartTime)
		}
	}
	for _, k := range []metrics.Kind{metrics.BoundedSlowdown, metrics.WaitTime} {
		a, b := metrics.Value(k, baseRes.Fleet), metrics.Value(k, migRes.Fleet)
		if a != b {
			t.Fatalf("%v: %g without migration, %g with ineffective migration", k, a, b)
		}
	}
	// Utilization integrates busy time; sweeps split the integration
	// interval at sweep instants, so the non-associative float sum may
	// differ in the last ulp even though the schedule is identical.
	a, b := baseRes.Fleet.Utilization, migRes.Fleet.Utilization
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("util: %g without migration, %g with ineffective migration", a, b)
	}
	if migRes.Fleet.Moves != 0 || len(migRes.Fleet.MigratedJobs) != 0 {
		t.Fatalf("ineffective migration recorded %d moves, %d migrated jobs",
			migRes.Fleet.Moves, len(migRes.Fleet.MigratedJobs))
	}
}

// strandedScenario builds the textbook case for re-placement: cluster A's
// queue hides work the placement-time signals underestimate (tiny
// requested times, huge actual runtimes), so a job routed to A by
// least-loaded is stranded behind hours of surprise work while cluster B
// drains. Returns the stream; the stranded job is the last one.
func strandedScenario() []*job.Job {
	mk := func(id int, submit, run float64, procs int, req float64) *job.Job {
		return job.New(id, submit, run, procs, req)
	}
	return []*job.Job{
		// Seed both clusters with one full-width running job each.
		mk(1, 0, 100, 64, 100), // → A (tie breaks low)
		mk(2, 0, 500, 64, 500), // → B
		// Queue "cheap-looking" work on A: 10s requested, 4000s actual.
		mk(3, 1, 4000, 64, 10), // → A (B carries 500s)
		mk(4, 2, 4000, 64, 10), // → A still looks cheaper
		// The victim: routed to A on the same stale signals, then stuck
		// behind ~8000s of surprise work unless migrated to B, which is
		// idle from t=500.
		mk(5, 3, 60, 32, 60),
	}
}

func strandedMembers() []MemberConfig {
	return []MemberConfig{
		{Name: "A", Sim: sim.Config{Processors: 64, MaxObserve: 32}, Scheduler: sched.FCFS()},
		{Name: "B", Sim: sim.Config{Processors: 64, MaxObserve: 32}, Scheduler: sched.FCFS()},
	}
}

// TestMigrationRescuesStrandedJob: with migration off the victim waits for
// A's backlog; with hysteresis migration the first post-drain sweep moves
// it to the idle cluster B and it starts immediately. Fleet-wide bounded
// slowdown must strictly improve and every migration counter must agree.
func TestMigrationRescuesStrandedJob(t *testing.T) {
	run := func(enable bool) (*Result, []*job.Job) {
		f, err := New(strandedMembers(), LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			if err := f.EnableMigration(HysteresisMigration(200)); err != nil {
				t.Fatal(err)
			}
		}
		stream := strandedScenario()
		res, err := f.Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		return res, stream
	}

	off, offStream := run(false)
	on, onStream := run(true)

	victimOff, victimOn := offStream[4], onStream[4]
	if victimOff.StartTime < 4000 {
		t.Fatalf("scenario broken: victim started at %g without migration (expected to be stranded)",
			victimOff.StartTime)
	}
	if victimOn.StartTime >= victimOff.StartTime {
		t.Fatalf("migration did not rescue the victim: start %g vs %g",
			victimOn.StartTime, victimOff.StartTime)
	}
	offBsld := metrics.Value(metrics.BoundedSlowdown, off.Fleet)
	onBsld := metrics.Value(metrics.BoundedSlowdown, on.Fleet)
	if onBsld >= offBsld {
		t.Fatalf("fleet bsld %g with migration, %g without: no improvement", onBsld, offBsld)
	}

	if on.Fleet.Moves < 1 {
		t.Fatal("no moves recorded")
	}
	found := false
	for _, j := range on.Fleet.MigratedJobs {
		if j.ID == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim missing from MigratedJobs: %v", on.Fleet.MigratedJobs)
	}
	if d := metrics.MeanMigrationDelay(on.Fleet); d <= 0 {
		t.Fatalf("mean migration delay = %g, want > 0", d)
	}
	migBsld, natBsld := metrics.MigrationSplit(metrics.BoundedSlowdown, on.Fleet)
	if migBsld <= 0 || natBsld <= 0 {
		t.Fatalf("migration split = %g/%g, want both positive", migBsld, natBsld)
	}
	in, out := 0, 0
	for _, c := range on.Clusters {
		in += c.MovedIn
		out += c.MovedOut
	}
	if in != out || in != on.Fleet.Moves {
		t.Fatalf("move accounting disagrees: in=%d out=%d fleet=%d", in, out, on.Fleet.Moves)
	}
	// The victim kept its original arrival time: its wait is measured from
	// submission, not from the migration instant.
	if w := victimOn.Wait(); w != victimOn.StartTime-victimOn.SubmitTime {
		t.Fatalf("victim wait %g not measured from original submission", w)
	}
}

// TestMigrationBudgetAndCooldown: a per-sweep budget of one move must
// serialize the rescue of two stranded jobs across sweeps, and a per-job
// lifetime cap of zero moves... is expressed as MaxMovesPerJob=1 with an
// aggressive controller never exceeding one move per job.
func TestMigrationBudgetAndCooldown(t *testing.T) {
	mk := func(id int, submit, run float64, procs int, req float64) *job.Job {
		return job.New(id, submit, run, procs, req)
	}
	stream := []*job.Job{
		mk(1, 0, 100, 64, 100),
		mk(2, 0, 500, 64, 500),
		mk(3, 1, 4000, 64, 10),
		mk(4, 2, 4000, 64, 10),
		mk(5, 3, 60, 32, 60), // stranded victim #1
		mk(6, 4, 60, 32, 60), // stranded victim #2
	}
	f, err := New(strandedMembers(), LeastLoadedPipeline())
	if err != nil {
		t.Fatal(err)
	}
	cfg := MigrationConfig{
		Interval:         200,
		Hysteresis:       0.25,
		MaxMovesPerSweep: 1,
		MaxMovesPerJob:   1,
	}
	if err := f.EnableMigration(cfg); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Moves == 0 {
		t.Fatal("budgeted migration still must move the stranded jobs")
	}
	// Lifetime cap: no job may account for more than one move.
	perJob := map[int]int{}
	for _, c := range res.Clusters {
		if c.Result.Moves > 0 && len(c.Result.MigratedJobs) == 0 {
			t.Fatalf("cluster %s reports %d moves but no migrated jobs", c.Name, c.Result.Moves)
		}
	}
	if res.Fleet.Moves > len(res.Fleet.MigratedJobs) {
		t.Fatalf("MaxMovesPerJob=1 violated: %d moves across %d jobs",
			res.Fleet.Moves, len(res.Fleet.MigratedJobs))
	}
	for _, j := range res.Fleet.MigratedJobs {
		perJob[j.ID]++
		if perJob[j.ID] > 1 {
			t.Fatalf("job %d appears twice in MigratedJobs", j.ID)
		}
	}
	if math.IsNaN(metrics.Value(metrics.BoundedSlowdown, res.Fleet)) {
		t.Fatal("bsld must stay finite")
	}
}
