package fleet

import (
	"math"
	"math/rand"
	"testing"

	"rlsched/internal/metrics"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
)

// Randomized property tests for the migration controller: for arbitrary
// fleets, streams and budgets, conservation and the configured limits must
// hold exactly, and an ineffective controller must be byte-invisible.

// randomMembers draws 2–4 members. The first is always a 256-proc cluster
// so every Lublin job fits somewhere.
func randomMembers(rng *rand.Rand) []MemberConfig {
	scheds := []func() sim.Scheduler{
		func() sim.Scheduler { return sched.FCFS() },
		func() sim.Scheduler { return sched.SJF() },
		func() sim.Scheduler { return sched.F1() },
	}
	sizes := []int{256, 128, 64}
	n := 2 + rng.Intn(3)
	members := make([]MemberConfig, n)
	for i := range members {
		size := sizes[rng.Intn(len(sizes))]
		if i == 0 {
			size = 256
		}
		members[i] = MemberConfig{
			Name: string(rune('A' + i)),
			Sim: sim.Config{
				Processors: size,
				Backfill:   rng.Intn(2) == 0,
				MaxObserve: 32,
			},
			Scheduler: scheds[rng.Intn(len(scheds))](),
		}
	}
	return members
}

// randomMigration draws a budgeted controller config.
func randomMigration(rng *rand.Rand) MigrationConfig {
	return MigrationConfig{
		Interval:         100 + rng.Float64()*1900,
		Hysteresis:       []float64{0, 0.1, 0.3}[rng.Intn(3)],
		MaxMovesPerSweep: rng.Intn(3), // 0 = unlimited
		Cooldown:         float64(rng.Intn(3)) * 500,
		MaxMovesPerJob:   1 + rng.Intn(3), // always capped: the audit below needs a bound
		RequireStartNow:  rng.Intn(2) == 0,
		MigrateCommitted: rng.Intn(2) == 0,
	}
}

// TestMigrationInvariantsRandom: across random fleets, streams and
// configs — jobs are conserved exactly, every placement/move counter
// agrees, and the per-job move cap, per-job cooldown and per-sweep budget
// hold for every job (audited against the controller's own move log).
func TestMigrationInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 10; iter++ {
		stream := lublinStream(t, 150+rng.Intn(150), rng.Int63())
		cfg := randomMigration(rng)
		f, err := New(randomMembers(rng), LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.EnableMigration(cfg); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(stream)
		if err != nil {
			t.Fatalf("iter %d (cfg %+v): %v", iter, cfg, err)
		}

		// Conservation: every submitted job appears exactly once in the
		// fleet result, and every one of them ran.
		if len(res.Fleet.Jobs) != len(stream) {
			t.Fatalf("iter %d: %d jobs in, %d out", iter, len(stream), len(res.Fleet.Jobs))
		}
		seen := map[int]int{}
		for _, j := range res.Fleet.Jobs {
			seen[j.ID]++
			if !j.Started() {
				t.Fatalf("iter %d: job %d never started", iter, j.ID)
			}
		}
		for _, j := range stream {
			if seen[j.ID] != 1 {
				t.Fatalf("iter %d: job %d appears %d times in the result", iter, j.ID, seen[j.ID])
			}
		}
		placements, movedIn, movedOut := 0, 0, 0
		for _, c := range res.Clusters {
			placements += c.Placements
			movedIn += c.MovedIn
			movedOut += c.MovedOut
		}
		if placements != len(stream) {
			t.Fatalf("iter %d: %d placements for %d jobs", iter, placements, len(stream))
		}
		if movedIn != movedOut || movedIn != res.Fleet.Moves {
			t.Fatalf("iter %d: move accounting disagrees: in=%d out=%d fleet=%d",
				iter, movedIn, movedOut, res.Fleet.Moves)
		}

		// Budget audit against the controller's own per-job move log.
		mig := f.lastMig
		if mig == nil {
			t.Fatalf("iter %d: migration enabled but no controller state retained", iter)
		}
		totalMoves := 0
		perSweep := map[float64]int{}
		for j, inf := range mig.info {
			if inf.moves != len(inf.times) {
				t.Fatalf("iter %d: job %d counts %d moves but logged %d instants",
					iter, j.ID, inf.moves, len(inf.times))
			}
			totalMoves += inf.moves
			if inf.moves > cfg.MaxMovesPerJob {
				t.Fatalf("iter %d: job %d moved %d times, cap %d", iter, j.ID, inf.moves, cfg.MaxMovesPerJob)
			}
			for k := 1; k < len(inf.times); k++ {
				if d := inf.times[k] - inf.times[k-1]; d < cfg.Cooldown {
					t.Fatalf("iter %d: job %d re-moved after %g s, cooldown %g", iter, j.ID, d, cfg.Cooldown)
				}
			}
			for _, at := range inf.times {
				perSweep[at]++
			}
		}
		if totalMoves != res.Fleet.Moves {
			t.Fatalf("iter %d: controller logged %d moves, metrics report %d", iter, totalMoves, res.Fleet.Moves)
		}
		if cfg.MaxMovesPerSweep > 0 {
			for at, n := range perSweep {
				if n > cfg.MaxMovesPerSweep {
					t.Fatalf("iter %d: sweep at %g made %d moves, budget %d", iter, at, n, cfg.MaxMovesPerSweep)
				}
			}
		}
		// MigratedJobs must be exactly the jobs with a non-empty log.
		migrated := map[int]bool{}
		for j, inf := range mig.info {
			if inf.moves > 0 {
				migrated[j.ID] = true
			}
		}
		if len(res.Fleet.MigratedJobs) != len(migrated) {
			t.Fatalf("iter %d: %d MigratedJobs vs %d jobs with moves", iter, len(res.Fleet.MigratedJobs), len(migrated))
		}
		for _, j := range res.Fleet.MigratedJobs {
			if !migrated[j.ID] {
				t.Fatalf("iter %d: job %d in MigratedJobs without a move log", iter, j.ID)
			}
		}
	}
}

// TestMigrationParityRandomizedSweep generalizes
// TestMigrationParityWhenIneffective across random fleets and streams: a
// controller whose hysteresis no normalized margin can clear must
// reproduce the migration-disabled run byte-for-byte — including with the
// committed pick in scope — even though every sweep withdraws and
// resubmits the whole backlog.
func TestMigrationParityRandomizedSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 6; iter++ {
		members := randomMembers(rng)
		stream := lublinStream(t, 150+rng.Intn(100), rng.Int63())

		base, err := New(members, LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		baseStream := cloneStream(stream)
		baseRes, err := base.Run(baseStream)
		if err != nil {
			t.Fatal(err)
		}

		mig, err := New(members, LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		cfg := MigrationConfig{
			Interval:         50 + rng.Float64()*500,
			Hysteresis:       1e9,
			MigrateCommitted: iter%2 == 0,
		}
		if err := mig.EnableMigration(cfg); err != nil {
			t.Fatal(err)
		}
		migStream := cloneStream(stream)
		migRes, err := mig.Run(migStream)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		for i := range baseRes.Assignments {
			if baseRes.Assignments[i] != migRes.Assignments[i] {
				t.Fatalf("iter %d: job %d assigned to %d vs %d under ineffective migration",
					iter, i, baseRes.Assignments[i], migRes.Assignments[i])
			}
		}
		for i := range baseStream {
			if baseStream[i].StartTime != migStream[i].StartTime {
				t.Fatalf("iter %d: job %d starts at %g vs %g under ineffective migration (committed=%v)",
					iter, i, baseStream[i].StartTime, migStream[i].StartTime, cfg.MigrateCommitted)
			}
		}
		for _, k := range []metrics.Kind{metrics.BoundedSlowdown, metrics.WaitTime} {
			if a, b := metrics.Value(k, baseRes.Fleet), metrics.Value(k, migRes.Fleet); a != b {
				t.Fatalf("iter %d: %v %g vs %g", iter, k, a, b)
			}
		}
		if d := math.Abs(baseRes.Fleet.Utilization - migRes.Fleet.Utilization); d > 1e-12 {
			t.Fatalf("iter %d: utilization drifted by %g", iter, d)
		}
		if migRes.Fleet.Moves != 0 || len(migRes.Fleet.MigratedJobs) != 0 {
			t.Fatalf("iter %d: ineffective migration recorded %d moves", iter, migRes.Fleet.Moves)
		}
	}
}
