package fleet

import (
	"fmt"
	"math"
	"sort"

	"rlsched/internal/job"
	"rlsched/internal/obs"
	"rlsched/internal/sim"
)

// Cluster churn (DESIGN.md §12): fleet membership changes while a run is
// in flight. A ChurnPlan schedules joins, drains and failures at global
// simulation instants; the actions ride the same event-heap stepping as
// arrivals, migration sweeps and sampling ticks (hooksUntil fires hooks in
// global-time order, churn first at ties), so churned runs stay exactly as
// deterministic as static ones. The member state machine is
//
//	active ──announce──▶ draining ──drain──▶ retired
//	active ───────────────fail─────────────▶ retired
//
// A draining member still serves — its backlog keeps scheduling and
// placement may still target it (churn-aware routers steer away via
// Candidate.Draining) — until the drain instant, when its pending backlog
// is withdrawn and re-placed through the normal router path and the member
// retires. Retirement is advertised as zero capacity (the candidate's View
// is zeroed), which every router's capacity predicate rejects on all code
// paths: the fast filter pass, the generic filter loop, the unscored
// baselines, and migration (a NaN-scored incumbent always loses). A
// drained member's running jobs finish — capacity leaves gracefully; a
// failed member's running jobs are evicted mid-flight (sim.EvictRunning)
// and re-placed along with its backlog.

// ChurnKind enumerates the cluster-churn event types of a ChurnPlan.
type ChurnKind int

// Churn event kinds: a member joining the fleet, draining out of it with
// notice, or failing without any.
const (
	// ChurnJoin adds Member to the fleet at Time. The new member starts
	// idle at the current global clock and is immediately placeable.
	ChurnJoin ChurnKind = iota
	// ChurnDrain retires the named member at Time: its pending backlog is
	// withdrawn and re-placed, running jobs finish where they are. A
	// positive Notice marks the member draining (Candidate.Draining) from
	// Time−Notice on, giving churn-aware routers time to steer away.
	ChurnDrain
	// ChurnFail kills the named member at Time: pending AND running jobs
	// are withdrawn (running ones evicted mid-flight, losing all progress)
	// and re-placed. A positive Notice marks the member draining from
	// Time−Notice on — a reclamation warning; work started there inside the
	// window is still lost at Time.
	ChurnFail
)

// String names the kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnDrain:
		return "drain"
	case ChurnFail:
		return "fail"
	}
	return "unknown"
}

// ChurnEvent is one scheduled membership change.
type ChurnEvent struct {
	// Time is the global simulation instant the change takes effect.
	Time float64
	// Kind selects the change.
	Kind ChurnKind
	// Member is the configuration of the joining member (ChurnJoin only).
	Member MemberConfig
	// Name is the target member (ChurnDrain / ChurnFail only).
	Name string
	// Notice is the drain announcement lead time: the member is marked
	// draining from Time−Notice on (ChurnDrain only; 0 = no notice).
	Notice float64
}

// ChurnPlan is a set of scheduled membership changes, applied by every
// subsequent Run. Events may be listed in any order; execution is sorted
// by instant (announcements at Time−Notice), with the plan order breaking
// ties deterministically.
type ChurnPlan []ChurnEvent

// validate rejects structurally bad plans up front; name resolution
// happens at fire time (a drain may target a member a join adds).
func (p ChurnPlan) validate() error {
	for i, ev := range p {
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return fmt.Errorf("fleet: churn event %d: non-finite time %g", i, ev.Time)
		}
		switch ev.Kind {
		case ChurnJoin:
			if ev.Member.Name == "" {
				return fmt.Errorf("fleet: churn event %d: join needs a member name", i)
			}
			if ev.Member.Scheduler == nil {
				return fmt.Errorf("fleet: churn event %d: join member %q needs a scheduler", i, ev.Member.Name)
			}
			if ev.Member.Sim.Processors <= 0 {
				return fmt.Errorf("fleet: churn event %d: join member %q needs processors", i, ev.Member.Name)
			}
		case ChurnDrain:
			if ev.Name == "" {
				return fmt.Errorf("fleet: churn event %d: drain needs a target name", i)
			}
			if !(ev.Notice >= 0) {
				return fmt.Errorf("fleet: churn event %d: drain notice must be non-negative, got %g", i, ev.Notice)
			}
		case ChurnFail:
			if ev.Name == "" {
				return fmt.Errorf("fleet: churn event %d: fail needs a target name", i)
			}
			if !(ev.Notice >= 0) {
				return fmt.Errorf("fleet: churn event %d: fail notice must be non-negative, got %g", i, ev.Notice)
			}
		default:
			return fmt.Errorf("fleet: churn event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// EnableChurn installs a churn plan for subsequent Runs (nil removes it).
// The plan is re-executed from the start by every Run; a Fleet stays
// reusable. Runs without a plan follow the exact churn-free code path
// (pinned by a byte-parity test).
func (f *Fleet) EnableChurn(plan ChurnPlan) error {
	if plan == nil {
		f.churnPlan = nil
		return nil
	}
	if err := plan.validate(); err != nil {
		return err
	}
	f.churnPlan = plan
	return nil
}

// AddMember permanently extends the fleet with a new member, effective at
// the next Run (the fleet has no holding state between runs, so there is
// nothing to do mid-flight). Mid-run joins ride a ChurnPlan instead.
func (f *Fleet) AddMember(mc MemberConfig) error {
	if mc.Name == "" {
		return fmt.Errorf("fleet: AddMember needs a member name")
	}
	if err := f.appendMember(mc, 0); err != nil {
		return err
	}
	f.members[len(f.members)-1].transient = false
	f.baseN = len(f.members)
	return nil
}

// Drain permanently removes a member from service: from the next Run on
// it starts retired — zero advertised capacity, so no router places there
// and it schedules nothing. Between runs every member is empty, so there
// is no backlog to migrate out; a mid-run drain with live migrate-out of
// the member's pending jobs rides a ChurnPlan (ChurnDrain). The last
// serving member cannot be drained.
func (f *Fleet) Drain(name string) error {
	i := f.findMember(name)
	if i < 0 {
		return fmt.Errorf("fleet: Drain: no member named %q", name)
	}
	if f.members[i].gone {
		return fmt.Errorf("fleet: Drain: member %q is already drained", name)
	}
	alive := 0
	for _, m := range f.members {
		if !m.gone {
			alive++
		}
	}
	if alive <= 1 {
		return fmt.Errorf("fleet: Drain: %q is the last serving member", name)
	}
	f.members[i].gone = true
	return nil
}

// memberState is the run-scoped lifecycle state of a member (see the
// state machine at the top of this file).
type memberState uint8

const (
	stateActive memberState = iota
	stateDraining
	stateRetired
)

// churn action kinds, in fire order at equal instants (announcements
// before effects by construction: an announcement's instant is strictly
// earlier unless Notice is 0, in which case plan order rules).
const (
	actAnnounce = iota
	actJoin
	actDrain
	actFail
)

// churnAction is one flattened plan step: a ChurnDrain with notice
// contributes two (announce at Time−Notice, drain at Time).
type churnAction struct {
	t    float64
	kind int
	ev   *ChurnEvent
}

// churner is the run-scoped churn state: the flattened, time-sorted
// action list and a cursor. One is built per Run.
type churner struct {
	actions []churnAction
	next    int
	// forced counts jobs withdrawn and re-placed by drains and failures;
	// joins/drains/fails count executed transitions. White-box hooks for
	// tests and the churn experiment.
	forced int
	joins  int
	drains int
	fails  int
}

// newChurner flattens and sorts the plan.
func newChurner(plan ChurnPlan) *churner {
	ch := &churner{}
	for i := range plan {
		ev := &plan[i]
		switch ev.Kind {
		case ChurnJoin:
			ch.actions = append(ch.actions, churnAction{t: ev.Time, kind: actJoin, ev: ev})
		case ChurnDrain:
			if ev.Notice > 0 {
				ch.actions = append(ch.actions, churnAction{t: ev.Time - ev.Notice, kind: actAnnounce, ev: ev})
			}
			ch.actions = append(ch.actions, churnAction{t: ev.Time, kind: actDrain, ev: ev})
		case ChurnFail:
			if ev.Notice > 0 {
				ch.actions = append(ch.actions, churnAction{t: ev.Time - ev.Notice, kind: actAnnounce, ev: ev})
			}
			ch.actions = append(ch.actions, churnAction{t: ev.Time, kind: actFail, ev: ev})
		}
	}
	sort.SliceStable(ch.actions, func(i, k int) bool { return ch.actions[i].t < ch.actions[k].t })
	return ch
}

// due reports whether an action fires at or before t.
func (ch *churner) due(t float64) bool {
	return ch != nil && ch.next < len(ch.actions) && ch.actions[ch.next].t <= t
}

// nextT is the next action's instant (only valid while actions remain).
func (ch *churner) nextT() float64 { return ch.actions[ch.next].t }

// findMember resolves a member name to its index (-1 when absent).
func (f *Fleet) findMember(name string) int {
	for i, m := range f.members {
		if m.name == name {
			return i
		}
	}
	return -1
}

// appendMember grows every per-member array of the fleet by one. The
// candidate store append may reallocate, so the cached candidate pointers
// are rebuilt — they must stay aimed at the live backing array.
func (f *Fleet) appendMember(mc MemberConfig, now float64) error {
	if f.findMember(mc.Name) >= 0 {
		return fmt.Errorf("fleet: duplicate member name %q", mc.Name)
	}
	if mc.Scheduler == nil {
		return fmt.Errorf("fleet: member %q needs a scheduler", mc.Name)
	}
	if mc.Sim.Processors <= 0 {
		return fmt.Errorf("fleet: member %q needs processors", mc.Name)
	}
	m := &member{
		name:      mc.Name,
		cfg:       mc.Sim,
		sim:       sim.New(mc.Sim),
		sched:     mc.Scheduler,
		attrs:     mc.Attrs,
		transient: true,
	}
	if f.rec != nil {
		m.sim.SetRecorder(f.rec, m.name)
	}
	m.sim.AdvanceClock(now)
	i := len(f.members)
	f.members = append(f.members, m)
	f.candStore = append(f.candStore, Candidate{Index: i, Name: m.name, Attrs: m.attrs})
	f.cands = f.cands[:0]
	for k := range f.candStore {
		f.cands = append(f.cands, &f.candStore[k])
	}
	f.sims = append(f.sims, m.sim)
	f.active = append(f.active, false)
	f.dirtyFlag = append(f.dirtyFlag, false)
	f.obsFlag = append(f.obsFlag, false)
	f.markDirty(i)
	return nil
}

// churnStep fires the next due action: advance the fleet to its instant,
// then apply the membership change. Withdrawn jobs are re-placed through
// the normal router path immediately, in (SubmitTime, ID) order.
func (f *Fleet) churnStep(ch *churner, mig *migrator, sam *sampler) error {
	a := ch.actions[ch.next]
	ch.next++
	now := a.t
	if err := f.advanceMembers(now); err != nil {
		return err
	}
	switch a.kind {
	case actAnnounce:
		i := f.findMember(a.ev.Name)
		if i < 0 {
			return fmt.Errorf("fleet: churn: no member named %q to drain", a.ev.Name)
		}
		m := f.members[i]
		if m.state == stateRetired {
			return fmt.Errorf("fleet: churn: member %q already retired at drain notice", a.ev.Name)
		}
		m.state = stateDraining
		m.drainAt = a.ev.Time
		m.evicting = a.ev.Kind == ChurnFail
		f.markDirty(i)
		f.recordChurn(obs.ChurnAnnounce, now, m.name, 0)
		return nil
	case actJoin:
		if err := f.appendMember(a.ev.Member, now); err != nil {
			return err
		}
		if sam != nil {
			sam.addMember(f.members[len(f.members)-1].name)
		}
		ch.joins++
		f.recordChurn(obs.ChurnJoined, now, a.ev.Member.Name, 0)
		return nil
	case actDrain, actFail:
		i := f.findMember(a.ev.Name)
		if i < 0 {
			return fmt.Errorf("fleet: churn: no member named %q to remove", a.ev.Name)
		}
		if f.members[i].state == stateRetired {
			return fmt.Errorf("fleet: churn: member %q already retired", a.ev.Name)
		}
		forced, err := f.retireMember(i, a.kind == actFail, sam, now)
		if err != nil {
			return err
		}
		ch.forced += forced
		kind := obs.ChurnDrained
		if a.kind == actFail {
			ch.fails++
			kind = obs.ChurnFailed
		} else {
			ch.drains++
		}
		f.recordChurn(kind, now, a.ev.Name, forced)
		return nil
	}
	return fmt.Errorf("fleet: churn: unknown action kind %d", a.kind)
}

// recordChurn emits one churn transition (no-op without a recorder).
func (f *Fleet) recordChurn(kind string, t float64, cluster string, forced int) {
	if f.rec == nil {
		return
	}
	rec := obs.ChurnRecord{Time: t, Kind: kind, Cluster: cluster, Forced: forced}
	f.rec.Churn(&rec)
}

// retireMember takes member i out of service at the current instant: the
// entire pending backlog (not just the scheduler-visible window) is
// withdrawn, a failure additionally evicts the running jobs, per-cluster
// scorer state and sampling series for the member are retired, and every
// withdrawn job is re-placed through the normal router path — the same
// withdraw → score → submit → pump move primitive migration sweeps use,
// counted in the members' MovedOut/MovedIn. Returns the number of jobs
// force-moved.
func (f *Fleet) retireMember(i int, fail bool, sam *sampler, now float64) (int, error) {
	m := f.members[i]
	// Settle the member's clock at the churn instant first: heap stepping
	// only advances members with events due, so a quiet member's busy-time
	// integral may lag here — and an eviction below would then drop the
	// cycles its running jobs burned between its last event and the
	// failure. Members with events at or before now were already synced by
	// advanceMembers, so this is a pure clock move on every path.
	m.sim.AdvanceClock(now)
	var moved []*job.Job
	if pend := m.sim.PendingJobs(); len(pend) > 0 {
		// Copy before withdrawing: PendingJobs aliases the live queue.
		moved = append(make([]*job.Job, 0, len(pend)), pend...)
		for _, j := range moved {
			if _, err := m.sim.Withdraw(j.ID); err != nil {
				return 0, fmt.Errorf("fleet: churn: withdraw from %s: %w", m.name, err)
			}
		}
	}
	m.committed = nil
	if fail {
		moved = append(moved, m.sim.EvictRunning()...)
	}
	m.state = stateRetired
	for _, s := range f.stateful {
		if cr, ok := s.(ClusterRetirer); ok {
			cr.RetireCluster(i)
		}
	}
	if sam != nil {
		sam.retire(i)
	}
	f.markDirty(i)
	f.touch(i)
	if len(moved) == 0 {
		return 0, nil
	}
	sort.Slice(moved, func(a, b int) bool {
		x, y := moved[a], moved[b]
		return x.SubmitTime < y.SubmitTime ||
			(x.SubmitTime == y.SubmitTime && x.ID < y.ID)
	})
	// Stateful scorers see every completion up to the churn instant before
	// the first forced re-placement is scored (mirrors migration sweeps).
	f.observeCompletions()
	for _, j := range moved {
		cands := f.candidatesAt(now)
		var k int
		if f.rec != nil {
			k = f.placeRecorded(j, cands)
		} else {
			k = f.router.Place(j, cands)
		}
		if k < 0 || k >= len(f.members) || f.members[k].state == stateRetired {
			return 0, fmt.Errorf("fleet: churn: router %s cannot re-place job %d (%d procs) off %s: no feasible cluster",
				f.router.Name(), j.ID, j.RequestedProcs, m.name)
		}
		dst := f.members[k]
		dst.sim.AdvanceClock(now)
		if err := dst.sim.Submit(j); err != nil {
			return 0, fmt.Errorf("fleet: churn: re-place to %s: %w", dst.name, err)
		}
		m.movedOut++
		dst.movedIn++
		f.observeAssign(k, j)
		if err := dst.pump(); err != nil {
			return 0, err
		}
		f.markDirty(k)
		f.touch(k)
	}
	return len(moved), nil
}

// AvoidDraining is the churn-aware, deadline-aware Score plugin. It
// weighs what the announced retirement will actually destroy:
//
//   - A graceful drain (Evicting false) destroys nothing — running jobs
//     finish, pending work is re-placed with its submit order intact — so
//     the plugin expresses no preference and the ordering stays the load
//     scorer's. Blanket drain avoidance would idle the drainer's whole
//     capacity for the notice window and buy nothing.
//   - A failure warning (Evicting true) kills running jobs at DrainTime,
//     so the plugin penalizes the member for every job that cannot safely
//     complete first. A job the member can start immediately (free
//     processors, empty queue) whose requested time fits inside the
//     remaining window still runs there for free; everything else risks
//     losing its progress and steers away.
//
// Compose it with a load scorer (ChurnAwarePipeline) — as a soft penalty
// it still lets the doomed member take unsafe work when every healthy
// alternative is markedly more loaded (taking the eviction risk beats
// queueing behind a burst). A Draining+Evicting candidate without a
// DrainTime is treated as unsafe for everything.
type AvoidDraining struct{}

// Name implements Scorer.
func (AvoidDraining) Name() string { return "avoid-draining" }

// Score implements Scorer.
func (AvoidDraining) Score(j *job.Job, cands []*Candidate, out []float64) {
	for i, c := range cands {
		if c.Draining && c.Evicting && !safeOnDrainer(j, c) {
			out[i] = -1
		} else {
			out[i] = 0
		}
	}
}

// safeOnDrainer reports whether the job would start immediately on the
// draining candidate and finish before its announced retirement.
func safeOnDrainer(j *job.Job, c *Candidate) bool {
	return c.View.FreeProcs >= j.RequestedProcs && c.Pending == 0 &&
		c.DrainTime > 0 && c.Now+j.RequestedTime <= c.DrainTime
}

// ChurnAwarePipeline spreads by committed work like LeastLoadedPipeline
// but steers unsafe placements off evicting members: with no failure
// announced the drain plugin is constant (contributing nothing — the
// ordering is exactly least-loaded's), and under a warning its half
// weight outbids moderate load differences while still conceding when the
// doomed member's least-loaded advantage over every healthy alternative
// exceeds it (the relief valve: under a burst, risking eviction beats
// queueing). The pipeline reads Candidate.Now (the deadline check), so it
// does not declare ClockFree.
func ChurnAwarePipeline() *Pipeline {
	return NewPipeline("churn-aware",
		[]Filter{CapacityFilter{}},
		[]WeightedScorer{{LeastLoaded{}, 1}, {AvoidDraining{}, 0.5}})
}

// ChurnStats summarizes the churn a run executed: counts of membership
// transitions and of the jobs force-moved off drained or failed members.
// Zero-valued for runs without a churn plan.
type ChurnStats struct {
	// Joins, Drains and Fails count executed membership transitions.
	Joins, Drains, Fails int
	// Forced counts the jobs withdrawn and re-placed by drains and fails.
	Forced int
}

// ClusterRetirer is the optional capability of stateful scorers that keep
// per-cluster state: the fleet calls RetireCluster when a member retires
// mid-run (ChurnDrain/ChurnFail), so stale per-member shares cannot bias
// later decisions against a member that no longer exists.
type ClusterRetirer interface {
	// RetireCluster drops all state keyed to the member index.
	RetireCluster(cluster int)
}
