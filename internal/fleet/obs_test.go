package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/obs"
)

// marshalResult renders a fleet result (including every per-job field) to
// canonical JSON — the byte-level parity probe for traced vs untraced runs.
func marshalResult(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRecorderParityNoMigration pins the determinism guarantee: a run with
// a Collector attached must produce byte-identical results to the untraced
// run, and the recorded events must agree with the results.
func TestRecorderParityNoMigration(t *testing.T) {
	stream := lublinStream(t, 250, 17)
	build := func() *Fleet {
		f, err := New(heteroMembers(), FairnessPipeline(FairnessConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	base := build()
	baseRes, err := base.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewCollector()
	traced := build()
	traced.SetRecorder(rec)
	tracedRes, err := traced.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}

	if a, b := marshalResult(t, baseRes), marshalResult(t, tracedRes); !bytes.Equal(a, b) {
		t.Fatal("results differ with a recorder attached")
	}

	places := rec.Placements()
	if len(places) != len(stream) {
		t.Fatalf("recorded %d placements for %d jobs", len(places), len(stream))
	}
	for i, d := range places {
		if d.Winner != tracedRes.Assignments[i] {
			t.Fatalf("placement %d: recorded winner %d, assignment %d",
				i, d.Winner, tracedRes.Assignments[i])
		}
		if d.Router != "fair" {
			t.Fatalf("placement %d: router %q", i, d.Router)
		}
		if len(d.Candidates) != 3 {
			t.Fatalf("placement %d: %d candidate traces, want 3", i, len(d.Candidates))
		}
		win := d.Candidates[d.Winner]
		if !win.Feasible {
			t.Fatalf("placement %d: winner marked infeasible", i)
		}
		for _, c := range d.Candidates {
			if c.Feasible && c.FilteredBy != "" {
				t.Fatalf("placement %d: feasible candidate %s has FilteredBy=%q", i, c.Name, c.FilteredBy)
			}
			if !c.Feasible && c.FilteredBy == "" {
				t.Fatalf("placement %d: infeasible candidate %s without a filter name", i, c.Name)
			}
			for _, p := range c.Plugins {
				if math.IsNaN(p.Norm) || p.Norm < 0 || p.Norm > 1+1e-12 {
					t.Fatalf("placement %d: plugin %s norm %g out of [0,1]", i, p.Plugin, p.Norm)
				}
			}
		}
	}

	// The fairness pipeline is stateful, so every placement snapshots it.
	if snaps := rec.FairnessSnapshots(); len(snaps) != len(stream) {
		t.Fatalf("recorded %d fairness snapshots for %d placements", len(snaps), len(stream))
	}

	// Lifecycle accounting: every job submits, starts and finishes exactly
	// once, on a named cluster.
	counts := map[obs.JobEventKind]int{}
	for _, e := range rec.Jobs() {
		counts[e.Kind]++
		if e.Cluster == "" {
			t.Fatalf("job event without cluster tag: %+v", e)
		}
	}
	n := len(stream)
	if counts[obs.JobSubmit] != n || counts[obs.JobStart] != n || counts[obs.JobFinish] != n {
		t.Fatalf("lifecycle counts = %v for %d jobs", counts, n)
	}
	if counts[obs.JobWithdraw] != 0 || len(rec.Migrations()) != 0 {
		t.Fatal("migration events recorded in a migration-free run")
	}
}

// TestRecorderParityWithMigration repeats the byte-parity check on a run
// where migration genuinely moves jobs, and cross-checks the recorded
// probes against the result's move accounting.
func TestRecorderParityWithMigration(t *testing.T) {
	run := func(rec obs.Recorder) *Result {
		f, err := New(strandedMembers(), LeastLoadedPipeline())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.EnableMigration(MigrationConfig{
			Interval:       200,
			Hysteresis:     0.25,
			Cooldown:       400,
			MaxMovesPerJob: 1,
		}); err != nil {
			t.Fatal(err)
		}
		if rec != nil {
			f.SetRecorder(rec)
		}
		res, err := f.Run(strandedScenario())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	baseRes := run(nil)
	rec := obs.NewCollector()
	tracedRes := run(rec)

	if a, b := marshalResult(t, baseRes), marshalResult(t, tracedRes); !bytes.Equal(a, b) {
		t.Fatal("migration results differ with a recorder attached")
	}
	if tracedRes.Fleet.Moves == 0 {
		t.Fatal("scenario no longer migrates anything")
	}

	probes := rec.Migrations()
	if len(probes) == 0 {
		t.Fatal("no migration probes recorded")
	}
	moved := 0
	for _, p := range probes {
		if p.Moved {
			moved++
			if p.Reason != obs.ReasonMoved || p.To == p.From || p.ToName == "" {
				t.Fatalf("inconsistent moved probe: %+v", p)
			}
		} else if p.Reason == obs.ReasonMoved {
			t.Fatalf("unmoved probe with moved reason: %+v", p)
		}
		if math.IsNaN(p.Margin) {
			t.Fatalf("probe margin is NaN: %+v", p)
		}
	}
	if moved != tracedRes.Fleet.Moves {
		t.Fatalf("recorded %d moved probes, result says %d moves", moved, tracedRes.Fleet.Moves)
	}

	// Each move shows up as a withdraw followed by a re-submit on the
	// destination cluster.
	withdraws := 0
	for _, e := range rec.Jobs() {
		if e.Kind == obs.JobWithdraw {
			withdraws++
		}
	}
	// Probes that stay put also withdraw-and-resubmit, so withdraws cover
	// at least every move.
	if withdraws < moved {
		t.Fatalf("%d withdraw events for %d moves", withdraws, moved)
	}
}

// TestPlaceExplainedMatchesPlaceScored pins that the explain pass is a pure
// observer: same pick, same scores, and a trace that agrees with both.
func TestPlaceExplainedMatchesPlaceScored(t *testing.T) {
	mk := func(idx, total, free, pending int, pendingWork float64) *Candidate {
		c := &Candidate{Index: idx, Name: string(rune('a' + idx)), Pending: pending, PendingWork: pendingWork}
		c.View.TotalProcs = total
		c.View.FreeProcs = free
		return c
	}
	p := NewPipeline("test",
		[]Filter{CapacityFilter{}, BacklogFilter{Max: 4}},
		[]WeightedScorer{{LeastLoaded{}, 2}, {Binpack{}, 1}})

	cands := []*Candidate{
		mk(0, 256, 200, 0, 1000),
		mk(1, 128, 10, 2, 50),
		mk(2, 64, 64, 9, 0),   // backlog-filtered
		mk(3, 16, 16, 0, 500), // capacity-filtered for wide jobs
	}
	j := &job.Job{ID: 1, RequestedProcs: 32, RequestedTime: 100, RunTime: 100}

	scoresA := make([]float64, len(cands))
	pickA := p.PlaceScored(j, cands, scoresA)

	var ex obs.Explain
	scoresB := make([]float64, len(cands))
	pickB := p.PlaceExplained(j, cands, scoresB, &ex)

	if pickA != pickB {
		t.Fatalf("PlaceScored picks %d, PlaceExplained picks %d", pickA, pickB)
	}
	for i := range scoresA {
		same := scoresA[i] == scoresB[i] || (math.IsNaN(scoresA[i]) && math.IsNaN(scoresB[i]))
		if !same {
			t.Fatalf("score %d: %g vs %g", i, scoresA[i], scoresB[i])
		}
	}
	if len(ex.Candidates) != len(cands) {
		t.Fatalf("explain has %d candidates", len(ex.Candidates))
	}
	for i, c := range ex.Candidates {
		if c.Index != i || c.Name != cands[i].Name {
			t.Fatalf("candidate %d mislabeled: %+v", i, c)
		}
		if c.Feasible {
			if c.Total != scoresA[i] {
				t.Fatalf("candidate %d total %g, score %g", i, c.Total, scoresA[i])
			}
			if len(c.Plugins) != 2 {
				t.Fatalf("candidate %d has %d plugin rows", i, len(c.Plugins))
			}
			sum := 0.0
			for _, ps := range c.Plugins {
				sum += ps.Weight * ps.Norm
			}
			if math.Abs(sum-c.Total) > 1e-12 {
				t.Fatalf("candidate %d: Σ weight·norm = %g, total %g", i, sum, c.Total)
			}
		} else if !math.IsNaN(scoresA[i]) {
			t.Fatalf("candidate %d infeasible in trace but scored %g", i, scoresA[i])
		}
	}
	if ex.Candidates[2].FilteredBy != (BacklogFilter{Max: 4}).Name() {
		t.Fatalf("candidate 2 filtered by %q", ex.Candidates[2].FilteredBy)
	}
	if ex.Candidates[3].FilteredBy != (CapacityFilter{}).Name() {
		t.Fatalf("candidate 3 filtered by %q", ex.Candidates[3].FilteredBy)
	}

	// Single-feasible shortcut: total 1, no plugin rows.
	narrow := []*Candidate{mk(0, 256, 0, 0, 0), mk(1, 16, 16, 0, 0)}
	wide := &job.Job{ID: 2, RequestedProcs: 200, RequestedTime: 10, RunTime: 10}
	if k := p.PlaceExplained(wide, narrow, nil, &ex); k != 0 {
		t.Fatalf("single-feasible pick = %d", k)
	}
	if ex.Candidates[0].Total != 1 || len(ex.Candidates[0].Plugins) != 0 {
		t.Fatalf("single-feasible trace: %+v", ex.Candidates[0])
	}

	// A genuine tie must set TieBreak (two identical clusters).
	tie := []*Candidate{mk(0, 128, 128, 0, 0), mk(1, 128, 128, 0, 0)}
	if k := p.PlaceExplained(j, tie, nil, &ex); k != 0 {
		t.Fatalf("tie pick = %d, want lowest index", k)
	}
	if !ex.TieBreak {
		t.Fatal("tie not flagged")
	}
}
