package fleet

import (
	"fmt"
	"math"
	"sync"

	"rlsched/internal/job"
	"rlsched/internal/nn"
	"rlsched/internal/obs"
	"rlsched/internal/sim"
)

// The placement pipeline mirrors the two-phase predicate/priority split of
// cluster placement schedulers: Filter plugins knock out clusters that
// cannot take the job at all, then weighted Score plugins rank the
// survivors. Scores are min-max normalized to [0,1] per plugin across the
// feasible candidates before weighting, so a plugin's raw scale never
// drowns out the others; ties break toward the lowest candidate index, so
// a placement is deterministic for deterministic plugins.

// Filter is a predicate plugin: it reports whether the candidate cluster
// could feasibly run the job at all.
type Filter interface {
	Name() string
	Feasible(j *job.Job, c *Candidate) bool
}

// Scorer is a priority plugin: it scores the job against every candidate
// at once (higher is better, any scale — the pipeline normalizes).
// Batch-style scoring lets plugins that run a policy network score all
// clusters in one forward pass.
type Scorer interface {
	Name() string
	Score(j *job.Job, cands []*Candidate, out []float64)
}

// WeightedScorer attaches a pipeline weight to a Scorer.
type WeightedScorer struct {
	Scorer Scorer
	Weight float64
}

// Pipeline is a Router built from Filter and Score plugins. Placements
// are safe to run concurrently as long as every plugin is (all built-ins
// are): scratch buffers are pooled per call, never shared.
type Pipeline struct {
	name    string
	Filters []Filter
	Scorers []WeightedScorer

	pool sync.Pool // *pipelineScratch
}

type pipelineScratch struct {
	feasible []int
	cands    []*Candidate
	raw      []float64
	total    []float64
	// ident caches the ascending index sequence 0..n-1, handed out as the
	// feasible list when no candidate was filtered — the common case at
	// fleet scale, where writing a 10k-entry index list per placement is
	// pure waste. Callers must never append through it.
	ident []int
}

// identity returns the cached 0..n-1 index slice, growing it on demand.
func (sc *pipelineScratch) identity(n int) []int {
	for i := len(sc.ident); i < n; i++ {
		sc.ident = append(sc.ident, i)
	}
	return sc.ident[:n]
}

// NewPipeline assembles a placement pipeline.
func NewPipeline(name string, filters []Filter, scorers []WeightedScorer) *Pipeline {
	return &Pipeline{name: name, Filters: filters, Scorers: scorers}
}

// Name implements Router.
func (p *Pipeline) Name() string { return p.name }

// Place implements Router: filter, score, argmax.
func (p *Pipeline) Place(j *job.Job, cands []*Candidate) int {
	return p.PlaceScored(j, cands, nil)
}

// PlaceScored is Place that additionally reports the total weighted score
// per candidate into scores (len(cands); NaN marks filtered-out clusters).
// It returns -1 when no cluster is feasible.
func (p *Pipeline) PlaceScored(j *job.Job, cands []*Candidate, scores []float64) int {
	return p.place(j, cands, scores, nil)
}

// PlaceExplained is PlaceScored that additionally fills ex with the
// per-candidate evidence: every filter verdict, each score plugin's
// normalized contribution, the weighted totals and whether the winner was
// tie-broken. The decision itself is bit-identical to PlaceScored — the
// explain pass only observes values the scoring pass computes anyway.
func (p *Pipeline) PlaceExplained(j *job.Job, cands []*Candidate, scores []float64, ex *obs.Explain) int {
	return p.place(j, cands, scores, ex)
}

// place is the shared placement pass; ex == nil skips all tracing.
func (p *Pipeline) place(j *job.Job, cands []*Candidate, scores []float64, ex *obs.Explain) int {
	sc, _ := p.pool.Get().(*pipelineScratch)
	if sc == nil {
		sc = &pipelineScratch{}
	}
	defer p.pool.Put(sc)

	if ex != nil {
		ex.Reset(len(cands))
		for i, c := range cands {
			ex.Candidates[i].Index = c.Index
			ex.Candidates[i].Name = c.Name
		}
	}

	feasible := p.filterPass(j, cands, sc, ex)

	for i := range scores {
		scores[i] = math.NaN()
	}
	if len(feasible) == 0 {
		return -1
	}
	if len(feasible) == 1 {
		if scores != nil {
			scores[feasible[0]] = 1
		}
		if ex != nil {
			ex.Candidates[feasible[0]].Total = 1
		}
		return feasible[0]
	}

	if cap(sc.raw) < len(cands) {
		sc.raw = make([]float64, len(cands))
		sc.total = make([]float64, len(cands))
	}
	raw := sc.raw[:len(cands)]
	total := sc.total[:len(cands)]
	// A single positive-weight scorer (the shape of every built-in
	// pipeline) writes its normalized score directly instead of zeroing
	// then accumulating — one fewer fleet-wide pass, bit-exact because
	// x == 0+x and w*(sub-lo)/span is never -0 here: sub-lo cannot be -0
	// under scoreBounds' signed-zero rule, and the weight is positive.
	assign := len(p.Scorers) == 1 && p.Scorers[0].Weight > 0
	if !assign {
		for i := range total {
			total[i] = 0
		}
	}

	// Score plugins see only the feasible candidates, in candidate order.
	// When everyone survived filtering — the common case at fleet scale,
	// where capacity rarely knocks a cluster out — the candidate slice is
	// passed through as-is and the normalize loops index it directly; the
	// arithmetic (and thus every bit of every score) is identical, only the
	// feasible→candidate indirection disappears.
	allFeasible := len(feasible) == len(cands)
	feasCands := cands
	if !allFeasible {
		fc := sc.cands[:0]
		for _, i := range feasible {
			fc = append(fc, cands[i])
		}
		sc.cands = fc
		feasCands = fc
	}
	sub := raw[:len(feasible)]
	// Single positive-weight scorer with no score or trace reporting — the
	// shape of every built-in pipeline on the Run arrival path. Min-max
	// normalization by a positive weight is strictly monotone, so the
	// argmax of the normalized totals is the argmax of the raw scores and
	// the normalization passes (bounds, divide, accumulate) are skipped
	// outright. Degenerate inputs match the normalized arithmetic exactly:
	// all-equal scores leave the strict > argmax at the first feasible
	// candidate, which is what all-zero totals select; and any NaN or ±Inf
	// score (detected by v-v != 0) makes every normalized total +0 or NaN,
	// which also selects the first feasible candidate.
	if scores == nil && ex == nil && len(p.Scorers) == 1 && p.Scorers[0].Weight > 0 {
		p.Scorers[0].Scorer.Score(j, feasCands, sub)
		bv := sub[0]
		if bv-bv != 0 {
			return feasible[0]
		}
		bk := 0
		for k := 1; k < len(sub); k++ {
			v := sub[k]
			if v-v != 0 {
				return feasible[0]
			}
			if v > bv {
				bv, bk = v, k
			}
		}
		return feasible[bk]
	}
	for _, ws := range p.Scorers {
		ws.Scorer.Score(j, feasCands, sub)
		lo, hi := scoreBounds(sub)
		span := hi - lo
		if span > 0 {
			switch {
			case assign && allFeasible:
				for i := range feasible {
					total[i] = ws.Weight * (sub[i] - lo) / span
				}
			case assign:
				for k, i := range feasible {
					total[i] = ws.Weight * (sub[k] - lo) / span
				}
			case allFeasible:
				for i := range feasible {
					total[i] += ws.Weight * (sub[i] - lo) / span
				}
			default:
				for k, i := range feasible {
					total[i] += ws.Weight * (sub[k] - lo) / span
				}
			}
		} else if assign {
			// A constant (or NaN-poisoned) plugin contributes 0; the
			// direct-write path must still produce it.
			for _, i := range feasible {
				total[i] = 0
			}
		}
		// A constant plugin expresses no preference and contributes 0.
		if ex != nil {
			name := ws.Scorer.Name()
			for k, i := range feasible {
				norm := 0.0
				if span > 0 {
					norm = (sub[k] - lo) / span
				}
				c := &ex.Candidates[i]
				c.Plugins = append(c.Plugins, obs.PluginScore{
					Plugin: name, Weight: ws.Weight, Norm: norm,
				})
			}
		}
	}

	best := feasible[0]
	if allFeasible {
		for i := 1; i < len(total); i++ {
			if total[i] > total[best] {
				best = i
			}
		}
	} else {
		for _, i := range feasible[1:] {
			if total[i] > total[best] {
				best = i
			}
		}
	}
	if scores != nil {
		for _, i := range feasible {
			scores[i] = total[i]
		}
	}
	if ex != nil {
		for _, i := range feasible {
			ex.Candidates[i].Total = total[i]
		}
		for _, i := range feasible {
			if i != best && total[i] == total[best] {
				ex.TieBreak = true
				break
			}
		}
	}
	return best
}

// filterPass returns the indices of candidates that pass every filter.
// The one-capacity-filter shape every built-in pipeline uses is
// special-cased into a direct comparison loop — one interface call per
// candidate is a measurable share of a 10k-member placement — with
// verdicts identical to the generic path (which tracing runs still take,
// since they want per-filter evidence). When nothing was filtered out the
// scratch's cached identity slice is returned instead of materializing an
// index list.
func (p *Pipeline) filterPass(j *job.Job, cands []*Candidate, sc *pipelineScratch, ex *obs.Explain) []int {
	if ex == nil && len(p.Filters) == 1 {
		if _, ok := p.Filters[0].(CapacityFilter); ok {
			req := j.RequestedProcs
			k := 0
			for ; k < len(cands); k++ {
				if req > cands[k].View.TotalProcs {
					break
				}
			}
			if k == len(cands) {
				return sc.identity(k)
			}
			feasible := append(sc.feasible[:0], sc.identity(k)...)
			for i := k + 1; i < len(cands); i++ {
				if req <= cands[i].View.TotalProcs {
					feasible = append(feasible, i)
				}
			}
			sc.feasible = feasible
			return feasible
		}
	}
	feasible := sc.feasible[:0]
next:
	for i, c := range cands {
		for _, f := range p.Filters {
			if !f.Feasible(j, c) {
				if ex != nil {
					ex.Candidates[i].FilteredBy = f.Name()
				}
				continue next
			}
		}
		if ex != nil {
			ex.Candidates[i].Feasible = true
		}
		feasible = append(feasible, i)
	}
	sc.feasible = feasible
	return feasible
}

// ClockFree is the optional capability of placement plugins — and of whole
// Routers — that never read Candidate.Now. The fleet skips refreshing the
// per-candidate clock before clock-free routers (at 10k members that write
// sweep is a measurable share of every placement); absence of the marker
// means "may read the clock", so correctness is the default. Among the
// built-ins, the capacity and backlog filters and the load-based scorers
// are clock-free; RLScorer (observation encoding) and FairnessScorer
// (share decay) read the clock and deliberately carry no marker.
type ClockFree interface {
	// ClockFree reports whether the plugin ignores Candidate.Now.
	ClockFree() bool
}

// ClockFree implements the capability aggregate: a pipeline is clock-free
// exactly when every filter and every scorer declares itself clock-free.
func (p *Pipeline) ClockFree() bool {
	for _, f := range p.Filters {
		if cf, ok := f.(ClockFree); !ok || !cf.ClockFree() {
			return false
		}
	}
	for _, ws := range p.Scorers {
		if cf, ok := ws.Scorer.(ClockFree); !ok || !cf.ClockFree() {
			return false
		}
	}
	return true
}

// scoreBounds returns the min and max of a non-empty score slice — the
// shared first half of the min-max normalization both the pipeline (per
// plugin, across feasible candidates) and the fairness scorer (its
// internal baseline) apply. One implementation, so the two stretches
// cannot silently diverge.
//
// The implementation replaces folding math.Min/math.Max (too slow for a
// 10k-candidate pass — they dominated the fleet scale profile) but is
// bit-identical to the fold: any NaN poisons both bounds exactly as the
// fold would, and the fold's signed-zero choices (Min takes -0 over +0,
// Max takes +0 over -0) are restored by a fixup scan in the only case
// they can differ — a bound landing on zero. Two equal non-zero floats
// share one bit pattern, so the main loop's strict comparisons are
// otherwise exact; the fixup stays off the hot path, which matters
// because placement scores tie constantly (idle same-size clusters).
func scoreBounds(vals []float64) (lo, hi float64) {
	// Two independent accumulator pairs break the loop-carried dependence
	// on a single bound; min/max over a partition is the min/max overall,
	// and the signed-zero fixups below repair the only combine ambiguity.
	lo, hi = vals[0], vals[0]
	lo2, hi2 := lo, hi
	i := 1
	for ; i+1 < len(vals); i += 2 {
		v, w := vals[i], vals[i+1]
		if v != v || w != w {
			return math.NaN(), math.NaN()
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if w < lo2 {
			lo2 = w
		}
		if w > hi2 {
			hi2 = w
		}
	}
	if i < len(vals) {
		v := vals[i]
		if v != v {
			return math.NaN(), math.NaN()
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo2 < lo {
		lo = lo2
	}
	if hi2 > hi {
		hi = hi2
	}
	if lo == 0 {
		// The fold's Min yields -0 whenever any -0 is present.
		for _, v := range vals {
			if v == 0 && math.Signbit(v) {
				lo = v
				break
			}
		}
	}
	if hi == 0 {
		// The fold's Max yields +0 whenever any +0 is present.
		for _, v := range vals {
			if v == 0 && !math.Signbit(v) {
				hi = v
				break
			}
		}
	}
	return lo, hi
}

// CapacityFilter keeps only clusters physically large enough for the job.
type CapacityFilter struct{}

// Name implements Filter.
func (CapacityFilter) Name() string { return "capacity" }

// Feasible implements Filter.
func (CapacityFilter) Feasible(j *job.Job, c *Candidate) bool {
	return j.RequestedProcs <= c.View.TotalProcs
}

// ClockFree implements ClockFree: capacity never consults the clock.
func (CapacityFilter) ClockFree() bool { return true }

// BacklogFilter enforces a per-cluster admission quota: clusters whose
// pending backlog has reached Max are infeasible (their queue is full).
// Note that a Fleet.Run has no holding queue — if every cluster's
// backlog is momentarily full the run errors out — so this filter suits
// admission-control callers (the serving /place endpoint) rather than
// closed-loop simulations.
type BacklogFilter struct{ Max int }

// Name implements Filter.
func (f BacklogFilter) Name() string { return fmt.Sprintf("backlog<%d", f.Max) }

// Feasible implements Filter.
func (f BacklogFilter) Feasible(_ *job.Job, c *Candidate) bool {
	return f.Max <= 0 || c.Pending < f.Max
}

// ClockFree implements ClockFree: backlog depth never consults the clock.
func (BacklogFilter) ClockFree() bool { return true }

// load is the committed seconds of work per processor — the shared signal
// of the load-based scorers.
func load(c *Candidate) float64 {
	return (c.RunningWork + c.PendingWork) / float64(c.View.TotalProcs)
}

// LeastLoaded spreads: it prefers the cluster with the least committed
// work (running + queued) per processor.
type LeastLoaded struct{}

// Name implements Scorer.
func (LeastLoaded) Name() string { return "least-loaded" }

// Score implements Scorer.
func (LeastLoaded) Score(_ *job.Job, cands []*Candidate, out []float64) {
	for i, c := range cands {
		out[i] = -load(c)
	}
}

// ClockFree implements ClockFree: load is clock-independent.
func (LeastLoaded) ClockFree() bool { return true }

// Binpack packs: among clusters with enough free processors right now it
// prefers the tightest fit (preserving big free blocks for wide jobs);
// when nowhere fits immediately it falls back to the least-loaded queue.
type Binpack struct{}

// Name implements Scorer.
func (Binpack) Name() string { return "binpack" }

// Score implements Scorer.
func (Binpack) Score(j *job.Job, cands []*Candidate, out []float64) {
	for i, c := range cands {
		if c.View.FreeProcs >= j.RequestedProcs && c.Pending == 0 {
			// Fits now: tighter leftover → higher score, always above
			// any queued cluster.
			out[i] = 1 + 1/float64(1+c.View.FreeProcs-j.RequestedProcs)
		} else {
			// Must queue: less committed work → closer to 0.
			out[i] = -load(c)
		}
	}
}

// ClockFree implements ClockFree: fit and load are clock-independent.
func (Binpack) ClockFree() bool { return true }

// QueueWait estimates the queuing delay the job would suffer: zero when
// the cluster can start it immediately with an empty queue, otherwise the
// committed work per processor (an optimistic drain-time bound).
type QueueWait struct{}

// Name implements Scorer.
func (QueueWait) Name() string { return "queue-wait" }

// Score implements Scorer.
func (QueueWait) Score(j *job.Job, cands []*Candidate, out []float64) {
	for i, c := range cands {
		if c.View.FreeProcs >= j.RequestedProcs && c.Pending == 0 {
			out[i] = 0
			continue
		}
		out[i] = -load(c)
	}
}

// ClockFree implements ClockFree: the drain-time bound is clock-independent.
func (QueueWait) ClockFree() bool { return true }

// RLScorer scores the job's marginal impact per cluster with a trained
// policy network through the graph-free nn.Inferer fast path (the same
// path training rollouts and the serving daemon use): for each candidate
// the job is appended to the cluster's visible queue, one batched forward
// pass scores all clusters, and the job's log-probability under the
// policy's softmax is the score — the policy's judgement of how soon it
// would run the job there, relative to the backlog it must beat.
type RLScorer struct {
	inf    nn.Inferer
	maxObs int
	feat   int
	pool   sync.Pool // *rlScratch
}

type rlScratch struct {
	obs    []float64
	logits []float64
	queue  []*job.Job
	limits []int
}

// NewRLScorer wraps a policy network built for sim.JobFeatures features
// per job.
func NewRLScorer(net nn.PolicyNet) (*RLScorer, error) {
	maxObs, feat := net.Dims()
	if feat != sim.JobFeatures {
		return nil, fmt.Errorf("fleet: policy expects %d features per job, encoder produces %d",
			feat, sim.JobFeatures)
	}
	return &RLScorer{inf: nn.AsInferer(net), maxObs: maxObs, feat: feat}, nil
}

// Name implements Scorer.
func (r *RLScorer) Name() string { return "rl" }

// Score implements Scorer. Safe for concurrent use (scratch is pooled,
// weights are only read).
func (r *RLScorer) Score(j *job.Job, cands []*Candidate, out []float64) {
	b := len(cands)
	rowLen := r.maxObs * r.feat
	sc, _ := r.pool.Get().(*rlScratch)
	if sc == nil {
		sc = &rlScratch{}
	}
	if cap(sc.obs) < b*rowLen {
		sc.obs = make([]float64, b*rowLen)
		sc.logits = make([]float64, b*r.maxObs)
	}
	if cap(sc.limits) < b {
		sc.limits = make([]int, b)
	}
	obs := sc.obs[:b*rowLen]
	logits := sc.logits[:b*r.maxObs]
	limits := sc.limits[:b]
	for i, c := range cands {
		vis := c.Visible
		if len(vis) > r.maxObs-1 {
			vis = vis[:r.maxObs-1] // keep a slot for the candidate job
		}
		sc.queue = append(sc.queue[:0], vis...)
		sc.queue = append(sc.queue, j)
		limits[i] = len(sc.queue)
		sim.BuildObsInto(obs[i*rowLen:(i+1)*rowLen], sc.queue, c.Now, c.View, c.Pending+1, r.maxObs)
	}
	r.inf.InferLogits(obs, b, logits)
	for i := range cands {
		// log-softmax of the appended job's slot (the last real row).
		out[i] = LastLogSoftmax(logits[i*r.maxObs : i*r.maxObs+limits[i]])
	}
	r.pool.Put(sc)
}

// LastLogSoftmax returns the log-softmax of row's last element — the
// shared "how strongly would this policy pick the appended job"
// reduction used by RLScorer and the serving daemon's per-shard engine
// scorer. 0 means certainty (the job is alone, or dominates the queue);
// deeply negative means the backlog buries it.
func LastLogSoftmax(row []float64) float64 {
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for _, v := range row {
		sum += math.Exp(v - max)
	}
	return row[len(row)-1] - max - math.Log(sum)
}

// Standard pipelines: the routers the fleet experiment and the serving
// daemon expose by name.

// LeastLoadedPipeline spreads jobs by committed work.
func LeastLoadedPipeline() *Pipeline {
	return NewPipeline("least-loaded",
		[]Filter{CapacityFilter{}},
		[]WeightedScorer{{LeastLoaded{}, 1}})
}

// BinpackPipeline packs tight fits, preserving wide free blocks.
func BinpackPipeline() *Pipeline {
	return NewPipeline("binpack",
		[]Filter{CapacityFilter{}},
		[]WeightedScorer{{Binpack{}, 1}})
}

// RLPipeline routes with the policy network's marginal-impact score,
// stabilized by a queue-wait prior (the net knows the queue it would join;
// the prior breaks near-ties toward emptier clusters).
func RLPipeline(net nn.PolicyNet) (*Pipeline, error) {
	rl, err := NewRLScorer(net)
	if err != nil {
		return nil, err
	}
	return NewPipeline("rl-scored",
		[]Filter{CapacityFilter{}},
		[]WeightedScorer{{rl, 2}, {QueueWait{}, 1}}), nil
}
