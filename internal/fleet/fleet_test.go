package fleet

import (
	"math"
	"math/rand"
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func lublinStream(t *testing.T, n int, seed int64) []*job.Job {
	t.Helper()
	tr := trace.Preset("Lublin-1", n+64, seed)
	rng := rand.New(rand.NewSource(seed))
	return tr.SampleWindow(rng, n)
}

func cloneStream(stream []*job.Job) []*job.Job {
	out := make([]*job.Job, len(stream))
	for i, j := range stream {
		out[i] = j.Clone()
	}
	return out
}

// TestSingleMemberParityWithSimRun is the correctness anchor of the
// time-sync machinery: a fleet of one cluster must schedule exactly like
// sim.Run on the same sequence — same per-job start times, same metrics —
// for every policy and backfilling discipline.
func TestSingleMemberParityWithSimRun(t *testing.T) {
	stream := lublinStream(t, 200, 7)
	cases := []struct {
		name     string
		sched    func() sim.Scheduler
		backfill bool
	}{
		{"FCFS", func() sim.Scheduler { return sched.FCFS() }, false},
		{"SJF", func() sim.Scheduler { return sched.SJF() }, false},
		{"SJF+backfill", func() sim.Scheduler { return sched.SJF() }, true},
		{"F1+backfill", func() sim.Scheduler { return sched.F1() }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := sim.Config{Processors: 256, Backfill: tc.backfill, MaxObserve: 32}

			ref := sim.New(cfg)
			refStream := cloneStream(stream)
			if err := ref.Load(refStream); err != nil {
				t.Fatal(err)
			}
			refRes, err := ref.Run(tc.sched())
			if err != nil {
				t.Fatal(err)
			}

			f, err := New([]MemberConfig{{Name: "solo", Sim: cfg, Scheduler: tc.sched()}},
				LeastLoadedPipeline())
			if err != nil {
				t.Fatal(err)
			}
			fleetStream := cloneStream(stream)
			res, err := f.Run(fleetStream)
			if err != nil {
				t.Fatal(err)
			}

			for i := range refStream {
				if refStream[i].StartTime != fleetStream[i].StartTime {
					t.Fatalf("job %d: sim.Run starts at %g, fleet starts at %g",
						i, refStream[i].StartTime, fleetStream[i].StartTime)
				}
			}
			for _, k := range []metrics.Kind{metrics.BoundedSlowdown, metrics.Utilization} {
				if a, b := metrics.Value(k, refRes), metrics.Value(k, res.Fleet); a != b {
					t.Fatalf("%v: sim.Run %g, fleet %g", k, a, b)
				}
			}
		})
	}
}

func heteroMembers() []MemberConfig {
	return []MemberConfig{
		{Name: "large", Sim: sim.Config{Processors: 256, MaxObserve: 32}, Scheduler: sched.SJF()},
		{Name: "mid", Sim: sim.Config{Processors: 128, MaxObserve: 32}, Scheduler: sched.SJF()},
		{Name: "small", Sim: sim.Config{Processors: 64, MaxObserve: 32}, Scheduler: sched.SJF()},
	}
}

// TestCapacityRouting: jobs wider than the small clusters must always land
// on the one cluster that can run them, whatever the router.
func TestCapacityRouting(t *testing.T) {
	routers := []Router{NewRandom(1), NewRoundRobin(), LeastLoadedPipeline(), BinpackPipeline()}
	stream := lublinStream(t, 300, 11)
	for _, r := range routers {
		f, err := New(heteroMembers(), r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(cloneStream(stream))
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		for i, j := range stream {
			k := res.Assignments[i]
			limit := f.members[k].cfg.Processors
			if j.RequestedProcs > limit {
				t.Fatalf("%s: job %d (%d procs) routed to %d-proc cluster",
					r.Name(), i, j.RequestedProcs, limit)
			}
		}
		total := 0
		for _, c := range res.Clusters {
			total += c.Placements
		}
		if total != len(stream) {
			t.Fatalf("%s: %d placements for %d jobs", r.Name(), total, len(stream))
		}
	}
}

// TestRunDeterminism: identical seeds and streams must yield identical
// assignments for every router, run-to-run.
func TestRunDeterminism(t *testing.T) {
	stream := lublinStream(t, 250, 3)
	rng := rand.New(rand.NewSource(9))
	net := nn.NewKernelNet(rng, 32, sim.JobFeatures, nil)
	build := func() []Router {
		rl, err := RLPipeline(net)
		if err != nil {
			t.Fatal(err)
		}
		return []Router{NewRandom(5), NewRoundRobin(), LeastLoadedPipeline(), BinpackPipeline(), rl}
	}
	first, second := build(), build()
	for i := range first {
		fa, err := New(heteroMembers(), first[i])
		if err != nil {
			t.Fatal(err)
		}
		fb, err := New(heteroMembers(), second[i])
		if err != nil {
			t.Fatal(err)
		}
		ra, err := fa.Run(cloneStream(stream))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := fb.Run(cloneStream(stream))
		if err != nil {
			t.Fatal(err)
		}
		for k := range ra.Assignments {
			if ra.Assignments[k] != rb.Assignments[k] {
				t.Fatalf("%s: job %d routed to %d then %d",
					first[i].Name(), k, ra.Assignments[k], rb.Assignments[k])
			}
		}
	}
}

// TestPipelinePlaceScored pins the normalization and tie-break semantics.
func TestPipelinePlaceScored(t *testing.T) {
	mk := func(total, free int, pendingWork float64) *Candidate {
		return &Candidate{
			View:        sim.ClusterView{FreeProcs: free, TotalProcs: total},
			PendingWork: pendingWork,
		}
	}
	cands := []*Candidate{mk(64, 64, 0), mk(256, 256, 0), mk(128, 0, 5000)}
	for i, c := range cands {
		c.Index = i
	}
	j := job.New(1, 0, 100, 96, 100)

	p := LeastLoadedPipeline()
	scores := make([]float64, len(cands))
	pick := p.PlaceScored(j, cands, scores)
	if pick != 1 {
		t.Fatalf("96-proc job picked cluster %d, want the idle 256", pick)
	}
	if !math.IsNaN(scores[0]) {
		t.Fatal("infeasible 64-proc cluster must score NaN")
	}
	if math.IsNaN(scores[1]) || math.IsNaN(scores[2]) {
		t.Fatal("feasible clusters must carry scores")
	}
	if scores[1] < scores[2] {
		t.Fatal("idle cluster must outscore the loaded one")
	}

	// All filtered out → -1.
	tiny := []*Candidate{mk(8, 8, 0)}
	if got := p.Place(j, tiny); got != -1 {
		t.Fatalf("infeasible everywhere must return -1, got %d", got)
	}

	// Perfect tie → lowest index wins.
	ties := []*Candidate{mk(256, 256, 0), mk(256, 256, 0)}
	if got := p.Place(j, ties); got != 0 {
		t.Fatalf("tie must break to the lowest index, got %d", got)
	}
}

// TestBinpackPrefersTightFit: binpack keeps the big free block intact.
func TestBinpackPrefersTightFit(t *testing.T) {
	cands := []*Candidate{
		{Index: 0, View: sim.ClusterView{FreeProcs: 256, TotalProcs: 256}},
		{Index: 1, View: sim.ClusterView{FreeProcs: 16, TotalProcs: 128}},
	}
	j := job.New(1, 0, 100, 8, 100)
	if got := BinpackPipeline().Place(j, cands); got != 1 {
		t.Fatalf("binpack picked %d, want the tight 16-free fit", got)
	}
	if got := LeastLoadedPipeline().Place(j, cands); got != 0 {
		t.Fatalf("least-loaded picked %d, want the idle cluster", got)
	}
}

// TestRoundRobinSkipsInfeasible: the rotation must pass over clusters the
// job cannot fit without stalling.
func TestRoundRobinSkipsInfeasible(t *testing.T) {
	r := NewRoundRobin()
	cands := []*Candidate{
		{Index: 0, View: sim.ClusterView{FreeProcs: 64, TotalProcs: 64}},
		{Index: 1, View: sim.ClusterView{FreeProcs: 256, TotalProcs: 256}},
	}
	wide := job.New(1, 0, 100, 128, 100)
	narrow := job.New(2, 0, 100, 4, 100)
	if got := r.Place(wide, cands); got != 1 {
		t.Fatalf("wide job placed on %d, want 1", got)
	}
	if got := r.Place(narrow, cands); got != 0 {
		t.Fatalf("rotation should wrap to 0, got %d", got)
	}
	if got := r.Place(narrow, cands); got != 1 {
		t.Fatalf("rotation should continue to 1, got %d", got)
	}
}

// TestBacklogFilter: a full queue makes a cluster infeasible.
func TestBacklogFilter(t *testing.T) {
	f := BacklogFilter{Max: 4}
	j := job.New(1, 0, 100, 1, 100)
	if f.Feasible(j, &Candidate{Pending: 4}) {
		t.Fatal("backlog at the cap must be infeasible")
	}
	if !f.Feasible(j, &Candidate{Pending: 3}) {
		t.Fatal("backlog under the cap must pass")
	}
	if !(BacklogFilter{}).Feasible(j, &Candidate{Pending: 1 << 20}) {
		t.Fatal("zero cap means unlimited")
	}
}

// TestRLScorerShape: the scorer must emit finite log-probabilities, favour
// no cluster when states are identical, and stay batch-order invariant.
func TestRLScorerShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := nn.NewKernelNet(rng, 16, sim.JobFeatures, nil)
	rl, err := NewRLScorer(net)
	if err != nil {
		t.Fatal(err)
	}
	queue := lublinStream(t, 10, 2)
	mk := func(free int) *Candidate {
		return &Candidate{
			View:    sim.ClusterView{FreeProcs: free, TotalProcs: 256},
			Visible: queue,
			Pending: len(queue),
		}
	}
	j := job.New(99, 0, 300, 8, 300)
	cands := []*Candidate{mk(256), mk(32), mk(0)}
	out := make([]float64, len(cands))
	rl.Score(j, cands, out)
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) || v > 0 {
			t.Fatalf("score %d = %g, want a finite log-probability", i, v)
		}
	}
	// Reversing the batch must reverse the scores (no cross-state leakage).
	rev := []*Candidate{cands[2], cands[1], cands[0]}
	outRev := make([]float64, len(rev))
	rl.Score(j, rev, outRev)
	for i := range out {
		if out[i] != outRev[len(out)-1-i] {
			t.Fatalf("batch order changed score %d: %g vs %g", i, out[i], outRev[len(out)-1-i])
		}
	}
	// Identical states must tie exactly.
	same := []*Candidate{mk(64), mk(64)}
	outSame := make([]float64, 2)
	rl.Score(j, same, outSame)
	if outSame[0] != outSame[1] {
		t.Fatalf("identical clusters scored %g vs %g", outSame[0], outSame[1])
	}
}

// TestNewValidation covers fleet construction errors.
func TestNewValidation(t *testing.T) {
	if _, err := New(nil, NewRoundRobin()); err == nil {
		t.Fatal("empty fleet must error")
	}
	m := heteroMembers()
	if _, err := New(m, nil); err == nil {
		t.Fatal("nil router must error")
	}
	dup := []MemberConfig{m[0], m[0]}
	if _, err := New(dup, NewRoundRobin()); err == nil {
		t.Fatal("duplicate names must error")
	}
	noSched := []MemberConfig{{Name: "x", Sim: sim.Config{Processors: 8}}}
	if _, err := New(noSched, NewRoundRobin()); err == nil {
		t.Fatal("missing scheduler must error")
	}
}

// TestRunErrors covers stream validation.
func TestRunErrors(t *testing.T) {
	f, err := New(heteroMembers(), NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(nil); err == nil {
		t.Fatal("empty stream must error")
	}
	out := []*job.Job{job.New(1, 100, 60, 2, 60), job.New(2, 50, 60, 2, 60)}
	if _, err := f.Run(out); err == nil {
		t.Fatal("out-of-order stream must error")
	}
	wide := []*job.Job{job.New(1, 0, 60, 512, 60)}
	if _, err := f.Run(wide); err == nil {
		t.Fatal("a job fitting no cluster must error")
	}
}
