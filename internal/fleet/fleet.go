// Package fleet is the placement layer above the per-cluster schedulers:
// it routes one global arrival stream across many simulated clusters, each
// running its own scheduling policy (a trained kernel network or a
// heuristic). The first decision for an arriving job is *which cluster
// gets it* — made by a Router, typically a filter/score plugin Pipeline
// mirroring the predicate/priority split of cluster placement schedulers —
// and only then does the chosen cluster's own policy decide *when it
// runs*. The fleet simulator time-synchronizes the member clusters against
// the global clock: every member is advanced to an arrival's submit
// instant before the placement decision reads its state, so routers see
// the load each cluster genuinely has at that moment.
package fleet

import (
	"fmt"
	"sort"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/obs"
	"rlsched/internal/sim"
)

// Candidate is one member cluster's state at a placement instant — the
// view Filter and Scorer plugins consume.
type Candidate struct {
	// The resource and load fields lead the struct so the capacity-filter
	// and load-scorer passes — which stride the fleet's contiguous
	// candidate store at every placement — touch as few cache lines per
	// candidate as possible.

	// View is the member's resource state.
	View sim.ClusterView
	// Pending is the full backlog length.
	Pending int
	// PendingWork is Σ requested_time·procs over the backlog;
	// RunningWork is the committed remaining work area of running jobs.
	PendingWork float64
	RunningWork float64
	// Now is the member's clock (the global placement instant). Routers
	// that never read it can declare the ClockFree capability.
	Now float64
	// Index is the member's position in the fleet.
	Index int
	// Name identifies the cluster in results and metrics.
	Name string
	// Visible is the member's scheduler-visible pending queue (FCFS order).
	Visible []*job.Job
	// Draining reports the member has been announced for drain (churn.go):
	// it still serves, but its capacity is leaving — churn-aware scorers
	// (AvoidDraining) steer new work elsewhere. A retired member never
	// appears feasible at all: its View is zeroed, so the capacity filter
	// rejects it everywhere.
	Draining bool
	// DrainTime is the announced retirement instant of a draining member
	// (the deadline the drain or failure fires at), 0 when none was
	// announced. Deadline-aware churn plugins (AvoidDraining) compare it
	// against Now to keep using the member for work that safely completes
	// before the capacity leaves.
	DrainTime float64
	// Evicting distinguishes the severity of an announced retirement:
	// true for a failure warning (running jobs will be killed at DrainTime,
	// losing their progress), false for a graceful drain (running jobs
	// finish; only pending work is re-placed). Churn plugins penalize work
	// on evicting members — placing on a graceful drainer costs at most a
	// cheap re-place.
	Evicting bool
	// Attrs are the member's static placement attributes (class, failure
	// domain, taints) consumed by the constraint plugins (constraints.go).
	Attrs MemberAttrs
}

// Router picks the cluster an arriving job is routed to, returning an
// index into cands or -1 when no cluster is feasible. Routers must be
// deterministic given their own construction (seed) and the call sequence.
type Router interface {
	Name() string
	Place(j *job.Job, cands []*Candidate) int
}

// ExplainingRouter is a Router that can also report the per-candidate
// evidence behind a decision — filter verdicts, normalized plugin scores,
// totals, tie-breaks — into an obs.Explain. Pipeline implements it; the
// unscored baselines (random, round-robin) do not, so their recorded
// decisions carry no candidate table.
type ExplainingRouter interface {
	Router
	// PlaceExplained is Place that additionally fills ex (and scores, when
	// non-nil) with the decision evidence. The pick must be identical to
	// Place for the same inputs.
	PlaceExplained(j *job.Job, cands []*Candidate, scores []float64, ex *obs.Explain) int
}

// MemberConfig declares one fleet member: a cluster configuration and the
// scheduling policy that orders its local queue.
type MemberConfig struct {
	Name      string
	Sim       sim.Config
	Scheduler sim.Scheduler
	// Attrs are the member's static placement attributes for constraint
	// plugins (constraints.go). The zero value is unconstrained.
	Attrs MemberAttrs
}

// member wraps a simulator driven through the incremental stepping
// surface. committed is the job the local policy has chosen and is
// waiting to start — exactly the job sim.Schedule would be blocking on.
// movedIn/movedOut count migration moves into and out of the member.
// doneCursor marks how much of the member's completion log has already
// been fed to stateful scorers.
type member struct {
	name       string
	cfg        sim.Config
	sim        *sim.Simulator
	sched      sim.Scheduler
	committed  *job.Job
	placements int
	movedIn    int
	movedOut   int
	doneCursor int
	// stamp versions the member's entry in the fleet event heap (heap.go):
	// entries pushed under an older stamp are stale.
	stamp uint64
	// syncs counts syncTo calls on this member — the step-counting hook
	// the idle-members regression test asserts on. Written by at most one
	// goroutine at a time (stepWake blocks are disjoint).
	syncs int
	// attrs are the member's static placement attributes (constraints.go).
	attrs MemberAttrs
	// state is the run-scoped churn lifecycle state (churn.go); gone marks
	// a permanently drained member (Fleet.Drain), which starts every run
	// retired; transient marks a member a ChurnPlan joined mid-run, removed
	// again at the next reset.
	state     memberState
	gone      bool
	transient bool
	// drainAt is the announced retirement instant while state is
	// stateDraining (run-scoped, mirrored into Candidate.DrainTime);
	// evicting marks the announcement as a failure warning (running jobs
	// die at drainAt) rather than a graceful drain.
	drainAt  float64
	evicting bool
}

// pump applies local scheduling decisions at the current instant without
// advancing time: pick (when uncommitted), start when possible, backfill
// while the committed job waits. Together with the event loop in syncTo
// this reproduces sim.Run's semantics exactly — the single-member parity
// test pins that equivalence.
func (m *member) pump() error {
	for {
		if m.committed == nil {
			vis := m.sim.Visible()
			if len(vis) == 0 {
				return nil
			}
			idx := m.sched.Pick(vis, m.sim.Now(), m.sim.View())
			if idx < 0 || idx >= len(vis) {
				idx = 0
			}
			m.committed = vis[idx]
		}
		if m.sim.CanStartNow(m.committed) {
			if err := m.sim.StartNow(m.committed); err != nil {
				return fmt.Errorf("fleet: %s: %w", m.name, err)
			}
			m.committed = nil
			continue
		}
		m.sim.BackfillNow(m.committed)
		if !m.sim.CanStartNow(m.committed) {
			return nil
		}
	}
}

// syncTo advances the member to global time t, applying scheduling
// decisions at every internal event (completions) on the way.
func (m *member) syncTo(t float64) error {
	for {
		if err := m.pump(); err != nil {
			return err
		}
		et, ok := m.sim.NextEventTime()
		if !ok || et > t {
			break
		}
		m.sim.AdvanceClock(et)
	}
	m.sim.AdvanceClock(t)
	return m.pump()
}

// drain runs the member to completion after the last global arrival.
func (m *member) drain() error {
	for {
		if err := m.pump(); err != nil {
			return err
		}
		et, ok := m.sim.NextEventTime()
		if !ok {
			if m.committed != nil {
				return fmt.Errorf("fleet: %s: job %d (%d procs) can never start",
					m.name, m.committed.ID, m.committed.RequestedProcs)
			}
			return nil
		}
		m.sim.AdvanceClock(et)
	}
}

// Fleet routes a job stream across member clusters.
type Fleet struct {
	members []*member
	router  Router
	cands   []*Candidate
	migCfg  *MigrationConfig
	// samCfg enables periodic health sampling (sample.go; nil = off, the
	// zero-cost default).
	samCfg *SamplingConfig
	// stateful lists the router's StateScorers (empty for stateless
	// routers): reset per run and fed member completions before every
	// placement and re-placement decision.
	stateful []StateScorer
	// assignObs lists the router's AssignObservers (constraints.go), fed
	// every successful routing decision; empty for almost all routers.
	assignObs []AssignObserver
	// churnPlan schedules mid-run membership changes (churn.go; nil = off,
	// the zero-cost default); baseN is the permanent member count runs
	// reset to (mid-run joins are transient); lastChurn retains the most
	// recent run's churn controller for white-box tests.
	churnPlan ChurnPlan
	baseN     int
	lastChurn *churner
	// lastMig retains the most recent run's migration controller state for
	// white-box invariant tests.
	lastMig *migrator
	// rec is the attached observability recorder (nil = disabled); explain
	// and placeEvt are its reused emission buffers.
	rec      obs.Recorder
	explain  obs.Explain
	placeEvt obs.PlacementDecision

	// Event-heap stepping state (heap.go). candStore is the contiguous
	// backing array of cands; sims mirrors members for pointer-chase-free
	// hot loops; active[i] records whether member i holds allocations.
	// fullSweep selects the pre-heap reference path and workers the
	// parallel-stepping width (parallel.go).
	fullSweep bool
	workers   int
	// clockFree records that the router declared (via the ClockFree
	// capability) that it never reads Candidate.Now, letting candidatesAt
	// skip the fleet-wide clock refresh.
	clockFree bool
	events    eventHeap
	wake      []int
	sims      []*sim.Simulator
	candStore []Candidate
	active    []bool
	dirtyFlag []bool
	dirtyList []int
	obsFlag   []bool
	obsList   []int
}

// New assembles a fleet. Members must have distinct names.
func New(members []MemberConfig, router Router) (*Fleet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: need at least one member")
	}
	if router == nil {
		return nil, fmt.Errorf("fleet: need a router")
	}
	f := &Fleet{router: router}
	seen := map[string]bool{}
	for i, mc := range members {
		if mc.Name == "" {
			mc.Name = fmt.Sprintf("cluster-%d", i)
		}
		if seen[mc.Name] {
			return nil, fmt.Errorf("fleet: duplicate member name %q", mc.Name)
		}
		seen[mc.Name] = true
		if mc.Scheduler == nil {
			return nil, fmt.Errorf("fleet: member %q needs a scheduler", mc.Name)
		}
		f.members = append(f.members, &member{
			name:  mc.Name,
			cfg:   mc.Sim,
			sim:   sim.New(mc.Sim),
			sched: mc.Scheduler,
			attrs: mc.Attrs,
		})
	}
	n := len(f.members)
	f.baseN = n
	f.candStore = make([]Candidate, n)
	f.sims = make([]*sim.Simulator, n)
	f.active = make([]bool, n)
	f.dirtyFlag = make([]bool, n)
	f.obsFlag = make([]bool, n)
	for i, m := range f.members {
		f.candStore[i] = Candidate{Index: i, Name: m.name, Attrs: m.attrs}
		f.cands = append(f.cands, &f.candStore[i])
		f.sims[i] = m.sim
	}
	if sp, ok := router.(interface{ StateScorers() []StateScorer }); ok {
		f.stateful = sp.StateScorers()
	}
	if ap, ok := router.(interface{ AssignObservers() []AssignObserver }); ok {
		f.assignObs = ap.AssignObservers()
	}
	if cf, ok := router.(ClockFree); ok && cf.ClockFree() {
		f.clockFree = true
	}
	return f, nil
}

// EnableMigration turns on cross-cluster re-placement of pending jobs for
// subsequent Runs (see migrate.go and DESIGN.md §7). The fleet's router
// must be a ScoredRouter — migration needs score margins, not just picks.
func (f *Fleet) EnableMigration(cfg MigrationConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if _, ok := f.router.(ScoredRouter); !ok {
		return fmt.Errorf("fleet: router %s cannot drive migration (no per-candidate scores)",
			f.router.Name())
	}
	f.migCfg = &cfg
	return nil
}

// SetRecorder attaches an observability recorder to subsequent Runs (nil
// detaches): the fleet emits one obs.PlacementDecision per routed job
// (with the full per-plugin score table when the router is an
// ExplainingRouter), the migration controller emits one obs.MigrationProbe
// per considered job, stateful fairness scorers emit obs.FairnessSnapshots
// before each decision, and every member simulator emits cluster-tagged
// job lifecycle events. Recording is strictly passive: run results are
// byte-identical with and without a recorder (pinned by parity tests).
func (f *Fleet) SetRecorder(r obs.Recorder) {
	f.rec = r
	for _, m := range f.members {
		m.sim.SetRecorder(r, m.name)
	}
}

// fairReporter is the optional aggregate-report surface of a stateful
// scorer (FairnessScorer implements it); recorded runs snapshot it before
// every placement decision.
type fairReporter interface {
	Report() metrics.FairnessReport
}

// placeRecorded is the traced twin of `f.router.Place(j, cands)`: same
// pick, plus one FairnessSnapshot per reporting stateful scorer and one
// PlacementDecision into the recorder.
func (f *Fleet) placeRecorded(j *job.Job, cands []*Candidate) int {
	for _, s := range f.stateful {
		if fr, ok := s.(fairReporter); ok {
			snap := obs.FairnessSnapshot{Time: j.SubmitTime, Report: fr.Report()}
			f.rec.Fairness(&snap)
		}
	}
	d := &f.placeEvt
	*d = obs.PlacementDecision{
		Time:   j.SubmitTime,
		Router: f.router.Name(),
		Job:    obs.Ref(j),
	}
	var k int
	if er, ok := f.router.(ExplainingRouter); ok {
		k = er.PlaceExplained(j, cands, nil, &f.explain)
		d.TieBreak = f.explain.TieBreak
		d.Candidates = f.explain.Candidates
	} else {
		k = f.router.Place(j, cands)
	}
	d.Winner = k
	if k >= 0 && k < len(f.members) {
		d.Cluster = f.members[k].name
	}
	f.rec.Placement(d)
	return k
}

// reset returns every member to an idle cluster at t=0 and clears all
// stateful-scorer and event-heap state (a Fleet is reusable across Runs).
// Members a ChurnPlan joined mid-run are transient and dropped here (the
// per-member arrays shrink back to the permanent prefix, so the cached
// candidate pointers stay valid); permanently drained members (Drain)
// start the run retired.
func (f *Fleet) reset() error {
	f.events = f.events[:0]
	f.wake = f.wake[:0]
	f.dirtyList = f.dirtyList[:0]
	f.obsList = f.obsList[:0]
	if len(f.members) > f.baseN {
		f.members = f.members[:f.baseN]
		f.candStore = f.candStore[:f.baseN]
		f.cands = f.cands[:f.baseN]
		f.sims = f.sims[:f.baseN]
		f.active = f.active[:f.baseN]
		f.dirtyFlag = f.dirtyFlag[:f.baseN]
		f.obsFlag = f.obsFlag[:f.baseN]
	}
	for i, m := range f.members {
		m.state = stateActive
		m.drainAt = 0
		m.evicting = false
		if m.gone {
			m.state = stateRetired
		}
		if err := m.sim.Load(nil); err != nil {
			return err
		}
		m.committed = nil
		m.placements = 0
		m.movedIn = 0
		m.movedOut = 0
		m.doneCursor = 0
		m.stamp++
		m.syncs = 0
		f.active[i] = false
		f.obsFlag[i] = false
		f.dirtyFlag[i] = false
		f.markDirty(i)
	}
	for _, s := range f.stateful {
		s.Reset()
	}
	return nil
}

// observeCompletions feeds every completion since the last call to the
// stateful scorers, members in index order, each member's completions in
// completion order — a deterministic stream, so stateful placement is
// reproducible run-to-run. Only members marked observation-pending
// (markObs — the ones an advance actually woke) are read: a member no
// event touched cannot have new completions, so the stream is identical
// to scanning the whole fleet.
func (f *Fleet) observeCompletions() {
	if len(f.stateful) == 0 || len(f.obsList) == 0 {
		return
	}
	sort.Ints(f.obsList)
	for _, i := range f.obsList {
		m := f.members[i]
		log := m.sim.Completions()
		for _, j := range log[m.doneCursor:] {
			for _, s := range f.stateful {
				s.Observe(i, j)
			}
		}
		m.doneCursor = len(log)
		f.obsFlag[i] = false
	}
	f.obsList = f.obsList[:0]
}

// ClusterResult is one member's share of a fleet run.
type ClusterResult struct {
	// Name and Processors identify the member.
	Name       string
	Processors int
	// Placements counts the jobs the router assigned here at arrival.
	Placements int
	// MovedIn / MovedOut count cross-cluster moves into and out of the
	// member: migration-sweep moves plus churn-forced re-placements
	// (zero when both migration and churn are disabled).
	MovedIn  int
	MovedOut int
	// Result is the member's scheduling result; its migration fields
	// cover the migrated jobs that finally ran here.
	Result metrics.Result
}

// Result is a finished fleet run: per-cluster results plus the fleet-wide
// merge and the per-job routing decisions.
type Result struct {
	Clusters []ClusterResult
	// Fleet merges the member results (metrics.Merge): job-averaged
	// metrics span every job; utilization is processor-weighted.
	Fleet metrics.Result
	// Assignments[i] is the member index stream job i was routed to.
	Assignments []int
	// Churn summarizes the membership changes the run executed (zero
	// without a churn plan).
	Churn ChurnStats
}

// Run routes the submit-ordered stream across the fleet and schedules
// every member to completion. The stream's jobs are owned by the run
// (pass freshly cloned windows, e.g. trace.Window). Placement is strictly
// serial in arrival order, so results are deterministic for deterministic
// routers and member policies regardless of how the surrounding code is
// parallelized. With migration enabled (EnableMigration), re-placement
// sweeps interleave with arrivals and continue while the backlog drains;
// with it disabled, Run follows the exact pre-migration code path.
func (f *Fleet) Run(stream []*job.Job) (*Result, error) {
	if len(stream) == 0 {
		return nil, fmt.Errorf("fleet: empty stream")
	}
	if err := f.reset(); err != nil {
		return nil, err
	}
	var mig *migrator
	if f.migCfg != nil {
		mig = newMigrator(*f.migCfg, f.router.(ScoredRouter), stream[0].SubmitTime)
		mig.rec = f.rec
	}
	f.lastMig = mig
	var sam *sampler
	if f.samCfg != nil {
		sam = f.newSampler(stream[0].SubmitTime)
	}
	var ch *churner
	if f.churnPlan != nil {
		ch = newChurner(f.churnPlan)
	}
	f.lastChurn = ch
	assignments := make([]int, len(stream))
	prev := stream[0].SubmitTime
	for i, j := range stream {
		if j.SubmitTime < prev {
			return nil, fmt.Errorf("fleet: stream job %d out of submit order", i)
		}
		prev = j.SubmitTime
		if sam != nil || ch != nil {
			// Guard inline: most arrivals fall between hooks, and the
			// hook-enabled path should cost them only these compares.
			if (sam != nil && sam.next <= j.SubmitTime) ||
				(mig != nil && mig.nextSweep <= j.SubmitTime) ||
				ch.due(j.SubmitTime) {
				if err := f.hooksUntil(mig, sam, ch, j.SubmitTime); err != nil {
					return nil, err
				}
			}
		} else if mig != nil {
			if err := f.sweepUntil(mig, j.SubmitTime); err != nil {
				return nil, err
			}
		}
		if err := f.advanceMembers(j.SubmitTime); err != nil {
			return nil, err
		}
		f.observeCompletions()
		cands := f.candidatesAt(j.SubmitTime)
		var k int
		if f.rec != nil {
			k = f.placeRecorded(j, cands)
		} else {
			k = f.router.Place(j, cands)
		}
		if k < 0 || k >= len(f.members) || f.members[k].state == stateRetired {
			// Run has no fleet-level holding queue: a router that
			// declines a job (capacity, or a transient condition like a
			// BacklogFilter with every queue full) aborts the run.
			// Admission control belongs to the caller — the serving
			// /place endpoint answers 422 and keeps going. A retired
			// member is unreachable for well-formed routers (its zeroed
			// View fails the capacity filter); the guard catches custom
			// routers that ignore candidate state.
			return nil, fmt.Errorf("fleet: router %s declined job %d (%d procs): no feasible cluster at placement time",
				f.router.Name(), j.ID, j.RequestedProcs)
		}
		m := f.members[k]
		// The picked member may not have been woken: bring its clock to
		// the arrival instant first. It has no events due (those woke it),
		// so this fires nothing, and the pre-submit pump the full sweep
		// used to run is a no-op at fixpoint — Submit is the state change.
		m.sim.AdvanceClock(j.SubmitTime)
		if err := m.sim.Submit(j); err != nil {
			return nil, fmt.Errorf("fleet: route to %s: %w", m.name, err)
		}
		m.placements++
		assignments[i] = k
		f.observeAssign(k, j)
		if err := m.pump(); err != nil {
			return nil, err
		}
		f.markDirty(k)
		f.touch(k)
	}
	res := &Result{Assignments: assignments}
	// Utilization must be measured over one shared fleet horizon: a
	// member whose first routed job arrives late (or that runs dry
	// early) would otherwise report its busy fraction over a shorter
	// private window and bias the processor-weighted merge. The horizon
	// end is the last fleet event (tracked while draining off the heap —
	// a member the drain never woke has been idle since before the last
	// arrival), or the last arrival itself on an event-free tail.
	start := stream[0].SubmitTime
	end := prev
	var drainEnd float64
	var err error
	switch {
	case sam != nil || ch != nil:
		drainEnd, err = f.drainHooked(mig, sam, ch)
	case mig != nil:
		drainEnd, err = f.drainMigrating(mig)
	default:
		drainEnd, err = f.drainAll()
	}
	if err != nil {
		return nil, err
	}
	if drainEnd > end {
		end = drainEnd
	}
	if sam != nil {
		// Close every trajectory at the shared fleet horizon (a pure
		// read: the clock moves it performs are the same ones the final
		// pass below does anyway).
		sam.finalSample(f, end, mig)
	}
	results := make([]metrics.Result, len(f.members))
	procs := make([]int, len(f.members))
	for i, m := range f.members {
		if m.committed != nil {
			return nil, fmt.Errorf("fleet: %s: job %d (%d procs) can never start",
				m.name, m.committed.ID, m.committed.RequestedProcs)
		}
		m.sim.AdvanceClock(end)
		results[i] = m.sim.Result()
		results[i].Utilization = m.sim.UtilizationOver(start, end)
		procs[i] = m.cfg.Processors
		if m.gone {
			// A permanently drained member advertised no capacity this
			// run; weighting its idle processors into the merge would
			// deflate fleet utilization below what the serving capacity
			// actually delivered.
			procs[i] = 0
		}
	}
	if mig != nil {
		mig.fillMigrationMetrics(results)
	}
	for i, m := range f.members {
		res.Clusters = append(res.Clusters, ClusterResult{
			Name:       m.name,
			Processors: m.cfg.Processors,
			Placements: m.placements,
			MovedIn:    m.movedIn,
			MovedOut:   m.movedOut,
			Result:     results[i],
		})
	}
	res.Fleet = metrics.Merge(results, procs)
	if ch != nil {
		res.Churn = ChurnStats{Joins: ch.joins, Drains: ch.drains, Fails: ch.fails, Forced: ch.forced}
	}
	return res, nil
}
