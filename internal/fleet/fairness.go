package fleet

import (
	"math"
	"sort"
	"sync"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
)

// Fleet-wide fairness plugin (DESIGN.md §8). The paper's §V-F fairness
// goal is per-cluster; routed across a fleet, one user's jobs can be
// starved on every member while each member's own FairMaxBoundedSlowdown
// looks healthy. FairnessScorer is the placement-layer lever: it tracks
// every user's realized bounded slowdown per cluster — updated
// incrementally as members complete jobs — blends that with the live
// pending queues, and biases placement three ways, each in proportion to
// how far the user's service runs from every OTHER user's:
//
//  1. Rescue: a deprived user's jobs are steered onto clusters that can
//     start them immediately (free capacity, empty queue).
//  2. Yield: a privileged user's jobs are steered OFF immediately
//     available capacity, leaving it for the deprived.
//  3. Repulsion: clusters where this user's completed jobs fared worse
//     than their own average are penalized, steering the user away from
//     the member that is structurally bad for their job mix instead of
//     re-queueing them behind the same backlog.
//
// The same scorer instance also repairs fairness during migration sweeps:
// the migration controller re-scores pending jobs through the router
// pipeline, so a deprived user's stranded job clears the hysteresis margin
// toward a drained cluster exactly like a fresh arrival would.

// StateScorer is a Scorer that carries run-scoped state fed by the fleet:
// Reset starts a fresh run, Observe folds in a job some member finished.
// The fleet feeds completions in a deterministic order (members in index
// order, each member's completions in completion order), so stateful
// scoring stays reproducible run-to-run. Under event-heap stepping (§10)
// the feed reads only the log tails of members woken since the last
// placement — a member with no events cannot have completed anything —
// which is index-ordered over the wake list and therefore identical to
// the full scan the full-sweep reference performs.
type StateScorer interface {
	Scorer
	// Reset clears all accumulated state (a new Run starts).
	Reset()
	// Observe folds one completed job into the state. cluster is the
	// member index the job ran on.
	Observe(cluster int, j *job.Job)
}

// FairnessConfig parameterizes FairnessScorer. The zero value selects the
// defaults noted per field.
//
// Calibration matters more than any individual knob: the pipeline's
// per-plugin min-max normalization stretches whatever score differences a
// plugin emits to the full [0,1] range, so a fairness plugin that emitted
// *only* fairness terms would have its noise-level preferences amplified
// into full-strength routing overrides (measurably catastrophic: small
// clusters drown in rescued jobs). FairnessScorer therefore embeds the
// binpack signal as its baseline and adds fairness terms scaled by the
// user's deprivation — for an average user its ordering is exactly
// Binpack's, and the plugin can stand alone in a pipeline.
type FairnessConfig struct {
	// StartBoost scales the rescue term: how strongly a fully deprived
	// user's jobs prefer a cluster that can start them right now, on the
	// scale of the plugin's internal [0,1]-normalized load signal.
	// Default 3: full deprivation outbids any load difference.
	StartBoost float64
	// YieldPenalty scales the yield term — the rescue's mirror image: a
	// fully privileged user (served far better than everyone else) is
	// steered OFF clusters that could start their job immediately,
	// leaving drained capacity for the deprived instead of letting the
	// already-comfortable snap it up. Default 1.
	YieldPenalty float64
	// HistPenalty scales the repulsion term: how strongly a fully
	// deprived user avoids clusters that served them worse than their own
	// average. Default 1.
	HistPenalty float64
	// DepFloor is the user-mean / other-user-mean bounded-slowdown ratio
	// at which a user starts counting as deprived (and, mirrored, as
	// privileged). Default 2 — noise around the average triggers nothing.
	DepFloor float64
	// DepSpan is the ratio range over which deprivation ramps from 0 to
	// full strength above DepFloor. Default 2: a user at (DepFloor+2)×
	// the other-user mean is maximally deprived.
	DepSpan float64
	// RelCap caps the per-cluster history excess (cluster mean / user
	// mean − 1) that maps to a full-strength repulsion. Default 2.
	RelCap float64
	// MinObs is the minimum number of completed jobs a user needs on a
	// cluster before its history repels them (one unlucky job is not a
	// pattern). Default 2.
	MinObs int
	// DecayWindow, when positive, makes every tracked share an
	// exponentially decayed sum with an effective window of about this many
	// fleet-wide completions: each Observe multiplies all shares by
	// λ = 1 − 1/max(DecayWindow, 1) before folding the new job in. A
	// long-running daemon then answers "how is this user served NOW"
	// instead of averaging over its whole uptime — a user throttled for a
	// week stops looking privileged forever. 0 (the default) keeps the
	// full-history behavior, bit-for-bit.
	DecayWindow float64
}

func (c FairnessConfig) withDefaults() FairnessConfig {
	if c.StartBoost <= 0 {
		c.StartBoost = 3
	}
	if c.YieldPenalty <= 0 {
		c.YieldPenalty = 1
	}
	if c.HistPenalty <= 0 {
		c.HistPenalty = 1
	}
	if c.DepFloor <= 0 {
		c.DepFloor = 2
	}
	if c.DepSpan <= 0 {
		c.DepSpan = 2
	}
	if c.RelCap <= 0 {
		c.RelCap = 2
	}
	if c.MinObs <= 0 {
		c.MinObs = 2
	}
	return c
}

// userShare accumulates one user's realized bounded slowdown: fleet-wide
// and split per cluster. Counts are float64 because a decayed count is
// fractional (with DecayWindow off they hold exact integers).
type userShare struct {
	sum float64
	n   float64
	// raw counts the user's completed jobs undecayed: the decayed n is the
	// deprivation weight, raw is the factual "how many jobs has this user
	// finished" answer surfaces like /place's fairness block report.
	raw int64
	// byCluster maps member index → (sum, n) of the user's completed
	// bounded slowdowns there.
	clSum map[int]float64
	clN   map[int]float64
	// last is the fleet-wide completion count this share was last decayed
	// at: per-user decay is applied lazily, so an Observe touches one
	// user's maps, not every user's.
	last uint64
}

// FairnessScorer is the stateful fairness Score plugin. It is safe for
// concurrent use (the serving daemon scores and observes from concurrent
// requests); within a Fleet.Run all calls are serial and deterministic.
type FairnessScorer struct {
	cfg   FairnessConfig
	decay float64 // per-completion share multiplier; 1 = full history

	mu     sync.Mutex
	users  map[int]*userShare
	gSum   float64
	gN     float64
	events uint64 // fleet-wide completions observed (decay clock)
}

// NewFairnessScorer returns a fairness plugin with the config's defaults
// filled in.
func NewFairnessScorer(cfg FairnessConfig) *FairnessScorer {
	decay := 1.0
	if cfg.DecayWindow > 0 {
		w := cfg.DecayWindow
		if w < 1 {
			w = 1
		}
		decay = 1 - 1/w
	}
	return &FairnessScorer{cfg: cfg.withDefaults(), decay: decay, users: map[int]*userShare{}}
}

// syncLocked brings one user's lazily decayed shares up to the current
// decay clock. Callers hold f.mu. A no-op with decay off, so the
// full-history arithmetic is untouched.
func (f *FairnessScorer) syncLocked(u *userShare) {
	if f.decay >= 1 || u.last == f.events {
		u.last = f.events
		return
	}
	factor := math.Pow(f.decay, float64(f.events-u.last))
	u.sum *= factor
	u.n *= factor
	for k := range u.clSum {
		u.clSum[k] *= factor
	}
	for k := range u.clN {
		u.clN[k] *= factor
	}
	u.last = f.events
}

// shareEpsilon is the decayed job count below which a user's share counts
// as empty: it keeps a fully decayed-away user from reporting a 0/0 mean.
const shareEpsilon = 1e-9

// Name implements Scorer.
func (f *FairnessScorer) Name() string { return "fairness" }

// Reset implements StateScorer: all shares are dropped, as at the start of
// a fresh Fleet.Run.
func (f *FairnessScorer) Reset() {
	f.mu.Lock()
	f.users = map[int]*userShare{}
	f.gSum, f.gN = 0, 0
	f.events = 0
	f.mu.Unlock()
}

// RetireCluster implements ClusterRetirer: every user's per-cluster share
// on the retired member is dropped — the repulsion term must not keep
// penalizing (or the index, if reused by a later join, inherit) history
// from capacity that no longer exists. Fleet-wide shares keep the service
// record: the user *was* served there, and deprivation is measured
// fleet-wide.
func (f *FairnessScorer) RetireCluster(cluster int) {
	f.mu.Lock()
	for _, u := range f.users {
		delete(u.clSum, cluster)
		delete(u.clN, cluster)
	}
	f.mu.Unlock()
}

// bucket collapses unknown users (UserID < 0) into the -1 bucket, matching
// metrics.PerUser.
func bucket(uid int) int {
	if uid < 0 {
		return -1
	}
	return uid
}

// pendingBsld is the bounded slowdown a still-pending job is already
// committed to if it were started at now: wait so far plus its requested
// time, over max(requested, threshold). Only scheduler-visible attributes
// are read (requested time, never the actual runtime), so the live
// deprivation signal sees exactly what a production scheduler could.
func pendingBsld(j *job.Job, now float64) float64 {
	den := j.RequestedTime
	if den < metrics.BsldThreshold {
		den = metrics.BsldThreshold
	}
	if den <= 0 {
		return 1
	}
	s := (now - j.SubmitTime + j.RequestedTime) / den
	if s < 1 {
		return 1
	}
	return s
}

// Observe implements StateScorer: fold the completed job's bounded
// slowdown into its user's fleet-wide and per-cluster shares.
func (f *FairnessScorer) Observe(cluster int, j *job.Job) {
	if !j.Started() {
		return
	}
	b := j.BoundedSlowdown(metrics.BsldThreshold)
	f.mu.Lock()
	if f.decay < 1 {
		// Eager global decay (two scalars), lazy per-user decay (the one
		// share being touched syncs below).
		f.events++
		f.gSum *= f.decay
		f.gN *= f.decay
	}
	u := f.users[bucket(j.UserID)]
	if u == nil {
		u = &userShare{clSum: map[int]float64{}, clN: map[int]float64{}, last: f.events}
		f.users[bucket(j.UserID)] = u
	}
	f.syncLocked(u)
	u.sum += b
	u.n++
	u.raw++
	u.clSum[cluster] += b
	u.clN[cluster]++
	f.gSum += b
	f.gN++
	f.mu.Unlock()
}

// Score implements Scorer. The baseline is the binpack signal — the
// strongest load-aware placement heuristic on bursty narrow-job streams
// (start-now clusters first, tightest fit preferred, least-loaded queue as
// the fallback) — min-max normalized to [0,1] across the candidates
// inside the plugin; fairness terms perturb it in proportion to the
// user's deprivation or privilege. A user near the other-user average
// scores exactly like Binpack (same ordering, same ties), so the plugin
// is safe to run standalone: cold starts and average users degrade to
// packing rather than to noise-amplified steering.
func (f *FairnessScorer) Score(j *job.Job, cands []*Candidate, out []float64) {
	// out doubles as the baseline scratch: fill with binpack raws,
	// normalize, then overlay the fairness terms.
	Binpack{}.Score(j, cands, out)
	lo, hi := scoreBounds(out)
	if span := hi - lo; span > 0 {
		for i := range out {
			out[i] = (out[i] - lo) / span
		}
	} else {
		for i := range out {
			out[i] = 0
		}
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	u := f.users[bucket(j.UserID)]
	if u != nil {
		f.syncLocked(u)
	}
	// The deprivation signal blends two sources. Realized: the tracked
	// bounded slowdowns of completed jobs. Live: every pending job visible
	// in the candidates — plus the job being scored itself — counted at
	// the bounded slowdown it is already committed to (wait so far + its
	// requested time). Without the live half the plugin is blind exactly
	// where it matters: a user whose few jobs are all stuck in queues has
	// no completions to look deprived by, and a migration sweep re-scoring
	// a withdrawn stuck job would see its own victim vanish from the
	// queues it reads.
	now := j.SubmitTime
	for _, c := range cands {
		if c.Now > now {
			now = c.Now
		}
	}
	uSum, uN := 0.0, 0.0
	gSum, gN := f.gSum, f.gN
	if u != nil {
		uSum, uN = u.sum, u.n
	}
	me := bucket(j.UserID)
	uWork, gWork := 0.0, 0.0
	for _, c := range cands {
		for _, pj := range c.Visible {
			b := pendingBsld(pj, c.Now)
			w := pj.RequestedTime * float64(pj.RequestedProcs)
			gSum += b
			gN++
			gWork += w
			if bucket(pj.UserID) == me {
				uSum += b
				uN++
				uWork += w
			}
		}
	}
	// The scored job itself counts toward its user's service signal but
	// NOT toward the demand share below: one job is never its own
	// competition, and in a migration sweep it was just withdrawn from
	// the queues anyway.
	b := pendingBsld(j, now)
	gSum += b
	gN++
	uSum += b
	uN++
	userMean := uSum / float64(uN)
	// The comparator is the mean service of every OTHER user. Against a
	// whole-fleet mean a dominant user could never look deprived — their
	// own jobs ARE most of the average — which is backwards for the
	// heavy-user regime this plugin exists for.
	otherMean := 0.0
	if gN > uN {
		otherMean = (gSum - uSum) / float64(gN-uN)
	}
	// dep ∈ [0,1]: how far above DepFloor× the other-user average bounded
	// slowdown this user's service (realized + committed) runs, ramping
	// over DepSpan.
	dep := 0.0
	if otherMean > 0 && userMean > f.cfg.DepFloor*otherMean {
		dep = (userMean/otherMean - f.cfg.DepFloor) / f.cfg.DepSpan
		if dep > 1 {
			dep = 1
		}
		// Demand normalization: a user who owns most of the pending work
		// is not deprived, they are the cause — their self-inflicted
		// queueing must not trigger rescues that snap up the drained
		// capacity their victims need. Deprivation scales by the share of
		// pending work *not* theirs.
		if gWork > 0 {
			dep *= 1 - uWork/gWork
		}
	}
	// priv ∈ [0,1] is the mirror ramp: how far BELOW the other-user
	// average this user's service runs. A privileged user yields start-now
	// capacity to the deprived instead of snapping it up.
	priv := 0.0
	if userMean > 0 && otherMean > f.cfg.DepFloor*userMean {
		priv = (otherMean/userMean - f.cfg.DepFloor) / f.cfg.DepSpan
		if priv > 1 {
			priv = 1
		}
	}
	if dep == 0 && priv == 0 {
		return
	}
	histMean := userMean
	if u != nil && u.n > 0 {
		histMean = u.sum / float64(u.n)
	}
	for i, c := range cands {
		// Rescue / yield on immediately available capacity.
		if c.Pending == 0 && c.View.FreeProcs >= j.RequestedProcs {
			out[i] += f.cfg.StartBoost*dep - f.cfg.YieldPenalty*priv
		}
		if dep == 0 {
			continue
		}
		// Repulsion: penalize the clusters whose realized history served
		// this user worse than their own realized average — but only with
		// enough history there to call it a pattern.
		if u == nil || histMean <= 0 {
			continue
		}
		if n := u.clN[c.Index]; n >= float64(f.cfg.MinObs) {
			rel := (u.clSum[c.Index]/float64(n))/histMean - 1
			if rel > 0 {
				if rel > f.cfg.RelCap {
					rel = f.cfg.RelCap
				}
				out[i] -= f.cfg.HistPenalty * dep * rel / f.cfg.RelCap
			}
		}
	}
}

// UserMeans snapshots the per-user fleet-wide mean bounded slowdowns
// accumulated so far, sorted by user ID — the live counterpart of
// metrics.PerUser over completed jobs.
func (f *FairnessScorer) UserMeans() []metrics.UserMean {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]metrics.UserMean, 0, len(f.users))
	for uid, u := range f.users {
		f.syncLocked(u)
		if u.n <= shareEpsilon {
			continue // fully decayed away: no current service to report
		}
		jobs := int(math.Round(u.n))
		if jobs < 1 {
			jobs = 1
		}
		out = append(out, metrics.UserMean{UserID: uid, Jobs: jobs, Mean: u.sum / u.n})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].UserID < out[k].UserID })
	return out
}

// Report summarizes the tracked state as a metrics.FairnessReport — the
// view the serving daemon exports as rlserv_fairness_score.
func (f *FairnessScorer) Report() metrics.FairnessReport {
	return metrics.FairnessOf(f.UserMeans())
}

// UserState returns the tracked fleet-wide mean bounded slowdown and job
// count for one user (zeroes when the user has no completed jobs), plus
// the fleet-wide mean over everyone — the /place response's per-user
// exposure. The mean is the decayed share (how the plugin weighs the user
// NOW); jobs is the raw undecayed completion count — with -fair-window
// active the decayed weight rounds below the number of jobs the user
// actually finished, which made this surface under-report before the raw
// count was tracked separately.
func (f *FairnessScorer) UserState(uid int) (userMean float64, jobs int, fleetMean float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gN > shareEpsilon {
		fleetMean = f.gSum / f.gN
	}
	if u := f.users[bucket(uid)]; u != nil {
		f.syncLocked(u)
		if u.n > shareEpsilon {
			userMean = u.sum / u.n
		}
		jobs = int(u.raw)
	}
	return userMean, jobs, fleetMean
}

// FairnessState is a point-in-time serialization of a FairnessScorer —
// the payload a serving daemon checkpoints to disk so per-user share
// history survives restarts. Users and their per-cluster shares are
// sorted, so the same tracker state always exports the same bytes.
type FairnessState struct {
	// Events is the decay clock: fleet-wide completions observed. Every
	// exported share is synced to it, so Import needs no per-user lag.
	Events uint64 `json:"events"`
	// GSum / GN are the fleet-wide (decayed) bounded-slowdown sum and
	// count over all users.
	GSum float64 `json:"g_sum"`
	GN   float64 `json:"g_n"`
	// Users holds every tracked user's shares, sorted by UserID.
	Users []UserShareState `json:"users,omitempty"`
}

// UserShareState is one user's exported share.
type UserShareState struct {
	// UserID is the share's user bucket (-1 aggregates unknown users).
	UserID int `json:"user_id"`
	// Sum / N are the decayed fleet-wide bounded-slowdown sum and count.
	Sum float64 `json:"sum"`
	N   float64 `json:"n"`
	// Raw is the undecayed completed-job count.
	Raw int64 `json:"raw"`
	// Clusters holds the per-member splits, sorted by cluster index.
	Clusters []ClusterShareState `json:"clusters,omitempty"`
}

// ClusterShareState is one user's share on one member.
type ClusterShareState struct {
	// Cluster is the member index the share accumulated on.
	Cluster int `json:"cluster"`
	// Sum / N are the decayed bounded-slowdown sum and count there.
	Sum float64 `json:"sum"`
	N   float64 `json:"n"`
}

// ExportState snapshots the scorer's accumulated shares. Every user is
// synced to the current decay clock first, so importing the export into a
// fresh scorer reproduces the tracker exactly (Import then Observe gives
// the same state as Observe alone would have).
func (f *FairnessScorer) ExportState() FairnessState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FairnessState{Events: f.events, GSum: f.gSum, GN: f.gN}
	for uid, u := range f.users {
		f.syncLocked(u)
		us := UserShareState{UserID: uid, Sum: u.sum, N: u.n, Raw: u.raw}
		for cl, sum := range u.clSum {
			us.Clusters = append(us.Clusters, ClusterShareState{Cluster: cl, Sum: sum, N: u.clN[cl]})
		}
		sort.Slice(us.Clusters, func(i, k int) bool { return us.Clusters[i].Cluster < us.Clusters[k].Cluster })
		st.Users = append(st.Users, us)
	}
	sort.Slice(st.Users, func(i, k int) bool { return st.Users[i].UserID < st.Users[k].UserID })
	return st
}

// ImportState replaces the scorer's accumulated shares with an exported
// snapshot (the decay window stays whatever the scorer was built with —
// the state carries shares, not configuration). Restoring and then
// replaying a WAL of completion batches reproduces the pre-crash tracker.
func (f *FairnessScorer) ImportState(st FairnessState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.events = st.Events
	f.gSum, f.gN = st.GSum, st.GN
	f.users = make(map[int]*userShare, len(st.Users))
	for _, us := range st.Users {
		u := &userShare{
			sum: us.Sum, n: us.N, raw: us.Raw, last: st.Events,
			clSum: make(map[int]float64, len(us.Clusters)),
			clN:   make(map[int]float64, len(us.Clusters)),
		}
		for _, cs := range us.Clusters {
			u.clSum[cs.Cluster] = cs.Sum
			u.clN[cs.Cluster] = cs.N
		}
		f.users[bucket(us.UserID)] = u
	}
}

// FairnessPipeline routes like BinpackPipeline until a user drifts from
// the other-user average, then overlays the stateful fairness terms:
// deprived users are rescued onto drained capacity and steered off the
// members that historically hurt them, privileged users yield. The
// fairness scorer embeds the binpack baseline itself (see
// FairnessConfig), so it runs standalone.
func FairnessPipeline(cfg FairnessConfig) *Pipeline {
	return NewPipeline("fair",
		[]Filter{CapacityFilter{}},
		[]WeightedScorer{{Scorer: NewFairnessScorer(cfg), Weight: 1}})
}

// StateScorers returns the pipeline's stateful scorers, in scorer order.
// The Fleet resets them per run and feeds them member completions.
func (p *Pipeline) StateScorers() []StateScorer {
	var out []StateScorer
	for _, ws := range p.Scorers {
		if ss, ok := ws.Scorer.(StateScorer); ok {
			out = append(out, ss)
		}
	}
	return out
}
