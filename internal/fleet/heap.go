package fleet

// Event-heap stepping (DESIGN.md §10). The fleet keeps a global min-heap
// over member next-event times so that bringing the fleet to an arrival
// instant wakes only the members with internal events due — an idle
// member costs nothing per placement, making fleet stepping sublinear in
// fleet size. Plugin-visible candidate state is cached per member and
// invalidated by push (markDirty at every mutation point: wake, submit,
// migration withdraw/resubmit) rather than rebuilt per placement.
//
// The heap is lazy: entries are never removed in place. Each member
// carries a stamp, every entry records the stamp it was pushed under, and
// an entry whose stamp no longer matches its member is stale and discarded
// on pop. touch() re-arms a member after any operation that may have
// changed its next event by bumping the stamp (invalidating the old entry)
// and pushing a fresh one.
//
// Correctness of skipping members rests on the pump fixpoint being
// monotone between events: with no submissions and no completions, free
// processors, quota headroom and the visible queue are all unchanged, and
// every backfill admission test (EASY's ends-in-time bound, conservative's
// reservation gap) only gets harder as the clock grows — so a member that
// was at fixpoint stays at fixpoint and advancing it is observationally
// a no-op. The full-sweep reference path (SetFullSweep) advances every
// member anyway; a property test pins the two paths byte-identical.

import (
	"sort"

	"rlsched/internal/sim"
)

// eventEntry is one (time, member, stamp) entry of the fleet event heap.
type eventEntry struct {
	t     float64
	idx   int
	stamp uint64
}

// eventHeap is a hand-rolled min-heap of eventEntry ordered by (t, idx) —
// manual sift operations avoid the per-push boxing of container/heap on
// the placement hot path. Ties break on member index so wake order is
// deterministic.
type eventHeap []eventEntry

func (h eventHeap) less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].idx < h[j].idx)
}

func (h *eventHeap) push(e eventEntry) {
	q := append(*h, e)
	*h = q
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() eventEntry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && q.less(r, c) {
			c = r
		}
		if !q.less(c, i) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return top
}

// SetFullSweep switches subsequent Runs between event-heap stepping (the
// default, off) and the pre-heap reference path that advances every member
// and rebuilds every candidate at every arrival. The two paths produce
// byte-identical Results (pinned by a randomized property test); the
// reference exists for that comparison and as the baseline the fleet-scale
// benchmark measures speedups against. Takes effect at the next Run.
func (f *Fleet) SetFullSweep(on bool) { f.fullSweep = on }

// SetWorkers sets how many goroutines step woken members per advance
// (n <= 1 keeps stepping serial, the default). Member simulators are
// disjoint, and the wake list is partitioned into a fixed number of
// index-ordered blocks with any error reduced in block order, so results
// are byte-identical for every worker count. A run with a recorder
// attached steps serially regardless (members share the recorder).
func (f *Fleet) SetWorkers(n int) { f.workers = n }

// touch re-arms member i's heap entry after an operation that may have
// changed its next event: the stamp bump invalidates any live entry, and a
// fresh one is pushed when the member still has an event. No-op in
// full-sweep mode, which never consults the heap.
func (f *Fleet) touch(i int) {
	if f.fullSweep {
		return
	}
	m := f.members[i]
	m.stamp++
	if t, ok := m.sim.NextEventTime(); ok {
		f.events.push(eventEntry{t: t, idx: i, stamp: m.stamp})
	}
}

// markDirty invalidates member i's cached candidate state; the next
// candidatesAt refreshes exactly the marked members.
func (f *Fleet) markDirty(i int) {
	if !f.dirtyFlag[i] {
		f.dirtyFlag[i] = true
		f.dirtyList = append(f.dirtyList, i)
	}
}

// markObs marks member i as possibly holding unobserved completions; the
// next observeCompletions reads only marked members' log tails. No-op for
// stateless routers.
func (f *Fleet) markObs(i int) {
	if len(f.stateful) == 0 {
		return
	}
	if !f.obsFlag[i] {
		f.obsFlag[i] = true
		f.obsList = append(f.obsList, i)
	}
}

// advanceMembers brings the fleet to global time t. Heap mode wakes only
// the members with events due at or before t (in member-index order);
// full-sweep mode advances everyone. Woken members are marked dirty and
// observation-pending, and re-armed in the heap.
func (f *Fleet) advanceMembers(t float64) error {
	if f.fullSweep {
		for i, m := range f.members {
			m.syncs++
			if err := m.syncTo(t); err != nil {
				return err
			}
			f.markDirty(i)
			f.markObs(i)
		}
		return nil
	}
	wake := f.wake[:0]
	for len(f.events) > 0 {
		e := f.events[0]
		if e.stamp != f.members[e.idx].stamp {
			f.events.pop()
			continue
		}
		if e.t > t {
			break
		}
		f.events.pop()
		wake = append(wake, e.idx)
	}
	f.wake = wake
	if len(wake) == 0 {
		return nil
	}
	// Entries pop in time order; stepping and state feeds want member-index
	// order (each member appears at most once — one live entry per stamp).
	sort.Ints(wake)
	if err := f.stepWake(t, wake); err != nil {
		return err
	}
	for _, i := range wake {
		f.markDirty(i)
		f.markObs(i)
		f.touch(i)
	}
	return nil
}

// candidatesAt refreshes the plugin-visible state of the fleet at global
// time t and returns the candidate slice. Only members marked dirty have
// their queue- and resource-dependent fields rebuilt; every candidate gets
// the clock, and remaining running work is re-evaluated for members that
// actually hold allocations (RunningWorkAt needs no clock advance — a
// running job ending at or before t would have been a wake event). When
// the router declared itself ClockFree, the fleet-wide Now write is
// skipped and only active members pay the running-work re-evaluation —
// idle candidates keep RunningWork pinned to 0 by the dirty refresh.
func (f *Fleet) candidatesAt(t float64) []*Candidate {
	for _, i := range f.dirtyList {
		m := f.members[i]
		c := &f.candStore[i]
		if m.state == stateRetired {
			// A retired member advertises zero capacity: TotalProcs = 0
			// fails the capacity filter on every router path (fast pass,
			// generic loop, unscored baselines, migration's NaN-incumbent
			// rule), so hard exclusion needs no router changes.
			c.View = sim.ClusterView{}
			c.Visible = nil
			c.Pending = 0
			c.PendingWork = 0
			c.RunningWork = 0
			c.Draining = false
			c.DrainTime = 0
			c.Evicting = false
			f.active[i] = false
			f.dirtyFlag[i] = false
			continue
		}
		c.View = m.sim.View()
		c.Visible = m.sim.Visible()
		c.Pending = m.sim.PendingCount()
		c.PendingWork = m.sim.PendingWork()
		c.Draining = m.state == stateDraining
		c.DrainTime = m.drainAt
		c.Evicting = m.evicting
		f.active[i] = c.View.FreeProcs < c.View.TotalProcs
		if !f.active[i] {
			c.RunningWork = 0
		}
		f.dirtyFlag[i] = false
	}
	f.dirtyList = f.dirtyList[:0]
	// The full-sweep reference keeps the unconditional rebuild — it is the
	// faithful pre-heap path benchmarks measure against.
	if f.clockFree && !f.fullSweep {
		for i, a := range f.active {
			if a {
				f.candStore[i].RunningWork = f.sims[i].RunningWorkAt(t)
			}
		}
		return f.cands
	}
	for i := range f.candStore {
		c := &f.candStore[i]
		c.Now = t
		if f.active[i] {
			c.RunningWork = f.sims[i].RunningWorkAt(t)
		} else {
			c.RunningWork = 0
		}
	}
	return f.cands
}

// nextFleetEvent reports the earliest pending internal event across the
// fleet: a lazy heap peek (discarding stale entries) in heap mode, a full
// member scan in full-sweep mode.
func (f *Fleet) nextFleetEvent() (float64, bool) {
	if f.fullSweep {
		next, any := 0.0, false
		for _, m := range f.members {
			if t, ok := m.sim.NextEventTime(); ok && (!any || t < next) {
				next, any = t, true
			}
		}
		return next, any
	}
	for len(f.events) > 0 {
		e := f.events[0]
		if e.stamp != f.members[e.idx].stamp {
			f.events.pop()
			continue
		}
		return e.t, true
	}
	return 0, false
}

// drainAll runs every member with remaining events to completion and
// returns the latest member clock reached (the fleet horizon candidate).
// Heap mode drains exactly the members holding events; members without
// events have nothing to run — their never-start check happens in Run's
// final pass.
func (f *Fleet) drainAll() (float64, error) {
	end := 0.0
	if f.fullSweep {
		for _, m := range f.members {
			if err := m.drain(); err != nil {
				return 0, err
			}
			if t := m.sim.Now(); t > end {
				end = t
			}
		}
		return end, nil
	}
	for len(f.events) > 0 {
		e := f.events.pop()
		m := f.members[e.idx]
		if e.stamp != m.stamp {
			continue
		}
		if err := m.drain(); err != nil {
			return 0, err
		}
		m.stamp++ // a drained member is idle; retire any leftover entries
		if t := m.sim.Now(); t > end {
			end = t
		}
	}
	return end, nil
}
