package fleet

import "sync"

// Parallel stepping of woken members — the fixed-block idiom the autograd
// Dense backward uses (internal/autograd/parallel.go): the wake list is
// cut into a FIXED number of contiguous index-ordered blocks, blocks run
// on however many workers SetWorkers granted, and the only cross-block
// reduction (the error, if any) happens in block order. Member simulators
// are disjoint state, so the interleaving cannot influence results:
// stepping is byte-identical for every worker count, pinned by a parity
// test under -race.

// stepBlocks is the fixed block count of parallel stepping (also its
// maximum useful parallelism per advance).
const stepBlocks = 8

// minParallelWake is the wake-list size below which stepping stays serial
// — goroutine fan-out costs more than a handful of syncTo calls. The
// threshold only picks an execution strategy; results are identical on
// either side of it.
const minParallelWake = 16

// stepWake advances every member on the index-sorted wake list to time t.
func (f *Fleet) stepWake(t float64, wake []int) error {
	workers := f.workers
	if workers > stepBlocks {
		workers = stepBlocks
	}
	// A recorder is shared across members, so traced runs step serially.
	if workers <= 1 || len(wake) < minParallelWake || f.rec != nil {
		for _, i := range wake {
			m := f.members[i]
			m.syncs++
			if err := m.syncTo(t); err != nil {
				return err
			}
		}
		return nil
	}
	n := len(wake)
	var errs [stepBlocks]error
	var wg sync.WaitGroup
	ch := make(chan int)
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range ch {
				lo, hi := b*n/stepBlocks, (b+1)*n/stepBlocks
				for _, i := range wake[lo:hi] {
					m := f.members[i]
					m.syncs++
					if err := m.syncTo(t); err != nil {
						errs[b] = err
						break
					}
				}
			}
		}()
	}
	for b := 0; b < stepBlocks; b++ {
		ch <- b
	}
	close(ch)
	wg.Wait()
	// Blocks partition the ascending wake list, so the first errored block
	// holds the lowest errored member — the same error the serial path
	// would have returned.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
