package fleet

import (
	"testing"

	"rlsched/internal/job"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
)

// Table tests of the placement constraint plugins (constraints.go): the
// taint/toleration matrix, class affinity, failure-domain spreading,
// assignment steadiness, and the composed ConstraintPipeline end to end.

func TestTolerationTolerates(t *testing.T) {
	cases := []struct {
		name  string
		tol   Toleration
		taint Taint
		want  bool
	}{
		{"exact match", Toleration{"dedicated", "gpu"}, Taint{"dedicated", "gpu"}, true},
		{"wildcard value", Toleration{"dedicated", ""}, Taint{"dedicated", "gpu"}, true},
		{"wrong value", Toleration{"dedicated", "fpga"}, Taint{"dedicated", "gpu"}, false},
		{"wrong key", Toleration{"team", "gpu"}, Taint{"dedicated", "gpu"}, false},
		{"empty-valued taint", Toleration{"dedicated", ""}, Taint{"dedicated", ""}, true},
	}
	for _, tc := range cases {
		if got := tc.tol.Tolerates(tc.taint); got != tc.want {
			t.Errorf("%s: Tolerates = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTaintFilterFeasible(t *testing.T) {
	gpu := &Candidate{Attrs: MemberAttrs{Taints: []Taint{{"dedicated", "gpu"}}}}
	multi := &Candidate{Attrs: MemberAttrs{Taints: []Taint{{"dedicated", "gpu"}, {"team", "ml"}}}}
	clean := &Candidate{}
	src := func(tols ...Toleration) ConstraintSource {
		return func(*job.Job) JobConstraints { return JobConstraints{Tolerations: tols} }
	}
	j := &job.Job{}
	cases := []struct {
		name string
		f    TaintFilter
		c    *Candidate
		want bool
	}{
		{"untainted accepts anything", TaintFilter{}, clean, true},
		{"nil source vs taint", TaintFilter{}, gpu, false},
		{"no toleration vs taint", TaintFilter{Source: src()}, gpu, false},
		{"matching toleration", TaintFilter{Source: src(Toleration{"dedicated", "gpu"})}, gpu, true},
		{"wildcard toleration", TaintFilter{Source: src(Toleration{"dedicated", ""})}, gpu, true},
		{"wrong value", TaintFilter{Source: src(Toleration{"dedicated", "fpga"})}, gpu, false},
		{"one of two covered", TaintFilter{Source: src(Toleration{"dedicated", "gpu"})}, multi, false},
		{"both covered", TaintFilter{Source: src(
			Toleration{"dedicated", "gpu"}, Toleration{"team", ""})}, multi, true},
	}
	for _, tc := range cases {
		if got := tc.f.Feasible(j, tc.c); got != tc.want {
			t.Errorf("%s: Feasible = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !(TaintFilter{}).ClockFree() {
		t.Error("TaintFilter must be clock-free")
	}
}

func TestAffinityFilterFeasible(t *testing.T) {
	gpu := &Candidate{Attrs: MemberAttrs{Class: "gpu"}}
	cpu := &Candidate{Attrs: MemberAttrs{Class: "cpu"}}
	unclassed := &Candidate{}
	src := func(class string) ConstraintSource {
		return func(*job.Job) JobConstraints { return JobConstraints{RequiredClass: class} }
	}
	j := &job.Job{}
	cases := []struct {
		name string
		f    AffinityFilter
		c    *Candidate
		want bool
	}{
		{"nil source", AffinityFilter{}, cpu, true},
		{"no requirement", AffinityFilter{Source: src("")}, cpu, true},
		{"matching class", AffinityFilter{Source: src("gpu")}, gpu, true},
		{"mismatching class", AffinityFilter{Source: src("gpu")}, cpu, false},
		{"requirement vs unclassed", AffinityFilter{Source: src("gpu")}, unclassed, false},
	}
	for _, tc := range cases {
		if got := tc.f.Feasible(j, tc.c); got != tc.want {
			t.Errorf("%s: Feasible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSpreadScorer pins the domain aggregation: candidates are scored by
// the negated committed work of their whole failure domain, and unlabeled
// members each count as their own domain.
func TestSpreadScorer(t *testing.T) {
	cands := []*Candidate{
		{Name: "a1", Attrs: MemberAttrs{FailureDomain: "dc-a"}, RunningWork: 100, PendingWork: 50},
		{Name: "a2", Attrs: MemberAttrs{FailureDomain: "dc-a"}, RunningWork: 30},
		{Name: "b1", Attrs: MemberAttrs{FailureDomain: "dc-b"}, RunningWork: 40},
		{Name: "solo", RunningWork: 10},
	}
	out := make([]float64, len(cands))
	SpreadScorer{}.Score(&job.Job{}, cands, out)
	want := []float64{-180, -180, -40, -10}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("candidate %s: score %g, want %g", cands[i].Name, out[i], want[i])
		}
	}
}

// TestSteadyScorerLifecycle covers the per-job assignment memory across
// observations, completions, resets and cluster retirement.
func TestSteadyScorerLifecycle(t *testing.T) {
	s := NewSteadyScorer()
	cands := []*Candidate{{Index: 0}, {Index: 1}, {Index: 2}}
	out := make([]float64, len(cands))
	j := &job.Job{ID: 42}

	score := func() []float64 { s.Score(j, cands, out); return out }
	if got := score(); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("unassigned job scored %v, want all zero", got)
	}
	s.ObserveAssign(1, j)
	if got := score(); got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("assigned job scored %v, want preference for cluster 1", got)
	}
	s.ObserveAssign(2, j) // latest assignment wins
	if got := score(); got[1] != 0 || got[2] != 1 {
		t.Fatalf("re-assigned job scored %v, want preference for cluster 2", got)
	}
	s.RetireCluster(2)
	if got := score(); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("job pinned to a retired cluster scored %v, want all zero", got)
	}
	s.ObserveAssign(0, j)
	s.Observe(0, j) // completion drops the entry
	if got := score(); got[0] != 0 {
		t.Fatalf("completed job scored %v, want no steadiness", got)
	}
	s.ObserveAssign(0, j)
	s.Reset()
	if got := score(); got[0] != 0 {
		t.Fatalf("scored %v after Reset, want all zero", got)
	}
}

// TestConstraintPipelineEndToEnd runs the composed constrained router over
// a mixed stream: every gpu job (QueueID 1) must land on the gpu class,
// and no untolerating job may touch the tainted members.
func TestConstraintPipelineEndToEnd(t *testing.T) {
	members := []MemberConfig{
		{Name: "gpu-a", Sim: sim.Config{Processors: 128, MaxObserve: 32}, Scheduler: sched.SJF(),
			Attrs: MemberAttrs{Class: "gpu", FailureDomain: "dc-a",
				Taints: []Taint{{"dedicated", "gpu"}}}},
		{Name: "cpu-a", Sim: sim.Config{Processors: 256, MaxObserve: 32}, Scheduler: sched.SJF(),
			Attrs: MemberAttrs{Class: "cpu", FailureDomain: "dc-a"}},
		{Name: "cpu-b", Sim: sim.Config{Processors: 256, MaxObserve: 32}, Scheduler: sched.SJF(),
			Attrs: MemberAttrs{Class: "cpu", FailureDomain: "dc-b"}},
	}
	src := func(j *job.Job) JobConstraints {
		if j.QueueID == 1 {
			return JobConstraints{
				RequiredClass: "gpu",
				Tolerations:   []Toleration{{"dedicated", "gpu"}},
			}
		}
		return JobConstraints{}
	}
	stream := lublinStream(t, 300, 53)
	for i, j := range stream {
		j.QueueID = 0
		if i%4 == 0 {
			j.QueueID = 1
			if j.RequestedProcs > 128 {
				j.RequestedProcs = 128
			}
		}
	}
	f, err := New(members, ConstraintPipeline(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(cloneStream(stream))
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range stream {
		name := members[res.Assignments[i]].Name
		if j.QueueID == 1 && name != "gpu-a" {
			t.Fatalf("gpu job %d placed on %q", i, name)
		}
		if j.QueueID != 1 && name == "gpu-a" {
			t.Fatalf("untolerating job %d placed on the tainted gpu member", i)
		}
	}
}
