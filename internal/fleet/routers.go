package fleet

import (
	"math/rand"

	"rlsched/internal/job"
)

// Baseline routers: the null hypotheses the plugin pipelines are measured
// against. Both honour the capacity predicate (routing a job somewhere it
// can never run is not a baseline, it is a bug) but express no load
// preference.

// feasibleInto collects the candidate indexes that pass every filter.
func feasibleInto(dst []int, j *job.Job, cands []*Candidate, filters []Filter) []int {
	dst = dst[:0]
next:
	for i, c := range cands {
		for _, f := range filters {
			if !f.Feasible(j, c) {
				continue next
			}
		}
		dst = append(dst, i)
	}
	return dst
}

// RandomRouter places each job on a uniformly random feasible cluster.
// Deterministic for a fixed seed (placement is serial in arrival order).
type RandomRouter struct {
	rng     *rand.Rand
	filters []Filter
	buf     []int
}

// NewRandom returns a seeded random router with the capacity predicate.
func NewRandom(seed int64) *RandomRouter {
	return &RandomRouter{rng: rand.New(rand.NewSource(seed)), filters: []Filter{CapacityFilter{}}}
}

// Name implements Router.
func (r *RandomRouter) Name() string { return "random" }

// ClockFree implements ClockFree: the router only reads capacity.
func (r *RandomRouter) ClockFree() bool {
	for _, f := range r.filters {
		if cf, ok := f.(ClockFree); !ok || !cf.ClockFree() {
			return false
		}
	}
	return true
}

// Place implements Router.
func (r *RandomRouter) Place(j *job.Job, cands []*Candidate) int {
	r.buf = feasibleInto(r.buf, j, cands, r.filters)
	if len(r.buf) == 0 {
		return -1
	}
	return r.buf[r.rng.Intn(len(r.buf))]
}

// RoundRobin rotates placements across the fleet, skipping infeasible
// clusters.
type RoundRobin struct {
	next    int
	filters []Filter
}

// NewRoundRobin returns a round-robin router with the capacity predicate.
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{filters: []Filter{CapacityFilter{}}}
}

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// ClockFree implements ClockFree: the router only reads capacity.
func (r *RoundRobin) ClockFree() bool {
	for _, f := range r.filters {
		if cf, ok := f.(ClockFree); !ok || !cf.ClockFree() {
			return false
		}
	}
	return true
}

// Place implements Router.
func (r *RoundRobin) Place(j *job.Job, cands []*Candidate) int {
next:
	for off := 0; off < len(cands); off++ {
		i := (r.next + off) % len(cands)
		for _, f := range r.filters {
			if !f.Feasible(j, cands[i]) {
				continue next
			}
		}
		r.next = (i + 1) % len(cands)
		return i
	}
	return -1
}
