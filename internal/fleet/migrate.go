package fleet

import (
	"fmt"
	"math"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/obs"
)

// Cross-cluster job migration (DESIGN.md §7): the placement decision made
// at arrival is revisited for jobs that are still waiting. Every sweep
// interval the controller withdraws each still-pending job, re-scores it
// through the same filter/score pipeline that placed it, and moves it only
// when the re-placement wins by more than a hysteresis margin — subject to
// a per-sweep budget, a per-job cooldown and a per-job lifetime move cap,
// so thrash is impossible by construction, not by tuning. A job that stays
// put is resubmitted to its current cluster, which restores its exact
// queue position (sim.Submit orders by original submit time), making an
// aborted move a provable no-op.

// ScoredRouter is the router capability migration needs: per-candidate
// total scores, not just an argmax, so the controller can measure the
// margin between a job's current cluster and the best alternative.
// Pipeline implements it; the Random and RoundRobin baselines do not
// (there is no meaningful "how much better" under them).
type ScoredRouter interface {
	Router
	// PlaceScored scores the job against every candidate (NaN for
	// filtered-out clusters) and returns the argmax index, or -1 when no
	// cluster is feasible.
	PlaceScored(j *job.Job, cands []*Candidate, scores []float64) int
}

// MigrationConfig parameterizes the migration controller. The zero value
// is invalid (Interval is required); HysteresisMigration and
// AlwaysRebalance build the two standard policies.
type MigrationConfig struct {
	// Interval is the global-clock period between re-placement sweeps,
	// in simulation seconds. Required (> 0).
	Interval float64
	// Hysteresis is the minimum score margin — best candidate minus the
	// job's current cluster, on the pipeline's normalized scale — a move
	// must clear. 0 moves on any strict improvement (always-rebalance).
	Hysteresis float64
	// MaxMovesPerSweep caps the migration budget of one sweep across the
	// whole fleet (0 = unlimited).
	MaxMovesPerSweep int
	// Cooldown is the minimum simulated time between two moves of the
	// same job (0 = none).
	Cooldown float64
	// MaxMovesPerJob caps how many times any single job may migrate over
	// its lifetime (0 = unlimited). A positive cap bounds total fleet
	// disruption at MaxMovesPerJob × jobs regardless of scoring noise.
	MaxMovesPerJob int
	// RequireStartNow additionally gates every move on the destination
	// being genuinely drained at the sweep instant: free capacity to
	// start the job now AND an empty pending queue. Score margins are
	// estimates; "the target can run this job right now and nobody there
	// is waiting" is a fact — under the gate the moved job strictly
	// improves its start time and no queued job at the destination loses
	// the capacity it was waiting for (the two failure modes of greedy
	// rebalancing onto clusters that merely *look* lighter).
	RequireStartNow bool
	// MigrateCommitted additionally lets sweeps re-place the job the
	// member's local policy has committed to (picked but still waiting
	// for capacity). A starved job is very often exactly that pick — a
	// short job at the head of an SJF/F1 queue blocked behind a wide
	// running job — so fairness-repairing sweeps need it movable. The
	// committed job is still pending (it has not started), so a withdraw
	// is legal; when the move goes through the member re-picks at the
	// sweep instant, and when the probe aborts the original pick is
	// restored untouched (never re-evaluated — time-dependent policies
	// would otherwise change a decision sim.Run would have held), which
	// keeps the disabled/ineffective-migration byte-parity guarantee.
	// Default off: moving the pick forfeits the EASY backfill shadow
	// reservation built around it, a trade only fairness-driven policies
	// should opt into.
	MigrateCommitted bool
}

func (c MigrationConfig) validate() error {
	// Negated comparisons so NaN fails loudly here instead of silently
	// disabling every sweep (NaN never compares <= the clock).
	if !(c.Interval > 0) {
		return fmt.Errorf("fleet: migration interval must be positive, got %g", c.Interval)
	}
	if !(c.Hysteresis >= 0) || !(c.Cooldown >= 0) || c.MaxMovesPerSweep < 0 || c.MaxMovesPerJob < 0 {
		return fmt.Errorf("fleet: migration config fields must be non-negative: %+v", c)
	}
	return nil
}

// HysteresisMigration returns the recommended production policy for a
// sweep interval: a 0.25 margin on the pipeline's normalized score scale,
// a cooldown of two sweep intervals, at most three moves per job, and the
// start-now gate — only rescue a stranded job onto capacity that can run
// it immediately.
func HysteresisMigration(interval float64) MigrationConfig {
	return MigrationConfig{
		Interval:        interval,
		Hysteresis:      0.25,
		Cooldown:        2 * interval,
		MaxMovesPerJob:  3,
		RequireStartNow: true,
	}
}

// AlwaysRebalance returns the greedy ablation: move on any strict score
// improvement, every sweep, with no cooldown or cap. It exists to be
// measured against — the fleet-migration experiment shows where greed
// pays and where hysteresis wins.
func AlwaysRebalance(interval float64) MigrationConfig {
	return MigrationConfig{Interval: interval}
}

// migInfo is the controller's per-job move history. times retains every
// move instant (bounded by MaxMovesPerJob in any budgeted config) so
// invariant tests can audit budgets and cooldowns after a run.
type migInfo struct {
	moves    int
	lastMove float64   // global clock of the most recent move
	times    []float64 // every move instant, in order
}

// migrator is the run-scoped state of the migration controller: the sweep
// schedule, per-job histories, and scratch buffers. One is built per
// Fleet.Run, so a Fleet can be reused across runs.
type migrator struct {
	cfg       MigrationConfig
	router    ScoredRouter
	nextSweep float64
	info      map[*job.Job]*migInfo
	moves     int
	scores    []float64
	snap      [][]*job.Job
	// rec is the run's observability recorder (nil = disabled); probe is
	// its reused emission buffer. Recording never changes sweep decisions.
	rec   obs.Recorder
	probe obs.MigrationProbe
}

func newMigrator(cfg MigrationConfig, router ScoredRouter, firstArrival float64) *migrator {
	return &migrator{
		cfg:       cfg,
		router:    router,
		nextSweep: firstArrival + cfg.Interval,
		info:      map[*job.Job]*migInfo{},
	}
}

// sweepUntil runs every sweep due at or before global time t, advancing
// the fleet (members with events due — heap.go) to each sweep instant
// first.
func (f *Fleet) sweepUntil(mig *migrator, t float64) error {
	for mig.nextSweep <= t {
		if err := f.advanceMembers(mig.nextSweep); err != nil {
			return err
		}
		if err := f.sweep(mig, mig.nextSweep); err != nil {
			return err
		}
		mig.nextSweep += mig.cfg.Interval
	}
	return nil
}

// sweep re-places the fleet's pending backlog at the current instant.
// Every member's scheduler-visible queue is snapshotted before anything
// moves, so a job the sweep itself migrates is never re-evaluated at its
// destination within the same sweep.
func (f *Fleet) sweep(mig *migrator, now float64) error {
	// Stateful scorers (the fairness plugin) see every completion up to
	// the sweep instant before any re-placement is scored, so sweeps
	// repair fairness on the same signals arrivals are placed with. The
	// snapshot rides the candidate cache: a refreshed Pending count says
	// which members hold a backlog at all, so an idle member costs one
	// integer compare instead of a queue copy.
	f.observeCompletions()
	cands := f.candidatesAt(now)
	snap := mig.snap[:0]
	for i := range f.members {
		var vis []*job.Job
		if cands[i].Pending > 0 {
			vis = cands[i].Visible
		}
		if i < len(mig.snap) {
			snap = append(snap, append(mig.snap[i][:0], vis...))
		} else {
			snap = append(snap, append([]*job.Job(nil), vis...))
		}
	}
	mig.snap = snap

	sweepMoves := 0
	for si, m := range f.members {
		for _, j := range snap[si] {
			if mig.cfg.MaxMovesPerSweep > 0 && sweepMoves >= mig.cfg.MaxMovesPerSweep {
				return nil
			}
			// A job an earlier move's pump started is gone; the one the
			// local policy has committed to (it holds the backfill
			// reservation) moves only under MigrateCommitted.
			if j.Started() || (j == m.committed && !mig.cfg.MigrateCommitted) {
				continue
			}
			if inf := mig.info[j]; inf != nil {
				if mig.cfg.MaxMovesPerJob > 0 && inf.moves >= mig.cfg.MaxMovesPerJob {
					mig.skipProbe(f, si, j, now, obs.ReasonMoveCap)
					continue
				}
				if mig.cfg.Cooldown > 0 && now-inf.lastMove < mig.cfg.Cooldown {
					mig.skipProbe(f, si, j, now, obs.ReasonCooldown)
					continue
				}
			}
			moved, err := f.tryMove(mig, si, j, now)
			if err != nil {
				return err
			}
			if moved {
				sweepMoves++
			}
		}
	}
	return nil
}

// tryMove withdraws j from member src, re-scores it across the fleet, and
// either re-places it (margin over the incumbent exceeds the hysteresis)
// or resubmits it in place. Withdrawing before scoring keeps the job's own
// footprint from biasing its current cluster's backlog signals.
func (f *Fleet) tryMove(mig *migrator, src int, j *job.Job, now float64) (bool, error) {
	srcM := f.members[src]
	wasCommitted := srcM.committed == j
	if _, err := srcM.sim.Withdraw(j.ID); err != nil {
		return false, fmt.Errorf("fleet: migrate from %s: %w", srcM.name, err)
	}
	f.markDirty(src)
	cands := f.candidatesAt(now)
	if cap(mig.scores) < len(cands) {
		mig.scores = make([]float64, len(cands))
	}
	scores := mig.scores[:len(cands)]
	best := mig.router.PlaceScored(j, cands, scores)

	dst := src
	reason := obs.ReasonIncumbent
	margin := 0.0
	if best < 0 {
		reason = obs.ReasonInfeasible
	} else if best != src {
		// An incumbent the filters now reject (NaN score) always loses.
		cur := scores[src]
		if !math.IsNaN(cur) {
			margin = scores[best] - cur
		}
		if math.IsNaN(cur) || scores[best]-cur > mig.cfg.Hysteresis {
			if !mig.cfg.RequireStartNow ||
				(cands[best].Pending == 0 && f.members[best].sim.CanStartNow(j)) {
				dst = best
				reason = obs.ReasonMoved
			} else {
				reason = obs.ReasonNotDrained
			}
		} else {
			reason = obs.ReasonHysteresis
		}
	}
	if mig.rec != nil {
		p := &mig.probe
		*p = obs.MigrationProbe{
			Time: now, Job: obs.Ref(j),
			From: src, FromName: srcM.name, To: best,
			Moved: dst != src, Reason: reason, Margin: margin,
		}
		if best >= 0 {
			p.ToName = f.members[best].name
		}
		mig.rec.Migration(p)
	}
	m := f.members[dst]
	// The destination may not have been woken at the sweep instant (no
	// events due), so its clock can trail `now`: advance it first — a
	// pure clock move, nothing fires — so Submit and the pump below act
	// at the sweep instant exactly as under the full sweep.
	m.sim.AdvanceClock(now)
	if err := m.sim.Submit(j); err != nil {
		return false, fmt.Errorf("fleet: migrate to %s: %w", m.name, err)
	}
	f.markDirty(dst)
	if dst == src {
		// Not worth moving: the resubmission restored the exact
		// pre-withdraw state (pinned by sim's withdraw/resubmit parity
		// test), so the probe is invisible to results. A committed pick
		// stays committed — re-picking here would let time-dependent
		// policies (SJF/F1 over newer arrivals) change a decision sim.Run
		// would have held, breaking ineffective-sweep parity.
		return false, nil
	}
	inf := mig.info[j]
	if inf == nil {
		inf = &migInfo{}
		mig.info[j] = inf
	}
	inf.moves++
	inf.lastMove = now
	inf.times = append(inf.times, now)
	mig.moves++
	srcM.movedOut++
	m.movedIn++
	f.observeAssign(dst, j)
	if err := m.pump(); err != nil {
		return true, err
	}
	f.touch(dst)
	if wasCommitted {
		// The source's pick genuinely left: let its policy re-pick (and
		// backfill) at this instant, exactly as sim.Run would after a
		// queue change. Time-dependent policies must see the sweep
		// instant, so bring a trailing clock up first (again a pure move).
		srcM.sim.AdvanceClock(now)
		srcM.committed = nil
		if err := srcM.pump(); err != nil {
			return true, err
		}
		f.markDirty(src)
	}
	f.touch(src)
	return true, nil
}

// skipProbe records a sweep skipping j before any re-scoring happened
// (cooldown or lifetime move cap); no-op without a recorder.
func (mig *migrator) skipProbe(f *Fleet, src int, j *job.Job, now float64, reason string) {
	if mig.rec == nil {
		return
	}
	p := &mig.probe
	*p = obs.MigrationProbe{
		Time: now, Job: obs.Ref(j),
		From: src, FromName: f.members[src].name, To: -1, Reason: reason,
	}
	mig.rec.Migration(p)
}

// drainMigrating runs every member to completion after the last arrival,
// keeping the fleet time-synchronized so re-placement sweeps continue
// while backlogs drain — the window where stranded jobs gain the most.
// The next fleet event comes from the event heap (a peek, not a member
// scan) and each step wakes only the members due; the returned time is
// the last event processed — the fleet horizon candidate.
func (f *Fleet) drainMigrating(mig *migrator) (float64, error) {
	end := 0.0
	for {
		next, any := f.nextFleetEvent()
		if !any {
			for _, m := range f.members {
				if err := m.pump(); err != nil {
					return 0, err
				}
				if m.committed != nil {
					return 0, fmt.Errorf("fleet: %s: job %d (%d procs) can never start",
						m.name, m.committed.ID, m.committed.RequestedProcs)
				}
			}
			return end, nil
		}
		if mig.nextSweep <= next {
			if err := f.sweepUntil(mig, mig.nextSweep); err != nil {
				return 0, err
			}
			continue
		}
		if err := f.advanceMembers(next); err != nil {
			return 0, err
		}
		if next > end {
			end = next
		}
	}
}

// fillMigrationMetrics writes the controller's per-job histories into each
// member's metrics.Result: a migrated job is accounted on the cluster it
// finally ran on, with its original arrival time (so job-averaged metrics
// stay comparable across migration policies).
func (mig *migrator) fillMigrationMetrics(results []metrics.Result) {
	for i := range results {
		for _, j := range results[i].Jobs {
			inf := mig.info[j]
			if inf == nil || inf.moves == 0 {
				continue
			}
			results[i].MigratedJobs = append(results[i].MigratedJobs, j)
			results[i].Moves += inf.moves
			results[i].MigrationDelaySum += inf.lastMove - j.SubmitTime
		}
	}
}
