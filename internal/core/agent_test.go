package core

import (
	"bytes"
	"math"
	"testing"

	"rlsched/internal/metrics"
	"rlsched/internal/rl"
	"rlsched/internal/sched"
	"rlsched/internal/trace"
)

// tinyConfig returns a config small enough for unit tests: short
// trajectories, few PPO iterations, small observation window.
func tinyConfig(tr *trace.Trace, goal metrics.Kind) Config {
	return Config{
		Trace:        tr,
		Goal:         goal,
		MaxObserve:   16,
		SeqLen:       24,
		TrajPerEpoch: 3,
		Seed:         7,
		PPO:          rl.PPOConfig{TrainPiIters: 4, TrainVIters: 4},
	}
}

func TestNewDefaultsAndValidation(t *testing.T) {
	tr := trace.Preset("Lublin-1", 400, 1)
	a, err := New(Config{Trace: tr, Goal: metrics.BoundedSlowdown, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Config()
	if cfg.PolicyKind != "kernel" || cfg.MaxObserve != 128 ||
		cfg.SeqLen != 256 || cfg.TrajPerEpoch != 100 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if _, err := New(Config{Goal: metrics.BoundedSlowdown}); err == nil {
		t.Error("nil trace must be rejected")
	}
	small := trace.Preset("Lublin-1", 50, 1)
	if _, err := New(Config{Trace: small, SeqLen: 100}); err == nil {
		t.Error("SeqLen > trace length must be rejected")
	}
	if _, err := New(Config{Trace: tr, PolicyKind: "bogus"}); err == nil {
		t.Error("unknown policy kind must be rejected")
	}
}

func TestKernelHiddenOverride(t *testing.T) {
	tr := trace.Preset("Lublin-1", 300, 9)
	cfg := tinyConfig(tr, metrics.BoundedSlowdown)
	cfg.KernelHidden = []int{8, 4}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := countParams(a)
	cfg2 := tinyConfig(tr, metrics.BoundedSlowdown)
	b, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if small >= countParams(b) {
		t.Errorf("8/4 kernel (%d params) must be smaller than the default (%d)", small, countParams(b))
	}
	if _, err := a.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
}

func countParams(a *Agent) int {
	n := 0
	for _, p := range a.PPO().Policy.Params() {
		n += p.Size()
	}
	return n
}

func TestTrainEpochProducesStats(t *testing.T) {
	tr := trace.Preset("Lublin-2", 300, 2)
	a, err := New(tinyConfig(tr, metrics.BoundedSlowdown))
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", s.Epoch)
	}
	if s.MeanMetric < 1 {
		t.Errorf("mean bsld = %g, must be >= 1", s.MeanMetric)
	}
	if math.Abs(s.MeanReward+s.MeanMetric) > 1e-9 {
		t.Errorf("reward %g must be -metric %g for bsld", s.MeanReward, s.MeanMetric)
	}
	if s.Update.PiIters == 0 {
		t.Error("PPO must run policy iterations")
	}
	if math.IsNaN(s.Update.PolicyLoss) || math.IsNaN(s.Update.ValueLoss) {
		t.Error("losses must be finite")
	}
}

func TestTrainCurveLength(t *testing.T) {
	tr := trace.Preset("Lublin-1", 300, 3)
	a, err := New(tinyConfig(tr, metrics.Utilization))
	if err != nil {
		t.Fatal(err)
	}
	curve, err := a.Train(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve length = %d, want 3", len(curve))
	}
	for i, s := range curve {
		if s.Epoch != i+1 {
			t.Errorf("curve[%d].Epoch = %d", i, s.Epoch)
		}
		if s.MeanMetric <= 0 || s.MeanMetric > 1 {
			t.Errorf("utilization %g out of (0,1]", s.MeanMetric)
		}
	}
}

// TestLearningImprovesOverRandomInit is the core end-to-end check: a few
// training epochs on a congested workload must improve the scheduling
// metric the agent is rewarded for.
func TestLearningImprovesOverRandomInit(t *testing.T) {
	tr := trace.Preset("Lublin-2", 500, 4)
	cfg := tinyConfig(tr, metrics.BoundedSlowdown)
	cfg.TrajPerEpoch = 6
	cfg.SeqLen = 32
	cfg.PPO = rl.PPOConfig{TrainPiIters: 15, TrainVIters: 10}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eval := EvalConfig{Goal: metrics.BoundedSlowdown, NSeq: 4, SeqLen: 64, Seed: 99, MaxObserve: 16}
	before, _, err := Evaluate(tr, a.Scheduler(), eval)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(8); err != nil {
		t.Fatal(err)
	}
	after, _, err := Evaluate(tr, a.Scheduler(), eval)
	if err != nil {
		t.Fatal(err)
	}
	if after > before*1.05 {
		t.Errorf("training made things worse: bsld %.2f -> %.2f", before, after)
	}
	t.Logf("bsld before=%.2f after=%.2f", before, after)
}

func TestFilterIntegration(t *testing.T) {
	tr := trace.Preset("PIK-IPLEX", 800, 5)
	cfg := tinyConfig(tr, metrics.BoundedSlowdown)
	cfg.Filter = true
	cfg.FilterProbeN = 30
	cfg.FilterPhase1 = 2
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Filter() == nil || !a.Filter().Enabled {
		t.Fatal("filter must be armed")
	}
	if _, err := a.Train(3); err != nil {
		t.Fatal(err)
	}
	// After FilterPhase1 epochs the filter must have opened up.
	if a.Filter().Enabled {
		t.Error("filter must be disabled in phase 2")
	}
}

func TestSaveLoadScheduler(t *testing.T) {
	tr := trace.Preset("HPC2N", 300, 6)
	a, err := New(tinyConfig(tr, metrics.BoundedSlowdown))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScheduler(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eval := EvalConfig{Goal: metrics.BoundedSlowdown, NSeq: 2, SeqLen: 50, Seed: 5, MaxObserve: 16}
	orig, _, err := Evaluate(tr, a.Scheduler(), eval)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Evaluate(tr, loaded, eval)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(orig-got) > 1e-9 {
		t.Errorf("loaded model evaluates to %g, original %g", got, orig)
	}
	if _, err := LoadScheduler(bytes.NewBufferString("{")); err == nil {
		t.Error("broken snapshot must fail to load")
	}
}

func TestEvaluateDeterministicAcrossSchedulers(t *testing.T) {
	tr := trace.Preset("Lublin-1", 400, 7)
	eval := EvalConfig{Goal: metrics.BoundedSlowdown, NSeq: 3, SeqLen: 64, Seed: 42}
	m1, v1, err := Evaluate(tr, sched.SJF(), eval)
	if err != nil {
		t.Fatal(err)
	}
	m2, v2, err := Evaluate(tr, sched.SJF(), eval)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("same seed gave different means: %g vs %g", m1, m2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("per-sequence values must be reproducible")
		}
	}
	if len(v1) != 3 {
		t.Errorf("values = %d, want 3", len(v1))
	}
}

func TestEvaluateClipsSeqLen(t *testing.T) {
	tr := trace.Preset("Lublin-1", 50, 8)
	eval := EvalConfig{Goal: metrics.WaitTime, NSeq: 2, SeqLen: 5000, Seed: 1}
	if _, _, err := Evaluate(tr, sched.FCFS(), eval); err != nil {
		t.Fatalf("oversized SeqLen must clip, got %v", err)
	}
}
