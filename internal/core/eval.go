package core

import (
	"math/rand"

	"rlsched/internal/metrics"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

// EvalConfig describes one evaluation campaign: the paper's protocol
// schedules NSeq (10) randomly sampled SeqLen-job (1024) sequences and
// averages the goal metric. The same seed yields the same sequences, so
// different schedulers compare on identical workloads ("across different
// scheduling algorithms, we used the same 10 random job sequences").
type EvalConfig struct {
	Goal     metrics.Kind
	NSeq     int
	SeqLen   int
	Backfill bool
	// MaxObserve bounds the visible queue (default 128).
	MaxObserve int
	Seed       int64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.NSeq == 0 {
		c.NSeq = 10
	}
	if c.SeqLen == 0 {
		c.SeqLen = 1024
	}
	if c.MaxObserve == 0 {
		c.MaxObserve = sim.DefaultMaxObserve
	}
	return c
}

// Evaluate runs the scheduler over the campaign and returns the mean goal
// metric and the per-sequence values.
func Evaluate(tr *trace.Trace, s sim.Scheduler, cfg EvalConfig) (float64, []float64, error) {
	cfg = cfg.withDefaults()
	return EvaluateSim(tr, s, cfg, sim.Config{
		Processors: tr.Processors,
		Backfill:   cfg.Backfill,
		MaxObserve: cfg.MaxObserve,
	})
}

// EvaluateSim is Evaluate with an explicit simulator configuration, for
// campaigns that need non-default simulator behaviour (e.g. conservative
// backfilling ablations).
func EvaluateSim(tr *trace.Trace, s sim.Scheduler, cfg EvalConfig, simCfg sim.Config) (float64, []float64, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	simulator := sim.New(simCfg)
	var values []float64
	sum := 0.0
	for i := 0; i < cfg.NSeq; i++ {
		seqLen := cfg.SeqLen
		if seqLen > tr.Len() {
			seqLen = tr.Len()
		}
		win := tr.SampleWindow(rng, seqLen)
		if err := simulator.Load(win); err != nil {
			return 0, nil, err
		}
		res, err := simulator.Run(s)
		if err != nil {
			return 0, nil, err
		}
		v := metrics.Value(cfg.Goal, res)
		values = append(values, v)
		sum += v
	}
	return sum / float64(len(values)), values, nil
}
