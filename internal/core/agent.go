// Package core is RLScheduler itself (§IV): the automated batch-job
// scheduling agent that couples the SchedGym environment, the kernel-based
// policy network, the value network and PPO, with trajectory filtering for
// high-variance traces. The only inputs are a job trace and an
// optimization goal — the agent learns the scheduling policy on its own.
package core

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/policy"
	"rlsched/internal/rl"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

// Config configures an RLScheduler agent. Zero fields take the paper's
// defaults (§V-A): 128 observable jobs, 256-job training trajectories, 100
// trajectories per epoch, kernel policy network, PPO lr 1e-3 with 80
// update iterations.
type Config struct {
	// Trace is the training workload.
	Trace *trace.Trace
	// Goal is the optimization target (reward per §IV-A).
	Goal metrics.Kind
	// PolicyKind selects the architecture: "kernel" (default), "mlp-v1",
	// "mlp-v2", "mlp-v3", or "lenet" (Table IV).
	PolicyKind string
	// KernelHidden overrides the kernel network's hidden sizes (paper
	// default 32/16/8); only meaningful with PolicyKind "kernel".
	KernelHidden []int
	// MaxObserve is MAX_OBSV_SIZE (default 128).
	MaxObserve int
	// Backfill enables EASY backfilling in the environment.
	Backfill bool
	// UserQuota caps the processors a single user may hold concurrently
	// (0 = unlimited); quota-violating actions are masked illegal
	// (§V-F).
	UserQuota int
	// SeqLen is the trajectory length in jobs (default 256).
	SeqLen int
	// TrajPerEpoch is the number of trajectories per epoch (default 100).
	TrajPerEpoch int
	// Filter enables trajectory filtering (§IV-C); FilterPhase1 is the
	// number of epochs trained inside the restricted range R before the
	// filter opens up (default 30).
	Filter       bool
	FilterProbeN int // probe sample count for deriving R (default 100)
	FilterPhase1 int
	// Seed drives every stochastic component.
	Seed int64
	// PPO overrides PPO hyper-parameters.
	PPO rl.PPOConfig
	// RewardWeights, when set, replaces the single-goal reward with the
	// combined reward Σ weight·Reward(kind) (§V-F/§VII multi-metric
	// optimization). Goal still selects the metric reported in
	// EpochStats.
	RewardWeights map[metrics.Kind]float64
	// Workers sets the number of goroutines collecting trajectories per
	// epoch (default GOMAXPROCS). Results are bit-identical for any
	// worker count: every trajectory owns a deterministic RNG and a
	// private environment, so only wall-clock changes.
	Workers int
}

func (c Config) withDefaults() (Config, error) {
	if c.Trace == nil {
		return c, fmt.Errorf("core: config needs a trace")
	}
	if c.PolicyKind == "" {
		c.PolicyKind = "kernel"
	}
	if c.MaxObserve == 0 {
		c.MaxObserve = sim.DefaultMaxObserve
	}
	if c.SeqLen == 0 {
		c.SeqLen = 256
	}
	if c.TrajPerEpoch == 0 {
		c.TrajPerEpoch = 100
	}
	if c.FilterProbeN == 0 {
		c.FilterProbeN = 100
	}
	if c.FilterPhase1 == 0 {
		c.FilterPhase1 = 30
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SeqLen > c.Trace.Len() {
		return c, fmt.Errorf("core: SeqLen %d exceeds trace length %d", c.SeqLen, c.Trace.Len())
	}
	return c, nil
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch int
	// MeanMetric is the average goal metric over the epoch's
	// trajectories (the training-curve value of Figs 8–13).
	MeanMetric float64
	// MeanReward is the corresponding reward (sign-adjusted metric).
	MeanReward float64
	// Rejected counts sequences the trajectory filter discarded.
	Rejected int
	// Update carries the PPO losses/KL for the epoch.
	Update rl.UpdateStats
}

// Agent is a configured RLScheduler instance.
type Agent struct {
	cfg       Config
	simCfg    sim.Config
	collector *rl.Collector
	ppo       *rl.PPO
	buf       *rl.Buffer
	filter    *rl.Filter
	rng       *rand.Rand
	epoch     int
}

// New builds the agent: networks, PPO, environment, and (if enabled) the
// trajectory filter derived from an SJF probe of the trace (§IV-C).
func New(cfg Config) (*Agent, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var pol nn.PolicyNet
	if cfg.PolicyKind == "kernel" && cfg.KernelHidden != nil {
		pol = nn.NewKernelNet(rng, cfg.MaxObserve, sim.JobFeatures, cfg.KernelHidden)
	} else {
		pol, err = nn.NewPolicy(rng, cfg.PolicyKind, cfg.MaxObserve, sim.JobFeatures)
		if err != nil {
			return nil, err
		}
	}
	val := nn.NewValueNet(rng, cfg.MaxObserve, sim.JobFeatures, nil)
	ppoCfg := cfg.PPO.Defaults()
	simCfg := sim.Config{
		Processors: cfg.Trace.Processors,
		Backfill:   cfg.Backfill,
		MaxObserve: cfg.MaxObserve,
		UserQuota:  cfg.UserQuota,
	}
	a := &Agent{
		cfg:    cfg,
		simCfg: simCfg,
		ppo:    rl.NewPPO(pol, val, ppoCfg),
		buf:    rl.NewBuffer(ppoCfg.Gamma, ppoCfg.Lambda),
		rng:    rng,
	}
	var rewardFn metrics.RewardFunc
	if cfg.RewardWeights != nil {
		rewardFn = metrics.WeightedReward(cfg.RewardWeights)
	}
	a.collector = rl.NewCollector(rl.CollectorConfig{
		Policy:  a.ppo.Inferer(),
		Value:   val,
		MaxObs:  cfg.MaxObserve,
		Feat:    sim.JobFeatures,
		Sim:     simCfg,
		Goal:    cfg.Goal,
		Reward:  rewardFn,
		Workers: cfg.Workers,
	})
	if cfg.Filter {
		ps, err := rl.Probe(cfg.Trace, simCfg, cfg.Goal, cfg.FilterProbeN, cfg.SeqLen, rng)
		if err != nil {
			return nil, fmt.Errorf("core: filter probe: %w", err)
		}
		a.filter = rl.NewFilter(simCfg, cfg.Goal, ps)
	}
	return a, nil
}

// Config returns the resolved configuration.
func (a *Agent) Config() Config { return a.cfg }

// PPO exposes the underlying learner (read-mostly: stats, inference).
func (a *Agent) PPO() *rl.PPO { return a.ppo }

// Filter returns the trajectory filter, or nil when disabled.
func (a *Agent) Filter() *rl.Filter { return a.filter }

// sampleWindow draws a training sequence, honouring the trajectory filter
// during phase 1. A bounded number of rejections guards against a filter
// that matches nothing.
func (a *Agent) sampleWindow() ([]*job.Job, int) {
	rejected := 0
	for {
		win := a.cfg.Trace.SampleWindow(a.rng, a.cfg.SeqLen)
		if a.filter == nil || !a.filter.Enabled || a.filter.Accept(win) || rejected >= 50 {
			return win, rejected
		}
		rejected++
	}
}

// trajSeed derives a deterministic per-trajectory RNG seed so the training
// trajectory stream is identical regardless of worker count.
func (a *Agent) trajSeed(idx int) int64 {
	return a.cfg.Seed + int64(a.epoch)*1_000_003 + int64(idx)*7919
}

// TrainEpoch samples TrajPerEpoch trajectories with the current policy —
// collected in parallel through the graph-free inference fast path — then
// runs the PPO update (80 policy + 80 value iterations by default).
func (a *Agent) TrainEpoch() (EpochStats, error) {
	a.epoch++
	if a.filter != nil && a.filter.Enabled && a.epoch > a.cfg.FilterPhase1 {
		// Phase 2 (§IV-C): the converged agent now trains on all
		// sequences.
		a.filter.Disable()
	}
	a.buf.Reset()
	stats := EpochStats{Epoch: a.epoch}

	// Window sampling (and filtering) stays serial on the agent RNG so
	// the sampled workload stream is worker-count independent.
	wins := make([][]*job.Job, a.cfg.TrajPerEpoch)
	seeds := make([]int64, len(wins))
	for i := range wins {
		var rejected int
		wins[i], rejected = a.sampleWindow()
		stats.Rejected += rejected
		seeds[i] = a.trajSeed(i)
	}

	var metricSum, rewardSum float64
	for _, r := range a.collector.Collect(wins, seeds) {
		if err := a.buf.StoreRollout(r); err != nil {
			return stats, err
		}
		rewardSum += r.FinalReward
		metricSum += r.Metric
	}
	batch, err := a.buf.Get()
	if err != nil {
		return stats, err
	}
	stats.Update = a.ppo.Update(batch)
	stats.MeanMetric = metricSum / float64(a.cfg.TrajPerEpoch)
	stats.MeanReward = rewardSum / float64(a.cfg.TrajPerEpoch)
	return stats, nil
}

// Train runs epochs and returns the per-epoch training curve.
func (a *Agent) Train(epochs int) ([]EpochStats, error) {
	var curve []EpochStats
	for i := 0; i < epochs; i++ {
		s, err := a.TrainEpoch()
		if err != nil {
			return curve, err
		}
		curve = append(curve, s)
	}
	return curve, nil
}

// Scheduler returns the trained policy as a deterministic sim.Scheduler
// (argmax inference).
func (a *Agent) Scheduler() sim.Scheduler {
	return policy.NewNetScheduler(a.ppo.Policy)
}

// Save writes the trained networks as a JSON snapshot.
func (a *Agent) Save(w io.Writer) error {
	return nn.Snap(a.ppo.Policy, a.ppo.Value, nil).Write(w)
}

// LoadScheduler reads a snapshot and returns the policy as a
// sim.Scheduler, for applying a trained model RL-X to another trace Y
// (Table VII).
func LoadScheduler(r io.Reader) (sim.Scheduler, error) {
	snap, err := nn.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	pol, _, err := snap.Materialize(rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, err
	}
	return policy.NewNetScheduler(pol), nil
}
