package core

import (
	"math"
	"reflect"
	"testing"

	"rlsched/internal/metrics"
	"rlsched/internal/trace"
)

// TestTrainEpochReproducible: fixed seed + fixed worker count must
// reproduce the identical training trajectory across two independent runs
// — every PPO statistic bit-equal, not just the headline metric. CI runs
// this under -race, so it also proves the parallel collector clean.
func TestTrainEpochReproducible(t *testing.T) {
	tr := trace.Preset("Lublin-1", 300, 16)
	run := func() []EpochStats {
		cfg := tinyConfig(tr, metrics.BoundedSlowdown)
		cfg.Workers = 4
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		curve, err := a.Train(2)
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("training diverged across identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestWorkersBitIdentical verifies the parallel-rollout design promise:
// the trajectory stream is derived from per-trajectory RNGs, so training
// with 1 worker and with 4 workers produces identical curves — parallelism
// changes wall-clock only.
func TestWorkersBitIdentical(t *testing.T) {
	tr := trace.Preset("Lublin-1", 300, 17)
	curveFor := func(workers int) []EpochStats {
		cfg := tinyConfig(tr, metrics.BoundedSlowdown)
		cfg.Workers = workers
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		curve, err := a.Train(3)
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	serial := curveFor(1)
	parallel := curveFor(4)
	for i := range serial {
		if serial[i].MeanMetric != parallel[i].MeanMetric {
			t.Fatalf("epoch %d metric: serial %.10f != parallel %.10f",
				i+1, serial[i].MeanMetric, parallel[i].MeanMetric)
		}
		if serial[i].MeanReward != parallel[i].MeanReward {
			t.Fatalf("epoch %d reward differs across worker counts", i+1)
		}
		if serial[i].Update.KL != parallel[i].Update.KL {
			t.Fatalf("epoch %d PPO update diverged across worker counts", i+1)
		}
	}
}

func TestWorkersMoreThanTrajectories(t *testing.T) {
	tr := trace.Preset("Lublin-2", 300, 18)
	cfg := tinyConfig(tr, metrics.BoundedSlowdown)
	cfg.TrajPerEpoch = 2
	cfg.Workers = 16 // clamped internally
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedRewardTraining(t *testing.T) {
	tr := trace.Preset("Lublin-2", 300, 19)
	cfg := tinyConfig(tr, metrics.BoundedSlowdown)
	// Combined goal: minimize bsld AND maximize utilization (§VII).
	cfg.RewardWeights = map[metrics.Kind]float64{
		metrics.BoundedSlowdown: 1,
		metrics.Utilization:     100,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// The reported metric is still the plain goal...
	if s.MeanMetric < 1 {
		t.Errorf("MeanMetric = %g, want bsld >= 1", s.MeanMetric)
	}
	// ...but the reward is the combination: -bsld + 100·util, which for
	// a lightly loaded window can even be positive — it just must not
	// equal the plain -bsld.
	if math.Abs(s.MeanReward+s.MeanMetric) < 1e-9 {
		t.Error("reward looks like plain -bsld; weighted reward not applied")
	}
}

func TestWeightedRewardFunction(t *testing.T) {
	fn := metrics.WeightedReward(map[metrics.Kind]float64{
		metrics.Utilization: 2,
		metrics.WaitTime:    0.5,
	})
	r := metrics.Result{Utilization: 0.8}
	// No started jobs: wait contributes 0; reward = 2*0.8.
	if got := fn(r); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("weighted reward = %g, want 1.6", got)
	}
}

// TestParallelFilterStreamUnchanged: the trajectory filter consumes the
// agent RNG serially, so enabling workers must not change which windows
// are accepted.
func TestParallelFilterStreamUnchanged(t *testing.T) {
	tr := trace.Preset("PIK-IPLEX", 600, 20)
	run := func(workers int) int {
		cfg := tinyConfig(tr, metrics.BoundedSlowdown)
		cfg.Filter = true
		cfg.FilterProbeN = 10
		cfg.FilterPhase1 = 5
		cfg.Workers = workers
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := a.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return s.Rejected
	}
	if r1, r4 := run(1), run(4); r1 != r4 {
		t.Errorf("filter rejections differ across worker counts: %d vs %d", r1, r4)
	}
}

func TestTrainUnderUserQuota(t *testing.T) {
	tr := trace.Preset("HPC2N", 300, 23)
	cfg := tinyConfig(tr, metrics.FairMaxBoundedSlowdown)
	cfg.UserQuota = tr.Processors / 4
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanMetric < 1 {
		t.Errorf("fair-bsld = %g under quota, want >= 1", s.MeanMetric)
	}
}

func TestTrainEpochRaceFree(t *testing.T) {
	// Exercised under -race in CI: 8 workers hammering shared weights
	// read-only while rolling out.
	tr := trace.Preset("Lublin-1", 300, 21)
	cfg := tinyConfig(tr, metrics.BoundedSlowdown)
	cfg.TrajPerEpoch = 8
	cfg.Workers = 8
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(2); err != nil {
		t.Fatal(err)
	}
}
