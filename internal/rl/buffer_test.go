package rl

import (
	"math"
	"testing"
	"testing/quick"
)

func obsOf(v float64) []float64 { return []float64{v} }
func maskOf() []bool            { return []bool{true} }

func TestFinishPathTerminalRewardGAE(t *testing.T) {
	// Three steps, reward only at the end (the paper's reward shape),
	// gamma=1, lambda=1: every advantage = R - V_t, returns all = R.
	b := NewBuffer(1, 1)
	vals := []float64{0.5, 0.2, -0.1}
	for i, v := range vals {
		r := 0.0
		if i == 2 {
			r = -10
		}
		b.Store(obsOf(float64(i)), maskOf(), 0, r, v, -0.7)
	}
	b.FinishPath(0)
	for i := range vals {
		wantAdv := -10 - vals[i]
		if math.Abs(b.Advs[i]-wantAdv) > 1e-12 {
			t.Errorf("adv[%d] = %g, want %g", i, b.Advs[i], wantAdv)
		}
		if math.Abs(b.Rets[i]-(-10)) > 1e-12 {
			t.Errorf("ret[%d] = %g, want -10", i, b.Rets[i])
		}
	}
}

func TestGAELambdaOneEqualsMonteCarlo(t *testing.T) {
	// Property (documented in DESIGN.md): with λ=1 the GAE advantage is
	// the Monte-Carlo return minus the value baseline, for any rewards.
	f := func(seed int64) bool {
		rews := []float64{1, -2, 3, 0.5, -1}
		vals := []float64{0.1, 0.2, -0.3, 0.4, 0}
		gamma := 0.9
		b := NewBuffer(gamma, 1)
		for i := range rews {
			b.Store(obsOf(0), maskOf(), 0, rews[i]+float64(seed%3), vals[i], 0)
		}
		b.FinishPath(0)
		// Monte-Carlo discounted returns.
		rets := make([]float64, len(rews))
		next := 0.0
		for i := len(rews) - 1; i >= 0; i-- {
			next = rews[i] + float64(seed%3) + gamma*next
			rets[i] = next
		}
		for i := range rews {
			if math.Abs(b.Rets[i]-rets[i]) > 1e-9 {
				return false
			}
			if math.Abs(b.Advs[i]-(rets[i]-vals[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGAELambdaZeroIsOneStepTD(t *testing.T) {
	b := NewBuffer(0.99, 0)
	rews := []float64{1, 2}
	vals := []float64{0.5, 0.7}
	for i := range rews {
		b.Store(obsOf(0), maskOf(), 0, rews[i], vals[i], 0)
	}
	b.FinishPath(3) // bootstrap value
	want0 := rews[0] + 0.99*vals[1] - vals[0]
	want1 := rews[1] + 0.99*3 - vals[1]
	if math.Abs(b.Advs[0]-want0) > 1e-12 || math.Abs(b.Advs[1]-want1) > 1e-12 {
		t.Errorf("TD advantages = %v, want [%g %g]", b.Advs, want0, want1)
	}
}

func TestMultipleTrajectories(t *testing.T) {
	b := NewBuffer(1, 1)
	// Trajectory 1: 2 steps, final reward -4.
	b.Store(obsOf(1), maskOf(), 0, 0, 0, 0)
	b.Store(obsOf(2), maskOf(), 0, -4, 0, 0)
	b.FinishPath(0)
	// Trajectory 2: 1 step, reward -8.
	b.Store(obsOf(3), maskOf(), 0, -8, 0, 0)
	b.FinishPath(0)

	if b.Len() != 3 || len(b.Advs) != 3 {
		t.Fatalf("len = %d advs = %d, want 3", b.Len(), len(b.Advs))
	}
	// Rewards-to-go must not leak across the trajectory boundary.
	if b.Rets[0] != -4 || b.Rets[1] != -4 || b.Rets[2] != -8 {
		t.Errorf("rets = %v, want [-4 -4 -8]", b.Rets)
	}
}

func TestGetNormalizesAdvantages(t *testing.T) {
	b := NewBuffer(1, 1)
	for i := 0; i < 8; i++ {
		r := 0.0
		if i == 7 {
			r = -100
		}
		b.Store(obsOf(float64(i)), maskOf(), 0, r, float64(i), 0)
	}
	b.FinishPath(0)
	batch, err := b.Get()
	if err != nil {
		t.Fatal(err)
	}
	m, s := meanStd(batch.Advs)
	if math.Abs(m) > 1e-9 {
		t.Errorf("normalized adv mean = %g, want 0", m)
	}
	if math.Abs(s-1) > 1e-6 {
		t.Errorf("normalized adv std = %g, want 1", s)
	}
}

func TestGetErrors(t *testing.T) {
	b := NewBuffer(1, 1)
	if _, err := b.Get(); err == nil {
		t.Error("empty buffer Get must error")
	}
	b.Store(obsOf(0), maskOf(), 0, 0, 0, 0)
	if _, err := b.Get(); err == nil {
		t.Error("Get with open trajectory must error")
	}
}

func TestFinishEmptyPathIsNoop(t *testing.T) {
	b := NewBuffer(1, 1)
	b.FinishPath(0)
	if b.Len() != 0 || len(b.Advs) != 0 {
		t.Error("finishing an empty path must be a no-op")
	}
}

func TestReset(t *testing.T) {
	b := NewBuffer(1, 1)
	b.Store(obsOf(0), maskOf(), 0, 1, 0, 0)
	b.FinishPath(0)
	b.Reset()
	if b.Len() != 0 || len(b.Advs) != 0 || len(b.Rets) != 0 {
		t.Error("Reset must clear everything")
	}
	// Reusable after reset.
	b.Store(obsOf(0), maskOf(), 0, 1, 0, 0)
	b.FinishPath(0)
	if _, err := b.Get(); err != nil {
		t.Errorf("buffer unusable after Reset: %v", err)
	}
}
