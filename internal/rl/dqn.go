package rl

import (
	"math/rand"

	ag "rlsched/internal/autograd"
	"rlsched/internal/nn"
	"rlsched/internal/optim"
)

// DQN is the value-based baseline the paper considers and rejects
// (§II-B2: "policy gradient is proven to have strong convergence
// guarantees ... mostly due to the high variance of batch job scheduling,
// which may lead to oscillations in Q-learning"). It is implemented here
// so that claim is testable: the ablation-dqn experiment trains both
// learners on the same environment. The Q-network reuses the policy
// architectures — one output per queue slot, read as Q(s, a) instead of a
// logit.
type DQN struct {
	Q      nn.PolicyNet
	Target nn.PolicyNet
	cfg    DQNConfig
	inf    nn.Inferer // graph-free Q fast path for action selection
	tinf   nn.Inferer // graph-free target fast path for bootstrap targets
	opt    *optim.Adam
	replay *Replay
	obsDim int
	maxObs int
	steps  int
	eps    float64
}

// DQNConfig holds Q-learning hyper-parameters; zero fields take defaults.
type DQNConfig struct {
	LR           float64 // Adam learning rate, default 1e-3
	Gamma        float64 // discount, default 1 (terminal reward)
	EpsStart     float64 // initial exploration, default 1
	EpsMin       float64 // floor, default 0.05
	EpsDecay     float64 // multiplicative decay per training step, default 0.995
	BatchSize    int     // replay batch, default 64
	ReplayCap    int     // replay capacity, default 20000
	TargetEvery  int     // steps between target syncs, default 200
	TrainEvery   int     // environment steps per gradient step, default 4
	WarmupBuffer int     // transitions before learning starts, default 256
}

func (c DQNConfig) defaults() DQNConfig {
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.EpsStart == 0 {
		c.EpsStart = 1
	}
	if c.EpsMin == 0 {
		c.EpsMin = 0.05
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 0.995
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 20000
	}
	if c.TargetEvery == 0 {
		c.TargetEvery = 200
	}
	if c.TrainEvery == 0 {
		c.TrainEvery = 4
	}
	if c.WarmupBuffer == 0 {
		c.WarmupBuffer = 256
	}
	return c
}

// Transition is one replayed experience.
type Transition struct {
	Obs      []float64
	Mask     []bool
	Act      int
	Rew      float64
	NextObs  []float64
	NextMask []bool
	Done     bool
}

// Replay is a fixed-capacity ring buffer of transitions.
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay returns a replay buffer with the given capacity.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{buf: make([]Transition, 0, capacity)}
}

// Add stores a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
		return
	}
	r.full = true
	r.buf[r.next] = t
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(rng *rand.Rand, n int) []Transition {
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}

// NewDQN builds the learner; target starts as a copy of Q.
func NewDQN(q, target nn.PolicyNet, cfg DQNConfig) (*DQN, error) {
	cfg = cfg.defaults()
	if err := nn.CopyParams(target, q); err != nil {
		return nil, err
	}
	maxObs, feat := q.Dims()
	return &DQN{
		Q:      q,
		Target: target,
		cfg:    cfg,
		inf:    nn.AsInferer(q),
		tinf:   nn.AsInferer(target),
		opt:    optim.NewAdam(q.Params(), cfg.LR),
		replay: NewReplay(cfg.ReplayCap),
		obsDim: maxObs * feat,
		maxObs: maxObs,
		eps:    cfg.EpsStart,
	}, nil
}

// Epsilon returns the current exploration rate.
func (d *DQN) Epsilon() float64 { return d.eps }

// Act selects an action epsilon-greedily over the masked Q-values.
func (d *DQN) Act(rng *rand.Rand, obs []float64, mask []bool) int {
	valid := validSlots(mask)
	if len(valid) == 0 {
		return 0
	}
	if rng.Float64() < d.eps {
		return valid[rng.Intn(len(valid))]
	}
	return d.Best(obs, mask)
}

// Best returns the greedy action (inference mode, graph-free).
func (d *DQN) Best(obs []float64, mask []bool) int {
	q := make([]float64, d.maxObs)
	d.inf.InferLogits(obs, 1, q)
	return argmaxValid(q, mask)
}

func validSlots(mask []bool) []int {
	var out []int
	for i, ok := range mask {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// Observe records a transition and, on schedule, runs a gradient step and
// target sync. It returns the TD loss of the step (0 when no step ran).
func (d *DQN) Observe(rng *rand.Rand, t Transition) float64 {
	d.replay.Add(t)
	d.steps++
	loss := 0.0
	if d.replay.Len() >= d.cfg.WarmupBuffer && d.steps%d.cfg.TrainEvery == 0 {
		loss = d.trainStep(rng)
		d.eps *= d.cfg.EpsDecay
		if d.eps < d.cfg.EpsMin {
			d.eps = d.cfg.EpsMin
		}
	}
	if d.steps%d.cfg.TargetEvery == 0 {
		if err := nn.CopyParams(d.Target, d.Q); err != nil {
			panic("rl: target sync: " + err.Error())
		}
	}
	return loss
}

// trainStep samples a batch and minimizes the TD error
// (Q(s,a) − [r + γ·max_a' Q_target(s',a')·(1−done)])².
func (d *DQN) trainStep(rng *rand.Rand) float64 {
	batch := d.replay.Sample(rng, d.cfg.BatchSize)
	n := len(batch)
	flat := make([]float64, n*d.obsDim)
	nextFlat := make([]float64, n*d.obsDim)
	acts := make([]int, n)
	for i, t := range batch {
		copy(flat[i*d.obsDim:], t.Obs)
		copy(nextFlat[i*d.obsDim:], t.NextObs)
		acts[i] = t.Act
	}
	// Bootstrapped targets from the frozen network: one batched graph-free
	// forward pass (no gradient flows through targets by construction).
	nextQ := make([]float64, n*d.maxObs)
	d.tinf.InferLogits(nextFlat, n, nextQ)
	targets := make([]float64, n)
	for i, t := range batch {
		y := t.Rew
		if !t.Done {
			best := argmaxValid(nextQ[i*d.maxObs:(i+1)*d.maxObs], t.NextMask)
			y += d.cfg.Gamma * nextQ[i*d.maxObs+best]
		}
		targets[i] = y
	}
	q := ag.GatherRows(d.Q.Logits(ag.FromSlice(flat, n, d.obsDim)), acts)
	loss := ag.Mean(ag.Square(ag.Sub(q, ag.FromSlice(targets, n, 1))))
	d.opt.ZeroGrad()
	loss.Backward()
	optim.ClipGradNorm(d.Q.Params(), 10)
	d.opt.Step()
	return loss.Item()
}
