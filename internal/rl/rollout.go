package rl

import (
	"math"
	"math/rand"
	"sync"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
)

// This file is the parallel rollout engine: trajectory collection for
// training runs on the same graph-free nn.Inferer fast path the serving
// daemon uses, so PPO/DQN stop paying autograd tax on action selection.
// A Collector owns a pool of private sim.Env workers; each trajectory is
// driven by its own deterministic RNG, so the collected stream is
// bit-identical for any worker count — parallelism changes wall-clock only.

// CollectorConfig wires a Collector.
type CollectorConfig struct {
	// Policy is the graph-free actor fast path (nn.AsInferer(policyNet)).
	Policy nn.Inferer
	// Value is the graph-free critic. Nil is allowed (e.g. value-free
	// learners); collected Vals are then zero.
	Value nn.ValueInferer
	// MaxObs and Feat are the observation dimensions the networks expect.
	MaxObs, Feat int
	// Sim configures the private environment of every worker.
	Sim sim.Config
	// Goal is the metric the environments reward and report.
	Goal metrics.Kind
	// Reward optionally overrides the terminal reward (weighted
	// multi-goal training).
	Reward metrics.RewardFunc
	// Workers is the number of collection goroutines (<= 1 means serial).
	Workers int
}

// Rollout is one collected trajectory in training layout: observations and
// masks are stored flat (row i at [i·dim, (i+1)·dim)) so the PPO update
// wraps them in a batch tensor without copying.
type Rollout struct {
	// Obs is Steps×(MaxObs·Feat) flattened observations.
	Obs []float64
	// Masks is Steps×MaxObs flattened action-validity flags.
	Masks []bool
	Acts  []int
	Rews  []float64
	Vals  []float64
	Logps []float64
	// FinalReward is the terminal reward of the trajectory.
	FinalReward float64
	// Metric is the goal metric of the finished sequence.
	Metric float64
	// Err reports a failed rollout (the rest of the fields are partial).
	Err error
}

// Steps returns the trajectory length.
func (r *Rollout) Steps() int { return len(r.Acts) }

// Collector collects training trajectories through the shared inference
// fast path. It is not safe for concurrent Collect calls, and no training
// update may run while a Collect is in flight (workers read the network
// weights without locks, exactly like the serving daemon).
type Collector struct {
	cfg    CollectorConfig
	obsDim int
	envs   []*sim.Env
	logits [][]float64 // per-worker scratch
}

// NewCollector builds a collector. Environments are created lazily, one
// per worker.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Collector{cfg: cfg, obsDim: cfg.MaxObs * cfg.Feat}
}

// Workers returns the configured worker count.
func (c *Collector) Workers() int { return c.cfg.Workers }

// env returns the i-th worker's private environment (lazily grown).
func (c *Collector) env(i int) *sim.Env {
	for len(c.envs) <= i {
		e := sim.NewEnv(c.cfg.Sim, c.cfg.Goal)
		if c.cfg.Reward != nil {
			e.SetReward(c.cfg.Reward)
		}
		c.envs = append(c.envs, e)
		c.logits = append(c.logits, make([]float64, c.cfg.MaxObs))
	}
	return c.envs[i]
}

// Collect rolls one trajectory per window, trajectory i seeded by seeds[i],
// and returns them in input order. Rollout buffers are freshly allocated
// per call — callers retain them (the PPO update consumes the epoch's
// batch long after collection).
func (c *Collector) Collect(wins [][]*job.Job, seeds []int64) []Rollout {
	if len(seeds) != len(wins) {
		panic("rl: Collect needs one seed per window")
	}
	out := make([]Rollout, len(wins))
	workers := c.cfg.Workers
	if workers > len(wins) {
		workers = len(wins)
	}
	if workers <= 1 {
		env := c.env(0)
		for i, win := range wins {
			c.collectOne(env, c.logits[0], rand.New(rand.NewSource(seeds[i])), win, &out[i])
		}
		return out
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		env, logits := c.env(w), c.logits[w]
		wg.Add(1)
		go func(env *sim.Env, logits []float64) {
			defer wg.Done()
			for i := range idxCh {
				c.collectOne(env, logits, rand.New(rand.NewSource(seeds[i])), wins[i], &out[i])
			}
		}(env, logits)
	}
	for i := range wins {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return out
}

// collectOne drives a single trajectory. Observations and masks are built
// directly into the rollout's flat backing arrays (sim.BuildObsInto under
// Env.ObserveInto), so the loop allocates only when those arrays grow.
func (c *Collector) collectOne(env *sim.Env, logits []float64, rng *rand.Rand, win []*job.Job, r *Rollout) {
	if err := env.ResetOnly(win); err != nil {
		r.Err = err
		return
	}
	var val [1]float64
	for {
		oOff, mOff := len(r.Obs), len(r.Masks)
		r.Obs = append(r.Obs, make([]float64, c.obsDim)...)
		r.Masks = append(r.Masks, make([]bool, c.cfg.MaxObs)...)
		obs := r.Obs[oOff : oOff+c.obsDim]
		mask := r.Masks[mOff : mOff+c.cfg.MaxObs]
		env.ObserveInto(obs)
		env.MaskInto(mask)

		c.cfg.Policy.InferLogits(obs, 1, logits)
		act, logp := sampleMasked(rng, logits, mask)
		if c.cfg.Value != nil {
			c.cfg.Value.InferValues(obs, 1, val[:])
		}

		rew, done := env.StepOnly(act)
		r.Acts = append(r.Acts, act)
		r.Rews = append(r.Rews, rew)
		r.Vals = append(r.Vals, val[0])
		r.Logps = append(r.Logps, logp)
		if done {
			r.FinalReward = rew
			break
		}
	}
	r.Metric = metrics.Value(c.cfg.Goal, env.Result())
}

// maskAndLogSoftmax pushes invalid slots toward -inf and converts the
// logits to log-probabilities in place — the raw-slice twin of
// LogSoftmax(maskedLogits(...)) used by the graph-based update.
func maskAndLogSoftmax(logits []float64, mask []bool) {
	max := math.Inf(-1)
	for j := range logits {
		if j < len(mask) && !mask[j] {
			logits[j] += maskPenalty
		}
		if logits[j] > max {
			max = logits[j]
		}
	}
	var lse float64
	for _, v := range logits {
		lse += math.Exp(v - max)
	}
	lse = math.Log(lse) + max
	for j := range logits {
		logits[j] -= lse
	}
}

// sampleMasked draws an action from the masked categorical distribution
// defined by logits, mutating logits into log-probabilities, and returns
// the action with its log-probability. The sampling arithmetic matches the
// historical graph-based SelectAction exactly: accumulate probabilities in
// slot order, with an argmax-over-valid fallback for the numeric tail.
func sampleMasked(rng *rand.Rand, logits []float64, mask []bool) (act int, logp float64) {
	maskAndLogSoftmax(logits, mask)
	u := rng.Float64()
	acc := 0.0
	act = -1
	for j := range logits {
		acc += math.Exp(logits[j])
		if u <= acc {
			act = j
			break
		}
	}
	if act < 0 { // numeric tail: fall back to the best valid slot
		act = argmaxValid(logits, mask)
	}
	return act, logits[act]
}
