package rl

import (
	"math/rand"

	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/stats"
	"rlsched/internal/trace"
)

// Trajectory filtering (§IV-C): before training, a known heuristic (SJF)
// probes randomly sampled job sequences from the trace; the resulting
// metric distribution (Fig 7) fixes an acceptance range
// R = (median, 2·mean). Phase-1 training only sees sequences whose
// SJF metric falls inside R — dropping both the 'easy sequences' (below
// the median, which teach nothing) and the extreme 'hard sequences'
// (above twice the mean, which destabilize PPO). Phase 2 trains on
// everything once the agent has converged.

// ProbeStats summarizes the heuristic probe distribution.
type ProbeStats struct {
	// Values are the per-sequence metric values under the probe
	// scheduler (SJF).
	Values []float64
	Median float64
	Mean   float64
	Skew   float64
}

// Range returns the paper's acceptance range R = (median, 2·mean).
func (p ProbeStats) Range() (lo, hi float64) { return p.Median, 2 * p.Mean }

// Probe schedules n randomly sampled seqLen-job windows of the trace with
// SJF and collects the goal metric of each, reproducing the Fig 7
// distribution.
func Probe(tr *trace.Trace, cfg sim.Config, goal metrics.Kind, n, seqLen int, rng *rand.Rand) (ProbeStats, error) {
	sjf := sched.SJF()
	s := sim.New(cfg)
	var ps ProbeStats
	for i := 0; i < n; i++ {
		win := tr.SampleWindow(rng, seqLen)
		if err := s.Load(win); err != nil {
			return ps, err
		}
		res, err := s.Run(sjf)
		if err != nil {
			return ps, err
		}
		ps.Values = append(ps.Values, metrics.Value(goal, res))
	}
	ps.Median = stats.Median(ps.Values)
	ps.Mean = stats.Mean(ps.Values)
	ps.Skew = stats.Skewness(ps.Values)
	return ps, nil
}

// Filter accepts or rejects candidate training sequences by their SJF
// metric. A disabled filter accepts everything.
type Filter struct {
	Enabled bool
	Lo, Hi  float64

	goal metrics.Kind
	sjf  sim.Scheduler
	sim  *sim.Simulator
}

// NewFilter builds a filter with the acceptance range derived from a probe.
func NewFilter(cfg sim.Config, goal metrics.Kind, ps ProbeStats) *Filter {
	lo, hi := ps.Range()
	return &Filter{
		Enabled: true,
		Lo:      lo,
		Hi:      hi,
		goal:    goal,
		sjf:     sched.SJF(),
		sim:     sim.New(cfg),
	}
}

// Accept probes the candidate window with SJF and reports whether its
// metric falls inside (Lo, Hi]. The window's scheduling state is left
// reset-able: training environments reload (and reset) the same jobs.
// Probe failures reject the window.
func (f *Filter) Accept(win []*job.Job) bool {
	if !f.Enabled {
		return true
	}
	if err := f.sim.Load(win); err != nil {
		return false
	}
	res, err := f.sim.Run(f.sjf)
	if err != nil {
		return false
	}
	v := metrics.Value(f.goal, res)
	return v > f.Lo && v <= f.Hi
}

// Disable turns the filter off (phase-2 training on all sequences).
func (f *Filter) Disable() { f.Enabled = false }
