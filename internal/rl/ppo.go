package rl

import (
	"math"
	"math/rand"

	ag "rlsched/internal/autograd"
	"rlsched/internal/nn"
	"rlsched/internal/optim"
)

// maskPenalty is added to the logits of invalid (padding) action slots so
// their probability vanishes — the paper masks illegal scheduling actions
// the same way (§V-F).
const maskPenalty = -1e9

// PPOConfig holds the PPO hyper-parameters. Defaults follow the paper's
// setup (§V-A): learning rate 1e-3 and 80 policy/value update iterations
// per epoch, with SpinningUp's standard clip ratio and KL early stop.
type PPOConfig struct {
	ClipRatio    float64 // surrogate clip, default 0.2
	PiLR         float64 // policy Adam lr, default 1e-3
	VLR          float64 // value Adam lr, default 1e-3
	TrainPiIters int     // policy updates per epoch, default 80
	TrainVIters  int     // value updates per epoch, default 80
	TargetKL     float64 // early stop when KL > 1.5×TargetKL, default 0.01
	Gamma        float64 // discount, default 1 (single terminal reward)
	Lambda       float64 // GAE lambda, default 0.97
	EntCoef      float64 // entropy bonus coefficient, default 0
	MaxGradNorm  float64 // global grad-norm clip, default 5
}

// Defaults fills zero fields with the paper/SpinningUp defaults.
func (c PPOConfig) Defaults() PPOConfig {
	if c.ClipRatio == 0 {
		c.ClipRatio = 0.2
	}
	if c.PiLR == 0 {
		c.PiLR = 1e-3
	}
	if c.VLR == 0 {
		c.VLR = 1e-3
	}
	if c.TrainPiIters == 0 {
		c.TrainPiIters = 80
	}
	if c.TrainVIters == 0 {
		c.TrainVIters = 80
	}
	if c.TargetKL == 0 {
		c.TargetKL = 0.01
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Lambda == 0 {
		c.Lambda = 0.97
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 5
	}
	return c
}

// PPO couples a policy network and a value network with their optimizers
// (the actor–critic model of §IV-B). The autograd graph is built only
// inside Update; action selection (SelectAction/BestAction) runs on the
// graph-free inference fast path shared with the serving daemon.
type PPO struct {
	Policy nn.PolicyNet
	Value  *nn.ValueNet
	cfg    PPOConfig
	inf    nn.Inferer
	piOpt  *optim.Adam
	vOpt   *optim.Adam
	obsDim int
	maxObs int
}

// NewPPO wires the agent together.
func NewPPO(policy nn.PolicyNet, value *nn.ValueNet, cfg PPOConfig) *PPO {
	cfg = cfg.Defaults()
	maxObs, feat := policy.Dims()
	return &PPO{
		Policy: policy,
		Value:  value,
		cfg:    cfg,
		inf:    nn.AsInferer(policy),
		piOpt:  optim.NewAdam(policy.Params(), cfg.PiLR),
		vOpt:   optim.NewAdam(value.Params(), cfg.VLR),
		obsDim: maxObs * feat,
		maxObs: maxObs,
	}
}

// Config returns the resolved hyper-parameters.
func (p *PPO) Config() PPOConfig { return p.cfg }

// Inferer returns the policy's graph-free fast path (shared with rollout
// collection and serving).
func (p *PPO) Inferer() nn.Inferer { return p.inf }

// maskedLogProbs runs the policy on a batch, pushes invalid slots to -inf
// and log-softmaxes row-wise, all through the fused masking op. obs is
// [B, obsDim]; masks is B×maxObs flat validity.
func (p *PPO) maskedLogProbs(obs *ag.Tensor, masks []bool) *ag.Tensor {
	return ag.MaskedLogSoftmax(p.Policy.Logits(obs), masks, maskPenalty)
}

// SelectAction samples an action from the masked policy for a single
// observation, returning the action, its log-probability and the critic's
// value estimate. Used during training rollouts (§IV-B1: "during training,
// it is sampled ... to keep exploring"). The forward passes are graph-free.
func (p *PPO) SelectAction(rng *rand.Rand, obs []float64, mask []bool) (act int, logp, val float64) {
	logits := make([]float64, p.maxObs)
	p.inf.InferLogits(obs, 1, logits)
	act, logp = sampleMasked(rng, logits, mask)
	var v [1]float64
	p.Value.InferValues(obs, 1, v[:])
	return act, logp, v[0]
}

// BestAction returns the argmax action (inference mode: "during testing,
// it is directly used to select the job with the highest probability").
func (p *PPO) BestAction(obs []float64, mask []bool) int {
	logits := make([]float64, p.maxObs)
	p.inf.InferLogits(obs, 1, logits)
	return argmaxValid(logits, mask)
}

func argmaxValid(scores []float64, mask []bool) int {
	best := -1
	for j, v := range scores {
		if j < len(mask) && !mask[j] {
			continue
		}
		if best < 0 || v > scores[best] {
			best = j
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// UpdateStats reports one PPO update.
type UpdateStats struct {
	PolicyLoss float64
	ValueLoss  float64
	KL         float64
	Entropy    float64
	PiIters    int
	EarlyStop  bool
}

// Update runs the clipped-surrogate policy updates (with KL early
// stopping) followed by the value-function regression, exactly the
// two-phase per-epoch schedule of §V-A. The batch's flat observation array
// wraps into one [N, obsDim] tensor, so every update iteration is a single
// batched forward/backward pass — one MatMul per layer, not N.
func (p *PPO) Update(batch Batch) UpdateStats {
	n := batch.N
	obs := ag.FromSlice(batch.Obs, n, p.obsDim)
	advT := ag.FromSlice(batch.Advs, n, 1)
	oldLogpT := ag.FromSlice(batch.Logps, n, 1)
	retT := ag.FromSlice(batch.Rets, n, 1)

	var stats UpdateStats
	// --- policy ---
	for it := 0; it < p.cfg.TrainPiIters; it++ {
		logProbs := p.maskedLogProbs(obs, batch.Masks)
		logp := ag.GatherRows(logProbs, batch.Acts)
		ratio := ag.Exp(ag.Sub(logp, oldLogpT))
		surr1 := ag.Mul(ratio, advT)
		surr2 := ag.Mul(ag.Clamp(ratio, 1-p.cfg.ClipRatio, 1+p.cfg.ClipRatio), advT)
		objective := ag.Mean(ag.Minimum(surr1, surr2))
		loss := ag.Scale(objective, -1)

		// Entropy of the masked distribution, averaged per row:
		// H = −Σ p·log p. With no entropy bonus in the loss it is pure
		// reporting, computed without touching the graph.
		var entropy float64
		if p.cfg.EntCoef != 0 {
			ent := ag.Scale(ag.Mean(ag.Mul(ag.Exp(logProbs), logProbs)), -float64(p.maxObs))
			loss = ag.Sub(loss, ag.Scale(ent, p.cfg.EntCoef))
			entropy = ent.Item()
		} else {
			var s float64
			for _, lp := range logProbs.Data {
				s += math.Exp(lp) * lp
			}
			entropy = -s / float64(n)
		}

		kl := mean(sub(batch.Logps, logp.Data))
		stats.KL = kl
		stats.Entropy = entropy
		stats.PolicyLoss = loss.Item()
		if it > 0 && kl > 1.5*p.cfg.TargetKL {
			stats.EarlyStop = true
			break
		}
		p.piOpt.ZeroGrad()
		loss.Backward()
		optim.ClipGradNorm(p.Policy.Params(), p.cfg.MaxGradNorm)
		p.piOpt.Step()
		stats.PiIters = it + 1
	}

	// --- value ---
	for it := 0; it < p.cfg.TrainVIters; it++ {
		v := p.Value.Value(obs)
		loss := ag.Mean(ag.Square(ag.Sub(v, retT)))
		stats.ValueLoss = loss.Item()
		p.vOpt.ZeroGrad()
		loss.Backward()
		optim.ClipGradNorm(p.Value.Params(), p.cfg.MaxGradNorm)
		p.vOpt.Step()
	}
	return stats
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
