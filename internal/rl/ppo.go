package rl

import (
	"math"
	"math/rand"

	ag "rlsched/internal/autograd"
	"rlsched/internal/nn"
	"rlsched/internal/optim"
)

// maskPenalty is added to the logits of invalid (padding) action slots so
// their probability vanishes — the paper masks illegal scheduling actions
// the same way (§V-F).
const maskPenalty = -1e9

// PPOConfig holds the PPO hyper-parameters. Defaults follow the paper's
// setup (§V-A): learning rate 1e-3 and 80 policy/value update iterations
// per epoch, with SpinningUp's standard clip ratio and KL early stop.
type PPOConfig struct {
	ClipRatio    float64 // surrogate clip, default 0.2
	PiLR         float64 // policy Adam lr, default 1e-3
	VLR          float64 // value Adam lr, default 1e-3
	TrainPiIters int     // policy updates per epoch, default 80
	TrainVIters  int     // value updates per epoch, default 80
	TargetKL     float64 // early stop when KL > 1.5×TargetKL, default 0.01
	Gamma        float64 // discount, default 1 (single terminal reward)
	Lambda       float64 // GAE lambda, default 0.97
	EntCoef      float64 // entropy bonus coefficient, default 0
	MaxGradNorm  float64 // global grad-norm clip, default 5
}

// Defaults fills zero fields with the paper/SpinningUp defaults.
func (c PPOConfig) Defaults() PPOConfig {
	if c.ClipRatio == 0 {
		c.ClipRatio = 0.2
	}
	if c.PiLR == 0 {
		c.PiLR = 1e-3
	}
	if c.VLR == 0 {
		c.VLR = 1e-3
	}
	if c.TrainPiIters == 0 {
		c.TrainPiIters = 80
	}
	if c.TrainVIters == 0 {
		c.TrainVIters = 80
	}
	if c.TargetKL == 0 {
		c.TargetKL = 0.01
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Lambda == 0 {
		c.Lambda = 0.97
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 5
	}
	return c
}

// PPO couples a policy network and a value network with their optimizers
// (the actor–critic model of §IV-B).
type PPO struct {
	Policy nn.PolicyNet
	Value  *nn.ValueNet
	cfg    PPOConfig
	piOpt  *optim.Adam
	vOpt   *optim.Adam
	obsDim int
	maxObs int
}

// NewPPO wires the agent together.
func NewPPO(policy nn.PolicyNet, value *nn.ValueNet, cfg PPOConfig) *PPO {
	cfg = cfg.Defaults()
	maxObs, feat := policy.Dims()
	return &PPO{
		Policy: policy,
		Value:  value,
		cfg:    cfg,
		piOpt:  optim.NewAdam(policy.Params(), cfg.PiLR),
		vOpt:   optim.NewAdam(value.Params(), cfg.VLR),
		obsDim: maxObs * feat,
		maxObs: maxObs,
	}
}

// Config returns the resolved hyper-parameters.
func (p *PPO) Config() PPOConfig { return p.cfg }

// maskedLogits runs the policy on a batch and pushes invalid slots to
// -inf. obs is [B, obsDim] flat data; masks is per-row validity.
func (p *PPO) maskedLogits(obs *ag.Tensor, masks [][]bool) *ag.Tensor {
	logits := p.Policy.Logits(obs)
	pen := ag.New(logits.Shape...)
	for i, mask := range masks {
		for j := 0; j < p.maxObs; j++ {
			if !mask[j] {
				pen.Data[i*p.maxObs+j] = maskPenalty
			}
		}
	}
	return ag.Add(logits, pen)
}

// SelectAction samples an action from the masked policy for a single
// observation, returning the action, its log-probability and the critic's
// value estimate. Used during training rollouts (§IV-B1: "during training,
// it is sampled ... to keep exploring").
func (p *PPO) SelectAction(rng *rand.Rand, obs []float64, mask []bool) (act int, logp, val float64) {
	t := ag.FromSlice(obs, 1, p.obsDim)
	logProbs := ag.LogSoftmax(p.maskedLogits(t, [][]bool{mask}))
	u := rng.Float64()
	acc := 0.0
	act = -1
	for j := 0; j < p.maxObs; j++ {
		acc += math.Exp(logProbs.Data[j])
		if u <= acc {
			act = j
			break
		}
	}
	if act < 0 { // numeric tail: fall back to the best valid slot
		act = argmaxValid(logProbs.Data, mask)
	}
	val = p.Value.Value(t).Item()
	return act, logProbs.Data[act], val
}

// BestAction returns the argmax action (inference mode: "during testing,
// it is directly used to select the job with the highest probability").
func (p *PPO) BestAction(obs []float64, mask []bool) int {
	t := ag.FromSlice(obs, 1, p.obsDim)
	logits := p.maskedLogits(t, [][]bool{mask})
	return argmaxValid(logits.Data, mask)
}

func argmaxValid(scores []float64, mask []bool) int {
	best := -1
	for j, v := range scores {
		if j < len(mask) && !mask[j] {
			continue
		}
		if best < 0 || v > scores[best] {
			best = j
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// UpdateStats reports one PPO update.
type UpdateStats struct {
	PolicyLoss float64
	ValueLoss  float64
	KL         float64
	Entropy    float64
	PiIters    int
	EarlyStop  bool
}

// Update runs the clipped-surrogate policy updates (with KL early
// stopping) followed by the value-function regression, exactly the
// two-phase per-epoch schedule of §V-A.
func (p *PPO) Update(batch Batch) UpdateStats {
	n := len(batch.Obs)
	flat := make([]float64, n*p.obsDim)
	for i, o := range batch.Obs {
		copy(flat[i*p.obsDim:], o)
	}
	obs := ag.FromSlice(flat, n, p.obsDim)
	advT := ag.FromSlice(batch.Advs, n, 1)
	oldLogpT := ag.FromSlice(batch.Logps, n, 1)
	retT := ag.FromSlice(batch.Rets, n, 1)

	var stats UpdateStats
	// --- policy ---
	for it := 0; it < p.cfg.TrainPiIters; it++ {
		logProbs := ag.LogSoftmax(p.maskedLogits(obs, batch.Masks))
		logp := ag.GatherRows(logProbs, batch.Acts)
		ratio := ag.Exp(ag.Sub(logp, oldLogpT))
		surr1 := ag.Mul(ratio, advT)
		surr2 := ag.Mul(ag.Clamp(ratio, 1-p.cfg.ClipRatio, 1+p.cfg.ClipRatio), advT)
		objective := ag.Mean(ag.Minimum(surr1, surr2))
		loss := ag.Scale(objective, -1)

		// Entropy of the masked distribution, averaged per row:
		// H = −Σ p·log p. Mean over all cells × maxObs gives the row sum.
		ent := ag.Scale(ag.Mean(ag.Mul(ag.Exp(logProbs), logProbs)), -float64(p.maxObs))
		if p.cfg.EntCoef != 0 {
			loss = ag.Sub(loss, ag.Scale(ent, p.cfg.EntCoef))
		}

		kl := mean(sub(batch.Logps, logp.Data))
		stats.KL = kl
		stats.Entropy = ent.Item()
		stats.PolicyLoss = loss.Item()
		if it > 0 && kl > 1.5*p.cfg.TargetKL {
			stats.EarlyStop = true
			break
		}
		p.piOpt.ZeroGrad()
		loss.Backward()
		optim.ClipGradNorm(p.Policy.Params(), p.cfg.MaxGradNorm)
		p.piOpt.Step()
		stats.PiIters = it + 1
	}

	// --- value ---
	for it := 0; it < p.cfg.TrainVIters; it++ {
		v := p.Value.Value(obs)
		loss := ag.Mean(ag.Square(ag.Sub(v, retT)))
		stats.ValueLoss = loss.Item()
		p.vOpt.ZeroGrad()
		loss.Backward()
		optim.ClipGradNorm(p.Value.Params(), p.cfg.MaxGradNorm)
		p.vOpt.Step()
	}
	return stats
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
