package rl

import (
	"math"
	"math/rand"
	"testing"

	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func newTestDQN(t *testing.T, cfg DQNConfig) *DQN {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	q := nn.NewKernelNet(rng, tMaxObs, tFeat, []int{16, 8})
	target := nn.NewKernelNet(rng, tMaxObs, tFeat, []int{16, 8})
	d, err := NewDQN(q, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReplayRingBuffer(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Transition{Act: i})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", r.Len())
	}
	// Oldest entries evicted: remaining acts are {2,3,4} in some slots.
	seen := map[int]bool{}
	for _, tr := range r.buf {
		seen[tr.Act] = true
	}
	for _, want := range []int{2, 3, 4} {
		if !seen[want] {
			t.Errorf("act %d evicted too early, have %v", want, seen)
		}
	}
	rng := rand.New(rand.NewSource(2))
	s := r.Sample(rng, 10)
	if len(s) != 10 {
		t.Fatalf("Sample returned %d, want 10 (with replacement)", len(s))
	}
}

func TestReplayZeroCapacity(t *testing.T) {
	r := NewReplay(0)
	r.Add(Transition{Act: 9})
	if r.Len() != 1 {
		t.Error("degenerate capacity must clamp to 1")
	}
}

func TestDQNTargetStartsAsCopy(t *testing.T) {
	d := newTestDQN(t, DQNConfig{})
	rng := rand.New(rand.NewSource(3))
	obs, mask := randObsMask(rng, 4)
	if d.Best(obs, mask) != argmaxOfTarget(d, obs, mask) {
		t.Error("target must start identical to Q")
	}
}

func argmaxOfTarget(d *DQN, obs []float64, mask []bool) int {
	// Swap networks temporarily via a second DQN view.
	tmp := &DQN{Q: d.Target, inf: nn.AsInferer(d.Target), obsDim: d.obsDim, maxObs: d.maxObs}
	return tmp.Best(obs, mask)
}

func TestDQNActRespectsMask(t *testing.T) {
	d := newTestDQN(t, DQNConfig{})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		valid := 1 + rng.Intn(tMaxObs-1)
		obs, mask := randObsMask(rng, valid)
		if a := d.Act(rng, obs, mask); a >= valid {
			t.Fatalf("epsilon-greedy chose masked slot %d (valid < %d)", a, valid)
		}
	}
}

func TestDQNEpsilonDecays(t *testing.T) {
	d := newTestDQN(t, DQNConfig{WarmupBuffer: 4, TrainEvery: 1, BatchSize: 4, EpsDecay: 0.5, EpsMin: 0.1})
	rng := rand.New(rand.NewSource(5))
	obs, mask := randObsMask(rng, 4)
	for i := 0; i < 20; i++ {
		d.Observe(rng, Transition{Obs: obs, Mask: mask, Act: 0, Rew: 0, NextObs: obs, NextMask: mask, Done: true})
	}
	if d.Epsilon() != 0.1 {
		t.Errorf("epsilon = %g, want decayed to floor 0.1", d.Epsilon())
	}
}

// TestDQNLearnsBandit: a one-step task where action 0 pays +1 and every
// other action pays -1. After training, the greedy policy must prefer 0.
func TestDQNLearnsBandit(t *testing.T) {
	d := newTestDQN(t, DQNConfig{
		LR: 5e-3, WarmupBuffer: 32, TrainEvery: 1, BatchSize: 32,
		EpsDecay: 0.99, TargetEvery: 50,
	})
	rng := rand.New(rand.NewSource(6))
	obs, mask := randObsMask(rng, 4)
	for i := 0; i < 600; i++ {
		act := d.Act(rng, obs, mask)
		r := -1.0
		if act == 0 {
			r = 1.0
		}
		d.Observe(rng, Transition{Obs: obs, Mask: mask, Act: act, Rew: r, NextObs: obs, NextMask: mask, Done: true})
	}
	if got := d.Best(obs, mask); got != 0 {
		t.Errorf("greedy action = %d, want 0 after bandit training", got)
	}
}

func TestDQNTDLossFinite(t *testing.T) {
	d := newTestDQN(t, DQNConfig{WarmupBuffer: 8, TrainEvery: 1, BatchSize: 8})
	rng := rand.New(rand.NewSource(7))
	var lastLoss float64
	for i := 0; i < 50; i++ {
		obs, mask := randObsMask(rng, 6)
		next, nextMask := randObsMask(rng, 6)
		l := d.Observe(rng, Transition{
			Obs: obs, Mask: mask, Act: rng.Intn(6), Rew: rng.NormFloat64(),
			NextObs: next, NextMask: nextMask, Done: i%4 == 0,
		})
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("TD loss must stay finite")
		}
		lastLoss = l
	}
	if lastLoss == 0 {
		t.Error("training steps should have run after warmup")
	}
}

// TestDQNOnSchedulingEnv runs the Q-learner end-to-end on SchedGym — the
// ablation-dqn path — checking every job gets scheduled and learning
// stays finite on the real sparse-terminal-reward signal.
func TestDQNOnSchedulingEnv(t *testing.T) {
	tr := trace.Preset("Lublin-1", 200, 11)
	env := sim.NewEnv(sim.Config{Processors: tr.Processors, MaxObserve: tMaxObs}, metrics.BoundedSlowdown)
	d := newTestDQN(t, DQNConfig{WarmupBuffer: 16, TrainEvery: 2, BatchSize: 16})
	rng := rand.New(rand.NewSource(12))
	for ep := 0; ep < 3; ep++ {
		obs, err := env.Reset(tr.SampleWindow(rng, 32))
		if err != nil {
			t.Fatal(err)
		}
		for {
			mask := env.Mask()
			act := d.Act(rng, obs, mask)
			next, rew, done := env.Step(act)
			loss := d.Observe(rng, Transition{
				Obs: obs, Mask: mask, Act: act, Rew: rew,
				NextObs: next, NextMask: env.Mask(), Done: done,
			})
			if math.IsNaN(loss) {
				t.Fatal("NaN TD loss on the scheduling env")
			}
			obs = next
			if done {
				break
			}
		}
		for _, j := range env.Result().Jobs {
			if !j.Started() {
				t.Fatal("DQN-driven episode left a job unscheduled")
			}
		}
	}
}

func TestDQNConfigDefaults(t *testing.T) {
	c := DQNConfig{}.defaults()
	if c.LR != 1e-3 || c.Gamma != 1 || c.BatchSize != 64 || c.TargetEvery != 200 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c2 := (DQNConfig{BatchSize: 8}).defaults(); c2.BatchSize != 8 {
		t.Error("explicit values must survive")
	}
}
