package rl

import (
	"math"
	"math/rand"
	"testing"

	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

const (
	tMaxObs = 8
	tFeat   = sim.JobFeatures
)

func newTestPPO(t *testing.T, cfg PPOConfig) *PPO {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	p, err := nn.NewPolicy(rng, "kernel", tMaxObs, tFeat)
	if err != nil {
		t.Fatal(err)
	}
	v := nn.NewValueNet(rng, tMaxObs, tFeat, []int{16})
	return NewPPO(p, v, cfg)
}

func randObsMask(rng *rand.Rand, valid int) ([]float64, []bool) {
	obs := make([]float64, tMaxObs*tFeat)
	mask := make([]bool, tMaxObs)
	for i := 0; i < valid; i++ {
		for f := 0; f < tFeat; f++ {
			obs[i*tFeat+f] = rng.Float64()
		}
		mask[i] = true
	}
	return obs, mask
}

func TestConfigDefaults(t *testing.T) {
	c := PPOConfig{}.Defaults()
	if c.ClipRatio != 0.2 || c.PiLR != 1e-3 || c.TrainPiIters != 80 ||
		c.TrainVIters != 80 || c.Gamma != 1 || c.Lambda != 0.97 {
		t.Errorf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c2 := PPOConfig{TrainPiIters: 5}.Defaults()
	if c2.TrainPiIters != 5 {
		t.Error("explicit values must not be overwritten")
	}
}

func TestSelectActionRespectsMask(t *testing.T) {
	ppo := newTestPPO(t, PPOConfig{})
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		valid := 1 + rng.Intn(tMaxObs-1)
		obs, mask := randObsMask(rng, valid)
		act, logp, _ := ppo.SelectAction(rng, obs, mask)
		if act >= valid {
			t.Fatalf("sampled masked action %d (valid < %d)", act, valid)
		}
		if logp > 0 || math.IsNaN(logp) {
			t.Fatalf("logp = %g invalid", logp)
		}
	}
}

func TestBestActionRespectsMask(t *testing.T) {
	ppo := newTestPPO(t, PPOConfig{})
	rng := rand.New(rand.NewSource(3))
	obs, mask := randObsMask(rng, 3)
	for trial := 0; trial < 20; trial++ {
		if act := ppo.BestAction(obs, mask); act >= 3 {
			t.Fatalf("BestAction chose masked slot %d", act)
		}
	}
}

func TestSelectActionExplores(t *testing.T) {
	ppo := newTestPPO(t, PPOConfig{})
	rng := rand.New(rand.NewSource(4))
	obs, mask := randObsMask(rng, tMaxObs)
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		a, _, _ := ppo.SelectAction(rng, obs, mask)
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Error("sampling must explore more than one action")
	}
}

// TestUpdateImprovesPreferredAction trains PPO on a bandit-like problem:
// action 0 always gets a positive advantage, others negative. After the
// update, action 0's probability must rise.
func TestUpdateImprovesPreferredAction(t *testing.T) {
	ppo := newTestPPO(t, PPOConfig{TrainPiIters: 30, TrainVIters: 5, TargetKL: 100})
	rng := rand.New(rand.NewSource(5))
	b := NewBuffer(1, 1)
	obs, mask := randObsMask(rng, 4)
	for i := 0; i < 64; i++ {
		act, logp, val := ppo.SelectAction(rng, obs, mask)
		r := -1.0
		if act == 0 {
			r = 1.0
		}
		b.Store(obs, mask, act, r, val, logp)
		b.FinishPath(0)
	}
	batch, err := b.Get()
	if err != nil {
		t.Fatal(err)
	}
	before := prob0(ppo, obs, mask)
	stats := ppo.Update(batch)
	after := prob0(ppo, obs, mask)
	if after <= before {
		t.Errorf("P(action 0) = %g -> %g, must increase", before, after)
	}
	if stats.PiIters == 0 {
		t.Error("policy must take at least one gradient step")
	}
	if math.IsNaN(stats.PolicyLoss) || math.IsNaN(stats.ValueLoss) {
		t.Error("losses must be finite")
	}
}

func prob0(ppo *PPO, obs []float64, mask []bool) float64 {
	// Re-derive P(0) by sampling-free forward pass.
	act0 := 0
	_ = act0
	t := make([]float64, len(obs))
	copy(t, obs)
	// Use SelectAction's internals indirectly: compute via BestAction
	// trick is insufficient; sample empirically instead.
	rng := rand.New(rand.NewSource(42))
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		a, _, _ := ppo.SelectAction(rng, t, mask)
		if a == 0 {
			hits++
		}
	}
	return float64(hits) / n
}

func TestUpdateKLEarlyStop(t *testing.T) {
	// A microscopic TargetKL must trigger the early stop quickly.
	ppo := newTestPPO(t, PPOConfig{TrainPiIters: 80, TrainVIters: 1, TargetKL: 1e-9, PiLR: 0.05})
	rng := rand.New(rand.NewSource(6))
	b := NewBuffer(1, 1)
	for i := 0; i < 32; i++ {
		obs, mask := randObsMask(rng, 4)
		act, logp, val := ppo.SelectAction(rng, obs, mask)
		b.Store(obs, mask, act, rng.NormFloat64(), val, logp)
		b.FinishPath(0)
	}
	batch, _ := b.Get()
	stats := ppo.Update(batch)
	if !stats.EarlyStop {
		t.Error("KL early stop must fire with TargetKL=1e-9 and a hot lr")
	}
	if stats.PiIters >= 80 {
		t.Error("early stop must cut the iteration count")
	}
}

func TestValueLossDecreases(t *testing.T) {
	ppo := newTestPPO(t, PPOConfig{TrainPiIters: 1, TrainVIters: 40, VLR: 5e-3})
	rng := rand.New(rand.NewSource(7))
	b := NewBuffer(1, 1)
	for i := 0; i < 32; i++ {
		obs, mask := randObsMask(rng, 4)
		act, logp, val := ppo.SelectAction(rng, obs, mask)
		b.Store(obs, mask, act, -3, val, logp) // constant return -3
		b.FinishPath(0)
	}
	batch, _ := b.Get()
	first := ppo.Update(batch)
	second := ppo.Update(batch)
	if second.ValueLoss >= first.ValueLoss {
		t.Errorf("value loss %g -> %g, must decrease on a constant target",
			first.ValueLoss, second.ValueLoss)
	}
}

func TestProbeAndFilter(t *testing.T) {
	tr := trace.Preset("PIK-IPLEX", 1500, 9)
	cfg := sim.Config{Processors: tr.Processors, MaxObserve: 32}
	rng := rand.New(rand.NewSource(8))
	ps, err := Probe(tr, cfg, metrics.BoundedSlowdown, 40, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Values) != 40 {
		t.Fatalf("probe values = %d, want 40", len(ps.Values))
	}
	lo, hi := ps.Range()
	if lo != ps.Median || hi != 2*ps.Mean {
		t.Errorf("Range = (%g,%g), want (median=%g, 2·mean=%g)", lo, hi, ps.Median, 2*ps.Mean)
	}
	// The PIK-like trace is right-skewed: mean well above median (Fig 7).
	if ps.Mean <= ps.Median {
		t.Errorf("mean %g <= median %g: trace not skewed as Fig 7 requires", ps.Mean, ps.Median)
	}

	f := NewFilter(cfg, metrics.BoundedSlowdown, ps)
	accepted, rejected := 0, 0
	for i := 0; i < 60; i++ {
		win := tr.SampleWindow(rng, 64)
		if f.Accept(win) {
			accepted++
		} else {
			rejected++
		}
	}
	if accepted == 0 {
		t.Error("filter must accept some sequences")
	}
	if rejected == 0 {
		t.Error("filter must reject the easy majority on a skewed trace")
	}
	f.Disable()
	if !f.Accept(tr.SampleWindow(rng, 64)) {
		t.Error("disabled filter must accept everything")
	}
}

func TestFilterRejectsBrokenWindows(t *testing.T) {
	cfg := sim.Config{Processors: 4, MaxObserve: 8}
	f := NewFilter(cfg, metrics.BoundedSlowdown, ProbeStats{Median: 0, Mean: 10})
	if f.Accept(nil) {
		t.Error("empty window must be rejected")
	}
}
