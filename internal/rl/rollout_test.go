package rl

import (
	"math/rand"
	"reflect"
	"testing"

	ag "rlsched/internal/autograd"
	"rlsched/internal/job"
	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

const cMaxObs = 16

func newTestCollector(t *testing.T, workers int) (*Collector, *trace.Trace) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pol := nn.NewKernelNet(rng, cMaxObs, sim.JobFeatures, nil)
	val := nn.NewValueNet(rng, cMaxObs, sim.JobFeatures, nil)
	tr := trace.Preset("Lublin-1", 400, 12)
	c := NewCollector(CollectorConfig{
		Policy:  nn.AsInferer(pol),
		Value:   val,
		MaxObs:  cMaxObs,
		Feat:    sim.JobFeatures,
		Sim:     sim.Config{Processors: tr.Processors, MaxObserve: cMaxObs},
		Goal:    metrics.BoundedSlowdown,
		Workers: workers,
	})
	return c, tr
}

func sampleWins(tr *trace.Trace, n, seqLen int, seed int64) ([][]*job.Job, []int64) {
	rng := rand.New(rand.NewSource(seed))
	wins := make([][]*job.Job, n)
	seeds := make([]int64, n)
	for i := range wins {
		wins[i] = tr.SampleWindow(rng, seqLen)
		seeds[i] = seed + int64(i)*7919
	}
	return wins, seeds
}

// TestCollectZeroGraphNodes is the tentpole guarantee: trajectory
// collection must never construct an autograd graph node — action
// selection and value estimation go through the nn.Inferer fast path only.
func TestCollectZeroGraphNodes(t *testing.T) {
	c, tr := newTestCollector(t, 1)
	wins, seeds := sampleWins(tr, 4, 24, 21)
	before := ag.GraphNodeCount()
	rolls := c.Collect(wins, seeds)
	if delta := ag.GraphNodeCount() - before; delta != 0 {
		t.Fatalf("collection built %d autograd graph nodes, want 0", delta)
	}
	for i, r := range rolls {
		if r.Err != nil {
			t.Fatalf("rollout %d: %v", i, r.Err)
		}
		if r.Steps() == 0 {
			t.Fatalf("rollout %d collected no steps", i)
		}
	}
}

// TestCollectDeterministic: the same seeds must reproduce bit-identical
// rollouts run-to-run, and across worker counts (run under -race in CI).
func TestCollectDeterministic(t *testing.T) {
	collect := func(workers int) []Rollout {
		c, tr := newTestCollector(t, workers)
		wins, seeds := sampleWins(tr, 6, 32, 33)
		return c.Collect(wins, seeds)
	}
	a, b, par := collect(1), collect(1), collect(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different rollouts across runs")
	}
	if !reflect.DeepEqual(a, par) {
		t.Fatal("rollouts differ across worker counts")
	}
}

// TestCollectMatchesSelectAction: the collector's fast-path sampling must
// reproduce PPO.SelectAction exactly — same RNG stream, same actions, same
// log-probs and values — since both run the shared masked-sampling
// primitive over the shared Inferer.
func TestCollectMatchesSelectAction(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pol := nn.NewKernelNet(rng, cMaxObs, sim.JobFeatures, nil)
	val := nn.NewValueNet(rng, cMaxObs, sim.JobFeatures, nil)
	ppo := NewPPO(pol, val, PPOConfig{})
	tr := trace.Preset("Lublin-1", 400, 12)
	simCfg := sim.Config{Processors: tr.Processors, MaxObserve: cMaxObs}

	c := NewCollector(CollectorConfig{
		Policy: nn.AsInferer(pol), Value: val,
		MaxObs: cMaxObs, Feat: sim.JobFeatures,
		Sim: simCfg, Goal: metrics.BoundedSlowdown,
	})
	wins, seeds := sampleWins(tr, 2, 24, 55)
	rolls := c.Collect(wins, seeds)

	env := sim.NewEnv(simCfg, metrics.BoundedSlowdown)
	for i, r := range rolls {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		stepRng := rand.New(rand.NewSource(seeds[i]))
		obs, err := env.Reset(wins[i])
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < r.Steps(); s++ {
			mask := env.Mask()
			act, logp, v := ppo.SelectAction(stepRng, obs, mask)
			if act != r.Acts[s] || logp != r.Logps[s] || v != r.Vals[s] {
				t.Fatalf("traj %d step %d: collector (%d,%g,%g) != SelectAction (%d,%g,%g)",
					i, s, r.Acts[s], r.Logps[s], r.Vals[s], act, logp, v)
			}
			obs, _, _ = env.Step(act)
		}
	}
}

// TestStoreRolloutBatch: rollouts feed the buffer and come back out as one
// flat batch with the same contents, twice over for determinism.
func TestStoreRolloutBatch(t *testing.T) {
	build := func() Batch {
		c, tr := newTestCollector(t, 2)
		wins, seeds := sampleWins(tr, 4, 24, 66)
		buf := NewBuffer(1, 0.97)
		for _, r := range c.Collect(wins, seeds) {
			if err := buf.StoreRollout(r); err != nil {
				t.Fatal(err)
			}
		}
		batch, err := buf.Get()
		if err != nil {
			t.Fatal(err)
		}
		return batch
	}
	a, b := build(), build()
	if a.N == 0 || a.ObsDim != cMaxObs*sim.JobFeatures || a.MaxObs != cMaxObs {
		t.Fatalf("batch dims N=%d ObsDim=%d MaxObs=%d", a.N, a.ObsDim, a.MaxObs)
	}
	if len(a.Obs) != a.N*a.ObsDim || len(a.Masks) != a.N*a.MaxObs {
		t.Fatal("flat batch arrays have wrong lengths")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different training batches")
	}
}
