// Package rl implements the reinforcement-learning machinery of the paper:
// a trajectory buffer with Generalized Advantage Estimation, the PPO
// actor–critic update (§V-A: OpenAI SpinningUp-style PPO, 80 update
// iterations per epoch, lr 1e-3), the parallel rollout collector driving
// trajectories through the graph-free inference fast path, and the
// trajectory-filtering variance reduction of §IV-C.
package rl

import (
	"fmt"
	"math"
)

// Buffer accumulates rollout steps across trajectories within one training
// epoch and computes GAE(λ) advantages and reward-to-go returns per
// finished trajectory. Observations and masks are stored flat (step i's
// observation at [i·obsDim, (i+1)·obsDim)) so the epoch's batch feeds the
// PPO update as one contiguous tensor without reassembly.
type Buffer struct {
	gamma, lam float64

	obsDim int
	maxObs int

	Obs   []float64
	Masks []bool
	Acts  []int
	Rews  []float64
	Vals  []float64
	Logps []float64

	Advs []float64
	Rets []float64

	pathStart int
}

// NewBuffer returns a buffer with discount gamma and GAE lambda. The
// observation and mask widths are fixed by the first stored step.
func NewBuffer(gamma, lam float64) *Buffer {
	return &Buffer{gamma: gamma, lam: lam}
}

// Store records one interaction step, copying obs and mask into the flat
// epoch arrays (callers may reuse their buffers immediately).
func (b *Buffer) Store(obs []float64, mask []bool, act int, rew, val, logp float64) {
	b.setDims(len(obs), len(mask))
	b.Obs = append(b.Obs, obs...)
	b.Masks = append(b.Masks, mask...)
	b.Acts = append(b.Acts, act)
	b.Rews = append(b.Rews, rew)
	b.Vals = append(b.Vals, val)
	b.Logps = append(b.Logps, logp)
}

// StoreRollout appends a whole collected trajectory and closes its path
// (terminal trajectories bootstrap with 0, the paper's reward shape).
func (b *Buffer) StoreRollout(r Rollout) error {
	if r.Err != nil {
		return r.Err
	}
	n := r.Steps()
	if n == 0 {
		return nil
	}
	if len(r.Obs)%n != 0 || len(r.Masks)%n != 0 {
		return fmt.Errorf("rl: rollout with ragged buffers (%d obs, %d masks, %d steps)",
			len(r.Obs), len(r.Masks), n)
	}
	b.setDims(len(r.Obs)/n, len(r.Masks)/n)
	b.Obs = append(b.Obs, r.Obs...)
	b.Masks = append(b.Masks, r.Masks...)
	b.Acts = append(b.Acts, r.Acts...)
	b.Rews = append(b.Rews, r.Rews...)
	b.Vals = append(b.Vals, r.Vals...)
	b.Logps = append(b.Logps, r.Logps...)
	b.FinishPath(0)
	return nil
}

func (b *Buffer) setDims(obsDim, maxObs int) {
	if b.obsDim == 0 && b.maxObs == 0 {
		b.obsDim, b.maxObs = obsDim, maxObs
		return
	}
	if b.obsDim != obsDim || b.maxObs != maxObs {
		panic(fmt.Sprintf("rl: buffer dims %dx%d, got step of %dx%d",
			b.obsDim, b.maxObs, obsDim, maxObs))
	}
}

// Len returns the number of stored steps.
func (b *Buffer) Len() int { return len(b.Acts) }

// FinishPath closes the current trajectory, bootstrapping with lastVal for
// truncated paths (0 for terminal ones), and fills Advs/Rets for its steps.
func (b *Buffer) FinishPath(lastVal float64) {
	n := b.Len()
	if n == b.pathStart {
		return
	}
	rews := b.Rews[b.pathStart:n]
	vals := b.Vals[b.pathStart:n]

	advs := make([]float64, len(rews))
	rets := make([]float64, len(rews))
	nextAdv := 0.0
	nextVal := lastVal
	nextRet := lastVal
	for t := len(rews) - 1; t >= 0; t-- {
		delta := rews[t] + b.gamma*nextVal - vals[t]
		nextAdv = delta + b.gamma*b.lam*nextAdv
		advs[t] = nextAdv
		nextVal = vals[t]
		nextRet = rews[t] + b.gamma*nextRet
		rets[t] = nextRet
	}
	b.Advs = append(b.Advs, advs...)
	b.Rets = append(b.Rets, rets...)
	b.pathStart = n
}

// Batch is the training view of a finished epoch's data with normalized
// advantages. Obs and Masks are flat row-major arrays — the PPO update
// wraps Obs in an [N, ObsDim] tensor directly.
type Batch struct {
	N      int
	ObsDim int
	MaxObs int

	Obs   []float64 // N×ObsDim
	Masks []bool    // N×MaxObs
	Acts  []int
	Advs  []float64
	Rets  []float64
	Logps []float64
}

// Get finalizes the epoch: it normalizes advantages to zero mean and unit
// variance (the standard PPO variance-reduction trick) and returns the
// batch. It errors if a trajectory is still open.
func (b *Buffer) Get() (Batch, error) {
	if b.pathStart != b.Len() {
		return Batch{}, fmt.Errorf("rl: Get with an unfinished trajectory (%d of %d steps closed)",
			b.pathStart, b.Len())
	}
	if b.Len() == 0 {
		return Batch{}, fmt.Errorf("rl: Get on an empty buffer")
	}
	mean, std := meanStd(b.Advs)
	advs := make([]float64, len(b.Advs))
	for i, a := range b.Advs {
		advs[i] = (a - mean) / (std + 1e-8)
	}
	return Batch{
		N:      b.Len(),
		ObsDim: b.obsDim,
		MaxObs: b.maxObs,
		Obs:    b.Obs,
		Masks:  b.Masks,
		Acts:   b.Acts,
		Advs:   advs,
		Rets:   b.Rets,
		Logps:  b.Logps,
	}, nil
}

// Reset clears the buffer for the next epoch.
func (b *Buffer) Reset() {
	b.Obs = b.Obs[:0]
	b.Masks = b.Masks[:0]
	b.Acts = b.Acts[:0]
	b.Rews = b.Rews[:0]
	b.Vals = b.Vals[:0]
	b.Logps = b.Logps[:0]
	b.Advs = b.Advs[:0]
	b.Rets = b.Rets[:0]
	b.pathStart = 0
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)))
}
