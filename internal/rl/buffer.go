// Package rl implements the reinforcement-learning machinery of the paper:
// a trajectory buffer with Generalized Advantage Estimation, the PPO
// actor–critic update (§V-A: OpenAI SpinningUp-style PPO, 80 update
// iterations per epoch, lr 1e-3), and the trajectory-filtering variance
// reduction of §IV-C.
package rl

import (
	"fmt"
	"math"
)

// Buffer accumulates rollout steps across trajectories within one training
// epoch and computes GAE(λ) advantages and reward-to-go returns per
// finished trajectory.
type Buffer struct {
	gamma, lam float64

	Obs   [][]float64
	Masks [][]bool
	Acts  []int
	Rews  []float64
	Vals  []float64
	Logps []float64

	Advs []float64
	Rets []float64

	pathStart int
}

// NewBuffer returns a buffer with discount gamma and GAE lambda.
func NewBuffer(gamma, lam float64) *Buffer {
	return &Buffer{gamma: gamma, lam: lam}
}

// Store records one interaction step. The observation and mask slices are
// retained (the environment allocates fresh ones per step).
func (b *Buffer) Store(obs []float64, mask []bool, act int, rew, val, logp float64) {
	b.Obs = append(b.Obs, obs)
	b.Masks = append(b.Masks, mask)
	b.Acts = append(b.Acts, act)
	b.Rews = append(b.Rews, rew)
	b.Vals = append(b.Vals, val)
	b.Logps = append(b.Logps, logp)
}

// Len returns the number of stored steps.
func (b *Buffer) Len() int { return len(b.Obs) }

// FinishPath closes the current trajectory, bootstrapping with lastVal for
// truncated paths (0 for terminal ones), and fills Advs/Rets for its steps.
func (b *Buffer) FinishPath(lastVal float64) {
	n := len(b.Obs)
	if n == b.pathStart {
		return
	}
	rews := b.Rews[b.pathStart:n]
	vals := b.Vals[b.pathStart:n]

	advs := make([]float64, len(rews))
	rets := make([]float64, len(rews))
	nextAdv := 0.0
	nextVal := lastVal
	nextRet := lastVal
	for t := len(rews) - 1; t >= 0; t-- {
		delta := rews[t] + b.gamma*nextVal - vals[t]
		nextAdv = delta + b.gamma*b.lam*nextAdv
		advs[t] = nextAdv
		nextVal = vals[t]
		nextRet = rews[t] + b.gamma*nextRet
		rets[t] = nextRet
	}
	b.Advs = append(b.Advs, advs...)
	b.Rets = append(b.Rets, rets...)
	b.pathStart = n
}

// Batch is the training view of a finished epoch's data with normalized
// advantages.
type Batch struct {
	Obs   [][]float64
	Masks [][]bool
	Acts  []int
	Advs  []float64
	Rets  []float64
	Logps []float64
}

// Get finalizes the epoch: it normalizes advantages to zero mean and unit
// variance (the standard PPO variance-reduction trick) and returns the
// batch. It errors if a trajectory is still open.
func (b *Buffer) Get() (Batch, error) {
	if b.pathStart != len(b.Obs) {
		return Batch{}, fmt.Errorf("rl: Get with an unfinished trajectory (%d of %d steps closed)",
			b.pathStart, len(b.Obs))
	}
	if len(b.Obs) == 0 {
		return Batch{}, fmt.Errorf("rl: Get on an empty buffer")
	}
	mean, std := meanStd(b.Advs)
	advs := make([]float64, len(b.Advs))
	for i, a := range b.Advs {
		advs[i] = (a - mean) / (std + 1e-8)
	}
	return Batch{
		Obs:   b.Obs,
		Masks: b.Masks,
		Acts:  b.Acts,
		Advs:  advs,
		Rets:  b.Rets,
		Logps: b.Logps,
	}, nil
}

// Reset clears the buffer for the next epoch.
func (b *Buffer) Reset() {
	b.Obs = b.Obs[:0]
	b.Masks = b.Masks[:0]
	b.Acts = b.Acts[:0]
	b.Rews = b.Rews[:0]
	b.Vals = b.Vals[:0]
	b.Logps = b.Logps[:0]
	b.Advs = b.Advs[:0]
	b.Rets = b.Rets[:0]
	b.pathStart = 0
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)))
}
