package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocateRelease(t *testing.T) {
	c := New(8)
	if c.Total() != 8 || c.Free() != 8 || c.Busy() != 0 {
		t.Fatalf("fresh cluster state wrong: %d/%d/%d", c.Total(), c.Free(), c.Busy())
	}
	nodes, err := c.Allocate(1, 3)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(nodes) != 3 || c.Free() != 5 || c.Busy() != 3 || c.Running() != 1 {
		t.Fatalf("after alloc: nodes=%v free=%d busy=%d", nodes, c.Free(), c.Busy())
	}
	if _, err := c.Allocate(1, 1); err == nil {
		t.Error("double allocation must fail")
	}
	if _, err := c.Allocate(2, 6); err == nil {
		t.Error("oversubscription must fail")
	}
	if err := c.Release(1); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if c.Free() != 8 || c.Busy() != 0 {
		t.Error("release must restore all processors")
	}
	if err := c.Release(1); err == nil {
		t.Error("double release must fail")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCanAllocateEdges(t *testing.T) {
	c := New(4)
	if c.CanAllocate(0) {
		t.Error("zero-processor request must be rejected")
	}
	if c.CanAllocate(-1) {
		t.Error("negative request must be rejected")
	}
	if !c.CanAllocate(4) {
		t.Error("full-machine request must be accepted when idle")
	}
	if c.CanAllocate(5) {
		t.Error("over-capacity request must be rejected")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New(0)
}

func TestUtilizationAccounting(t *testing.T) {
	c := New(10)
	if _, err := c.Allocate(1, 5); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTo(100) // 5 procs busy for 100s = 500 proc-s
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTo(200) // idle
	if c.BusyTime() != 500 {
		t.Errorf("BusyTime = %g, want 500", c.BusyTime())
	}
	if u := c.Utilization(0, 200); u != 0.25 {
		t.Errorf("Utilization = %g, want 0.25", u)
	}
	if u := c.Utilization(0, 0); u != 0 {
		t.Errorf("degenerate Utilization = %g, want 0", u)
	}
	// Non-monotone advance is ignored.
	c.AdvanceTo(50)
	if c.BusyTime() != 500 {
		t.Error("backwards AdvanceTo must be a no-op")
	}
}

func TestUtilizationClamped(t *testing.T) {
	c := New(2)
	if _, err := c.Allocate(1, 2); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTo(100)
	if u := c.Utilization(0, 50); u != 1 {
		t.Errorf("Utilization clamps to 1, got %g", u)
	}
}

func TestReset(t *testing.T) {
	c := New(6)
	if _, err := c.Allocate(9, 4); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTo(10)
	c.Reset()
	if c.Free() != 6 || c.Busy() != 0 || c.BusyTime() != 0 || c.Running() != 0 {
		t.Error("Reset must restore pristine state")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestConservationProperty drives random allocate/release sequences and
// checks processors are conserved after every operation.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(32)
		live := map[int]bool{}
		next := 1
		for op := 0; op < 300; op++ {
			if rng.Float64() < 0.6 {
				n := 1 + rng.Intn(10)
				if c.CanAllocate(n) {
					if _, err := c.Allocate(next, n); err != nil {
						return false
					}
					live[next] = true
					next++
				}
			} else if len(live) > 0 {
				for id := range live {
					if err := c.Release(id); err != nil {
						return false
					}
					delete(live, id)
					break
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNodeIDsDisjoint(t *testing.T) {
	c := New(16)
	a, _ := c.Allocate(1, 8)
	b, _ := c.Allocate(2, 8)
	seen := map[int]bool{}
	for _, n := range append(a, b...) {
		if seen[n] {
			t.Fatalf("node %d allocated twice", n)
		}
		seen[n] = true
	}
}
