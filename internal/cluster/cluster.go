// Package cluster models the homogeneous HPC compute resource the paper's
// SchedGym simulates: a fixed pool of identical processors that are
// allocated to jobs node-by-node and released on completion, with busy-time
// accounting to derive the utilization metric.
package cluster

import (
	"fmt"
	"sort"
)

// Cluster is a homogeneous machine with a fixed number of processors.
// It is not safe for concurrent use; the event-driven simulator drives it
// from a single goroutine.
type Cluster struct {
	total int
	free  []int         // free node IDs, kept sorted for determinism
	used  map[int][]int // job ID -> allocated node IDs
	busy  int           // processors currently allocated

	// busyTime integrates (allocated processors × seconds) for
	// utilization accounting. Accrual is lazy: AdvanceTo only moves the
	// clock, and the integral is extended only at the points where the
	// busy count changes (Allocate/Release); reads extend it on the fly
	// without storing. This makes busyTime a function of the allocation
	// history alone — neither intermediate AdvanceTo calls nor mid-run
	// utilization reads can perturb the floating-point sum, which the
	// fleet's event-heap stepping and health sampling rely on for
	// byte-identical results against the unsampled full-sweep reference.
	busyTime    float64
	lastTime    float64 // current accounting clock
	accrualTime float64 // clock value busyTime has been integrated up to
}

// accrue extends the busy-time integral up to the current clock. Only the
// allocation-change points call it, so the stored sum's segmentation is
// determined by the allocation history alone.
func (c *Cluster) accrue() {
	if c.lastTime > c.accrualTime {
		c.busyTime += float64(c.busy) * (c.lastTime - c.accrualTime)
		c.accrualTime = c.lastTime
	}
}

// peekBusyTime returns the integral extended to the current clock without
// moving the accrual point — a pure read, so sampling utilization mid-run
// cannot split a busy segment and shift later floating-point sums.
func (c *Cluster) peekBusyTime() float64 {
	if c.lastTime > c.accrualTime {
		return c.busyTime + float64(c.busy)*(c.lastTime-c.accrualTime)
	}
	return c.busyTime
}

// New returns an idle cluster with n processors.
func New(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: non-positive size %d", n))
	}
	free := make([]int, n)
	for i := range free {
		free[i] = i
	}
	return &Cluster{total: n, free: free, used: make(map[int][]int)}
}

// Total returns the cluster size in processors.
func (c *Cluster) Total() int { return c.total }

// Free returns the number of idle processors.
func (c *Cluster) Free() int { return len(c.free) }

// Busy returns the number of allocated processors.
func (c *Cluster) Busy() int { return c.busy }

// CanAllocate reports whether n processors are available right now.
func (c *Cluster) CanAllocate(n int) bool { return n > 0 && n <= len(c.free) }

// Allocate assigns n processors to jobID and returns the node IDs. It fails
// if the job already holds an allocation or resources are insufficient.
func (c *Cluster) Allocate(jobID, n int) ([]int, error) {
	if _, ok := c.used[jobID]; ok {
		return nil, fmt.Errorf("cluster: job %d already allocated", jobID)
	}
	if !c.CanAllocate(n) {
		return nil, fmt.Errorf("cluster: cannot allocate %d procs (%d free)", n, len(c.free))
	}
	c.accrue()
	nodes := make([]int, n)
	copy(nodes, c.free[:n])
	c.free = c.free[n:]
	c.used[jobID] = nodes
	c.busy += n
	return nodes, nil
}

// Release returns the processors held by jobID to the free pool.
func (c *Cluster) Release(jobID int) error {
	nodes, ok := c.used[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %d holds no allocation", jobID)
	}
	c.accrue()
	delete(c.used, jobID)
	c.free = append(c.free, nodes...)
	sort.Ints(c.free)
	c.busy -= len(nodes)
	return nil
}

// AdvanceTo moves the accounting clock to time t. Calls must be monotone
// in t; busy processor-seconds accrue lazily at the next allocation
// change or accounting read, so skipping intermediate advances is exact.
func (c *Cluster) AdvanceTo(t float64) {
	if t < c.lastTime {
		return
	}
	c.lastTime = t
}

// BusyTime returns the accumulated busy processor-seconds up to the
// current accounting clock (a pure read).
func (c *Cluster) BusyTime() float64 { return c.peekBusyTime() }

// Utilization returns busyTime / (total × horizon) over [start, end].
func (c *Cluster) Utilization(start, end float64) float64 {
	span := end - start
	if span <= 0 {
		return 0
	}
	u := c.peekBusyTime() / (float64(c.total) * span)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Running returns the number of jobs holding allocations.
func (c *Cluster) Running() int { return len(c.used) }

// Reset returns the cluster to idle and zeroes the accounting clock.
func (c *Cluster) Reset() {
	free := make([]int, c.total)
	for i := range free {
		free[i] = i
	}
	c.free = free
	c.used = make(map[int][]int)
	c.busy = 0
	c.busyTime = 0
	c.lastTime = 0
	c.accrualTime = 0
}

// CheckInvariants verifies conservation of processors; the simulator's
// property tests call it after every step.
func (c *Cluster) CheckInvariants() error {
	allocated := 0
	seen := map[int]bool{}
	for id, nodes := range c.used {
		if len(nodes) == 0 {
			return fmt.Errorf("cluster: job %d holds empty allocation", id)
		}
		allocated += len(nodes)
		for _, n := range nodes {
			if n < 0 || n >= c.total {
				return fmt.Errorf("cluster: node %d out of range", n)
			}
			if seen[n] {
				return fmt.Errorf("cluster: node %d double-allocated", n)
			}
			seen[n] = true
		}
	}
	for _, n := range c.free {
		if seen[n] {
			return fmt.Errorf("cluster: node %d both free and allocated", n)
		}
		seen[n] = true
	}
	if allocated != c.busy {
		return fmt.Errorf("cluster: busy=%d but %d allocated", c.busy, allocated)
	}
	if allocated+len(c.free) != c.total {
		return fmt.Errorf("cluster: %d allocated + %d free != %d total",
			allocated, len(c.free), c.total)
	}
	return nil
}
