package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// ultraQuick shrinks Quick further so the full registry can run in tests.
func ultraQuick() Options {
	o := Quick()
	o.TraceJobs = 400
	o.Epochs = 2
	o.TrajPerEpoch = 2
	o.SeqLen = 16
	o.MaxObserve = 12
	o.EvalNSeq = 2
	o.EvalSeqLen = 48
	o.PiIters = 2
	o.VIters = 2
	o.FilterProbeN = 10
	return o
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"table2", "table5", "table6", "table7", "table8", "table9", "table10", "table11",
		"ablation-backfill", "ablation-kernel", "ablation-obswindow", "ablation-dqn",
		"fleet-placement", "fleet-migration", "fleet-fairness",
		"fleet-churn", "fleet-constraints",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d (%v)", len(ids), len(want), ids)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", Quick()); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestTable2(t *testing.T) {
	arts, err := Run("table2", ultraQuick())
	if err != nil {
		t.Fatal(err)
	}
	tab := arts[0].(*Table)
	if len(tab.Rows) != 6 {
		t.Fatalf("Table II rows = %d, want 6 traces", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "PIK-IPLEX") {
		t.Error("printed table must mention PIK-IPLEX")
	}
}

func TestFig3SpikesExist(t *testing.T) {
	o := ultraQuick()
	o.TraceJobs = 4000
	arts, err := Run("fig3", o)
	if err != nil {
		t.Fatal(err)
	}
	series := arts[0].(*Series)
	if len(series.X) < 5 {
		t.Fatalf("fig3 produced only %d windows", len(series.X))
	}
	vals := series.Y[0]
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max < 3*min {
		t.Errorf("fig3 variance too low: min=%.2f max=%.2f (paper shows spikes)", min, max)
	}
}

func TestFig7SkewAndRange(t *testing.T) {
	o := ultraQuick()
	o.TraceJobs = 1200
	arts, err := Run("fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("fig7 artifacts = %d, want series+table", len(arts))
	}
	tab := arts[1].(*Table)
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "filter range R") {
		t.Error("fig7 must report the filter range")
	}
}

func TestFig8RunsAllNetworks(t *testing.T) {
	o := ultraQuick()
	o.MaxObserve = 12 // keeps LeNet viable
	arts, err := Run("fig8", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("fig8 artifacts = %d, want 2 traces", len(arts))
	}
	s := arts[0].(*Series)
	if len(s.Names) != 5 {
		t.Fatalf("fig8 lines = %v, want all five networks", s.Names)
	}
	for i, ys := range s.Y {
		if len(ys) != o.Epochs {
			t.Errorf("network %s curve has %d points, want %d", s.Names[i], len(ys), o.Epochs)
		}
	}
}

func TestFig9BothVariants(t *testing.T) {
	arts, err := Run("fig9", ultraQuick())
	if err != nil {
		t.Fatal(err)
	}
	s := arts[0].(*Series)
	if len(s.Names) != 2 || s.Names[0] != "no-filter" || s.Names[1] != "with-filter" {
		t.Fatalf("fig9 lines = %v", s.Names)
	}
}

func TestTrainingCurveFigures(t *testing.T) {
	for _, id := range []string{"fig10", "fig11", "fig12", "fig13"} {
		arts, err := Run(id, ultraQuick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		s := arts[0].(*Series)
		if len(s.Names) != 4 {
			t.Errorf("%s lines = %v, want 4 workloads", id, s.Names)
		}
		if len(s.X) != ultraQuick().Epochs {
			t.Errorf("%s epochs = %d", id, len(s.X))
		}
	}
}

func TestTable5Shape(t *testing.T) {
	arts, err := Run("table5", ultraQuick())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("table5 artifacts = %d, want ±backfill", len(arts))
	}
	for _, a := range arts {
		tab := a.(*Table)
		if len(tab.Rows) != 4 {
			t.Errorf("table5 rows = %d, want 4 traces", len(tab.Rows))
		}
		if len(tab.Header) != 7 {
			t.Errorf("table5 cols = %d, want trace+5 heuristics+RL", len(tab.Header))
		}
	}
}

func TestTable7IncludesANL(t *testing.T) {
	arts, err := Run("table7", ultraQuick())
	if err != nil {
		t.Fatal(err)
	}
	tab := arts[0].(*Table)
	if len(tab.Rows) != 5 {
		t.Fatalf("table7 rows = %d, want 5 (incl. ANL-Intrepid)", len(tab.Rows))
	}
	found := false
	for _, r := range tab.Rows {
		if r[0] == "ANL-Intrepid" {
			found = true
		}
	}
	if !found {
		t.Error("table7 must evaluate on the unseen ANL-Intrepid trace")
	}
}

func TestTable8FairnessTraces(t *testing.T) {
	arts, err := Run("table8", ultraQuick())
	if err != nil {
		t.Fatal(err)
	}
	tab := arts[0].(*Table)
	if len(tab.Rows) != 2 {
		t.Fatalf("table8 rows = %d, want SDSC-SP2 + HPC2N", len(tab.Rows))
	}
}

func TestTable9Timings(t *testing.T) {
	arts, err := Run("table9", ultraQuick())
	if err != nil {
		t.Fatal(err)
	}
	tab := arts[0].(*Table)
	if len(tab.Rows) != 3 {
		t.Fatalf("table9 rows = %d, want 3 operations", len(tab.Rows))
	}
}

func TestAblations(t *testing.T) {
	o := ultraQuick()
	for _, id := range []string{"ablation-backfill", "ablation-kernel", "ablation-obswindow", "ablation-dqn"} {
		arts, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(arts) == 0 {
			t.Fatalf("%s produced no artifacts", id)
		}
		switch a := arts[0].(type) {
		case *Table:
			if len(a.Rows) == 0 {
				t.Errorf("%s produced an empty table", id)
			}
		case *Series:
			if len(a.X) == 0 {
				t.Errorf("%s produced an empty series", id)
			}
		default:
			t.Errorf("%s produced an unknown artifact type", id)
		}
	}
}

// TestFleetPlacement: the placement experiment must produce both scenario
// tables (steady + workload shift), compare all five routers, verify its
// own determinism note, and show load-aware routing beating random on
// fleet-wide bounded slowdown.
func TestFleetPlacement(t *testing.T) {
	arts, err := Run("fleet-placement", ultraQuick())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("fleet-placement artifacts = %d, want steady + shift", len(arts))
	}
	routers := []string{"random", "round-robin", "least-loaded", "binpack", "rl-scored"}
	bsld := map[string]float64{}
	for ai, a := range arts {
		tab := a.(*Table)
		if len(tab.Rows) != len(routers) {
			t.Fatalf("table %d rows = %d, want %d routers", ai, len(tab.Rows), len(routers))
		}
		for i, r := range tab.Rows {
			if r[0] != routers[i] {
				t.Fatalf("table %d row %d = %q, want %q", ai, i, r[0], routers[i])
			}
			if ai == 0 {
				var v float64
				if _, err := fmt.Sscanf(r[1], "%f", &v); err != nil {
					t.Fatalf("row %q bsld cell %q: %v", r[0], r[1], err)
				}
				bsld[r[0]] = v
			}
		}
	}
	if bsld["binpack"] >= bsld["random"] && bsld["rl-scored"] >= bsld["random"] {
		t.Errorf("neither binpack (%.2f) nor rl-scored (%.2f) beat random (%.2f) on fleet bsld",
			bsld["binpack"], bsld["rl-scored"], bsld["random"])
	}
	last := arts[1].(*Table)
	found := false
	for _, n := range last.Notes {
		if strings.Contains(n, "determinism: assignments reproduced exactly") {
			found = true
		}
	}
	if !found {
		t.Errorf("determinism note missing: %v", last.Notes)
	}
}

// TestFleetMigration runs the migration comparison at the quick-scale
// evaluation dimensions (training is not involved, so this is cheap) and
// checks the experiment's own acceptance claim: hysteresis migration
// strictly improves fleet-wide bounded slowdown over one-shot placement
// under the workload-shift stream, with sane accounting in the table.
func TestFleetMigration(t *testing.T) {
	o := ultraQuick()
	o.TraceJobs = 800
	o.EvalSeqLen = 128
	o.EvalNSeq = 3
	o.MaxObserve = 16
	arts, err := Run("fleet-migration", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("fleet-migration artifacts = %d, want 1 table", len(arts))
	}
	tab := arts[0].(*Table)
	policies := []string{"no-migration", "hysteresis", "always-rebalance"}
	if len(tab.Rows) != len(policies) {
		t.Fatalf("rows = %d, want %d policies", len(tab.Rows), len(policies))
	}
	bsld := map[string]float64{}
	moves := map[string]int{}
	for i, r := range tab.Rows {
		if r[0] != policies[i] {
			t.Fatalf("row %d = %q, want %q", i, r[0], policies[i])
		}
		var b float64
		var m int
		if _, err := fmt.Sscanf(r[1], "%f", &b); err != nil {
			t.Fatalf("row %q bsld cell %q: %v", r[0], r[1], err)
		}
		if _, err := fmt.Sscanf(r[3], "%d", &m); err != nil {
			t.Fatalf("row %q moves cell %q: %v", r[0], r[3], err)
		}
		bsld[r[0]], moves[r[0]] = b, m
	}
	if moves["no-migration"] != 0 {
		t.Errorf("no-migration recorded %d moves", moves["no-migration"])
	}
	if moves["hysteresis"] == 0 {
		t.Error("hysteresis migration never moved a job on the shift stream")
	}
	if bsld["hysteresis"] >= bsld["no-migration"] {
		t.Errorf("hysteresis bsld %.2f did not improve on no-migration %.2f",
			bsld["hysteresis"], bsld["no-migration"])
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "migration win verified") {
			found = true
		}
	}
	if !found {
		t.Errorf("self-check note missing: %v", tab.Notes)
	}
}

func TestSeriesPrint(t *testing.T) {
	s := &Series{Title: "t", XLabel: "x", Names: []string{"a", "b"},
		X: []float64{1, 2}, Y: [][]float64{{0.1, 0.2}, {0.3}}}
	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "0.3") {
		t.Errorf("series print missing content:\n%s", out)
	}
}

func TestOptionsPresets(t *testing.T) {
	q, s, p := Quick(), Standard(), Paper()
	if !(q.Epochs < s.Epochs && s.Epochs <= p.Epochs) {
		t.Error("presets must scale up: quick < standard <= paper")
	}
	if p.SeqLen != 256 || p.TrajPerEpoch != 100 || p.MaxObserve != 128 || p.PiIters != 80 {
		t.Errorf("Paper() must match §V-A: %+v", p)
	}
}
