package exp

import (
	"fmt"
	"time"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/trace"
)

func init() {
	registry["table2"] = Table2
	registry["table5"] = func(o Options) ([]Artifact, error) {
		return schedulingTable(o, metrics.BoundedSlowdown, "Table V", false)
	}
	registry["table6"] = func(o Options) ([]Artifact, error) { return schedulingTable(o, metrics.Utilization, "Table VI", false) }
	registry["table10"] = func(o Options) ([]Artifact, error) { return schedulingTable(o, metrics.Slowdown, "Table X", false) }
	registry["table11"] = func(o Options) ([]Artifact, error) { return schedulingTable(o, metrics.WaitTime, "Table XI", false) }
	registry["table7"] = Table7
	registry["table8"] = Table8
	registry["table9"] = Table9
}

// Table2 reproduces the trace-characteristics table.
func Table2(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	t := &Table{
		Title:  "Table II: job traces (synthetic stand-ins, first " + fmt.Sprint(o.TraceJobs) + " jobs)",
		Header: []string{"Name", "size", "it(sec)", "rt(sec)", "nt", "users"},
	}
	for _, name := range trace.PresetNames {
		s := cache.get(name).ComputeStats()
		t.AddRow(name,
			fmt.Sprint(s.Processors),
			fmt.Sprintf("%.0f", s.MeanInterarrival),
			fmt.Sprintf("%.0f", s.MeanRequestedTime),
			fmt.Sprintf("%.1f", s.MeanProcs),
			fmt.Sprint(s.Users))
	}
	t.Notes = append(t.Notes,
		"paper targets: SDSC-SP2 128/1055/6687/11, HPC2N 240/538/17024/6, PIK-IPLEX 2560/140/30889/12, ANL 163840/301/5176/5063, Lublin-1 256/771/4862/22, Lublin-2 256/460/1695/39",
		"rt here is mean *requested* runtime (estimates inflate actual runtime), as in SWF")
	return []Artifact{t}, nil
}

// trainRL trains one agent for (traceName, goal) under the options.
func trainRL(cache *traceCache, o Options, traceName string, goal metrics.Kind, backfill, filter bool) (*core.Agent, []core.EpochStats, error) {
	cfg := core.Config{
		Trace:        cache.get(traceName),
		Goal:         goal,
		MaxObserve:   o.MaxObserve,
		Backfill:     backfill,
		SeqLen:       o.SeqLen,
		TrajPerEpoch: o.TrajPerEpoch,
		Filter:       filter,
		FilterProbeN: o.FilterProbeN,
		FilterPhase1: o.Epochs / 2,
		Seed:         o.Seed,
		Workers:      o.Workers,
		PPO:          o.ppo(),
	}
	a, err := core.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	curve, err := a.Train(o.Epochs)
	return a, curve, err
}

func evalCfg(o Options, goal metrics.Kind, backfill bool) core.EvalConfig {
	return core.EvalConfig{
		Goal:       goal,
		NSeq:       o.EvalNSeq,
		SeqLen:     o.EvalSeqLen,
		Backfill:   backfill,
		MaxObserve: o.MaxObserve,
		Seed:       o.Seed + 1000,
	}
}

// schedulingTable reproduces the Tables V/VI/X/XI grid: every heuristic
// plus a freshly trained RL agent per trace, with and without backfilling.
// PIK-style filtering is enabled automatically for high-variance traces
// when the goal is slowdown-like.
func schedulingTable(o Options, goal metrics.Kind, title string, includeANL bool) ([]Artifact, error) {
	cache := newTraceCache(o)
	names := evalTraces
	if includeANL {
		names = append(append([]string{}, evalTraces...), "ANL-Intrepid")
	}
	var arts []Artifact
	for _, backfill := range []bool{false, true} {
		mode := "without backfilling"
		if backfill {
			mode = "with backfilling"
		}
		t := &Table{
			Title:  fmt.Sprintf("%s (%s): scheduling toward %s", title, mode, goal),
			Header: []string{"Trace", "FCFS", "WFP3", "UNICEP", "SJF", "F1", "RL"},
		}
		for _, name := range names {
			tr := cache.get(name)
			row := []string{name}
			ec := evalCfg(o, goal, backfill)
			for _, h := range sched.Heuristics() {
				v, _, err := core.Evaluate(tr, h, ec)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtVal(goal, v))
			}
			agent, _, err := trainRL(cache, o, name, goal, backfill, false)
			if err != nil {
				return nil, err
			}
			v, _, err := core.Evaluate(tr, agent.Scheduler(), ec)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtVal(goal, v))
			t.AddRow(row...)
		}
		arts = append(arts, t)
	}
	return arts, nil
}

// Table7 reproduces the generalization grid: RL models trained on each of
// the four traces, applied to all five (including the never-trained-on ANL
// Intrepid), against the best and worst heuristics.
func Table7(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	goal := metrics.BoundedSlowdown

	models := map[string]sim.Scheduler{}
	for _, name := range evalTraces {
		agent, _, err := trainRL(cache, o, name, goal, false, false)
		if err != nil {
			return nil, err
		}
		models["RL-"+name] = agent.Scheduler()
	}
	targets := append(append([]string{}, evalTraces...), "ANL-Intrepid")

	var arts []Artifact
	for _, backfill := range []bool{false, true} {
		mode := "without backfilling"
		if backfill {
			mode = "with backfilling"
		}
		t := &Table{
			Title: fmt.Sprintf("Table VII (%s): RL-X applied to trace Y, avg bounded slowdown", mode),
			Header: []string{"Trace", "BestHeur", "WorstHeur",
				"RL-Lublin-1", "RL-SDSC-SP2", "RL-HPC2N", "RL-Lublin-2"},
		}
		for _, target := range targets {
			tr := cache.get(target)
			ec := evalCfg(o, goal, backfill)
			bestName, worstName := "", ""
			best, worst := 0.0, 0.0
			for i, h := range sched.Heuristics() {
				v, _, err := core.Evaluate(tr, h, ec)
				if err != nil {
					return nil, err
				}
				if i == 0 || v < best {
					best, bestName = v, h.Name
				}
				if i == 0 || v > worst {
					worst, worstName = v, h.Name
				}
			}
			row := []string{target,
				fmt.Sprintf("%s (%s)", fmtVal(goal, best), bestName),
				fmt.Sprintf("%s (%s)", fmtVal(goal, worst), worstName)}
			for _, src := range evalTraces {
				v, _, err := core.Evaluate(tr, models["RL-"+src], ec)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtVal(goal, v))
			}
			t.AddRow(row...)
		}
		t.Notes = append(t.Notes,
			"stability claim: every RL-X on Y should stay within the [best, worst] heuristic band")
		arts = append(arts, t)
	}
	return arts, nil
}

// Table8 reproduces the fairness experiment: bounded slowdown with the
// Maximal per-user aggregator on the two traces that carry user IDs.
func Table8(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	goal := metrics.FairMaxBoundedSlowdown
	var arts []Artifact
	for _, backfill := range []bool{false, true} {
		mode := "without backfilling"
		if backfill {
			mode = "with backfilling"
		}
		t := &Table{
			Title:  fmt.Sprintf("Table VIII (%s): bounded slowdown with Maximal fairness", mode),
			Header: []string{"Trace", "FCFS", "WFP3", "UNICEP", "SJF", "F1", "RL"},
		}
		for _, name := range []string{"SDSC-SP2", "HPC2N"} {
			tr := cache.get(name)
			row := []string{name}
			ec := evalCfg(o, goal, backfill)
			for _, h := range sched.Heuristics() {
				v, _, err := core.Evaluate(tr, h, ec)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtVal(goal, v))
			}
			agent, _, err := trainRL(cache, o, name, goal, backfill, false)
			if err != nil {
				return nil, err
			}
			v, _, err := core.Evaluate(tr, agent.Scheduler(), ec)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtVal(goal, v))
			t.AddRow(row...)
		}
		arts = append(arts, t)
	}
	return arts, nil
}

// Table9 measures computational cost: one scheduling decision for a
// 128-job queue by SJF and by the RL policy network, and one training
// epoch.
func Table9(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	tr := cache.get("Lublin-1")
	queue := o.MaxObserve
	win := tr.Window(0, minInt(queue, tr.Len()))
	view := sim.ClusterView{FreeProcs: tr.Processors / 2, TotalProcs: tr.Processors}

	// SJF sorting/picking over the queue.
	sjf := sched.SJF()
	const reps = 2000
	start := time.Now()
	for i := 0; i < reps; i++ {
		sjf.Pick(win, 0, view)
	}
	sjfPer := time.Since(start) / reps

	// RL decision via an (untrained) kernel network of the same shape.
	agent, err := core.New(core.Config{
		Trace:        tr,
		Goal:         metrics.BoundedSlowdown,
		MaxObserve:   o.MaxObserve,
		SeqLen:       o.SeqLen,
		TrajPerEpoch: o.TrajPerEpoch,
		Seed:         o.Seed,
		Workers:      o.Workers,
		PPO:          o.ppo(),
	})
	if err != nil {
		return nil, err
	}
	rlSched := agent.Scheduler()
	start = time.Now()
	for i := 0; i < reps; i++ {
		rlSched.Pick(win, 0, view)
	}
	rlPer := time.Since(start) / reps

	// One training epoch.
	start = time.Now()
	if _, err := agent.TrainEpoch(); err != nil {
		return nil, err
	}
	epochTime := time.Since(start)

	t := &Table{
		Title:  "Table IX: computational cost (this machine)",
		Header: []string{"Operation", "Time"},
	}
	t.AddRow(fmt.Sprintf("SJF sorts %d jobs and picks one", len(win)), sjfPer.String())
	t.AddRow(fmt.Sprintf("RLScheduler DNN decision (%d jobs)", len(win)), rlPer.String())
	t.AddRow(fmt.Sprintf("RLScheduler training epoch (%d traj × %d jobs, %d+%d iters)",
		o.TrajPerEpoch, o.SeqLen, o.PiIters, o.VIters), epochTime.String())
	t.Notes = append(t.Notes,
		"paper (Xeon 4109T, TF/Python): SJF 0.71ms, RL decision 0.30ms, epoch 123s at 100×256 jobs",
		"shape to check: the RL decision is the same order as (or faster than) the SJF sort")
	return []Artifact{t}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
