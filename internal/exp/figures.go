package exp

import (
	"fmt"
	"math/rand"

	"rlsched/internal/core"
	"rlsched/internal/metrics"
	"rlsched/internal/nn"
	"rlsched/internal/rl"
	"rlsched/internal/sched"
	"rlsched/internal/sim"
	"rlsched/internal/stats"
)

func init() {
	registry["fig3"] = Fig3
	registry["fig7"] = Fig7
	registry["fig8"] = Fig8
	registry["fig9"] = Fig9
	registry["fig10"] = func(o Options) ([]Artifact, error) {
		return trainingCurves(o, metrics.BoundedSlowdown, "Fig 10: training curves, avg bounded slowdown")
	}
	registry["fig11"] = func(o Options) ([]Artifact, error) {
		return trainingCurves(o, metrics.Utilization, "Fig 11: training curves, resource utilization")
	}
	registry["fig12"] = func(o Options) ([]Artifact, error) {
		return trainingCurves(o, metrics.Slowdown, "Fig 12: training curves, avg job slowdown")
	}
	registry["fig13"] = func(o Options) ([]Artifact, error) {
		return trainingCurves(o, metrics.WaitTime, "Fig 13: training curves, avg job waiting time")
	}
}

// Fig3 replays SJF over consecutive windows of the PIK-like trace,
// reporting the per-window average bounded slowdown across the timeline —
// the variance spikes that motivate trajectory filtering.
func Fig3(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	tr := cache.get("PIK-IPLEX")
	// The paper scans 256-job sequences; anything much smaller cannot
	// congest the 2560-processor cluster, so the window size does not
	// scale down with Quick options.
	winLen := 256
	if winLen > tr.Len() {
		winLen = tr.Len()
	}
	stride := winLen / 2
	s := sim.New(sim.Config{Processors: tr.Processors, MaxObserve: o.MaxObserve})
	sjf := sched.SJF()
	series := &Series{
		Title:  "Fig 3: SJF avg bounded slowdown across the PIK-IPLEX timeline",
		XLabel: "window start (job index)",
		YLabel: "avg bounded slowdown",
		Names:  []string{"SJF"},
		Y:      [][]float64{nil},
	}
	for start := 0; start+winLen <= tr.Len(); start += stride {
		if err := s.Load(tr.Window(start, winLen)); err != nil {
			return nil, err
		}
		res, err := s.Run(sjf)
		if err != nil {
			return nil, err
		}
		series.X = append(series.X, float64(start))
		series.Y[0] = append(series.Y[0], metrics.Value(metrics.BoundedSlowdown, res))
	}
	vals := series.Y[0]
	note := fmt.Sprintf("min=%.2f median=%.2f max=%.0f (paper: mostly ≈1 with spikes to ~80K)",
		stats.Min(vals), stats.Median(vals), stats.Max(vals))
	table := &Table{Title: "Fig 3 summary", Header: []string{"stat", "value"}}
	table.AddRow("windows", fmt.Sprint(len(vals)))
	table.AddRow("spread", note)
	return []Artifact{series, table}, nil
}

// Fig7 probes the PIK-like trace with SJF and reports the metric
// distribution plus the median / mean / 2·mean markers that define the
// trajectory-filtering range R.
func Fig7(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	tr := cache.get("PIK-IPLEX")
	cfg := sim.Config{Processors: tr.Processors, MaxObserve: o.MaxObserve}
	rng := rand.New(rand.NewSource(o.Seed))
	n := o.FilterProbeN * 4
	// Like Fig 3, the distribution is over 256-job sequences — smaller
	// windows cannot congest the PIK-scale cluster.
	seqLen := 256
	if seqLen > tr.Len() {
		seqLen = tr.Len()
	}
	ps, err := rl.Probe(tr, cfg, metrics.BoundedSlowdown, n, seqLen, rng)
	if err != nil {
		return nil, err
	}
	lo, hi := ps.Range()
	hist := stats.NewHistogram(ps.Values, 20, 0, hi*1.5)
	series := &Series{
		Title:  "Fig 7: distribution of SJF avg bounded slowdown (PIK-IPLEX sequences)",
		XLabel: "avg bounded slowdown (bin center)",
		YLabel: "sequences",
		Names:  []string{"count"},
		Y:      [][]float64{nil},
	}
	for i, c := range hist.Counts {
		series.X = append(series.X, hist.BinCenter(i))
		series.Y[0] = append(series.Y[0], float64(c))
	}
	t := &Table{Title: "Fig 7 markers", Header: []string{"stat", "value"}}
	t.AddRow("sequences", fmt.Sprint(len(ps.Values)))
	t.AddRow("median", fmt.Sprintf("%.2f", ps.Median))
	t.AddRow("mean", fmt.Sprintf("%.2f", ps.Mean))
	t.AddRow("2*mean (filter hi)", fmt.Sprintf("%.2f", hi))
	t.AddRow("skewness", fmt.Sprintf("%.2f", ps.Skew))
	t.AddRow("filter range R", fmt.Sprintf("(%.2f, %.2f]", lo, hi))
	t.Notes = append(t.Notes, "paper markers: median≈1, mean≈730, 2·mean≈1460 — heavily right-skewed")
	return []Artifact{series, t}, nil
}

// Fig8 compares the training efficiency of the Table IV policy networks on
// Lublin-1 and SDSC-SP2 (metric: −avg bounded slowdown; higher is better).
func Fig8(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	var arts []Artifact
	for _, traceName := range []string{"Lublin-1", "SDSC-SP2"} {
		series := &Series{
			Title:  "Fig 8: policy-network training efficiency on " + traceName,
			XLabel: "epoch",
			YLabel: "-avg bounded slowdown",
		}
		for _, kind := range nn.PolicyKinds {
			if o.MaxObserve < 12 && kind == "lenet" {
				continue // LeNet needs a wider observation window
			}
			agent, err := core.New(core.Config{
				Trace:        cache.get(traceName),
				Goal:         metrics.BoundedSlowdown,
				PolicyKind:   kind,
				MaxObserve:   o.MaxObserve,
				SeqLen:       o.SeqLen,
				TrajPerEpoch: o.TrajPerEpoch,
				Seed:         o.Seed,
				Workers:      o.Workers,
				PPO:          o.ppo(),
			})
			if err != nil {
				return nil, err
			}
			curve, err := agent.Train(o.Epochs)
			if err != nil {
				return nil, err
			}
			series.Names = append(series.Names, kind)
			var ys []float64
			for _, s := range curve {
				ys = append(ys, s.MeanReward)
			}
			series.Y = append(series.Y, ys)
		}
		if len(series.Y) > 0 {
			for i := range series.Y[0] {
				series.X = append(series.X, float64(i+1))
			}
		}
		arts = append(arts, series)
	}
	return arts, nil
}

// Fig9 trains on the PIK-like trace with and without trajectory filtering.
func Fig9(o Options) ([]Artifact, error) {
	cache := newTraceCache(o)
	series := &Series{
		Title:  "Fig 9: trajectory filtering on PIK-IPLEX (avg bounded slowdown per epoch)",
		XLabel: "epoch",
		YLabel: "avg bounded slowdown",
	}
	for _, filter := range []bool{false, true} {
		name := "no-filter"
		if filter {
			name = "with-filter"
		}
		_, curve, err := trainRL(cache, o, "PIK-IPLEX", metrics.BoundedSlowdown, false, filter)
		if err != nil {
			return nil, err
		}
		series.Names = append(series.Names, name)
		var ys []float64
		for _, s := range curve {
			ys = append(ys, s.MeanMetric)
		}
		series.Y = append(series.Y, ys)
	}
	for i := range series.Y[0] {
		series.X = append(series.X, float64(i+1))
	}
	t := &Table{Title: "Fig 9 dispersion", Header: []string{"variant", "std of epoch metric"}}
	for i, n := range series.Names {
		t.AddRow(n, fmt.Sprintf("%.2f", stats.Std(series.Y[i])))
	}
	t.Notes = append(t.Notes, "paper: without filtering training does not converge within 100 epochs; with filtering it does")
	return []Artifact{series, t}, nil
}

// trainingCurves reproduces the four-workload training figures (Figs
// 10–13) for the given goal.
func trainingCurves(o Options, goal metrics.Kind, title string) ([]Artifact, error) {
	cache := newTraceCache(o)
	series := &Series{
		Title:  title,
		XLabel: "epoch",
		YLabel: goal.String(),
	}
	for _, name := range evalTraces {
		// The PIK-like trace needs filtering for slowdown-like goals
		// (§IV-C); the four Fig 10 traces train unfiltered in the paper.
		_, curve, err := trainRL(cache, o, name, goal, false, false)
		if err != nil {
			return nil, err
		}
		series.Names = append(series.Names, name)
		var ys []float64
		for _, s := range curve {
			ys = append(ys, s.MeanMetric)
		}
		series.Y = append(series.Y, ys)
	}
	for i := range series.Y[0] {
		series.X = append(series.X, float64(i+1))
	}
	return []Artifact{series}, nil
}
